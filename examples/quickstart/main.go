// Quickstart: stand up an ICIStrategy network, commit a few blocks through
// collaborative storage and verification, and read a historical block back
// from a cluster.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
	"icistrategy/internal/workload"
)

func main() {
	// 1. Build a 48-node network partitioned into 4 latency-aware clusters.
	sys, err := core.NewSystem(core.Config{
		Nodes:       48,
		Clusters:    4,
		Replication: 2, // every chunk lives on two cluster members
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Generate a signed transaction workload.
	gen, err := workload.NewGenerator(workload.Config{
		Accounts:     100,
		PayloadBytes: 40, // Bitcoin-like ~250-byte transactions
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Produce blocks. Each block is split into chunks inside every
	//    cluster; members verify only their own chunk and vote; the block
	//    commits once every chunk is covered.
	var blocks []*chain.Block
	for i := 0; i < 5; i++ {
		b, err := sys.ProduceBlock(gen.NextTxs(120))
		if err != nil {
			log.Fatal(err)
		}
		sys.Network().RunUntilIdle() // drive the simulated network
		fmt.Printf("block %d (%s): committed by %d/48 nodes\n",
			b.Header.Height, b.Hash().Short(), sys.CommitCount(b.Hash()))
		blocks = append(blocks, b)
	}

	// 4. Every cluster collectively holds every block — but no single node
	//    stores more than a fraction of the chain.
	var total int64
	for _, b := range blocks {
		total += int64(b.BodySize())
	}
	st, err := sys.NodeStorage(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchain body: %s — node 0 stores only %s (plus %d headers)\n",
		metrics.HumanBytes(float64(total)), metrics.HumanBytes(float64(st.ChunkBytes)), st.HeaderCount)

	// 5. Read a historical block back: the reader gathers chunks from its
	//    cluster, reassembles, and verifies against the Merkle root.
	reader, err := sys.Node(simnet.NodeID(3))
	if err != nil {
		log.Fatal(err)
	}
	target := blocks[2]
	reader.RetrieveBlock(sys.Network(), target.Hash(), func(b *chain.Block, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nretrieved block %d with %d txs — Merkle root verified: %s\n",
			b.Header.Height, len(b.Txs), b.Header.MerkleRoot.Short())
	})
	sys.Network().RunUntilIdle()
}
