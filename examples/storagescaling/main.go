// Storage scaling: reproduce the paper's central comparison through the
// analytic API — per-node storage of full replication, RapidChain-style
// sharding, and ICIStrategy as the chain grows, ending with the abstract's
// "25 % of RapidChain" headline.
//
//	go run ./examples/storagescaling
package main

import (
	"fmt"
	"log"

	"icistrategy/internal/baseline"
	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/cluster"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
	"icistrategy/internal/strategy"
)

func main() {
	const (
		nodes         = 4096
		clusterSize   = 64  // ICI cluster size
		committeeSize = 256 // RapidChain committee size
		blockBody     = 1 << 20
		chainLength   = 256
	)

	// One latency topology, two partitions of it: ICI clusters and
	// RapidChain committees.
	rng := blockcrypto.NewRNG(42)
	coords := simnet.RandomCoords(nodes, 60, rng.Fork("coords"))
	iciAsg, err := cluster.Partition(cluster.BalancedKMeans, coords, nodes/clusterSize, rng.Fork("ici"))
	if err != nil {
		log.Fatal(err)
	}
	commAsg, err := cluster.Partition(cluster.BalancedKMeans, coords, nodes/committeeSize, rng.Fork("committee"))
	if err != nil {
		log.Fatal(err)
	}

	full := strategy.NewFullReplication(nodes)
	rapid, err := baseline.NewRapidChain(commAsg)
	if err != nil {
		log.Fatal(err)
	}
	ici, err := core.NewAccountant(iciAsg, 1)
	if err != nil {
		log.Fatal(err)
	}

	tbl := metrics.NewTable(
		fmt.Sprintf("per-node storage, %d nodes, 1 MiB blocks", nodes),
		"blocks", "full", "rapidchain", "ici", "ici/rapid")
	for b := 1; b <= chainLength; b++ {
		full.AddBlock(blockBody)
		rapid.AddBlock(blockBody)
		ici.AddBlock(blockBody)
		if b%(chainLength/8) != 0 {
			continue
		}
		fm := must(strategy.MeanNodeBytes(full))
		rm := must(strategy.MeanNodeBytes(rapid))
		im := must(strategy.MeanNodeBytes(ici))
		tbl.AddRow(b,
			metrics.HumanBytes(fm), metrics.HumanBytes(rm), metrics.HumanBytes(im), im/rm)
	}
	fmt.Println(tbl.String())

	fm := must(strategy.MeanNodeBytes(full))
	rm := must(strategy.MeanNodeBytes(rapid))
	im := must(strategy.MeanNodeBytes(ici))
	fmt.Printf("after %d blocks: ICIStrategy needs %.1f%% of RapidChain's storage "+
		"and %.2f%% of full replication's.\n",
		chainLength, 100*im/rm, 100*im/fm)
}

func must(v float64, err error) float64 {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
