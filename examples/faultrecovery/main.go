// Fault recovery: crash nodes, remove a member permanently, repair the
// cluster's integrity from replicas, and watch a degraded read survive —
// then see what r=1 cannot survive.
//
//	go run ./examples/faultrecovery
package main

import (
	"fmt"
	"log"

	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/storage"
	"icistrategy/internal/workload"
)

func main() {
	sys, err := core.NewSystem(core.Config{
		Nodes:       40,
		Clusters:    2, // clusters of 20
		Replication: 2,
		Seed:        23,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{Accounts: 120, PayloadBytes: 30, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}

	var blocks []*chain.Block
	for i := 0; i < 6; i++ {
		b, err := sys.ProduceBlock(gen.NextTxs(100))
		if err != nil {
			log.Fatal(err)
		}
		sys.Network().RunUntilIdle()
		blocks = append(blocks, b)
	}
	fmt.Printf("committed %d blocks across 2 clusters (r=2)\n\n", len(blocks))

	members, err := sys.ClusterMembers(0)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Crash a member: reads keep working because every chunk has a
	//    second replica.
	crashed := members[4]
	if err := sys.FailNode(crashed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crashed node %d — attempting a degraded read of block 3...\n", crashed)
	reader, err := sys.Node(members[0])
	if err != nil {
		log.Fatal(err)
	}
	reader.RetrieveBlock(sys.Network(), blocks[3].Hash(), func(b *chain.Block, err error) {
		if err != nil {
			log.Fatalf("degraded read failed: %v", err)
		}
		fmt.Printf("  read OK: %d txs, root %s\n", len(b.Txs), b.Header.MerkleRoot.Short())
	})
	sys.Network().RunUntilIdle()
	if err := sys.RecoverNode(crashed); err != nil {
		log.Fatal(err)
	}

	// 2. Permanent departure: remove a member and repair. Rendezvous
	//    placement moves only the departed node's chunks; the new owners
	//    fetch them from surviving replicas.
	victim := members[7]
	vnode, err := sys.Node(victim)
	if err != nil {
		log.Fatal(err)
	}
	victimChunks := vnode.Store().Stats().ChunkCount
	if err := sys.RemoveNode(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nremoved node %d permanently (it held %d chunks)\n", victim, victimChunks)
	if err := sys.RepairCluster(0, func(lost int) {
		fmt.Printf("  repair finished: %d chunks unrecoverable\n", lost)
	}); err != nil {
		log.Fatal(err)
	}
	sys.Network().RunUntilIdle()

	// 3. Integrity invariant after all of that: every cluster still
	//    reassembles every block byte-for-byte.
	for _, b := range blocks {
		for c := 0; c < sys.NumClusters(); c++ {
			if err := sys.ClusterHoldsBlock(c, b.Hash()); err != nil {
				log.Fatalf("integrity violated: %v", err)
			}
		}
	}
	fmt.Println("\nintra-cluster integrity verified for every block after crash + departure + repair")

	// 4. Corruption is detected, not served: flip a byte in a stored chunk
	//    and watch the read path route around it.
	holder, err := sys.Node(members[1])
	if err != nil {
		log.Fatal(err)
	}
	corrupted := false
	for _, b := range blocks {
		for _, idx := range holder.Store().ChunksForBlock(b.Hash()) {
			if holder.Store().Corrupt(storage.ChunkID{Block: b.Hash(), Index: idx}) {
				fmt.Printf("\ncorrupted chunk %d of block %d on node %d\n", idx, b.Header.Height, members[1])
				corrupted = true
			}
			break
		}
		if corrupted {
			// The corrupted copy fails its digest check and is withheld;
			// the replica serves the read instead.
			reader.RetrieveBlock(sys.Network(), b.Hash(), func(rb *chain.Block, err error) {
				if err != nil {
					log.Fatalf("read after corruption failed: %v", err)
				}
				fmt.Printf("  read still OK (%d txs) — replica served the verified copy\n", len(rb.Txs))
			})
			sys.Network().RunUntilIdle()
			break
		}
	}
}
