// Bootstrap: watch a brand-new node join a running ICIStrategy network.
// The newcomer downloads every block header but only the chunks rendezvous
// placement assigns to it — a small fraction of what a full-replication or
// even a RapidChain node would have to fetch.
//
//	go run ./examples/bootstrap
package main

import (
	"fmt"
	"log"

	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
	"icistrategy/internal/workload"
)

func main() {
	sys, err := core.NewSystem(core.Config{
		Nodes:       60,
		Clusters:    4, // clusters of 15
		Replication: 2,
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{Accounts: 200, PayloadBytes: 60, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Grow a chain first.
	const blocks, txPerBlock = 12, 150
	var totalBody int64
	for i := 0; i < blocks; i++ {
		b, err := sys.ProduceBlock(gen.NextTxs(txPerBlock))
		if err != nil {
			log.Fatal(err)
		}
		totalBody += int64(b.BodySize())
		sys.Network().RunUntilIdle()
	}
	fmt.Printf("chain grown: %d blocks, %s of body data\n",
		blocks, metrics.HumanBytes(float64(totalBody)))

	// A new node joins cluster 2. Measure exactly what it downloads.
	sys.Network().ResetTraffic()
	var newcomer simnet.NodeID
	joinDone := false
	if err := sys.JoinCluster(2, func(id simnet.NodeID, err error) {
		if err != nil {
			log.Fatalf("bootstrap failed: %v", err)
		}
		newcomer, joinDone = id, true
	}); err != nil {
		log.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if !joinDone {
		log.Fatal("join did not complete")
	}

	tr, err := sys.Network().Traffic(newcomer)
	if err != nil {
		log.Fatal(err)
	}
	st, err := sys.NodeStorage(newcomer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnode %d joined cluster 2 at virtual time %v\n", newcomer, sys.Network().Now())
	fmt.Printf("  downloaded:        %s (%d messages)\n",
		metrics.HumanBytes(float64(tr.BytesRecv)), tr.MsgsRecv)
	fmt.Printf("  now stores:        %d headers + %d chunks (%s)\n",
		st.HeaderCount, st.ChunkCount, metrics.HumanBytes(float64(st.TotalBytes())))
	fmt.Printf("  a full node would have fetched %s — bootstrap saving %.1fx\n",
		metrics.HumanBytes(float64(totalBody)), float64(totalBody)/float64(tr.BytesRecv))

	// The newcomer participates in new blocks right away.
	b, err := sys.ProduceBlock(gen.NextTxs(txPerBlock))
	if err != nil {
		log.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	node, err := sys.Node(newcomer)
	if err != nil {
		log.Fatal(err)
	}
	if node.Store().HasHeader(b.Hash()) {
		fmt.Printf("\nnewcomer committed post-join block %d — it is a first-class member.\n",
			b.Header.Height)
	}
}
