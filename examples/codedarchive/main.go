// Coded archive: tier an old block from replicated chunks into Reed-Solomon
// coded storage inside its cluster, shrink the footprint, and survive more
// failures than replication could at the same cost.
//
//	go run ./examples/codedarchive
package main

import (
	"fmt"
	"log"

	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/storage"
	"icistrategy/internal/workload"
)

func main() {
	sys, err := core.NewSystem(core.Config{
		Nodes:       40,
		Clusters:    2, // clusters of 20
		Replication: 2, // hot blocks: two replicas per chunk
		Seed:        51,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{Accounts: 150, PayloadBytes: 60, Seed: 51})
	if err != nil {
		log.Fatal(err)
	}
	var blocks []*chain.Block
	for i := 0; i < 5; i++ {
		b, err := sys.ProduceBlock(gen.NextTxs(200))
		if err != nil {
			log.Fatal(err)
		}
		sys.Network().RunUntilIdle()
		blocks = append(blocks, b)
	}
	target := blocks[0] // the "cold" block to archive
	body := float64(target.BodySize())
	members, _ := sys.ClusterMembers(0)

	clusterBytes := func() float64 {
		var sum float64
		for _, m := range members {
			node, _ := sys.Node(m)
			for _, idx := range node.Store().ChunksForBlock(target.Hash()) {
				if chk, err := node.Store().Chunk(storage.ChunkID{Block: target.Hash(), Index: idx}); err == nil {
					sum += float64(len(chk.Data))
				}
			}
		}
		return sum
	}

	before := clusterBytes()
	fmt.Printf("block 0 body: %s — cluster 0 stores %s replicated (r=2, factor %.2fx)\n",
		metrics.HumanBytes(body), metrics.HumanBytes(before), before/body)

	// Archive with parity 5: RS(15, 20) — any 15 of 20 members reconstruct.
	const parity = 5
	if err := sys.ArchiveBlock(0, target.Hash(), parity, func(err error) {
		if err != nil {
			log.Fatalf("archive: %v", err)
		}
	}); err != nil {
		log.Fatal(err)
	}
	sys.Network().RunUntilIdle()

	after := clusterBytes()
	fmt.Printf("archived as RS(%d,%d): cluster stores %s coded (factor %.2fx)\n",
		len(members)-parity, len(members), metrics.HumanBytes(after), after/body)

	// Fail `parity` members' worth of shares and read anyway.
	lost := 0
	for _, m := range members[1:] {
		node, _ := sys.Node(m)
		held := len(node.Store().ChunksForBlock(target.Hash()))
		if lost+held > parity {
			continue
		}
		if err := sys.FailNode(m); err != nil {
			log.Fatal(err)
		}
		lost += held
	}
	fmt.Printf("failed members holding %d of %d shares\n", lost, len(members))

	reader, _ := sys.Node(members[0])
	reader.RetrieveBlockAuto(sys.Network(), target.Hash(), func(b *chain.Block, err error) {
		if err != nil {
			log.Fatalf("coded read: %v", err)
		}
		fmt.Printf("reconstructed block 0 from surviving shares: %d txs, root verified\n", len(b.Txs))
	})
	sys.Network().RunUntilIdle()

	// A replicated r=1 block would already be dead after a single unlucky
	// failure; the coded block pays only ~1.33x storage for parity-5
	// tolerance. See experiment E11 for the full frontier.
	fmt.Printf("\nstorage: replicated r=2 %.2fx  vs  coded %.2fx — and the coded block tolerates any %d share losses\n",
		before/body, after/body, parity)
}
