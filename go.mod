module icistrategy

go 1.22
