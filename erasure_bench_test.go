package icistrategy

import (
	"testing"

	"icistrategy/internal/erasure"
)

// Erasure hot-path benchmarks at the acceptance configuration: 1 MiB block
// bodies split RS(16, 4). BenchmarkErasureEncode is the table-driven kernel
// path; BenchmarkErasureEncodeScalar is the byte-at-a-time pre-kernel path
// kept as EncodeScalarReference, so the speedup the bench trail tracks
// (BENCH_PR2.json) is directly reproducible with
// `go test -bench 'Erasure' -benchtime 2s .`.

const (
	benchDataShards   = 16
	benchParityShards = 4
	benchPayload      = 1 << 20
)

func benchShards(b *testing.B) (*erasure.Code, [][]byte) {
	b.Helper()
	code, err := erasure.Cached(benchDataShards, benchParityShards)
	if err != nil {
		b.Fatal(err)
	}
	shardBytes := benchPayload / benchDataShards
	shards := make([][]byte, benchDataShards+benchParityShards)
	for i := range shards {
		shards[i] = make([]byte, shardBytes)
		for j := range shards[i] {
			shards[i][j] = byte(i*31 + j)
		}
	}
	return code, shards
}

func BenchmarkErasureEncode(b *testing.B) {
	code, shards := benchShards(b)
	b.SetBytes(benchPayload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := code.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErasureEncodeScalar(b *testing.B) {
	code, shards := benchShards(b)
	b.SetBytes(benchPayload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := code.EncodeScalarReference(shards); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkErasureReconstruct repairs the worst-case loss (parityShards
// data shards erased) with a warm decode-matrix cache — the steady-state
// repair path.
func BenchmarkErasureReconstruct(b *testing.B) {
	code, shards := benchShards(b)
	if err := code.Encode(shards); err != nil {
		b.Fatal(err)
	}
	work := make([][]byte, len(shards))
	b.SetBytes(benchPayload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, shards)
		for j := 0; j < benchParityShards; j++ {
			work[j] = nil
		}
		if err := code.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkErasureReconstructCold builds a fresh codec every iteration: the
// pre-registry cost including matrix derivation and inversion.
func BenchmarkErasureReconstructCold(b *testing.B) {
	code, shards := benchShards(b)
	if err := code.Encode(shards); err != nil {
		b.Fatal(err)
	}
	work := make([][]byte, len(shards))
	b.SetBytes(benchPayload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh, err := erasure.New(benchDataShards, benchParityShards)
		if err != nil {
			b.Fatal(err)
		}
		copy(work, shards)
		for j := 0; j < benchParityShards; j++ {
			work[j] = nil
		}
		if err := fresh.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkErasureSplitJoin covers the allocation-facing entry points the
// archival path uses around the kernels.
func BenchmarkErasureSplitJoin(b *testing.B) {
	code, err := erasure.Cached(benchDataShards, benchParityShards)
	if err != nil {
		b.Fatal(err)
	}
	body := make([]byte, benchPayload)
	for i := range body {
		body[i] = byte(i * 7)
	}
	b.SetBytes(benchPayload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards, err := code.Split(body)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := code.Join(shards); err != nil {
			b.Fatal(err)
		}
	}
}
