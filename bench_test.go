// Package icistrategy's root benchmark harness: one testing.B per paper
// artifact (experiments E1-E10, see DESIGN.md). Benchmarks run the Quick
// configuration so `go test -bench=.` completes in seconds; pass
// -paperscale to run the full reconstructed paper configuration (n=4096,
// 1 MiB blocks — minutes, matches cmd/icibench's default output).
package icistrategy

import (
	"flag"
	"testing"

	"icistrategy/internal/experiments"
)

var paperScale = flag.Bool("paperscale", false, "run benchmarks at the full paper configuration")

func params() experiments.Params {
	if *paperScale {
		return experiments.Defaults()
	}
	return experiments.Quick()
}

// benchExperiment runs one experiment per iteration and fails the benchmark
// on any error or empty table.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	p := params()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if tbl.NumRows() == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1StorageVsChainLength(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2StorageVsNetworkSize(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkE3StorageSummary(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4CommunicationOverhead(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5BootstrapCost(b *testing.B)         { benchExperiment(b, "E5") }
func BenchmarkE6VerificationLatency(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7Availability(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8BootstrapSavings(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9Throughput(b *testing.B)            { benchExperiment(b, "E9") }
func BenchmarkE10ClusteringAblation(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11ArchivalTradeoff(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12RepairCost(b *testing.B)           { benchExperiment(b, "E12") }
func BenchmarkE16ChurnAvailability(b *testing.B)    { benchExperiment(b, "E16") }
