// Package obs wires the observability subsystem (internal/trace spans plus
// the metrics.Registry counters) into command-line tools. Every command
// registers the same three flags:
//
//	-trace MODE   record protocol traces; MODE is "summary" (per-phase
//	              byte/latency table at exit) or "tree" (summary plus the
//	              full span forest)
//	-metrics DEST write the expvar-style JSON dump of every protocol
//	              counter at exit; DEST is a file path or "-" for stdout
//	-pprof ADDR   serve net/http/pprof plus a /metrics JSON endpoint on
//	              ADDR (e.g. "localhost:6060") for the run's duration
//
// With none of the flags set, tracing stays disabled (nil tracer: span
// calls are no-ops) and only the always-cheap atomic counters run.
package obs

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers its handlers on DefaultServeMux
	"os"

	"icistrategy/internal/metrics"
	"icistrategy/internal/trace"
)

// ringCapacity bounds the in-memory trace buffer; older events are evicted
// first (the summary notes when eviction happened).
const ringCapacity = 1 << 18

// Flags holds the parsed observability options of one command.
type Flags struct {
	traceMode  *string
	metricsOut *string
	pprofAddr  *string

	ring *trace.Ring
	tr   *trace.Tracer
	reg  *metrics.Registry

	pprofBound string // actual listen address once the pprof server is up
}

// Register adds the -trace/-metrics/-pprof flags to fs. Call Setup after
// fs.Parse.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	f.traceMode = fs.String("trace", "", `record protocol traces: "summary" or "tree"`)
	f.metricsOut = fs.String("metrics", "", `write protocol counters as JSON at exit (file path or "-")`)
	f.pprofAddr = fs.String("pprof", "", `serve net/http/pprof and /metrics on this address`)
	return f
}

// Setup validates the flags, builds the recorder, and starts the pprof
// server if requested.
func (f *Flags) Setup() error {
	switch *f.traceMode {
	case "", "summary", "tree":
	default:
		return fmt.Errorf(`obs: -trace must be "summary" or "tree", got %q`, *f.traceMode)
	}
	f.reg = metrics.NewRegistry()
	if *f.traceMode != "" {
		f.ring = trace.NewRing(ringCapacity)
		f.tr = trace.New(f.ring)
	}
	if *f.pprofAddr != "" {
		mux := http.DefaultServeMux // pprof already registered here
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = io.WriteString(w, f.reg.JSON())
		})
		srv := &http.Server{Addr: *f.pprofAddr, Handler: mux}
		ln, err := net.Listen("tcp", *f.pprofAddr)
		if err != nil {
			return fmt.Errorf("obs: pprof listen: %w", err)
		}
		f.pprofBound = ln.Addr().String()
		fmt.Fprintf(os.Stderr, "obs: pprof and /metrics on http://%s\n", f.pprofBound)
		go func() { _ = srv.Serve(ln) }()
	}
	return nil
}

// Tracer returns the run's tracer; nil (a valid no-op tracer) when -trace
// was not given.
func (f *Flags) Tracer() *trace.Tracer { return f.tr }

// PprofAddr returns the bound pprof/metrics listen address, or "" when
// -pprof was not given (the default: no debug server runs).
func (f *Flags) PprofAddr() string { return f.pprofBound }

// Registry returns the run's counter registry (never nil after Setup).
func (f *Flags) Registry() *metrics.Registry { return f.reg }

// Events returns the recorded trace events (nil when tracing is off).
func (f *Flags) Events() []trace.Event {
	if f.ring == nil {
		return nil
	}
	return f.ring.Events()
}

// Finish writes the end-of-run artifacts to w: the per-phase trace summary
// (and optionally the span tree), then the counter dump. summarize renders
// the events into the printed summary; commands pass a closure over
// experiments.TraceSummaryTable so obs does not depend on the experiments
// package.
func (f *Flags) Finish(w io.Writer, summarize func([]trace.Event) string) error {
	if f.ring != nil {
		events := f.ring.Events()
		if len(events) == 0 {
			fmt.Fprintln(w, "[trace: no events recorded]")
		} else {
			if evicted := f.ring.Total() - uint64(len(events)); evicted > 0 {
				fmt.Fprintf(w, "[trace: ring evicted %d oldest events]\n", evicted)
			}
			fmt.Fprintln(w, summarize(events))
			if *f.traceMode == "tree" {
				fmt.Fprintln(w, trace.Tree(events))
			}
		}
	}
	if *f.metricsOut != "" {
		dump := f.reg.JSON() + "\n"
		if *f.metricsOut == "-" {
			_, err := io.WriteString(w, dump)
			return err
		}
		if err := os.WriteFile(*f.metricsOut, []byte(dump), 0o644); err != nil {
			return fmt.Errorf("obs: write metrics: %w", err)
		}
		fmt.Fprintf(w, "[metrics written to %s]\n", *f.metricsOut)
	}
	return nil
}
