package obs

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"

	"icistrategy/internal/trace"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f
}

func TestSetupRejectsBadTraceMode(t *testing.T) {
	f := parse(t, "-trace", "verbose")
	if err := f.Setup(); err == nil {
		t.Fatal("Setup accepted -trace verbose")
	}
}

func TestDisabledByDefault(t *testing.T) {
	f := parse(t)
	if err := f.Setup(); err != nil {
		t.Fatal(err)
	}
	if f.Tracer() != nil {
		t.Error("tracer should be nil (no-op) without -trace")
	}
	if f.Registry() == nil {
		t.Error("registry must always exist")
	}
	if f.Events() != nil {
		t.Error("no events without a ring")
	}
	var out strings.Builder
	if err := f.Finish(&out, nil); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("Finish wrote output with everything disabled: %q", out.String())
	}
}

func TestFinishWritesSummaryTreeAndMetrics(t *testing.T) {
	f := parse(t, "-trace", "tree", "-metrics", "-")
	if err := f.Setup(); err != nil {
		t.Fatal(err)
	}
	tr := f.Tracer()
	if tr == nil {
		t.Fatal("tracer must exist with -trace")
	}
	sp := tr.Start(0, "demo", "op", 1)
	sp.AddBytes(100)
	sp.End()
	f.Registry().Counter("demo.ops").Inc()

	if n := len(f.Events()); n == 0 {
		t.Fatal("no events recorded")
	}
	var out strings.Builder
	err := f.Finish(&out, func(events []trace.Event) string {
		if len(events) == 0 {
			t.Error("summarize called with no events")
		}
		return "SUMMARY-MARKER"
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"SUMMARY-MARKER", "op", `"demo.ops": 1`} {
		if !strings.Contains(got, want) {
			t.Errorf("Finish output missing %q:\n%s", want, got)
		}
	}
}

func TestPprofOffByDefault(t *testing.T) {
	f := parse(t)
	if err := f.Setup(); err != nil {
		t.Fatal(err)
	}
	if addr := f.PprofAddr(); addr != "" {
		t.Fatalf("pprof server bound to %s without -pprof", addr)
	}
}

func TestPprofServesMetricsJSON(t *testing.T) {
	f := parse(t, "-pprof", "127.0.0.1:0")
	if err := f.Setup(); err != nil {
		t.Fatal(err)
	}
	addr := f.PprofAddr()
	if addr == "" {
		t.Fatal("-pprof did not bind a listener")
	}
	f.Registry().Counter("ici.test.pings").Inc()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]float64
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v\n%s", err, body)
	}
	if snap["ici.test.pings"] != 1 {
		t.Fatalf("counter missing from /metrics: %v", snap)
	}
}
