package core

import (
	"testing"

	"icistrategy/internal/chain"
	"icistrategy/internal/simnet"
)

// TestSoakMixedLifecycle runs a long interleaved scenario — block
// production, a join with bootstrap, a permanent departure with repair,
// coded archival, full-block retrievals, and light-client queries — and
// checks the intra-cluster integrity invariant and storage accounting at
// every stage. This is the closest thing to a production day in the life
// of an ICIStrategy deployment.
func TestSoakMixedLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	sys, gen := buildSystem(t, Config{Nodes: 36, Clusters: 3, Replication: 2, Seed: 99})
	var blocks []*chain.Block

	checkIntegrity := func(stage string) {
		t.Helper()
		for _, b := range blocks {
			for c := 0; c < sys.NumClusters(); c++ {
				if _, archived := sys.clusters[c].archivedInfo(b.Hash()); archived {
					continue // verified via reconstruction read below
				}
				if err := sys.ClusterHoldsBlock(c, b.Hash()); err != nil {
					t.Fatalf("%s: %v", stage, err)
				}
			}
		}
	}

	// Phase 1: steady-state production.
	blocks = append(blocks, produceAndSettle(t, sys, gen, 5, 20)...)
	checkIntegrity("phase 1")

	// Phase 2: a node joins cluster 1 mid-life.
	var joined simnet.NodeID
	var joinErr error
	if err := sys.JoinCluster(1, func(id simnet.NodeID, err error) { joined, joinErr = id, err }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if joinErr != nil {
		t.Fatalf("phase 2 join: %v", joinErr)
	}
	blocks = append(blocks, produceAndSettle(t, sys, gen, 3, 20)...)
	checkIntegrity("phase 2")

	// Phase 3: a member of cluster 0 leaves permanently; repair.
	members0, _ := sys.ClusterMembers(0)
	if err := sys.RemoveNode(members0[3]); err != nil {
		t.Fatal(err)
	}
	lost := -1
	if err := sys.RepairCluster(0, func(l int) { lost = l }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if lost != 0 {
		t.Fatalf("phase 3 repair lost %d chunks with r=2", lost)
	}
	blocks = append(blocks, produceAndSettle(t, sys, gen, 3, 20)...)
	checkIntegrity("phase 3")

	// Phase 4: archive the oldest block in cluster 2.
	cold := blocks[0]
	if err := sys.ArchiveBlock(2, cold.Hash(), 3, func(err error) {
		if err != nil {
			t.Errorf("phase 4 archive: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	checkIntegrity("phase 4")

	// Phase 5: every block retrievable from every cluster (auto-routing
	// through coded storage where archived), including by the newcomer.
	readers := []simnet.NodeID{0, joined}
	members2, _ := sys.ClusterMembers(2)
	readers = append(readers, members2[0])
	for _, r := range readers {
		node, err := sys.Node(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			var got *chain.Block
			var gotErr error
			node.RetrieveBlockAuto(sys.Network(), b.Hash(), func(blk *chain.Block, err error) {
				got, gotErr = blk, err
			})
			sys.Network().RunUntilIdle()
			if gotErr != nil {
				t.Fatalf("phase 5: reader %d block %d: %v", r, b.Header.Height, gotErr)
			}
			if got.Hash() != b.Hash() {
				t.Fatalf("phase 5: reader %d got wrong block", r)
			}
		}
	}

	// Phase 6: light-client inclusion queries against a live block.
	probe := blocks[len(blocks)-1]
	node0, _ := sys.Node(0)
	for _, tx := range probe.Txs[:5] {
		var gotErr error
		done := false
		node0.QueryTxProof(sys.Network(), probe.Hash(), tx.ID(), func(p TxProof, err error) {
			gotErr, done = err, true
			if err == nil {
				if verr := p.Verify(); verr != nil {
					t.Errorf("phase 6: proof fails verification: %v", verr)
				}
			}
		})
		sys.Network().RunUntilIdle()
		if !done || gotErr != nil {
			t.Fatalf("phase 6: query done=%v err=%v", done, gotErr)
		}
	}

	// Phase 7: global sanity — every live node committed every block, and
	// nobody stores more than a third of the total body data.
	var totalBody int64
	for _, b := range blocks {
		totalBody += int64(b.BodySize())
	}
	for id, n := range sys.nodes {
		if sys.net.IsDown(id) {
			continue
		}
		st := n.Store().Stats()
		if st.ChunkBytes > totalBody/3 {
			t.Fatalf("phase 7: node %d stores %d of %d body bytes", id, st.ChunkBytes, totalBody)
		}
	}
}
