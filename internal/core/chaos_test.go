package core

import (
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/consensus"
	"icistrategy/internal/simnet"
)

// TestChaosCorrupterCopies checks every corrupter arm: the returned payload
// differs from the input, while the input — which simnet shares with the
// sender's in-memory state — is left untouched.
func TestChaosCorrupterCopies(t *testing.T) {
	corrupt := ChaosCorrupter()
	rng := blockcrypto.NewRNG(99)
	key := blockcrypto.DeriveKeyPair(5, 1)
	tx := &chain.Transaction{Amount: 50, Nonce: 1, Fee: 1}
	tx.Sign(key)

	chunk := chunkPayload{PartIdx: 0, Parts: 1, Txs: []*chain.Transaction{tx}}

	t.Run("chunkPayload", func(t *testing.T) {
		out, ok := corrupt(simnet.Message{Payload: chunk}, rng)
		if !ok {
			t.Fatal("corrupter skipped a chunk payload")
		}
		mutated := out.(chunkPayload)
		if mutated.Txs[0].Amount == 50 {
			t.Fatal("corrupted chunk still carries the original amount")
		}
		if tx.Amount != 50 {
			t.Fatal("corrupter mutated the sender's transaction")
		}
	})

	t.Run("chunkRespMsg", func(t *testing.T) {
		resp := chunkRespMsg{Found: true, Chunk: chunk}
		out, ok := corrupt(simnet.Message{Payload: resp}, rng)
		if !ok {
			t.Fatal("corrupter skipped a found chunk response")
		}
		if out.(chunkRespMsg).Chunk.Txs[0].Amount == 50 || tx.Amount != 50 {
			t.Fatal("chunk response corruption leaked into sender memory")
		}
		if _, ok := corrupt(simnet.Message{Payload: chunkRespMsg{Found: false}}, rng); ok {
			t.Fatal("corrupter tampered with a not-found response")
		}
	})

	t.Run("blockChunksMsg", func(t *testing.T) {
		raw := []byte{1, 2, 3, 4}
		m := blockChunksMsg{Chunks: []retrievedChunk{{Idx: 0, Coded: true, Raw: raw}}}
		out, ok := corrupt(simnet.Message{Payload: m}, rng)
		if !ok {
			t.Fatal("corrupter skipped a coded chunks response")
		}
		oraw := out.(blockChunksMsg).Chunks[0].Raw
		same := len(oraw) == len(raw)
		for i := range raw {
			if oraw[i] != raw[i] {
				same = false
			}
		}
		if same {
			t.Fatal("coded share not corrupted")
		}
		if raw[0] != 1 || raw[1] != 2 || raw[2] != 3 || raw[3] != 4 {
			t.Fatal("corrupter mutated the sender's share bytes")
		}
	})

	t.Run("txProofMsg", func(t *testing.T) {
		m := txProofMsg{Found: true, Tx: tx}
		out, ok := corrupt(simnet.Message{Payload: m}, rng)
		if !ok {
			t.Fatal("corrupter skipped a found tx proof")
		}
		if out.(txProofMsg).Tx.Amount == 50 || tx.Amount != 50 {
			t.Fatal("tx proof corruption leaked into sender memory")
		}
	})

	t.Run("vote", func(t *testing.T) {
		v := consensus.SignChunkVote(1, blockcrypto.Sum256([]byte("b")), 0, true, key)
		out, ok := corrupt(simnet.Message{Payload: v}, rng)
		if !ok {
			t.Fatal("corrupter skipped a vote")
		}
		flipped := out.(consensus.Vote)
		if flipped.Approve == v.Approve {
			t.Fatal("vote verdict not flipped")
		}
		if consensus.VerifyVote(flipped, key.Public) == nil {
			t.Fatal("flipped vote still verifies — corruption would be undetectable")
		}
	})

	t.Run("uncorruptible", func(t *testing.T) {
		if _, ok := corrupt(simnet.Message{Payload: getCommitMsg{}}, rng); ok {
			t.Fatal("corrupter claimed to corrupt an opaque control message")
		}
	})
}
