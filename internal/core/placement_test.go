package core

import (
	"testing"
	"testing/quick"

	"icistrategy/internal/simnet"
)

func ids(n int) []simnet.NodeID {
	out := make([]simnet.NodeID, n)
	for i := range out {
		out[i] = simnet.NodeID(i * 7) // non-contiguous IDs on purpose
	}
	return out
}

func TestOwnersValidation(t *testing.T) {
	if _, err := Owners(1, nil, 0, 1); err == nil {
		t.Fatal("empty membership accepted")
	}
	members := ids(4)
	for _, r := range []int{0, -1, 5} {
		if _, err := Owners(1, members, 0, r); err == nil {
			t.Fatalf("r=%d accepted", r)
		}
	}
}

func TestOwnersDeterministicAndDistinct(t *testing.T) {
	members := ids(16)
	for r := 1; r <= 4; r++ {
		for idx := 0; idx < 16; idx++ {
			a, err := Owners(42, members, idx, r)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := Owners(42, members, idx, r)
			if len(a) != r {
				t.Fatalf("got %d owners, want %d", len(a), r)
			}
			seen := map[simnet.NodeID]bool{}
			for i := range a {
				if a[i] != b[i] {
					t.Fatal("Owners not deterministic")
				}
				if seen[a[i]] {
					t.Fatal("duplicate owner")
				}
				seen[a[i]] = true
			}
		}
	}
}

func TestOwnersBalanced(t *testing.T) {
	// Over many blocks, ownership load must be near-uniform.
	members := ids(20)
	counts := map[simnet.NodeID]int{}
	blocks, parts := 200, 20
	for b := 0; b < blocks; b++ {
		for idx := 0; idx < parts; idx++ {
			owners, err := Owners(uint64(b)*977+13, members, idx, 1)
			if err != nil {
				t.Fatal(err)
			}
			counts[owners[0]]++
		}
	}
	mean := float64(blocks*parts) / 20 // 200 each
	for id, c := range counts {
		if float64(c) < 0.7*mean || float64(c) > 1.3*mean {
			t.Fatalf("node %d owns %d chunks, mean %.0f: unbalanced", id, c, mean)
		}
	}
}

func TestOwnersMinimalDisruption(t *testing.T) {
	// Removing one member must only reassign the chunks that member owned.
	members := ids(12)
	removed := members[5]
	rest := make([]simnet.NodeID, 0, 11)
	for _, m := range members {
		if m != removed {
			rest = append(rest, m)
		}
	}
	moved, kept := 0, 0
	for b := uint64(0); b < 50; b++ {
		for idx := 0; idx < 12; idx++ {
			before, err := Owners(b, members, idx, 1)
			if err != nil {
				t.Fatal(err)
			}
			after, err := Owners(b, rest, idx, 1)
			if err != nil {
				t.Fatal(err)
			}
			if before[0] == removed {
				moved++
				continue
			}
			if before[0] != after[0] {
				t.Fatalf("block %d chunk %d moved from %d to %d although owner survived",
					b, idx, before[0], after[0])
			}
			kept++
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate test: moved=%d kept=%d", moved, kept)
	}
}

func TestIsOwnerAgreesWithOwners(t *testing.T) {
	members := ids(9)
	for idx := 0; idx < 9; idx++ {
		owners, err := Owners(7, members, idx, 3)
		if err != nil {
			t.Fatal(err)
		}
		ownerSet := map[simnet.NodeID]bool{}
		for _, o := range owners {
			ownerSet[o] = true
		}
		for _, m := range members {
			got, err := IsOwner(7, members, idx, 3, m)
			if err != nil {
				t.Fatal(err)
			}
			if got != ownerSet[m] {
				t.Fatalf("IsOwner(%d) = %v, Owners says %v", m, got, ownerSet[m])
			}
		}
	}
}

func TestSplitCounts(t *testing.T) {
	cases := []struct {
		total, parts int
		want         []int
	}{
		{10, 2, []int{5, 5}},
		{10, 3, []int{4, 3, 3}},
		{2, 4, []int{1, 1, 0, 0}},
		{0, 3, []int{0, 0, 0}},
		{7, 1, []int{7}},
	}
	for _, tc := range cases {
		got, err := SplitCounts(tc.total, tc.parts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("SplitCounts(%d,%d) = %v", tc.total, tc.parts, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("SplitCounts(%d,%d) = %v, want %v", tc.total, tc.parts, got, tc.want)
			}
		}
	}
	if _, err := SplitCounts(5, 0); err == nil {
		t.Fatal("parts=0 accepted")
	}
}

func TestSplitCountsProperties(t *testing.T) {
	f := func(totalRaw, partsRaw uint16) bool {
		total := int(totalRaw)
		parts := int(partsRaw%256) + 1
		counts, err := SplitCounts(total, parts)
		if err != nil {
			return false
		}
		sum, maxC, minC := 0, 0, int(^uint(0)>>1)
		for _, c := range counts {
			sum += c
			if c > maxC {
				maxC = c
			}
			if c < minC {
				minC = c
			}
		}
		return sum == total && maxC-minC <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkRange(t *testing.T) {
	// Ranges must tile [0, total) exactly, in order.
	total, parts := 103, 7
	prevEnd := 0
	for idx := 0; idx < parts; idx++ {
		start, end, err := ChunkRange(total, parts, idx)
		if err != nil {
			t.Fatal(err)
		}
		if start != prevEnd {
			t.Fatalf("chunk %d starts at %d, want %d", idx, start, prevEnd)
		}
		prevEnd = end
	}
	if prevEnd != total {
		t.Fatalf("ranges end at %d, want %d", prevEnd, total)
	}
	if _, _, err := ChunkRange(10, 3, 3); err == nil {
		t.Fatal("out-of-range chunk index accepted")
	}
	if _, _, err := ChunkRange(10, 3, -1); err == nil {
		t.Fatal("negative chunk index accepted")
	}
}

func BenchmarkOwners64(b *testing.B) {
	members := ids(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Owners(uint64(i), members, i%64, 2); err != nil {
			b.Fatal(err)
		}
	}
}
