package core

import (
	"testing"

	"icistrategy/internal/simnet"
)

func epochIDs(ns ...uint64) []simnet.NodeID {
	out := make([]simnet.NodeID, len(ns))
	for i, n := range ns {
		out[i] = simnet.NodeID(n)
	}
	return out
}

func TestEpochBoundaryArithmetic(t *testing.T) {
	ci := &clusterInfo{index: 0}
	ci.pushEpoch(0, epochIDs(0, 1, 2, 3))
	ci.pushEpoch(5, epochIDs(0, 1, 2))

	// A block exactly at fromHeight is governed by the new epoch; the block
	// one below stays with the old one.
	if got := ci.partsAt(4); got != 4 {
		t.Fatalf("partsAt(4) = %d, want 4 (old epoch)", got)
	}
	if got := ci.partsAt(5); got != 3 {
		t.Fatalf("partsAt(5) = %d, want 3 (boundary belongs to the new epoch)", got)
	}
	if got := ci.epochAt(5).seq; got != 1 {
		t.Fatalf("epochAt(5).seq = %d, want 1", got)
	}
	// Heights far beyond the last boundary resolve to the newest epoch.
	if got := ci.partsAt(1 << 40); got != 3 {
		t.Fatalf("partsAt(huge) = %d, want 3", got)
	}
	if got := len(ci.membersAt(4)); got != 4 {
		t.Fatalf("membersAt(4) has %d members, want 4", got)
	}
}

func TestBackToBackEpochsSameHeightLastWins(t *testing.T) {
	// Two membership changes before any block lands between them: the
	// shadowed epoch never governed a block, so lookups must resolve to the
	// later push at every height.
	ci := &clusterInfo{index: 0}
	ci.pushEpoch(0, epochIDs(0, 1, 2, 3))
	ci.pushEpoch(7, epochIDs(0, 1, 2))       // shadowed
	ci.pushEpoch(7, epochIDs(0, 1, 2, 4, 5)) // wins

	e := ci.epochAt(7)
	if e.seq != 2 || e.parts != 5 {
		t.Fatalf("epochAt(7) = seq %d parts %d, want seq 2 parts 5", e.seq, e.parts)
	}
	for h := uint64(0); h < 20; h++ {
		if ci.epochAt(h).seq == 1 {
			t.Fatalf("shadowed epoch governs height %d", h)
		}
	}
	if got := ci.partsAt(6); got != 4 {
		t.Fatalf("partsAt(6) = %d, want 4 (genesis epoch)", got)
	}
}

func TestAdvancePlacementMonotone(t *testing.T) {
	ci := &clusterInfo{index: 0}
	ci.pushEpoch(0, epochIDs(0, 1, 2, 3))
	ci.pushEpoch(3, epochIDs(0, 1, 2))
	ci.pushEpoch(6, epochIDs(0, 1, 2, 4))

	// Fresh epochs place under themselves.
	if got := ci.placementAt(0).seq; got != 0 {
		t.Fatalf("placementAt(0).seq = %d before any migration, want 0", got)
	}
	// Migrating to epoch 1 moves epoch 0's placement but not epoch 2's.
	ci.advancePlacement(1)
	if got := ci.placementAt(0).seq; got != 1 {
		t.Fatalf("placementAt(0).seq = %d after advance(1), want 1", got)
	}
	if got := ci.placementAt(6).seq; got != 2 {
		t.Fatalf("placementAt(6).seq = %d, newer epoch must be untouched", got)
	}
	// Advancing is monotone: an older migration completing late cannot roll
	// placement back.
	ci.advancePlacement(2)
	ci.advancePlacement(1)
	if got := ci.placementAt(0).seq; got != 2 {
		t.Fatalf("placementAt(0).seq = %d after late advance(1), want 2", got)
	}
	// Out-of-range targets are ignored.
	ci.advancePlacement(99)
	ci.advancePlacement(-1)
	if got := ci.placementAt(0).seq; got != 2 {
		t.Fatalf("placementAt(0).seq = %d after bogus advances, want 2", got)
	}
}

func TestFetchMembersUnion(t *testing.T) {
	ci := &clusterInfo{index: 0}
	ci.pushEpoch(0, epochIDs(0, 1, 2, 3))
	ci.pushEpoch(4, epochIDs(0, 1, 2)) // node 3 departed, not yet migrated

	// A pre-churn block's fetch set is the union of current and placement
	// members (minus self): the departed node may still be the only holder.
	got := ci.fetchMembers(0, 0)
	want := epochIDs(1, 2, 3)
	if len(got) != len(want) {
		t.Fatalf("fetchMembers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fetchMembers = %v, want %v", got, want)
		}
	}
	// After migration the union collapses to the current members.
	ci.advancePlacement(1)
	got = ci.fetchMembers(0, 0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("fetchMembers post-migration = %v, want [1 2]", got)
	}
}

func TestEpochLookupSurvivesPrune(t *testing.T) {
	// Prune never touches the epoch history: after a removal, repair and a
	// prune pass, historic blocks still resolve write-epoch arithmetic and
	// remain retrievable.
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 90})
	blocks := produceAndSettle(t, sys, gen, 3, 16)
	members, _ := sys.ClusterMembers(0)
	writeParts := len(members)
	if err := sys.RemoveNode(members[1]); err != nil {
		t.Fatal(err)
	}
	lost := -1
	if err := sys.RepairCluster(0, func(l int) { lost = l }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if lost != 0 {
		t.Fatal("repair lost chunks")
	}
	if _, err := sys.PruneCluster(0); err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if got := sys.clusters[0].partsAt(b.Header.Height); got != writeParts {
			t.Fatalf("height %d: parts %d after prune, want %d", b.Header.Height, got, writeParts)
		}
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatal(err)
		}
	}
	// Placement for historic heights points at the repaired epoch.
	if got := sys.clusters[0].placementAt(0).seq; got != 1 {
		t.Fatalf("placement seq = %d after repair+prune, want 1", got)
	}
}
