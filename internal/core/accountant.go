package core

import (
	"errors"
	"fmt"

	"icistrategy/internal/chain"
	"icistrategy/internal/cluster"
	"icistrategy/internal/simnet"
	"icistrategy/internal/strategy"
)

// Accountant errors.
var (
	ErrNilAssignment = errors.New("core: nil cluster assignment")
)

// Accountant is the analytic layer of ICIStrategy: it applies the exact
// chunking and rendezvous placement rules of the protocol to block sizes
// and answers byte-exact per-node storage and bootstrap questions without
// materializing any data. Node i of the assignment is simnet.NodeID(i).
type Accountant struct {
	assignment  *cluster.Assignment
	replication int
	nodeBytes   []int64 // body bytes owned per node
	headerBytes int64   // header bytes (identical on every node)
	blocks      int
	totalBody   int64
}

var _ strategy.Accountant = (*Accountant)(nil)

// NewAccountant builds the analytic model for the given cluster assignment
// and replication factor. Every cluster must be non-empty and replication
// must not exceed the smallest cluster.
func NewAccountant(asg *cluster.Assignment, replication int) (*Accountant, error) {
	if asg == nil {
		return nil, ErrNilAssignment
	}
	if err := asg.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	for c := 0; c < asg.NumClusters(); c++ {
		if sz := asg.Size(c); replication < 1 || replication > sz {
			return nil, fmt.Errorf("%w: r=%d, cluster %d has %d members", ErrBadReplica, replication, c, sz)
		}
	}
	return &Accountant{
		assignment:  asg,
		replication: replication,
		nodeBytes:   make([]int64, len(asg.ClusterOf)),
	}, nil
}

// Name implements strategy.Accountant.
func (a *Accountant) Name() string { return "ici" }

// NumBlocks implements strategy.Accountant.
func (a *Accountant) NumBlocks() int { return a.blocks }

// NumNodes implements strategy.Accountant.
func (a *Accountant) NumNodes() int { return len(a.nodeBytes) }

// Replication returns the configured replication factor.
func (a *Accountant) Replication() int { return a.replication }

// AddBlock implements strategy.Accountant: record a block whose body is
// bodySize bytes, seeding placement with the block index. Chunk sizes are
// the balanced integer split of the body across each cluster's members —
// exact for the uniform-transaction workloads the experiments run, and
// within one transaction of the protocol otherwise.
func (a *Accountant) AddBlock(bodySize int64) {
	a.addBlockSized(uint64(a.blocks)+1, int(bodySize), nil)
}

// AddBlockSeeded is AddBlock with an explicit placement seed (the protocol
// uses the block hash); the cross-check tests feed both layers the same
// seed and expect identical per-node bytes.
func (a *Accountant) AddBlockSeeded(seed uint64, bodySize int64) {
	a.addBlockSized(seed, int(bodySize), nil)
}

// AddBlockTxs records a block given its individual encoded transaction
// sizes, reproducing the protocol's transaction-boundary chunking exactly.
func (a *Accountant) AddBlockTxs(seed uint64, txSizes []int) {
	a.addBlockSized(seed, 0, txSizes)
}

func (a *Accountant) addBlockSized(seed uint64, bodySize int, txSizes []int) {
	a.blocks++
	a.headerBytes += int64(chain.HeaderSize)
	if txSizes != nil {
		bodySize = 4
		for _, s := range txSizes {
			bodySize += s
		}
	}
	a.totalBody += int64(bodySize)

	for c := 0; c < a.assignment.NumClusters(); c++ {
		members := a.assignment.Members[c]
		ids := memberIDs(members)
		parts := len(members)
		var chunkBytes []int
		if txSizes != nil {
			chunkBytes = chunkBytesFromTxs(txSizes, parts)
		} else {
			// Balanced byte split; SplitCounts cannot fail for parts >= 1.
			chunkBytes, _ = SplitCounts(bodySize, parts)
		}
		for i, cb := range chunkBytes {
			owners, err := Owners(seed, ids, i, a.replication)
			if err != nil {
				// Unreachable: membership and replication were validated in
				// NewAccountant.
				continue
			}
			for _, o := range owners {
				a.nodeBytes[int(o)] += int64(cb)
			}
		}
	}
}

// chunkBytesFromTxs computes the encoded size of each chunk when the
// transaction list is split into parts balanced groups, matching
// chain.Block sub-body encoding (4-byte count prefix per chunk).
func chunkBytesFromTxs(txSizes []int, parts int) []int {
	counts, _ := SplitCounts(len(txSizes), parts)
	out := make([]int, parts)
	idx := 0
	for i, cnt := range counts {
		total := 4
		for j := 0; j < cnt; j++ {
			total += txSizes[idx]
			idx++
		}
		out[i] = total
	}
	return out
}

func memberIDs(members []int) []simnet.NodeID {
	out := make([]simnet.NodeID, len(members))
	for i, m := range members {
		out[i] = simnet.NodeID(m)
	}
	return out
}

// NodeBytes implements strategy.Accountant.
func (a *Accountant) NodeBytes(node int) (int64, error) {
	if node < 0 || node >= len(a.nodeBytes) {
		return 0, strategy.ErrNodeOutOfRange
	}
	return a.headerBytes + a.nodeBytes[node], nil
}

// BootstrapBytes implements strategy.Accountant: a joining ICI node
// downloads every header plus only the chunks rendezvous placement assigns
// to it — exactly its steady-state footprint.
func (a *Accountant) BootstrapBytes(node int) (int64, error) {
	return a.NodeBytes(node)
}

// TotalBodyBytes returns the total body data recorded so far (one logical
// copy).
func (a *Accountant) TotalBodyBytes() int64 { return a.totalBody }
