package core

import (
	"testing"

	"icistrategy/internal/simnet"
	"icistrategy/internal/storage"
)

func TestJoinClusterBootstrap(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 20})
	blocks := produceAndSettle(t, sys, gen, 4, 16)

	var joined simnet.NodeID
	var joinErr error
	done := false
	if err := sys.JoinCluster(0, func(id simnet.NodeID, err error) {
		joined, joinErr, done = id, err, true
	}); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if !done {
		t.Fatal("join never completed")
	}
	if joinErr != nil {
		t.Fatalf("bootstrap: %v", joinErr)
	}
	node, err := sys.Node(joined)
	if err != nil {
		t.Fatal(err)
	}
	// The newcomer has every header...
	st := node.Store().Stats()
	if st.HeaderCount != int64(len(blocks)) {
		t.Fatalf("newcomer has %d headers, want %d", st.HeaderCount, len(blocks))
	}
	// ...and exactly the chunks rendezvous assigns it under the new
	// membership.
	members, _ := sys.ClusterMembers(0)
	for _, b := range blocks {
		seed := b.Hash().Uint64()
		parts := sys.clusters[0].partsAt(b.Header.Height)
		for idx := 0; idx < parts; idx++ {
			owns, err := IsOwner(seed, members, idx, 2, joined)
			if err != nil {
				t.Fatal(err)
			}
			has := node.Store().HasChunk(storage.ChunkID{Block: b.Hash(), Index: idx})
			if owns && !has {
				t.Fatalf("newcomer misses owned chunk %d of block %d", idx, b.Header.Height)
			}
			if !owns && has {
				t.Fatalf("newcomer stores unowned chunk %d of block %d", idx, b.Header.Height)
			}
		}
	}
	// Integrity still holds, and new blocks use the grown membership.
	more := produceAndSettle(t, sys, gen, 2, 18)
	for _, b := range more {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatal(err)
		}
		if !node.Store().HasHeader(b.Hash()) {
			t.Fatal("newcomer did not participate in post-join blocks")
		}
	}
}

func TestBootstrapCostFraction(t *testing.T) {
	// A joining node must download roughly headers + r/c of the body data,
	// not the whole chain.
	sys, gen := buildSystem(t, Config{Nodes: 24, Clusters: 2, Replication: 1, Seed: 21})
	blocks := produceAndSettle(t, sys, gen, 5, 24)
	var totalBody int64
	for _, b := range blocks {
		totalBody += int64(b.BodySize())
	}
	sys.Network().ResetTraffic()
	var joined simnet.NodeID
	var joinErr error
	if err := sys.JoinCluster(0, func(id simnet.NodeID, err error) { joined, joinErr = id, err }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if joinErr != nil {
		t.Fatal(joinErr)
	}
	tr, err := sys.Network().Traffic(joined)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster size ~13 post-join: expected body share ~1/13 ≈ 7.7%. Allow
	// generous slack for proofs and framing, but far below full chain.
	if tr.BytesRecv > totalBody/2 {
		t.Fatalf("bootstrap downloaded %d bytes; full chain is %d — no savings", tr.BytesRecv, totalBody)
	}
	if tr.BytesRecv == 0 {
		t.Fatal("bootstrap downloaded nothing")
	}
}

func TestRemoveNodeAndRepair(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 22})
	blocks := produceAndSettle(t, sys, gen, 4, 16)
	members, _ := sys.ClusterMembers(0)
	victim := members[2]
	if err := sys.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	lost := -1
	if err := sys.RepairCluster(0, func(l int) { lost = l }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if lost != 0 {
		t.Fatalf("repair lost %d chunks with r=2", lost)
	}
	// Integrity must hold without the departed member.
	for _, b := range blocks {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatal(err)
		}
	}
	// And new blocks commit with the shrunk membership.
	more := produceAndSettle(t, sys, gen, 2, 16)
	for _, b := range more {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRepairWithReplicationOneLosesChunks(t *testing.T) {
	// r=1 has no redundancy: a departed member's chunks are unrecoverable
	// from inside the cluster. This is exactly the fragility the
	// availability experiment quantifies.
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 1, Seed: 23})
	produceAndSettle(t, sys, gen, 4, 16)
	members, _ := sys.ClusterMembers(0)
	victim := members[1]
	vnode, _ := sys.Node(victim)
	victimChunks := vnode.Store().Stats().ChunkCount
	if victimChunks == 0 {
		t.Skip("victim owned no chunks under this seed")
	}
	if err := sys.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	lost := -1
	if err := sys.RepairCluster(0, func(l int) { lost = l }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if int64(lost) != victimChunks {
		t.Fatalf("lost %d chunks, victim owned %d", lost, victimChunks)
	}
}

func TestJoinNeedsLiveSponsor(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 8, Clusters: 2, Replication: 1, Seed: 24})
	produceAndSettle(t, sys, gen, 1, 8)
	members, _ := sys.ClusterMembers(0)
	for _, m := range members {
		if err := sys.FailNode(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.JoinCluster(0, func(simnet.NodeID, error) {}); err == nil {
		t.Fatal("join into a dead cluster accepted")
	}
}

func TestRemoveLastMemberRefused(t *testing.T) {
	sys, _ := buildSystem(t, Config{Nodes: 4, Clusters: 4, Replication: 1, Seed: 25})
	members, _ := sys.ClusterMembers(0)
	if err := sys.RemoveNode(members[0]); err == nil {
		t.Fatal("removing a cluster's last member accepted")
	}
}

func TestIsolatedClusterStallsOthersProceed(t *testing.T) {
	// Partition cluster 0 away from the rest of the network: the producer
	// cannot reach its leader, so cluster 0 stalls, while cluster 1
	// commits normally. Healing lets a later block flow again.
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 1, Seed: 70})
	members0, _ := sys.ClusterMembers(0)
	rest := make([]simnet.NodeID, 0, 8)
	for id := simnet.NodeID(0); id < 16; id++ {
		isolated := false
		for _, m := range members0 {
			if m == id {
				isolated = true
				break
			}
		}
		if !isolated {
			rest = append(rest, id)
		}
	}
	sys.Network().Partition(members0, rest)
	blocks := produceAndSettle(t, sys, gen, 1, 16)
	b := blocks[0]
	ok0, err := sys.ClusterCommitted(0, b.Hash())
	if err != nil {
		t.Fatal(err)
	}
	ok1, err := sys.ClusterCommitted(1, b.Hash())
	if err != nil {
		t.Fatal(err)
	}
	// The proposer lives in one side of the partition; its own side's
	// cluster commits, the other stalls.
	if ok0 == ok1 {
		t.Fatalf("partition had no effect: cluster0=%v cluster1=%v", ok0, ok1)
	}
	sys.Network().Heal()
	more := produceAndSettle(t, sys, gen, 1, 16)
	if !sys.AllCommitted(more[0].Hash()) {
		t.Fatal("post-heal block did not commit everywhere")
	}
}

func TestBootstrapRoutesAroundCorruptedSource(t *testing.T) {
	// Corrupt chunks on one member before a join: fetched chunks that fail
	// verification are refused and the bootstrap falls back to the other
	// replica (r=2), still completing successfully.
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 71})
	blocks := produceAndSettle(t, sys, gen, 3, 16)
	members, _ := sys.ClusterMembers(0)
	saboteur, _ := sys.Node(members[0])
	corrupted := 0
	for _, b := range blocks {
		for _, idx := range saboteur.Store().ChunksForBlock(b.Hash()) {
			if saboteur.Store().Corrupt(storage.ChunkID{Block: b.Hash(), Index: idx}) {
				corrupted++
			}
		}
	}
	if corrupted == 0 {
		t.Skip("saboteur held no chunks under this seed")
	}
	var joinErr error
	done := false
	if err := sys.JoinCluster(0, func(_ simnet.NodeID, err error) { joinErr, done = err, true }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if !done {
		t.Fatal("join never completed")
	}
	if joinErr != nil {
		t.Fatalf("bootstrap failed despite live replicas: %v", joinErr)
	}
}

func TestRepairRoutesAroundCorruptedSource(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 18, Clusters: 2, Replication: 3, Seed: 72})
	blocks := produceAndSettle(t, sys, gen, 3, 18)
	members, _ := sys.ClusterMembers(0)
	// Corrupt everything on one surviving member, then remove another.
	saboteur, _ := sys.Node(members[0])
	for _, b := range blocks {
		for _, idx := range saboteur.Store().ChunksForBlock(b.Hash()) {
			saboteur.Store().Corrupt(storage.ChunkID{Block: b.Hash(), Index: idx})
		}
	}
	if err := sys.RemoveNode(members[2]); err != nil {
		t.Fatal(err)
	}
	lost := -1
	if err := sys.RepairCluster(0, func(l int) { lost = l }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if lost != 0 {
		t.Fatalf("repair lost %d chunks despite r=3 and one corrupted member", lost)
	}
}
