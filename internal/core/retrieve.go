package core

import (
	"fmt"
	"sort"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/simnet"
	"icistrategy/internal/storage"
	"icistrategy/internal/trace"
)

// RetrieveBlock reassembles a full historical block from the chunks held by
// this node's cluster. cb is invoked exactly once, with the verified block
// or an error. This is the read path a light client or application would
// use against an ICIStrategy cluster.
func (n *Node) RetrieveBlock(net *simnet.Network, block blockcrypto.Hash, cb func(*chain.Block, error)) {
	n.retrieveBlock(net, block, n.rxSpan, cb)
}

// retrieveBlock is RetrieveBlock under an explicit parent span (archival
// retrieves blocks from inside its own span).
func (n *Node) retrieveBlock(net *simnet.Network, block blockcrypto.Hash, parent trace.SpanID, cb func(*chain.Block, error)) {
	if !n.store.HasHeader(block) {
		cb(nil, fmt.Errorf("%w: %s", ErrUnknownBlock, block.Short()))
		return
	}
	n.nextReq++
	req := n.nextReq
	st := &fetchState{
		block:   block,
		chunks:  make(map[int]retrievedChunk),
		timeout: fetchTimeout,
		onBlock: cb,
		span:    n.tr.Start(parent, "retrieve", "retrieve", int64(n.id)),
	}
	n.fetches[req] = st
	n.pc.retrievals.Inc()

	// Seed with local chunks.
	for _, idx := range n.store.ChunksForBlock(block) {
		id := storage.ChunkID{Block: block, Index: idx}
		chk, err := n.store.Chunk(id)
		if err != nil {
			// A locally held chunk that fails its digest check (bit rot,
			// torn write) must not be silently skipped: count it and fall
			// through to the remote fetch below, which re-establishes the
			// chunk from the other owners.
			n.metrics.LocalChunkErrors.Inc()
			continue
		}
		meta := n.meta[id]
		if txs, derr := chain.DecodeBody(chk.Data); derr == nil {
			st.parts = meta.parts
			st.chunks[idx] = retrievedChunk{Idx: idx, TxStart: meta.txStart, Txs: txs}
		} else {
			n.metrics.LocalChunkErrors.Inc()
		}
	}
	if n.tryFinishRetrieve(req, st) {
		return
	}
	n.broadcastFetch(net, req, st)
}

// broadcastFetch issues one round of cluster-wide chunk requests for a
// retrieval and arms its timeout. Timed-out rounds are retried with doubled
// timeout up to maxFetchAttempts; a round every member answered without
// completing the block is definitive and fails immediately.
func (n *Node) broadcastFetch(net *simnet.Network, req uint64, st *fetchState) {
	st.attempts++
	st.waiting = 0
	// Ask the union of the current members and the block's placement-epoch
	// members: before a migration completes, pre-churn chunks still live
	// on the epoch the block was written under, and asking only the
	// current membership would miss them.
	targets := without(n.cluster.members, n.id)
	if hdr, err := n.store.Header(st.block); err == nil {
		targets = n.cluster.fetchMembers(hdr.Height, n.id)
	}
	st.responded = make(map[simnet.NodeID]bool, len(targets))
	n.pc.retrieveRounds.Inc()
	for _, m := range targets {
		st.waiting++
		_ = net.Send(simnet.Message{
			From: n.id, To: m, Kind: KindGetBlockChunks,
			Size: reqOverhead, Span: st.span.Context(),
			Payload: getBlockChunksMsg{Block: st.block, ReqID: req, Round: st.attempts},
		})
	}
	if st.waiting == 0 {
		n.failFetch(req, st, ErrRetrieveFailed)
		return
	}
	attempt := st.attempts
	net.After(st.timeout, func() {
		cur, ok := n.fetches[req]
		if !ok || cur.done || cur.attempts != attempt {
			return // finished, or a newer round superseded this timer
		}
		if cur.attempts >= maxFetchAttempts {
			n.failFetch(req, cur, ErrRetrieveFailed)
			return
		}
		n.metrics.RetrieveRetries.Inc()
		cur.timeout *= 2
		n.broadcastFetch(net, req, cur)
	})
}

// onBlockChunks consumes one member's contribution to a retrieval.
//
// A response only participates in the current round's bookkeeping when its
// Round tag matches: an answer to an earlier, timed-out round still merges
// its chunk data (verified data speaks for itself, and it may complete the
// block), but it must not mark the member as having answered the current
// round — otherwise a slow round-1 answer arriving during round 2 can
// drive waiting to zero with a member's round-2 answer still in flight and
// fire the "every member answered" definitive failure prematurely.
func (n *Node) onBlockChunks(net *simnet.Network, from simnet.NodeID, m blockChunksMsg) {
	st, ok := n.fetches[m.ReqID]
	if !ok || st.done || st.block != m.Block {
		return
	}
	stale := m.Round != st.attempts
	if stale {
		n.metrics.StaleResponses.Inc()
		n.pc.staleResponses.Inc()
	} else if st.responded[from] {
		n.metrics.DuplicateResponses.Inc()
		return // duplicate delivery of a response already merged
	} else {
		st.responded[from] = true
		st.waiting--
	}
	if m.Parts > 0 && st.codedK == 0 {
		st.parts = m.Parts
	}
	for _, c := range m.Chunks {
		if c.Coded != (st.codedK > 0) {
			continue // a stale member answering in the other storage mode
		}
		if _, have := st.chunks[c.Idx]; !have {
			st.chunks[c.Idx] = c
		}
	}
	finished := false
	if st.codedK > 0 {
		finished = n.tryFinishCodedRetrieve(m.ReqID, st)
	} else {
		finished = n.tryFinishRetrieve(m.ReqID, st)
	}
	if finished || stale {
		return
	}
	if st.waiting == 0 {
		// Every member answered the current round and the block is still
		// incomplete: the data is genuinely missing right now; retrying the
		// same members cannot help.
		n.failFetch(m.ReqID, st, ErrRetrieveFailed)
	}
}

// tryFinishRetrieve reassembles and verifies once every chunk is present.
func (n *Node) tryFinishRetrieve(req uint64, st *fetchState) bool {
	if st.onBlock == nil || st.parts == 0 || len(st.chunks) < st.parts {
		return false
	}
	idxs := make([]int, 0, len(st.chunks))
	for i := range st.chunks {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var txs []*chain.Transaction
	for _, i := range idxs {
		txs = append(txs, st.chunks[i].Txs...)
	}
	hdr, err := n.store.Header(st.block)
	if err != nil {
		n.failFetch(req, st, err)
		return true
	}
	b := &chain.Block{Header: hdr, Txs: txs}
	if err := b.VerifyShape(); err != nil {
		// Root mismatch: some member served corrupt or misordered data.
		n.failFetch(req, st, fmt.Errorf("%w: %v", ErrRetrieveFailed, err))
		return true
	}
	st.done = true
	delete(n.fetches, req)
	n.finishFetchSpan(st, int64(b.BodySize()), nil)
	st.onBlock(b, nil)
	return true
}

func (n *Node) failFetch(req uint64, st *fetchState, err error) {
	if st.done {
		return
	}
	st.done = true
	delete(n.fetches, req)
	n.finishFetchSpan(st, 0, err)
	if st.onBlock != nil {
		st.onBlock(nil, err)
	}
	if st.onChunk != nil {
		st.onChunk(err)
	}
}

// finishFetchSpan closes a fetch's span and bumps the outcome counters on
// every terminal path (success, definitive failure, final timeout).
func (n *Node) finishFetchSpan(st *fetchState, bytes int64, err error) {
	// Coded (archival) retrievals count under ici.archive.*, not here.
	if st.onBlock != nil && st.codedK == 0 {
		if err == nil {
			n.pc.retrieveOK.Inc()
			n.pc.retrievedBlocks.Add(bytes)
		} else {
			n.pc.retrieveFailed.Inc()
		}
	}
	st.span.AddBytes(bytes)
	st.span.SetErr(err)
	st.span.End()
}

// --- bootstrap ---------------------------------------------------------------

// bootstrapState tracks a join in progress.
type bootstrapState struct {
	sponsor     simnet.NodeID
	outstanding int
	failed      bool
	// headersDone latches the header phase: a duplicate headersMsg must not
	// rerun the chunk-fetch fan-out.
	headersDone bool
	attempts    int
	timeout     time.Duration
	cb          func(error)
	// span covers the whole join: header sync plus every owned-chunk fetch.
	span trace.Span
}

// Bootstrap joins the cluster: fetch every header from sponsor, then fetch
// only the chunks rendezvous placement assigns to this node under the
// post-join membership. cb fires once with nil on success. The node must
// already be registered in the network and present in the cluster's member
// list (System.JoinCluster arranges both).
func (n *Node) Bootstrap(net *simnet.Network, sponsor simnet.NodeID, cb func(error)) {
	n.bootstrap = &bootstrapState{
		sponsor: sponsor, timeout: fetchTimeout, cb: cb,
		span: n.tr.Start(0, "bootstrap", "bootstrap", int64(n.id)),
	}
	n.pc.bootstraps.Inc()
	n.requestHeaders(net)
}

// requestHeaders sends one header request to the sponsor and arms its
// timeout. Lost requests (or lost replies) are retried with doubled timeout
// up to maxFetchAttempts; the chunk phase that follows has its own per-fetch
// retry logic and needs no outer timer.
func (n *Node) requestHeaders(net *simnet.Network) {
	bs := n.bootstrap
	if bs == nil || bs.headersDone {
		return
	}
	bs.attempts++
	attempt := bs.attempts
	n.pc.headerRounds.Inc()
	_ = net.Send(simnet.Message{
		From: n.id, To: bs.sponsor, Kind: KindGetHeaders,
		Size: reqOverhead, Payload: getHeadersMsg{FromHeight: 0}, Span: bs.span.Context(),
	})
	net.After(bs.timeout, func() {
		cur := n.bootstrap
		if cur == nil || cur.headersDone || cur.attempts != attempt {
			return
		}
		if cur.attempts >= maxFetchAttempts {
			n.finishBootstrap(ErrBootstrapFailed)
			return
		}
		n.metrics.BootstrapRetries.Inc()
		cur.timeout *= 2
		n.requestHeaders(net)
	})
}

// onHeaders continues the bootstrap: validate the header chain, then fetch
// owned chunks.
func (n *Node) onHeaders(net *simnet.Network, m headersMsg) {
	bs := n.bootstrap
	if bs == nil {
		return
	}
	if bs.headersDone {
		n.metrics.DuplicateResponses.Inc()
		return // duplicate delivery of the sponsor's answer
	}
	bs.headersDone = true
	// Validate linkage before trusting anything.
	var prev *chain.Header
	for i := range m.Headers {
		h := m.Headers[i]
		if prev != nil {
			b := chain.Block{Header: h}
			if err := b.VerifyLink(prev); err != nil {
				n.finishBootstrap(fmt.Errorf("%w: header %d: %v", ErrBootstrapFailed, i, err))
				return
			}
		} else if h.Height != 0 || !h.PrevHash.IsZero() {
			n.finishBootstrap(fmt.Errorf("%w: chain does not start at genesis", ErrBootstrapFailed))
			return
		}
		n.store.PutHeader(h)
		prev = &m.Headers[i]
	}
	// Fetch the chunks this node now owns under the current epoch.
	for _, h := range m.Headers {
		block := h.Hash()
		parts := n.cluster.partsAt(h.Height)
		place := n.cluster.placementAt(h.Height).members
		seed := block.Uint64()
		for idx := 0; idx < parts; idx++ {
			owners, err := Owners(seed, n.cluster.members, idx, n.replication) //icilint:allow epochres(bootstrap decides what this node should hold under the live roster; fetch sources resolve via placementAt above)
			if err != nil {
				continue
			}
			if !memberOf(owners, n.id) {
				continue
			}
			// The block's placement-epoch owners definitively stored the
			// chunk — ask them first. Then the current co-owners (they may
			// hold a migrated copy already) and finally the remaining
			// placement members (stale extra copies survive until pruning).
			sources := chunkSources(seed, idx, n.replication, place, n.cluster.members, n.id)
			if len(sources) == 0 {
				continue
			}
			bs.outstanding++
			n.pc.bootstrapChunks.Inc()
			n.fetchChunk(net, block, idx, sources, bs.span.Context(), "bootstrap", func(err error) {
				if err != nil {
					bs.failed = true
				}
				bs.outstanding--
				if bs.outstanding == 0 {
					if bs.failed {
						n.finishBootstrap(ErrBootstrapFailed)
					} else {
						n.finishBootstrap(nil)
					}
				}
			})
		}
	}
	if bs.outstanding == 0 {
		n.finishBootstrap(nil)
	}
}

func (n *Node) finishBootstrap(err error) {
	if n.bootstrap == nil || n.bootstrap.cb == nil {
		return
	}
	bs := n.bootstrap
	cb := bs.cb
	bs.cb = nil
	n.bootstrap = nil
	if err != nil {
		n.pc.bootstrapFailed.Inc()
	}
	bs.span.SetErr(err)
	bs.span.End()
	cb(err)
}

// chunkSources builds the deterministic source ring for re-establishing
// one chunk: the owners under the block's placement epoch (they stored the
// chunk when it was distributed or last migrated), then the current-epoch
// co-owners (a completed migration may already have copied it), then the
// remaining placement members (stale extra copies survive until pruning).
// self is excluded throughout.
func chunkSources(seed uint64, idx, replication int, place, current []simnet.NodeID, self simnet.NodeID) []simnet.NodeID {
	sources := make([]simnet.NodeID, 0, len(place)+replication)
	add := func(ids []simnet.NodeID) {
		for _, o := range ids {
			if o != self && !memberOf(sources, o) {
				sources = append(sources, o)
			}
		}
	}
	if placeOwners, err := Owners(seed, place, idx, replication); err == nil {
		add(placeOwners)
	}
	if curOwners, err := Owners(seed, current, idx, replication); err == nil {
		add(curOwners)
	}
	add(place)
	return sources
}

// without returns members minus id.
func without(members []simnet.NodeID, id simnet.NodeID) []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(members))
	for _, m := range members {
		if m != id {
			out = append(out, m)
		}
	}
	return out
}

// fetchChunk requests one chunk, trying sources in order until one serves a
// verifiable copy. cb fires once. The fetch's span opens under parent with
// the calling protocol's label (bootstrap or repair).
func (n *Node) fetchChunk(net *simnet.Network, block blockcrypto.Hash, idx int, sources []simnet.NodeID, parent trace.SpanID, proto string, cb func(error)) {
	id := storage.ChunkID{Block: block, Index: idx}
	if n.store.HasChunk(id) {
		cb(nil)
		return
	}
	if len(sources) == 0 {
		cb(ErrChunkLost)
		return
	}
	n.nextReq++
	req := n.nextReq
	st := &fetchState{
		block:   block,
		idx:     idx,
		sources: sources,
		timeout: fetchTimeout,
		onChunk: cb,
		span:    n.tr.Start(parent, proto, fmt.Sprintf("fetch-chunk[%d]", idx), int64(n.id)),
	}
	n.fetches[req] = st
	n.sendChunkReq(net, req, st)
}

// sendChunkReq asks the fetch's current source for the chunk and arms a
// per-request timeout. A timed-out source is skipped (it may be crashed, or
// the request/response was lost) and the fetch moves on.
func (n *Node) sendChunkReq(net *simnet.Network, req uint64, st *fetchState) {
	st.attempts++
	attempt := st.attempts
	_ = net.Send(simnet.Message{
		From: n.id, To: st.sources[st.srcPos], Kind: KindGetChunk,
		Size: reqOverhead, Span: st.span.Context(),
		Payload: getChunkMsg{Block: st.block, Idx: st.idx, ReqID: req, Attempt: attempt},
	})
	net.After(st.timeout, func() {
		cur, ok := n.fetches[req]
		if !ok || cur.done || cur.attempts != attempt {
			return // answered, or a later request superseded this timer
		}
		n.metrics.FetchTimeouts.Inc()
		cur.timedOut = true
		n.advanceChunkSource(net, req, cur)
	})
}

// advanceChunkSource moves a single-chunk fetch to its next source. When the
// ring is exhausted it starts another pass with a doubled timeout — but only
// if some source timed out during the pass: a pass where every source
// definitively answered "don't have it" (or served garbage) cannot be saved
// by asking again.
func (n *Node) advanceChunkSource(net *simnet.Network, req uint64, st *fetchState) {
	st.srcPos++
	if st.srcPos >= len(st.sources) {
		if !st.timedOut || st.passes+1 >= maxSourcePasses {
			n.failFetch(req, st, ErrChunkLost)
			return
		}
		st.passes++
		st.srcPos = 0
		st.timedOut = false
		st.timeout *= 2
		n.metrics.FetchRetries.Inc()
	}
	n.sendChunkReq(net, req, st)
}

// onChunkResp finishes (or advances) a single-chunk fetch.
func (n *Node) onChunkResp(net *simnet.Network, from simnet.NodeID, m chunkRespMsg) {
	st, ok := n.fetches[m.ReqID]
	if !ok || st.done || st.block != m.Block {
		return
	}
	ok = m.Found
	if ok {
		// The chunk must verify against the locally known header.
		hdr, err := n.store.Header(m.Block)
		if err != nil || hdr.MerkleRoot != m.Chunk.Header.MerkleRoot {
			ok = false
		} else if verifyChunk(m.Chunk) != nil || m.Chunk.PartIdx != st.idx {
			ok = false
		}
	}
	if ok {
		// A verified chunk is accepted from any source, even one already
		// timed out: the data speaks for itself.
		delete(n.fetches, m.ReqID)
		st.done = true
		n.persistChunk(m.Block, m.Chunk)
		n.finishFetchSpan(st, int64(m.Chunk.dataBytes()), nil)
		st.onChunk(nil)
		return
	}
	// A definitive negative (or invalid) answer only advances the fetch if
	// it answers the attempt currently being waited on. The source check
	// alone is not enough: on a later pass over the ring the same source is
	// asked again, and its stale negative from the earlier, timed-out
	// attempt would double-advance the ring past it before the live answer
	// arrives.
	if m.Attempt != st.attempts {
		n.metrics.StaleResponses.Inc()
		n.pc.staleResponses.Inc()
		return
	}
	if st.srcPos < len(st.sources) && from == st.sources[st.srcPos] {
		n.advanceChunkSource(net, m.ReqID, st)
		return
	}
	n.metrics.DuplicateResponses.Inc()
}

// --- repair -------------------------------------------------------------------

// RepairOwnership scans every committed block and fetches any chunk this
// node owns under the current epoch (after a membership change) but does
// not hold — the placement delta between the block's placement epoch and
// the current one, never a full reshuffle. Deficits are drained
// oldest-placement-epoch first: blocks still sitting on the oldest
// membership are the most at-risk (their source sets shrink with every
// further departure), so a repair storm re-establishes them before newer
// deficits. cb receives the number of chunks that could not be recovered
// from inside the cluster (0 means full intra-cluster integrity was
// restored).
func (n *Node) RepairOwnership(net *simnet.Network, cb func(lost int)) {
	n.pc.repairs.Inc()
	span := n.tr.Start(0, "repair", "repair", int64(n.id))
	type want struct {
		epochSeq int // the block's placement epoch (repair priority)
		height   uint64
		block    blockcrypto.Hash
		idx      int
		srcs     []simnet.NodeID
	}
	var wants []want
	for _, h := range n.store.Headers() {
		block := h.Hash()
		parts := n.cluster.partsAt(h.Height)
		place := n.cluster.placementAt(h.Height)
		seed := block.Uint64()
		// The store's per-block index answers "which chunks of this block do
		// I hold" in one lookup; a block whose every part is already local
		// skips the per-index rendezvous ranking below entirely.
		held := make(map[int]bool, parts)
		for _, idx := range n.store.ChunksForBlock(block) {
			held[idx] = true
		}
		if len(held) == parts {
			continue
		}
		for idx := 0; idx < parts; idx++ {
			if held[idx] {
				continue
			}
			owners, err := Owners(seed, n.cluster.members, idx, n.replication) //icilint:allow epochres(repair targets the post-churn roster by design; sources below use the block's placement epoch)
			if err != nil || !memberOf(owners, n.id) {
				continue
			}
			// Sources resolve against the block's placement epoch — the
			// members that actually stored the chunk — not the mutated
			// current view.
			srcs := chunkSources(seed, idx, n.replication, place.members, n.cluster.members, n.id)
			wants = append(wants, want{epochSeq: place.seq, height: h.Height, block: block, idx: idx, srcs: srcs})
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].epochSeq != wants[j].epochSeq {
			return wants[i].epochSeq < wants[j].epochSeq
		}
		if wants[i].height != wants[j].height {
			return wants[i].height < wants[j].height
		}
		return wants[i].idx < wants[j].idx
	})
	if len(wants) == 0 {
		span.End()
		cb(0)
		return
	}
	lost, outstanding := 0, len(wants)
	n.pc.repairChunks.Add(int64(len(wants)))
	for _, w := range wants {
		n.fetchChunk(net, w.block, w.idx, w.srcs, span.Context(), "repair", func(err error) {
			if err != nil {
				lost++
			}
			outstanding--
			if outstanding == 0 {
				if lost > 0 {
					n.pc.repairLost.Add(int64(lost))
					span.SetErr(fmt.Errorf("%d chunks lost", lost))
				}
				span.End()
				cb(lost)
			}
		})
	}
}
