package core

import (
	"fmt"
	"sort"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/simnet"
	"icistrategy/internal/storage"
)

// RetrieveBlock reassembles a full historical block from the chunks held by
// this node's cluster. cb is invoked exactly once, with the verified block
// or an error. This is the read path a light client or application would
// use against an ICIStrategy cluster.
func (n *Node) RetrieveBlock(net *simnet.Network, block blockcrypto.Hash, cb func(*chain.Block, error)) {
	if !n.store.HasHeader(block) {
		cb(nil, fmt.Errorf("%w: %s", ErrUnknownBlock, block.Short()))
		return
	}
	n.nextReq++
	req := n.nextReq
	st := &fetchState{
		block:   block,
		chunks:  make(map[int]retrievedChunk),
		onBlock: cb,
	}
	n.fetches[req] = st

	// Seed with local chunks.
	for _, idx := range n.store.ChunksForBlock(block) {
		id := storage.ChunkID{Block: block, Index: idx}
		chk, err := n.store.Chunk(id)
		if err != nil {
			continue
		}
		meta := n.meta[id]
		if txs, derr := chain.DecodeBody(chk.Data); derr == nil {
			st.parts = meta.parts
			st.chunks[idx] = retrievedChunk{Idx: idx, TxStart: meta.txStart, Txs: txs}
		}
	}
	if n.tryFinishRetrieve(req, st) {
		return
	}
	for _, m := range n.cluster.members {
		if m == n.id {
			continue
		}
		st.waiting++
		_ = net.Send(simnet.Message{
			From: n.id, To: m, Kind: KindGetBlockChunks,
			Size: reqOverhead, Payload: getBlockChunksMsg{Block: block, ReqID: req},
		})
	}
	if st.waiting == 0 {
		n.failFetch(req, st, ErrRetrieveFailed)
		return
	}
	net.After(fetchTimeout, func() {
		if cur, ok := n.fetches[req]; ok && !cur.done {
			n.failFetch(req, cur, ErrRetrieveFailed)
		}
	})
}

// onBlockChunks consumes one member's contribution to a retrieval.
func (n *Node) onBlockChunks(m blockChunksMsg) {
	st, ok := n.fetches[m.ReqID]
	if !ok || st.done || st.block != m.Block {
		return
	}
	st.waiting--
	if m.Parts > 0 && st.codedK == 0 {
		st.parts = m.Parts
	}
	for _, c := range m.Chunks {
		if c.Coded != (st.codedK > 0) {
			continue // a stale member answering in the other storage mode
		}
		if _, have := st.chunks[c.Idx]; !have {
			st.chunks[c.Idx] = c
		}
	}
	finished := false
	if st.codedK > 0 {
		finished = n.tryFinishCodedRetrieve(m.ReqID, st)
	} else {
		finished = n.tryFinishRetrieve(m.ReqID, st)
	}
	if finished {
		return
	}
	if st.waiting == 0 {
		n.failFetch(m.ReqID, st, ErrRetrieveFailed)
	}
}

// tryFinishRetrieve reassembles and verifies once every chunk is present.
func (n *Node) tryFinishRetrieve(req uint64, st *fetchState) bool {
	if st.onBlock == nil || st.parts == 0 || len(st.chunks) < st.parts {
		return false
	}
	idxs := make([]int, 0, len(st.chunks))
	for i := range st.chunks {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var txs []*chain.Transaction
	for _, i := range idxs {
		txs = append(txs, st.chunks[i].Txs...)
	}
	hdr, err := n.store.Header(st.block)
	if err != nil {
		n.failFetch(req, st, err)
		return true
	}
	b := &chain.Block{Header: hdr, Txs: txs}
	if err := b.VerifyShape(); err != nil {
		// Root mismatch: some member served corrupt or misordered data.
		n.failFetch(req, st, fmt.Errorf("%w: %v", ErrRetrieveFailed, err))
		return true
	}
	st.done = true
	delete(n.fetches, req)
	st.onBlock(b, nil)
	return true
}

func (n *Node) failFetch(req uint64, st *fetchState, err error) {
	if st.done {
		return
	}
	st.done = true
	delete(n.fetches, req)
	if st.onBlock != nil {
		st.onBlock(nil, err)
	}
	if st.onChunk != nil {
		st.onChunk(err)
	}
}

// --- bootstrap ---------------------------------------------------------------

// bootstrapState tracks a join in progress.
type bootstrapState struct {
	sponsor     simnet.NodeID
	outstanding int
	failed      bool
	cb          func(error)
}

// Bootstrap joins the cluster: fetch every header from sponsor, then fetch
// only the chunks rendezvous placement assigns to this node under the
// post-join membership. cb fires once with nil on success. The node must
// already be registered in the network and present in the cluster's member
// list (System.JoinCluster arranges both).
func (n *Node) Bootstrap(net *simnet.Network, sponsor simnet.NodeID, cb func(error)) {
	n.bootstrap = &bootstrapState{sponsor: sponsor, cb: cb}
	_ = net.Send(simnet.Message{
		From: n.id, To: sponsor, Kind: KindGetHeaders,
		Size: reqOverhead, Payload: getHeadersMsg{FromHeight: 0},
	})
	net.After(fetchTimeout, func() {
		if n.bootstrap != nil && n.bootstrap.cb != nil {
			n.finishBootstrap(ErrBootstrapFailed)
		}
	})
}

// onHeaders continues the bootstrap: validate the header chain, then fetch
// owned chunks.
func (n *Node) onHeaders(net *simnet.Network, m headersMsg) {
	bs := n.bootstrap
	if bs == nil {
		return
	}
	// Validate linkage before trusting anything.
	var prev *chain.Header
	for i := range m.Headers {
		h := m.Headers[i]
		if prev != nil {
			b := chain.Block{Header: h}
			if err := b.VerifyLink(prev); err != nil {
				n.finishBootstrap(fmt.Errorf("%w: header %d: %v", ErrBootstrapFailed, i, err))
				return
			}
		} else if h.Height != 0 || !h.PrevHash.IsZero() {
			n.finishBootstrap(fmt.Errorf("%w: chain does not start at genesis", ErrBootstrapFailed))
			return
		}
		n.store.PutHeader(h)
		prev = &m.Headers[i]
	}
	// Fetch the chunks this node now owns.
	for _, h := range m.Headers {
		block := h.Hash()
		parts := n.cluster.partsAt(h.Height)
		seed := block.Uint64()
		for idx := 0; idx < parts; idx++ {
			owners, err := Owners(seed, n.cluster.members, idx, n.replication)
			if err != nil {
				continue
			}
			if !memberOf(owners, n.id) {
				continue
			}
			// Fetch from the other current owners first, then fall back to
			// the owners under the pre-join membership — they held the
			// chunk before this node existed and remain good sources when
			// a co-owner is crashed or serving corrupted data.
			sources := make([]simnet.NodeID, 0, 2*len(owners))
			for _, o := range owners {
				if o != n.id {
					sources = append(sources, o)
				}
			}
			if prevOwners, perr := Owners(seed, without(n.cluster.members, n.id), idx, n.replication); perr == nil {
				for _, o := range prevOwners {
					if o != n.id && !memberOf(sources, o) {
						sources = append(sources, o)
					}
				}
			}
			if len(sources) == 0 {
				continue
			}
			bs.outstanding++
			n.fetchChunk(net, block, idx, sources, func(err error) {
				if err != nil {
					bs.failed = true
				}
				bs.outstanding--
				if bs.outstanding == 0 {
					if bs.failed {
						n.finishBootstrap(ErrBootstrapFailed)
					} else {
						n.finishBootstrap(nil)
					}
				}
			})
		}
	}
	if bs.outstanding == 0 {
		n.finishBootstrap(nil)
	}
}

func (n *Node) finishBootstrap(err error) {
	if n.bootstrap == nil || n.bootstrap.cb == nil {
		return
	}
	cb := n.bootstrap.cb
	n.bootstrap.cb = nil
	n.bootstrap = nil
	cb(err)
}

// without returns members minus id.
func without(members []simnet.NodeID, id simnet.NodeID) []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(members))
	for _, m := range members {
		if m != id {
			out = append(out, m)
		}
	}
	return out
}

// fetchChunk requests one chunk, trying sources in order until one serves a
// verifiable copy. cb fires once.
func (n *Node) fetchChunk(net *simnet.Network, block blockcrypto.Hash, idx int, sources []simnet.NodeID, cb func(error)) {
	id := storage.ChunkID{Block: block, Index: idx}
	if n.store.HasChunk(id) {
		cb(nil)
		return
	}
	if len(sources) == 0 {
		cb(ErrChunkLost)
		return
	}
	n.nextReq++
	req := n.nextReq
	st := &fetchState{
		block:     block,
		idx:       idx,
		remaining: sources[1:],
		onChunk:   cb,
	}
	n.fetches[req] = st
	_ = net.Send(simnet.Message{
		From: n.id, To: sources[0], Kind: KindGetChunk,
		Size: reqOverhead, Payload: getChunkMsg{Block: block, Idx: idx, ReqID: req},
	})
	net.After(fetchTimeout, func() {
		if cur, ok := n.fetches[req]; ok && !cur.done {
			n.failFetch(req, cur, ErrChunkLost)
		}
	})
}

// onChunkResp finishes (or retries) a single-chunk fetch.
func (n *Node) onChunkResp(net *simnet.Network, m chunkRespMsg) {
	st, ok := n.fetches[m.ReqID]
	if !ok || st.done || st.block != m.Block {
		return
	}
	ok = m.Found
	if ok {
		// The chunk must verify against the locally known header.
		hdr, err := n.store.Header(m.Block)
		if err != nil || hdr.MerkleRoot != m.Chunk.Header.MerkleRoot {
			ok = false
		} else if verifyChunk(m.Chunk) != nil || m.Chunk.PartIdx != st.idx {
			ok = false
		}
	}
	if ok {
		delete(n.fetches, m.ReqID)
		st.done = true
		n.persistChunk(m.Block, m.Chunk)
		st.onChunk(nil)
		return
	}
	// Try the next source.
	if len(st.remaining) == 0 {
		n.failFetch(m.ReqID, st, ErrChunkLost)
		return
	}
	next := st.remaining[0]
	st.remaining = st.remaining[1:]
	_ = net.Send(simnet.Message{
		From: n.id, To: next, Kind: KindGetChunk,
		Size: reqOverhead, Payload: getChunkMsg{Block: m.Block, Idx: st.idx, ReqID: m.ReqID},
	})
}

// --- repair -------------------------------------------------------------------

// RepairOwnership scans every committed block and fetches any chunk this
// node now owns (after a membership change) but does not hold. cb receives
// the number of chunks that could not be recovered from inside the cluster
// (0 means full intra-cluster integrity was restored).
func (n *Node) RepairOwnership(net *simnet.Network, cb func(lost int)) {
	type want struct {
		block blockcrypto.Hash
		idx   int
		srcs  []simnet.NodeID
	}
	var wants []want
	for _, h := range n.store.Headers() {
		block := h.Hash()
		parts := n.cluster.partsAt(h.Height)
		seed := block.Uint64()
		for idx := 0; idx < parts; idx++ {
			owners, err := Owners(seed, n.cluster.members, idx, n.replication)
			if err != nil || !memberOf(owners, n.id) {
				continue
			}
			if n.store.HasChunk(storage.ChunkID{Block: block, Index: idx}) {
				continue
			}
			srcs := without(owners, n.id)
			// Other current members may hold it from before the change.
			for _, m := range n.cluster.members {
				if m != n.id && !memberOf(srcs, m) {
					srcs = append(srcs, m)
				}
			}
			wants = append(wants, want{block: block, idx: idx, srcs: srcs})
		}
	}
	if len(wants) == 0 {
		cb(0)
		return
	}
	lost, outstanding := 0, len(wants)
	for _, w := range wants {
		n.fetchChunk(net, w.block, w.idx, w.srcs, func(err error) {
			if err != nil {
				lost++
			}
			outstanding--
			if outstanding == 0 {
				cb(lost)
			}
		})
	}
}
