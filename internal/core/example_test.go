package core_test

import (
	"fmt"
	"log"

	"icistrategy/internal/core"
	"icistrategy/internal/simnet"
	"icistrategy/internal/workload"
)

// ExampleOwners shows rendezvous chunk placement: deterministic, balanced,
// and minimally disruptive when membership changes.
func ExampleOwners() {
	members := []simnet.NodeID{10, 20, 30, 40}
	owners, err := core.Owners(12345, members, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(owners), "owners for chunk 2")
	again, _ := core.Owners(12345, members, 2, 2)
	fmt.Println("deterministic:", owners[0] == again[0] && owners[1] == again[1])
	// Output:
	// 2 owners for chunk 2
	// deterministic: true
}

// ExampleSplitCounts shows the balanced integer split used for both
// transaction-group chunking and analytic storage accounting.
func ExampleSplitCounts() {
	counts, err := core.SplitCounts(10, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(counts)
	// Output: [3 3 2 2]
}

// ExampleSystem drives the whole protocol: build a clustered network,
// commit a block collaboratively, and check the integrity invariant.
func ExampleSystem() {
	sys, err := core.NewSystem(core.Config{Nodes: 12, Clusters: 2, Replication: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{Accounts: 20, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	b, err := sys.ProduceBlock(gen.NextTxs(12))
	if err != nil {
		log.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	fmt.Println("committed by all:", sys.AllCommitted(b.Hash()))
	fmt.Println("cluster 0 holds the block:", sys.ClusterHoldsBlock(0, b.Hash()) == nil)
	// Output:
	// committed by all: true
	// cluster 0 holds the block: true
}
