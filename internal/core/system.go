package core

import (
	"errors"
	"fmt"
	"sort"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/cluster"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
	"icistrategy/internal/storage"
	"icistrategy/internal/trace"
)

// System errors.
var (
	ErrBadConfig      = errors.New("core: invalid system configuration")
	ErrNoTip          = errors.New("core: no committed blocks yet")
	ErrUnknownCluster = errors.New("core: cluster index out of range")
	ErrUnknownNodeID  = errors.New("core: unknown node")
)

// Config parameterizes an ICIStrategy deployment.
type Config struct {
	// Nodes is the initial network size.
	Nodes int
	// Clusters is the number of clusters m.
	Clusters int
	// Replication is the intra-cluster replication factor r (1 ≤ r ≤
	// smallest cluster size).
	Replication int
	// Method selects the clustering algorithm (default BalancedKMeans).
	Method cluster.Method
	// Seed drives every random decision; identical seeds give identical
	// runs.
	Seed uint64
	// SideMillis is the size of the latency square nodes are placed in
	// (default 60 ms).
	SideMillis float64
	// Coords overrides node placement (len must equal Nodes); nil means
	// uniform random placement in the SideMillis square.
	Coords []simnet.Coord
	// Latency overrides the network latency model (default the standard
	// LinkModel seeded from Seed).
	Latency simnet.LatencyModel
	// UplinkBytesPerSec, when positive, serializes each node's outgoing
	// transmissions at this rate (see simnet.SetUplinkBandwidth).
	UplinkBytesPerSec float64
	// Tracer, when non-nil, records a span/event for every protocol phase
	// and wire delivery. Nil (the default) leaves tracing disabled at
	// near-zero cost.
	Tracer *trace.Tracer
	// Registry receives the protocol counters (ici.*, consensus.*). Nil
	// means the System creates a private one, readable via Registry().
	Registry *metrics.Registry
}

func (c *Config) fillDefaults() {
	if c.Method == 0 {
		c.Method = cluster.BalancedKMeans
	}
	if c.SideMillis == 0 {
		c.SideMillis = 60
	}
	if c.Replication == 0 {
		c.Replication = 1
	}
}

func (c *Config) validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("%w: need at least one node", ErrBadConfig)
	}
	if c.Clusters < 1 || c.Clusters > c.Nodes {
		return fmt.Errorf("%w: clusters=%d with %d nodes", ErrBadConfig, c.Clusters, c.Nodes)
	}
	return nil
}

// System assembles and drives a whole ICIStrategy network inside the
// discrete-event simulator: nodes, clusters, keys, block production,
// membership changes and repair. It is the protocol-layer counterpart of
// Accountant and the entry point examples and experiments use.
type System struct {
	cfg      Config
	net      *simnet.Network
	coords   []simnet.Coord
	asg      *cluster.Assignment
	clusters []*clusterInfo
	nodes    map[simnet.NodeID]*Node
	keys     map[simnet.NodeID]blockcrypto.KeyPair
	rng      *blockcrypto.RNG
	tr       *trace.Tracer
	reg      *metrics.Registry
	pc       *protoCounters

	tip    *chain.Header
	height uint64
	nextID simnet.NodeID
}

// NewSystem builds the network: place nodes in latency space, cluster them,
// derive keys, and register everyone with the simulator.
func NewSystem(cfg Config) (*System, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := blockcrypto.NewRNG(cfg.Seed)
	coords := cfg.Coords
	if coords == nil {
		coords = simnet.RandomCoords(cfg.Nodes, cfg.SideMillis, rng.Fork("coords"))
	} else if len(coords) != cfg.Nodes {
		return nil, fmt.Errorf("%w: %d coords for %d nodes", ErrBadConfig, len(coords), cfg.Nodes)
	}
	asg, err := cluster.Partition(cfg.Method, coords, cfg.Clusters, rng.Fork("partition"))
	if err != nil {
		return nil, err
	}
	for c := 0; c < asg.NumClusters(); c++ {
		if cfg.Replication > asg.Size(c) {
			return nil, fmt.Errorf("%w: replication %d exceeds cluster %d size %d",
				ErrBadConfig, cfg.Replication, c, asg.Size(c))
		}
	}
	latency := cfg.Latency
	if latency == nil {
		latency = simnet.NewLinkModel(rng.Fork("latency").Uint64())
	}
	net := simnet.New(latency)
	if cfg.UplinkBytesPerSec > 0 {
		net.SetUplinkBandwidth(cfg.UplinkBytesPerSec)
	}
	net.SetTracer(cfg.Tracer)
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &System{
		cfg:    cfg,
		net:    net,
		coords: coords,
		asg:    asg,
		nodes:  make(map[simnet.NodeID]*Node, cfg.Nodes),
		keys:   make(map[simnet.NodeID]blockcrypto.KeyPair, cfg.Nodes),
		rng:    rng,
		tr:     cfg.Tracer,
		reg:    reg,
		pc:     newProtoCounters(reg),
		nextID: simnet.NodeID(cfg.Nodes),
	}
	s.clusters = make([]*clusterInfo, asg.NumClusters())
	for c := range s.clusters {
		members := make([]simnet.NodeID, len(asg.Members[c]))
		for i, m := range asg.Members[c] {
			members[i] = simnet.NodeID(m)
		}
		ci := &clusterInfo{index: c}
		ci.pushEpoch(0, members)
		s.clusters[c] = ci
	}
	registry := s.PublicKey
	for i := 0; i < cfg.Nodes; i++ {
		id := simnet.NodeID(i)
		key := blockcrypto.DeriveKeyPair(cfg.Seed, uint64(id))
		s.keys[id] = key
		node := newNode(id, s.clusters[asg.ClusterOf[i]], key, cfg.Replication, registry, s.tr, s.pc)
		s.nodes[id] = node
		if err := s.net.AddNode(id, node, coords[i]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Network exposes the underlying simulator (for time and traffic queries).
func (s *System) Network() *simnet.Network { return s.net }

// Registry returns the metrics registry holding the protocol counters.
func (s *System) Registry() *metrics.Registry { return s.reg }

// Tracer returns the system's tracer (nil when tracing is disabled).
func (s *System) Tracer() *trace.Tracer { return s.tr }

// Assignment returns the cluster assignment the system was built with.
func (s *System) Assignment() *cluster.Assignment { return s.asg }

// NewAccountant returns the analytic model matching this system's
// clustering and replication, so tests and experiments can cross-check the
// protocol's actual storage against the closed-form accounting.
func (s *System) NewAccountant() (*Accountant, error) {
	return NewAccountant(s.asg, s.cfg.Replication)
}

// Node returns a node by ID.
func (s *System) Node(id simnet.NodeID) (*Node, error) {
	n, ok := s.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNodeID, id)
	}
	return n, nil
}

// NumClusters returns the cluster count.
func (s *System) NumClusters() int { return len(s.clusters) }

// ClusterMembers returns a copy of the member list of cluster c.
func (s *System) ClusterMembers(c int) ([]simnet.NodeID, error) {
	if c < 0 || c >= len(s.clusters) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownCluster, c)
	}
	return append([]simnet.NodeID(nil), s.clusters[c].members...), nil
}

// ClusterOf returns the cluster index of a node.
func (s *System) ClusterOf(id simnet.NodeID) (int, error) {
	n, err := s.Node(id)
	if err != nil {
		return 0, err
	}
	return n.cluster.index, nil
}

// PublicKey returns a node's public key, or nil for unknown nodes. It is
// the registry verifiers use.
func (s *System) PublicKey(id simnet.NodeID) []byte {
	if k, ok := s.keys[id]; ok {
		return k.Public
	}
	return nil
}

// Height returns the number of blocks produced so far.
func (s *System) Height() uint64 { return s.height }

// Tip returns the most recently produced block header.
func (s *System) Tip() (*chain.Header, error) {
	if s.tip == nil {
		return nil, ErrNoTip
	}
	return s.tip, nil
}

// ProduceBlock assembles the next block from txs and hands it to every
// cluster's leader for collaborative storage and verification. The producer
// is the rotating global proposer (node height mod n). Call
// Network().RunUntilIdle() (or Run) afterwards to let distribution,
// verification and commit play out; CommitCount reports progress.
func (s *System) ProduceBlock(txs []*chain.Transaction) (*chain.Block, error) {
	prev := blockcrypto.ZeroHash
	if s.tip != nil {
		prev = s.tip.Hash()
	}
	// Rotate the proposer over the initial population, skipping crashed
	// nodes (a dead proposer would simply miss its slot).
	proposerIdx := int(s.height % uint64(s.cfg.Nodes))
	proposer := simnet.NodeID(proposerIdx)
	for tries := 0; s.net.IsDown(proposer) && tries < s.cfg.Nodes; tries++ {
		proposerIdx = (proposerIdx + 1) % s.cfg.Nodes
		proposer = simnet.NodeID(proposerIdx)
	}
	b, err := chain.NewBlock(s.height, prev, txs, uint64(s.net.Now().Milliseconds()), uint64(proposer))
	if err != nil {
		return nil, err
	}
	msg := proposeMsg{Block: b}
	// One root span per produced block: every cluster's distribute span
	// parents here, so a block's whole fan-out reads as one trace.
	span := s.tr.Start(0, "distribute", "produce", int64(proposer))
	span.AddBytes(int64(b.BodySize()))
	for _, ci := range s.clusters {
		leader, lerr := ci.leaderAt(b.Header.Height)
		if lerr != nil {
			span.SetErr(lerr)
			span.End()
			return nil, lerr
		}
		if leader == proposer {
			p := s.nodes[proposer]
			prev := p.rxSpan
			p.rxSpan = span.Context()
			p.onPropose(s.net, msg)
			p.rxSpan = prev
			continue
		}
		if err := s.net.Send(simnet.Message{
			From: proposer, To: leader, Kind: KindPropose,
			Size: msg.wireSize(), Payload: msg, Span: span.Context(),
		}); err != nil {
			span.SetErr(err)
			span.End()
			return nil, err
		}
	}
	span.End()
	hdr := b.Header
	s.tip = &hdr
	s.height++
	return b, nil
}

// CommitCount returns how many nodes have finalized the given block
// (stored its header).
func (s *System) CommitCount(block blockcrypto.Hash) int {
	n := 0
	for _, node := range s.nodes {
		if node.store.HasHeader(block) {
			n++
		}
	}
	return n
}

// ClusterCommitted reports whether every live member of cluster c finalized
// the block.
func (s *System) ClusterCommitted(c int, block blockcrypto.Hash) (bool, error) {
	if c < 0 || c >= len(s.clusters) {
		return false, fmt.Errorf("%w: %d", ErrUnknownCluster, c)
	}
	for _, m := range s.clusters[c].members {
		if s.net.IsDown(m) {
			continue
		}
		if !s.nodes[m].store.HasHeader(block) {
			return false, nil
		}
	}
	return true, nil
}

// AllCommitted reports whether every live node in the network finalized the
// block.
func (s *System) AllCommitted(block blockcrypto.Hash) bool {
	for c := range s.clusters {
		ok, err := s.ClusterCommitted(c, block)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// ClusterHoldsBlock verifies the intra-cluster integrity invariant for one
// block: the union of the cluster members' chunk stores reassembles the
// block body exactly (Merkle root check included).
func (s *System) ClusterHoldsBlock(c int, block blockcrypto.Hash) error {
	if c < 0 || c >= len(s.clusters) {
		return fmt.Errorf("%w: %d", ErrUnknownCluster, c)
	}
	ci := s.clusters[c]
	var hdr *chain.Header
	type part struct {
		txStart int
		txs     []*chain.Transaction
	}
	found := make(map[int]part)
	parts := 0
	for _, m := range ci.members {
		node := s.nodes[m]
		if h, err := node.store.Header(block); err == nil && hdr == nil {
			hh := h
			hdr = &hh
		}
		for _, idx := range node.store.ChunksForBlock(block) {
			id := storage.ChunkID{Block: block, Index: idx}
			chk, err := node.store.Chunk(id)
			if err != nil {
				continue
			}
			meta := node.meta[id]
			parts = meta.parts
			if _, ok := found[idx]; ok {
				continue
			}
			txs, derr := chain.DecodeBody(chk.Data)
			if derr != nil {
				continue
			}
			found[idx] = part{txStart: meta.txStart, txs: txs}
		}
	}
	if hdr == nil {
		return fmt.Errorf("cluster %d: %w", c, ErrUnknownBlock)
	}
	if parts == 0 || len(found) < parts {
		return fmt.Errorf("cluster %d: holds %d of %d chunks of %s", c, len(found), parts, block.Short())
	}
	idxs := make([]int, 0, len(found))
	for i := range found {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var txs []*chain.Transaction
	for _, i := range idxs {
		txs = append(txs, found[i].txs...)
	}
	b := &chain.Block{Header: *hdr, Txs: txs}
	if err := b.VerifyShape(); err != nil {
		return fmt.Errorf("cluster %d: reassembly of %s: %w", c, block.Short(), err)
	}
	return nil
}

// NodeStorage returns a node's storage snapshot.
func (s *System) NodeStorage(id simnet.NodeID) (storage.Stats, error) {
	n, err := s.Node(id)
	if err != nil {
		return storage.Stats{}, err
	}
	return n.store.Stats(), nil
}

// FailNode marks a node as crashed: it drops in-flight and future messages
// until recovered, but keeps its membership (use RemoveNode for departure).
func (s *System) FailNode(id simnet.NodeID) error { return s.net.SetDown(id, true) }

// RecoverNode brings a crashed node back.
func (s *System) RecoverNode(id simnet.NodeID) error { return s.net.SetDown(id, false) }

// RemoveNode permanently removes a node from its cluster's membership and
// fails it: a new membership epoch excludes it from the current height on,
// while historic blocks keep resolving placement against the epoch they
// were written under (the departed copies stay the authoritative sources
// until RepairCluster migrates the data and advances placement).
func (s *System) RemoveNode(id simnet.NodeID) error {
	n, err := s.Node(id)
	if err != nil {
		return err
	}
	ci := n.cluster
	if !memberOf(ci.members, id) {
		return fmt.Errorf("core: node %d is not a member of cluster %d", id, ci.index)
	}
	if len(ci.members) == 1 {
		return fmt.Errorf("core: cluster %d lost its last member", ci.index)
	}
	ci.pushEpoch(s.height, without(ci.members, id))
	return s.net.SetDown(id, true)
}

// RepairCluster triggers every member of cluster c to re-establish the
// chunks it owns under the current epoch; cb receives the total number of
// unrecoverable chunks once all members finish. When nothing was lost the
// cluster's placement advances to the current epoch: every block's chunks
// are now fully accounted for under the current membership, and stale
// copies become prunable. Drive the network afterwards.
func (s *System) RepairCluster(c int, cb func(lost int)) error {
	if c < 0 || c >= len(s.clusters) {
		return fmt.Errorf("%w: %d", ErrUnknownCluster, c)
	}
	ci := s.clusters[c]
	target := ci.currentEpoch().seq
	outstanding := 0
	totalLost := 0
	for _, m := range ci.members {
		if s.net.IsDown(m) {
			continue
		}
		outstanding++
	}
	if outstanding == 0 {
		cb(0)
		return nil
	}
	for _, m := range ci.members {
		if s.net.IsDown(m) {
			continue
		}
		s.nodes[m].RepairOwnership(s.net, func(lost int) {
			totalLost += lost
			outstanding--
			if outstanding == 0 {
				if totalLost == 0 {
					ci.advancePlacement(target)
				}
				cb(totalLost)
			}
		})
	}
	return nil
}

// noNode is the sentinel "exclude nobody" argument of sponsorFor.
const noNode = ^simnet.NodeID(0)

// sponsorFor picks a bootstrap sponsor inside the cluster: a live member
// that is not itself mid-bootstrap (a joining member has no chain yet, and
// syncing headers from it would complete a bootstrap against an empty or
// partial chain), and not the excluded node.
func (s *System) sponsorFor(ci *clusterInfo, exclude simnet.NodeID) (simnet.NodeID, error) {
	for _, m := range ci.members {
		if m == exclude || s.net.IsDown(m) {
			continue
		}
		if s.nodes[m].Bootstrapping() {
			continue
		}
		return m, nil
	}
	return 0, fmt.Errorf("core: cluster %d has no live settled sponsor", ci.index)
}

// JoinCluster creates a brand-new node, adds it to cluster c's membership,
// and starts its bootstrap from a live, settled sponsor inside the
// cluster. cb fires with the new node's ID (and any bootstrap error) once
// the join completes; on success the cluster's placement advances to the
// join epoch (rendezvous hashing bounds the movement: only the chunks the
// newcomer displaces into its own ownership transfer, roughly 1/|members|
// of the data — never a full reshuffle). Drive the network afterwards.
func (s *System) JoinCluster(c int, cb func(simnet.NodeID, error)) error {
	if c < 0 || c >= len(s.clusters) {
		return fmt.Errorf("%w: %d", ErrUnknownCluster, c)
	}
	ci := s.clusters[c]
	sponsor, err := s.sponsorFor(ci, noNode)
	if err != nil {
		return err
	}
	id := s.nextID
	s.nextID++
	key := blockcrypto.DeriveKeyPair(s.cfg.Seed, uint64(id))
	s.keys[id] = key
	node := newNode(id, ci, key, s.cfg.Replication, s.PublicKey, s.tr, s.pc)
	s.nodes[id] = node
	// Place the newcomer near its sponsor — joining nodes pick the
	// latency-closest cluster in practice.
	coord, err := s.net.Coordinate(sponsor)
	if err != nil {
		return err
	}
	coord.X += s.rng.NormFloat64()
	coord.Y += s.rng.NormFloat64()
	if err := s.net.AddNode(id, node, coord); err != nil {
		return err
	}
	// Membership grows now; blocks from the current height on are split
	// into the larger part count.
	epoch := ci.pushEpoch(s.height, append(ci.members, id))
	target := epoch.seq
	node.Bootstrap(s.net, sponsor, func(err error) {
		if err == nil {
			ci.advancePlacement(target)
		}
		cb(id, err)
	})
	return nil
}

// LeaveCluster gracefully departs a node: a new epoch excludes it, the
// leaver hands off every chunk whose ownership its departure shifts to the
// gaining members, and only once every handoff is acknowledged does the
// node go down. cb fires with the number of chunks moved; on success the
// cluster's placement advances to the departure epoch, so the cluster
// needs no repair at all (zero repair bandwidth is the point of leaving
// gracefully instead of being removed). Drive the network afterwards.
func (s *System) LeaveCluster(id simnet.NodeID, cb func(moved int, err error)) error {
	n, err := s.Node(id)
	if err != nil {
		return err
	}
	ci := n.cluster
	if !memberOf(ci.members, id) {
		return fmt.Errorf("core: node %d is not a member of cluster %d", id, ci.index)
	}
	if len(ci.members) == 1 {
		return fmt.Errorf("core: cluster %d lost its last member", ci.index)
	}
	if s.net.IsDown(id) {
		return fmt.Errorf("core: node %d is down; use RemoveNode for crashed members", id)
	}
	epoch := ci.pushEpoch(s.height, without(ci.members, id))
	target := epoch.seq
	n.HandoffChunks(s.net, func(moved int, herr error) {
		if herr == nil {
			ci.advancePlacement(target)
		}
		_ = s.net.SetDown(id, true)
		cb(moved, herr)
	})
	return nil
}

// RejoinCluster brings a previously departed node back under its original
// identity: the same ID and keypair return to membership in a new epoch,
// and the node bootstraps the blocks it missed (chunks it still holds from
// before departing are not refetched). cb fires once the resync completes;
// on success placement advances to the rejoin epoch. Drive the network
// afterwards.
func (s *System) RejoinCluster(id simnet.NodeID, cb func(error)) error {
	n, err := s.Node(id)
	if err != nil {
		return err
	}
	ci := n.cluster
	if memberOf(ci.members, id) {
		return fmt.Errorf("core: node %d is already a member of cluster %d", id, ci.index)
	}
	sponsor, serr := s.sponsorFor(ci, id)
	if serr != nil {
		return serr
	}
	if err := s.net.SetDown(id, false); err != nil {
		return err
	}
	epoch := ci.pushEpoch(s.height, append(ci.members, id))
	target := epoch.seq
	n.Bootstrap(s.net, sponsor, func(err error) {
		if err == nil {
			ci.advancePlacement(target)
		}
		cb(err)
	})
	return nil
}

// ClusterEpoch returns the current membership epoch sequence number of
// cluster c (0 until the first membership change) — the epoch tag netx
// servers and the gateway exchange in cluster maps.
func (s *System) ClusterEpoch(c int) (int, error) {
	if c < 0 || c >= len(s.clusters) {
		return 0, fmt.Errorf("%w: %d", ErrUnknownCluster, c)
	}
	return s.clusters[c].currentEpoch().seq, nil
}

// ClusterMembersAt returns the member set of cluster c that governs blocks
// at the given height (the write-epoch membership).
func (s *System) ClusterMembersAt(c int, height uint64) ([]simnet.NodeID, error) {
	if c < 0 || c >= len(s.clusters) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownCluster, c)
	}
	return append([]simnet.NodeID(nil), s.clusters[c].membersAt(height)...), nil
}
