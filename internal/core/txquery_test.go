package core

import (
	"errors"
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/simnet"
	"icistrategy/internal/workload"
)

func TestQueryTxProofSucceeds(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 18, Clusters: 2, Replication: 1, Seed: 40})
	blocks := produceAndSettle(t, sys, gen, 3, 24)
	target := blocks[1]
	members, _ := sys.ClusterMembers(0)
	node, _ := sys.Node(members[0])

	// Query every transaction of the block: whichever member holds the
	// containing chunk must serve a verifiable proof.
	for i, tx := range target.Txs {
		var got TxProof
		var gotErr error
		done := false
		node.QueryTxProof(sys.Network(), target.Hash(), tx.ID(), func(p TxProof, err error) {
			got, gotErr, done = p, err, true
		})
		sys.Network().RunUntilIdle()
		if !done {
			t.Fatalf("tx %d: query never completed", i)
		}
		if gotErr != nil {
			t.Fatalf("tx %d: %v", i, gotErr)
		}
		if got.Tx.ID() != tx.ID() {
			t.Fatalf("tx %d: wrong transaction returned", i)
		}
		if err := got.Verify(); err != nil {
			t.Fatalf("tx %d: returned proof does not verify: %v", i, err)
		}
		if got.Header.Hash() != target.Hash() {
			t.Fatalf("tx %d: proof against wrong header", i)
		}
	}
}

func TestQueryTxProofUnknownTx(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 1, Seed: 41})
	blocks := produceAndSettle(t, sys, gen, 1, 12)
	node, _ := sys.Node(0)
	var gotErr error
	done := false
	node.QueryTxProof(sys.Network(), blocks[0].Hash(), blockcrypto.Sum256([]byte("ghost tx")),
		func(_ TxProof, err error) { gotErr, done = err, true })
	sys.Network().RunUntilIdle()
	if !done {
		t.Fatal("query never completed")
	}
	if !errors.Is(gotErr, ErrTxNotFound) {
		t.Fatalf("got %v, want ErrTxNotFound", gotErr)
	}
}

func TestQueryTxProofUnknownBlock(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 1, Seed: 42})
	produceAndSettle(t, sys, gen, 1, 12)
	node, _ := sys.Node(0)
	var gotErr error
	node.QueryTxProof(sys.Network(), blockcrypto.Sum256([]byte("no such block")),
		blockcrypto.Sum256([]byte("tx")), func(_ TxProof, err error) { gotErr = err })
	sys.Network().RunUntilIdle()
	if !errors.Is(gotErr, ErrUnknownBlock) {
		t.Fatalf("got %v, want ErrUnknownBlock", gotErr)
	}
}

func TestQueryTxProofLocalFastPath(t *testing.T) {
	// If the querying node itself owns the chunk, no network traffic is
	// needed.
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 1, Replication: 1, Seed: 43})
	blocks := produceAndSettle(t, sys, gen, 1, 24)
	target := blocks[0]
	// Find a (node, tx) pair where the node holds the tx's chunk.
	for id := 0; id < 12; id++ {
		node, _ := sys.Node(simnetID(id))
		for _, tx := range target.Txs {
			if proof, ok := node.localTxProof(target.Hash(), tx.ID()); ok {
				sys.Network().ResetTraffic()
				var got TxProof
				var gotErr error
				node.QueryTxProof(sys.Network(), target.Hash(), tx.ID(), func(p TxProof, err error) {
					got, gotErr = p, err
				})
				if gotErr != nil {
					t.Fatal(gotErr)
				}
				if got.Tx.ID() != proof.Tx.ID() {
					t.Fatal("local fast path returned wrong tx")
				}
				if tr := sys.Network().TotalTraffic(); tr.MsgsSent != 0 {
					t.Fatalf("local query sent %d messages", tr.MsgsSent)
				}
				return
			}
		}
	}
	t.Fatal("no node held any chunk — distribution broken")
}

func TestTxProofVerifyRejectsMismatch(t *testing.T) {
	gen, err := newGenForTest(44)
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.NextTxs(8)
	b, err := chain.NewBlock(0, blockcrypto.ZeroHash, txs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := chain.TxMerkleTree(txs)
	p0, _ := tree.Prove(0)
	good := TxProof{Tx: txs[0], Header: b.Header, Proof: p0}
	if err := good.Verify(); err != nil {
		t.Fatalf("good proof rejected: %v", err)
	}
	bad := good
	bad.Tx = txs[1]
	if err := bad.Verify(); err == nil {
		t.Fatal("proof verified for the wrong transaction")
	}
	empty := TxProof{}
	if err := empty.Verify(); err == nil {
		t.Fatal("empty proof verified")
	}
}

// TestTxProofVerifyEdgeCases covers the Merkle-proof verification corners:
// a single-transaction block (empty proof path), odd leaf counts forcing
// trailing-node duplication at every level, a tampered sibling hash at each
// proof step, and a proof applied at the wrong index.
func TestTxProofVerifyEdgeCases(t *testing.T) {
	gen, err := newGenForTest(45)
	if err != nil {
		t.Fatal(err)
	}
	newProven := func(t *testing.T, txCount int) (*chain.Block, *chain.MerkleTree) {
		t.Helper()
		txs := gen.NextTxs(txCount)
		b, err := chain.NewBlock(0, blockcrypto.ZeroHash, txs, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := chain.TxMerkleTree(txs)
		if err != nil {
			t.Fatal(err)
		}
		return b, tree
	}

	t.Run("single-tx block", func(t *testing.T) {
		b, tree := newProven(t, 1)
		p, err := tree.Prove(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Steps) != 0 {
			t.Fatalf("single-leaf proof has %d steps, want 0", len(p.Steps))
		}
		good := TxProof{Tx: b.Txs[0], Header: b.Header, Proof: p}
		if err := good.Verify(); err != nil {
			t.Fatalf("single-tx proof rejected: %v", err)
		}
	})

	// Odd leaf counts: 3 duplicates the trailing leaf at level 0; 5 and 7
	// force duplication at the deeper levels too. Every index must prove,
	// including the duplicated trailing leaf itself.
	for _, txCount := range []int{3, 5, 7} {
		b, tree := newProven(t, txCount)
		for i := range b.Txs {
			p, err := tree.Prove(i)
			if err != nil {
				t.Fatalf("txs=%d Prove(%d): %v", txCount, i, err)
			}
			tp := TxProof{Tx: b.Txs[i], Header: b.Header, Proof: p}
			if err := tp.Verify(); err != nil {
				t.Fatalf("txs=%d index %d rejected: %v", txCount, i, err)
			}
		}
	}

	t.Run("tampered sibling at each level", func(t *testing.T) {
		b, tree := newProven(t, 8)
		p, err := tree.Prove(3)
		if err != nil {
			t.Fatal(err)
		}
		for lvl := range p.Steps {
			bad := p
			bad.Steps = append([]chain.ProofStep(nil), p.Steps...)
			bad.Steps[lvl].Sibling[0] ^= 0xff
			tp := TxProof{Tx: b.Txs[3], Header: b.Header, Proof: bad}
			if err := tp.Verify(); err == nil {
				t.Fatalf("proof with tampered sibling at level %d verified", lvl)
			}
		}
	})

	t.Run("wrong index", func(t *testing.T) {
		b, tree := newProven(t, 8)
		p2, err := tree.Prove(2)
		if err != nil {
			t.Fatal(err)
		}
		// The path for leaf 2 must not authenticate the transaction at 5.
		tp := TxProof{Tx: b.Txs[5], Header: b.Header, Proof: p2}
		if err := tp.Verify(); err == nil {
			t.Fatal("proof for index 2 verified the transaction at index 5")
		}
	})
}

// TestStaleTxProofResponseSkipsBookkeeping is the txquery half of the
// cross-round aliasing bug fixed for full-block retrieval in an earlier
// change: a proof answer to a timed-out round 1 arriving during round 2
// used to count toward round 2's responded/waiting bookkeeping, so a slow
// stale negative could drive waiting to zero and fire the definitive
// not-found while a live (possibly positive) round-2 answer was still in
// flight. A stale answer carrying a verifiable proof must still complete
// the query — verified data speaks for itself.
func TestStaleTxProofResponseSkipsBookkeeping(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 2, Seed: 95})
	b := produceAndSettle(t, sys, gen, 1, 12)[0]
	members, _ := sys.ClusterMembers(0)
	n := sys.nodes[members[0]]

	tx := b.Txs[len(b.Txs)/2]
	var got TxProof
	var gotErr error
	calls := 0
	n.nextReq++
	req := n.nextReq
	st := &txQueryState{
		block:   b.Hash(),
		txID:    tx.ID(),
		timeout: fetchTimeout,
		cb:      func(p TxProof, err error) { got, gotErr, calls = p, err, calls+1 },
		// Round 1 timed out; round 2 is in flight with one member still
		// unanswered.
		attempts:  2,
		waiting:   1,
		responded: map[simnet.NodeID]bool{},
	}
	n.txQueries[req] = st

	// A slow round-1 "don't have it" lands mid-round-2.
	n.onTxProof(sys.net, members[1], txProofMsg{Block: b.Hash(), ReqID: req, Round: 1})
	if calls != 0 {
		t.Fatalf("stale negative terminated the query (err=%v)", gotErr)
	}
	if st.waiting != 1 {
		t.Fatalf("stale response entered round bookkeeping: waiting=%d", st.waiting)
	}
	if len(st.responded) != 0 {
		t.Fatal("stale response marked its sender as having answered the current round")
	}
	if v := n.metrics.StaleResponses.Value(); v != 1 {
		t.Fatalf("StaleResponses=%d, want 1", v)
	}

	// A stale answer that carries the verifiable proof still completes.
	tree, err := chain.TxMerkleTree(b.Txs)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := tree.Prove(len(b.Txs) / 2)
	if err != nil {
		t.Fatal(err)
	}
	n.onTxProof(sys.net, members[2], txProofMsg{
		Block: b.Hash(), ReqID: req, Round: 1, Found: true, Tx: tx, Proof: proof,
	})
	if calls != 1 || gotErr != nil {
		t.Fatalf("stale positive did not complete: calls=%d err=%v", calls, gotErr)
	}
	if got.Tx.ID() != tx.ID() {
		t.Fatal("completed with the wrong transaction")
	}
	if _, ok := n.txQueries[req]; ok {
		t.Fatal("query state leaked after completion")
	}

	// And once done, a further duplicate stale answer is inert.
	n.onTxProof(sys.net, members[1], txProofMsg{Block: b.Hash(), ReqID: req, Round: 1})
	if calls != 1 {
		t.Fatalf("callback double-fired: calls=%d", calls)
	}
}

// TestTxQueryExactlyOnceUnderFaults drives inclusion queries through
// drop/duplicate/reorder fault injection and checks the documented
// contract: cb fires exactly once per call and no query state survives a
// terminal outcome.
func TestTxQueryExactlyOnceUnderFaults(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 96})
	blocks := produceAndSettle(t, sys, gen, 2, 16)
	sys.Network().EnableFaults(97, simnet.FaultConfig{DropRate: 0.25, DupRate: 0.2, ReorderRate: 0.3})
	members, _ := sys.ClusterMembers(0)
	for _, b := range blocks {
		for _, id := range members[:3] {
			node := sys.nodes[id]
			for _, txID := range []blockcrypto.Hash{b.Txs[0].ID(), blockcrypto.Sum256([]byte("ghost"))} {
				calls := 0
				node.QueryTxProof(sys.net, b.Hash(), txID, func(TxProof, error) { calls++ })
				sys.Network().RunUntilIdle()
				if calls != 1 {
					t.Fatalf("node %d: cb fired %d times", id, calls)
				}
				if len(node.txQueries) != 0 {
					t.Fatalf("node %d: %d query states leaked", id, len(node.txQueries))
				}
			}
		}
	}
}

// simnetID converts an int for readability in tests.
func simnetID(i int) (id simnet.NodeID) { return simnet.NodeID(i) }

// newGenForTest builds a small deterministic workload generator.
func newGenForTest(seed uint64) (*workload.Generator, error) {
	return workload.NewGenerator(workload.Config{Accounts: 20, PayloadBytes: 10, Seed: seed})
}
