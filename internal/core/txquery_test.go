package core

import (
	"errors"
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/simnet"
	"icistrategy/internal/workload"
)

func TestQueryTxProofSucceeds(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 18, Clusters: 2, Replication: 1, Seed: 40})
	blocks := produceAndSettle(t, sys, gen, 3, 24)
	target := blocks[1]
	members, _ := sys.ClusterMembers(0)
	node, _ := sys.Node(members[0])

	// Query every transaction of the block: whichever member holds the
	// containing chunk must serve a verifiable proof.
	for i, tx := range target.Txs {
		var got TxProof
		var gotErr error
		done := false
		node.QueryTxProof(sys.Network(), target.Hash(), tx.ID(), func(p TxProof, err error) {
			got, gotErr, done = p, err, true
		})
		sys.Network().RunUntilIdle()
		if !done {
			t.Fatalf("tx %d: query never completed", i)
		}
		if gotErr != nil {
			t.Fatalf("tx %d: %v", i, gotErr)
		}
		if got.Tx.ID() != tx.ID() {
			t.Fatalf("tx %d: wrong transaction returned", i)
		}
		if err := got.Verify(); err != nil {
			t.Fatalf("tx %d: returned proof does not verify: %v", i, err)
		}
		if got.Header.Hash() != target.Hash() {
			t.Fatalf("tx %d: proof against wrong header", i)
		}
	}
}

func TestQueryTxProofUnknownTx(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 1, Seed: 41})
	blocks := produceAndSettle(t, sys, gen, 1, 12)
	node, _ := sys.Node(0)
	var gotErr error
	done := false
	node.QueryTxProof(sys.Network(), blocks[0].Hash(), blockcrypto.Sum256([]byte("ghost tx")),
		func(_ TxProof, err error) { gotErr, done = err, true })
	sys.Network().RunUntilIdle()
	if !done {
		t.Fatal("query never completed")
	}
	if !errors.Is(gotErr, ErrTxNotFound) {
		t.Fatalf("got %v, want ErrTxNotFound", gotErr)
	}
}

func TestQueryTxProofUnknownBlock(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 1, Seed: 42})
	produceAndSettle(t, sys, gen, 1, 12)
	node, _ := sys.Node(0)
	var gotErr error
	node.QueryTxProof(sys.Network(), blockcrypto.Sum256([]byte("no such block")),
		blockcrypto.Sum256([]byte("tx")), func(_ TxProof, err error) { gotErr = err })
	sys.Network().RunUntilIdle()
	if !errors.Is(gotErr, ErrUnknownBlock) {
		t.Fatalf("got %v, want ErrUnknownBlock", gotErr)
	}
}

func TestQueryTxProofLocalFastPath(t *testing.T) {
	// If the querying node itself owns the chunk, no network traffic is
	// needed.
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 1, Replication: 1, Seed: 43})
	blocks := produceAndSettle(t, sys, gen, 1, 24)
	target := blocks[0]
	// Find a (node, tx) pair where the node holds the tx's chunk.
	for id := 0; id < 12; id++ {
		node, _ := sys.Node(simnetID(id))
		for _, tx := range target.Txs {
			if proof, ok := node.localTxProof(target.Hash(), tx.ID()); ok {
				sys.Network().ResetTraffic()
				var got TxProof
				var gotErr error
				node.QueryTxProof(sys.Network(), target.Hash(), tx.ID(), func(p TxProof, err error) {
					got, gotErr = p, err
				})
				if gotErr != nil {
					t.Fatal(gotErr)
				}
				if got.Tx.ID() != proof.Tx.ID() {
					t.Fatal("local fast path returned wrong tx")
				}
				if tr := sys.Network().TotalTraffic(); tr.MsgsSent != 0 {
					t.Fatalf("local query sent %d messages", tr.MsgsSent)
				}
				return
			}
		}
	}
	t.Fatal("no node held any chunk — distribution broken")
}

func TestTxProofVerifyRejectsMismatch(t *testing.T) {
	gen, err := newGenForTest(44)
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.NextTxs(8)
	b, err := chain.NewBlock(0, blockcrypto.ZeroHash, txs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := chain.TxMerkleTree(txs)
	p0, _ := tree.Prove(0)
	good := TxProof{Tx: txs[0], Header: b.Header, Proof: p0}
	if err := good.Verify(); err != nil {
		t.Fatalf("good proof rejected: %v", err)
	}
	bad := good
	bad.Tx = txs[1]
	if err := bad.Verify(); err == nil {
		t.Fatal("proof verified for the wrong transaction")
	}
	empty := TxProof{}
	if err := empty.Verify(); err == nil {
		t.Fatal("empty proof verified")
	}
}

// simnetID converts an int for readability in tests.
func simnetID(i int) (id simnet.NodeID) { return simnet.NodeID(i) }

// newGenForTest builds a small deterministic workload generator.
func newGenForTest(seed uint64) (*workload.Generator, error) {
	return workload.NewGenerator(workload.Config{Accounts: 20, PayloadBytes: 10, Seed: seed})
}
