package core

import (
	"testing"

	"icistrategy/internal/chain"
	"icistrategy/internal/simnet"
	"icistrategy/internal/storage"
)

func TestLeaveClusterHandsOffChunks(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 80})
	blocks := produceAndSettle(t, sys, gen, 4, 16)
	members, _ := sys.ClusterMembers(0)
	leaver := members[1]
	lnode, _ := sys.Node(leaver)
	if lnode.Store().Stats().ChunkCount == 0 {
		t.Skip("leaver owned no chunks under this seed")
	}

	moved := -1
	var herr error
	done := false
	if err := sys.LeaveCluster(leaver, func(m int, err error) {
		moved, herr, done = m, err, true
	}); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if !done {
		t.Fatal("handoff never completed")
	}
	if herr != nil {
		t.Fatalf("graceful leave: %v", herr)
	}
	if moved == 0 {
		t.Fatal("leaver handed off nothing despite holding chunks")
	}
	if !sys.Network().IsDown(leaver) {
		t.Fatal("leaver still up after departing")
	}

	// The departure epoch is current AND already placed: the handoff moved
	// the data, so no repair is needed at all.
	seq, _ := sys.ClusterEpoch(0)
	if seq != 1 {
		t.Fatalf("epoch seq = %d after one leave, want 1", seq)
	}
	if got := sys.clusters[0].placementAt(0).seq; got != 1 {
		t.Fatalf("placement seq = %d after acknowledged handoff, want 1", got)
	}
	for _, b := range blocks {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatalf("integrity after leave, no repair: %v", err)
		}
	}
	fetchesBefore := sys.Registry().Counter("ici.repair.chunk_fetches").Value()
	lost := -1
	if err := sys.RepairCluster(0, func(l int) { lost = l }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if lost != 0 {
		t.Fatalf("repair after graceful leave lost %d chunks", lost)
	}
	if d := sys.Registry().Counter("ici.repair.chunk_fetches").Value() - fetchesBefore; d != 0 {
		t.Fatalf("graceful leave still needed %d repair fetches", d)
	}

	// Pre-departure blocks stay retrievable and new blocks commit under the
	// shrunk membership.
	reader, _ := sys.Node(members[0])
	var gotErr error
	reader.RetrieveBlock(sys.Network(), blocks[0].Hash(), func(_ *chain.Block, err error) { gotErr = err })
	sys.Network().RunUntilIdle()
	if gotErr != nil {
		t.Fatalf("pre-departure retrieval after leave: %v", gotErr)
	}
	more := produceAndSettle(t, sys, gen, 2, 16)
	for _, b := range more {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLeaveClusterValidation(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 8, Clusters: 2, Replication: 1, Seed: 81})
	produceAndSettle(t, sys, gen, 1, 8)
	members, _ := sys.ClusterMembers(0)
	if err := sys.FailNode(members[0]); err != nil {
		t.Fatal(err)
	}
	if err := sys.LeaveCluster(members[0], func(int, error) {}); err == nil {
		t.Fatal("graceful leave of a crashed node accepted")
	}
	single, _ := buildSystem(t, Config{Nodes: 2, Clusters: 2, Replication: 1, Seed: 81})
	m0, _ := single.ClusterMembers(0)
	if err := single.LeaveCluster(m0[0], func(int, error) {}); err == nil {
		t.Fatal("last member allowed to leave")
	}
}

func TestRejoinClusterSameIdentity(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 82})
	pre := produceAndSettle(t, sys, gen, 3, 16)
	members, _ := sys.ClusterMembers(0)
	victim := members[2]
	if err := sys.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	lost := -1
	if err := sys.RepairCluster(0, func(l int) { lost = l }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if lost != 0 {
		t.Fatal("repair after removal lost chunks")
	}
	mid := produceAndSettle(t, sys, gen, 3, 16)

	var rerr error
	done := false
	if err := sys.RejoinCluster(victim, func(err error) { rerr, done = err, true }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if !done {
		t.Fatal("rejoin never completed")
	}
	if rerr != nil {
		t.Fatalf("rejoin bootstrap: %v", rerr)
	}

	// Same identity is back in membership: remove + rejoin = two epochs.
	cur, _ := sys.ClusterMembers(0)
	if !memberOf(cur, victim) {
		t.Fatal("rejoined node not in membership")
	}
	seq, _ := sys.ClusterEpoch(0)
	if seq != 2 {
		t.Fatalf("epoch seq = %d after remove+rejoin, want 2", seq)
	}

	// The rejoined node holds every chunk it owns under the rejoin epoch,
	// including blocks produced while it was away.
	node, _ := sys.Node(victim)
	all := append(append([]*chain.Block(nil), pre...), mid...)
	for _, b := range all {
		parts := sys.clusters[0].partsAt(b.Header.Height)
		for idx := 0; idx < parts; idx++ {
			owns, err := IsOwner(b.Hash().Uint64(), cur, idx, 2, victim)
			if err != nil {
				t.Fatal(err)
			}
			if owns && !node.Store().HasChunk(storage.ChunkID{Block: b.Hash(), Index: idx}) {
				t.Fatalf("rejoined node misses owned chunk %d of height %d", idx, b.Header.Height)
			}
		}
	}

	// And it participates in new blocks under its original keypair.
	more := produceAndSettle(t, sys, gen, 2, 16)
	for _, b := range more {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatal(err)
		}
		if !node.Store().HasHeader(b.Hash()) {
			t.Fatal("rejoined node did not participate in post-rejoin blocks")
		}
	}
}

func TestRejoinRequiresDeparture(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 8, Clusters: 2, Replication: 1, Seed: 83})
	produceAndSettle(t, sys, gen, 1, 8)
	members, _ := sys.ClusterMembers(0)
	if err := sys.RejoinCluster(members[0], func(error) {}); err == nil {
		t.Fatal("rejoin of a current member accepted")
	}
}

// TestRetrievePreDepartureBlockAfterTwoRemovals is the stale-placement
// regression at the heart of this bugfix family: removing members must not
// re-resolve historic blocks against the post-churn membership. Two members
// depart back to back with no repair in between; every pre-departure block
// must keep its write-epoch parts count, survive pruning untouched (the
// departed epochs have not migrated, so the pre-churn owners ARE the data),
// and remain fully retrievable from the survivors.
func TestRetrievePreDepartureBlockAfterTwoRemovals(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 84})
	blocks := produceAndSettle(t, sys, gen, 4, 16)
	members, _ := sys.ClusterMembers(0)
	writeParts := len(members)

	// Pick two victims that co-own no chunk, so r=2 keeps one live replica
	// of everything (co-owning victims would be genuine data loss, not a
	// placement bug).
	v1 := members[1]
	v2 := simnet.NodeID(0)
	foundPair := false
	for _, cand := range members {
		if cand == v1 || cand == members[0] {
			continue
		}
		shared := false
		for _, b := range blocks {
			seed := b.Hash().Uint64()
			for idx := 0; idx < writeParts && !shared; idx++ {
				owners, err := Owners(seed, members, idx, 2)
				if err != nil {
					t.Fatal(err)
				}
				if memberOf(owners, v1) && memberOf(owners, cand) {
					shared = true
				}
			}
			if shared {
				break
			}
		}
		if !shared {
			v2, foundPair = cand, true
			break
		}
	}
	if !foundPair {
		t.Skip("no disjoint victim pair under this seed")
	}

	if err := sys.RemoveNode(v1); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveNode(v2); err != nil {
		t.Fatal(err)
	}

	// Historic blocks keep their write-epoch arithmetic.
	for _, b := range blocks {
		if got := sys.clusters[0].partsAt(b.Header.Height); got != writeParts {
			t.Fatalf("height %d: parts %d after removals, want write-epoch %d", b.Header.Height, got, writeParts)
		}
	}
	wm, err := sys.ClusterMembersAt(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(wm) != writeParts {
		t.Fatalf("write-epoch membership shrank to %d, want %d", len(wm), writeParts)
	}

	// Pruning before any repair must collect nothing: placement still names
	// the pre-churn owners, and their copies are the only live replicas.
	freed, err := sys.PruneCluster(0)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 0 {
		t.Fatalf("prune collected %d bytes of un-migrated replicas", freed)
	}

	// Every pre-departure block is still whole and retrievable.
	reader, _ := sys.Node(members[0])
	for _, b := range blocks {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatalf("integrity after two unrepaired removals: %v", err)
		}
		var got *chain.Block
		var rerr error
		reader.RetrieveBlock(sys.Network(), b.Hash(), func(blk *chain.Block, err error) { got, rerr = blk, err })
		sys.Network().RunUntilIdle()
		if rerr != nil {
			t.Fatalf("pre-departure block %d unretrievable: %v", b.Header.Height, rerr)
		}
		if got == nil || got.Hash() != b.Hash() {
			t.Fatalf("pre-departure block %d: wrong block returned", b.Header.Height)
		}
	}

	// Repair migrates the delta, advances placement, and the cluster is
	// healthy under the new epoch.
	lost := -1
	if err := sys.RepairCluster(0, func(l int) { lost = l }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if lost != 0 {
		t.Fatalf("repair lost %d chunks with disjoint victims and r=2", lost)
	}
	if got := sys.clusters[0].placementAt(0).seq; got != 2 {
		t.Fatalf("placement seq = %d after repair, want 2", got)
	}
	for _, b := range blocks {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatalf("integrity after repair: %v", err)
		}
	}
}

// TestPruneDuringJoinWindowKeepsReplicas pins the data-loss half of the
// stale-placement bug: a join demotes the displaced owner immediately, but
// the newcomer has not fetched anything yet. Pruning inside that window used
// to evaluate ownership under the mutated membership and collect the only
// replica (fatal at r=1). Placement-epoch pruning keeps the copy until the
// bootstrap completes and advances placement.
func TestPruneDuringJoinWindowKeepsReplicas(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 1, Seed: 85})
	blocks := produceAndSettle(t, sys, gen, 4, 12)

	var joinErr error
	done := false
	if err := sys.JoinCluster(0, func(_ simnet.NodeID, err error) { joinErr, done = err, true }); err != nil {
		t.Fatal(err)
	}
	// Prune races the bootstrap: the join epoch exists but nothing migrated.
	freed, err := sys.PruneCluster(0)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 0 {
		t.Fatalf("prune collected %d bytes while the join was still bootstrapping", freed)
	}
	sys.Network().RunUntilIdle()
	if !done {
		t.Fatal("join never completed")
	}
	if joinErr != nil {
		t.Fatalf("bootstrap: %v", joinErr)
	}
	for _, b := range blocks {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatalf("integrity after join: %v", err)
		}
	}
	// Once the migration advanced placement, the displaced copies are fair
	// game — and collecting them must not break integrity.
	if _, err := sys.PruneCluster(0); err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatalf("integrity after post-join prune: %v", err)
		}
	}
}

func TestJoinAfterUnrepairedRemovalSucceeds(t *testing.T) {
	// A join while the cluster still has un-migrated departure epochs must
	// bootstrap from write-epoch placement sources, not just the current
	// owner set.
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 86})
	blocks := produceAndSettle(t, sys, gen, 3, 16)
	members, _ := sys.ClusterMembers(0)
	if err := sys.RemoveNode(members[1]); err != nil {
		t.Fatal(err)
	}
	var joinErr error
	done := false
	if err := sys.JoinCluster(0, func(_ simnet.NodeID, err error) { joinErr, done = err, true }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if !done {
		t.Fatal("join never completed")
	}
	if joinErr != nil {
		t.Fatalf("bootstrap into unrepaired cluster: %v", joinErr)
	}
	for _, b := range blocks {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJoinRefusesMidBootstrapSponsor pins the sponsor-selection fix: a
// member that is itself still bootstrapping has an empty or partial chain
// and must never sponsor another join.
func TestJoinRefusesMidBootstrapSponsor(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 1, Seed: 87})
	produceAndSettle(t, sys, gen, 2, 12)
	members, _ := sys.ClusterMembers(0)
	for _, m := range members[1:] {
		if err := sys.FailNode(m); err != nil {
			t.Fatal(err)
		}
	}
	// First join is sponsored by the one settled survivor...
	if err := sys.JoinCluster(0, func(simnet.NodeID, error) {}); err != nil {
		t.Fatal(err)
	}
	// ...which crashes before the joiner syncs anything. The only live
	// member left is the mid-bootstrap joiner.
	if err := sys.FailNode(members[0]); err != nil {
		t.Fatal(err)
	}
	if err := sys.JoinCluster(0, func(simnet.NodeID, error) {}); err == nil {
		t.Fatal("join accepted a mid-bootstrap sponsor")
	}
}

func TestConcurrentJoinsBothBootstrap(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 2, Seed: 88})
	blocks := produceAndSettle(t, sys, gen, 3, 12)
	type res struct {
		id  simnet.NodeID
		err error
	}
	var results []res
	for i := 0; i < 2; i++ {
		if err := sys.JoinCluster(0, func(id simnet.NodeID, err error) {
			results = append(results, res{id, err})
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Network().RunUntilIdle()
	if len(results) != 2 {
		t.Fatalf("%d of 2 joins completed", len(results))
	}
	cur, _ := sys.ClusterMembers(0)
	for _, r := range results {
		if r.err != nil {
			t.Fatalf("concurrent join %d: %v", r.id, r.err)
		}
		if !memberOf(cur, r.id) {
			t.Fatalf("joined node %d missing from membership", r.id)
		}
	}
	seq, _ := sys.ClusterEpoch(0)
	if seq != 2 {
		t.Fatalf("epoch seq = %d after two joins, want 2", seq)
	}
	for _, b := range blocks {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatal(err)
		}
	}
	more := produceAndSettle(t, sys, gen, 2, 12)
	for _, b := range more {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatal(err)
		}
		if got := sys.clusters[0].partsAt(b.Header.Height); got != len(cur) {
			t.Fatalf("post-join block split into %d parts, membership is %d", got, len(cur))
		}
	}
}
