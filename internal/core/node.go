package core

import (
	"errors"
	"fmt"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/consensus"
	"icistrategy/internal/simnet"
	"icistrategy/internal/storage"
	"icistrategy/internal/trace"
)

// Protocol errors surfaced through completion callbacks.
var (
	ErrUnknownBlock    = errors.New("core: block header not known")
	ErrRetrieveFailed  = errors.New("core: could not gather all chunks")
	ErrBootstrapFailed = errors.New("core: bootstrap incomplete")
	ErrChunkLost       = errors.New("core: chunk unrecoverable inside cluster")
)

// fetchTimeout bounds how long (virtual time) one round of an async fetch
// waits before retrying or reporting failure. Each retry doubles it.
const fetchTimeout = 30 * time.Second

// maxFetchAttempts is the number of request rounds a broadcast fetch
// (retrieval, inclusion query, header sync) issues before giving up. A
// round is only retried when it timed out — a round in which every member
// answered and the data still was not there is definitive.
const maxFetchAttempts = 3

// maxSourcePasses bounds how many full sweeps over its source list a
// single-chunk fetch makes. A pass in which every source answered "not
// found" is definitive; extra passes only happen after timeouts (a source
// may have been down and restarted).
const maxSourcePasses = 2

// Behavior configures fault injection for a node, used by the robustness
// tests and the failure experiments.
type Behavior struct {
	// VoteReject makes the node vote against every block (Byzantine).
	VoteReject bool
	// DropVotes makes the node never send votes (crash-ish).
	DropVotes bool
	// TamperChunks makes the node, when leading, corrupt the first
	// transaction of every chunk it distributes (Byzantine leader).
	TamperChunks bool
}

// chunkMeta is the sidecar state an owner keeps next to a stored chunk so
// it can serve verifiable fetches and reassemblies.
type chunkMeta struct {
	txStart int
	parts   int
	proofs  []chain.Proof
	// coded marks a Reed-Solomon byte share produced by archival; codedK
	// is the data-share threshold needed to reconstruct the block.
	coded  bool
	codedK int
}

// coverInterval is the virtual-time cadence at which a leader re-checks
// chunk coverage and reassigns chunks whose owners stayed silent. It is
// deliberately generous so that failure-free distribution (even of MB-scale
// blocks over 20 Mbit/s links) always completes before the first check —
// rejections reassign immediately and do not wait for this timer.
const coverInterval = 2 * time.Second

// leaderState tracks one block the node is currently leading.
type leaderState struct {
	block    *chain.Block
	seed     uint64
	table    *consensus.ChunkTable
	payloads []chunkPayload
	// assigned[i] is the set of members currently asked to verify chunk i.
	assigned []map[simnet.NodeID]bool
	// ranking[i] is the full rendezvous fallback order for chunk i;
	// nextCand[i] is the next ranking position to try.
	ranking   [][]simnet.NodeID
	nextCand  []int
	pool      []consensus.Vote // valid approve votes collected so far
	rounds    int
	committed bool
	rejected  bool
	// span covers this block's distribution on this leader: open at
	// onPropose, closed at commit/reject (or coverage exhaustion). Chunk
	// and commit messages carry its context so the whole fan-out traces
	// under it.
	span trace.Span
}

// fetchState tracks one async multi-message operation (retrieval,
// bootstrap chunk fetch).
type fetchState struct {
	block  blockcrypto.Hash
	parts  int // 0 until learned
	codedK int // >0 for archived-block retrievals
	chunks map[int]retrievedChunk

	// Broadcast fetches (full-block retrieval) re-ask the whole cluster on
	// timeout, with doubled timeout, up to maxFetchAttempts rounds.
	waiting   int                    // outstanding responses this round
	responded map[simnet.NodeID]bool // members that answered this round
	attempts  int                    // rounds issued so far
	timeout   time.Duration          // current round's timeout

	// Single-chunk fetches walk a source ring: the next rendezvous replica
	// on a miss or timeout, wrapping for one extra pass after timeouts.
	sources  []simnet.NodeID
	srcPos   int
	passes   int
	timedOut bool // a source timed out during the current pass
	idx      int  // chunk index for single-chunk fetches
	done     bool
	onBlock  func(*chain.Block, error)
	onChunk  func(error)
	// span covers the whole fetch (all rounds); requests carry its context.
	span trace.Span
}

// Node is one ICIStrategy participant. Nodes are driven entirely by the
// simulated network: HandleMessage is the single entry point. Not safe for
// concurrent use (the simulator is single-threaded).
type Node struct {
	id         simnet.NodeID
	cluster    *clusterInfo
	key        blockcrypto.KeyPair
	registry   func(simnet.NodeID) []byte // public key lookup
	store      *storage.Store
	meta       map[storage.ChunkID]chunkMeta
	proofBytes int64

	replication int
	behavior    Behavior

	leading map[blockcrypto.Hash]*leaderState
	pending map[blockcrypto.Hash][]chunkPayload
	// pendingLeader remembers which leader distributed each pending block,
	// so a member whose commit announcement was lost knows whom to probe.
	pendingLeader map[blockcrypto.Hash]simnet.NodeID
	// commits retains the certificate of each finalized block (bounded by
	// sweepStale) so lost commit announcements can be re-served on demand.
	commits map[blockcrypto.Hash]commitMsg

	fetches   map[uint64]*fetchState
	txQueries map[uint64]*txQueryState
	nextReq   uint64
	bootstrap *bootstrapState
	handoff   *handoffState

	metrics NodeMetrics

	// tr/pc are the System-wide structured tracer and protocol counters
	// (tr may be nil = disabled; pc is never nil). rxSpan is the span
	// context of the message currently being handled — the implicit parent
	// for spans and sends made from inside HandleMessage. The simulator is
	// single-threaded, so a plain field is safe.
	tr     *trace.Tracer
	pc     *protoCounters
	rxSpan trace.SpanID

	// committedHeights counts blocks this node has finalized, for tests
	// and throughput accounting.
	committed int
}

// newNode wires a node; System owns construction.
func newNode(id simnet.NodeID, ci *clusterInfo, key blockcrypto.KeyPair, replication int, registry func(simnet.NodeID) []byte, tr *trace.Tracer, pc *protoCounters) *Node {
	if pc == nil {
		pc = newProtoCounters(nil)
	}
	return &Node{
		id:            id,
		cluster:       ci,
		key:           key,
		registry:      registry,
		store:         storage.NewStore(),
		meta:          make(map[storage.ChunkID]chunkMeta),
		replication:   replication,
		leading:       make(map[blockcrypto.Hash]*leaderState),
		pending:       make(map[blockcrypto.Hash][]chunkPayload),
		pendingLeader: make(map[blockcrypto.Hash]simnet.NodeID),
		commits:       make(map[blockcrypto.Hash]commitMsg),
		fetches:       make(map[uint64]*fetchState),
		txQueries:     make(map[uint64]*txQueryState),
		tr:            tr,
		pc:            pc,
	}
}

// ID returns the node's network identity.
func (n *Node) ID() simnet.NodeID { return n.id }

// Store exposes the node's local store (read-only use by experiments).
func (n *Node) Store() *storage.Store { return n.store }

// ProofBytes returns the bytes of Merkle proofs kept alongside chunks.
func (n *Node) ProofBytes() int64 { return n.proofBytes }

// CommittedBlocks returns how many blocks this node has finalized.
func (n *Node) CommittedBlocks() int { return n.committed }

// HasFinalized reports whether this node committed the given block (stored
// its header) — the precondition for retrieving it through this node.
func (n *Node) HasFinalized(block blockcrypto.Hash) bool { return n.store.HasHeader(block) }

// SetBehavior installs fault injection.
func (n *Node) SetBehavior(b Behavior) { n.behavior = b }

// Bootstrapping reports whether this node is still syncing its chain: a
// mid-bootstrap node must not sponsor another join (its header answer
// would be empty or partial and corrupt the joiner's bootstrap).
func (n *Node) Bootstrapping() bool { return n.bootstrap != nil }

// HandleMessage implements simnet.Handler.
func (n *Node) HandleMessage(net *simnet.Network, msg simnet.Message) {
	// The incoming message's span context becomes the implicit parent for
	// everything this handler does (spans it opens, messages it sends).
	prev := n.rxSpan
	n.rxSpan = msg.Span
	defer func() { n.rxSpan = prev }()
	switch msg.Kind {
	case KindPropose:
		if m, ok := msg.Payload.(proposeMsg); ok {
			n.onPropose(net, m)
		}
	case KindChunk:
		if m, ok := msg.Payload.(chunkPayload); ok {
			n.onChunk(net, msg.From, m)
		}
	case KindVote:
		if m, ok := msg.Payload.(consensus.Vote); ok {
			n.onVote(net, m)
		}
	case KindCommit:
		if m, ok := msg.Payload.(commitMsg); ok {
			n.onCommit(m)
		}
	case KindGetHeaders:
		if m, ok := msg.Payload.(getHeadersMsg); ok {
			n.onGetHeaders(net, msg.From, m)
		}
	case KindHeaders:
		if m, ok := msg.Payload.(headersMsg); ok {
			n.onHeaders(net, m)
		}
	case KindGetChunk:
		if m, ok := msg.Payload.(getChunkMsg); ok {
			n.onGetChunk(net, msg.From, m)
		}
	case KindChunkResp:
		if m, ok := msg.Payload.(chunkRespMsg); ok {
			n.onChunkResp(net, msg.From, m)
		}
	case KindGetBlockChunks:
		if m, ok := msg.Payload.(getBlockChunksMsg); ok {
			n.onGetBlockChunks(net, msg.From, m)
		}
	case KindBlockChunks:
		if m, ok := msg.Payload.(blockChunksMsg); ok {
			n.onBlockChunks(net, msg.From, m)
		}
	case KindGetCommit:
		if m, ok := msg.Payload.(getCommitMsg); ok {
			n.onGetCommit(net, msg.From, m)
		}
	case KindGetTxProof:
		if m, ok := msg.Payload.(getTxProofMsg); ok {
			n.onGetTxProof(net, msg.From, m)
		}
	case KindTxProof:
		if m, ok := msg.Payload.(txProofMsg); ok {
			n.onTxProof(net, msg.From, m)
		}
	case KindArchiveShare:
		if m, ok := msg.Payload.(archiveShareMsg); ok {
			n.onArchiveShare(net, m)
		}
	case KindHandoff:
		if m, ok := msg.Payload.(handoffMsg); ok {
			n.onHandoff(net, msg.From, m)
		}
	case KindHandoffAck:
		if m, ok := msg.Payload.(handoffAckMsg); ok {
			n.onHandoffAck(m)
		}
	}
}

var _ simnet.Handler = (*Node)(nil)

// --- distribution: leader side ---------------------------------------------

// onPropose runs on the cluster leader when the producer hands it a new
// block: split into chunks, attach proofs, send each chunk to its owners,
// and start per-chunk vote aggregation. The leader deliberately does not
// verify transaction signatures itself — that is the collaborative part:
// every transaction is verified by the owners of its chunk, and the block
// commits once every chunk is covered by a quorum of approvals.
func (n *Node) onPropose(net *simnet.Network, m proposeMsg) {
	b := m.Block
	hash := b.Hash()
	if _, ok := n.leading[hash]; ok {
		return // duplicate proposal
	}
	if err := b.VerifyShape(); err != nil {
		return // malformed block: never enters voting
	}
	tree, err := chain.TxMerkleTree(b.Txs)
	if err != nil {
		return
	}
	// Distribution is governed by the block's write epoch: the member set,
	// chunk count and rendezvous ranking all come from the membership at
	// the block's height, so a membership change racing a proposal cannot
	// skew placement.
	members := n.cluster.membersAt(b.Header.Height)
	parts := len(members)
	counts, err := SplitCounts(len(b.Txs), parts)
	if err != nil {
		return
	}
	table, err := consensus.NewChunkTable(hash, parts, parts, n.replication)
	if err != nil {
		return
	}
	seed := hash.Uint64()
	st := &leaderState{
		block:    b,
		seed:     seed,
		table:    table,
		payloads: make([]chunkPayload, parts),
		assigned: make([]map[simnet.NodeID]bool, parts),
		ranking:  make([][]simnet.NodeID, parts),
		nextCand: make([]int, parts),
		span:     n.tr.Start(n.rxSpan, "distribute", "distribute", int64(n.id)),
	}
	n.leading[hash] = st
	n.pc.proposals.Inc()
	st.span.AddBytes(int64(b.BodySize()))
	table.Instrument(consensus.VoteObserver{
		Tracer: n.tr,
		Parent: st.span.Context(),
		Node:   int64(n.id),
		Votes:  n.pc.votes, Equivocations: n.pc.equivocations, Decisions: n.pc.decisions,
	})

	txStart := 0
	for idx := 0; idx < parts; idx++ {
		cnt := counts[idx]
		group := b.Txs[txStart : txStart+cnt]
		proofs := make([]chain.Proof, len(group))
		for i := range group {
			p, perr := tree.Prove(txStart + i)
			if perr != nil {
				return
			}
			proofs[i] = p
		}
		payload := chunkPayload{
			Header:  b.Header,
			PartIdx: idx,
			Parts:   parts,
			TxStart: txStart,
			Txs:     group,
			Proofs:  proofs,
		}
		if n.behavior.TamperChunks && len(group) > 0 {
			tampered := *group[0]
			tampered.Amount++
			mut := append([]*chain.Transaction(nil), group...)
			mut[0] = &tampered
			payload.Txs = mut
		}
		st.payloads[idx] = payload
		ranked, rerr := RankedMembers(seed, members, idx)
		if rerr != nil {
			return
		}
		st.ranking[idx] = ranked
		st.assigned[idx] = make(map[simnet.NodeID]bool, n.replication)
		st.nextCand[idx] = n.replication
		for _, o := range ranked[:n.replication] {
			st.assigned[idx][o] = true
			n.sendChunk(net, o, payload, st.span.Context())
		}
		txStart += cnt
	}
	net.After(coverInterval, func() { n.coverageCheck(net, hash) })
}

// sendChunk delivers a chunk to one member (locally when the leader owns
// it), under the distribution span.
func (n *Node) sendChunk(net *simnet.Network, to simnet.NodeID, payload chunkPayload, span trace.SpanID) {
	n.pc.chunksSent.Inc()
	if to == n.id {
		prev := n.rxSpan
		n.rxSpan = span
		n.onChunk(net, n.id, payload)
		n.rxSpan = prev
		return
	}
	_ = net.Send(simnet.Message{
		From: n.id, To: to, Kind: KindChunk,
		Size: payload.wireSize(), Payload: payload, Span: span,
	})
}

// coverageCheck walks uncovered chunks and extends their assignment down
// the rendezvous ranking, bounded to one full pass over the membership.
func (n *Node) coverageCheck(net *simnet.Network, block blockcrypto.Hash) {
	st, ok := n.leading[block]
	if !ok || st.committed || st.rejected {
		return
	}
	st.rounds++
	if st.rounds > len(n.cluster.members) {
		// Candidates exhausted; the block stays uncommitted here.
		st.span.SetErr(errors.New("coverage exhausted"))
		st.span.End()
		return
	}
	for _, idx := range st.table.Uncovered() {
		// First re-send the chunk to assignees that never voted: either the
		// chunk or the vote was lost on the wire, and a re-delivery makes
		// the member re-vote (both sides are idempotent). Then extend the
		// assignment down the ranking as before. Assignment order follows
		// the rendezvous ranking so re-sends are deterministic.
		for _, m := range st.ranking[idx][:min(st.nextCand[idx], len(st.ranking[idx]))] {
			if st.assigned[idx][m] && !st.table.HasVoted(m, idx) {
				n.metrics.ChunkResends.Inc()
				n.sendChunk(net, m, st.payloads[idx], st.span.Context())
			}
		}
		n.reassignChunk(net, st, idx)
	}
	net.After(coverInterval, func() { n.coverageCheck(net, block) })
}

// reassignChunk asks the next-ranked member to verify chunk idx.
func (n *Node) reassignChunk(net *simnet.Network, st *leaderState, idx int) {
	for st.nextCand[idx] < len(st.ranking[idx]) {
		cand := st.ranking[idx][st.nextCand[idx]]
		st.nextCand[idx]++
		if st.assigned[idx][cand] {
			continue
		}
		st.assigned[idx][cand] = true
		n.sendChunk(net, cand, st.payloads[idx], st.span.Context())
		return
	}
}

// --- distribution: member side ----------------------------------------------

// verifyChunk checks everything a member can check about its share: proof
// indices, Merkle membership under the header root, and every transaction
// signature.
func verifyChunk(c chunkPayload) error {
	if len(c.Txs) != len(c.Proofs) {
		return fmt.Errorf("core: %d txs with %d proofs", len(c.Txs), len(c.Proofs))
	}
	for i, tx := range c.Txs {
		if c.Proofs[i].LeafIndex != c.TxStart+i {
			return fmt.Errorf("core: proof %d has leaf index %d, want %d", i, c.Proofs[i].LeafIndex, c.TxStart+i)
		}
		if err := chain.VerifyProof(c.Header.MerkleRoot, tx.ID(), c.Proofs[i]); err != nil {
			return fmt.Errorf("core: tx %d proof: %w", c.TxStart+i, err)
		}
		if err := tx.VerifySignature(); err != nil {
			return fmt.Errorf("core: tx %d: %w", c.TxStart+i, err)
		}
	}
	return nil
}

// onChunk runs on a chunk assignee: verify the share and vote on exactly
// the chunk received. Ingestion is idempotent — a chunk already held
// (persisted or pending) is not re-verified or re-queued, but the member
// re-votes so that a vote lost on the wire cannot stall the commit (the
// leader re-sends chunks to silent assignees for exactly this reason).
func (n *Node) onChunk(net *simnet.Network, leader simnet.NodeID, c chunkPayload) {
	hash := c.Header.Hash()
	if n.hasChunkData(hash, c.PartIdx) {
		n.metrics.DuplicateChunks.Inc()
		n.voteChunk(net, leader, hash, c.PartIdx, true, n.rxSpan)
		return
	}
	sp := n.tr.Start(n.rxSpan, "verify", fmt.Sprintf("verify[%d]", c.PartIdx), int64(n.id))
	sp.AddBytes(int64(c.dataBytes()))
	approve := verifyChunk(c) == nil
	n.pc.verified.Inc()
	if approve {
		n.pc.approvals.Inc()
	} else {
		n.pc.rejections.Inc()
		sp.SetErr(errors.New("chunk rejected"))
	}
	sp.End()
	if approve {
		if n.store.HasHeader(hash) {
			// Commit already happened (late reassignment): persist now.
			n.persistChunk(hash, c)
		} else {
			if len(n.pending[hash]) == 0 {
				// First chunk of a block this node has not committed:
				// remember the distributing leader and arm the commit
				// probe in case the commit announcement gets lost.
				n.pendingLeader[hash] = leader
				n.scheduleCommitProbe(net, hash, 1)
			}
			n.pending[hash] = append(n.pending[hash], c)
		}
	}
	n.voteChunk(net, leader, hash, c.PartIdx, approve, sp.Context())
}

// hasChunkData reports whether this node already holds chunk idx of block,
// either persisted or queued pending commit.
func (n *Node) hasChunkData(block blockcrypto.Hash, idx int) bool {
	if n.store.HasChunk(storage.ChunkID{Block: block, Index: idx}) {
		return true
	}
	for _, p := range n.pending[block] {
		if p.PartIdx == idx {
			return true
		}
	}
	return false
}

// voteChunk signs and delivers this member's verdict on one chunk,
// applying the Byzantine behavior knobs. The vote travels under span (the
// verify span that produced the verdict).
func (n *Node) voteChunk(net *simnet.Network, leader simnet.NodeID, block blockcrypto.Hash, idx int, approve bool, span trace.SpanID) {
	if n.behavior.DropVotes {
		return
	}
	if n.behavior.VoteReject {
		approve = false
	}
	vote := consensus.SignChunkVote(n.id, block, idx, approve, n.key)
	if leader == n.id {
		prev := n.rxSpan
		n.rxSpan = span
		n.onVote(net, vote)
		n.rxSpan = prev
		return
	}
	_ = net.Send(simnet.Message{
		From: n.id, To: leader, Kind: KindVote,
		Size: consensus.EncodedVoteSize, Payload: vote, Span: span,
	})
}

// commitProbeDelay is how long a member holding pending chunks waits for
// the commit announcement before pulling the commit status itself. It is
// far above the failure-free commit latency, so probes only fire (as
// no-ops) after the fact in clean runs and only hit the wire when the
// announcement was actually lost.
const commitProbeDelay = 3 * coverInterval

// maxCommitProbes bounds the pull attempts per block.
const maxCommitProbes = 3

// scheduleCommitProbe arms one commit-status pull for a block this node
// holds pending chunks of. Probes back off exponentially and rotate away
// from the leader in case it crashed after committing.
func (n *Node) scheduleCommitProbe(net *simnet.Network, block blockcrypto.Hash, attempt int) {
	net.After(commitProbeDelay<<(attempt-1), func() {
		if n.store.HasHeader(block) {
			return // commit arrived normally
		}
		if _, ok := n.pending[block]; !ok {
			return // swept: the proposal is dead
		}
		if target, ok := n.commitProbeTarget(block, attempt); ok {
			n.metrics.CommitProbes.Inc()
			_ = net.Send(simnet.Message{
				From: n.id, To: target, Kind: KindGetCommit,
				Size: reqOverhead, Payload: getCommitMsg{Block: block},
			})
		}
		if attempt < maxCommitProbes {
			n.scheduleCommitProbe(net, block, attempt+1)
		}
	})
}

// commitProbeTarget picks whom to ask for a block's commit status: the
// distributing leader first, then a deterministic rotation over the rest
// of the cluster.
func (n *Node) commitProbeTarget(block blockcrypto.Hash, attempt int) (simnet.NodeID, bool) {
	if attempt == 1 {
		if l, ok := n.pendingLeader[block]; ok && l != n.id {
			return l, true
		}
	}
	members := n.cluster.members
	for i := 0; i < len(members); i++ {
		m := members[(attempt+i)%len(members)]
		if m != n.id {
			return m, true
		}
	}
	return 0, false
}

// onGetCommit re-serves a retained commit certificate to a member whose
// commit announcement was lost. Unknown (or swept) blocks are ignored —
// the prober's backoff handles silence.
func (n *Node) onGetCommit(net *simnet.Network, from simnet.NodeID, m getCommitMsg) {
	cm, ok := n.commits[m.Block]
	if !ok {
		return
	}
	_ = net.Send(simnet.Message{
		From: n.id, To: from, Kind: KindCommit,
		Size: cm.wireSize(), Payload: cm, Span: n.rxSpan,
	})
}

// onVote runs on the leader: aggregate per-chunk votes; commit when every
// chunk is covered, reject when any chunk accumulates a Byzantine-proof
// number of rejections, and reassign a chunk immediately when an assignee
// rejects it.
func (n *Node) onVote(net *simnet.Network, v consensus.Vote) {
	st, ok := n.leading[v.Block]
	if !ok || st.committed || st.rejected {
		return
	}
	if v.ChunkIdx < 0 || v.ChunkIdx >= len(st.assigned) {
		return
	}
	if !st.assigned[v.ChunkIdx][v.Voter] {
		return // votes from members never assigned the chunk carry no weight
	}
	if st.table.HasVoted(v.Voter, v.ChunkIdx) {
		// Duplicate delivery, or a re-vote triggered by a chunk re-send
		// racing the original vote: the first verdict stands.
		n.metrics.DuplicateVotes.Inc()
		return
	}
	pub := n.registry(v.Voter)
	if pub == nil || consensus.VerifyVote(v, pub) != nil {
		return // unverifiable votes are ignored
	}
	decision, err := st.table.Add(v)
	if err != nil {
		return // equivocation: drop
	}
	if v.Approve {
		st.pool = append(st.pool, v)
	} else if decision == consensus.Pending {
		// An assignee rejected its chunk: walk to the next candidate right
		// away rather than waiting for the coverage timer.
		n.reassignChunk(net, st, v.ChunkIdx)
	}
	switch decision {
	case consensus.Rejected:
		st.rejected = true
		n.pc.rejects.Inc()
		st.span.SetErr(errors.New("block rejected"))
		st.span.End()
	case consensus.Committed:
		cert, ok := st.table.ApprovalCertificate(st.pool)
		if !ok {
			return // unreachable: Committed implies a coverable pool
		}
		st.committed = true
		msg := commitMsg{Header: st.block.Header, Parts: st.table.Parts(), Votes: cert}
		for _, m := range n.cluster.members {
			if m == n.id {
				continue
			}
			_ = net.Send(simnet.Message{
				From: n.id, To: m, Kind: KindCommit,
				Size: msg.wireSize(), Payload: msg, Span: st.span.Context(),
			})
		}
		prev := n.rxSpan
		n.rxSpan = st.span.Context()
		n.onCommit(msg)
		n.rxSpan = prev
		st.span.End()
	}
}

// verifyCommit validates a commit certificate: every chunk of the block is
// covered by quorum-many valid approvals from members of the block's write
// epoch. Verifying against the write-epoch membership (not the current
// one) keeps historic certificates valid after churn: a voter that has
// since departed was a legitimate member when it voted.
func (n *Node) verifyCommit(m commitMsg) error {
	members := n.cluster.membersAt(m.Header.Height)
	return consensus.VerifyCertificate(
		m.Header.Hash(), m.Parts, len(members), n.replication, m.Votes,
		func(id simnet.NodeID) bool { return memberOf(members, id) },
		n.registry,
	)
}

func memberOf(members []simnet.NodeID, id simnet.NodeID) bool {
	for _, m := range members {
		if m == id {
			return true
		}
	}
	return false
}

// onCommit finalizes a block: store the header and persist any pending
// chunks this node owns.
func (n *Node) onCommit(m commitMsg) {
	if err := n.verifyCommit(m); err != nil {
		return
	}
	hash := m.Header.Hash()
	if n.store.HasHeader(hash) {
		return
	}
	n.store.PutHeader(m.Header)
	// Retain the certificate so lost commit announcements can be re-served
	// to probing members (bounded by sweepStale).
	n.commits[hash] = m
	n.committed++
	n.pc.commits.Inc()
	n.tr.Point(n.rxSpan, "distribute", "commit", int64(n.id), 0, "")
	for _, c := range n.pending[hash] {
		n.persistChunk(hash, c)
	}
	delete(n.pending, hash)
	delete(n.pendingLeader, hash)
	delete(n.leading, hash)
	n.sweepStale(m.Header.Height)
}

// staleWindow is how many heights behind the committed tip pending and
// leader state may linger before being dropped. Blocks commit in height
// order, so anything far below the tip is a rejected or abandoned proposal
// that would otherwise leak memory.
const staleWindow = 8

// sweepStale drops pending chunks and leader state of long-dead proposals.
func (n *Node) sweepStale(committedHeight uint64) {
	if committedHeight < staleWindow {
		return
	}
	cutoff := committedHeight - staleWindow
	for hash, chunks := range n.pending {
		if len(chunks) > 0 && chunks[0].Header.Height < cutoff {
			delete(n.pending, hash)
			delete(n.pendingLeader, hash)
		}
	}
	for hash, st := range n.leading {
		if st.block.Header.Height < cutoff {
			delete(n.leading, hash)
		}
	}
	for hash, cm := range n.commits {
		if cm.Header.Height < cutoff {
			delete(n.commits, hash)
		}
	}
}

// persistChunk stores a verified chunk and its sidecar metadata.
func (n *Node) persistChunk(block blockcrypto.Hash, c chunkPayload) {
	id := storage.ChunkID{Block: block, Index: c.PartIdx}
	if n.store.HasChunk(id) {
		return
	}
	if err := n.store.PutChunk(storage.NewChunk(id, c.encodeChunkData())); err != nil {
		return
	}
	n.meta[id] = chunkMeta{txStart: c.TxStart, parts: c.Parts, proofs: c.Proofs}
	n.proofBytes += int64(c.proofBytes())
}

// --- serving ---------------------------------------------------------------

func (n *Node) onGetHeaders(net *simnet.Network, from simnet.NodeID, m getHeadersMsg) {
	all := n.store.Headers()
	out := make([]chain.Header, 0, len(all))
	for _, h := range all {
		if h.Height >= m.FromHeight {
			out = append(out, h)
		}
	}
	resp := headersMsg{Headers: out}
	_ = net.Send(simnet.Message{
		From: n.id, To: from, Kind: KindHeaders,
		Size: resp.wireSize(), Payload: resp, Span: n.rxSpan,
	})
}

func (n *Node) onGetChunk(net *simnet.Network, from simnet.NodeID, m getChunkMsg) {
	id := storage.ChunkID{Block: m.Block, Index: m.Idx}
	resp := chunkRespMsg{Block: m.Block, ReqID: m.ReqID, Attempt: m.Attempt}
	if chk, err := n.store.Chunk(id); err == nil {
		meta := n.meta[id]
		if txs, derr := chain.DecodeBody(chk.Data); derr == nil {
			hdr, herr := n.store.Header(m.Block)
			if herr == nil {
				resp.Found = true
				resp.Chunk = chunkPayload{
					Header:  hdr,
					PartIdx: m.Idx,
					Parts:   meta.parts,
					TxStart: meta.txStart,
					Txs:     txs,
					Proofs:  meta.proofs,
				}
			}
		}
	}
	_ = net.Send(simnet.Message{
		From: n.id, To: from, Kind: KindChunkResp,
		Size: resp.wireSize(), Payload: resp, Span: n.rxSpan,
	})
}

func (n *Node) onGetBlockChunks(net *simnet.Network, from simnet.NodeID, m getBlockChunksMsg) {
	resp := blockChunksMsg{Block: m.Block, ReqID: m.ReqID, Round: m.Round}
	for _, idx := range n.store.ChunksForBlock(m.Block) {
		id := storage.ChunkID{Block: m.Block, Index: idx}
		chk, err := n.store.Chunk(id)
		if err != nil {
			continue // corrupted chunk: withhold rather than poison
		}
		meta := n.meta[id]
		if meta.coded {
			resp.Parts = meta.parts
			resp.Chunks = append(resp.Chunks, retrievedChunk{Idx: idx, Coded: true, Raw: chk.Data})
			continue
		}
		txs, derr := chain.DecodeBody(chk.Data)
		if derr != nil {
			continue
		}
		resp.Parts = meta.parts
		resp.Chunks = append(resp.Chunks, retrievedChunk{Idx: idx, TxStart: meta.txStart, Txs: txs})
	}
	_ = net.Send(simnet.Message{
		From: n.id, To: from, Kind: KindBlockChunks,
		Size: resp.wireSize(), Payload: resp, Span: n.rxSpan,
	})
}
