package core

import (
	"sort"

	"icistrategy/internal/simnet"
)

// membershipEpoch is one immutable entry of a cluster's epoch-versioned
// membership map. It subsumes the old partsEpoch: besides the chunk count,
// each epoch snapshots the member set that governs blocks written at or
// above fromHeight, so placement, repair ownership and retrieval can all
// resolve a block against the membership it was written under instead of
// whatever the cluster mutated into since.
type membershipEpoch struct {
	seq        int             // position in clusterInfo.epochs; 0 is the genesis epoch
	fromHeight uint64          // first height governed by this epoch
	members    []simnet.NodeID // sorted member snapshot
	parts      int             // chunk count for blocks written under this epoch (== len(members))

	// placedSeq names the epoch whose rendezvous placement currently
	// locates the chunks of blocks written under this epoch. It starts at
	// seq and advances only when a completed migration (repair after a
	// removal, bootstrap after a join or rejoin, handoff after a graceful
	// leave) has actually moved the data. Reads therefore resolve chunk
	// sources against members that stored the chunks, never against a
	// membership the data has not caught up with yet.
	placedSeq int
}

// epochAt returns the membership epoch governing blocks at the given
// height: the last epoch with fromHeight <= height. Back-to-back epochs at
// the same height shadow each other, last one wins — the shadowed epoch
// never governed a block. Every cluster records an epoch at construction,
// so the walk always resolves.
func (c *clusterInfo) epochAt(height uint64) *membershipEpoch {
	e := &c.epochs[0]
	for i := range c.epochs {
		if height >= c.epochs[i].fromHeight {
			e = &c.epochs[i]
		}
	}
	return e
}

// placementAt returns the epoch whose membership currently locates the
// chunks of a block written at the given height (the write epoch until a
// migration advanced it).
func (c *clusterInfo) placementAt(height uint64) *membershipEpoch {
	return &c.epochs[c.epochAt(height).placedSeq]
}

// partsAt returns the chunk count for a block at the given height. The
// count is fixed at write time: membership changes after a block was
// distributed never change how many chunks it consists of.
func (c *clusterInfo) partsAt(height uint64) int {
	return c.epochAt(height).parts
}

// membersAt returns the member set that governed blocks at the given
// height (leader election, vote quorums, chunk count).
func (c *clusterInfo) membersAt(height uint64) []simnet.NodeID {
	return c.epochAt(height).members
}

// currentEpoch returns the newest membership epoch.
func (c *clusterInfo) currentEpoch() *membershipEpoch {
	return &c.epochs[len(c.epochs)-1]
}

// pushEpoch appends a new membership epoch governing blocks from
// fromHeight on and makes it current. members is snapshotted and sorted;
// the caller must not mutate it afterwards. Blocks written under the new
// epoch place under it from the start; older epochs keep their placement
// until a migration completes and calls advancePlacement.
func (c *clusterInfo) pushEpoch(fromHeight uint64, members []simnet.NodeID) *membershipEpoch {
	snap := append([]simnet.NodeID(nil), members...)
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	seq := len(c.epochs)
	c.epochs = append(c.epochs, membershipEpoch{
		seq:        seq,
		fromHeight: fromHeight,
		members:    snap,
		parts:      len(snap),
		placedSeq:  seq,
	})
	c.members = snap
	return &c.epochs[seq]
}

// advancePlacement records that a completed migration moved every block's
// chunks to the placement of epoch toSeq: all older epochs now resolve
// chunk locations against it. Epochs newer than toSeq (pushed while the
// migration ran) are left alone — their own migrations advance them.
func (c *clusterInfo) advancePlacement(toSeq int) {
	if toSeq < 0 || toSeq >= len(c.epochs) {
		return
	}
	for i := range c.epochs {
		if c.epochs[i].seq < toSeq && c.epochs[i].placedSeq < toSeq {
			c.epochs[i].placedSeq = toSeq
		}
	}
}

// fetchMembers returns the union of the cluster's current members and the
// placement members for a block at the given height, minus self — the peer
// set a broadcast read for that block should ask. Pre-migration blocks live
// on placement-epoch members (some possibly departed and unreachable, which
// the fetch timeout logic tolerates); post-migration copies live on current
// members. The union is deterministic: current members in order, then
// placement-only members in order.
func (c *clusterInfo) fetchMembers(height uint64, self simnet.NodeID) []simnet.NodeID {
	cur := c.currentEpoch().members
	place := c.placementAt(height).members
	out := make([]simnet.NodeID, 0, len(cur)+len(place))
	for _, m := range cur {
		if m != self {
			out = append(out, m)
		}
	}
	for _, m := range place {
		if m != self && !memberOf(out, m) {
			out = append(out, m)
		}
	}
	return out
}
