package core

import (
	"fmt"

	"icistrategy/internal/storage"
)

// PruneUnowned garbage-collects every chunk this node stores but no longer
// owns under the current membership and archival records. Membership
// changes hand chunks to new owners without deleting the old copies (the
// repair path wants those extra sources); pruning is the explicit second
// phase that reclaims the space once the cluster is healthy again. It
// returns the number of bytes freed.
func (n *Node) PruneUnowned() int64 {
	freed := n.store.GC(func(id storage.ChunkID) bool {
		hdr, err := n.store.Header(id.Block)
		if err != nil {
			return false // orphaned chunk without a header: collect
		}
		if info, archived := n.cluster.archivedInfo(id.Block); archived {
			meta := n.meta[id]
			if !meta.coded {
				return false // stale replicated chunk of an archived block
			}
			// Pruning evaluates PRESENT responsibility: churn transfer has
			// already re-homed archived chunks under the live roster, so
			// "do I own this now" is the question, not who wrote it.
			owners, oerr := Owners(info.seed, n.cluster.members, id.Index, 1) //icilint:allow epochres(prune asks present responsibility; churn transfer re-homes archived chunks under the live roster)
			if oerr != nil {
				return true // cannot evaluate: keep conservatively
			}
			return memberOf(owners, n.id)
		}
		parts := n.cluster.partsAt(hdr.Height)
		if id.Index >= parts {
			return false // impossible index under this epoch: collect
		}
		// Ownership is evaluated under the block's placement epoch, not
		// the current membership: until a migration completes and
		// advances placement, the pre-churn owners ARE where the data
		// lives, and collecting their copies would destroy the only
		// replicas. After the migration advances placement to the current
		// epoch, the stale copies stop being owned and get collected.
		place := n.cluster.placementAt(hdr.Height).members
		owns, oerr := IsOwner(id.Block.Uint64(), place, id.Index, n.replication, n.id)
		if oerr != nil {
			return true
		}
		return owns
	})
	// Sweep the sidecar metadata of collected chunks.
	for id, meta := range n.meta {
		if n.store.HasChunk(id) {
			continue
		}
		for _, p := range meta.proofs {
			n.proofBytes -= int64(p.EncodedSize())
		}
		delete(n.meta, id)
	}
	return freed
}

// PruneCluster prunes every live member of cluster c and returns the total
// bytes reclaimed. Run it after joins/removals have been repaired; the
// intra-cluster integrity invariant is untouched because only redundant
// copies are collected.
func (s *System) PruneCluster(c int) (int64, error) {
	if c < 0 || c >= len(s.clusters) {
		return 0, fmt.Errorf("%w: %d", ErrUnknownCluster, c)
	}
	var freed int64
	for _, m := range s.clusters[c].members {
		if s.net.IsDown(m) {
			continue
		}
		freed += s.nodes[m].PruneUnowned()
	}
	return freed, nil
}
