package core

import (
	"testing"

	"icistrategy/internal/simnet"
)

// moduloOwner is the naive placement alternative DESIGN.md argues against:
// chunk i of a block goes to members[(seed+i) mod c]. Cheap, balanced —
// and maximally disruptive under membership change.
func moduloOwner(seed uint64, members []simnet.NodeID, chunkIdx int) simnet.NodeID {
	return members[(seed+uint64(chunkIdx))%uint64(len(members))]
}

// TestPlacementDisruptionAblation quantifies the design choice: when one
// member leaves, rendezvous placement moves only that member's chunks
// (~1/c of all chunks), while modulo placement reshuffles almost
// everything — which would turn every departure into a cluster-wide
// re-replication storm.
func TestPlacementDisruptionAblation(t *testing.T) {
	const c, blocks = 20, 100
	members := ids(c)
	removed := members[c/2]
	rest := without(members, removed)

	var rendezvousMoved, moduloMoved, total int
	for b := 0; b < blocks; b++ {
		seed := uint64(b)*2654435761 + 7
		for idx := 0; idx < c; idx++ {
			total++
			before, err := Owners(seed, members, idx, 1)
			if err != nil {
				t.Fatal(err)
			}
			after, err := Owners(seed, rest, idx, 1)
			if err != nil {
				t.Fatal(err)
			}
			if before[0] != after[0] {
				rendezvousMoved++
			}
			if moduloOwner(seed, members, idx) != moduloOwner(seed, rest, idx) {
				moduloMoved++
			}
		}
	}
	rendezvousFrac := float64(rendezvousMoved) / float64(total)
	moduloFrac := float64(moduloMoved) / float64(total)
	// Rendezvous: expected 1/c = 5% of chunks move. Modulo: ~(c-1)/c move.
	if rendezvousFrac > 0.10 {
		t.Fatalf("rendezvous moved %.1f%% of chunks, expected ~5%%", 100*rendezvousFrac)
	}
	if moduloFrac < 0.5 {
		t.Fatalf("modulo moved only %.1f%% — ablation baseline broken", 100*moduloFrac)
	}
	if moduloFrac < 5*rendezvousFrac {
		t.Fatalf("ablation gap too small: rendezvous %.1f%% vs modulo %.1f%%",
			100*rendezvousFrac, 100*moduloFrac)
	}
	t.Logf("departure moves %.1f%% of chunks under rendezvous vs %.1f%% under modulo placement",
		100*rendezvousFrac, 100*moduloFrac)
}

// TestJoinDisruptionBounded mirrors the ablation for joins: adding a member
// must steal ~1/(c+1) of the chunks, never more.
func TestJoinDisruptionBounded(t *testing.T) {
	const c, blocks = 20, 100
	members := ids(c)
	joined := simnet.NodeID(9999)
	grown := append(append([]simnet.NodeID(nil), members...), joined)

	moved, total := 0, 0
	for b := 0; b < blocks; b++ {
		seed := uint64(b)*971 + 3
		for idx := 0; idx < c; idx++ {
			total++
			before, err := Owners(seed, members, idx, 1)
			if err != nil {
				t.Fatal(err)
			}
			after, err := Owners(seed, grown, idx, 1)
			if err != nil {
				t.Fatal(err)
			}
			if before[0] != after[0] {
				moved++
				// The only legal move target is the newcomer.
				if after[0] != joined {
					t.Fatalf("block %d chunk %d moved to %d, not the newcomer", b, idx, after[0])
				}
			}
		}
	}
	frac := float64(moved) / float64(total)
	if frac > 0.10 {
		t.Fatalf("join moved %.1f%% of chunks, expected ~%.1f%%", 100*frac, 100.0/float64(c+1))
	}
}

func BenchmarkRankedMembers64(b *testing.B) {
	members := ids(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RankedMembers(uint64(i), members, i%64); err != nil {
			b.Fatal(err)
		}
	}
}
