package core

import (
	"testing"

	"icistrategy/internal/chain"
	"icistrategy/internal/simnet"
)

func TestPruneAfterJoinRestoresExactFootprint(t *testing.T) {
	// A join hands some chunks to the newcomer; the previous owners keep
	// their copies until pruned. After pruning, the cluster's storage must
	// equal exactly what the analytic accountant predicts for the new
	// membership.
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 60})
	blocks := produceAndSettle(t, sys, gen, 4, 16)

	var joinErr error
	if err := sys.JoinCluster(0, func(_ simnet.NodeID, err error) { joinErr = err }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if joinErr != nil {
		t.Fatal(joinErr)
	}

	members, _ := sys.ClusterMembers(0)
	clusterChunkBytes := func() int64 {
		var sum int64
		for _, m := range members {
			n, _ := sys.Node(m)
			sum += n.Store().Stats().ChunkBytes
		}
		return sum
	}
	before := clusterChunkBytes()
	freed, err := sys.PruneCluster(0)
	if err != nil {
		t.Fatal(err)
	}
	after := clusterChunkBytes()
	if freed == 0 {
		t.Fatal("join left nothing to prune — ownership never moved")
	}
	if after != before-freed {
		t.Fatalf("accounting: before %d, freed %d, after %d", before, freed, after)
	}
	// Exact expectation: every chunk stored exactly r times across the
	// cluster under the current membership.
	var expected int64
	for _, b := range blocks {
		parts := sys.clusters[0].partsAt(b.Header.Height)
		counts, cerr := SplitCounts(len(b.Txs), parts)
		if cerr != nil {
			t.Fatal(cerr)
		}
		txStart := 0
		for idx := 0; idx < parts; idx++ {
			sub := 4
			for _, tx := range b.Txs[txStart : txStart+counts[idx]] {
				sub += tx.EncodedSize()
			}
			expected += 2 * int64(sub) // r = 2 owners
			txStart += counts[idx]
		}
	}
	if after != expected {
		t.Fatalf("post-prune cluster stores %d bytes, placement predicts %d", after, expected)
	}
	// Integrity untouched.
	for _, b := range blocks {
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatal(err)
		}
	}
	// Reads still work against the pruned cluster.
	reader, _ := sys.Node(members[0])
	var gotErr error
	reader.RetrieveBlock(sys.Network(), blocks[2].Hash(), func(_ *chain.Block, err error) {
		gotErr = err
	})
	sys.Network().RunUntilIdle()
	if gotErr != nil {
		t.Fatalf("read after prune: %v", gotErr)
	}
}

func TestPruneNoopWhenStable(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 1, Seed: 61})
	produceAndSettle(t, sys, gen, 3, 12)
	freed, err := sys.PruneCluster(0)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 0 {
		t.Fatalf("stable cluster pruned %d bytes", freed)
	}
}

func TestPruneKeepsArchivedShares(t *testing.T) {
	sys, _, target := archiveFixture(t, 62, 3)
	members, _ := sys.ClusterMembers(0)
	if _, err := sys.PruneCluster(0); err != nil {
		t.Fatal(err)
	}
	// The archived block must still reconstruct after pruning.
	reader, _ := sys.Node(members[0])
	var gotErr error
	reader.RetrieveBlockAuto(sys.Network(), target.Hash(), func(_ *chain.Block, err error) {
		gotErr = err
	})
	sys.Network().RunUntilIdle()
	if gotErr != nil {
		t.Fatalf("archived block unreadable after prune: %v", gotErr)
	}
}

func TestPruneClusterRange(t *testing.T) {
	sys, _ := buildSystem(t, Config{Nodes: 8, Clusters: 2, Replication: 1, Seed: 63})
	if _, err := sys.PruneCluster(5); err == nil {
		t.Fatal("bad cluster index accepted")
	}
}
