package core

import (
	"errors"
	"fmt"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/erasure"
	"icistrategy/internal/simnet"
	"icistrategy/internal/storage"
)

// KindArchiveShare carries Reed-Solomon shares (and the drop-old-chunks
// directive) to a cluster member during block archival.
const KindArchiveShare = "ici/archive-share"

// Archival errors.
var (
	ErrBadParity       = errors.New("core: parity must be in [1, members-1]")
	ErrAlreadyArchived = errors.New("core: block already archived")
	ErrNotArchived     = errors.New("core: block is not archived")
)

// archiveInfo is the cluster-wide record of one archived block: the body
// was RS(K, Total−K)-encoded into Total equal shares, share i owned by the
// top rendezvous member for (Seed, i).
type archiveInfo struct {
	k     int
	total int
	seed  uint64
}

// archiveSalt separates archival share placement from live chunk placement
// in rendezvous space.
const archiveSalt = 0xA6C417E5A17

// archiveShareMsg delivers a member's shares of an archived block. Shares
// may be empty: the message then only instructs the member to drop its
// transaction-group chunks for the block.
type archiveShareMsg struct {
	Block blockcrypto.Hash
	K     int
	Total int
	// Shares maps share index -> share bytes for this member.
	Shares map[int][]byte
}

func (m archiveShareMsg) wireSize() int {
	n := reqOverhead
	for _, s := range m.Shares {
		n += 8 + len(s)
	}
	return n
}

// Archived reports whether the cluster has converted the block to coded
// storage.
func (c *clusterInfo) archivedInfo(block blockcrypto.Hash) (archiveInfo, bool) {
	info, ok := c.archived[block]
	return info, ok
}

// ArchiveBlock converts one committed block in cluster c from replicated
// transaction-group chunks to Reed-Solomon coded storage: the body is
// encoded into |members| equal shares (|members|−parity data shares), each
// placed on one member; the old chunks are dropped. Any k live members can
// then reconstruct the block — r=1-class storage with near-r=3
// availability (experiment E7). cb fires once with the outcome; drive the
// network afterwards.
func (s *System) ArchiveBlock(c int, block blockcrypto.Hash, parity int, cb func(error)) error {
	if c < 0 || c >= len(s.clusters) {
		return fmt.Errorf("%w: %d", ErrUnknownCluster, c)
	}
	ci := s.clusters[c]
	if ci.archived == nil {
		ci.archived = make(map[blockcrypto.Hash]archiveInfo)
	}
	if _, ok := ci.archived[block]; ok {
		return fmt.Errorf("%w: %s", ErrAlreadyArchived, block.Short())
	}
	total := len(ci.members)
	if parity < 1 || parity >= total {
		return fmt.Errorf("%w: parity=%d, members=%d", ErrBadParity, parity, total)
	}
	// The archiver is any live member; use the block's rendezvous leader
	// order so repeated archival work spreads across the cluster.
	var archiver *Node
	for _, m := range ci.members {
		if !s.net.IsDown(m) {
			archiver = s.nodes[m]
			break
		}
	}
	if archiver == nil {
		return fmt.Errorf("core: cluster %d has no live archiver", c)
	}
	info := archiveInfo{k: total - parity, total: total, seed: block.Uint64() ^ archiveSalt}
	archiver.archive(s.net, block, info, func(err error) {
		if err == nil {
			ci.archived[block] = info
		}
		cb(err)
	})
	return nil
}

// archive retrieves the full block, encodes it, and distributes shares.
func (n *Node) archive(net *simnet.Network, block blockcrypto.Hash, info archiveInfo, cb func(error)) {
	n.pc.archives.Inc()
	span := n.tr.Start(0, "archive", "archive", int64(n.id))
	done := func(err error) {
		span.SetErr(err)
		span.End()
		cb(err)
	}
	n.retrieveBlock(net, block, span.Context(), func(b *chain.Block, err error) {
		if err != nil {
			done(fmt.Errorf("archive %s: %w", block.Short(), err))
			return
		}
		code, err := erasure.Cached(info.k, info.total-info.k)
		if err != nil {
			done(err)
			return
		}
		shares, err := code.Split(b.EncodeBody())
		if err != nil {
			done(err)
			return
		}
		span.AddBytes(int64(b.BodySize()))
		// Group shares by owner so each member gets one message.
		perMember := make(map[simnet.NodeID]map[int][]byte, len(n.cluster.members))
		for _, m := range n.cluster.members {
			perMember[m] = make(map[int][]byte)
		}
		for i, share := range shares {
			owners, oerr := Owners(info.seed, n.cluster.members, i, 1)
			if oerr != nil {
				done(oerr)
				return
			}
			perMember[owners[0]][i] = share
		}
		for _, m := range n.cluster.members {
			msg := archiveShareMsg{Block: block, K: info.k, Total: info.total, Shares: perMember[m]}
			if m == n.id {
				prev := n.rxSpan
				n.rxSpan = span.Context()
				n.onArchiveShare(net, msg)
				n.rxSpan = prev
				continue
			}
			_ = net.Send(simnet.Message{
				From: n.id, To: m, Kind: KindArchiveShare,
				Size: msg.wireSize(), Payload: msg, Span: span.Context(),
			})
		}
		done(nil)
	})
}

// onArchiveShare stores this member's coded shares and drops its old
// transaction-group chunks for the block.
func (n *Node) onArchiveShare(_ *simnet.Network, m archiveShareMsg) {
	if !n.store.HasHeader(m.Block) {
		return // never finalized here; nothing to archive
	}
	n.pc.archiveShares.Add(int64(len(m.Shares)))
	n.tr.Point(n.rxSpan, "archive", "store-shares", int64(n.id), int64(m.wireSize()-reqOverhead), "")
	// Drop replicated chunks first so share indices cannot collide with
	// live chunk IDs.
	for _, idx := range n.store.ChunksForBlock(m.Block) {
		id := storage.ChunkID{Block: m.Block, Index: idx}
		if meta, ok := n.meta[id]; ok && meta.coded {
			continue
		}
		if err := n.store.DeleteChunk(id); err != nil {
			continue
		}
		if meta, ok := n.meta[id]; ok {
			for _, p := range meta.proofs {
				n.proofBytes -= int64(p.EncodedSize())
			}
			delete(n.meta, id)
		}
	}
	for i, share := range m.Shares {
		id := storage.ChunkID{Block: m.Block, Index: i}
		if err := n.store.PutChunk(storage.NewChunk(id, share)); err != nil {
			continue
		}
		n.meta[id] = chunkMeta{parts: m.Total, coded: true, codedK: m.K}
	}
}

// RetrieveArchivedBlock reassembles a coded block: gather shares from the
// cluster, reconstruct with Reed-Solomon once k distinct shares arrived,
// decode the body, and verify the Merkle root. info comes from the shared
// cluster record; System.RetrieveBlockAuto routes automatically.
func (n *Node) RetrieveArchivedBlock(net *simnet.Network, block blockcrypto.Hash, cb func(*chain.Block, error)) {
	info, ok := n.cluster.archivedInfo(block)
	if !ok {
		cb(nil, fmt.Errorf("%w: %s", ErrNotArchived, block.Short()))
		return
	}
	if !n.store.HasHeader(block) {
		cb(nil, fmt.Errorf("%w: %s", ErrUnknownBlock, block.Short()))
		return
	}
	n.nextReq++
	req := n.nextReq
	st := &fetchState{
		block:   block,
		parts:   info.total,
		codedK:  info.k,
		chunks:  make(map[int]retrievedChunk),
		timeout: fetchTimeout,
		onBlock: cb,
		span:    n.tr.Start(n.rxSpan, "archive", "retrieve-archived", int64(n.id)),
	}
	n.fetches[req] = st
	n.pc.codedRetrieves.Inc()
	for _, idx := range n.store.ChunksForBlock(block) {
		id := storage.ChunkID{Block: block, Index: idx}
		chk, err := n.store.Chunk(id)
		if err != nil {
			n.metrics.LocalChunkErrors.Inc()
			continue
		}
		if !n.meta[id].coded {
			continue
		}
		st.chunks[idx] = retrievedChunk{Idx: idx, Raw: chk.Data, Coded: true}
	}
	if n.tryFinishCodedRetrieve(req, st) {
		return
	}
	// Shares ride the same request/response pair as live chunks, so the
	// retry-aware broadcast round of RetrieveBlock serves both modes.
	n.broadcastFetch(net, req, st)
}

// tryFinishCodedRetrieve reconstructs once k distinct shares are present.
// The codec comes from the shared registry: this runs on every share
// arrival, and re-deriving the systematic matrix per response used to
// dominate the coded read path.
func (n *Node) tryFinishCodedRetrieve(req uint64, st *fetchState) bool {
	if st.onBlock == nil || len(st.chunks) < st.codedK {
		return false
	}
	code, err := erasure.Cached(st.codedK, st.parts-st.codedK)
	if err != nil {
		n.failFetch(req, st, err)
		return true
	}
	shards := make([][]byte, st.parts)
	for i, c := range st.chunks {
		if i >= 0 && i < st.parts && c.Coded {
			shards[i] = c.Raw
		}
	}
	if err := code.Reconstruct(shards); err != nil {
		return false // wait for more shares
	}
	body, err := code.Join(shards)
	if err != nil {
		n.failFetch(req, st, err)
		return true
	}
	txs, err := chain.DecodeBody(body)
	if err != nil {
		n.failFetch(req, st, fmt.Errorf("%w: %v", ErrRetrieveFailed, err))
		return true
	}
	hdr, err := n.store.Header(st.block)
	if err != nil {
		n.failFetch(req, st, err)
		return true
	}
	b := &chain.Block{Header: hdr, Txs: txs}
	if err := b.VerifyShape(); err != nil {
		n.failFetch(req, st, fmt.Errorf("%w: %v", ErrRetrieveFailed, err))
		return true
	}
	st.done = true
	delete(n.fetches, req)
	n.finishFetchSpan(st, int64(b.BodySize()), nil)
	st.onBlock(b, nil)
	return true
}

// RetrieveBlockAuto reads a block through whichever storage mode the
// cluster currently uses for it.
func (n *Node) RetrieveBlockAuto(net *simnet.Network, block blockcrypto.Hash, cb func(*chain.Block, error)) {
	if _, ok := n.cluster.archivedInfo(block); ok {
		n.RetrieveArchivedBlock(net, block, cb)
		return
	}
	n.RetrieveBlock(net, block, cb)
}
