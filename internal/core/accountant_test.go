package core

import (
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/cluster"
	"icistrategy/internal/simnet"
	"icistrategy/internal/strategy"
)

func testAssignment(t testing.TB, n, k int) *cluster.Assignment {
	t.Helper()
	coords := simnet.RandomCoords(n, 60, blockcrypto.NewRNG(11))
	asg, err := cluster.Partition(cluster.BalancedKMeans, coords, k, blockcrypto.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	return asg
}

func TestNewAccountantValidation(t *testing.T) {
	if _, err := NewAccountant(nil, 1); err == nil {
		t.Fatal("nil assignment accepted")
	}
	asg := testAssignment(t, 20, 4) // clusters of 5
	for _, r := range []int{0, 6} {
		if _, err := NewAccountant(asg, r); err == nil {
			t.Fatalf("replication %d accepted for clusters of 5", r)
		}
	}
}

func TestAccountantClusterIntegrityInvariant(t *testing.T) {
	// Sum of per-node body bytes over one cluster must equal r × total
	// body data: the cluster holds exactly r collective copies.
	asg := testAssignment(t, 60, 5) // clusters of 12
	for _, r := range []int{1, 2, 3} {
		acc, err := NewAccountant(asg, r)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for b := 0; b < 30; b++ {
			size := int64(10_000 + b*137)
			acc.AddBlock(size)
			total += size
		}
		if acc.TotalBodyBytes() != total {
			t.Fatalf("TotalBodyBytes() = %d, want %d", acc.TotalBodyBytes(), total)
		}
		headerCost := int64(acc.NumBlocks()) * int64(chain.HeaderSize)
		for c := 0; c < asg.NumClusters(); c++ {
			var sum int64
			for _, m := range asg.Members[c] {
				nb, err := acc.NodeBytes(m)
				if err != nil {
					t.Fatal(err)
				}
				sum += nb - headerCost
			}
			if sum != int64(r)*total {
				t.Fatalf("r=%d cluster %d stores %d body bytes, want %d", r, c, sum, int64(r)*total)
			}
		}
	}
}

func TestAccountantHeadlineRatio(t *testing.T) {
	// The paper's configuration rounded to powers of two: RapidChain with
	// committees of 256 over n=4096 (k=16 shards) vs ICI clusters of 64
	// with r=1 — ICI per-node storage must be 25% of RapidChain's
	// (exactly D/64 vs D/16 on bodies).
	const n = 4096
	asgICI := testAssignment(t, n, n/64)
	acc, err := NewAccountant(asgICI, 1)
	if err != nil {
		t.Fatal(err)
	}
	const blockSize = 1 << 20
	for b := 0; b < 64; b++ {
		acc.AddBlock(blockSize)
	}
	meanICI, err := strategy.MeanNodeBytes(acc)
	if err != nil {
		t.Fatal(err)
	}
	headerCost := float64(acc.NumBlocks() * chain.HeaderSize)
	bodyICI := meanICI - headerCost
	totalBody := float64(64 * blockSize)
	// Mean per-node body bytes = D/64 exactly (each cluster of 64 stores D).
	if ratio := bodyICI / (totalBody / 64); ratio < 0.999 || ratio > 1.001 {
		t.Fatalf("ICI mean body bytes off: got %.0f want %.0f", bodyICI, totalBody/64)
	}
	// RapidChain per-node = D/16; ratio = (D/64)/(D/16) = 0.25.
	rapidPerNode := totalBody / 16
	if ratio := bodyICI / rapidPerNode; ratio < 0.24 || ratio > 0.26 {
		t.Fatalf("headline ratio = %.4f, want ~0.25", ratio)
	}
}

func TestAccountantBootstrapEqualsFootprint(t *testing.T) {
	asg := testAssignment(t, 30, 3)
	acc, err := NewAccountant(asg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 10; b++ {
		acc.AddBlock(5000)
	}
	for i := 0; i < acc.NumNodes(); i++ {
		nb, _ := acc.NodeBytes(i)
		bb, _ := acc.BootstrapBytes(i)
		if nb != bb {
			t.Fatalf("node %d: NodeBytes %d != BootstrapBytes %d", i, nb, bb)
		}
	}
}

func TestAccountantNodeBytesRange(t *testing.T) {
	asg := testAssignment(t, 10, 2)
	acc, _ := NewAccountant(asg, 1)
	if _, err := acc.NodeBytes(-1); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := acc.NodeBytes(10); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestAccountantTxChunkingMatchesByteChunking(t *testing.T) {
	// With uniform tx sizes divisible across every cluster, AddBlockTxs and
	// AddBlockSeeded(bodySize) must agree except for the 4-byte chunk count
	// prefixes AddBlockTxs accounts explicitly.
	asg := testAssignment(t, 12, 2) // clusters of 6
	a1, err := NewAccountant(asg, 1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAccountant(asg, 1)
	if err != nil {
		t.Fatal(err)
	}
	const txSize, txCount = 250, 60 // divisible by 6
	txSizes := make([]int, txCount)
	for i := range txSizes {
		txSizes[i] = txSize
	}
	a1.AddBlockTxs(99, txSizes)
	// Equivalent byte body: per-cluster chunk gets txCount/6*txSize bytes,
	// +4 prefix accounted manually below.
	a2.AddBlockSeeded(99, txSize*txCount)
	for i := 0; i < 12; i++ {
		b1, _ := a1.NodeBytes(i)
		b2, _ := a2.NodeBytes(i)
		diff := b1 - b2
		// Every chunk a node owns contributes exactly the 4-byte prefix.
		if diff < 0 || diff%4 != 0 {
			t.Fatalf("node %d: tx-exact %d vs byte-model %d", i, b1, b2)
		}
	}
}

func TestAccountantName(t *testing.T) {
	asg := testAssignment(t, 6, 2)
	acc, _ := NewAccountant(asg, 1)
	if acc.Name() != "ici" {
		t.Fatalf("Name() = %q", acc.Name())
	}
	if acc.Replication() != 1 {
		t.Fatalf("Replication() = %d", acc.Replication())
	}
}

func BenchmarkAccountantAddBlock4000x64(b *testing.B) {
	asg := testAssignment(b, 4000, 62)
	acc, err := NewAccountant(asg, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.AddBlock(1 << 20)
	}
}
