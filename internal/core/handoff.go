package core

import (
	"fmt"

	"icistrategy/internal/chain"
	"icistrategy/internal/simnet"
	"icistrategy/internal/storage"
)

// ErrHandoffFailed reports a graceful departure whose chunk handoff could
// not be fully acknowledged (a gaining member crashed or rejected a chunk).
var ErrHandoffFailed = fmt.Errorf("core: chunk handoff incomplete")

// handoffTimeout bounds how long (virtual time) the leaver waits for one
// gaining member to acknowledge a pushed chunk.
const handoffTimeout = fetchTimeout

// handoffState tracks one graceful departure in progress on the leaver.
type handoffState struct {
	pending map[uint64]bool // ReqIDs awaiting acknowledgement
	sent    bool            // the scan finished fanning out pushes
	moved   int
	failed  int
	done    bool
	cb      func(moved int, err error)
}

// HandoffChunks pushes every chunk whose ownership this node's departure
// shifts to the gaining members of the current (post-departure) epoch. The
// caller (System.LeaveCluster) must already have pushed the epoch that
// excludes this node. The movement is the placement delta between the
// block's placement epoch and the departure epoch — by the rendezvous
// property exactly the chunks this node owned, never a reshuffle of
// anybody else's. cb fires once with the number of chunks moved; any
// unacknowledged push fails the whole handoff.
func (n *Node) HandoffChunks(net *simnet.Network, cb func(moved int, err error)) {
	if n.handoff != nil {
		cb(0, fmt.Errorf("core: handoff already in progress on node %d", n.id))
		return
	}
	n.pc.handoffs.Inc()
	hs := &handoffState{pending: make(map[uint64]bool), cb: cb}
	n.handoff = hs
	target := n.cluster.currentEpoch().members
	for _, h := range n.store.Headers() {
		block := h.Hash()
		if _, archived := n.cluster.archivedInfo(block); archived {
			continue // coded shares are re-established by archival repair
		}
		place := n.cluster.placementAt(h.Height).members
		seed := block.Uint64()
		for _, idx := range n.store.ChunksForBlock(block) {
			id := storage.ChunkID{Block: block, Index: idx}
			if n.meta[id].coded {
				continue
			}
			oldOwners, err := Owners(seed, place, idx, n.replication)
			if err != nil || !memberOf(oldOwners, n.id) {
				continue // a stale extra copy; nobody needs it from us
			}
			newOwners, err := Owners(seed, target, idx, n.replication)
			if err != nil {
				continue
			}
			for _, gain := range newOwners {
				if memberOf(oldOwners, gain) {
					continue // already an owner; already holds or repairs it
				}
				n.pushHandoffChunk(net, hs, id, gain)
			}
		}
	}
	hs.sent = true
	n.maybeFinishHandoff(hs)
}

// pushHandoffChunk sends one owned chunk to one gaining member and arms
// its acknowledgement timeout.
func (n *Node) pushHandoffChunk(net *simnet.Network, hs *handoffState, id storage.ChunkID, to simnet.NodeID) {
	chk, err := n.store.Chunk(id)
	if err != nil {
		hs.failed++
		return
	}
	txs, derr := chain.DecodeBody(chk.Data)
	if derr != nil {
		hs.failed++
		return
	}
	hdr, herr := n.store.Header(id.Block)
	if herr != nil {
		hs.failed++
		return
	}
	meta := n.meta[id]
	payload := chunkPayload{
		Header:  hdr,
		PartIdx: id.Index,
		Parts:   meta.parts,
		TxStart: meta.txStart,
		Txs:     txs,
		Proofs:  meta.proofs,
	}
	n.nextReq++
	req := n.nextReq
	hs.pending[req] = true
	n.pc.handoffChunks.Inc()
	n.pc.handoffBytes.Add(int64(payload.dataBytes()))
	msg := handoffMsg{Chunk: payload, ReqID: req}
	_ = net.Send(simnet.Message{
		From: n.id, To: to, Kind: KindHandoff,
		Size: msg.wireSize(), Payload: msg, Span: n.rxSpan,
	})
	net.After(handoffTimeout, func() {
		cur := n.handoff
		if cur != hs || hs.done || !hs.pending[req] {
			return
		}
		delete(hs.pending, req)
		hs.failed++
		n.maybeFinishHandoff(hs)
	})
}

// onHandoff runs on a gaining member: verify the pushed chunk against the
// locally committed header exactly like a fetched chunk, persist it, and
// acknowledge.
func (n *Node) onHandoff(net *simnet.Network, from simnet.NodeID, m handoffMsg) {
	block := m.Chunk.Header.Hash()
	ok := true
	hdr, err := n.store.Header(block)
	if err != nil || hdr.MerkleRoot != m.Chunk.Header.MerkleRoot {
		ok = false
	} else if verifyChunk(m.Chunk) != nil {
		ok = false
	}
	if ok {
		n.persistChunk(block, m.Chunk)
	}
	ack := handoffAckMsg{ReqID: m.ReqID, OK: ok}
	_ = net.Send(simnet.Message{
		From: n.id, To: from, Kind: KindHandoffAck,
		Size: reqOverhead, Payload: ack, Span: n.rxSpan,
	})
}

// onHandoffAck settles one pushed chunk on the leaver.
func (n *Node) onHandoffAck(m handoffAckMsg) {
	hs := n.handoff
	if hs == nil || hs.done || !hs.pending[m.ReqID] {
		return
	}
	delete(hs.pending, m.ReqID)
	if m.OK {
		hs.moved++
	} else {
		hs.failed++
	}
	n.maybeFinishHandoff(hs)
}

// maybeFinishHandoff fires the departure callback once the scan finished
// and every push was acknowledged or timed out.
func (n *Node) maybeFinishHandoff(hs *handoffState) {
	if hs.done || !hs.sent || len(hs.pending) > 0 {
		return
	}
	hs.done = true
	n.handoff = nil
	if hs.failed > 0 {
		n.pc.handoffFailed.Inc()
		hs.cb(hs.moved, fmt.Errorf("%w: %d chunks unacknowledged", ErrHandoffFailed, hs.failed))
		return
	}
	hs.cb(hs.moved, nil)
}
