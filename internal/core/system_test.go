package core

import (
	"errors"
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/simnet"
	"icistrategy/internal/workload"
)

// buildSystem creates a small system plus a matching workload generator.
func buildSystem(t testing.TB, cfg Config) (*System, *workload.Generator) {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{Accounts: 50, PayloadBytes: 40, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

// produceAndSettle produces count blocks, running the network to quiescence
// after each, and returns them.
func produceAndSettle(t testing.TB, sys *System, gen *workload.Generator, count, txPerBlock int) []*chain.Block {
	t.Helper()
	blocks := make([]*chain.Block, 0, count)
	for i := 0; i < count; i++ {
		b, err := sys.ProduceBlock(gen.NextTxs(txPerBlock))
		if err != nil {
			t.Fatal(err)
		}
		sys.Network().RunUntilIdle()
		blocks = append(blocks, b)
	}
	return blocks
}

func TestNewSystemValidation(t *testing.T) {
	cases := []Config{
		{Nodes: 0, Clusters: 1},
		{Nodes: 10, Clusters: 0},
		{Nodes: 10, Clusters: 11},
		{Nodes: 12, Clusters: 4, Replication: 10}, // r > cluster size
	}
	for _, cfg := range cases {
		if _, err := NewSystem(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestBlocksCommitEverywhere(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 24, Clusters: 3, Replication: 1, Seed: 1})
	blocks := produceAndSettle(t, sys, gen, 5, 16)
	for _, b := range blocks {
		if !sys.AllCommitted(b.Hash()) {
			t.Fatalf("block %d not committed everywhere (commit count %d/%d)",
				b.Header.Height, sys.CommitCount(b.Hash()), 24)
		}
	}
	if sys.Height() != 5 {
		t.Fatalf("Height() = %d", sys.Height())
	}
	tip, err := sys.Tip()
	if err != nil {
		t.Fatal(err)
	}
	if tip.Height != 4 {
		t.Fatalf("tip height = %d", tip.Height)
	}
}

func TestIntraClusterIntegrityInvariant(t *testing.T) {
	// THE paper invariant: every cluster holds every block collectively.
	for _, r := range []int{1, 2} {
		sys, gen := buildSystem(t, Config{Nodes: 30, Clusters: 3, Replication: r, Seed: 2})
		blocks := produceAndSettle(t, sys, gen, 4, 20)
		for _, b := range blocks {
			for c := 0; c < sys.NumClusters(); c++ {
				if err := sys.ClusterHoldsBlock(c, b.Hash()); err != nil {
					t.Fatalf("r=%d: %v", r, err)
				}
			}
		}
	}
}

func TestNoSingleNodeHoldsEverything(t *testing.T) {
	// The flip side of intra-cluster integrity: individual nodes hold only
	// a fraction of the body data.
	sys, gen := buildSystem(t, Config{Nodes: 30, Clusters: 3, Replication: 1, Seed: 3})
	blocks := produceAndSettle(t, sys, gen, 6, 20)
	var totalBody int64
	for _, b := range blocks {
		totalBody += int64(b.BodySize())
	}
	for id := simnet.NodeID(0); id < 30; id++ {
		st, err := sys.NodeStorage(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.ChunkBytes >= totalBody/2 {
			t.Fatalf("node %d stores %d of %d body bytes: not collaborative", id, st.ChunkBytes, totalBody)
		}
		if st.HeaderCount != int64(len(blocks)) {
			t.Fatalf("node %d has %d headers, want %d", id, st.HeaderCount, len(blocks))
		}
	}
}

func TestProtocolMatchesAccountant(t *testing.T) {
	// The protocol's actual stored bytes must equal the analytic model fed
	// with the same seeds and transaction sizes.
	sys, gen := buildSystem(t, Config{Nodes: 20, Clusters: 2, Replication: 2, Seed: 4})
	acc, err := sys.NewAccountant()
	if err != nil {
		t.Fatal(err)
	}
	blocks := produceAndSettle(t, sys, gen, 5, 30)
	for _, b := range blocks {
		txSizes := make([]int, len(b.Txs))
		for i, tx := range b.Txs {
			txSizes[i] = tx.EncodedSize()
		}
		acc.AddBlockTxs(b.Hash().Uint64(), txSizes)
	}
	for i := 0; i < 20; i++ {
		want, err := acc.NodeBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.NodeStorage(simnet.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		if got := st.TotalBytes(); got != want {
			t.Fatalf("node %d: protocol stores %d bytes, accountant says %d", i, got, want)
		}
	}
}

func TestRetrieveBlock(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 18, Clusters: 2, Replication: 1, Seed: 5})
	blocks := produceAndSettle(t, sys, gen, 3, 24)
	target := blocks[1]
	node, err := sys.Node(3)
	if err != nil {
		t.Fatal(err)
	}
	var got *chain.Block
	var gotErr error
	node.RetrieveBlock(sys.Network(), target.Hash(), func(b *chain.Block, err error) {
		got, gotErr = b, err
	})
	sys.Network().RunUntilIdle()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got == nil || got.Hash() != target.Hash() {
		t.Fatal("retrieved block mismatch")
	}
	if len(got.Txs) != len(target.Txs) {
		t.Fatalf("retrieved %d txs, want %d", len(got.Txs), len(target.Txs))
	}
	for i := range got.Txs {
		if got.Txs[i].ID() != target.Txs[i].ID() {
			t.Fatalf("tx %d differs after reassembly", i)
		}
	}
}

func TestRetrieveUnknownBlock(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 1, Seed: 6})
	produceAndSettle(t, sys, gen, 1, 8)
	node, _ := sys.Node(0)
	var gotErr error
	node.RetrieveBlock(sys.Network(), blockcrypto.Sum256([]byte("phantom")), func(_ *chain.Block, err error) {
		gotErr = err
	})
	sys.Network().RunUntilIdle()
	if !errors.Is(gotErr, ErrUnknownBlock) {
		t.Fatalf("got %v, want ErrUnknownBlock", gotErr)
	}
}

func TestRetrieveDegradedByReplication(t *testing.T) {
	// With r=2, losing one node must not break reads; the dead member's
	// chunks have a live replica.
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 7})
	blocks := produceAndSettle(t, sys, gen, 3, 16)
	members, err := sys.ClusterMembers(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FailNode(members[1]); err != nil {
		t.Fatal(err)
	}
	reader, _ := sys.Node(members[0])
	var got *chain.Block
	var gotErr error
	reader.RetrieveBlock(sys.Network(), blocks[2].Hash(), func(b *chain.Block, err error) {
		got, gotErr = b, err
	})
	sys.Network().RunUntilIdle()
	if gotErr != nil {
		t.Fatalf("read with one failed node (r=2): %v", gotErr)
	}
	if got.Hash() != blocks[2].Hash() {
		t.Fatal("wrong block retrieved")
	}
}

func TestByzantineMinorityStillCommits(t *testing.T) {
	// Rejecting members get their chunks reassigned immediately; the
	// cluster commits as long as honest members remain.
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 1, Seed: 8})
	members, _ := sys.ClusterMembers(0)
	// f = (8-1)/3 = 2 rejectors tolerated.
	for _, m := range members[:2] {
		n, _ := sys.Node(m)
		n.SetBehavior(Behavior{VoteReject: true})
	}
	blocks := produceAndSettle(t, sys, gen, 2, 16)
	for _, b := range blocks {
		ok, err := sys.ClusterCommitted(0, b.Hash())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("block %d: cluster with 2/8 rejectors failed to commit", b.Header.Height)
		}
		if err := sys.ClusterHoldsBlock(0, b.Hash()); err != nil {
			t.Fatalf("integrity after reassignment: %v", err)
		}
	}
}

func TestLeaderCrashBlocksOnlyItsCluster(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 1, Seed: 9})
	leader, err := consensusLeaderForTest(sys, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FailNode(leader); err != nil {
		t.Fatal(err)
	}
	blocks := produceAndSettle(t, sys, gen, 1, 16)
	ok, err := sys.ClusterCommitted(0, blocks[0].Hash())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("cluster with a crashed leader committed (no view change exists)")
	}
	// The other cluster is unaffected.
	ok, err = sys.ClusterCommitted(1, blocks[0].Hash())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("healthy cluster failed to commit")
	}
}

func TestTamperingLeaderRejected(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 1, Seed: 10})
	// Make every member of cluster 0 a tamperer when leading: whichever
	// leads will corrupt its chunks and members must vote reject.
	members, _ := sys.ClusterMembers(0)
	for _, m := range members {
		n, _ := sys.Node(m)
		n.SetBehavior(Behavior{TamperChunks: true})
	}
	blocks := produceAndSettle(t, sys, gen, 1, 16)
	ok, err := sys.ClusterCommitted(0, blocks[0].Hash())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("cluster committed tampered chunks")
	}
}

func TestCrashedMembersDoNotBlockCommit(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 20, Clusters: 2, Replication: 2, Seed: 11})
	members, _ := sys.ClusterMembers(0)
	// f = (10-1)/3 = 3; crash 2 non-leader members.
	crashed := 0
	for _, m := range members {
		if crashed == 2 {
			break
		}
		if leader, _ := consensusLeaderForTest(sys, 0, 0); m == leader {
			continue
		}
		if err := sys.FailNode(m); err != nil {
			t.Fatal(err)
		}
		crashed++
	}
	blocks := produceAndSettle(t, sys, gen, 1, 16)
	ok, err := sys.ClusterCommitted(0, blocks[0].Hash())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("cluster with 2/10 crashed members failed to commit")
	}
}

// consensusLeaderForTest exposes the leader for a height.
func consensusLeaderForTest(sys *System, clusterIdx int, height uint64) (simnet.NodeID, error) {
	return sys.clusters[clusterIdx].leaderAt(height)
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64) {
		sys, gen := buildSystem(t, Config{Nodes: 20, Clusters: 2, Replication: 1, Seed: 12})
		produceAndSettle(t, sys, gen, 3, 16)
		tt := sys.Network().TotalTraffic()
		return tt.BytesSent, tt.MsgsSent
	}
	b1, m1 := run()
	b2, m2 := run()
	if b1 != b2 || m1 != m2 {
		t.Fatalf("identical seeds diverged: (%d,%d) vs (%d,%d)", b1, m1, b2, m2)
	}
}

func TestVerifyChunkRejectsBadProofIndex(t *testing.T) {
	// A chunk whose proofs do not line up with its claimed position must
	// fail verification even when every proof is individually valid.
	gen, err := workload.NewGenerator(workload.Config{Accounts: 10, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.NextTxs(8)
	b, err := chain.NewBlock(0, blockcrypto.ZeroHash, txs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := chain.TxMerkleTree(txs)
	p0, _ := tree.Prove(0)
	p1, _ := tree.Prove(1)
	good := chunkPayload{
		Header: b.Header, PartIdx: 0, Parts: 4, TxStart: 0,
		Txs: txs[:2], Proofs: []chain.Proof{p0, p1},
	}
	if err := verifyChunk(good); err != nil {
		t.Fatalf("good chunk rejected: %v", err)
	}
	shifted := good
	shifted.TxStart = 2
	if err := verifyChunk(shifted); err == nil {
		t.Fatal("position-shifted chunk accepted")
	}
	mismatched := good
	mismatched.Proofs = []chain.Proof{p0}
	if err := verifyChunk(mismatched); err == nil {
		t.Fatal("proof-count mismatch accepted")
	}
}
