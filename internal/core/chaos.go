package core

import (
	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/consensus"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
)

// NodeMetrics counts the fault-recovery work a node performs: retries,
// timeouts, duplicate-delivery suppression, leader re-sends, and local
// store errors. All counters start at zero and only ever increase; in a
// failure-free run every one of them stays zero.
type NodeMetrics struct {
	// RetrieveRetries counts re-broadcast rounds of block retrievals after
	// a round timed out with chunks still missing.
	RetrieveRetries metrics.Counter
	// TxQueryRetries counts re-broadcast rounds of inclusion queries.
	TxQueryRetries metrics.Counter
	// FetchTimeouts counts single-chunk fetch attempts abandoned on
	// timeout (the fetch then moves to the next rendezvous replica).
	FetchTimeouts metrics.Counter
	// FetchRetries counts extra full passes over a chunk's source list.
	FetchRetries metrics.Counter
	// BootstrapRetries counts re-sent header requests during bootstrap.
	BootstrapRetries metrics.Counter
	// DuplicateChunks counts chunk deliveries for data already held
	// (duplicate delivery or leader re-send after a lost vote).
	DuplicateChunks metrics.Counter
	// DuplicateVotes counts votes the leader dropped as already recorded.
	DuplicateVotes metrics.Counter
	// DuplicateResponses counts fetch/query responses from members that
	// already answered the current round.
	DuplicateResponses metrics.Counter
	// ChunkResends counts leader re-sends of a chunk to an assignee that
	// stayed silent past a coverage check.
	ChunkResends metrics.Counter
	// CommitProbes counts commit-status pulls sent for blocks whose commit
	// announcement never arrived.
	CommitProbes metrics.Counter
	// LocalChunkErrors counts local chunk-store read failures during
	// retrieval seeding; each one falls through to a remote fetch.
	LocalChunkErrors metrics.Counter
	// StaleResponses counts fetch responses tagged with a superseded
	// round/attempt. Their chunk data still merges (verified data speaks
	// for itself) but they are barred from round bookkeeping, so a slow
	// answer to round 1 cannot complete round 2's "everyone answered"
	// accounting and fire a premature definitive failure.
	StaleResponses metrics.Counter
}

// MetricsSnapshot is a plain-int64 copy of NodeMetrics, summable across
// nodes.
type MetricsSnapshot struct {
	RetrieveRetries    int64
	TxQueryRetries     int64
	FetchTimeouts      int64
	FetchRetries       int64
	BootstrapRetries   int64
	DuplicateChunks    int64
	DuplicateVotes     int64
	DuplicateResponses int64
	ChunkResends       int64
	CommitProbes       int64
	LocalChunkErrors   int64
	StaleResponses     int64
}

// Snapshot copies the current counter values.
func (m *NodeMetrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		RetrieveRetries:    m.RetrieveRetries.Value(),
		TxQueryRetries:     m.TxQueryRetries.Value(),
		FetchTimeouts:      m.FetchTimeouts.Value(),
		FetchRetries:       m.FetchRetries.Value(),
		BootstrapRetries:   m.BootstrapRetries.Value(),
		DuplicateChunks:    m.DuplicateChunks.Value(),
		DuplicateVotes:     m.DuplicateVotes.Value(),
		DuplicateResponses: m.DuplicateResponses.Value(),
		ChunkResends:       m.ChunkResends.Value(),
		CommitProbes:       m.CommitProbes.Value(),
		LocalChunkErrors:   m.LocalChunkErrors.Value(),
		StaleResponses:     m.StaleResponses.Value(),
	}
}

// add accumulates other into s.
func (s *MetricsSnapshot) add(other MetricsSnapshot) {
	s.RetrieveRetries += other.RetrieveRetries
	s.TxQueryRetries += other.TxQueryRetries
	s.FetchTimeouts += other.FetchTimeouts
	s.FetchRetries += other.FetchRetries
	s.BootstrapRetries += other.BootstrapRetries
	s.DuplicateChunks += other.DuplicateChunks
	s.DuplicateVotes += other.DuplicateVotes
	s.DuplicateResponses += other.DuplicateResponses
	s.ChunkResends += other.ChunkResends
	s.CommitProbes += other.CommitProbes
	s.LocalChunkErrors += other.LocalChunkErrors
	s.StaleResponses += other.StaleResponses
}

// Metrics exposes the node's fault-recovery counters.
func (n *Node) Metrics() *NodeMetrics { return &n.metrics }

// MetricsSnapshot sums the fault-recovery counters across every node in
// the system — what the chaos experiments report.
func (s *System) MetricsSnapshot() MetricsSnapshot {
	var total MetricsSnapshot
	for _, n := range s.nodes {
		total.add(n.metrics.Snapshot())
	}
	return total
}

// ChaosCorrupter returns a simnet.CorruptFunc that performs kind-aware,
// size-preserving corruption of ICI protocol payloads: it flips a
// transaction amount inside chunk-bearing messages and the verdict bit of
// votes. Every mutation is applied to a copy, never to memory shared with
// the sender, and every corrupted payload is detectable — chunk tampering
// breaks the Merkle proofs or the block root, vote tampering breaks the
// signature — so corruption must cost the protocols retries, never
// integrity.
func ChaosCorrupter() simnet.CorruptFunc {
	return func(msg simnet.Message, rng *blockcrypto.RNG) (any, bool) {
		switch p := msg.Payload.(type) {
		case chunkPayload:
			if c, ok := tamperChunk(p, rng); ok {
				return c, true
			}
		case chunkRespMsg:
			if !p.Found {
				return nil, false
			}
			if c, ok := tamperChunk(p.Chunk, rng); ok {
				p.Chunk = c
				return p, true
			}
		case blockChunksMsg:
			if len(p.Chunks) == 0 {
				return nil, false
			}
			chunks := append([]retrievedChunk(nil), p.Chunks...)
			i := rng.Intn(len(chunks))
			c := chunks[i]
			switch {
			case c.Coded && len(c.Raw) > 0:
				raw := append([]byte(nil), c.Raw...)
				raw[rng.Intn(len(raw))] ^= 0xff
				c.Raw = raw
			case len(c.Txs) > 0:
				txs, ok := tamperTxs(c.Txs, rng)
				if !ok {
					return nil, false
				}
				c.Txs = txs
			default:
				return nil, false
			}
			chunks[i] = c
			p.Chunks = chunks
			return p, true
		case txProofMsg:
			if !p.Found || p.Tx == nil {
				return nil, false
			}
			tx := *p.Tx
			tx.Amount++
			p.Tx = &tx
			return p, true
		case consensus.Vote:
			p.Approve = !p.Approve // signature no longer covers the verdict
			return p, true
		}
		return nil, false
	}
}

// tamperChunk returns a copy of c with one transaction amount flipped.
func tamperChunk(c chunkPayload, rng *blockcrypto.RNG) (chunkPayload, bool) {
	txs, ok := tamperTxs(c.Txs, rng)
	if !ok {
		return c, false
	}
	c.Txs = txs
	return c, true
}

// tamperTxs copies txs and bumps one amount; the copy leaves the sender's
// slice untouched.
func tamperTxs(txs []*chain.Transaction, rng *blockcrypto.RNG) ([]*chain.Transaction, bool) {
	if len(txs) == 0 {
		return nil, false
	}
	out := append([]*chain.Transaction(nil), txs...)
	i := rng.Intn(len(out))
	tx := *out[i]
	tx.Amount++
	out[i] = &tx
	return out, true
}
