// Package core implements ICIStrategy, the paper's contribution: intra-
// cluster-integrity collaborative storage for a blockchain network.
//
// The strategy partitions all participants into clusters (internal/cluster).
// Every cluster collectively stores every finalized block: the block body is
// split into as many chunks as the cluster has members, and each chunk is
// placed on r members by rendezvous hashing. Members collaboratively verify
// a new block — each checks only its own chunk (transaction signatures plus
// Merkle membership against the header root) and votes; the cluster leader
// commits on a BFT quorum (internal/consensus). A node bootstraps by
// fetching all headers plus only its own chunks, and repairs rebuild lost
// chunks from replicas inside the cluster.
//
// The package exposes two layers that share this placement logic:
//
//   - Accountant: exact byte-level storage/bootstrap accounting at any
//     scale (no data moved) — drives the storage experiments.
//   - System/Node: the full protocol over the simulated network with real
//     chunk bytes, signatures, proofs, votes, retrieval, bootstrap and
//     repair — drives the communication and latency experiments.
package core

import (
	"errors"
	"fmt"
	"sort"

	"icistrategy/internal/simnet"
)

// Placement errors.
var (
	ErrNoMembers  = errors.New("core: cluster has no members")
	ErrBadParts   = errors.New("core: part count must be positive")
	ErrBadReplica = errors.New("core: replication factor must be in [1, cluster size]")
)

// mix64 is the SplitMix64 finalizer: a fast, well-distributed 64-bit mixer
// used for rendezvous scores. Placement runs millions of times inside the
// accountant, so this must stay branch-free and allocation-free.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rendezvousScore ranks node candidates for (blockSeed, chunkIdx); the
// highest scores own the chunk.
func rendezvousScore(blockSeed uint64, chunkIdx int, node simnet.NodeID) uint64 {
	return mix64(blockSeed ^ mix64(uint64(chunkIdx)+0x9e3779b97f4a7c15) ^ mix64(uint64(node)))
}

// Owners returns the r members that store chunk chunkIdx of the block with
// the given seed, by highest-random-weight (rendezvous) selection. The
// result is deterministic, balanced in expectation, and minimally
// disruptive: removing a member only reassigns the chunks that member
// owned.
func Owners(blockSeed uint64, members []simnet.NodeID, chunkIdx, r int) ([]simnet.NodeID, error) {
	if len(members) == 0 {
		return nil, ErrNoMembers
	}
	if r < 1 || r > len(members) {
		return nil, fmt.Errorf("%w: r=%d, members=%d", ErrBadReplica, r, len(members))
	}
	type scored struct {
		id    simnet.NodeID
		score uint64
	}
	best := make([]scored, 0, r)
	for _, m := range members {
		s := rendezvousScore(blockSeed, chunkIdx, m)
		if len(best) < r {
			best = append(best, scored{id: m, score: s})
			sort.Slice(best, func(i, j int) bool { return best[i].score > best[j].score })
			continue
		}
		if s > best[r-1].score {
			best[r-1] = scored{id: m, score: s}
			for i := r - 1; i > 0 && best[i].score > best[i-1].score; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
		}
	}
	out := make([]simnet.NodeID, r)
	for i, b := range best {
		out[i] = b.id
	}
	return out, nil
}

// RankedMembers returns all members ordered by descending rendezvous score
// for (blockSeed, chunkIdx): the first r entries are the chunk's owners and
// the rest are the fallback order leaders walk when owners fail or reject.
func RankedMembers(blockSeed uint64, members []simnet.NodeID, chunkIdx int) ([]simnet.NodeID, error) {
	if len(members) == 0 {
		return nil, ErrNoMembers
	}
	out := append([]simnet.NodeID(nil), members...)
	scores := make(map[simnet.NodeID]uint64, len(members))
	for _, m := range out {
		scores[m] = rendezvousScore(blockSeed, chunkIdx, m)
	}
	sort.Slice(out, func(i, j int) bool { return scores[out[i]] > scores[out[j]] })
	return out, nil
}

// IsOwner reports whether node stores chunk chunkIdx of the block with the
// given seed under replication r.
func IsOwner(blockSeed uint64, members []simnet.NodeID, chunkIdx, r int, node simnet.NodeID) (bool, error) {
	owners, err := Owners(blockSeed, members, chunkIdx, r)
	if err != nil {
		return false, err
	}
	for _, o := range owners {
		if o == node {
			return true, nil
		}
	}
	return false, nil
}

// SplitCounts divides total items into parts balanced groups: the first
// total%parts groups get one extra item. Used both to split a transaction
// list into chunk groups and to split a byte size for analytic accounting.
func SplitCounts(total, parts int) ([]int, error) {
	if parts <= 0 {
		return nil, ErrBadParts
	}
	out := make([]int, parts)
	base, extra := total/parts, total%parts
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out, nil
}

// ChunkRange returns the [start, end) item range of chunk chunkIdx under
// SplitCounts(total, parts).
func ChunkRange(total, parts, chunkIdx int) (start, end int, err error) {
	counts, err := SplitCounts(total, parts)
	if err != nil {
		return 0, 0, err
	}
	if chunkIdx < 0 || chunkIdx >= parts {
		return 0, 0, fmt.Errorf("core: chunk index %d out of [0,%d)", chunkIdx, parts)
	}
	for i := 0; i < chunkIdx; i++ {
		start += counts[i]
	}
	return start, start + counts[chunkIdx], nil
}
