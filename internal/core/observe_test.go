package core

import (
	"errors"
	"strings"
	"testing"

	"icistrategy/internal/chain"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
	"icistrategy/internal/storage"
	"icistrategy/internal/trace"
	"icistrategy/internal/workload"
)

// clusterChunks collects every distinct chunk of b held inside cluster c —
// the full reassembly set a (possibly stale) member response could carry.
func clusterChunks(t *testing.T, sys *System, c int, b *chain.Block) ([]retrievedChunk, int) {
	t.Helper()
	ci := sys.clusters[c]
	parts := ci.partsAt(b.Header.Height)
	found := make(map[int]retrievedChunk, parts)
	for _, m := range ci.members {
		node := sys.nodes[m]
		for _, idx := range node.store.ChunksForBlock(b.Hash()) {
			if _, ok := found[idx]; ok {
				continue
			}
			id := storage.ChunkID{Block: b.Hash(), Index: idx}
			chk, err := node.store.Chunk(id)
			if err != nil {
				continue
			}
			txs, derr := chain.DecodeBody(chk.Data)
			if derr != nil {
				continue
			}
			found[idx] = retrievedChunk{Idx: idx, TxStart: node.meta[id].txStart, Txs: txs}
		}
	}
	if len(found) != parts {
		t.Fatalf("cluster %d holds %d of %d chunks", c, len(found), parts)
	}
	out := make([]retrievedChunk, 0, len(found))
	for i := 0; i < parts; i++ {
		out = append(out, found[i])
	}
	return out, parts
}

// TestStaleRoundResponseSkipsBookkeeping is the regression test for the
// cross-round aliasing bug in full-block retrieval: an answer to a timed-out
// round 1 arriving during round 2 used to count toward round 2's
// responded/waiting bookkeeping, so an empty stale answer could drive
// waiting to zero and fire the "every member answered" definitive failure
// while a round-2 answer was still in flight. The stale answer's chunk data
// must still merge — verified data speaks for itself and may complete the
// block.
func TestStaleRoundResponseSkipsBookkeeping(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 2, Seed: 90})
	b := produceAndSettle(t, sys, gen, 1, 12)[0]
	members, _ := sys.ClusterMembers(0)
	n := sys.nodes[members[0]]

	var got *chain.Block
	var gotErr error
	calls := 0
	n.nextReq++
	req := n.nextReq
	st := &fetchState{
		block:   b.Hash(),
		chunks:  make(map[int]retrievedChunk),
		timeout: fetchTimeout,
		onBlock: func(bb *chain.Block, err error) { got, gotErr, calls = bb, err, calls+1 },
		// Round 1 timed out; round 2 is in flight with one member still
		// unanswered.
		attempts:  2,
		waiting:   1,
		responded: map[simnet.NodeID]bool{},
	}
	n.fetches[req] = st

	// A slow, empty round-1 answer lands mid-round-2.
	n.onBlockChunks(sys.net, members[1], blockChunksMsg{Block: b.Hash(), ReqID: req, Round: 1})
	if calls != 0 {
		t.Fatalf("stale empty response terminated the retrieval (err=%v)", gotErr)
	}
	if st.waiting != 1 {
		t.Fatalf("stale response entered round bookkeeping: waiting=%d", st.waiting)
	}
	if len(st.responded) != 0 {
		t.Fatal("stale response marked its sender as having answered the current round")
	}
	if v := n.metrics.StaleResponses.Value(); v != 1 {
		t.Fatalf("StaleResponses=%d, want 1", v)
	}

	// A stale answer that carries the full chunk set still completes the
	// block.
	chunks, parts := clusterChunks(t, sys, 0, b)
	n.onBlockChunks(sys.net, members[2], blockChunksMsg{
		Block: b.Hash(), ReqID: req, Round: 1, Parts: parts, Chunks: chunks,
	})
	if calls != 1 || gotErr != nil || got == nil {
		t.Fatalf("stale full response did not complete: calls=%d err=%v", calls, gotErr)
	}
	if got.Hash() != b.Hash() {
		t.Fatal("reassembled block hash mismatch")
	}
	if _, ok := n.fetches[req]; ok {
		t.Fatal("fetch state leaked after completion")
	}
}

// TestStaleNegativeChunkRespSkipsRingAdvance is the single-chunk-fetch half
// of the same bug family: on a second pass over the source ring the same
// source is asked again, and its stale "don't have it" from the earlier,
// timed-out attempt used to double-advance the ring past it before the live
// answer arrived.
func TestStaleNegativeChunkRespSkipsRingAdvance(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 2, Seed: 91})
	b := produceAndSettle(t, sys, gen, 1, 12)[0]
	members, _ := sys.ClusterMembers(0)
	n := sys.nodes[members[0]]
	parts := sys.clusters[0].partsAt(b.Header.Height)
	idx := -1
	for i := 0; i < parts; i++ {
		if !n.store.HasChunk(storage.ChunkID{Block: b.Hash(), Index: i}) {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Skip("node owns every chunk under this seed")
	}

	calls := 0
	var gotErr error
	srcs := []simnet.NodeID{members[1], members[2]}
	n.fetchChunk(sys.net, b.Hash(), idx, srcs, 0, "repair", func(err error) { calls++; gotErr = err })
	req := n.nextReq
	st := n.fetches[req]
	if st == nil {
		t.Fatal("no fetch state")
	}
	// Both sources time out (what the armed timers do), wrapping into a
	// second pass that re-asks sources[0] as attempt 3.
	st.timedOut = true
	n.advanceChunkSource(sys.net, req, st)
	st.timedOut = true
	n.advanceChunkSource(sys.net, req, st)
	if st.attempts != 3 || st.srcPos != 0 || st.passes != 1 {
		t.Fatalf("ring state after wrap: attempts=%d srcPos=%d passes=%d", st.attempts, st.srcPos, st.passes)
	}

	// The stale negative answering attempt 1 arrives from the very source
	// the fetch is currently waiting on.
	n.onChunkResp(sys.net, members[1], chunkRespMsg{Block: b.Hash(), ReqID: req, Attempt: 1})
	if st.srcPos != 0 {
		t.Fatalf("stale negative advanced the ring: srcPos=%d", st.srcPos)
	}
	if calls != 0 {
		t.Fatalf("stale negative terminated the fetch: err=%v", gotErr)
	}
	if v := n.metrics.StaleResponses.Value(); v != 1 {
		t.Fatalf("StaleResponses=%d, want 1", v)
	}

	// Live answers still drive the ring to its definitive end.
	n.onChunkResp(sys.net, members[1], chunkRespMsg{Block: b.Hash(), ReqID: req, Attempt: st.attempts})
	if st.srcPos != 1 {
		t.Fatalf("current-attempt negative did not advance: srcPos=%d", st.srcPos)
	}
	n.onChunkResp(sys.net, members[2], chunkRespMsg{Block: b.Hash(), ReqID: req, Attempt: st.attempts})
	if calls != 1 || !errors.Is(gotErr, ErrChunkLost) {
		t.Fatalf("fetch end: calls=%d err=%v", calls, gotErr)
	}
	if len(n.fetches) != 0 {
		t.Fatal("fetch state leaked after definitive failure")
	}
}

// TestRetrieveExactlyOnceUnderFaults drives plain and coded retrievals
// through drop/duplicate/reorder fault injection and checks the documented
// contract: cb fires exactly once per call and no fetch state survives a
// terminal outcome.
func TestRetrieveExactlyOnceUnderFaults(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 92})
	blocks := produceAndSettle(t, sys, gen, 3, 16)

	sys.Network().EnableFaults(93, simnet.FaultConfig{DropRate: 0.25, DupRate: 0.2, ReorderRate: 0.3})
	members, _ := sys.ClusterMembers(0)
	for _, b := range blocks {
		for _, id := range members[:3] {
			node := sys.nodes[id]
			calls := 0
			node.RetrieveBlock(sys.net, b.Hash(), func(*chain.Block, error) { calls++ })
			sys.Network().RunUntilIdle()
			if calls != 1 {
				t.Fatalf("node %d block %d: cb fired %d times", id, b.Header.Height, calls)
			}
			if len(node.fetches) != 0 {
				t.Fatalf("node %d block %d: %d fetch states leaked", id, b.Header.Height, len(node.fetches))
			}
		}
	}

	// Coded path: archive fault-free, then read back under faults.
	sys.Network().DisableFaults()
	var aerr error
	if err := sys.ArchiveBlock(0, blocks[0].Hash(), 1, func(err error) { aerr = err }); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if aerr != nil {
		t.Fatal(aerr)
	}
	sys.Network().EnableFaults(94, simnet.FaultConfig{DropRate: 0.25, DupRate: 0.2, ReorderRate: 0.3})
	node := sys.nodes[members[0]]
	calls := 0
	node.RetrieveArchivedBlock(sys.net, blocks[0].Hash(), func(*chain.Block, error) { calls++ })
	sys.Network().RunUntilIdle()
	if calls != 1 {
		t.Fatalf("coded retrieve cb fired %d times", calls)
	}
	if len(node.fetches) != 0 {
		t.Fatalf("coded retrieve leaked %d fetch states", len(node.fetches))
	}
}

// exerciseAllProtocols runs every instrumented protocol path once under the
// given tracer/registry and returns the system.
func exerciseAllProtocols(t *testing.T, tr *trace.Tracer, reg *metrics.Registry, seed uint64) *System {
	t.Helper()
	sys, err := NewSystem(Config{
		Nodes: 16, Clusters: 2, Replication: 2, Seed: seed,
		Tracer: tr, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{Accounts: 50, PayloadBytes: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	blocks := produceAndSettle(t, sys, gen, 2, 16)

	members, _ := sys.ClusterMembers(0)
	retrieved := false
	sys.nodes[members[0]].RetrieveBlock(sys.net, blocks[0].Hash(), func(_ *chain.Block, err error) {
		if err != nil {
			t.Errorf("retrieve: %v", err)
		}
		retrieved = true
	})
	sys.Network().RunUntilIdle()
	if !retrieved {
		t.Fatal("retrieve never completed")
	}

	if err := sys.JoinCluster(0, func(_ simnet.NodeID, err error) {
		if err != nil {
			t.Errorf("join: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()

	if err := sys.RepairCluster(0, func(int) {}); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()

	if err := sys.ArchiveBlock(1, blocks[1].Hash(), 1, func(err error) {
		if err != nil {
			t.Errorf("archive: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()

	members1, _ := sys.ClusterMembers(1)
	sys.nodes[members1[0]].RetrieveArchivedBlock(sys.net, blocks[1].Hash(), func(_ *chain.Block, err error) {
		if err != nil {
			t.Errorf("coded retrieve: %v", err)
		}
	})
	sys.Network().RunUntilIdle()
	return sys
}

// TestProtocolSpansAndCountersEnumerable checks the tentpole's surface: one
// run that touches every ICI protocol leaves (a) a named span per protocol
// phase in the recorder and (b) nonzero, enumerable counters in the
// registry.
func TestProtocolSpansAndCountersEnumerable(t *testing.T) {
	ring := trace.NewRing(1 << 16)
	reg := metrics.NewRegistry()
	exerciseAllProtocols(t, trace.New(ring), reg, 95)

	events := ring.Events()
	protos := make(map[string]bool)
	names := make(map[string]bool)
	for _, e := range events {
		protos[e.Proto] = true
		names[e.Name] = true
	}
	for _, p := range []string{"distribute", "verify", "retrieve", "bootstrap", "repair", "archive", "consensus", "net"} {
		if !protos[p] {
			t.Errorf("no %q events recorded", p)
		}
	}
	for _, n := range []string{"produce", "distribute", "commit", "retrieve", "bootstrap", "repair", "archive", "retrieve-archived", "decision"} {
		if !names[n] {
			t.Errorf("no span/point named %q recorded", n)
		}
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"ici.distribute.proposals", "ici.distribute.chunks_sent", "ici.distribute.commits",
		"ici.verify.chunks", "ici.verify.approvals",
		"consensus.votes", "consensus.decisions",
		"ici.retrieve.requests", "ici.retrieve.success", "ici.retrieve.bytes",
		"ici.bootstrap.joins", "ici.bootstrap.header_rounds", "ici.bootstrap.chunk_fetches",
		"ici.repair.scans",
		"ici.archive.blocks", "ici.archive.shares", "ici.archive.retrievals",
	} {
		if snap[name] <= 0 {
			t.Errorf("registry counter %q = %v, want > 0", name, snap[name])
		}
	}

	// The phase summary must attribute wire traffic to protocol phases.
	stats := trace.Summarize(events)
	if len(stats) == 0 {
		t.Fatal("empty phase summary")
	}
	var wireBytes int64
	for _, ps := range stats {
		wireBytes += ps.WireBytes
	}
	if wireBytes == 0 {
		t.Fatal("no wire bytes attributed to any phase")
	}
}

// TestTraceDeterministicAcrossRuns runs the same seeded scenario twice and
// requires byte-identical span trees and registry dumps: span IDs are
// allocated sequentially and timestamps come from the simulator's virtual
// clock, so tracing must not perturb (or be perturbed by) scheduling.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	run := func() (string, string) {
		ring := trace.NewRing(1 << 16)
		reg := metrics.NewRegistry()
		exerciseAllProtocols(t, trace.New(ring), reg, 96)
		return trace.Tree(ring.Events()), reg.JSON()
	}
	tree1, json1 := run()
	tree2, json2 := run()
	if tree1 != tree2 {
		t.Errorf("span trees differ between identical seeded runs:\n--- run1 ---\n%s\n--- run2 ---\n%s",
			head(tree1, 40), head(tree2, 40))
	}
	if json1 != json2 {
		t.Errorf("registry dumps differ:\n%s\n---\n%s", json1, json2)
	}
}

// head returns the first n lines of s (test-failure output trimming).
func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
