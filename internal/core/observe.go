package core

import (
	"icistrategy/internal/metrics"
)

// protoCounters caches the registry counters of every ICI protocol path so
// hot paths pay one atomic add per event, never a registry map lookup. One
// instance is shared by all nodes of a System — the counters are
// network-wide protocol totals (per-node recovery detail stays in
// NodeMetrics).
//
// The names below are the enumerable vocabulary of the protocol layer:
// everything a run did is readable from Registry.Snapshot() under these
// keys.
type protoCounters struct {
	// distribute/verify (the write path).
	proposals  *metrics.Counter // ici.distribute.proposals: blocks entering leader distribution
	chunksSent *metrics.Counter // ici.distribute.chunks_sent: chunk assignments sent (incl. re-sends)
	commits    *metrics.Counter // ici.distribute.commits: per-node block finalizations
	rejects    *metrics.Counter // ici.distribute.rejects: leader-side block rejections
	verified   *metrics.Counter // ici.verify.chunks: member chunk verifications performed
	approvals  *metrics.Counter // ici.verify.approvals: verifications that approved
	rejections *metrics.Counter // ici.verify.rejections: verifications that rejected

	// consensus vote rounds (fed to consensus.VoteObserver).
	votes         *metrics.Counter // consensus.votes: votes accepted into chunk tables
	equivocations *metrics.Counter // consensus.equivocations: conflicting votes dropped
	decisions     *metrics.Counter // consensus.decisions: terminal chunk-table decisions

	// retrieval (the read path).
	retrievals      *metrics.Counter // ici.retrieve.requests: RetrieveBlock calls
	retrieveRounds  *metrics.Counter // ici.retrieve.rounds: broadcast rounds issued
	retrieveOK      *metrics.Counter // ici.retrieve.success
	retrieveFailed  *metrics.Counter // ici.retrieve.failures
	staleResponses  *metrics.Counter // ici.retrieve.stale_responses: answers to superseded rounds
	retrievedBlocks *metrics.Counter // ici.retrieve.bytes: reassembled body bytes

	// light-client inclusion queries.
	txqueryStale *metrics.Counter // ici.txquery.stale_responses: proof answers to superseded rounds

	// bootstrap.
	bootstraps      *metrics.Counter // ici.bootstrap.joins: Bootstrap calls
	headerRounds    *metrics.Counter // ici.bootstrap.header_rounds: header requests sent
	bootstrapChunks *metrics.Counter // ici.bootstrap.chunk_fetches: owned-chunk fetches started
	bootstrapFailed *metrics.Counter // ici.bootstrap.failures

	// repair.
	repairs      *metrics.Counter // ici.repair.scans: RepairOwnership calls
	repairChunks *metrics.Counter // ici.repair.chunk_fetches: missing chunks fetched
	repairLost   *metrics.Counter // ici.repair.lost: chunks unrecoverable in-cluster

	// graceful departure (handoff).
	handoffs      *metrics.Counter // ici.handoff.departures: HandoffChunks calls
	handoffChunks *metrics.Counter // ici.handoff.chunks: chunks pushed to gaining owners
	handoffBytes  *metrics.Counter // ici.handoff.bytes: chunk payload bytes handed off
	handoffFailed *metrics.Counter // ici.handoff.failures: handoffs not acknowledged

	// coded archival.
	archives       *metrics.Counter // ici.archive.blocks: blocks converted to coded storage
	archiveShares  *metrics.Counter // ici.archive.shares: RS shares stored on members
	codedRetrieves *metrics.Counter // ici.archive.retrievals: coded-block reads started
}

// newProtoCounters resolves every protocol counter against reg once. A nil
// registry yields throwaway counters (metrics discarded), so uninstrumented
// Systems pay only the atomic adds.
func newProtoCounters(reg *metrics.Registry) *protoCounters {
	return &protoCounters{
		proposals:  reg.Counter("ici.distribute.proposals"),
		chunksSent: reg.Counter("ici.distribute.chunks_sent"),
		commits:    reg.Counter("ici.distribute.commits"),
		rejects:    reg.Counter("ici.distribute.rejects"),
		verified:   reg.Counter("ici.verify.chunks"),
		approvals:  reg.Counter("ici.verify.approvals"),
		rejections: reg.Counter("ici.verify.rejections"),

		votes:         reg.Counter("consensus.votes"),
		equivocations: reg.Counter("consensus.equivocations"),
		decisions:     reg.Counter("consensus.decisions"),

		retrievals:      reg.Counter("ici.retrieve.requests"),
		retrieveRounds:  reg.Counter("ici.retrieve.rounds"),
		retrieveOK:      reg.Counter("ici.retrieve.success"),
		retrieveFailed:  reg.Counter("ici.retrieve.failures"),
		staleResponses:  reg.Counter("ici.retrieve.stale_responses"),
		retrievedBlocks: reg.Counter("ici.retrieve.bytes"),

		txqueryStale: reg.Counter("ici.txquery.stale_responses"),

		bootstraps:      reg.Counter("ici.bootstrap.joins"),
		headerRounds:    reg.Counter("ici.bootstrap.header_rounds"),
		bootstrapChunks: reg.Counter("ici.bootstrap.chunk_fetches"),
		bootstrapFailed: reg.Counter("ici.bootstrap.failures"),

		repairs:      reg.Counter("ici.repair.scans"),
		repairChunks: reg.Counter("ici.repair.chunk_fetches"),
		repairLost:   reg.Counter("ici.repair.lost"),

		handoffs:      reg.Counter("ici.handoff.departures"),
		handoffChunks: reg.Counter("ici.handoff.chunks"),
		handoffBytes:  reg.Counter("ici.handoff.bytes"),
		handoffFailed: reg.Counter("ici.handoff.failures"),

		archives:       reg.Counter("ici.archive.blocks"),
		archiveShares:  reg.Counter("ici.archive.shares"),
		codedRetrieves: reg.Counter("ici.archive.retrievals"),
	}
}
