package core

import (
	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/consensus"
	"icistrategy/internal/simnet"
)

// Message kinds of the ICIStrategy protocol. Every kind maps to one payload
// type below; sizes are the wire sizes used for traffic accounting.
const (
	// KindPropose carries a full block from the producer to each cluster
	// leader.
	KindPropose = "ici/propose"
	// KindChunk carries one chunk (a transaction group with Merkle proofs)
	// from a cluster leader to a chunk owner.
	KindChunk = "ici/chunk"
	// KindVote carries a member's signed verdict back to the leader.
	KindVote = "ici/vote"
	// KindCommit carries the leader's commit certificate to cluster members.
	KindCommit = "ici/commit"
	// KindGetHeaders / KindHeaders implement the header sync of the
	// bootstrap protocol.
	KindGetHeaders = "ici/get-headers"
	KindHeaders    = "ici/headers"
	// KindGetChunk / KindChunkResp fetch one stored chunk with its proofs
	// (bootstrap and repair).
	KindGetChunk  = "ici/get-chunk"
	KindChunkResp = "ici/chunk-resp"
	// KindGetBlockChunks / KindBlockChunks fetch all chunks a member holds
	// for a block (full-block retrieval).
	KindGetBlockChunks = "ici/get-block-chunks"
	KindBlockChunks    = "ici/block-chunks"
	// KindGetCommit pulls a block's commit certificate from a peer that
	// finalized it. Members send it when the commit announcement for a
	// block they hold pending chunks of never arrived (lost on the wire or
	// missed during a crash); the answer is an ordinary KindCommit. A
	// failure-free run never sends one.
	KindGetCommit = "ici/get-commit"
	// KindHandoff / KindHandoffAck implement graceful departure: a leaving
	// member pushes each chunk whose ownership its departure shifts to the
	// gaining member, which verifies, persists and acknowledges it.
	KindHandoff    = "ici/handoff"
	KindHandoffAck = "ici/handoff-ack"
)

// reqOverhead is the wire size of a small request (kind tag, block hash,
// indexes); one size for all control requests keeps accounting simple.
const reqOverhead = 48

// proposeMsg is the payload of KindPropose.
type proposeMsg struct {
	Block *chain.Block
}

func (m proposeMsg) wireSize() int {
	return chain.HeaderSize + m.Block.BodySize()
}

// chunkPayload is one distributed chunk: a contiguous transaction group of
// the block plus the Merkle proof of every transaction in it.
type chunkPayload struct {
	Header  chain.Header
	PartIdx int // chunk index within the block
	Parts   int // total chunks the block was split into
	TxStart int // index of the first transaction in the group
	Txs     []*chain.Transaction
	Proofs  []chain.Proof // Proofs[i] proves Txs[i] under Header.MerkleRoot
}

// dataBytes is the chunk's storable payload size (what counts as storage).
func (c chunkPayload) dataBytes() int {
	n := 4
	for _, tx := range c.Txs {
		n += tx.EncodedSize()
	}
	return n
}

// proofBytes is the wire/storage size of the attached proofs.
func (c chunkPayload) proofBytes() int {
	n := 0
	for _, p := range c.Proofs {
		n += p.EncodedSize()
	}
	return n
}

func (c chunkPayload) wireSize() int {
	return chain.HeaderSize + 16 + c.dataBytes() + c.proofBytes()
}

// encodeChunkData serializes the transaction group in the same format as a
// block sub-body, which is what owners persist.
func (c chunkPayload) encodeChunkData() []byte {
	sub := chain.Block{Txs: c.Txs}
	return sub.EncodeBody()
}

// commitMsg is the payload of KindCommit: the leader's proof that every
// chunk of the block was verified by a quorum of its assignees.
type commitMsg struct {
	Header chain.Header
	Parts  int
	Votes  []consensus.Vote
}

func (m commitMsg) wireSize() int {
	return chain.HeaderSize + 8 + len(m.Votes)*consensus.EncodedVoteSize
}

// getCommitMsg asks a peer for the commit certificate of one block.
type getCommitMsg struct {
	Block blockcrypto.Hash
}

// getHeadersMsg asks a sponsor for all headers above FromHeight.
type getHeadersMsg struct {
	FromHeight uint64
}

// headersMsg returns the sponsor's headers in chain order.
type headersMsg struct {
	Headers []chain.Header
}

func (m headersMsg) wireSize() int { return len(m.Headers) * chain.HeaderSize }

// getChunkMsg asks an owner for one chunk of one block.
type getChunkMsg struct {
	Block blockcrypto.Hash
	Idx   int
	// ReqID correlates the response with the requester's pending fetch.
	ReqID uint64
	// Attempt tags the fetch attempt that issued this request; responders
	// echo it so the requester can tell a current answer from a stale one
	// that outlived its timeout.
	Attempt int
}

// chunkRespMsg returns a stored chunk with its proofs (empty Txs when the
// responder does not hold it).
type chunkRespMsg struct {
	Block   blockcrypto.Hash
	ReqID   uint64
	Attempt int // echoed from the request
	Found   bool
	Chunk   chunkPayload
}

func (m chunkRespMsg) wireSize() int {
	if !m.Found {
		return reqOverhead
	}
	return m.Chunk.wireSize()
}

// handoffMsg pushes one chunk from a gracefully leaving member to the
// member gaining its ownership under the post-departure epoch.
type handoffMsg struct {
	Chunk chunkPayload
	ReqID uint64 // correlates the ack with the leaver's pending handoff
}

func (m handoffMsg) wireSize() int { return m.Chunk.wireSize() + 8 }

// handoffAckMsg confirms one handed-off chunk was verified and persisted.
type handoffAckMsg struct {
	ReqID uint64
	OK    bool
}

// getBlockChunksMsg asks a member for every chunk it holds of one block.
type getBlockChunksMsg struct {
	Block blockcrypto.Hash
	ReqID uint64
	// Round tags the broadcast round that issued this request; responders
	// echo it. Without the tag, an answer to a timed-out earlier round
	// counts toward the current round's bookkeeping and can fire the
	// "every member answered" definitive failure prematurely.
	Round int
}

// blockChunksMsg returns all held chunks of a block, without proofs — a
// full-block reassembly is verified against the Merkle root directly.
type blockChunksMsg struct {
	Block blockcrypto.Hash
	ReqID uint64
	Round int // echoed from the request
	// Parts is the chunk count the block was stored with.
	Parts  int
	Chunks []retrievedChunk
}

// retrievedChunk is one chunk's content for reassembly: a transaction
// group for live blocks, or a raw Reed-Solomon share for archived ones.
type retrievedChunk struct {
	Idx     int
	TxStart int
	Txs     []*chain.Transaction
	Coded   bool
	Raw     []byte
}

func (m blockChunksMsg) wireSize() int {
	n := reqOverhead
	for _, c := range m.Chunks {
		n += 4 + len(c.Raw)
		for _, tx := range c.Txs {
			n += tx.EncodedSize()
		}
	}
	return n
}

// clusterInfo is the shared membership view of one cluster: an append-only
// list of membership epochs (see epoch.go) plus the current member slice as
// a convenience alias of the newest epoch's snapshot. Membership changes go
// through System, which pushes epochs; nothing mutates members in place.
type clusterInfo struct {
	index   int
	members []simnet.NodeID // current members == currentEpoch().members
	// epochs is the epoch-versioned cluster map: every membership change
	// appends a (epoch, members, parts) record so historic blocks keep
	// resolving against the membership they were written under.
	epochs []membershipEpoch
	// archived records blocks converted to coded storage (see archive.go).
	// Like membership, it is a shared cluster view; a real deployment
	// would record archival decisions on the membership chain.
	archived map[blockcrypto.Hash]archiveInfo
}

// leaderAt returns the cluster's leader for the given height, elected over
// the membership that governs that height.
func (c *clusterInfo) leaderAt(height uint64) (simnet.NodeID, error) {
	return consensus.Leader(c.membersAt(height), height)
}
