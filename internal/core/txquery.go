package core

import (
	"fmt"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/simnet"
	"icistrategy/internal/storage"
)

// Light-client query message kinds.
const (
	// KindGetTxProof asks a member whether it holds the chunk containing a
	// transaction of a block, and for the Merkle proof if so.
	KindGetTxProof = "ici/get-txproof"
	// KindTxProof is the response.
	KindTxProof = "ici/txproof"
)

// ErrTxNotFound is reported when no cluster member serves a proof for the
// requested transaction.
var ErrTxNotFound = fmt.Errorf("core: transaction not found in block")

// TxProof is a verified transaction-inclusion result: the transaction, the
// block header that commits to it, and the Merkle proof connecting them.
// It is what an ICIStrategy cluster hands to a light client — no member had
// to hold the whole block to produce it.
type TxProof struct {
	Tx     *chain.Transaction
	Header chain.Header
	Proof  chain.Proof
}

// Verify re-checks the proof against the header root.
func (p TxProof) Verify() error {
	if p.Tx == nil {
		return ErrTxNotFound
	}
	return chain.VerifyProof(p.Header.MerkleRoot, p.Tx.ID(), p.Proof)
}

// getTxProofMsg asks for a proof of txID inside block. Round tags the
// broadcast round so late answers to a superseded round are recognizable.
type getTxProofMsg struct {
	Block blockcrypto.Hash
	TxID  blockcrypto.Hash
	ReqID uint64
	Round int
}

// txProofMsg answers a proof query. Found is false when this member's
// chunks do not contain the transaction. Round echoes the query's round.
type txProofMsg struct {
	Block blockcrypto.Hash
	ReqID uint64
	Round int
	Found bool
	Tx    *chain.Transaction
	Proof chain.Proof
}

func (m txProofMsg) wireSize() int {
	if !m.Found {
		return reqOverhead
	}
	return reqOverhead + m.Tx.EncodedSize() + m.Proof.EncodedSize()
}

// txQueryState tracks one in-flight inclusion query.
type txQueryState struct {
	block     blockcrypto.Hash
	txID      blockcrypto.Hash
	waiting   int
	responded map[simnet.NodeID]bool
	attempts  int
	timeout   time.Duration
	done      bool
	cb        func(TxProof, error)
}

// QueryTxProof asks this node's cluster for an inclusion proof of txID in
// the given block. The owners of whichever chunk contains the transaction
// answer with the transaction, its stored Merkle proof, and the header; the
// result is verified against the locally stored header before cb fires.
func (n *Node) QueryTxProof(net *simnet.Network, block, txID blockcrypto.Hash, cb func(TxProof, error)) {
	hdr, err := n.store.Header(block)
	if err != nil {
		cb(TxProof{}, fmt.Errorf("%w: %s", ErrUnknownBlock, block.Short()))
		return
	}
	// Local chunks first: the querying node may own the right chunk.
	if proof, ok := n.localTxProof(block, txID); ok {
		proof.Header = hdr
		cb(proof, nil)
		return
	}
	n.nextReq++
	req := n.nextReq
	st := &txQueryState{block: block, txID: txID, timeout: fetchTimeout, cb: cb}
	n.txQueries[req] = st
	n.broadcastTxQuery(net, req, st)
}

// broadcastTxQuery issues one round of cluster-wide proof requests and arms
// its timeout; timed-out rounds are retried with doubled timeout up to
// maxFetchAttempts. A round every member answered without producing the
// proof is a definitive not-found.
func (n *Node) broadcastTxQuery(net *simnet.Network, req uint64, st *txQueryState) {
	st.attempts++
	st.waiting = 0
	st.responded = make(map[simnet.NodeID]bool, len(n.cluster.members))
	for _, m := range n.cluster.members {
		if m == n.id {
			continue
		}
		st.waiting++
		_ = net.Send(simnet.Message{
			From: n.id, To: m, Kind: KindGetTxProof,
			Size: reqOverhead, Payload: getTxProofMsg{Block: st.block, TxID: st.txID, ReqID: req, Round: st.attempts},
		})
	}
	if st.waiting == 0 {
		delete(n.txQueries, req)
		st.cb(TxProof{}, ErrTxNotFound)
		return
	}
	attempt := st.attempts
	net.After(st.timeout, func() {
		cur, ok := n.txQueries[req]
		if !ok || cur.done || cur.attempts != attempt {
			return
		}
		if cur.attempts >= maxFetchAttempts {
			cur.done = true
			delete(n.txQueries, req)
			cur.cb(TxProof{}, ErrTxNotFound)
			return
		}
		n.metrics.TxQueryRetries.Inc()
		cur.timeout *= 2
		n.broadcastTxQuery(net, req, cur)
	})
}

// localTxProof scans this node's own chunks for the transaction.
func (n *Node) localTxProof(block, txID blockcrypto.Hash) (TxProof, bool) {
	for _, idx := range n.store.ChunksForBlock(block) {
		id := storage.ChunkID{Block: block, Index: idx}
		chk, err := n.store.Chunk(id)
		if err != nil {
			continue
		}
		meta := n.meta[id]
		if meta.coded {
			continue // byte shares carry no per-tx structure
		}
		txs, derr := chain.DecodeBody(chk.Data)
		if derr != nil {
			continue
		}
		for i, tx := range txs {
			if tx.ID() == txID && i < len(meta.proofs) {
				return TxProof{Tx: tx, Proof: meta.proofs[i]}, true
			}
		}
	}
	return TxProof{}, false
}

// onGetTxProof serves an inclusion query from this node's stored chunks.
func (n *Node) onGetTxProof(net *simnet.Network, from simnet.NodeID, m getTxProofMsg) {
	resp := txProofMsg{Block: m.Block, ReqID: m.ReqID, Round: m.Round}
	if proof, ok := n.localTxProof(m.Block, m.TxID); ok {
		resp.Found = true
		resp.Tx = proof.Tx
		resp.Proof = proof.Proof
	}
	_ = net.Send(simnet.Message{
		From: n.id, To: from, Kind: KindTxProof,
		Size: resp.wireSize(), Payload: resp,
	})
}

// onTxProof consumes one member's answer to an inclusion query.
//
// Same stale-round discipline as onBlockChunks: an answer tagged with a
// superseded round may still complete the query when it carries a verified
// proof (data speaks for itself), but it must not mark the member as
// having answered the current round or decrement waiting — otherwise a
// slow round-1 negative arriving during round 2 can drive waiting to zero
// and fire the definitive not-found while round-2 answers (possibly
// positive) are still in flight.
func (n *Node) onTxProof(net *simnet.Network, from simnet.NodeID, m txProofMsg) {
	st, ok := n.txQueries[m.ReqID]
	if !ok || st.done || st.block != m.Block {
		return
	}
	stale := m.Round != st.attempts
	if stale {
		n.metrics.StaleResponses.Inc()
		n.pc.txqueryStale.Inc()
	} else if st.responded[from] {
		n.metrics.DuplicateResponses.Inc()
		return
	} else {
		st.responded[from] = true
		st.waiting--
	}
	req := m.ReqID
	if m.Found && m.Tx != nil && m.Tx.ID() == st.txID {
		hdr, err := n.store.Header(st.block)
		if err == nil {
			proof := TxProof{Tx: m.Tx, Header: hdr, Proof: m.Proof}
			if proof.Verify() == nil {
				st.done = true
				delete(n.txQueries, req)
				st.cb(proof, nil)
				return
			}
		}
	}
	if stale {
		return
	}
	if st.waiting == 0 {
		st.done = true
		delete(n.txQueries, req)
		st.cb(TxProof{}, ErrTxNotFound)
	}
}
