package core

import (
	"errors"
	"testing"

	"icistrategy/internal/chain"
	"icistrategy/internal/storage"
)

// archiveFixture commits a few blocks and archives one in cluster 0.
func archiveFixture(t *testing.T, seed uint64, parity int) (*System, []*chain.Block, *chain.Block) {
	t.Helper()
	sys, gen := buildSystem(t, Config{Nodes: 24, Clusters: 2, Replication: 2, Seed: seed})
	blocks := produceAndSettle(t, sys, gen, 4, 24)
	target := blocks[1]
	var archErr error
	done := false
	if err := sys.ArchiveBlock(0, target.Hash(), parity, func(err error) {
		archErr, done = err, true
	}); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if !done {
		t.Fatal("archive never completed")
	}
	if archErr != nil {
		t.Fatalf("archive: %v", archErr)
	}
	return sys, blocks, target
}

func TestArchiveReducesStorageAndStaysReadable(t *testing.T) {
	sys, _, target := archiveFixture(t, 30, 4)
	members, _ := sys.ClusterMembers(0)

	// Old replicated chunks are gone; coded shares are in place: total
	// stored bytes for this block across the cluster ≈ body × total/k
	// instead of body × r (r=2).
	var codedBytes int64
	for _, m := range members {
		node, _ := sys.Node(m)
		for _, idx := range node.Store().ChunksForBlock(target.Hash()) {
			chk, err := node.Store().Chunk(storage.ChunkID{Block: target.Hash(), Index: idx})
			if err != nil {
				t.Fatal(err)
			}
			codedBytes += int64(len(chk.Data))
		}
	}
	body := int64(target.BodySize())
	k, total := len(members)-4, len(members)
	expect := (body + 8) / int64(k) * int64(total) // approx, plus padding
	if codedBytes < body || codedBytes > 2*expect {
		t.Fatalf("coded bytes %d vs body %d (expected ≈%d)", codedBytes, body, expect)
	}
	if codedBytes >= 2*body {
		t.Fatalf("coded storage %d not below the r=2 replicated footprint %d", codedBytes, 2*body)
	}

	// Reading through the auto path reconstructs and root-verifies.
	reader, _ := sys.Node(members[3])
	var got *chain.Block
	var gotErr error
	reader.RetrieveBlockAuto(sys.Network(), target.Hash(), func(b *chain.Block, err error) {
		got, gotErr = b, err
	})
	sys.Network().RunUntilIdle()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got.Hash() != target.Hash() || len(got.Txs) != len(target.Txs) {
		t.Fatal("archived read returned wrong block")
	}
}

func TestArchivedReadSurvivesParityManyFailures(t *testing.T) {
	sys, _, target := archiveFixture(t, 31, 4)
	members, _ := sys.ClusterMembers(0)
	// Fail members until exactly parity-many shares are lost (rendezvous
	// placement is uneven, so count actual shares): any k shares remain
	// and the read must still reconstruct.
	lost := 0
	for _, m := range members[1:] {
		node, _ := sys.Node(m)
		held := len(node.Store().ChunksForBlock(target.Hash()))
		if lost+held > 4 {
			continue
		}
		if err := sys.FailNode(m); err != nil {
			t.Fatal(err)
		}
		lost += held
	}
	if lost == 0 {
		t.Skip("no failable member held shares under this seed")
	}
	reader, _ := sys.Node(members[0])
	var got *chain.Block
	var gotErr error
	reader.RetrieveBlockAuto(sys.Network(), target.Hash(), func(b *chain.Block, err error) {
		got, gotErr = b, err
	})
	sys.Network().RunUntilIdle()
	if gotErr != nil {
		t.Fatalf("read with %d failures (parity 4): %v", 4, gotErr)
	}
	if got.Hash() != target.Hash() {
		t.Fatal("wrong block reconstructed")
	}
}

func TestArchivedReadFailsPastParity(t *testing.T) {
	sys, _, target := archiveFixture(t, 32, 2)
	members, _ := sys.ClusterMembers(0)
	// Fail parity+2 members: with high probability more than parity shares
	// are gone (each member holds ~1 share).
	for _, m := range members[1:6] {
		if err := sys.FailNode(m); err != nil {
			t.Fatal(err)
		}
	}
	reader, _ := sys.Node(members[0])
	var gotErr error
	completed := false
	reader.RetrieveBlockAuto(sys.Network(), target.Hash(), func(_ *chain.Block, err error) {
		gotErr, completed = err, true
	})
	sys.Network().RunUntilIdle()
	if !completed {
		t.Fatal("retrieval callback never fired")
	}
	if gotErr == nil {
		t.Skip("failed members happened to hold few shares under this seed")
	}
	if !errors.Is(gotErr, ErrRetrieveFailed) {
		t.Fatalf("unexpected error: %v", gotErr)
	}
}

func TestArchiveValidation(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 1, Seed: 33})
	blocks := produceAndSettle(t, sys, gen, 1, 12)
	hash := blocks[0].Hash()
	noop := func(error) {}
	if err := sys.ArchiveBlock(9, hash, 1, noop); err == nil {
		t.Fatal("bad cluster index accepted")
	}
	if err := sys.ArchiveBlock(0, hash, 0, noop); err == nil {
		t.Fatal("zero parity accepted")
	}
	if err := sys.ArchiveBlock(0, hash, 6, noop); err == nil {
		t.Fatal("parity >= members accepted")
	}
	if err := sys.ArchiveBlock(0, hash, 2, noop); err != nil {
		t.Fatal(err)
	}
	sys.Network().RunUntilIdle()
	if err := sys.ArchiveBlock(0, hash, 2, noop); err == nil {
		t.Fatal("double archive accepted")
	}
}

func TestArchiveOnlyAffectsOneCluster(t *testing.T) {
	sys, blocks, target := archiveFixture(t, 34, 3)
	// Cluster 1 still serves the block the replicated way.
	members1, _ := sys.ClusterMembers(1)
	reader, _ := sys.Node(members1[0])
	var got *chain.Block
	var gotErr error
	reader.RetrieveBlock(sys.Network(), target.Hash(), func(b *chain.Block, err error) {
		got, gotErr = b, err
	})
	sys.Network().RunUntilIdle()
	if gotErr != nil {
		t.Fatalf("replicated read in untouched cluster: %v", gotErr)
	}
	if got.Hash() != target.Hash() {
		t.Fatal("wrong block")
	}
	// Unarchived blocks in cluster 0 still read normally.
	members0, _ := sys.ClusterMembers(0)
	r0, _ := sys.Node(members0[0])
	other := blocks[2]
	r0.RetrieveBlockAuto(sys.Network(), other.Hash(), func(b *chain.Block, err error) {
		got, gotErr = b, err
	})
	sys.Network().RunUntilIdle()
	if gotErr != nil || got.Hash() != other.Hash() {
		t.Fatalf("unarchived block read: %v", gotErr)
	}
}

func TestRetrieveArchivedRequiresArchive(t *testing.T) {
	sys, gen := buildSystem(t, Config{Nodes: 12, Clusters: 2, Replication: 1, Seed: 35})
	blocks := produceAndSettle(t, sys, gen, 1, 12)
	node, _ := sys.Node(0)
	var gotErr error
	node.RetrieveArchivedBlock(sys.Network(), blocks[0].Hash(), func(_ *chain.Block, err error) {
		gotErr = err
	})
	sys.Network().RunUntilIdle()
	if !errors.Is(gotErr, ErrNotArchived) {
		t.Fatalf("got %v, want ErrNotArchived", gotErr)
	}
}

func TestTxQueryAfterArchiveFindsNothingCoded(t *testing.T) {
	// Coded shares carry no per-tx structure, so inclusion queries for an
	// archived block report not-found (documented limitation: archive cold
	// blocks only).
	sys, _, target := archiveFixture(t, 36, 3)
	members, _ := sys.ClusterMembers(0)
	node, _ := sys.Node(members[0])
	var gotErr error
	done := false
	node.QueryTxProof(sys.Network(), target.Hash(), target.Txs[0].ID(), func(_ TxProof, err error) {
		gotErr, done = err, true
	})
	sys.Network().RunUntilIdle()
	if !done {
		t.Fatal("query never completed")
	}
	if !errors.Is(gotErr, ErrTxNotFound) {
		t.Fatalf("got %v, want ErrTxNotFound", gotErr)
	}
}
