package contest

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sync"
	"time"
)

// logWatcher incrementally collects one process stream as lines so actions
// can match conditions against it. It is an io.Writer wired directly to
// exec.Cmd.Stdout/Stderr: that way cmd.Wait only returns after every byte
// has passed through Write, so once the process is reaped the buffer is
// complete — no pipe-drain race. A fresh watcher is attached on every
// process start, which gives wait-log "current run" semantics: a pattern
// emitted before a crash never satisfies a condition placed after the
// restart.
type logWatcher struct {
	echo   io.Writer // optional mirror (the -v narration)
	prefix string

	mu      sync.Mutex
	lines   []string
	partial []byte
	closed  bool // stream ended (the process exited)
}

// newLogWatcher builds a watcher; echo non-nil mirrors every line there
// with the given prefix.
func newLogWatcher(echo io.Writer, prefix string) *logWatcher {
	return &logWatcher{echo: echo, prefix: prefix}
}

// Write splits the chunk into lines; a trailing fragment is buffered until
// its newline (or closeWatch) arrives.
func (w *logWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.partial = append(w.partial, p...)
	for {
		i := -1
		for j, b := range w.partial {
			if b == '\n' {
				i = j
				break
			}
		}
		if i < 0 {
			break
		}
		w.appendLine(string(w.partial[:i]))
		w.partial = w.partial[i+1:]
	}
	return len(p), nil
}

// appendLine records one complete line; callers hold w.mu.
func (w *logWatcher) appendLine(line string) {
	w.lines = append(w.lines, line)
	if w.echo != nil {
		fmt.Fprintf(w.echo, "%s%s\n", w.prefix, line)
	}
}

// closeWatch marks the stream ended, flushing any unterminated final line.
func (w *logWatcher) closeWatch() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.partial) > 0 {
		w.appendLine(string(w.partial))
		w.partial = nil
	}
	w.closed = true
}

// watchLines consumes an io.Reader in a goroutine — the reader-based shape
// used by tests and any future pipe-fed stream.
func watchLines(r io.Reader, echo io.Writer, prefix string) *logWatcher {
	w := newLogWatcher(echo, prefix)
	//icilint:allow goroleak(pump exits on reader EOF when the feeding pipe closes; the harness never outlives its child processes)
	go func() {
		br := bufio.NewReader(r)
		_, _ = io.Copy(w, br)
		w.closeWatch()
	}()
	return w
}

// Match reports the first collected line matching re, if any.
func (w *logWatcher) Match(re *regexp.Regexp) (string, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, l := range w.lines {
		if re.MatchString(l) {
			return l, true
		}
	}
	return "", false
}

// Tail returns up to n of the most recent lines (for failure dumps).
func (w *logWatcher) Tail(n int) []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.lines) > n {
		return append([]string(nil), w.lines[len(w.lines)-n:]...)
	}
	return append([]string(nil), w.lines...)
}

// pollInterval paces WaitMatch. Polling (rather than a condvar) keeps the
// deadline handling trivial and is far below scenario timescales.
const pollInterval = 10 * time.Millisecond

// WaitMatch blocks until a line matches re, the stream closes (process
// exit), or the deadline passes. It scans incrementally, so lines are
// examined once no matter how long the wait.
func (w *logWatcher) WaitMatch(re *regexp.Regexp, deadline time.Time) (string, error) {
	next := 0
	for {
		w.mu.Lock()
		for ; next < len(w.lines); next++ {
			if re.MatchString(w.lines[next]) {
				line := w.lines[next]
				w.mu.Unlock()
				return line, nil
			}
		}
		closed := w.closed
		w.mu.Unlock()
		if closed {
			return "", fmt.Errorf("log stream closed before %q matched (process exited?)", re)
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("timed out waiting for %q", re)
		}
		time.Sleep(pollInterval)
	}
}
