package contest

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"

	"icistrategy/internal/chain"
	"icistrategy/internal/workload"
)

// Runner executes a parsed Scenario against real icinet processes.
type Runner struct {
	IcinetPath string        // path to the icinet binary (required)
	WorkDir    string        // scratch dir; "" → a temp dir removed afterwards
	Out        io.Writer     // narration stream; nil → discarded
	Verbose    bool          // mirror each node's stderr into Out
	Timeout    time.Duration // whole-run budget; 0 → defaultRunTimeout
}

const (
	defaultRunTimeout = 5 * time.Minute
	// defaultActionWait bounds readiness and wait-log unless the action
	// carries its own timeout= option.
	defaultActionWait = 10 * time.Second
	// teardownGrace is how long teardown gives each node to honor SIGTERM
	// before escalating to SIGKILL.
	teardownGrace = 3 * time.Second
)

// node is the runtime state of one scenario member. addr and stateDir are
// fixed for the scenario's lifetime so a restarted process rebinds the same
// port and finds its restart marker; cmd/watchers are per-run.
type node struct {
	def      *NodeDef
	addr     string
	gwAddr   string // read-gateway listen address; "" unless def.Gateway
	stateDir string

	cmd     *exec.Cmd
	stdout  *logWatcher
	stderr  *logWatcher
	done    chan struct{} // closed once Wait returns
	waitErr error         // valid after done is closed
	up      bool
	runs    int
}

// run carries the mutable state of one scenario execution.
type run struct {
	rn       *Runner
	sc       *Scenario
	out      io.Writer
	dir      string
	deadline time.Time
	nodes    map[string]*node
	order    []*node // id order: index i is placement id i

	// Chain state shared across distribute / assert-retrieve actions: one
	// builder per run so successive distributes extend the same chain.
	builder *workload.ChainBuilder
	blocks  []*chain.Block
}

var readyRe = regexp.MustCompile(`^ICINET READY addr=(\S+) id=(\d+)(?: gateway=(\S+))?$`)

// Run executes the scenario: allocates every member's address up front,
// walks the stages in order, and tears all surviving processes down before
// returning. The returned error carries the failing stage, action, and
// source position.
func (rn *Runner) Run(sc *Scenario) (err error) {
	if rn.IcinetPath == "" {
		return errors.New("contest: Runner.IcinetPath is required")
	}
	out := rn.Out
	if out == nil {
		out = io.Discard
	}
	dir := rn.WorkDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "contest-"+sc.Name+"-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	timeout := rn.Timeout
	if timeout == 0 {
		timeout = defaultRunTimeout
	}
	x := &run{
		rn:       rn,
		sc:       sc,
		out:      out,
		dir:      dir,
		deadline: time.Now().Add(timeout),
		nodes:    make(map[string]*node, len(sc.Nodes)),
	}
	// Addresses are allocated before anything starts: every -members list
	// must be complete up front, and a crashed member must rebind its
	// original port when restarted.
	for _, nd := range sc.Nodes {
		port, perr := freePort()
		if perr != nil {
			return fmt.Errorf("contest: allocate port for %s: %w", nd.Name, perr)
		}
		n := &node{
			def:      nd,
			addr:     fmt.Sprintf("127.0.0.1:%d", port),
			stateDir: filepath.Join(dir, nd.Name),
		}
		if nd.Gateway {
			gwPort, perr := freePort()
			if perr != nil {
				return fmt.Errorf("contest: allocate gateway port for %s: %w", nd.Name, perr)
			}
			n.gwAddr = fmt.Sprintf("127.0.0.1:%d", gwPort)
		}
		if err := os.MkdirAll(n.stateDir, 0o755); err != nil {
			return fmt.Errorf("contest: state dir for %s: %w", nd.Name, err)
		}
		x.nodes[nd.Name] = n
		x.order = append(x.order, n)
	}
	fmt.Fprintf(out, "scenario %s: %d nodes, %d stages, replication %d\n",
		sc.Name, len(sc.Nodes), len(sc.Stages), sc.Replication)
	defer x.teardown()
	for _, st := range sc.Stages {
		fmt.Fprintf(out, "stage %s\n", st.Name)
		for _, a := range st.Actions {
			if err := x.exec(a); err != nil {
				x.dumpLogs()
				return fmt.Errorf("scenario %s: stage %s: %s (%s:%d): %w",
					sc.Name, st.Name, a.Verb, sc.File, a.Line, err)
			}
		}
	}
	fmt.Fprintf(out, "scenario %s: PASS\n", sc.Name)
	return nil
}

// freePort reserves an ephemeral localhost port and releases it for the
// node process to rebind. The tiny claim/rebind window is acceptable for a
// loopback test harness.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := l.Addr().(*net.TCPAddr).Port
	return port, l.Close()
}

// memberAddrs lists every node's address in placement-id order — the
// -members value each process receives.
func (x *run) memberAddrs() []string {
	addrs := make([]string, len(x.order))
	for i, n := range x.order {
		addrs[i] = n.addr
	}
	return addrs
}

// within converts a relative wait into an absolute deadline clamped to the
// run's overall budget.
func (x *run) within(d time.Duration) time.Time {
	t := time.Now().Add(d)
	if t.After(x.deadline) {
		return x.deadline
	}
	return t
}

// lookupNode resolves a node name used by an action.
func (x *run) lookupNode(name string) (*node, error) {
	n, ok := x.nodes[name]
	if !ok {
		return nil, fmt.Errorf("unknown node %q", name)
	}
	return n, nil
}

// startNode launches one icinet -serve process and blocks until its
// readiness line appears (or it exits / the timeout passes).
func (x *run) startNode(n *node, timeout time.Duration) error {
	if n.up {
		return fmt.Errorf("node %s is already running", n.def.Name)
	}
	args := []string{
		"-serve",
		"-listen", n.addr,
		"-id", strconv.Itoa(n.def.ID),
		"-members", strings.Join(x.memberAddrs(), ","),
		"-replication", strconv.Itoa(x.sc.Replication),
		"-state", n.stateDir,
		"-resync", n.def.Resync,
	}
	if n.def.Chaos {
		args = append(args, "-chaos")
	}
	if n.def.Gateway {
		args = append(args, "-gateway", n.gwAddr)
	}
	cmd := exec.Command(x.rn.IcinetPath, args...)
	var echo io.Writer
	if x.rn.Verbose {
		echo = x.out
	}
	// The watchers are the process's stdout/stderr writers directly, so
	// cmd.Wait returns only after every byte reached them: once done is
	// closed the buffers are complete (no pipe-drain race on crash).
	stdout := newLogWatcher(nil, "")
	stderr := newLogWatcher(echo, "    "+n.def.Name+"| ")
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start node %s: %w", n.def.Name, err)
	}
	n.cmd = cmd
	n.stdout = stdout
	n.stderr = stderr
	done := make(chan struct{})
	go func() {
		n.waitErr = cmd.Wait()
		stdout.closeWatch()
		stderr.closeWatch()
		close(done)
	}()
	n.done = done

	line, err := n.stdout.WaitMatch(readyRe, x.within(timeout))
	if err != nil {
		select {
		case <-n.done:
			return fmt.Errorf("node %s exited during startup (%v); stderr: %s",
				n.def.Name, n.waitErr, strings.Join(n.stderr.Tail(5), " | "))
		default:
		}
		_ = cmd.Process.Kill()
		<-n.done
		return fmt.Errorf("node %s: %w", n.def.Name, err)
	}
	m := readyRe.FindStringSubmatch(line)
	if m[1] != n.addr {
		_ = cmd.Process.Kill()
		<-n.done
		return fmt.Errorf("node %s reported addr %s, expected %s", n.def.Name, m[1], n.addr)
	}
	if n.def.Gateway && m[3] != n.gwAddr {
		_ = cmd.Process.Kill()
		<-n.done
		return fmt.Errorf("node %s reported gateway %q, expected %s", n.def.Name, m[3], n.gwAddr)
	}
	n.up = true
	n.runs++
	fmt.Fprintf(x.out, "  started %s id=%d addr=%s pid=%d run=%d\n",
		n.def.Name, n.def.ID, n.addr, cmd.Process.Pid, n.runs)
	return nil
}

// stopNode sends SIGTERM and requires a clean exit — the graceful-shutdown
// contract every scenario re-proves on the way out.
func (x *run) stopNode(n *node, timeout time.Duration) error {
	if !n.up {
		return fmt.Errorf("node %s is not running", n.def.Name)
	}
	if err := n.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal node %s: %w", n.def.Name, err)
	}
	select {
	case <-n.done:
	case <-time.After(time.Until(x.within(timeout))):
		_ = n.cmd.Process.Kill()
		<-n.done
		n.up = false
		return fmt.Errorf("node %s ignored SIGTERM for %s", n.def.Name, timeout)
	}
	n.up = false
	if n.waitErr != nil {
		return fmt.Errorf("node %s exited uncleanly after SIGTERM: %v; stderr: %s",
			n.def.Name, n.waitErr, strings.Join(n.stderr.Tail(5), " | "))
	}
	fmt.Fprintf(x.out, "  stopped %s cleanly\n", n.def.Name)
	return nil
}

// killNode crashes the process with SIGKILL — no drain, no state flush.
func (x *run) killNode(n *node) error {
	if !n.up {
		return fmt.Errorf("node %s is not running", n.def.Name)
	}
	if err := n.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("kill node %s: %w", n.def.Name, err)
	}
	<-n.done
	n.up = false
	fmt.Fprintf(x.out, "  killed %s\n", n.def.Name)
	return nil
}

// teardown stops every surviving process in reverse start order: SIGTERM,
// a short grace, then SIGKILL. Runs on every exit path.
func (x *run) teardown() {
	for i := len(x.order) - 1; i >= 0; i-- {
		n := x.order[i]
		if !n.up {
			continue
		}
		_ = n.cmd.Process.Signal(syscall.SIGTERM)
		select {
		case <-n.done:
		case <-time.After(teardownGrace):
			_ = n.cmd.Process.Kill()
			<-n.done
			fmt.Fprintf(x.out, "  teardown: %s needed SIGKILL\n", n.def.Name)
		}
		n.up = false
	}
}

// dumpLogs appends each node's recent stderr to the narration on failure.
func (x *run) dumpLogs() {
	for _, n := range x.order {
		if n.stderr == nil {
			continue
		}
		tail := n.stderr.Tail(15)
		if len(tail) == 0 {
			continue
		}
		fmt.Fprintf(x.out, "  -- %s stderr tail --\n", n.def.Name)
		for _, l := range tail {
			fmt.Fprintf(x.out, "    %s\n", l)
		}
	}
}

// expandAction returns a copy of a with `${...}` templates resolved in every
// positional argument and option value.
func (x *run) expandAction(a *Action) (*Action, error) {
	lookup := func(name string) (string, bool) {
		if v, ok := x.sc.Vars[name]; ok {
			return v, true
		}
		switch name {
		case "scenario.name":
			return x.sc.Name, true
		case "scenario.dir":
			return x.dir, true
		}
		if rest, ok := strings.CutPrefix(name, "node."); ok {
			nodeName, field, ok := strings.Cut(rest, ".")
			if !ok {
				return "", false
			}
			n, found := x.nodes[nodeName]
			if !found {
				return "", false
			}
			switch field {
			case "addr":
				return n.addr, true
			case "id":
				return strconv.Itoa(n.def.ID), true
			case "state":
				return n.stateDir, true
			case "gateway":
				if n.gwAddr == "" {
					return "", false
				}
				return n.gwAddr, true
			}
		}
		return "", false
	}
	out := &Action{Verb: a.Verb, Line: a.Line, Opts: make(map[string]string, len(a.Opts))}
	for _, arg := range a.Args {
		v, err := expandTemplate(arg, lookup)
		if err != nil {
			return nil, err
		}
		out.Args = append(out.Args, v)
	}
	for k, raw := range a.Opts {
		v, err := expandTemplate(raw, lookup)
		if err != nil {
			return nil, err
		}
		out.Opts[k] = v
	}
	return out, nil
}
