package contest

import (
	"io"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWatcherMatchAndTail(t *testing.T) {
	w := watchLines(strings.NewReader("alpha\nbeta\ngamma\n"), nil, "")
	re := regexp.MustCompile(`^beta$`)
	if _, err := w.WaitMatch(re, time.Now().Add(time.Second)); err != nil {
		t.Fatalf("WaitMatch: %v", err)
	}
	if line, ok := w.Match(re); !ok || line != "beta" {
		t.Fatalf("Match: %q, %v", line, ok)
	}
	if tail := w.Tail(2); len(tail) != 2 || tail[1] != "gamma" {
		t.Fatalf("Tail: %v", tail)
	}
}

func TestWaitMatchTimesOut(t *testing.T) {
	pr, pw := io.Pipe()
	defer pw.Close()
	w := watchLines(pr, nil, "")
	start := time.Now()
	_, err := w.WaitMatch(regexp.MustCompile("never"), start.Add(60*time.Millisecond))
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout error, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout far exceeded deadline")
	}
}

func TestWaitMatchFailsFastOnClose(t *testing.T) {
	// A closed stream (the process exited) must fail the wait immediately,
	// not burn the whole deadline.
	w := watchLines(strings.NewReader("only line\n"), nil, "")
	start := time.Now()
	_, err := w.WaitMatch(regexp.MustCompile("never"), start.Add(10*time.Second))
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("want closed-stream error, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("close detection took too long")
	}
}

func TestWatcherEchoesWithPrefix(t *testing.T) {
	var sb safeBuilder
	w := watchLines(strings.NewReader("one\ntwo\n"), &sb, "  nX| ")
	if _, err := w.WaitMatch(regexp.MustCompile("two"), time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	// The echo write happens outside the watcher lock; wait for it.
	deadline := time.Now().Add(time.Second)
	for !strings.Contains(sb.String(), "  nX| two") {
		if time.Now().After(deadline) {
			t.Fatalf("echo output: %q", sb.String())
		}
		time.Sleep(pollInterval)
	}
}

// safeBuilder is a goroutine-safe strings.Builder for echo assertions.
type safeBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
