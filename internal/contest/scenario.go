// Package contest is a declarative integration harness for the ICIStrategy
// storage network: a scenario file describes a cluster of real icinet -serve
// processes and a staged script of actions against them — starts, crashes,
// restarts, fault injection, log conditions, and storage assertions — and
// the Runner executes it end-to-end over real TCP, tearing every process
// down deterministically when the scenario ends (pass or fail).
//
// The scenario grammar is a small indented key/value format (no external
// parser dependencies), one directive per line:
//
//	# comment (full-line only)
//	scenario NAME
//	replication R
//	vars
//	    key value with spaces allowed
//	node NAME [resync=auto|join|restart|none] [chaos=true] [gateway=true] [id=N]
//	stage NAME
//	    action args... key=value...
//
// Top-level directives start in column zero; indented lines belong to the
// most recent vars or stage block. Values may reference `${var}` (from the
// vars block) and the runtime builtins `${node.NAME.addr}`,
// `${node.NAME.id}`, `${node.NAME.state}`, `${node.NAME.gateway}` (for
// gateway=true nodes), `${scenario.name}` and `${scenario.dir}`.
//
// Action vocabulary (see actions.go for execution semantics):
//
//	start NODE...            [timeout=10s]   launch, block on readiness line
//	restart NODE...          [timeout=10s]   start again (state dir intact)
//	stop NODE...             [timeout=10s]   SIGTERM, require clean exit 0
//	kill NODE...                             SIGKILL, no cleanup
//	wait-log NODE REGEX      [timeout=10s]   block until stderr line matches
//	assert-log NODE REGEX                    match must already be present
//	sleep DURATION
//	distribute               via=n0,n1 [blocks=2] [tx=20] [seed=42]
//	bootstrap-member         node=NX via=n0,n1 [min=1]
//	retire-member            node=NX via=<full membership incl NX> [min=1]
//	                         graceful leave: displaced chunks hand off to
//	                         their new owners, shrunk epoch published
//	rejoin-member            node=NX via=<full membership incl NX> [min=1]
//	                         return as the same identity: owed chunks are
//	                         re-provisioned per write epoch, map republished
//	inject-fault NODE        kind=corrupt-stored|drop|delay|corrupt-wire|clear
//	                         [rate=1] [delay=20ms] [seed=1] [min=1]
//	assert-stats NODE FIELD OP VALUE         fields: headers, chunks,
//	                                         header-bytes, chunk-bytes
//	assert-retrieve          block=N via=n0,n1 | gateway=NODE [expect=ok|fail]
//	assert-down NODE...
//	assert-up NODE...
package contest

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Scenario is a parsed scenario file.
type Scenario struct {
	Name        string
	File        string // source path, for error positions
	Replication int
	Vars        map[string]string
	Nodes       []*NodeDef // sorted by ID
	Stages      []*Stage
}

// NodeDef declares one cluster member process.
type NodeDef struct {
	Name    string
	ID      int    // placement id; defaults to definition order
	Resync  string // icinet -resync mode; defaults to "auto"
	Chaos   bool   // start with -chaos (honor fault-injection ops)
	Gateway bool   // also serve the read gateway (-gateway) on a second port
	Line    int
}

// Stage is a named sequence of actions; stages run strictly in order.
type Stage struct {
	Name    string
	Line    int
	Actions []*Action
}

// Action is one scripted step: a verb, positional args, and key=value
// options. Which tokens count as options is per-verb (see actionSpecs), so
// patterns like `event=bootstrap.done` stay positional where the verb does
// not define an `event` option.
type Action struct {
	Verb string
	Args []string
	Opts map[string]string
	Line int
}

// actionSpec constrains one verb: positional arity and the option keys it
// accepts (required ones listed separately).
type actionSpec struct {
	minArgs, maxArgs int // maxArgs < 0: unbounded
	opts             []string
	required         []string
}

var actionSpecs = map[string]actionSpec{
	"start":            {minArgs: 1, maxArgs: -1, opts: []string{"timeout"}},
	"restart":          {minArgs: 1, maxArgs: -1, opts: []string{"timeout"}},
	"stop":             {minArgs: 1, maxArgs: -1, opts: []string{"timeout"}},
	"kill":             {minArgs: 1, maxArgs: -1},
	"wait-log":         {minArgs: 2, maxArgs: 2, opts: []string{"timeout"}},
	"assert-log":       {minArgs: 2, maxArgs: 2},
	"sleep":            {minArgs: 1, maxArgs: 1},
	"distribute":       {opts: []string{"via", "blocks", "tx", "seed"}, required: []string{"via"}},
	"bootstrap-member": {opts: []string{"node", "via", "min"}, required: []string{"node", "via"}},
	"retire-member":    {opts: []string{"node", "via", "min"}, required: []string{"node", "via"}},
	"rejoin-member":    {opts: []string{"node", "via", "min"}, required: []string{"node", "via"}},
	"inject-fault":     {minArgs: 1, maxArgs: 1, opts: []string{"kind", "rate", "delay", "seed", "min"}, required: []string{"kind"}},
	"assert-stats":     {minArgs: 4, maxArgs: 4},
	"assert-retrieve":  {opts: []string{"block", "via", "expect", "gateway"}},
	"assert-down":      {minArgs: 1, maxArgs: -1},
	"assert-up":        {minArgs: 1, maxArgs: -1},
}

// hasOpt reports whether the spec accepts key as an option.
func (s actionSpec) hasOpt(key string) bool {
	for _, o := range s.opts {
		if o == key {
			return true
		}
	}
	return false
}

var nodeNameRe = regexp.MustCompile(`^[A-Za-z][A-Za-z0-9_-]*$`)

// ParseScenarioFile reads and parses one scenario file.
func ParseScenarioFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseScenario(string(data), path)
}

// ParseScenario parses scenario source; file names the source in errors.
func ParseScenario(src, file string) (*Scenario, error) {
	sc := &Scenario{File: file, Vars: make(map[string]string)}
	fail := func(line int, format string, args ...any) error {
		return fmt.Errorf("%s:%d: %s", file, line, fmt.Sprintf(format, args...))
	}
	block := "" // "", "vars" or "stage"
	var stage *Stage
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		fields := strings.Fields(trimmed)
		if raw[0] != ' ' && raw[0] != '\t' {
			block, stage = "", nil
			switch fields[0] {
			case "scenario":
				if len(fields) != 2 {
					return nil, fail(line, "scenario takes exactly one name")
				}
				if sc.Name != "" {
					return nil, fail(line, "duplicate scenario directive")
				}
				sc.Name = fields[1]
			case "replication":
				if len(fields) != 2 {
					return nil, fail(line, "replication takes exactly one value")
				}
				r, err := strconv.Atoi(fields[1])
				if err != nil || r < 1 {
					return nil, fail(line, "bad replication %q", fields[1])
				}
				sc.Replication = r
			case "vars":
				if len(fields) != 1 {
					return nil, fail(line, "vars takes no arguments")
				}
				block = "vars"
			case "node":
				nd, err := parseNode(fields[1:], line)
				if err != nil {
					return nil, fail(line, "%v", err)
				}
				sc.Nodes = append(sc.Nodes, nd)
			case "stage":
				if len(fields) != 2 {
					return nil, fail(line, "stage takes exactly one name")
				}
				stage = &Stage{Name: fields[1], Line: line}
				sc.Stages = append(sc.Stages, stage)
				block = "stage"
			default:
				return nil, fail(line, "unknown directive %q", fields[0])
			}
			continue
		}
		switch block {
		case "vars":
			key := fields[0]
			if _, dup := sc.Vars[key]; dup {
				return nil, fail(line, "duplicate var %q", key)
			}
			sc.Vars[key] = strings.TrimSpace(strings.TrimPrefix(trimmed, key))
		case "stage":
			act, err := parseAction(fields, line)
			if err != nil {
				return nil, fail(line, "%v", err)
			}
			stage.Actions = append(stage.Actions, act)
		default:
			return nil, fail(line, "indented line outside a vars or stage block")
		}
	}
	if err := validateScenario(sc); err != nil {
		return nil, err
	}
	return sc, nil
}

// parseNode parses the tokens after the `node` keyword.
func parseNode(fields []string, line int) (*NodeDef, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("node needs a name")
	}
	nd := &NodeDef{Name: fields[0], ID: -1, Resync: "auto", Line: line}
	if !nodeNameRe.MatchString(nd.Name) {
		return nil, fmt.Errorf("bad node name %q", nd.Name)
	}
	for _, tok := range fields[1:] {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("node option %q is not key=value", tok)
		}
		switch key {
		case "id":
			id, err := strconv.Atoi(val)
			if err != nil || id < 0 {
				return nil, fmt.Errorf("bad node id %q", val)
			}
			nd.ID = id
		case "resync":
			switch val {
			case "auto", "join", "restart", "none":
				nd.Resync = val
			default:
				return nil, fmt.Errorf("bad resync mode %q", val)
			}
		case "chaos":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return nil, fmt.Errorf("bad chaos value %q", val)
			}
			nd.Chaos = b
		case "gateway":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return nil, fmt.Errorf("bad gateway value %q", val)
			}
			nd.Gateway = b
		default:
			return nil, fmt.Errorf("unknown node option %q", key)
		}
	}
	return nd, nil
}

// parseAction splits one stage line into verb, positional args and options.
func parseAction(fields []string, line int) (*Action, error) {
	verb := fields[0]
	spec, ok := actionSpecs[verb]
	if !ok {
		return nil, fmt.Errorf("unknown action %q", verb)
	}
	act := &Action{Verb: verb, Opts: make(map[string]string), Line: line}
	for _, tok := range fields[1:] {
		if key, val, isKV := strings.Cut(tok, "="); isKV && spec.hasOpt(key) {
			if _, dup := act.Opts[key]; dup {
				return nil, fmt.Errorf("%s: duplicate option %q", verb, key)
			}
			act.Opts[key] = val
			continue
		}
		act.Args = append(act.Args, tok)
	}
	if len(act.Args) < spec.minArgs {
		return nil, fmt.Errorf("%s needs at least %d argument(s), got %d", verb, spec.minArgs, len(act.Args))
	}
	if spec.maxArgs >= 0 && len(act.Args) > spec.maxArgs {
		return nil, fmt.Errorf("%s takes at most %d argument(s), got %d", verb, spec.maxArgs, len(act.Args))
	}
	for _, req := range spec.required {
		if _, ok := act.Opts[req]; !ok {
			return nil, fmt.Errorf("%s requires the %s= option", verb, req)
		}
	}
	if verb == "assert-retrieve" {
		_, viaOK := act.Opts["via"]
		_, gwOK := act.Opts["gateway"]
		if viaOK == gwOK {
			return nil, fmt.Errorf("assert-retrieve requires exactly one of via= or gateway=")
		}
	}
	return act, nil
}

// validateScenario checks cross-cutting invariants: naming, id assignment,
// replication bounds, and that literal node references resolve.
func validateScenario(sc *Scenario) error {
	if sc.Name == "" {
		return fmt.Errorf("%s: missing scenario directive", sc.File)
	}
	if len(sc.Nodes) == 0 {
		return fmt.Errorf("%s: scenario %s declares no nodes", sc.File, sc.Name)
	}
	if len(sc.Stages) == 0 {
		return fmt.Errorf("%s: scenario %s declares no stages", sc.File, sc.Name)
	}
	if sc.Replication > len(sc.Nodes) {
		return fmt.Errorf("%s: replication %d exceeds node count %d", sc.File, sc.Replication, len(sc.Nodes))
	}
	if sc.Replication == 0 { // default: 2, clamped to the cluster size
		sc.Replication = 2
		if sc.Replication > len(sc.Nodes) {
			sc.Replication = len(sc.Nodes)
		}
	}
	names := make(map[string]bool, len(sc.Nodes))
	used := make(map[int]bool, len(sc.Nodes))
	next := 0
	for _, nd := range sc.Nodes {
		if names[nd.Name] {
			return fmt.Errorf("%s:%d: duplicate node %q", sc.File, nd.Line, nd.Name)
		}
		names[nd.Name] = true
		if nd.ID < 0 { // default: definition order, skipping explicit ids
			for used[next] {
				next++
			}
			nd.ID = next
		}
		if used[nd.ID] {
			return fmt.Errorf("%s:%d: node %q reuses id %d", sc.File, nd.Line, nd.Name, nd.ID)
		}
		used[nd.ID] = true
	}
	for id := range sc.Nodes {
		if !used[id] {
			return fmt.Errorf("%s: node ids must cover 0..%d, missing %d", sc.File, len(sc.Nodes)-1, id)
		}
	}
	sort.Slice(sc.Nodes, func(i, j int) bool { return sc.Nodes[i].ID < sc.Nodes[j].ID })
	for _, st := range sc.Stages {
		for _, a := range st.Actions {
			for _, ref := range a.nodeRefs() {
				if strings.Contains(ref, "${") {
					continue // resolved (and checked) at runtime
				}
				if !names[ref] {
					return fmt.Errorf("%s:%d: %s references unknown node %q", sc.File, a.Line, a.Verb, ref)
				}
			}
		}
	}
	return nil
}

// nodeRefs lists the node names an action mentions, for static validation.
func (a *Action) nodeRefs() []string {
	var refs []string
	switch a.Verb {
	case "start", "restart", "stop", "kill", "assert-down", "assert-up":
		refs = append(refs, a.Args...)
	case "wait-log", "assert-log", "inject-fault", "assert-stats":
		refs = append(refs, a.Args[0])
	}
	if v, ok := a.Opts["node"]; ok {
		refs = append(refs, v)
	}
	if v, ok := a.Opts["gateway"]; ok && !strings.Contains(v, "${") {
		refs = append(refs, v)
	}
	if v, ok := a.Opts["via"]; ok && !strings.Contains(v, "${") {
		for _, nm := range splitList(v) {
			refs = append(refs, nm)
		}
	}
	return refs
}

// splitList splits a comma-separated list, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

var varRe = regexp.MustCompile(`\$\{([^}]*)\}`)

// maxExpandDepth bounds recursive `${var}` expansion (vars referencing vars).
const maxExpandDepth = 10

// expandTemplate substitutes every `${name}` in s using lookup; lookup
// results are themselves expanded, so vars can reference other vars.
func expandTemplate(s string, lookup func(string) (string, bool)) (string, error) {
	return expandDepth(s, lookup, 0)
}

func expandDepth(s string, lookup func(string) (string, bool), depth int) (string, error) {
	if depth > maxExpandDepth {
		return "", fmt.Errorf("template expansion loop in %q", s)
	}
	var firstErr error
	out := varRe.ReplaceAllStringFunc(s, func(m string) string {
		name := strings.TrimSpace(m[2 : len(m)-1])
		val, ok := lookup(name)
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("unknown template variable %q", name)
			}
			return m
		}
		expanded, err := expandDepth(val, lookup, depth+1)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return expanded
	})
	return out, firstErr
}
