package contest

import (
	"strings"
	"testing"
)

const sampleScenario = `
# sample
scenario sample
replication 2

vars
    blocks 3
    greeting hello world

node n0
node n1 chaos=true
node n2 resync=join

stage seed
    start n0 n1
    distribute via=n0,n1 blocks=${blocks} tx=24 seed=7

stage check
    wait-log n0 event=serve.ready timeout=5s
    assert-stats n0 chunks >= 1
    stop n0 n1
`

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario(sampleScenario, "sample.cont")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "sample" || sc.Replication != 2 {
		t.Fatalf("header mangled: %+v", sc)
	}
	if sc.Vars["blocks"] != "3" || sc.Vars["greeting"] != "hello world" {
		t.Fatalf("vars mangled: %v", sc.Vars)
	}
	if len(sc.Nodes) != 3 {
		t.Fatalf("want 3 nodes, got %d", len(sc.Nodes))
	}
	for i, nd := range sc.Nodes {
		if nd.ID != i {
			t.Fatalf("node %s has id %d at position %d", nd.Name, nd.ID, i)
		}
	}
	if !sc.Nodes[1].Chaos || sc.Nodes[2].Resync != "join" || sc.Nodes[0].Resync != "auto" {
		t.Fatalf("node options mangled: %+v %+v %+v", sc.Nodes[0], sc.Nodes[1], sc.Nodes[2])
	}
	if len(sc.Stages) != 2 || sc.Stages[0].Name != "seed" || len(sc.Stages[0].Actions) != 2 {
		t.Fatalf("stages mangled: %+v", sc.Stages)
	}
	dist := sc.Stages[0].Actions[1]
	if dist.Verb != "distribute" || dist.Opts["via"] != "n0,n1" || dist.Opts["blocks"] != "${blocks}" {
		t.Fatalf("distribute mangled: %+v", dist)
	}
	// `event=serve.ready` must stay POSITIONAL: wait-log defines no `event`
	// option, so the pattern is not swallowed as a key=value.
	wl := sc.Stages[1].Actions[0]
	if len(wl.Args) != 2 || wl.Args[1] != "event=serve.ready" || wl.Opts["timeout"] != "5s" {
		t.Fatalf("wait-log mangled: %+v", wl)
	}
	cmp := sc.Stages[1].Actions[1]
	if len(cmp.Args) != 4 || cmp.Args[2] != ">=" {
		t.Fatalf("assert-stats mangled: %+v", cmp)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing name", "node n0\nstage s\n    start n0\n", "missing scenario"},
		{"no nodes", "scenario x\nstage s\n    sleep 1s\n", "declares no nodes"},
		{"no stages", "scenario x\nnode n0\n", "declares no stages"},
		{"unknown directive", "scenario x\nbogus y\n", `unknown directive "bogus"`},
		{"unknown action", "scenario x\nnode n0\nstage s\n    frobnicate n0\n", `unknown action "frobnicate"`},
		{"unknown node ref", "scenario x\nnode n0\nstage s\n    start n9\n", `unknown node "n9"`},
		{"duplicate node", "scenario x\nnode n0\nnode n0\nstage s\n    start n0\n", "duplicate node"},
		{"duplicate id", "scenario x\nnode a id=0\nnode b id=0\nstage s\n    start a\n", "reuses id 0"},
		{"gap in ids", "scenario x\nnode a id=0\nnode b id=2\nstage s\n    start a\n", "missing 1"},
		{"replication too high", "scenario x\nreplication 3\nnode n0\nstage s\n    start n0\n", "replication 3 exceeds"},
		{"orphan indent", "scenario x\n    stray line\n", "outside a vars or stage block"},
		{"bad resync", "scenario x\nnode n0 resync=sideways\nstage s\n    start n0\n", "bad resync mode"},
		{"arity", "scenario x\nnode n0\nstage s\n    wait-log n0\n", "at least 2"},
		{"missing required opt", "scenario x\nnode n0\nstage s\n    distribute blocks=1\n", "requires the via= option"},
		{"duplicate opt", "scenario x\nnode n0\nstage s\n    start n0 timeout=1s timeout=2s\n", "duplicate option"},
		{"bad gateway value", "scenario x\nnode n0 gateway=perhaps\nstage s\n    start n0\n", "bad gateway value"},
		{"retrieve no source", "scenario x\nnode n0\nstage s\n    assert-retrieve block=0\n", "exactly one of via= or gateway="},
		{"retrieve both sources", "scenario x\nnode n0\nstage s\n    assert-retrieve via=n0 gateway=n0\n", "exactly one of via= or gateway="},
		{"retrieve unknown gateway", "scenario x\nnode n0\nstage s\n    assert-retrieve gateway=n9\n", `unknown node "n9"`},
	}
	for _, c := range cases {
		_, err := ParseScenario(c.src, c.name+".cont")
		if err == nil {
			t.Errorf("%s: parse accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestParseShippedScenarios(t *testing.T) {
	for _, f := range []string{
		"../../scenarios/bootstrap.cont",
		"../../scenarios/crash-restart.cont",
		"../../scenarios/membership.cont",
		"../../scenarios/byzantine.cont",
		"../../scenarios/gateway.cont",
		"testdata/broken.cont",
	} {
		if _, err := ParseScenarioFile(f); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

func TestExpandTemplate(t *testing.T) {
	vars := map[string]string{
		"a":    "1",
		"b":    "${a}${a}",
		"loop": "${loop}",
	}
	lookup := func(name string) (string, bool) {
		v, ok := vars[name]
		return v, ok
	}
	if got, err := expandTemplate("x=${a} y=${b}", lookup); err != nil || got != "x=1 y=11" {
		t.Fatalf("expand: %q, %v", got, err)
	}
	if got, err := expandTemplate("plain", lookup); err != nil || got != "plain" {
		t.Fatalf("no-op expand: %q, %v", got, err)
	}
	if _, err := expandTemplate("${missing}", lookup); err == nil {
		t.Fatal("unknown variable accepted")
	}
	if _, err := expandTemplate("${loop}", lookup); err == nil {
		t.Fatal("expansion loop accepted")
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(" a, b ,,c "); len(got) != 3 || got[1] != "b" {
		t.Fatalf("splitList: %v", got)
	}
	if got := splitList(""); got != nil {
		t.Fatalf("empty list: %v", got)
	}
}

func TestCompareInt(t *testing.T) {
	cases := []struct {
		got  int64
		op   string
		want int64
		res  bool
	}{
		{1, "==", 1, true}, {1, "!=", 1, false}, {1, "<", 2, true},
		{2, "<=", 2, true}, {3, ">", 2, true}, {2, ">=", 3, false},
	}
	for _, c := range cases {
		ok, err := compareInt(c.got, c.op, c.want)
		if err != nil || ok != c.res {
			t.Fatalf("compareInt(%d %s %d) = %v, %v", c.got, c.op, c.want, ok, err)
		}
	}
	if _, err := compareInt(1, "~", 1); err == nil {
		t.Fatal("unknown operator accepted")
	}
}
