package contest

import (
	"fmt"
	"regexp"
	"strconv"
	"time"

	"icistrategy/internal/chain"
	"icistrategy/internal/gateway"
	"icistrategy/internal/netx"
	"icistrategy/internal/workload"
)

// Defaults for the distribute action's workload.
const (
	defaultBlocks       = 2
	defaultTxPerBlock   = 20
	defaultSeed         = 42
	workloadAccounts    = 50
	workloadPayloadSize = 32
	chainGasLimit       = 10_000
)

// exec runs one scripted action after template expansion.
func (x *run) exec(raw *Action) error {
	a, err := x.expandAction(raw)
	if err != nil {
		return err
	}
	switch a.Verb {
	case "start", "restart":
		timeout, err := optDuration(a, "timeout", defaultActionWait)
		if err != nil {
			return err
		}
		for _, name := range a.Args {
			n, err := x.lookupNode(name)
			if err != nil {
				return err
			}
			if err := x.startNode(n, timeout); err != nil {
				return err
			}
		}
		return nil
	case "stop":
		timeout, err := optDuration(a, "timeout", defaultActionWait)
		if err != nil {
			return err
		}
		for _, name := range a.Args {
			n, err := x.lookupNode(name)
			if err != nil {
				return err
			}
			if err := x.stopNode(n, timeout); err != nil {
				return err
			}
		}
		return nil
	case "kill":
		for _, name := range a.Args {
			n, err := x.lookupNode(name)
			if err != nil {
				return err
			}
			if err := x.killNode(n); err != nil {
				return err
			}
		}
		return nil
	case "wait-log":
		n, re, err := x.logTarget(a)
		if err != nil {
			return err
		}
		timeout, err := optDuration(a, "timeout", defaultActionWait)
		if err != nil {
			return err
		}
		line, err := n.stderr.WaitMatch(re, x.within(timeout))
		if err != nil {
			return fmt.Errorf("node %s: %w", n.def.Name, err)
		}
		fmt.Fprintf(x.out, "  wait-log %s matched: %s\n", n.def.Name, line)
		return nil
	case "assert-log":
		n, re, err := x.logTarget(a)
		if err != nil {
			return err
		}
		if _, ok := n.stderr.Match(re); !ok {
			return fmt.Errorf("node %s: no log line matches %q", n.def.Name, re)
		}
		return nil
	case "sleep":
		d, err := time.ParseDuration(a.Args[0])
		if err != nil {
			return fmt.Errorf("sleep: %w", err)
		}
		if until := time.Until(x.deadline); d > until {
			d = until
		}
		time.Sleep(d)
		return nil
	case "distribute":
		return x.distribute(a)
	case "bootstrap-member":
		return x.bootstrapMember(a)
	case "retire-member":
		return x.churnMember(a, "retire")
	case "rejoin-member":
		return x.churnMember(a, "rejoin")
	case "inject-fault":
		return x.injectFault(a)
	case "assert-stats":
		return x.assertStats(a)
	case "assert-retrieve":
		return x.assertRetrieve(a)
	case "assert-down":
		for _, name := range a.Args {
			if err := x.assertLiveness(name, false); err != nil {
				return err
			}
		}
		return nil
	case "assert-up":
		for _, name := range a.Args {
			if err := x.assertLiveness(name, true); err != nil {
				return err
			}
		}
		return nil
	default:
		// Unreachable for parsed scenarios; guards hand-built Actions.
		return fmt.Errorf("unknown action %q", a.Verb)
	}
}

// logTarget resolves the node and compiled pattern of a *-log action.
func (x *run) logTarget(a *Action) (*node, *regexp.Regexp, error) {
	n, err := x.lookupNode(a.Args[0])
	if err != nil {
		return nil, nil, err
	}
	if n.stderr == nil {
		return nil, nil, fmt.Errorf("node %s was never started", n.def.Name)
	}
	re, err := regexp.Compile(a.Args[1])
	if err != nil {
		return nil, nil, fmt.Errorf("bad pattern %q: %w", a.Args[1], err)
	}
	return n, re, nil
}

// viaCluster builds a cluster client over the nodes named in via=, in the
// listed order. For distribute, via must list the original membership in
// placement-id order — the placement seed-to-owner mapping depends on it.
func (x *run) viaCluster(a *Action) (*netx.Cluster, error) {
	names := splitList(a.Opts["via"])
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: empty via= list", a.Verb)
	}
	addrs := make([]string, len(names))
	for i, nm := range names {
		n, err := x.lookupNode(nm)
		if err != nil {
			return nil, err
		}
		addrs[i] = n.addr
	}
	repl := x.sc.Replication
	if repl > len(addrs) {
		repl = len(addrs)
	}
	return netx.NewCluster(addrs, repl)
}

// distribute generates workload blocks and stores them across the cluster
// with the production placement path. Successive distributes extend the
// same chain, and every distributed block is retained for assert-retrieve.
func (x *run) distribute(a *Action) error {
	blocks, err := optInt(a, "blocks", defaultBlocks)
	if err != nil {
		return err
	}
	tx, err := optInt(a, "tx", defaultTxPerBlock)
	if err != nil {
		return err
	}
	seed, err := optInt(a, "seed", defaultSeed)
	if err != nil {
		return err
	}
	if x.builder == nil {
		gen, err := workload.NewGenerator(workload.Config{
			Accounts:     workloadAccounts,
			PayloadBytes: workloadPayloadSize,
			Seed:         uint64(seed),
		})
		if err != nil {
			return err
		}
		x.builder, err = workload.NewChainBuilder(gen, chainGasLimit)
		if err != nil {
			return err
		}
	}
	cl, err := x.viaCluster(a)
	if err != nil {
		return err
	}
	defer cl.Close()
	for i := 0; i < blocks; i++ {
		b, err := x.builder.NextBlock(tx)
		if err != nil {
			return err
		}
		if err := cl.DistributeBlock(b); err != nil {
			return fmt.Errorf("distribute block %d: %w", len(x.blocks), err)
		}
		x.blocks = append(x.blocks, b)
	}
	fmt.Fprintf(x.out, "  distributed %d blocks (%d total) via %s\n",
		blocks, len(x.blocks), a.Opts["via"])
	return nil
}

// bootstrapMember drives the cluster-side membership growth: the via=
// members are the existing cluster, node= the address being added, and the
// production netx bootstrap path moves every chunk the newcomer owns under
// the grown membership.
func (x *run) bootstrapMember(a *Action) error {
	target, err := x.lookupNode(a.Opts["node"])
	if err != nil {
		return err
	}
	min, err := optInt(a, "min", 1)
	if err != nil {
		return err
	}
	cl, err := x.viaCluster(a)
	if err != nil {
		return err
	}
	defer cl.Close()
	n, err := cl.BootstrapNewMember(target.addr)
	if err != nil {
		return fmt.Errorf("bootstrap %s: %w", target.def.Name, err)
	}
	if n < min {
		return fmt.Errorf("bootstrap %s moved %d chunks, want at least %d", target.def.Name, n, min)
	}
	fmt.Fprintf(x.out, "  bootstrapped %s with %d chunks\n", target.def.Name, n)
	return nil
}

// churnMember drives graceful membership churn over the production netx
// paths. via= must list the full membership including the churning node, in
// placement-id order. retire hands the node's displaced chunks to their new
// owners and publishes the shrunk epoch; rejoin re-provisions the returning
// node against each block's write epoch and republishes the full map.
func (x *run) churnMember(a *Action, kind string) error {
	target, err := x.lookupNode(a.Opts["node"])
	if err != nil {
		return err
	}
	min, err := optInt(a, "min", 1)
	if err != nil {
		return err
	}
	cl, err := x.viaCluster(a)
	if err != nil {
		return err
	}
	defer cl.Close()
	var n int
	if kind == "retire" {
		n, err = cl.RetireMember(target.addr)
	} else {
		n, err = cl.RejoinMember(target.addr)
	}
	if err != nil {
		return fmt.Errorf("%s %s: %w", a.Verb, target.def.Name, err)
	}
	if n < min {
		return fmt.Errorf("%s %s moved %d chunks, want at least %d", a.Verb, target.def.Name, n, min)
	}
	past := "retired"
	if kind == "rejoin" {
		past = "rejoined"
	}
	fmt.Fprintf(x.out, "  %s %s, %d chunks moved\n", past, target.def.Name, n)
	return nil
}

// injectFault sends a chaos control op to one node (which must run with
// chaos=true). Kinds map onto the netx fault vocabulary: corrupt-stored
// flips a byte in every stored chunk; drop/delay/corrupt-wire install a
// request-level fault config; clear removes it.
func (x *run) injectFault(a *Action) error {
	n, err := x.lookupNode(a.Args[0])
	if err != nil {
		return err
	}
	c, err := netx.Dial(n.addr)
	if err != nil {
		return fmt.Errorf("inject-fault %s: %w", n.def.Name, err)
	}
	defer c.Close()
	var req netx.FaultReq
	kind := a.Opts["kind"]
	switch kind {
	case "corrupt-stored":
		req.CorruptStored = true
	case "drop":
		rate, err := optFloat(a, "rate", 1)
		if err != nil {
			return err
		}
		seed, err := optInt(a, "seed", 1)
		if err != nil {
			return err
		}
		req.Set = &netx.FaultConfig{DropRate: rate, Seed: uint64(seed)}
	case "delay":
		d, err := optDuration(a, "delay", 20*time.Millisecond)
		if err != nil {
			return err
		}
		req.Set = &netx.FaultConfig{Delay: d}
	case "corrupt-wire":
		rate, err := optFloat(a, "rate", 1)
		if err != nil {
			return err
		}
		seed, err := optInt(a, "seed", 1)
		if err != nil {
			return err
		}
		req.Set = &netx.FaultConfig{CorruptRate: rate, Seed: uint64(seed)}
	case "clear":
		req.Set = &netx.FaultConfig{}
	default:
		return fmt.Errorf("inject-fault: unknown kind %q", kind)
	}
	resp, err := c.InjectFault(req)
	if err != nil {
		return fmt.Errorf("inject-fault %s %s: %w", n.def.Name, kind, err)
	}
	if kind == "corrupt-stored" {
		min, err := optInt(a, "min", 1)
		if err != nil {
			return err
		}
		if resp.Corrupted < min {
			return fmt.Errorf("inject-fault %s corrupted %d chunks, want at least %d",
				n.def.Name, resp.Corrupted, min)
		}
	}
	fmt.Fprintf(x.out, "  injected %s into %s (corrupted=%d)\n", kind, n.def.Name, resp.Corrupted)
	return nil
}

// assertStats fetches one node's storage accounting and compares a field
// against a literal: assert-stats NODE FIELD OP VALUE.
func (x *run) assertStats(a *Action) error {
	n, err := x.lookupNode(a.Args[0])
	if err != nil {
		return err
	}
	field, op, valStr := a.Args[1], a.Args[2], a.Args[3]
	want, err := strconv.ParseInt(valStr, 10, 64)
	if err != nil {
		return fmt.Errorf("assert-stats: bad value %q: %w", valStr, err)
	}
	c, err := netx.Dial(n.addr)
	if err != nil {
		return fmt.Errorf("assert-stats %s: %w", n.def.Name, err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		return fmt.Errorf("assert-stats %s: %w", n.def.Name, err)
	}
	var got int64
	switch field {
	case "headers":
		got = st.HeaderCount
	case "chunks":
		got = st.ChunkCount
	case "header-bytes":
		got = st.HeaderBytes
	case "chunk-bytes":
		got = st.ChunkBytes
	default:
		return fmt.Errorf("assert-stats: unknown field %q", field)
	}
	ok, err := compareInt(got, op, want)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("assert-stats %s: %s = %d, want %s %d", n.def.Name, field, got, op, want)
	}
	fmt.Fprintf(x.out, "  assert-stats %s: %s %s %d holds (got %d)\n", n.def.Name, field, op, want, got)
	return nil
}

// assertRetrieve reassembles a previously distributed block, requiring
// success or (expect=fail) a verification-level refusal. With via= it reads
// directly through the member cluster path; with gateway=NODE it reads
// through that node's client gateway (which must run with gateway=true),
// also fetching and verifying a light-client proof for one transaction. A
// retrieved block must carry exactly the transactions the original did.
func (x *run) assertRetrieve(a *Action) error {
	idx, err := optInt(a, "block", 0)
	if err != nil {
		return err
	}
	if idx < 0 || idx >= len(x.blocks) {
		return fmt.Errorf("assert-retrieve: block %d not distributed (have %d)", idx, len(x.blocks))
	}
	expect := a.Opts["expect"]
	if expect == "" {
		expect = "ok"
	}
	orig := x.blocks[idx]

	var got *chain.Block
	var via string
	if gwName := a.Opts["gateway"]; gwName != "" {
		via = "gateway " + gwName
		got, err = x.gatewayRetrieve(gwName, orig, expect == "ok")
	} else {
		via = a.Opts["via"]
		var cl *netx.Cluster
		cl, err = x.viaCluster(a)
		if err != nil {
			return err
		}
		defer cl.Close()
		got, err = cl.RetrieveBlock(orig.Header)
	}
	switch expect {
	case "ok":
		if err != nil {
			return fmt.Errorf("assert-retrieve block %d: %w", idx, err)
		}
		if len(got.Txs) != len(orig.Txs) {
			return fmt.Errorf("assert-retrieve block %d: %d txs, want %d", idx, len(got.Txs), len(orig.Txs))
		}
		fmt.Fprintf(x.out, "  retrieved block %d (%d txs, verified) via %s\n",
			idx, len(got.Txs), via)
		return nil
	case "fail":
		if err == nil {
			return fmt.Errorf("assert-retrieve block %d: unexpectedly succeeded", idx)
		}
		fmt.Fprintf(x.out, "  retrieve of block %d failed as expected: %v\n", idx, err)
		return nil
	default:
		return fmt.Errorf("assert-retrieve: expect must be ok or fail, got %q", expect)
	}
}

// gatewayRetrieve reads one block through a node's client gateway; when the
// read is expected to succeed it also round-trips a Merkle proof for the
// block's middle transaction (the gateway client re-verifies it).
func (x *run) gatewayRetrieve(name string, orig *chain.Block, withProof bool) (*chain.Block, error) {
	n, err := x.lookupNode(name)
	if err != nil {
		return nil, err
	}
	if n.gwAddr == "" {
		return nil, fmt.Errorf("node %s does not declare gateway=true", name)
	}
	c, err := gateway.DialClient(n.gwAddr)
	if err != nil {
		return nil, fmt.Errorf("dial gateway %s: %w", name, err)
	}
	defer c.Close()
	got, err := c.GetBlock(orig.Hash())
	if err != nil {
		return nil, err
	}
	if !withProof || len(orig.Txs) == 0 {
		return got, nil
	}
	tx := orig.Txs[len(orig.Txs)/2]
	p, err := c.GetTxProof(orig.Hash(), tx.ID())
	if err != nil {
		return nil, fmt.Errorf("gateway proof: %w", err)
	}
	if p.Tx.ID() != tx.ID() {
		return nil, fmt.Errorf("gateway proof: proved tx %s, want %s", p.Tx.ID().Short(), tx.ID().Short())
	}
	return got, nil
}

// assertLiveness checks whether a node's listener answers a stats
// round-trip, matching the assert-up / assert-down verbs.
func (x *run) assertLiveness(name string, wantUp bool) error {
	n, err := x.lookupNode(name)
	if err != nil {
		return err
	}
	c, err := netx.Dial(n.addr)
	if err == nil {
		defer c.Close()
		_, err = c.Stats()
	}
	up := err == nil
	if up != wantUp {
		if wantUp {
			return fmt.Errorf("assert-up %s: not serving: %v", n.def.Name, err)
		}
		return fmt.Errorf("assert-down %s: still serving", n.def.Name)
	}
	return nil
}

// Option parsing helpers: each reads a typed key=value with a default.

func optDuration(a *Action, key string, def time.Duration) (time.Duration, error) {
	v, ok := a.Opts[key]
	if !ok {
		return def, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("%s: bad %s %q: %w", a.Verb, key, v, err)
	}
	return d, nil
}

func optInt(a *Action, key string, def int) (int, error) {
	v, ok := a.Opts[key]
	if !ok {
		return def, nil
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s: bad %s %q: %w", a.Verb, key, v, err)
	}
	return i, nil
}

func optFloat(a *Action, key string, def float64) (float64, error) {
	v, ok := a.Opts[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: bad %s %q: %w", a.Verb, key, v, err)
	}
	return f, nil
}

// compareInt evaluates `got OP want` for the assert-stats operators.
func compareInt(got int64, op string, want int64) (bool, error) {
	switch op {
	case "==":
		return got == want, nil
	case "!=":
		return got != want, nil
	case "<":
		return got < want, nil
	case "<=":
		return got <= want, nil
	case ">":
		return got > want, nil
	case ">=":
		return got >= want, nil
	default:
		return false, fmt.Errorf("assert-stats: unknown operator %q", op)
	}
}
