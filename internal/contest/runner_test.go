package contest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeIcinet is a stand-in for the real binary: it honors just enough of
// the -serve contract (readiness line, stderr events, clean SIGTERM exit)
// for fast process-lifecycle tests that skip the network actions.
const fakeIcinet = `#!/bin/sh
addr=""
id=0
state=""
while [ $# -gt 0 ]; do
  case "$1" in
    -listen) addr="$2"; shift ;;
    -id) id="$2"; shift ;;
    -state) state="$2"; shift ;;
  esac
  shift
done
trap 'echo "event=serve.stop" >&2; exit 0' TERM INT
echo "ICINET READY addr=$addr id=$id"
echo "event=serve.ready addr=$addr id=$id" >&2
if [ -n "$state" ] && [ -f "$state/fake-marker" ]; then
  echo "event=fake.restarted" >&2
else
  [ -n "$state" ] && : > "$state/fake-marker"
  echo "event=fake.first" >&2
fi
while :; do sleep 0.1; done
`

func writeFakeIcinet(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fake-icinet")
	if err := os.WriteFile(path, []byte(fakeIcinet), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func runWith(t *testing.T, bin, src string) (string, error) {
	t.Helper()
	sc, err := ParseScenario(src, "inline.cont")
	if err != nil {
		t.Fatal(err)
	}
	var sb safeBuilder
	r := &Runner{IcinetPath: bin, Out: &sb, Timeout: 30 * time.Second}
	err = r.Run(sc)
	return sb.String(), err
}

func TestRunnerLifecycleAgainstFakeBinary(t *testing.T) {
	bin := writeFakeIcinet(t)
	out, err := runWith(t, bin, `
scenario lifecycle
replication 1

node n0
node n1

stage up
    start n0 n1
    wait-log n0 event=serve.ready timeout=5s
    assert-log n1 addr=${node.n1.addr}

stage churn
    kill n1
    restart n1
    wait-log n1 event=serve.ready timeout=5s

stage down
    stop n0 n1
`)
	if err != nil {
		t.Fatalf("scenario failed: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out, "scenario lifecycle: PASS") {
		t.Fatalf("missing PASS line:\n%s", out)
	}
	if !strings.Contains(out, "run=2") {
		t.Fatalf("restart did not record a second run:\n%s", out)
	}
}

func TestRunnerWaitLogTimeoutFails(t *testing.T) {
	bin := writeFakeIcinet(t)
	out, err := runWith(t, bin, `
scenario waits
node n0
stage s
    start n0
    wait-log n0 event=never-emitted timeout=200ms
`)
	if err == nil {
		t.Fatalf("missing log line accepted:\n%s", out)
	}
	if !strings.Contains(err.Error(), "stage s") || !strings.Contains(err.Error(), "wait-log") {
		t.Fatalf("error lacks stage/action context: %v", err)
	}
}

// Log conditions against a freshly restarted process must NOT be satisfied
// by lines from the previous run: each start attaches a new watcher.
func TestRunnerLogConditionsScopedToCurrentRun(t *testing.T) {
	bin := writeFakeIcinet(t)
	// Positive: the restart-only marker is reachable after restart.
	if out, err := runWith(t, bin, `
scenario runscope
node n0
stage s
    start n0
    wait-log n0 event=fake.first timeout=5s
    kill n0
    restart n0
    wait-log n0 event=fake.restarted timeout=5s
    stop n0
`); err != nil {
		t.Fatalf("restart-scoped wait failed: %v\n%s", err, out)
	}
	// Negative: the first run's marker is gone from the restarted run's
	// stream, so asserting it must fail.
	_, err := runWith(t, bin, `
scenario runscope-neg
node n0
stage s
    start n0
    wait-log n0 event=fake.first timeout=5s
    kill n0
    restart n0
    wait-log n0 event=fake.restarted timeout=5s
    assert-log n0 event=fake.first
`)
	if err == nil || !strings.Contains(err.Error(), "no log line matches") {
		t.Fatalf("previous run's line leaked into the restarted watcher: %v", err)
	}
}

func TestRunnerRejectsDoubleStartAndStopOfStopped(t *testing.T) {
	bin := writeFakeIcinet(t)
	if _, err := runWith(t, bin, `
scenario dup
node n0
stage s
    start n0
    start n0
`); err == nil || !strings.Contains(err.Error(), "already running") {
		t.Fatalf("double start: %v", err)
	}
	if _, err := runWith(t, bin, `
scenario dead
node n0
stage s
    stop n0
`); err == nil || !strings.Contains(err.Error(), "not running") {
		t.Fatalf("stop of stopped node: %v", err)
	}
}

// A binary that ignores SIGTERM must fail the stop action (and teardown
// must still reap it via SIGKILL — no leaked process hangs the test).
func TestRunnerStopDetectsUncleanExit(t *testing.T) {
	stubborn := filepath.Join(t.TempDir(), "stubborn")
	script := `#!/bin/sh
trap '' TERM
echo "ICINET READY addr=$3 id=0"
while :; do sleep 0.1; done
`
	// $3 is the -listen value given the runner's fixed argument order.
	if err := os.WriteFile(stubborn, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	_, err := runWith(t, stubborn, `
scenario stubborn
node n0
stage s
    start n0
    stop n0 timeout=300ms
`)
	if err == nil || !strings.Contains(err.Error(), "ignored SIGTERM") {
		t.Fatalf("unclean stop: %v", err)
	}
}

func TestRunnerStartFailureReportsExit(t *testing.T) {
	crash := filepath.Join(t.TempDir(), "crash")
	script := "#!/bin/sh\necho boom >&2\nexit 3\n"
	if err := os.WriteFile(crash, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	_, err := runWith(t, crash, `
scenario crashy
node n0
stage s
    start n0
`)
	if err == nil || !strings.Contains(err.Error(), "exited during startup") {
		t.Fatalf("crash at startup: %v", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error lacks the process stderr: %v", err)
	}
}
