package contest

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// icinetBin is the real binary built once by TestMain for the integration
// scenarios; empty in -short mode, where those tests skip.
var icinetBin string

func TestMain(m *testing.M) {
	flag.Parse()
	if testing.Short() {
		os.Exit(m.Run())
	}
	dir, err := os.MkdirTemp("", "contest-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "contest: temp dir:", err)
		os.Exit(1)
	}
	icinetBin = filepath.Join(dir, "icinet")
	cmd := exec.Command("go", "build", "-o", icinetBin, "icistrategy/cmd/icinet")
	cmd.Dir = "../.." // package dir -> module root
	if out, err := cmd.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "contest: build icinet: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runScenario executes one scenario file against the real binary; the full
// narration is attached to the test log on failure.
func runScenario(t *testing.T, path string) {
	t.Helper()
	if testing.Short() {
		t.Skip("integration scenario: real multi-process cluster, skipped in -short mode")
	}
	sc, err := ParseScenarioFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sb safeBuilder
	r := &Runner{IcinetPath: icinetBin, Out: &sb, Timeout: 3 * time.Minute}
	if err := r.Run(sc); err != nil {
		t.Fatalf("%v\nnarration:\n%s", err, sb.String())
	}
	if testing.Verbose() {
		t.Log(sb.String())
	}
}

func TestScenarioBootstrap(t *testing.T)    { runScenario(t, "../../scenarios/bootstrap.cont") }
func TestScenarioCrashRestart(t *testing.T) { runScenario(t, "../../scenarios/crash-restart.cont") }
func TestScenarioMembership(t *testing.T)   { runScenario(t, "../../scenarios/membership.cont") }
func TestScenarioByzantine(t *testing.T)    { runScenario(t, "../../scenarios/byzantine.cont") }
func TestScenarioGateway(t *testing.T)      { runScenario(t, "../../scenarios/gateway.cont") }
func TestScenarioChurn(t *testing.T)        { runScenario(t, "../../scenarios/churn.cont") }

// TestBrokenScenarioFails is the harness's negative self-test: a scenario
// with an impossible assertion MUST fail, and the failure must carry the
// assertion, its stage, and its source line.
func TestBrokenScenarioFails(t *testing.T) {
	if testing.Short() {
		t.Skip("integration scenario: real multi-process cluster, skipped in -short mode")
	}
	sc, err := ParseScenarioFile("testdata/broken.cont")
	if err != nil {
		t.Fatal(err)
	}
	var sb safeBuilder
	r := &Runner{IcinetPath: icinetBin, Out: &sb, Timeout: time.Minute}
	err = r.Run(sc)
	if err == nil {
		t.Fatalf("broken scenario passed — the harness cannot fail\nnarration:\n%s", sb.String())
	}
	for _, want := range []string{"assert-stats", "stage seed", "broken.cont:13", "99999"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("failure %q does not mention %q", err, want)
		}
	}
}
