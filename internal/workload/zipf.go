package workload

import (
	"math"
	"sort"

	"icistrategy/internal/blockcrypto"
)

// zipfCDF builds the normalized cumulative distribution of a Zipf law with
// exponent s over n ranks: cdf[i] is the probability of drawing a rank
// <= i. The final entry is exactly 1.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	var total float64
	for i := range cdf {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

// sampleCDF inverts a cumulative distribution at target via binary search:
// the smallest index whose cumulative mass covers target.
func sampleCDF(cdf []float64, target float64) int {
	i := sort.SearchFloat64s(cdf, target)
	if i >= len(cdf) {
		i = len(cdf) - 1 // target==1 exactly; the last rank owns it
	}
	return i
}

// ZipfPicker samples indexes in [0, n) with Zipf(s) popularity from its own
// seeded RNG — the key-popularity model for gateway load generation, shared
// with the sender-popularity law in Generator. s == 0 degenerates to
// uniform.
type ZipfPicker struct {
	cdf []float64
	rng *blockcrypto.RNG
	n   int
}

// NewZipfPicker builds a picker over n indexes with exponent s.
func NewZipfPicker(n int, s float64, seed uint64) (*ZipfPicker, error) {
	if n <= 0 || s < 0 {
		return nil, ErrBadParams
	}
	p := &ZipfPicker{n: n, rng: blockcrypto.NewRNG(seed).Fork("zipf-picker")}
	if s > 0 {
		p.cdf = zipfCDF(n, s)
	}
	return p, nil
}

// Pick samples one index.
func (p *ZipfPicker) Pick() int {
	if p.cdf == nil {
		return p.rng.Intn(p.n)
	}
	return sampleCDF(p.cdf, p.rng.Float64())
}
