// Package workload generates the synthetic transaction streams the
// experiments run: seeded account populations, uniform or Zipfian sender
// popularity, Bitcoin-like transaction sizes, and a block packer that
// respects the ledger's nonce discipline. Identical seeds produce identical
// workloads, so every experiment is reproducible.
package workload

import (
	"errors"
	"fmt"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
)

// Generator errors.
var (
	ErrNoAccounts = errors.New("workload: need at least two accounts")
	ErrBadParams  = errors.New("workload: invalid parameters")
)

// Config parameterizes a workload.
type Config struct {
	// Accounts is the size of the account population (>= 2).
	Accounts int
	// PayloadBytes pads every transaction to a Bitcoin-like size
	// (a signed transfer is ~210 bytes of framing; 40 bytes of payload
	// lands at the classic ~250-byte average).
	PayloadBytes int
	// ZipfS is the Zipf exponent for sender selection; 0 means uniform.
	ZipfS float64
	// Seed drives account keys and all sampling.
	Seed uint64
}

// Generator produces signed, nonce-correct transactions over a fixed
// account population.
type Generator struct {
	cfg    Config
	keys   []blockcrypto.KeyPair
	ids    []chain.AccountID
	nonces []uint64
	rng    *blockcrypto.RNG
	zipf   []float64 // cumulative distribution when ZipfS > 0
}

// NewGenerator builds a workload generator and the funded account set.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Accounts < 2 {
		return nil, ErrNoAccounts
	}
	if cfg.PayloadBytes < 0 || cfg.ZipfS < 0 {
		return nil, ErrBadParams
	}
	g := &Generator{
		cfg:    cfg,
		keys:   make([]blockcrypto.KeyPair, cfg.Accounts),
		ids:    make([]chain.AccountID, cfg.Accounts),
		nonces: make([]uint64, cfg.Accounts),
		rng:    blockcrypto.NewRNG(cfg.Seed).Fork("workload"),
	}
	for i := range g.keys {
		g.keys[i] = blockcrypto.DeriveKeyPair(cfg.Seed^0xACC0FFEE, uint64(i))
		g.ids[i] = blockcrypto.PublicKeyHash(g.keys[i].Public)
	}
	if cfg.ZipfS > 0 {
		g.zipf = zipfCDF(cfg.Accounts, cfg.ZipfS)
	}
	return g, nil
}

// Accounts returns the account IDs of the population.
func (g *Generator) Accounts() []chain.AccountID {
	return append([]chain.AccountID(nil), g.ids...)
}

// FundAll credits every account on the ledger with the given balance;
// call once before applying generated blocks.
func (g *Generator) FundAll(l *chain.Ledger, balance uint64) {
	for _, id := range g.ids {
		l.Credit(id, balance)
	}
}

// pickSender samples a sender index by the configured popularity law.
func (g *Generator) pickSender() int {
	if g.zipf == nil {
		return g.rng.Intn(len(g.ids))
	}
	return sampleCDF(g.zipf, g.rng.Float64())
}

// NextTx produces one signed transaction with correct nonce sequencing.
func (g *Generator) NextTx() *chain.Transaction {
	from := g.pickSender()
	to := g.rng.Intn(len(g.ids) - 1)
	if to >= from {
		to++
	}
	var payload []byte
	if g.cfg.PayloadBytes > 0 {
		payload = make([]byte, g.cfg.PayloadBytes)
		for i := range payload {
			payload[i] = byte(g.rng.Uint64())
		}
	}
	tx := &chain.Transaction{
		From:    g.ids[from],
		To:      g.ids[to],
		Amount:  uint64(g.rng.Intn(100)) + 1,
		Nonce:   g.nonces[from],
		Fee:     1,
		Payload: payload,
	}
	g.nonces[from]++
	tx.Sign(g.keys[from])
	return tx
}

// NextTxs produces n transactions.
func (g *Generator) NextTxs(n int) []*chain.Transaction {
	out := make([]*chain.Transaction, n)
	for i := range out {
		out[i] = g.NextTx()
	}
	return out
}

// TxSize returns the encoded size of this workload's transactions (all
// transactions of a generator encode to the same size because payload
// length is fixed).
func (g *Generator) TxSize() int {
	probe := &chain.Transaction{
		From:    g.ids[0],
		To:      g.ids[1],
		Payload: make([]byte, g.cfg.PayloadBytes),
	}
	probe.Sign(g.keys[0])
	return probe.EncodedSize()
}

// ChainBuilder packs generated transactions into a valid chain of blocks,
// tracking the tip so blocks always link.
type ChainBuilder struct {
	gen      *Generator
	tip      *chain.Header
	height   uint64
	interval uint64 // virtual ms between blocks
}

// NewChainBuilder wraps a generator; interval is the block spacing in
// virtual milliseconds (Bitcoin: 600 000, experiments typically use 10 000).
func NewChainBuilder(gen *Generator, intervalMillis uint64) (*ChainBuilder, error) {
	if intervalMillis == 0 {
		return nil, fmt.Errorf("%w: zero block interval", ErrBadParams)
	}
	return &ChainBuilder{gen: gen, interval: intervalMillis}, nil
}

// NextBlock packs txPerBlock fresh transactions into the next block.
func (b *ChainBuilder) NextBlock(txPerBlock int) (*chain.Block, error) {
	prev := blockcrypto.ZeroHash
	if b.tip != nil {
		prev = b.tip.Hash()
	}
	blk, err := chain.NewBlock(b.height, prev, b.gen.NextTxs(txPerBlock), b.height*b.interval, uint64(b.height%97))
	if err != nil {
		return nil, err
	}
	hdr := blk.Header
	b.tip = &hdr
	b.height++
	return blk, nil
}

// Height returns how many blocks have been built.
func (b *ChainBuilder) Height() uint64 { return b.height }
