package workload

import (
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
)

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Config{Accounts: 1}); err == nil {
		t.Fatal("one account accepted")
	}
	if _, err := NewGenerator(Config{Accounts: 5, PayloadBytes: -1}); err == nil {
		t.Fatal("negative payload accepted")
	}
	if _, err := NewGenerator(Config{Accounts: 5, ZipfS: -0.5}); err == nil {
		t.Fatal("negative zipf accepted")
	}
}

func TestGeneratedTxsAreValid(t *testing.T) {
	g, err := NewGenerator(Config{Accounts: 20, PayloadBytes: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tx := g.NextTx()
		if err := tx.VerifySignature(); err != nil {
			t.Fatalf("tx %d invalid: %v", i, err)
		}
	}
}

func TestGeneratedChainApplies(t *testing.T) {
	// The whole pipeline: generated blocks must apply cleanly to a ledger.
	g, err := NewGenerator(Config{Accounts: 30, PayloadBytes: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	l := chain.NewLedger()
	g.FundAll(l, 1_000_000)
	cb, err := NewChainBuilder(g, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		b, err := cb.NextBlock(25)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.ApplyBlock(b); err != nil {
			t.Fatalf("block %d rejected by ledger: %v", i, err)
		}
	}
	if cb.Height() != 20 || l.Height() != 20 {
		t.Fatalf("heights: builder %d, ledger %d", cb.Height(), l.Height())
	}
}

func TestUniformTxSizes(t *testing.T) {
	g, err := NewGenerator(Config{Accounts: 10, PayloadBytes: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := g.TxSize()
	for i := 0; i < 50; i++ {
		if got := g.NextTx().EncodedSize(); got != want {
			t.Fatalf("tx %d encodes to %d bytes, TxSize says %d", i, got, want)
		}
	}
}

func TestDeterministicWorkload(t *testing.T) {
	build := func() blockcrypto.Hash {
		g, err := NewGenerator(Config{Accounts: 10, PayloadBytes: 8, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		txs := g.NextTxs(50)
		tree, err := chain.TxMerkleTree(txs)
		if err != nil {
			t.Fatal(err)
		}
		return tree.Root()
	}
	if build() != build() {
		t.Fatal("identical seeds produced different workloads")
	}
}

func TestZipfSkewsSenders(t *testing.T) {
	uniform, err := NewGenerator(Config{Accounts: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	zipf, err := NewGenerator(Config{Accounts: 100, ZipfS: 1.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	count := func(g *Generator) int {
		// How many txs does the most popular sender of the first 2000 send?
		byFrom := map[chain.AccountID]int{}
		best := 0
		for i := 0; i < 2000; i++ {
			tx := g.NextTx()
			byFrom[tx.From]++
			if byFrom[tx.From] > best {
				best = byFrom[tx.From]
			}
		}
		return best
	}
	u, z := count(uniform), count(zipf)
	if z <= 2*u {
		t.Fatalf("zipf max sender %d not clearly above uniform %d", z, u)
	}
}

func TestAccountsCopy(t *testing.T) {
	g, _ := NewGenerator(Config{Accounts: 5, Seed: 6})
	a := g.Accounts()
	a[0] = chain.AccountID{}
	b := g.Accounts()
	if b[0] == (chain.AccountID{}) {
		t.Fatal("Accounts() exposes internal state")
	}
}

func TestChainBuilderValidation(t *testing.T) {
	g, _ := NewGenerator(Config{Accounts: 5, Seed: 7})
	if _, err := NewChainBuilder(g, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func BenchmarkNextTx(b *testing.B) {
	g, err := NewGenerator(Config{Accounts: 1000, PayloadBytes: 40, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.NextTx()
	}
}
