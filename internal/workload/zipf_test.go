package workload

import (
	"testing"

	"icistrategy/internal/blockcrypto"
)

// linearSampleCDF is the straightforward O(n) reference: the smallest index
// whose cumulative mass covers target. The binary-search implementation
// must agree with it on every draw.
func linearSampleCDF(cdf []float64, target float64) int {
	for i, c := range cdf {
		if c >= target {
			return i
		}
	}
	return len(cdf) - 1
}

// TestSampleCDFMatchesLinearReference differentially tests the
// sort.SearchFloat64s sampling against the linear reference over a seeded
// draw sequence: every pick must be identical, so switching the
// implementation cannot shift any seeded workload.
func TestSampleCDFMatchesLinearReference(t *testing.T) {
	for _, tc := range []struct {
		accounts int
		s        float64
		seed     uint64
	}{
		{2, 0.8, 1},
		{100, 1.0, 2},
		{1000, 1.2, 3},
		{37, 2.5, 4},
	} {
		cdf := zipfCDF(tc.accounts, tc.s)
		rng := blockcrypto.NewRNG(tc.seed).Fork("zipf-diff")
		for i := 0; i < 20_000; i++ {
			target := rng.Float64()
			got := sampleCDF(cdf, target)
			want := linearSampleCDF(cdf, target)
			if got != want {
				t.Fatalf("n=%d s=%v draw %d (target=%v): binary=%d linear=%d",
					tc.accounts, tc.s, i, target, got, want)
			}
		}
		// Boundary targets, including exactly 0 and exactly 1.
		for _, target := range []float64{0, cdf[0], 0.5, cdf[len(cdf)-1], 1} {
			if got, want := sampleCDF(cdf, target), linearSampleCDF(cdf, target); got != want {
				t.Fatalf("n=%d s=%v boundary target=%v: binary=%d linear=%d",
					tc.accounts, tc.s, target, got, want)
			}
		}
	}
}

// TestPickSenderSequenceStable locks the seeded pick sequence: the
// refactor from an inline search to the shared sampler must be
// byte-identical, so the transactions (and therefore every block hash built
// from them) of existing seeded experiments are unchanged.
func TestPickSenderSequenceStable(t *testing.T) {
	mk := func() *Generator {
		g, err := NewGenerator(Config{Accounts: 64, PayloadBytes: 8, ZipfS: 1.1, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	for i := 0; i < 5_000; i++ {
		if ai, bi := a.pickSender(), b.pickSender(); ai != bi {
			t.Fatalf("draw %d diverged: %d vs %d", i, ai, bi)
		}
	}
	// And the full transaction stream is reproducible.
	a2, b2 := mk(), mk()
	for i := 0; i < 200; i++ {
		ta, tb := a2.NextTx(), b2.NextTx()
		if ta.ID() != tb.ID() {
			t.Fatalf("tx %d diverged", i)
		}
	}
}

func TestZipfPicker(t *testing.T) {
	if _, err := NewZipfPicker(0, 1, 1); err == nil {
		t.Fatal("accepted zero keys")
	}
	if _, err := NewZipfPicker(10, -1, 1); err == nil {
		t.Fatal("accepted negative exponent")
	}

	// Zipf skew: rank 0 must dominate rank n-1 by roughly n^s.
	p, err := NewZipfPicker(50, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 50)
	for i := 0; i < 50_000; i++ {
		idx := p.Pick()
		if idx < 0 || idx >= 50 {
			t.Fatalf("pick out of range: %d", idx)
		}
		counts[idx]++
	}
	if counts[0] < 5*counts[49] {
		t.Fatalf("no Zipf skew: head=%d tail=%d", counts[0], counts[49])
	}

	// Determinism: same seed, same sequence.
	q1, _ := NewZipfPicker(50, 1.0, 7)
	q2, _ := NewZipfPicker(50, 1.0, 7)
	for i := 0; i < 1_000; i++ {
		if a, b := q1.Pick(), q2.Pick(); a != b {
			t.Fatalf("pick %d diverged: %d vs %d", i, a, b)
		}
	}

	// Uniform degenerate case stays in range.
	u, err := NewZipfPicker(8, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if idx := u.Pick(); idx < 0 || idx >= 8 {
			t.Fatalf("uniform pick out of range: %d", idx)
		}
	}
}
