// Package runner executes independent simulation cells on a bounded worker
// pool without giving up byte-identical reproducibility.
//
// A cell is one self-contained unit of harness work — one experiment, one
// (configuration, seed) sweep point — that builds its own Network from its
// own seed and shares no mutable state with its siblings. Because cells
// are independent, the pool may run them in any interleaving; determinism
// is preserved structurally:
//
//   - results land in a slice indexed by the cell's input position, so
//     collection order is the caller's order, never goroutine completion
//     order;
//   - per-cell seeds derive from the root seed by stable cell key
//     (CellSeed), so a cell's randomness does not depend on which worker
//     picks it up or when;
//   - workers draw cells from one atomic cursor — no channels, no select,
//     nothing the runtime scheduler can reorder into the results.
//
// Under these rules a -parallel N run renders byte-identically to the
// sequential run of the same cells.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/metrics"
)

// Cell is one independently runnable unit of harness work. Run must be
// self-contained: it derives everything it needs (network, RNG, workload)
// from its own configuration and touches no sibling state. Shared sinks it
// does write (metrics counters) must be commutative.
type Cell struct {
	// Key names the cell stably across runs — an experiment ID ("E4"), a
	// sweep coordinate ("simbench/n=4096"). It labels the result and is
	// the input to per-cell seed derivation.
	Key string
	// Run executes the cell.
	Run func() (*metrics.Table, error)
}

// Result is one cell's outcome, reported at the cell's input index.
type Result struct {
	Key   string
	Table *metrics.Table
	Err   error
}

// CellSeed derives the seed for one cell from the root seed and the cell's
// stable key. The derivation matches the repo's RNG forking convention
// (hash of parent state + label), so a cell's stream is independent of its
// position in the schedule and of every other cell's consumption.
func CellSeed(root uint64, key string) uint64 {
	return blockcrypto.NewRNG(root).Fork("cell/" + key).Uint64()
}

// Run executes cells on a bounded pool of workers and returns results in
// input order. workers <= 0 defaults to GOMAXPROCS; the pool never exceeds
// len(cells). A cell error is reported in its Result, not returned early:
// sibling cells always run to completion, exactly as they would
// sequentially.
func Run(cells []Cell, workers int) []Result {
	results := make([]Result, len(cells))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i, c := range cells {
			tbl, err := c.Run()
			results[i] = Result{Key: c.Key, Table: tbl, Err: err}
		}
		return results
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				c := cells[i]
				tbl, err := c.Run()
				// Indexed write, never an append: result order is the
				// input order by construction.
				results[i] = Result{Key: c.Key, Table: tbl, Err: err}
			}
		}()
	}
	wg.Wait()
	return results
}
