package runner

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"icistrategy/internal/experiments"
	"icistrategy/internal/metrics"
)

// TestResultsInInputOrder forces completion order to invert input order
// (cell 0 blocks until every other cell has finished) and checks that the
// result slice still follows input order.
func TestResultsInInputOrder(t *testing.T) {
	const n = 8
	var rest sync.WaitGroup
	rest.Add(n - 1)
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Key: fmt.Sprintf("cell-%d", i),
			Run: func() (*metrics.Table, error) {
				if i == 0 {
					rest.Wait() // finish strictly last
				} else {
					defer rest.Done()
				}
				tbl := metrics.NewTable(fmt.Sprintf("t%d", i), "i")
				tbl.AddRow(i)
				return tbl, nil
			},
		}
	}
	results := Run(cells, n)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %d: %v", i, r.Err)
		}
		if r.Key != fmt.Sprintf("cell-%d", i) {
			t.Fatalf("result %d has key %s", i, r.Key)
		}
		if want := fmt.Sprintf("t%d", i); r.Table.Title != want {
			t.Fatalf("result %d holds table %q, want %q", i, r.Table.Title, want)
		}
	}
}

// TestParallelMatchesSequential renders a slice of real Quick-scale
// experiments through a 1-worker pool and a wide pool: the acceptance bar
// says the two runs must be byte-identical.
func TestParallelMatchesSequential(t *testing.T) {
	p := experiments.Quick()
	ids := []string{"E3", "E4", "E7", "E8"}
	build := func() []Cell {
		cells := make([]Cell, 0, len(ids))
		for _, id := range ids {
			e, ok := experiments.ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			cells = append(cells, Cell{Key: e.ID, Run: func() (*metrics.Table, error) { return e.Run(p) }})
		}
		return cells
	}
	render := func(rs []Result) string {
		out := ""
		for _, r := range rs {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Key, r.Err)
			}
			out += r.Table.String() + r.Table.CSV()
		}
		return out
	}
	seq := render(Run(build(), 1))
	par := render(Run(build(), 4))
	if seq != par {
		t.Fatal("parallel run is not byte-identical to sequential run")
	}
}

// TestErrorIsolation: a failing cell reports its error at its own index
// and never prevents sibling cells from completing.
func TestErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	cells := []Cell{
		{Key: "ok-0", Run: func() (*metrics.Table, error) { return metrics.NewTable("a", "x"), nil }},
		{Key: "bad", Run: func() (*metrics.Table, error) { return nil, boom }},
		{Key: "ok-2", Run: func() (*metrics.Table, error) { return metrics.NewTable("b", "x"), nil }},
	}
	results := Run(cells, 2)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy cells errored: %v / %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, boom) {
		t.Fatalf("failing cell reported %v", results[1].Err)
	}
	if results[0].Table == nil || results[2].Table == nil {
		t.Fatal("healthy cells lost their tables")
	}
}

// TestRunDefaultsAndEmpty covers workers<=0 (GOMAXPROCS default) and the
// empty cell list.
func TestRunDefaultsAndEmpty(t *testing.T) {
	if got := Run(nil, 0); len(got) != 0 {
		t.Fatalf("empty run returned %v", got)
	}
	ran := false
	results := Run([]Cell{{Key: "only", Run: func() (*metrics.Table, error) {
		ran = true
		return nil, nil
	}}}, 0)
	if !ran || len(results) != 1 {
		t.Fatalf("default-worker run misbehaved: ran=%v results=%v", ran, results)
	}
}

// TestCellSeedStableAndDistinct: the same (root, key) always derives the
// same seed; different keys and different roots derive different seeds.
func TestCellSeedStableAndDistinct(t *testing.T) {
	if CellSeed(42, "E4") != CellSeed(42, "E4") {
		t.Fatal("CellSeed is not stable")
	}
	seen := map[uint64]string{}
	for _, key := range []string{"E1", "E4", "simbench/n=4096", "simbench/n=16384"} {
		for _, root := range []uint64{1, 42, 1 << 40} {
			s := CellSeed(root, key)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s and %s/%d", prev, key, root)
			}
			seen[s] = fmt.Sprintf("%s/%d", key, root)
		}
	}
}
