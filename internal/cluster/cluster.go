// Package cluster partitions blockchain participants into storage clusters.
//
// ICIStrategy divides "all participates into several clusters"; the paper's
// title says the division happens "via clustering". This package provides
// the clustering algorithms the core strategy and the ablation experiments
// use: latency-aware k-means (with a balanced variant that produces
// equal-size clusters, which the storage math wants), plus random and
// hash-based partitions as baselines. It also computes partition quality
// metrics (mean intra-cluster distance, silhouette coefficient).
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/simnet"
)

// Errors returned by partitioning functions.
var (
	ErrNoNodes     = errors.New("cluster: no nodes to partition")
	ErrBadClusters = errors.New("cluster: cluster count must be in [1, len(nodes)]")
)

// Assignment maps every node (by index into the input slice) to a cluster.
type Assignment struct {
	// ClusterOf[i] is the cluster index of node i.
	ClusterOf []int
	// Members[c] lists the node indices of cluster c, ascending.
	Members [][]int
	// Centers holds the final cluster centroids (k-means variants only;
	// empty for random/hash partitions).
	Centers []simnet.Coord
}

// NumClusters returns the number of clusters in the assignment.
func (a *Assignment) NumClusters() int { return len(a.Members) }

// Size returns the member count of cluster c.
func (a *Assignment) Size(c int) int { return len(a.Members[c]) }

// Validate checks internal consistency: every node appears in exactly one
// member list and ClusterOf agrees with Members.
func (a *Assignment) Validate() error {
	seen := make(map[int]bool, len(a.ClusterOf))
	for c, members := range a.Members {
		for _, i := range members {
			if i < 0 || i >= len(a.ClusterOf) {
				return fmt.Errorf("cluster %d contains out-of-range node %d", c, i)
			}
			if seen[i] {
				return fmt.Errorf("node %d appears in multiple clusters", i)
			}
			seen[i] = true
			if a.ClusterOf[i] != c {
				return fmt.Errorf("node %d: ClusterOf says %d, Members says %d", i, a.ClusterOf[i], c)
			}
		}
	}
	if len(seen) != len(a.ClusterOf) {
		return fmt.Errorf("%d of %d nodes assigned", len(seen), len(a.ClusterOf))
	}
	return nil
}

func buildAssignment(clusterOf []int, k int) *Assignment {
	a := &Assignment{
		ClusterOf: clusterOf,
		Members:   make([][]int, k),
	}
	for i, c := range clusterOf {
		a.Members[c] = append(a.Members[c], i)
	}
	for _, m := range a.Members {
		sort.Ints(m)
	}
	return a
}

// Method selects a partitioning algorithm.
type Method int

// Supported partitioning methods.
const (
	KMeans Method = iota + 1
	BalancedKMeans
	RandomPartition
	HashPartition
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case KMeans:
		return "kmeans"
	case BalancedKMeans:
		return "balanced-kmeans"
	case RandomPartition:
		return "random"
	case HashPartition:
		return "hash"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Partition clusters nodes with the given method. coords must be non-empty
// and 1 <= k <= len(coords). rng drives tie-breaking and initialization and
// may not be nil for randomized methods.
func Partition(method Method, coords []simnet.Coord, k int, rng *blockcrypto.RNG) (*Assignment, error) {
	if len(coords) == 0 {
		return nil, ErrNoNodes
	}
	if k < 1 || k > len(coords) {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrBadClusters, k, len(coords))
	}
	switch method {
	case KMeans:
		return kmeans(coords, k, rng, false)
	case BalancedKMeans:
		return kmeans(coords, k, rng, true)
	case RandomPartition:
		return randomPartition(len(coords), k, rng), nil
	case HashPartition:
		return hashPartition(len(coords), k), nil
	default:
		return nil, fmt.Errorf("cluster: unknown method %v", method)
	}
}

// randomPartition deals nodes into k clusters round-robin after a shuffle,
// giving balanced sizes with random membership.
func randomPartition(n, k int, rng *blockcrypto.RNG) *Assignment {
	perm := rng.Perm(n)
	clusterOf := make([]int, n)
	for pos, node := range perm {
		clusterOf[node] = pos % k
	}
	return buildAssignment(clusterOf, k)
}

// hashPartition assigns node i to cluster H(i) mod k — the membership rule a
// chain could apply with no coordination at all.
func hashPartition(n, k int) *Assignment {
	clusterOf := make([]int, n)
	var buf [8]byte
	for i := 0; i < n; i++ {
		buf[0] = byte(i)
		buf[1] = byte(i >> 8)
		buf[2] = byte(i >> 16)
		buf[3] = byte(i >> 24)
		h := blockcrypto.Sum256(buf[:])
		clusterOf[i] = int(h.Uint64() % uint64(k))
	}
	// Hash partitions can leave a cluster empty for tiny n; repair by
	// stealing from the largest cluster so every cluster is non-empty.
	a := buildAssignment(clusterOf, k)
	for c := range a.Members {
		if len(a.Members[c]) > 0 {
			continue
		}
		largest := 0
		for j := range a.Members {
			if len(a.Members[j]) > len(a.Members[largest]) {
				largest = j
			}
		}
		steal := a.Members[largest][len(a.Members[largest])-1]
		clusterOf[steal] = c
		a = buildAssignment(clusterOf, k)
	}
	return a
}
