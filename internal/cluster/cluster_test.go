package cluster

import (
	"fmt"
	"testing"
	"testing/quick"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/simnet"
)

func testCoords(n int, seed uint64) []simnet.Coord {
	return simnet.RandomCoords(n, 60, blockcrypto.NewRNG(seed))
}

func TestPartitionErrors(t *testing.T) {
	rng := blockcrypto.NewRNG(1)
	if _, err := Partition(KMeans, nil, 1, rng); err == nil {
		t.Fatal("empty node set accepted")
	}
	coords := testCoords(10, 1)
	for _, k := range []int{0, -1, 11} {
		if _, err := Partition(KMeans, coords, k, rng); err == nil {
			t.Fatalf("k=%d accepted", k)
		}
	}
	if _, err := Partition(Method(99), coords, 2, rng); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestAllMethodsProduceValidPartitions(t *testing.T) {
	methods := []Method{KMeans, BalancedKMeans, RandomPartition, HashPartition}
	sizes := []struct{ n, k int }{
		{1, 1}, {2, 2}, {10, 3}, {100, 7}, {128, 16}, {257, 8},
	}
	for _, m := range methods {
		for _, sz := range sizes {
			t.Run(fmt.Sprintf("%v/n=%d,k=%d", m, sz.n, sz.k), func(t *testing.T) {
				if sz.k > sz.n {
					t.Skip("k > n")
				}
				coords := testCoords(sz.n, 42)
				a, err := Partition(m, coords, sz.k, blockcrypto.NewRNG(7))
				if err != nil {
					t.Fatal(err)
				}
				if err := a.Validate(); err != nil {
					t.Fatalf("invalid assignment: %v", err)
				}
				if a.NumClusters() != sz.k {
					t.Fatalf("NumClusters() = %d, want %d", a.NumClusters(), sz.k)
				}
				for c := 0; c < sz.k; c++ {
					if a.Size(c) == 0 {
						t.Fatalf("cluster %d is empty", c)
					}
				}
			})
		}
	}
}

func TestBalancedKMeansBalance(t *testing.T) {
	coords := testCoords(1000, 9)
	a, err := Partition(BalancedKMeans, coords, 16, blockcrypto.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(a, coords)
	if q.SizeImbalance > 1 {
		t.Fatalf("balanced k-means imbalance = %d, want <= 1", q.SizeImbalance)
	}
}

func TestRandomPartitionBalance(t *testing.T) {
	coords := testCoords(1003, 9)
	a, err := Partition(RandomPartition, coords, 10, blockcrypto.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if q := Evaluate(a, coords); q.SizeImbalance > 1 {
		t.Fatalf("random partition imbalance = %d, want <= 1", q.SizeImbalance)
	}
}

func TestKMeansBeatsRandomOnClusteredTopology(t *testing.T) {
	// On a topology with 8 real regions, latency-aware clustering must
	// produce tighter clusters than a random partition.
	rng := blockcrypto.NewRNG(5)
	coords := simnet.ClusteredCoords(400, 8, 200, 2.0, rng)
	km, err := Partition(BalancedKMeans, coords, 8, blockcrypto.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Partition(RandomPartition, coords, 8, blockcrypto.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	qKM, qRnd := Evaluate(km, coords), Evaluate(rnd, coords)
	if qKM.MeanIntraDistance >= qRnd.MeanIntraDistance {
		t.Fatalf("kmeans intra distance %.1f >= random %.1f", qKM.MeanIntraDistance, qRnd.MeanIntraDistance)
	}
	if qKM.Silhouette <= qRnd.Silhouette {
		t.Fatalf("kmeans silhouette %.3f <= random %.3f", qKM.Silhouette, qRnd.Silhouette)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	coords := testCoords(200, 13)
	for _, m := range []Method{KMeans, BalancedKMeans, RandomPartition, HashPartition} {
		a1, err := Partition(m, coords, 5, blockcrypto.NewRNG(21))
		if err != nil {
			t.Fatal(err)
		}
		a2, err := Partition(m, coords, 5, blockcrypto.NewRNG(21))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a1.ClusterOf {
			if a1.ClusterOf[i] != a2.ClusterOf[i] {
				t.Fatalf("%v: node %d assigned to %d then %d", m, i, a1.ClusterOf[i], a2.ClusterOf[i])
			}
		}
	}
}

func TestHashPartitionStableUnderReruns(t *testing.T) {
	a1 := hashPartition(100, 7)
	a2 := hashPartition(100, 7)
	for i := range a1.ClusterOf {
		if a1.ClusterOf[i] != a2.ClusterOf[i] {
			t.Fatal("hash partition not deterministic")
		}
	}
}

func TestPartitionPropertyValid(t *testing.T) {
	f := func(nRaw, kRaw uint8, seed uint64) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw)%n + 1
		coords := testCoords(n, seed)
		for _, m := range []Method{KMeans, BalancedKMeans, RandomPartition, HashPartition} {
			a, err := Partition(m, coords, k, blockcrypto.NewRNG(seed))
			if err != nil {
				return false
			}
			if a.Validate() != nil {
				return false
			}
			for c := 0; c < k; c++ {
				if a.Size(c) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateSingletonClusters(t *testing.T) {
	coords := testCoords(3, 1)
	a, err := Partition(RandomPartition, coords, 3, blockcrypto.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(a, coords)
	if q.MeanIntraDistance != 0 || q.MaxIntraDistance != 0 {
		t.Fatalf("singleton clusters should have zero intra distance: %+v", q)
	}
	if q.Silhouette != 0 {
		t.Fatalf("all-singleton silhouette = %v, want 0", q.Silhouette)
	}
}

func TestEvaluateSingleCluster(t *testing.T) {
	coords := testCoords(10, 2)
	a, err := Partition(RandomPartition, coords, 1, blockcrypto.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if q := Evaluate(a, coords); q.Silhouette != 0 {
		t.Fatalf("single-cluster silhouette = %v, want 0", q.Silhouette)
	}
}

func TestSilhouetteIdealSeparation(t *testing.T) {
	// Two tight, far-apart groups: silhouette should approach 1 when the
	// partition matches the groups.
	coords := make([]simnet.Coord, 0, 20)
	for i := 0; i < 10; i++ {
		coords = append(coords, simnet.Coord{X: float64(i) * 0.01, Y: 0})
	}
	for i := 0; i < 10; i++ {
		coords = append(coords, simnet.Coord{X: 1000 + float64(i)*0.01, Y: 0})
	}
	clusterOf := make([]int, 20)
	for i := 10; i < 20; i++ {
		clusterOf[i] = 1
	}
	a := buildAssignment(clusterOf, 2)
	q := Evaluate(a, coords)
	if q.Silhouette < 0.99 {
		t.Fatalf("ideal partition silhouette = %v, want ~1", q.Silhouette)
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		KMeans:          "kmeans",
		BalancedKMeans:  "balanced-kmeans",
		RandomPartition: "random",
		HashPartition:   "hash",
		Method(42):      "method(42)",
	} {
		if got := m.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func BenchmarkBalancedKMeans1000x16(b *testing.B) {
	coords := testCoords(1000, 17)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(BalancedKMeans, coords, 16, blockcrypto.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
