package cluster

import (
	"math"
	"sort"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/simnet"
)

// maxKMeansIterations bounds Lloyd iterations; k-means on a few thousand
// points converges in far fewer.
const maxKMeansIterations = 100

// kmeans runs k-means++ initialization followed by Lloyd iterations. With
// balanced=true each iteration assigns nodes to centers under a hard
// capacity of ceil(n/k), processing nodes in order of how much they prefer
// their best center (a greedy balanced k-means that keeps cluster sizes
// within one of each other).
func kmeans(coords []simnet.Coord, k int, rng *blockcrypto.RNG, balanced bool) (*Assignment, error) {
	n := len(coords)
	centers := kmeansPlusPlusInit(coords, k, rng)
	clusterOf := make([]int, n)
	for iter := 0; iter < maxKMeansIterations; iter++ {
		var next []int
		if balanced {
			next = assignBalanced(coords, centers)
		} else {
			next = assignNearest(coords, centers)
		}
		changed := false
		for i := range next {
			if next[i] != clusterOf[i] {
				changed = true
				break
			}
		}
		clusterOf = next
		centers = recomputeCenters(coords, clusterOf, k, centers)
		if !changed && iter > 0 {
			break
		}
	}
	// Unbalanced k-means can strand a center with no members; give each
	// empty cluster the point farthest from its current center so every
	// cluster is non-empty (required: each cluster must hold all data).
	for c := 0; c < k; c++ {
		if countOf(clusterOf, c) > 0 {
			continue
		}
		far, farDist := -1, -1.0
		for i := range coords {
			if countOf(clusterOf, clusterOf[i]) <= 1 {
				continue
			}
			d := coords[i].Distance(centers[clusterOf[i]])
			if d > farDist {
				far, farDist = i, d
			}
		}
		if far >= 0 {
			clusterOf[far] = c
		}
	}
	a := buildAssignment(clusterOf, k)
	a.Centers = centers
	return a, nil
}

func countOf(clusterOf []int, c int) int {
	n := 0
	for _, v := range clusterOf {
		if v == c {
			n++
		}
	}
	return n
}

// kmeansPlusPlusInit picks k initial centers with D² weighting.
func kmeansPlusPlusInit(coords []simnet.Coord, k int, rng *blockcrypto.RNG) []simnet.Coord {
	centers := make([]simnet.Coord, 0, k)
	centers = append(centers, coords[rng.Intn(len(coords))])
	dist2 := make([]float64, len(coords))
	for len(centers) < k {
		var total float64
		for i, c := range coords {
			d := c.Distance(centers[len(centers)-1])
			d2 := d * d
			if len(centers) == 1 || d2 < dist2[i] {
				dist2[i] = d2
			}
			total += dist2[i]
		}
		if total == 0 {
			// All remaining points coincide with centers; duplicate one.
			centers = append(centers, coords[rng.Intn(len(coords))])
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := len(coords) - 1
		for i, d2 := range dist2 {
			acc += d2
			if acc >= target {
				pick = i
				break
			}
		}
		centers = append(centers, coords[pick])
	}
	return centers
}

func assignNearest(coords []simnet.Coord, centers []simnet.Coord) []int {
	out := make([]int, len(coords))
	for i, c := range coords {
		best, bestD := 0, math.Inf(1)
		for j, ctr := range centers {
			if d := c.Distance(ctr); d < bestD {
				best, bestD = j, d
			}
		}
		out[i] = best
	}
	return out
}

// assignBalanced assigns points to centers with exact per-cluster
// capacities: floor(n/k) everywhere plus one extra seat for the first n%k
// clusters, so cluster sizes always differ by at most one. Points are
// processed in descending "regret" order — the gap between their best and
// second-best center — so the points that care the most choose first.
func assignBalanced(coords []simnet.Coord, centers []simnet.Coord) []int {
	n, k := len(coords), len(centers)
	capacity := make([]int, k)
	for j := range capacity {
		capacity[j] = n / k
		if j < n%k {
			capacity[j]++
		}
	}
	type cand struct {
		node   int
		regret float64
	}
	cands := make([]cand, n)
	for i, c := range coords {
		best, second := math.Inf(1), math.Inf(1)
		for _, ctr := range centers {
			d := c.Distance(ctr)
			if d < best {
				second = best
				best = d
			} else if d < second {
				second = d
			}
		}
		reg := second - best
		if math.IsInf(reg, 1) {
			reg = 0
		}
		cands[i] = cand{node: i, regret: reg}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].regret != cands[b].regret {
			return cands[a].regret > cands[b].regret
		}
		return cands[a].node < cands[b].node
	})
	counts := make([]int, k)
	out := make([]int, n)
	for _, cd := range cands {
		best, bestD := -1, math.Inf(1)
		for j, ctr := range centers {
			if counts[j] >= capacity[j] {
				continue
			}
			if d := coords[cd.node].Distance(ctr); d < bestD {
				best, bestD = j, d
			}
		}
		out[cd.node] = best
		counts[best]++
	}
	return out
}

func recomputeCenters(coords []simnet.Coord, clusterOf []int, k int, prev []simnet.Coord) []simnet.Coord {
	sums := make([]simnet.Coord, k)
	counts := make([]int, k)
	for i, c := range clusterOf {
		sums[c].X += coords[i].X
		sums[c].Y += coords[i].Y
		counts[c]++
	}
	out := make([]simnet.Coord, k)
	for c := range out {
		if counts[c] == 0 {
			out[c] = prev[c]
			continue
		}
		out[c] = simnet.Coord{X: sums[c].X / float64(counts[c]), Y: sums[c].Y / float64(counts[c])}
	}
	return out
}
