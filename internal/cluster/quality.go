package cluster

import (
	"math"

	"icistrategy/internal/simnet"
)

// Quality summarizes how latency-compact a partition is. Lower
// MeanIntraDistance and higher Silhouette mean cheaper intra-cluster
// communication, which is what ICIStrategy's collaborative verification
// pays for.
type Quality struct {
	// MeanIntraDistance is the mean pairwise distance between members of
	// the same cluster, averaged over all intra-cluster pairs (ms).
	MeanIntraDistance float64
	// MaxIntraDistance is the largest intra-cluster pairwise distance (ms).
	MaxIntraDistance float64
	// Silhouette is the mean silhouette coefficient in [-1, 1].
	Silhouette float64
	// SizeImbalance is max cluster size minus min cluster size.
	SizeImbalance int
}

// Evaluate computes partition quality for an assignment over coords.
func Evaluate(a *Assignment, coords []simnet.Coord) Quality {
	var q Quality
	var pairSum float64
	var pairCount int
	for _, members := range a.Members {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				d := coords[members[i]].Distance(coords[members[j]])
				pairSum += d
				pairCount++
				if d > q.MaxIntraDistance {
					q.MaxIntraDistance = d
				}
			}
		}
	}
	if pairCount > 0 {
		q.MeanIntraDistance = pairSum / float64(pairCount)
	}
	q.Silhouette = silhouette(a, coords)
	minSize, maxSize := math.MaxInt, 0
	for _, m := range a.Members {
		if len(m) < minSize {
			minSize = len(m)
		}
		if len(m) > maxSize {
			maxSize = len(m)
		}
	}
	if minSize == math.MaxInt {
		minSize = 0
	}
	q.SizeImbalance = maxSize - minSize
	return q
}

// silhouette computes the mean silhouette coefficient. For node i with
// mean same-cluster distance a(i) and smallest mean other-cluster distance
// b(i), s(i) = (b-a)/max(a,b). Singleton clusters contribute 0.
func silhouette(asg *Assignment, coords []simnet.Coord) float64 {
	if asg.NumClusters() < 2 {
		return 0
	}
	var total float64
	n := len(asg.ClusterOf)
	for i := 0; i < n; i++ {
		own := asg.ClusterOf[i]
		if len(asg.Members[own]) <= 1 {
			continue // s(i) = 0 by convention
		}
		var a float64
		for _, j := range asg.Members[own] {
			if j != i {
				a += coords[i].Distance(coords[j])
			}
		}
		a /= float64(len(asg.Members[own]) - 1)

		b := math.Inf(1)
		for c, members := range asg.Members {
			if c == own || len(members) == 0 {
				continue
			}
			var sum float64
			for _, j := range members {
				sum += coords[i].Distance(coords[j])
			}
			if mean := sum / float64(len(members)); mean < b {
				b = mean
			}
		}
		if denom := math.Max(a, b); denom > 0 {
			total += (b - a) / denom
		}
	}
	return total / float64(n)
}
