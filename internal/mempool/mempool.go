// Package mempool implements the transaction pool that feeds block
// production: signature and nonce admission against ledger state, per-
// account nonce chains, fee-ordered executable selection, capacity
// eviction, and cleanup when blocks apply. It completes the pipeline
// workload → pool → block → ICIStrategy storage.
package mempool

import (
	"errors"
	"fmt"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
)

// Pool errors.
var (
	ErrDuplicate     = errors.New("mempool: transaction already pooled")
	ErrNonceGap      = errors.New("mempool: nonce below account state")
	ErrNonceReplaced = errors.New("mempool: nonce slot already occupied with equal or better fee")
	ErrUnderfunded   = errors.New("mempool: sender cannot fund pooled transactions")
	ErrPoolFull      = errors.New("mempool: pool is full and fee too low to evict")
	ErrNilLedger     = errors.New("mempool: nil ledger")
)

// pooledTx is one admitted transaction with its identity cached.
type pooledTx struct {
	tx *chain.Transaction
	id blockcrypto.Hash
}

// Pool is a transaction mempool validated against a ledger view. Not safe
// for concurrent use (the simulator is single-threaded; wrap it if needed).
type Pool struct {
	ledger *chain.Ledger
	max    int
	// byAccount[from] maps nonce -> pooled tx, forming per-account chains.
	byAccount map[chain.AccountID]map[uint64]pooledTx
	ids       map[blockcrypto.Hash]bool
	count     int
}

// New creates a pool admitting at most maxTxs transactions, validated
// against ledger.
func New(ledger *chain.Ledger, maxTxs int) (*Pool, error) {
	if ledger == nil {
		return nil, ErrNilLedger
	}
	if maxTxs < 1 {
		return nil, fmt.Errorf("mempool: maxTxs must be positive, got %d", maxTxs)
	}
	return &Pool{
		ledger:    ledger,
		max:       maxTxs,
		byAccount: make(map[chain.AccountID]map[uint64]pooledTx),
		ids:       make(map[blockcrypto.Hash]bool),
	}, nil
}

// Len returns the number of pooled transactions.
func (p *Pool) Len() int { return p.count }

// Contains reports whether the transaction is pooled.
func (p *Pool) Contains(id blockcrypto.Hash) bool { return p.ids[id] }

// Add admits a transaction: valid signature, nonce at or above the
// account's ledger state, cumulative solvency across the sender's pooled
// chain, and fee-based replacement/eviction rules.
func (p *Pool) Add(tx *chain.Transaction) error {
	if err := tx.VerifySignature(); err != nil {
		return err
	}
	id := tx.ID()
	if p.ids[id] {
		return ErrDuplicate
	}
	acct := p.ledger.Account(tx.From)
	if tx.Nonce < acct.Nonce {
		return fmt.Errorf("%w: tx nonce %d, account at %d", ErrNonceGap, tx.Nonce, acct.Nonce)
	}
	chainTxs := p.byAccount[tx.From]
	if existing, ok := chainTxs[tx.Nonce]; ok {
		// Replace-by-fee: a strictly higher fee displaces the occupant.
		if tx.Fee <= existing.tx.Fee {
			return ErrNonceReplaced
		}
		p.removeTx(existing)
	}
	// Cumulative solvency: balance must cover every pooled spend plus this.
	var committed uint64
	for _, pt := range p.byAccount[tx.From] {
		committed += pt.tx.Amount + pt.tx.Fee
	}
	if committed+tx.Amount+tx.Fee < committed { // overflow
		return ErrUnderfunded
	}
	if acct.Balance < committed+tx.Amount+tx.Fee {
		return fmt.Errorf("%w: balance %d, pooled %d, adding %d",
			ErrUnderfunded, acct.Balance, committed, tx.Amount+tx.Fee)
	}
	if p.count >= p.max {
		if !p.evictBelow(tx.Fee) {
			return ErrPoolFull
		}
	}
	if p.byAccount[tx.From] == nil {
		p.byAccount[tx.From] = make(map[uint64]pooledTx)
	}
	p.byAccount[tx.From][tx.Nonce] = pooledTx{tx: tx, id: id}
	p.ids[id] = true
	p.count++
	return nil
}

// removeTx drops one pooled transaction.
func (p *Pool) removeTx(pt pooledTx) {
	acct := p.byAccount[pt.tx.From]
	if acct == nil {
		return
	}
	if cur, ok := acct[pt.tx.Nonce]; !ok || cur.id != pt.id {
		return
	}
	delete(acct, pt.tx.Nonce)
	if len(acct) == 0 {
		delete(p.byAccount, pt.tx.From)
	}
	delete(p.ids, pt.id)
	p.count--
}

// evictBelow removes the lowest-fee pooled transaction if its fee is
// strictly below fee. Ties keep the incumbent. Among equal fees the
// highest nonce goes first (it is the least likely to be executable).
func (p *Pool) evictBelow(fee uint64) bool {
	var victim pooledTx
	found := false
	for _, acct := range p.byAccount {
		for _, pt := range acct {
			if !found ||
				pt.tx.Fee < victim.tx.Fee ||
				(pt.tx.Fee == victim.tx.Fee && pt.tx.Nonce > victim.tx.Nonce) {
				victim = pt
				found = true
			}
		}
	}
	if !found || victim.tx.Fee >= fee {
		return false
	}
	p.removeTx(victim)
	return true
}

// Select returns up to n executable transactions: per-account chains
// starting exactly at the account's current nonce (no gaps), globally
// ordered by fee (descending) with account order as a deterministic
// tiebreak. The returned set always applies cleanly to the pool's ledger
// view.
func (p *Pool) Select(n int) []*chain.Transaction {
	// Seed a cursor per account at its executable head.
	cursors := make(map[chain.AccountID]uint64, len(p.byAccount))
	for from := range p.byAccount {
		cursors[from] = p.ledger.Account(from).Nonce
	}
	var out []*chain.Transaction
	for len(out) < n {
		// Candidates: each account's next executable transaction.
		var best *chain.Transaction
		for from, nonce := range cursors {
			pt, ok := p.byAccount[from][nonce]
			if !ok {
				continue // gap: chain not executable further
			}
			if best == nil || pt.tx.Fee > best.Fee ||
				(pt.tx.Fee == best.Fee && lessAccount(pt.tx.From, best.From)) {
				best = pt.tx
			}
		}
		if best == nil {
			break
		}
		out = append(out, best)
		cursors[best.From] = best.Nonce + 1
	}
	return out
}

func lessAccount(a, b chain.AccountID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// OnBlockApplied removes transactions included in the block and any pooled
// transactions the new state makes invalid (stale nonces). Call it after
// the ledger the pool watches has applied the block.
func (p *Pool) OnBlockApplied(b *chain.Block) {
	for _, tx := range b.Txs {
		if acct, ok := p.byAccount[tx.From]; ok {
			if pt, ok := acct[tx.Nonce]; ok {
				p.removeTx(pt)
			}
		}
	}
	// Drop stale nonces (a competing transaction consumed the slot).
	for from, acct := range p.byAccount {
		state := p.ledger.Account(from).Nonce
		for nonce, pt := range acct {
			if nonce < state {
				p.removeTx(pt)
			}
		}
	}
}
