package mempool

import (
	"errors"
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
)

// fixture returns a pool over a ledger with k funded accounts.
func fixture(t testing.TB, k int, funds uint64, maxTxs int) (*Pool, *chain.Ledger, []blockcrypto.KeyPair, []chain.AccountID) {
	t.Helper()
	l := chain.NewLedger()
	keys := make([]blockcrypto.KeyPair, k)
	ids := make([]chain.AccountID, k)
	for i := range keys {
		keys[i] = blockcrypto.DeriveKeyPair(7000, uint64(i))
		ids[i] = blockcrypto.PublicKeyHash(keys[i].Public)
		l.Credit(ids[i], funds)
	}
	p, err := New(l, maxTxs)
	if err != nil {
		t.Fatal(err)
	}
	return p, l, keys, ids
}

func makeTx(keys []blockcrypto.KeyPair, ids []chain.AccountID, from, to int, amount, nonce, fee uint64) *chain.Transaction {
	tx := &chain.Transaction{
		From:   ids[from],
		To:     ids[to],
		Amount: amount,
		Nonce:  nonce,
		Fee:    fee,
	}
	tx.Sign(keys[from])
	return tx
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 10); !errors.Is(err, ErrNilLedger) {
		t.Fatalf("nil ledger: %v", err)
	}
	if _, err := New(chain.NewLedger(), 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestAddAndSelectBasics(t *testing.T) {
	p, _, keys, ids := fixture(t, 3, 1000, 100)
	tx := makeTx(keys, ids, 0, 1, 10, 0, 2)
	if err := p.Add(tx); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 || !p.Contains(tx.ID()) {
		t.Fatal("pool state after Add")
	}
	got := p.Select(10)
	if len(got) != 1 || got[0].ID() != tx.ID() {
		t.Fatalf("Select = %v", got)
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	p, _, keys, ids := fixture(t, 3, 100, 100)
	// Bad signature.
	bad := makeTx(keys, ids, 0, 1, 10, 0, 1)
	bad.Amount++
	if err := p.Add(bad); err == nil {
		t.Fatal("tampered tx admitted")
	}
	// Duplicate.
	tx := makeTx(keys, ids, 0, 1, 10, 0, 1)
	if err := p.Add(tx); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(tx); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	// Stale nonce.
	stale := makeTx(keys, ids, 1, 0, 10, 0, 1)
	l := chain.NewLedger() // fresh ledger where account 1 has nonce 0...
	_ = l
	// advance account 1's nonce via a pool over a ledger that saw a block:
	// simpler: nonce below state is covered by TestOnBlockApplied below.
	_ = stale
	// Underfunded single tx.
	big := makeTx(keys, ids, 2, 0, 1000, 0, 1)
	if err := p.Add(big); !errors.Is(err, ErrUnderfunded) {
		t.Fatalf("underfunded: %v", err)
	}
}

func TestCumulativeSolvency(t *testing.T) {
	p, _, keys, ids := fixture(t, 2, 100, 100)
	if err := p.Add(makeTx(keys, ids, 0, 1, 50, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(makeTx(keys, ids, 0, 1, 40, 1, 1)); err != nil {
		t.Fatal(err) // 50+1+40+1 = 92 <= 100
	}
	if err := p.Add(makeTx(keys, ids, 0, 1, 20, 2, 1)); !errors.Is(err, ErrUnderfunded) {
		t.Fatalf("cumulative overdraft admitted: %v", err)
	}
}

func TestReplaceByFee(t *testing.T) {
	p, _, keys, ids := fixture(t, 2, 1000, 100)
	low := makeTx(keys, ids, 0, 1, 10, 0, 1)
	if err := p.Add(low); err != nil {
		t.Fatal(err)
	}
	same := makeTx(keys, ids, 0, 1, 11, 0, 1)
	if err := p.Add(same); !errors.Is(err, ErrNonceReplaced) {
		t.Fatalf("equal-fee replacement: %v", err)
	}
	better := makeTx(keys, ids, 0, 1, 12, 0, 5)
	if err := p.Add(better); err != nil {
		t.Fatal(err)
	}
	if p.Contains(low.ID()) {
		t.Fatal("displaced tx still pooled")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestSelectRespectsNonceChains(t *testing.T) {
	p, _, keys, ids := fixture(t, 3, 10_000, 100)
	// Account 0: nonces 0,1,2 with ascending fees — must come out in nonce
	// order regardless of fee.
	if err := p.Add(makeTx(keys, ids, 0, 1, 10, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(makeTx(keys, ids, 0, 1, 10, 1, 9)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(makeTx(keys, ids, 0, 1, 10, 2, 5)); err != nil {
		t.Fatal(err)
	}
	// Account 1: a gapped tx (nonce 1 without 0) — not executable.
	if err := p.Add(makeTx(keys, ids, 1, 2, 10, 1, 99)); err != nil {
		t.Fatal(err)
	}
	got := p.Select(10)
	if len(got) != 3 {
		t.Fatalf("selected %d txs, want 3 (gapped chain excluded)", len(got))
	}
	for i, tx := range got {
		if tx.From != ids[0] || tx.Nonce != uint64(i) {
			t.Fatalf("selection order broken at %d: nonce %d", i, tx.Nonce)
		}
	}
}

func TestSelectFeeOrderAcrossAccounts(t *testing.T) {
	p, _, keys, ids := fixture(t, 3, 10_000, 100)
	cheap := makeTx(keys, ids, 0, 1, 10, 0, 1)
	rich := makeTx(keys, ids, 1, 2, 10, 0, 50)
	if err := p.Add(cheap); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(rich); err != nil {
		t.Fatal(err)
	}
	got := p.Select(1)
	if len(got) != 1 || got[0].ID() != rich.ID() {
		t.Fatal("highest-fee executable tx not selected first")
	}
}

func TestSelectedBlockAppliesCleanly(t *testing.T) {
	p, l, keys, ids := fixture(t, 5, 10_000, 200)
	rng := blockcrypto.NewRNG(5)
	nonces := make([]uint64, 5)
	for i := 0; i < 60; i++ {
		from := rng.Intn(5)
		to := (from + 1 + rng.Intn(4)) % 5
		tx := makeTx(keys, ids, from, to, uint64(rng.Intn(20))+1, nonces[from], uint64(rng.Intn(5))+1)
		nonces[from]++
		if err := p.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	selected := p.Select(40)
	if len(selected) != 40 {
		t.Fatalf("selected %d, want 40", len(selected))
	}
	b, err := chain.NewBlock(0, blockcrypto.ZeroHash, selected, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ApplyBlock(b); err != nil {
		t.Fatalf("selected block rejected by ledger: %v", err)
	}
	p.OnBlockApplied(b)
	if p.Len() != 60-40 {
		t.Fatalf("pool has %d after block, want 20", p.Len())
	}
	// Remaining txs still produce a clean block.
	rest := p.Select(40)
	if len(rest) != 20 {
		t.Fatalf("second selection: %d", len(rest))
	}
	b2, err := chain.NewBlock(1, b.Hash(), rest, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ApplyBlock(b2); err != nil {
		t.Fatalf("second block rejected: %v", err)
	}
}

func TestEvictionPrefersLowestFee(t *testing.T) {
	p, _, keys, ids := fixture(t, 4, 10_000, 2)
	low := makeTx(keys, ids, 0, 1, 10, 0, 1)
	mid := makeTx(keys, ids, 1, 2, 10, 0, 5)
	if err := p.Add(low); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(mid); err != nil {
		t.Fatal(err)
	}
	// Pool full; a lower-or-equal fee tx is refused.
	worse := makeTx(keys, ids, 2, 3, 10, 0, 1)
	if err := p.Add(worse); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("low-fee tx evicted an equal: %v", err)
	}
	// A higher-fee tx evicts the cheapest.
	rich := makeTx(keys, ids, 3, 0, 10, 0, 9)
	if err := p.Add(rich); err != nil {
		t.Fatal(err)
	}
	if p.Contains(low.ID()) {
		t.Fatal("lowest-fee tx survived eviction")
	}
	if !p.Contains(mid.ID()) || !p.Contains(rich.ID()) {
		t.Fatal("wrong tx evicted")
	}
}

func TestOnBlockAppliedDropsStaleNonces(t *testing.T) {
	p, l, keys, ids := fixture(t, 3, 10_000, 100)
	// Two competing txs at nonce 0 cannot coexist in one pool, so pool the
	// loser only; the winner goes straight into a block.
	loser := makeTx(keys, ids, 0, 2, 10, 0, 1)
	if err := p.Add(loser); err != nil {
		t.Fatal(err)
	}
	winner := makeTx(keys, ids, 0, 1, 99, 0, 7)
	b, err := chain.NewBlock(0, blockcrypto.ZeroHash, []*chain.Transaction{winner}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ApplyBlock(b); err != nil {
		t.Fatal(err)
	}
	p.OnBlockApplied(b)
	if p.Contains(loser.ID()) {
		t.Fatal("stale-nonce tx survived block application")
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func BenchmarkAddSelect(b *testing.B) {
	// Capacity far above any b.N so the bench measures Add+Select, not
	// eviction churn; funds sized for millions of 2-unit spends.
	p, _, keys, ids := fixture(b, 100, 1<<40, 1<<30)
	rng := blockcrypto.NewRNG(9)
	nonces := make([]uint64, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := rng.Intn(100)
		to := (from + 1) % 100
		tx := makeTx(keys, ids, from, to, 1, nonces[from], uint64(rng.Intn(9))+1)
		nonces[from]++
		if err := p.Add(tx); err != nil {
			b.Fatal(err)
		}
		if i%256 == 255 {
			p.Select(128)
		}
	}
}
