package mempool

import (
	"testing"

	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/workload"
)

// TestPoolFeedsICIStrategy runs the full pipeline: a workload floods the
// pool, the pool feeds block production, and ICIStrategy stores every block
// collaboratively. The pool's ledger view and the cluster's holdings must
// stay consistent throughout.
func TestPoolFeedsICIStrategy(t *testing.T) {
	sys, err := core.NewSystem(core.Config{Nodes: 18, Clusters: 2, Replication: 1, Seed: 80})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{Accounts: 40, PayloadBytes: 10, Seed: 80})
	if err != nil {
		t.Fatal(err)
	}
	ledger := chain.NewLedger()
	gen.FundAll(ledger, 1_000_000)
	pool, err := New(ledger, 1000)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 5; round++ {
		// Workload floods the pool.
		for i := 0; i < 50; i++ {
			if err := pool.Add(gen.NextTx()); err != nil {
				t.Fatalf("round %d: admit: %v", round, err)
			}
		}
		// Producer packs a block from the pool.
		txs := pool.Select(32)
		if len(txs) == 0 {
			t.Fatalf("round %d: empty selection from pool of %d", round, pool.Len())
		}
		b, err := sys.ProduceBlock(txs)
		if err != nil {
			t.Fatal(err)
		}
		sys.Network().RunUntilIdle()
		if !sys.AllCommitted(b.Hash()) {
			t.Fatalf("round %d: block not committed", round)
		}
		// The pool's state machine follows the chain.
		if err := ledger.ApplyBlock(b); err != nil {
			t.Fatalf("round %d: pool ledger rejected the produced block: %v", round, err)
		}
		pool.OnBlockApplied(b)
		for c := 0; c < sys.NumClusters(); c++ {
			if err := sys.ClusterHoldsBlock(c, b.Hash()); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
}
