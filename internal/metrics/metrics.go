// Package metrics provides the measurement plumbing for the simulator and
// experiment harness: byte/message counters, streaming histograms with
// percentile queries, and fixed-width table rendering so every experiment
// prints paper-style rows.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing counter, safe for concurrent use.
// The zero value is ready to use. Counters sit on every traced hot path, so
// Add is a single atomic add — no mutex.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta. Counters are monotone: a negative
// delta is a programming error and panics (it used to be silently ignored,
// which hid caller bugs as mysteriously-low counts).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("metrics: negative delta %d on monotone Counter", delta))
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram collects float64 samples and answers mean/percentile queries.
// It stores raw samples (simulations here are small enough that exact
// percentiles beat approximation sketches). The zero value is ready to use.
// Histogram is not safe for concurrent use.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.Sum() / float64(len(h.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank, or 0 with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	h.ensureSorted()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[n-1]
	}
	rank := int(p/100*float64(n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return h.samples[rank]
}

// Stddev returns the population standard deviation.
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return sqrt(ss / float64(n))
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// sqrt is Newton's method; avoids importing math for one call site and
// keeps the package dependency-free. Accurate to float64 precision for the
// magnitudes observed here.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 64; i++ {
		nz := (z + x/z) / 2
		if nz == z {
			break
		}
		z = nz
	}
	return z
}

// HumanBytes renders a byte count as B/KB/MB/GB with two decimals, using
// 1024-based units (the convention the storage tables use).
func HumanBytes(n float64) string {
	const (
		kb = 1024
		mb = 1024 * kb
		gb = 1024 * mb
		tb = 1024.0 * gb
	)
	switch {
	case n >= tb:
		return fmt.Sprintf("%.2f TB", n/tb)
	case n >= gb:
		return fmt.Sprintf("%.2f GB", n/gb)
	case n >= mb:
		return fmt.Sprintf("%.2f MB", n/mb)
	case n >= kb:
		return fmt.Sprintf("%.2f KB", n/kb)
	default:
		return fmt.Sprintf("%.0f B", n)
	}
}

// Table renders aligned text tables and CSV for experiment output.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; cells are formatted with %v. Rows are normalized
// to the column count: extra cells are dropped and short rows are padded
// with empty cells, so a mismatched AddRow renders (and rounds-trips
// through CSV) instead of panicking in writeRow.
func (t *Table) AddRow(cells ...any) {
	if len(t.Columns) > 0 && len(cells) > len(t.Columns) {
		cells = cells[:len(t.Columns)]
	}
	row := make([]string, len(cells), max(len(cells), len(t.Columns)))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	for len(row) < len(t.Columns) {
		row = append(row, "")
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// trimFloat renders floats with up to 4 significant decimals, no trailing
// zeros. Values whose digits all trim away render as "0", never "-0": a
// small negative like -0.00001 formats to "-0.0000" and must not leak a
// minus sign into the table.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" || s == "-0" {
		return "0"
	}
	return s
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
