package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

// Counters are monotone: a negative delta used to be silently ignored,
// which hid caller bugs behind mysteriously-low counts. It must panic.
func TestCounterNegativeDeltaPanics(t *testing.T) {
	var c Counter
	c.Add(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-10) did not panic")
		}
		if got := c.Value(); got != 5 {
			t.Fatalf("Value() after rejected Add = %d, want 5", got)
		}
	}()
	c.Add(-10)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 50_000 {
		t.Fatalf("Value() = %d, want 50000", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 || h.Stddev() != 0 {
		t.Fatal("empty histogram should answer 0 for all queries")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean() = %v, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Percentile(50); got != 3 {
		t.Fatalf("P50 = %v, want 3", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
	if got := h.Percentile(100); got != 5 {
		t.Fatalf("P100 = %v, want 5", got)
	}
	wantStd := math.Sqrt(2) // population stddev of 1..5
	if math.Abs(h.Stddev()-wantStd) > 1e-9 {
		t.Fatalf("Stddev() = %v, want %v", h.Stddev(), wantStd)
	}
}

func TestHistogramObserveAfterQuery(t *testing.T) {
	var h Histogram
	h.Observe(10)
	_ = h.Max()
	h.Observe(20)
	if h.Max() != 20 {
		t.Fatal("sample recorded after a query was lost")
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var h Histogram
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				h.Observe(v)
			}
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if h.Count() > 0 && v < prev {
				return false
			}
			if h.Count() > 0 {
				prev = v
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSqrtMatchesMath(t *testing.T) {
	for _, x := range []float64{0, 1, 2, 100, 1e-9, 12345.678, 1e12} {
		got, want := sqrt(x), math.Sqrt(x)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("sqrt(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{1024, "1.00 KB"},
		{1536, "1.50 KB"},
		{1 << 20, "1.00 MB"},
		{float64(3) * (1 << 30), "3.00 GB"},
		{float64(2) * (1 << 40), "2.00 TB"},
	}
	for _, tc := range cases {
		if got := HumanBytes(tc.in); got != tc.want {
			t.Fatalf("HumanBytes(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", 1)
	tbl.AddRow("b", 2.5)
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows() = %d", tbl.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x,y", `q"o`)
	csv := tbl.CSV()
	want := "a,b\n\"x,y\",\"q\"\"o\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1, "1"},
		{1.5, "1.5"},
		{0.25, "0.25"},
		{0.33333333, "0.3333"},
		{0, "0"},
		{-2.5, "-2.5"},
		// Negative-zero regression family: values whose digits all trim
		// away must render "0", never "-0".
		{-0.00001, "0"},
		{-0.00004, "0"},
		{math.Copysign(0, -1), "0"},
		{-0.0001, "-0.0001"},
		{3, "3"},
		{-3, "-3"},
	}
	for _, tc := range cases {
		if got := trimFloat(tc.in); got != tc.want {
			t.Fatalf("trimFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// Regression: AddRow with more cells than Columns used to pass width
// computation (guarded) but panic in writeRow's unguarded widths[i]; rows
// are now clamped to the column count, and short rows pad out.
func TestTableRowWidthMismatch(t *testing.T) {
	tbl := NewTable("mismatch", "a", "b")
	tbl.AddRow("x", "y", "EXTRA") // one cell too many
	tbl.AddRow("solo")            // one cell short
	out := tbl.String()           // must not panic
	if strings.Contains(out, "EXTRA") {
		t.Fatalf("over-wide cell leaked into output:\n%s", out)
	}
	if !strings.Contains(out, "solo") {
		t.Fatalf("short row lost:\n%s", out)
	}
	csv := tbl.CSV() // must not panic either
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV rows = %d, want 3:\n%s", len(lines), csv)
	}
	// Every CSV row has exactly the column count worth of cells.
	for _, line := range lines {
		if got := strings.Count(line, ","); got != 1 {
			t.Fatalf("row %q has %d commas, want 1", line, got)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("ici.retrieve.rounds").Add(3)
	r.Counter("ici.retrieve.rounds").Inc() // same instrument by name
	r.Counter("consensus.votes").Inc()
	h := r.Histogram("net.latency")
	h.Observe(10)
	h.Observe(30)

	if got := r.Counter("ici.retrieve.rounds").Value(); got != 4 {
		t.Fatalf("shared counter = %d, want 4", got)
	}
	names := r.Names()
	want := []string{"consensus.votes", "ici.retrieve.rounds", "net.latency"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	snap := r.Snapshot()
	if snap["ici.retrieve.rounds"] != 4 || snap["net.latency.mean"] != 20 || snap["net.latency.count"] != 2 {
		t.Fatalf("Snapshot() = %v", snap)
	}
	js := r.JSON()
	if !strings.Contains(js, `"consensus.votes": 1`) || !strings.Contains(js, `"net.latency.mean": 20`) {
		t.Fatalf("JSON() = %s", js)
	}
	tbl := r.Table("metrics")
	if tbl.NumRows() != len(snap) {
		t.Fatalf("Table rows = %d, want %d", tbl.NumRows(), len(snap))
	}
}

func TestRegistryNil(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc() // throwaway, must not panic
	r.Histogram("y").Observe(1)
	if r.Names() != nil || r.Snapshot() != nil {
		t.Fatal("nil registry should enumerate nothing")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared = %d, want 8000", got)
	}
}
