package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry names and enumerates metrics so every component dumps a
// consistent snapshot instead of ad-hoc struct fields. Names are dotted
// paths by convention ("ici.retrieve.rounds", "consensus.votes");
// Counter/Histogram get-or-create, so independent instrumentation sites
// sharing a name share the instrument.
//
// Registry's own maps are safe for concurrent use, and the Counters it
// hands out are atomic. Histograms are NOT concurrency-safe (see
// Histogram); concurrent paths must observe into them under their own
// serialization, as the simulator's single-threaded event loop does.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a throwaway counter so uninstrumented call sites need no
// nil checks.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a throwaway histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Names enumerates every registered metric name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns every counter value and histogram summary keyed by name
// — the stable map the JSON dump and experiment tables are built from.
// Histogram entries expand to name.count/name.mean/name.p95/name.max.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+4*len(r.histograms))
	for n, c := range r.counters {
		out[n] = float64(c.Value())
	}
	for n, h := range r.histograms {
		out[n+".count"] = float64(h.Count())
		out[n+".mean"] = h.Mean()
		out[n+".p95"] = h.Percentile(95)
		out[n+".max"] = h.Max()
	}
	return out
}

// JSON renders the snapshot as a deterministic (name-sorted) expvar-style
// JSON object — what the -metrics flag dumps.
func (r *Registry) JSON() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "  %q: %s", n, trimFloat(snap[n]))
	}
	b.WriteString("\n}\n")
	return b.String()
}

// Table renders the registry as a two-column metrics table, for experiment
// summaries.
func (r *Registry) Table(title string) *Table {
	t := NewTable(title, "metric", "value")
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.AddRow(n, snap[n])
	}
	return t
}
