// Package strategy defines the common contract every storage strategy in
// this repository satisfies, so the experiment harness can sweep Full
// replication, RapidChain-style sharding, and ICIStrategy interchangeably.
//
// Two layers exist deliberately:
//
//   - Accountant is the analytic layer: given the protocol's placement
//     rules it answers exact per-node storage and bootstrap questions at any
//     scale (thousands of nodes, arbitrarily long chains) without moving a
//     byte. The storage figures (E1-E3, E5, E8) run here.
//   - The protocol layer (internal/core, internal/baseline) executes the
//     same placement rules as real message exchanges over the simulated
//     network; the communication/latency figures (E4, E6, E9, E10) run
//     there. Tests cross-check that both layers agree.
package strategy

import (
	"errors"

	"icistrategy/internal/chain"
)

// Common errors.
var (
	ErrNodeOutOfRange = errors.New("strategy: node index out of range")
)

// Accountant models per-node storage consumption of one strategy. Block
// bodies are identified by their index (height); the accountant tracks the
// body sizes it has been fed and answers byte-exact questions.
type Accountant interface {
	// Name identifies the strategy in tables ("full", "rapidchain", "ici").
	Name() string
	// AddBlock records the next finalized block's body size in bytes.
	AddBlock(bodySize int64)
	// NumBlocks returns how many blocks have been recorded.
	NumBlocks() int
	// NumNodes returns the network size.
	NumNodes() int
	// NodeBytes returns the exact number of bytes node stores (headers +
	// its share of bodies).
	NodeBytes(node int) (int64, error)
	// BootstrapBytes returns the bytes a node must download to (re)join at
	// the current chain length: all headers plus the body data the
	// strategy requires it to hold.
	BootstrapBytes(node int) (int64, error)
}

// MeanNodeBytes averages NodeBytes across all nodes. Strategies with
// uneven placement (hash partitions, remainder chunks) report their true
// mean this way.
func MeanNodeBytes(a Accountant) (float64, error) {
	n := a.NumNodes()
	if n == 0 {
		return 0, nil
	}
	var sum int64
	for i := 0; i < n; i++ {
		b, err := a.NodeBytes(i)
		if err != nil {
			return 0, err
		}
		sum += b
	}
	return float64(sum) / float64(n), nil
}

// MaxNodeBytes returns the largest per-node storage footprint.
func MaxNodeBytes(a Accountant) (int64, error) {
	var m int64
	for i := 0; i < a.NumNodes(); i++ {
		b, err := a.NodeBytes(i)
		if err != nil {
			return 0, err
		}
		if b > m {
			m = b
		}
	}
	return m, nil
}

// FullReplication is the Bitcoin-style baseline: every node stores every
// header and every full body.
type FullReplication struct {
	nodes      int
	blocks     int
	totalBody  int64
	headerCost int64
}

var _ Accountant = (*FullReplication)(nil)

// NewFullReplication creates the baseline for n nodes.
func NewFullReplication(n int) *FullReplication {
	return &FullReplication{nodes: n}
}

// Name implements Accountant.
func (f *FullReplication) Name() string { return "full" }

// AddBlock implements Accountant.
func (f *FullReplication) AddBlock(bodySize int64) {
	f.blocks++
	f.totalBody += bodySize
	f.headerCost += int64(chain.HeaderSize)
}

// NumBlocks implements Accountant.
func (f *FullReplication) NumBlocks() int { return f.blocks }

// NumNodes implements Accountant.
func (f *FullReplication) NumNodes() int { return f.nodes }

// NodeBytes implements Accountant.
func (f *FullReplication) NodeBytes(node int) (int64, error) {
	if node < 0 || node >= f.nodes {
		return 0, ErrNodeOutOfRange
	}
	return f.headerCost + f.totalBody, nil
}

// BootstrapBytes implements Accountant: a joining node downloads the whole
// chain.
func (f *FullReplication) BootstrapBytes(node int) (int64, error) {
	return f.NodeBytes(node)
}
