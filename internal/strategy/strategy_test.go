package strategy

import (
	"testing"

	"icistrategy/internal/chain"
)

func TestFullReplicationStoresEverything(t *testing.T) {
	f := NewFullReplication(10)
	if f.Name() != "full" {
		t.Fatalf("Name() = %q", f.Name())
	}
	sizes := []int64{1000, 2500, 4000}
	var total int64
	for _, s := range sizes {
		f.AddBlock(s)
		total += s
	}
	if f.NumBlocks() != 3 || f.NumNodes() != 10 {
		t.Fatalf("shape: %d blocks, %d nodes", f.NumBlocks(), f.NumNodes())
	}
	want := total + 3*int64(chain.HeaderSize)
	for i := 0; i < 10; i++ {
		got, err := f.NodeBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("node %d stores %d, want %d", i, got, want)
		}
		bs, err := f.BootstrapBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		if bs != want {
			t.Fatalf("bootstrap = %d, want %d", bs, want)
		}
	}
}

func TestFullReplicationRange(t *testing.T) {
	f := NewFullReplication(3)
	if _, err := f.NodeBytes(3); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := f.NodeBytes(-1); err == nil {
		t.Fatal("negative node accepted")
	}
}

func TestMeanAndMaxNodeBytes(t *testing.T) {
	f := NewFullReplication(5)
	f.AddBlock(100)
	mean, err := MeanNodeBytes(f)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(100 + chain.HeaderSize)
	if mean != want {
		t.Fatalf("mean = %v, want %v", mean, want)
	}
	mx, err := MaxNodeBytes(f)
	if err != nil {
		t.Fatal(err)
	}
	if mx != int64(want) {
		t.Fatalf("max = %v, want %v", mx, want)
	}
}

func TestMeanNodeBytesEmptyNetwork(t *testing.T) {
	f := NewFullReplication(0)
	mean, err := MeanNodeBytes(f)
	if err != nil || mean != 0 {
		t.Fatalf("mean over empty network = %v, %v", mean, err)
	}
}
