package storage

import (
	"testing"

	"icistrategy/internal/blockcrypto"
)

// TestStoreAccountingAlwaysConsistent drives a store with a random
// put/delete/pin/GC sequence and checks after every operation that the
// stats match a shadow model computed from scratch.
func TestStoreAccountingAlwaysConsistent(t *testing.T) {
	rng := blockcrypto.NewRNG(8080)
	s := NewStore()
	shadow := make(map[ChunkID]int) // id -> size
	pinned := make(map[ChunkID]bool)

	check := func(step int) {
		t.Helper()
		var bytes int64
		for _, sz := range shadow {
			bytes += int64(sz)
		}
		st := s.Stats()
		if st.ChunkBytes != bytes || st.ChunkCount != int64(len(shadow)) {
			t.Fatalf("step %d: stats %+v, shadow %d chunks %d bytes", step, st, len(shadow), bytes)
		}
	}

	idFor := func(i int) ChunkID {
		return ChunkID{Block: blockcrypto.Sum256([]byte{byte(i % 7)}), Index: i % 11}
	}
	for step := 0; step < 2000; step++ {
		id := idFor(rng.Intn(77))
		switch rng.Intn(5) {
		case 0, 1: // put
			size := rng.Intn(100) + 1
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(rng.Uint64())
			}
			// Same ID must carry the same data (store rejects conflicts):
			// derive data deterministically from the ID instead.
			data = append(id.Block[:8:8], byte(id.Index))
			if err := s.PutChunk(NewChunk(id, data)); err != nil {
				t.Fatalf("step %d: put: %v", step, err)
			}
			shadow[id] = len(data)
		case 2: // delete
			err := s.DeleteChunk(id)
			if pinned[id] {
				if _, exists := shadow[id]; exists && err == nil {
					t.Fatalf("step %d: pinned chunk deleted", step)
				}
			} else if err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			} else {
				delete(shadow, id)
			}
		case 3: // pin / unpin
			if rng.Intn(2) == 0 {
				s.Pin(id)
				pinned[id] = true
			} else {
				s.Unpin(id)
				delete(pinned, id)
			}
		case 4: // GC everything unpinned with Index >= 6
			s.GC(func(cid ChunkID) bool { return cid.Index < 6 })
			for cid := range shadow {
				if cid.Index >= 6 && !pinned[cid] {
					delete(shadow, cid)
				}
			}
		}
		check(step)
	}
}
