package storage

import (
	"bytes"
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
)

func testHeader(height uint64) chain.Header {
	return chain.Header{
		Height:     height,
		PrevHash:   blockcrypto.Sum256([]byte{byte(height)}),
		MerkleRoot: blockcrypto.Sum256([]byte{byte(height), 1}),
		TxCount:    1,
	}
}

func testChunk(block byte, idx int, size int) Chunk {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i) ^ block
	}
	return NewChunk(ChunkID{Block: blockcrypto.Sum256([]byte{block}), Index: idx}, data)
}

func TestHeaderRoundTrip(t *testing.T) {
	s := NewStore()
	h := testHeader(3)
	s.PutHeader(h)
	got, err := s.Header(h.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatal("header round trip mismatch")
	}
	if !s.HasHeader(h.Hash()) {
		t.Fatal("HasHeader false after Put")
	}
	if _, err := s.Header(blockcrypto.Sum256([]byte("missing"))); err == nil {
		t.Fatal("missing header found")
	}
}

func TestHeaderIdempotentAccounting(t *testing.T) {
	s := NewStore()
	h := testHeader(1)
	s.PutHeader(h)
	s.PutHeader(h)
	st := s.Stats()
	if st.HeaderCount != 1 || st.HeaderBytes != int64(chain.HeaderSize) {
		t.Fatalf("stats after duplicate put: %+v", st)
	}
}

func TestHeadersInsertionOrder(t *testing.T) {
	s := NewStore()
	for i := uint64(0); i < 5; i++ {
		s.PutHeader(testHeader(i))
	}
	hs := s.Headers()
	if len(hs) != 5 {
		t.Fatalf("Headers() len = %d", len(hs))
	}
	for i, h := range hs {
		if h.Height != uint64(i) {
			t.Fatalf("insertion order broken at %d: height %d", i, h.Height)
		}
	}
}

func TestChunkRoundTrip(t *testing.T) {
	s := NewStore()
	c := testChunk(1, 0, 100)
	if err := s.PutChunk(c); err != nil {
		t.Fatal(err)
	}
	got, err := s.Chunk(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != string(c.Data) {
		t.Fatal("chunk data mismatch")
	}
	if !s.HasChunk(c.ID) {
		t.Fatal("HasChunk false after Put")
	}
	st := s.Stats()
	if st.ChunkCount != 1 || st.ChunkBytes != 100 {
		t.Fatalf("stats: %+v", st)
	}
	if st.TotalBytes() != 100 {
		t.Fatalf("TotalBytes() = %d", st.TotalBytes())
	}
}

func TestPutChunkRejectsEmptyAndTampered(t *testing.T) {
	s := NewStore()
	empty := Chunk{ID: ChunkID{Index: 0}}
	if err := s.PutChunk(empty); err == nil {
		t.Fatal("empty chunk accepted")
	}
	c := testChunk(1, 0, 10)
	c.Data[0] ^= 1 // digest now wrong
	if err := s.PutChunk(c); err == nil {
		t.Fatal("tampered chunk accepted")
	}
}

func TestPutChunkConflict(t *testing.T) {
	s := NewStore()
	a := testChunk(1, 0, 10)
	if err := s.PutChunk(a); err != nil {
		t.Fatal(err)
	}
	if err := s.PutChunk(a); err != nil {
		t.Fatalf("idempotent re-put failed: %v", err)
	}
	b := NewChunk(a.ID, []byte("different content"))
	if err := s.PutChunk(b); err == nil {
		t.Fatal("conflicting chunk accepted under same ID")
	}
}

func TestDeleteChunkAccounting(t *testing.T) {
	s := NewStore()
	c := testChunk(2, 1, 64)
	if err := s.PutChunk(c); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteChunk(c.ID); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ChunkBytes != 0 || st.ChunkCount != 0 {
		t.Fatalf("stats after delete: %+v", st)
	}
	if err := s.DeleteChunk(c.ID); err != nil {
		t.Fatalf("double delete errored: %v", err)
	}
}

func TestPinBlocksDeletion(t *testing.T) {
	s := NewStore()
	c := testChunk(2, 1, 64)
	if err := s.PutChunk(c); err != nil {
		t.Fatal(err)
	}
	s.Pin(c.ID)
	if err := s.DeleteChunk(c.ID); err == nil {
		t.Fatal("pinned chunk deleted")
	}
	s.Unpin(c.ID)
	if err := s.DeleteChunk(c.ID); err != nil {
		t.Fatal(err)
	}
}

func TestChunksForBlockSorted(t *testing.T) {
	s := NewStore()
	block := blockcrypto.Sum256([]byte{9})
	for _, idx := range []int{5, 1, 3} {
		c := NewChunk(ChunkID{Block: block, Index: idx}, []byte{byte(idx)})
		if err := s.PutChunk(c); err != nil {
			t.Fatal(err)
		}
	}
	got := s.ChunksForBlock(block)
	want := []int{1, 3, 5}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("ChunksForBlock = %v, want %v", got, want)
	}
	if n := len(s.ChunksForBlock(blockcrypto.Sum256([]byte("other")))); n != 0 {
		t.Fatalf("unrelated block has %d chunks", n)
	}
}

func TestGC(t *testing.T) {
	s := NewStore()
	keepers := testChunk(1, 0, 10)
	victim := testChunk(1, 1, 20)
	pinnedVictim := testChunk(1, 2, 30)
	for _, c := range []Chunk{keepers, victim, pinnedVictim} {
		if err := s.PutChunk(c); err != nil {
			t.Fatal(err)
		}
	}
	s.Pin(pinnedVictim.ID)
	freed := s.GC(func(id ChunkID) bool { return id == keepers.ID })
	if freed != 20 {
		t.Fatalf("GC freed %d bytes, want 20", freed)
	}
	if !s.HasChunk(keepers.ID) || !s.HasChunk(pinnedVictim.ID) || s.HasChunk(victim.ID) {
		t.Fatal("GC kept/removed the wrong chunks")
	}
}

// TestChunkMutationDoesNotCorruptStore is the regression test for the
// aliasing bug: PutChunk used to retain the caller's slice and Chunk used
// to return the stored slice uncopied, so mutating either buffer silently
// corrupted the store.
func TestChunkMutationDoesNotCorruptStore(t *testing.T) {
	s := NewStore()
	c := testChunk(4, 0, 64)
	orig := append([]byte(nil), c.Data...)
	if err := s.PutChunk(c); err != nil {
		t.Fatal(err)
	}
	// Mutating the ingested buffer after the put must not reach the store.
	c.Data[0] ^= 0xFF
	got, err := s.Chunk(c.ID)
	if err != nil {
		t.Fatalf("read after ingest-buffer mutation: %v", err)
	}
	if !bytes.Equal(got.Data, orig) {
		t.Fatal("store aliased the caller's put buffer")
	}
	// Mutating a returned chunk must not corrupt a later re-read.
	got.Data[1] ^= 0xFF
	again, err := s.Chunk(c.ID)
	if err != nil {
		t.Fatalf("re-read after returned-chunk mutation: %v", err)
	}
	if !bytes.Equal(again.Data, orig) {
		t.Fatal("store aliased the buffer it returned to a reader")
	}
}

// checkBlockIndex asserts the per-block index and the chunk map describe
// exactly the same set of chunks.
func checkBlockIndex(t *testing.T, s *Store) {
	t.Helper()
	total := 0
	for block, idxs := range s.byBlock {
		if len(idxs) == 0 {
			t.Fatalf("index holds empty entry for block %s", block.Short())
		}
		for idx := range idxs {
			if _, ok := s.chunks[ChunkID{Block: block, Index: idx}]; !ok {
				t.Fatalf("index lists missing chunk %s/%d", block.Short(), idx)
			}
			total++
		}
	}
	if total != len(s.chunks) {
		t.Fatalf("index covers %d chunks, store holds %d", total, len(s.chunks))
	}
}

// TestBlockIndexConsistencyAfterGC drives put/delete/GC and asserts the
// per-block index never drifts from the chunk map.
func TestBlockIndexConsistencyAfterGC(t *testing.T) {
	s := NewStore()
	for block := byte(0); block < 4; block++ {
		for idx := 0; idx < 6; idx++ {
			if err := s.PutChunk(testChunk(block, idx, 16)); err != nil {
				t.Fatal(err)
			}
		}
	}
	checkBlockIndex(t, s)
	pin := testChunk(2, 3, 16).ID
	s.Pin(pin)
	if err := s.DeleteChunk(testChunk(1, 5, 16).ID); err != nil {
		t.Fatal(err)
	}
	checkBlockIndex(t, s)
	// GC away every odd index; the pinned chunk survives regardless.
	s.GC(func(id ChunkID) bool { return id.Index%2 == 0 })
	checkBlockIndex(t, s)
	if !s.HasChunk(pin) {
		t.Fatal("GC removed a pinned chunk")
	}
	for block := byte(0); block < 4; block++ {
		want := []int{0, 2, 4}
		if block == 2 {
			want = []int{0, 2, 3, 4}
		}
		got := s.ChunksForBlock(testChunk(block, 0, 16).ID.Block)
		if len(got) != len(want) {
			t.Fatalf("block %d: ChunksForBlock = %v, want %v", block, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("block %d: ChunksForBlock = %v, want %v", block, got, want)
			}
		}
	}
	// Dropping the rest must empty the index entirely.
	s.Unpin(pin)
	s.GC(func(ChunkID) bool { return false })
	checkBlockIndex(t, s)
	if len(s.byBlock) != 0 {
		t.Fatalf("index still holds %d blocks after full GC", len(s.byBlock))
	}
}

func TestCorruptionDetectedOnRead(t *testing.T) {
	s := NewStore()
	c := testChunk(3, 0, 50)
	if err := s.PutChunk(c); err != nil {
		t.Fatal(err)
	}
	if !s.Corrupt(c.ID) {
		t.Fatal("Corrupt reported missing chunk")
	}
	if _, err := s.Chunk(c.ID); err == nil {
		t.Fatal("corrupted chunk read back without error")
	}
	if s.Corrupt(ChunkID{Index: 99}) {
		t.Fatal("Corrupt on missing chunk reported true")
	}
}

func TestChunkIDString(t *testing.T) {
	id := ChunkID{Block: blockcrypto.Sum256([]byte("b")), Index: 7}
	if got := id.String(); got == "" {
		t.Fatal("empty ChunkID string")
	}
}
