// Package storage implements the node-local stores every strategy builds
// on: a header store (tiny, every node keeps all headers) and a chunk store
// holding the slices of block bodies a node is responsible for, with exact
// byte accounting, pinning, and garbage collection.
//
// The stores are in-memory maps — the simulator runs thousands of nodes in
// one process — but the accounting mirrors what an on-disk layout would
// consume, which is what the storage experiments measure.
package storage

import (
	"errors"
	"fmt"
	"sort"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
)

// Store errors.
var (
	ErrNotFound   = errors.New("storage: not found")
	ErrCorrupted  = errors.New("storage: chunk does not match its digest")
	ErrChunkEmpty = errors.New("storage: chunk is empty")
)

// ChunkID names one chunk of one block's body: the block hash plus the
// chunk index within the block.
type ChunkID struct {
	Block blockcrypto.Hash
	Index int
}

// String implements fmt.Stringer.
func (c ChunkID) String() string {
	return fmt.Sprintf("%s/%d", c.Block.Short(), c.Index)
}

// Chunk is a stored slice of a block body together with its digest so reads
// are self-verifying.
type Chunk struct {
	ID     ChunkID
	Data   []byte
	Digest blockcrypto.Hash
}

// NewChunk builds a chunk, computing its digest.
func NewChunk(id ChunkID, data []byte) Chunk {
	return Chunk{ID: id, Data: data, Digest: blockcrypto.Sum256(data)}
}

// Verify reports whether the chunk data still matches its digest.
func (c *Chunk) Verify() error {
	if len(c.Data) == 0 {
		return ErrChunkEmpty
	}
	if blockcrypto.Sum256(c.Data) != c.Digest {
		return fmt.Errorf("%w: %s", ErrCorrupted, c.ID)
	}
	return nil
}

// Stats is a storage usage snapshot in bytes and object counts.
type Stats struct {
	HeaderBytes int64
	HeaderCount int64
	ChunkBytes  int64
	ChunkCount  int64
}

// TotalBytes returns header plus chunk bytes.
func (s Stats) TotalBytes() int64 { return s.HeaderBytes + s.ChunkBytes }

// Store is one node's local storage. The zero value is not usable; create
// with NewStore. Store is not safe for concurrent use (the simulator is
// single-threaded per node).
type Store struct {
	headers     map[blockcrypto.Hash]chain.Header
	headerOrder []blockcrypto.Hash
	chunks      map[ChunkID]Chunk
	// byBlock indexes stored chunk indices per block, kept in lockstep with
	// chunks by PutChunk/DeleteChunk/GC, so retrieval and repair paths pay
	// O(chunks of that block) instead of scanning the whole store.
	byBlock map[blockcrypto.Hash]map[int]struct{}
	pinned  map[ChunkID]bool
	stats   Stats
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		headers: make(map[blockcrypto.Hash]chain.Header),
		chunks:  make(map[ChunkID]Chunk),
		byBlock: make(map[blockcrypto.Hash]map[int]struct{}),
		pinned:  make(map[ChunkID]bool),
	}
}

// PutHeader stores a block header (idempotent).
func (s *Store) PutHeader(h chain.Header) {
	key := h.Hash()
	if _, ok := s.headers[key]; ok {
		return
	}
	s.headers[key] = h
	s.headerOrder = append(s.headerOrder, key)
	s.stats.HeaderBytes += int64(chain.HeaderSize)
	s.stats.HeaderCount++
}

// Header fetches a stored header by block hash.
func (s *Store) Header(block blockcrypto.Hash) (chain.Header, error) {
	h, ok := s.headers[block]
	if !ok {
		return chain.Header{}, fmt.Errorf("header %s: %w", block.Short(), ErrNotFound)
	}
	return h, nil
}

// HasHeader reports whether the header is stored.
func (s *Store) HasHeader(block blockcrypto.Hash) bool {
	_, ok := s.headers[block]
	return ok
}

// Headers returns all stored headers in insertion order.
func (s *Store) Headers() []chain.Header {
	out := make([]chain.Header, 0, len(s.headerOrder))
	for _, key := range s.headerOrder {
		out = append(out, s.headers[key])
	}
	return out
}

// PutChunk stores a chunk after verifying it (idempotent; re-putting the
// same chunk is a no-op, re-putting different data under the same ID is an
// error). The store keeps a private copy of the data: a caller mutating its
// buffer after the put cannot corrupt the stored chunk.
func (s *Store) PutChunk(c Chunk) error {
	if err := c.Verify(); err != nil {
		return err
	}
	if existing, ok := s.chunks[c.ID]; ok {
		if existing.Digest != c.Digest {
			return fmt.Errorf("storage: conflicting data for chunk %s", c.ID)
		}
		return nil
	}
	c.Data = append([]byte(nil), c.Data...)
	s.chunks[c.ID] = c
	idxs, ok := s.byBlock[c.ID.Block]
	if !ok {
		idxs = make(map[int]struct{})
		s.byBlock[c.ID.Block] = idxs
	}
	idxs[c.ID.Index] = struct{}{}
	s.stats.ChunkBytes += int64(len(c.Data))
	s.stats.ChunkCount++
	return nil
}

// Chunk fetches a stored chunk, verifying integrity on the way out. The
// returned chunk holds a private copy of the data: mutating it cannot
// corrupt the store, and a later re-read returns the original bytes.
func (s *Store) Chunk(id ChunkID) (Chunk, error) {
	c, ok := s.chunks[id]
	if !ok {
		return Chunk{}, fmt.Errorf("chunk %s: %w", id, ErrNotFound)
	}
	if err := c.Verify(); err != nil {
		return Chunk{}, err
	}
	c.Data = append([]byte(nil), c.Data...)
	return c, nil
}

// HasChunk reports whether the chunk is stored.
func (s *Store) HasChunk(id ChunkID) bool {
	_, ok := s.chunks[id]
	return ok
}

// DeleteChunk removes a chunk unless pinned. Deleting a missing chunk is a
// no-op.
func (s *Store) DeleteChunk(id ChunkID) error {
	if s.pinned[id] {
		return fmt.Errorf("storage: chunk %s is pinned", id)
	}
	c, ok := s.chunks[id]
	if !ok {
		return nil
	}
	s.dropChunk(id, c)
	return nil
}

// dropChunk removes a chunk from the map, the per-block index, and the
// accounting. The caller has already checked pinning.
func (s *Store) dropChunk(id ChunkID, c Chunk) {
	delete(s.chunks, id)
	if idxs, ok := s.byBlock[id.Block]; ok {
		delete(idxs, id.Index)
		if len(idxs) == 0 {
			delete(s.byBlock, id.Block)
		}
	}
	s.stats.ChunkBytes -= int64(len(c.Data))
	s.stats.ChunkCount--
}

// Pin marks a chunk as protected from deletion and GC.
func (s *Store) Pin(id ChunkID) { s.pinned[id] = true }

// Unpin removes deletion protection.
func (s *Store) Unpin(id ChunkID) { delete(s.pinned, id) }

// ChunksForBlock returns the indices of stored chunks of the given block,
// ascending. It reads the per-block index, so the cost is proportional to
// the chunks of that one block, not the whole store.
func (s *Store) ChunksForBlock(block blockcrypto.Hash) []int {
	idxs, ok := s.byBlock[block]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(idxs))
	for idx := range idxs {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// GC deletes every unpinned chunk for which keep returns false and returns
// the number of bytes freed.
func (s *Store) GC(keep func(ChunkID) bool) int64 {
	var freed int64
	for id, c := range s.chunks {
		if s.pinned[id] || keep(id) {
			continue
		}
		freed += int64(len(c.Data))
		s.dropChunk(id, c)
	}
	return freed
}

// Stats returns the current usage snapshot.
func (s *Store) Stats() Stats { return s.stats }

// Corrupt flips a byte of the stored chunk, for failure-injection tests.
// It reports whether the chunk existed. The stored slice is private (copied
// on put), so it can be mutated in place; the digest is left unchanged, so
// reads now fail verification.
func (s *Store) Corrupt(id ChunkID) bool {
	c, ok := s.chunks[id]
	if !ok || len(c.Data) == 0 {
		return false
	}
	c.Data[0] ^= 0xFF
	return true
}
