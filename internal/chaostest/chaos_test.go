package chaostest

import (
	"fmt"
	"testing"
	"time"

	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/simnet"
	"icistrategy/internal/workload"
)

// buildSystem assembles a system plus a transaction generator for one seed.
func buildSystem(t testing.TB, cfg core.Config) (*core.System, *workload.Generator) {
	t.Helper()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{Accounts: 40, PayloadBytes: 32, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

// finalizedReader returns the lowest-ID node that committed the block, or
// nil when no node did. Iterating IDs in order keeps runs deterministic.
func finalizedReader(sys *core.System, nodes int, block *chain.Block) *core.Node {
	for id := 0; id < nodes; id++ {
		n, err := sys.Node(simnet.NodeID(id))
		if err != nil {
			continue
		}
		if n.HasFinalized(block.Hash()) {
			return n
		}
	}
	return nil
}

// retrieveVerified runs a full-block retrieval through reader and checks
// the result against the original block. The retrieval itself re-verifies
// the Merkle root; this additionally pins hash and transaction count.
func retrieveVerified(t *testing.T, sys *core.System, reader *core.Node, want *chain.Block) {
	t.Helper()
	var got *chain.Block
	var gotErr error
	fired := false
	reader.RetrieveBlock(sys.Network(), want.Hash(), func(b *chain.Block, err error) {
		got, gotErr, fired = b, err, true
	})
	sys.Network().RunUntilIdle()
	if !fired {
		t.Fatalf("retrieve %s: callback never fired", want.Hash().Short())
	}
	if gotErr != nil {
		t.Fatalf("retrieve %s via node %d: %v", want.Hash().Short(), reader.ID(), gotErr)
	}
	if got.Hash() != want.Hash() || len(got.Txs) != len(want.Txs) {
		t.Fatalf("retrieve %s: wrong block back (%d txs, want %d)",
			want.Hash().Short(), len(got.Txs), len(want.Txs))
	}
}

// TestChaosSoak runs the distribute → verify → retrieve → repair lifecycle
// under randomized fault schedules for 20 independent seeds: message drops
// up to 10%, duplication, reordering, and at least one crash/restart per
// run. The invariant: every block that committed anywhere in the network
// must remain retrievable with Merkle-verified content, and membership
// repair must eventually restore full replication.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	for seed := uint64(1); seed <= 20; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosLifecycle(t, seed)
		})
	}
}

func runChaosLifecycle(t *testing.T, seed uint64) {
	cfg := core.Config{Nodes: 18, Clusters: 2, Replication: 2, Seed: seed}
	sys, gen := buildSystem(t, cfg)
	net := sys.Network()

	// Drop rate varies per seed from 2% to the 10% ceiling; duplication and
	// reordering stay on for every run.
	drop := 0.02 + 0.02*float64(seed%5)
	net.EnableFaults(seed*2654435761+1, simnet.FaultConfig{
		DropRate:     drop,
		DupRate:      0.05,
		ReorderRate:  0.10,
		ReorderDelay: 200 * time.Millisecond,
	})

	members0, err := sys.ClusterMembers(0)
	if err != nil {
		t.Fatal(err)
	}
	members1, err := sys.ClusterMembers(1)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: distribute under faults, with one node crashed through the
	// first distributions and restarting mid-run, and a second crash later.
	victim := members0[int(seed)%len(members0)]
	if err := net.ScheduleCrash(victim, 5*time.Millisecond, 40*time.Second); err != nil {
		t.Fatal(err)
	}
	var blocks []*chain.Block
	produce := func(txs int) {
		t.Helper()
		b, perr := sys.ProduceBlock(gen.NextTxs(txs))
		if perr != nil {
			t.Fatal(perr)
		}
		net.RunUntilIdle()
		blocks = append(blocks, b)
	}
	produce(16)
	produce(16)
	victim2 := members1[int(seed/3)%len(members1)]
	if err := net.ScheduleCrash(victim2, 1*time.Millisecond, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	produce(16)
	produce(16)
	produce(16)

	// Phase 2: verify + retrieve. A block produced while both cluster
	// leaders happened to be crashed can legitimately miss its slot, so a
	// couple of gaps are tolerated — but every block that committed
	// anywhere must reassemble with a verified Merkle root, still under the
	// same fault regime.
	uncommitted := 0
	for _, b := range blocks {
		reader := finalizedReader(sys, cfg.Nodes, b)
		if reader == nil {
			uncommitted++
			continue
		}
		retrieveVerified(t, sys, reader, b)
	}
	if uncommitted > 2 {
		t.Fatalf("%d of %d blocks never committed anywhere", uncommitted, len(blocks))
	}

	// A light-client inclusion query through the same faulty network.
	probe := blocks[len(blocks)-1]
	reader := finalizedReader(sys, cfg.Nodes, probe)
	if reader == nil {
		reader = finalizedReader(sys, cfg.Nodes, blocks[0])
	}
	if reader == nil {
		t.Fatal("no committed block to query against")
	}
	for _, b := range blocks {
		if reader.HasFinalized(b.Hash()) {
			probe = b
			break
		}
	}
	var proof core.TxProof
	var proofErr error
	reader.QueryTxProof(net, probe.Hash(), probe.Txs[0].ID(), func(p core.TxProof, err error) {
		proof, proofErr = p, err
	})
	net.RunUntilIdle()
	if proofErr != nil {
		t.Fatalf("tx proof query: %v", proofErr)
	}
	if err := proof.Verify(); err != nil {
		t.Fatalf("tx proof verify: %v", err)
	}

	// Phase 3: a member departs permanently; repair re-establishes its
	// chunks on the surviving owners. Individual repair rounds may lose
	// fetches to the ongoing drops, so repair is re-run — each round only
	// re-fetches what is still missing — and must converge to zero lost.
	if err := sys.RemoveNode(members0[(int(seed)+1)%len(members0)]); err != nil {
		t.Fatal(err)
	}
	lost := -1
	for round := 0; round < 5; round++ {
		if err := sys.RepairCluster(0, func(l int) { lost = l }); err != nil {
			t.Fatal(err)
		}
		net.RunUntilIdle()
		if lost == 0 {
			break
		}
	}
	if lost != 0 {
		t.Fatalf("repair never converged: %d chunks still lost after 5 rounds", lost)
	}

	// Production continues after the departure.
	produce(16)
	last := blocks[len(blocks)-1]
	if reader := finalizedReader(sys, cfg.Nodes, last); reader == nil {
		t.Fatalf("post-repair block never committed")
	} else {
		retrieveVerified(t, sys, reader, last)
	}

	// The schedule must actually have exercised the fault machinery.
	fs := net.FaultStats()
	if fs.Dropped == 0 || fs.Duplicated == 0 || fs.Reordered == 0 {
		t.Fatalf("fault schedule inert: %+v", fs)
	}
	if fs.Crashes < 2 || fs.Restarts < 2 {
		t.Fatalf("expected 2 crash/restart cycles, got %+v", fs)
	}
	ms := sys.MetricsSnapshot()
	recovery := ms.RetrieveRetries + ms.TxQueryRetries + ms.FetchTimeouts +
		ms.FetchRetries + ms.BootstrapRetries + ms.DuplicateChunks +
		ms.DuplicateVotes + ms.DuplicateResponses + ms.ChunkResends + ms.CommitProbes
	if recovery == 0 {
		t.Fatalf("no recovery work recorded despite faults: %+v", ms)
	}
}

// TestChaosCorruptionIntegrity distributes blocks while a kind-aware
// corrupter tampers with chunks and votes in flight. Corruption may cost
// retries and re-sends but never integrity: tampered chunks fail their
// Merkle proofs at the verifiers, tampered votes fail their signatures at
// the leader, and every block that commits must retrieve bit-exact.
func TestChaosCorruptionIntegrity(t *testing.T) {
	cfg := core.Config{Nodes: 16, Clusters: 2, Replication: 2, Seed: 7}
	sys, gen := buildSystem(t, cfg)
	net := sys.Network()
	net.EnableFaults(40422, simnet.FaultConfig{
		DropRate:    0.03,
		CorruptRate: 0.08,
		Corrupt:     core.ChaosCorrupter(),
	})
	var blocks []*chain.Block
	for i := 0; i < 4; i++ {
		b, err := sys.ProduceBlock(gen.NextTxs(12))
		if err != nil {
			t.Fatal(err)
		}
		net.RunUntilIdle()
		blocks = append(blocks, b)
	}
	// Corruption of retrieval responses cannot be attributed to a chunk
	// (responses carry no per-tx proofs), so the read-back runs with the
	// corrupter off — what it checks is what distribution committed.
	// EnableFaults resets the counters, so capture them first.
	corrupted := net.FaultStats().Corrupted
	net.EnableFaults(40423, simnet.FaultConfig{DropRate: 0.03})
	committed := 0
	for i, b := range blocks {
		reader := finalizedReader(sys, cfg.Nodes, b)
		if reader == nil {
			continue // rejected under corruption: acceptable, never wrong
		}
		committed++
		retrieveVerified(t, sys, reader, b)
		_ = i
	}
	if committed == 0 {
		t.Fatal("no block survived 8% corruption; expected most to commit")
	}
	if corrupted == 0 {
		t.Fatal("corrupter never fired")
	}
}

// chaosTraceRun executes one fixed fault-injected lifecycle with event
// tracing on and returns everything observable about the run. Two calls
// with the same seed must return byte-identical results.
func chaosTraceRun(t *testing.T, seed uint64) (string, simnet.TrafficStats, simnet.FaultStats, core.MetricsSnapshot) {
	t.Helper()
	cfg := core.Config{Nodes: 12, Clusters: 2, Replication: 2, Seed: seed}
	sys, gen := buildSystem(t, cfg)
	net := sys.Network()
	net.EnableTrace()
	net.EnableFaults(seed^0xC0FFEE, simnet.FaultConfig{
		DropRate:     0.08,
		DupRate:      0.05,
		ReorderRate:  0.10,
		ReorderDelay: 150 * time.Millisecond,
		CorruptRate:  0.02,
		Corrupt:      core.ChaosCorrupter(),
	})
	members0, err := sys.ClusterMembers(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ScheduleCrash(members0[2], 3*time.Millisecond, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	var blocks []*chain.Block
	for i := 0; i < 3; i++ {
		b, perr := sys.ProduceBlock(gen.NextTxs(10))
		if perr != nil {
			t.Fatal(perr)
		}
		net.RunUntilIdle()
		blocks = append(blocks, b)
	}
	if reader := finalizedReader(sys, cfg.Nodes, blocks[0]); reader != nil {
		reader.RetrieveBlock(net, blocks[0].Hash(), func(*chain.Block, error) {})
		net.RunUntilIdle()
	}
	return net.TraceString(), net.TotalTraffic(), net.FaultStats(), sys.MetricsSnapshot()
}

// TestChaosDeterminism replays the same seeded chaos lifecycle twice —
// faults, crash schedule, corruption and all — and requires byte-identical
// event traces, traffic accounting, fault statistics and recovery metrics.
// This is the regression gate for deterministic replay of failure runs.
func TestChaosDeterminism(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			trace1, traffic1, faults1, metrics1 := chaosTraceRun(t, seed)
			trace2, traffic2, faults2, metrics2 := chaosTraceRun(t, seed)
			if trace1 != trace2 {
				t.Fatalf("event traces diverge: %d vs %d bytes", len(trace1), len(trace2))
			}
			if trace1 == "" {
				t.Fatal("empty event trace")
			}
			if traffic1 != traffic2 {
				t.Fatalf("traffic accounting diverges: %+v vs %+v", traffic1, traffic2)
			}
			if faults1 != faults2 {
				t.Fatalf("fault stats diverge: %+v vs %+v", faults1, faults2)
			}
			if metrics1 != metrics2 {
				t.Fatalf("recovery metrics diverge: %+v vs %+v", metrics1, metrics2)
			}
		})
	}
}
