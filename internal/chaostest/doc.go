// Package chaostest soaks the full ICIStrategy protocol stack under
// randomized fault injection: message drops, duplication, reordering,
// payload corruption and node crash/restart schedules, all driven by the
// deterministic simnet fault layer. The suite asserts the system's two core
// promises under faults — every block that commits anywhere stays
// retrievable with verified content, and identical seeds replay the exact
// same run, fault for fault.
//
// The package contains only tests; there is no library code to import.
package chaostest
