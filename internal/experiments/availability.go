package experiments

import (
	"fmt"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
)

// E7Availability regenerates the "data availability under node failures"
// figure by Monte-Carlo over the real placement function: the probability
// that a cluster can still reassemble a block when a random fraction of its
// members has failed, for replication r ∈ {1,2,3} and for the RS(16,20)
// coded-storage extension (any 16 of 20 shares reconstruct).
func E7Availability(p Params) (*metrics.Table, error) {
	tbl := metrics.NewTable(
		fmt.Sprintf("E7: block availability vs failed fraction (cluster size %d, %d trials)",
			p.ClusterSize, p.AvailTrials),
		"fail_frac", "r=1", "r=2", "r=3", "RS(16,20)")
	members := make([]simnet.NodeID, p.ClusterSize)
	for i := range members {
		members[i] = simnet.NodeID(i)
	}
	rng := blockcrypto.NewRNG(p.Seed ^ 0xA7A11)
	fracs := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5}
	const rsData, rsTotal = 16, 20
	for _, f := range fracs {
		failures := int(f * float64(p.ClusterSize))
		repOK := [3]int{}
		rsOK := 0
		for trial := 0; trial < p.AvailTrials; trial++ {
			seed := rng.Uint64()
			down := failSet(members, failures, rng)
			for r := 1; r <= 3; r++ {
				if r > p.ClusterSize {
					continue
				}
				if replicatedBlockAvailable(seed, members, down, r) {
					repOK[r-1]++
				}
			}
			if codedBlockAvailable(seed, members, down, rsData, rsTotal) {
				rsOK++
			}
		}
		trials := float64(p.AvailTrials)
		tbl.AddRow(f,
			float64(repOK[0])/trials, float64(repOK[1])/trials,
			float64(repOK[2])/trials, float64(rsOK)/trials)
	}
	return tbl, nil
}

// failSet samples a random set of failed members.
func failSet(members []simnet.NodeID, failures int, rng *blockcrypto.RNG) map[simnet.NodeID]bool {
	perm := rng.Perm(len(members))
	down := make(map[simnet.NodeID]bool, failures)
	for _, idx := range perm[:failures] {
		down[members[idx]] = true
	}
	return down
}

// replicatedBlockAvailable reports whether a block stored with plain
// replication r survives the failure set: every chunk needs one live owner.
func replicatedBlockAvailable(seed uint64, members []simnet.NodeID, down map[simnet.NodeID]bool, r int) bool {
	for idx := 0; idx < len(members); idx++ {
		owners, err := core.Owners(seed, members, idx, r)
		if err != nil {
			return false
		}
		alive := false
		for _, o := range owners {
			if !down[o] {
				alive = true
				break
			}
		}
		if !alive {
			return false
		}
	}
	return true
}

// codedBlockAvailable reports whether an RS(k, total)-coded block survives:
// at least k of the total shares (each on one distinct rendezvous owner)
// are on live members.
func codedBlockAvailable(seed uint64, members []simnet.NodeID, down map[simnet.NodeID]bool, k, total int) bool {
	if total > len(members) {
		total = len(members)
	}
	live := 0
	for idx := 0; idx < total; idx++ {
		owners, err := core.Owners(seed, members, idx, 1)
		if err != nil {
			return false
		}
		if !down[owners[0]] {
			live++
		}
	}
	return live >= k
}
