package experiments

import (
	"fmt"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
)

// churnVariants are the three membership-churn schedules E16 sweeps. Each
// stresses a different path through the epoch machinery:
//
//   - graceful: one member cycles leave/rejoin `rate` times with block
//     production interleaved, so every epoch writes history under a
//     different part count. Availability must hold at 100% — handoff and
//     epoch-aware bootstrap are the only movers, repair never runs.
//   - flash-crowd: `rate` brand-new members join in one burst, blocks are
//     written under the grown membership, then the whole crowd departs
//     gracefully again. Availability must also hold at 100%.
//   - correlated: `rate` members crash simultaneously (no handoff) and one
//     repair pass restores what replication allows. Once the crash count
//     reaches the replication factor, chunks whose owners all died are
//     gone — the lost column is the point of the variant.
var churnVariants = []string{"graceful", "flash-crowd", "correlated"}

// ChurnResult is one measured churn run; the JSON form is the row schema of
// BENCH_PR8.json.
type ChurnResult struct {
	Variant        string  `json:"variant"`
	Rate           int     `json:"rate"`
	Blocks         int     `json:"blocks"`
	PreChurnBlocks int     `json:"pre_churn_blocks"`
	Epochs         int     `json:"epochs"`
	PreChurnAvail  float64 `json:"pre_churn_availability"`
	AllAvail       float64 `json:"all_availability"`
	RetrieveOK     bool    `json:"pre_churn_retrieve_ok"`
	MovedChunks    int64   `json:"moved_chunks"`
	MaxEpochMoved  int64   `json:"max_epoch_moved_chunks"`
	EpochMoveBound int64   `json:"epoch_move_bound_chunks"`
	HandoffKB      float64 `json:"handoff_kb"`
	RepairFetches  int64   `json:"repair_chunk_fetches"`
	LostChunks     int64   `json:"lost_chunks"`
}

// runChurn executes one (variant, rate) cell on a fresh single-cluster
// system with a private counter registry, so movement deltas are this
// run's alone even when the suite shares a registry elsewhere.
func runChurn(p Params, variant string, rate int) (ChurnResult, error) {
	res := ChurnResult{Variant: variant, Rate: rate}
	reg := metrics.NewRegistry()
	sys, err := core.NewSystem(core.Config{
		Nodes:       p.ChurnClusterSize,
		Clusters:    1,
		Replication: p.ChurnReplication,
		Seed:        p.Seed + uint64(rate)*131 + uint64(len(variant))*7,
		Tracer:      p.Tracer,
		Registry:    reg,
	})
	if err != nil {
		return res, err
	}
	gen, err := p.protoGen()
	if err != nil {
		return res, err
	}

	var blocks []blockcrypto.Hash
	produce := func(n int) error {
		for i := 0; i < n; i++ {
			b, perr := sys.ProduceBlock(gen.NextTxs(p.ProtoTxPerBlock))
			if perr != nil {
				return perr
			}
			sys.Network().RunUntilIdle()
			blocks = append(blocks, b.Hash())
		}
		return nil
	}
	// moved counts every chunk transfer the churn machinery performs:
	// graceful handoff pushes, bootstrap fetches of joiners/rejoiners, and
	// repair refetches after crashes.
	moved := func() int64 {
		return reg.Counter("ici.handoff.chunks").Value() +
			reg.Counter("ici.bootstrap.chunk_fetches").Value() +
			reg.Counter("ici.repair.chunk_fetches").Value()
	}
	step := func(before int64) {
		if d := moved() - before; d > res.MaxEpochMoved {
			res.MaxEpochMoved = d
		}
	}

	pre := p.ChurnBlocks / 2
	if pre < 1 {
		pre = 1
	}
	rest := p.ChurnBlocks - pre
	if err := produce(pre); err != nil {
		return res, err
	}
	res.PreChurnBlocks = len(blocks)
	preHashes := append([]blockcrypto.Hash(nil), blocks...)

	// The incremental-re-clustering bound: rendezvous placement moves about
	// one member's share per membership event, so a single epoch may move at
	// most a few shares (3x slack absorbs placement skew at small scale).
	// Burst variants fold `rate` events into one measured step.
	members, err := sys.ClusterMembers(0)
	if err != nil {
		return res, err
	}
	var total int64
	for _, id := range members {
		n, nerr := sys.Node(id)
		if nerr != nil {
			return res, nerr
		}
		total += n.Store().Stats().ChunkCount
	}
	share := (total + int64(len(members)) - 1) / int64(len(members))
	res.EpochMoveBound = 3 * share
	if variant != "graceful" {
		res.EpochMoveBound *= int64(rate)
	}

	switch variant {
	case "graceful":
		victim := members[len(members)-1]
		seg := rest / (2 * rate)
		if seg < 1 {
			seg = 1
		}
		for e := 0; e < rate; e++ {
			before := moved()
			fired, lerr := false, error(nil)
			if err := sys.LeaveCluster(victim, func(_ int, herr error) { fired, lerr = true, herr }); err != nil {
				return res, err
			}
			sys.Network().RunUntilIdle()
			if !fired || lerr != nil {
				return res, fmt.Errorf("experiments: churn leave (fired=%v): %w", fired, lerr)
			}
			step(before)
			if err := produce(seg); err != nil {
				return res, err
			}
			before = moved()
			fired = false
			if err := sys.RejoinCluster(victim, func(herr error) { fired, lerr = true, herr }); err != nil {
				return res, err
			}
			sys.Network().RunUntilIdle()
			if !fired || lerr != nil {
				return res, fmt.Errorf("experiments: churn rejoin (fired=%v): %w", fired, lerr)
			}
			step(before)
			if err := produce(seg); err != nil {
				return res, err
			}
		}

	case "flash-crowd":
		type joinRes struct {
			id    simnet.NodeID
			err   error
			fired bool
		}
		joins := make([]*joinRes, rate)
		before := moved()
		for e := 0; e < rate; e++ {
			jr := &joinRes{}
			joins[e] = jr
			if err := sys.JoinCluster(0, func(id simnet.NodeID, jerr error) {
				jr.id, jr.err, jr.fired = id, jerr, true
			}); err != nil {
				return res, err
			}
		}
		sys.Network().RunUntilIdle()
		for _, jr := range joins {
			if !jr.fired || jr.err != nil {
				return res, fmt.Errorf("experiments: churn join (fired=%v): %w", jr.fired, jr.err)
			}
		}
		step(before)
		if err := produce(rest / 2); err != nil {
			return res, err
		}
		before = moved()
		for _, jr := range joins {
			fired, lerr := false, error(nil)
			if err := sys.LeaveCluster(jr.id, func(_ int, herr error) { fired, lerr = true, herr }); err != nil {
				return res, err
			}
			sys.Network().RunUntilIdle()
			if !fired || lerr != nil {
				return res, fmt.Errorf("experiments: churn crowd leave (fired=%v): %w", fired, lerr)
			}
		}
		step(before)
		if err := produce(rest - rest/2); err != nil {
			return res, err
		}

	case "correlated":
		k := rate
		if max := len(members) - p.ChurnReplication; k > max {
			k = max
		}
		for i := 0; i < k; i++ {
			if err := sys.RemoveNode(members[1+i]); err != nil {
				return res, err
			}
		}
		before := moved()
		lost := -1
		if err := sys.RepairCluster(0, func(l int) { lost = l }); err != nil {
			return res, err
		}
		sys.Network().RunUntilIdle()
		step(before)
		res.LostChunks = int64(lost)
		if err := produce(rest); err != nil {
			return res, err
		}

	default:
		return res, fmt.Errorf("experiments: unknown churn variant %q", variant)
	}

	res.Blocks = len(blocks)
	res.MovedChunks = moved()
	res.HandoffKB = kb(float64(reg.Counter("ici.handoff.bytes").Value()))
	res.RepairFetches = reg.Counter("ici.repair.chunk_fetches").Value()
	if res.Epochs, err = sys.ClusterEpoch(0); err != nil {
		return res, err
	}

	avail := func(hashes []blockcrypto.Hash) float64 {
		if len(hashes) == 0 {
			return 1
		}
		held := 0
		for _, h := range hashes {
			if sys.ClusterHoldsBlock(0, h) == nil {
				held++
			}
		}
		return float64(held) / float64(len(hashes))
	}
	res.PreChurnAvail = avail(preHashes)
	res.AllAvail = avail(blocks)

	// End-to-end check on the oldest block: a surviving member must be able
	// to reassemble it through the read path, not just hold its chunks.
	cur, err := sys.ClusterMembers(0)
	if err != nil {
		return res, err
	}
	reader, err := sys.Node(cur[0])
	if err != nil {
		return res, err
	}
	reader.RetrieveBlock(sys.Network(), blocks[0], func(b *chain.Block, rerr error) {
		res.RetrieveOK = rerr == nil && b != nil
	})
	sys.Network().RunUntilIdle()
	return res, nil
}

// RunChurnBench sweeps every churn variant over p.ChurnRates and returns
// the raw per-run results — the payload of BENCH_PR8.json and the data
// cmd/icibench gates on (graceful and flash-crowd churn must keep every
// pre-churn block available, within the per-epoch movement bound).
func RunChurnBench(p Params) ([]ChurnResult, error) {
	var out []ChurnResult
	for _, variant := range churnVariants {
		for _, rate := range p.ChurnRates {
			res, err := runChurn(p, variant, rate)
			if err != nil {
				return nil, fmt.Errorf("experiments: churn %s rate %d: %w", variant, rate, err)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// E16ChurnAvailability is an extension experiment: availability and repair
// bandwidth as a function of churn rate, under graceful departures,
// flash-crowd join/leave bursts, and correlated crashes. Graceful churn
// holds availability at 1.0 with bounded per-epoch movement; correlated
// crashes show where replication runs out.
func E16ChurnAvailability(p Params) (*metrics.Table, error) {
	tbl := metrics.NewTable(
		fmt.Sprintf("E16 (extension): availability and repair bandwidth under churn (cluster %d, r=%d, %d blocks)",
			p.ChurnClusterSize, p.ChurnReplication, p.ChurnBlocks),
		"variant", "rate", "epochs", "pre_avail", "all_avail", "moved_chunks",
		"max_epoch_moved", "epoch_bound", "handoff_KB", "lost_chunks")
	results, err := RunChurnBench(p)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		tbl.AddRow(r.Variant, r.Rate, r.Epochs, r.PreChurnAvail, r.AllAvail,
			r.MovedChunks, r.MaxEpochMoved, r.EpochMoveBound, r.HandoffKB, r.LostChunks)
	}
	return tbl, nil
}
