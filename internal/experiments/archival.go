package experiments

import (
	"fmt"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
)

// E11ArchivalTradeoff is an extension experiment (not a paper artifact):
// the storage-overhead-vs-availability frontier of the coded archival mode
// against plain replication. For each configuration it reports the storage
// factor (stored bytes / body bytes) and the Monte-Carlo probability that a
// block remains readable at 10 % and 25 % failed members.
func E11ArchivalTradeoff(p Params) (*metrics.Table, error) {
	tbl := metrics.NewTable(
		fmt.Sprintf("E11 (extension): storage factor vs availability (cluster size %d, %d trials)",
			p.ClusterSize, p.AvailTrials),
		"scheme", "storage_factor", "avail@10%", "avail@25%")
	members := make([]simnet.NodeID, p.ClusterSize)
	for i := range members {
		members[i] = simnet.NodeID(i)
	}
	rng := blockcrypto.NewRNG(p.Seed ^ 0xE11)

	avail := func(eval func(seed uint64, down map[simnet.NodeID]bool) bool, frac float64) float64 {
		failures := int(frac * float64(p.ClusterSize))
		ok := 0
		for trial := 0; trial < p.AvailTrials; trial++ {
			seed := rng.Uint64()
			down := failSet(members, failures, rng)
			if eval(seed, down) {
				ok++
			}
		}
		return float64(ok) / float64(p.AvailTrials)
	}

	// Plain replication r = 1..3.
	for r := 1; r <= 3; r++ {
		r := r
		if r > p.ClusterSize {
			continue
		}
		eval := func(seed uint64, down map[simnet.NodeID]bool) bool {
			return replicatedBlockAvailable(seed, members, down, r)
		}
		tbl.AddRow(fmt.Sprintf("replication r=%d", r), float64(r),
			avail(eval, 0.10), avail(eval, 0.25))
	}
	// Coded archival RS(c-p, p) for a parity sweep.
	for _, parity := range []int{p.ClusterSize / 16, p.ClusterSize / 8, p.ClusterSize / 4, p.ClusterSize / 2} {
		if parity < 1 || parity >= p.ClusterSize {
			continue
		}
		k := p.ClusterSize - parity
		eval := func(seed uint64, down map[simnet.NodeID]bool) bool {
			return codedBlockAvailable(seed, members, down, k, p.ClusterSize)
		}
		factor := float64(p.ClusterSize) / float64(k)
		tbl.AddRow(fmt.Sprintf("coded RS(%d,%d)", k, p.ClusterSize), factor,
			avail(eval, 0.10), avail(eval, 0.25))
	}
	return tbl, nil
}
