package experiments

import (
	"fmt"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/core"
	"icistrategy/internal/gossip"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
)

// floodFanout is the gossip fanout the full-replication baseline uses —
// ln(n)-ish for the sizes swept here, matching Bitcoin's ~8 outbound peers.
const floodFanout = 8

// E4CommunicationOverhead regenerates the "communication overhead per
// block" figure: mean bytes received per node to disseminate (and, for
// ICI, collaboratively verify) one block, under
//
//   - full replication: every node receives the full body via flood gossip
//     (plus duplicate deliveries — the redundancy real gossip pays);
//   - RapidChain: the responsible committee receives the body once each via
//     tree multicast (the ~1x dissemination IDA-gossip approximates);
//   - ICIStrategy: leaders receive the full body, members only their
//     chunks + proofs + votes + commit certificates (full protocol run).
func E4CommunicationOverhead(p Params) (*metrics.Table, error) {
	tbl := metrics.NewTable(
		fmt.Sprintf("E4: dissemination+verification bytes per node per block (body=%d txs)", p.ProtoTxPerBlock),
		"nodes", "full_KB", "rapidchain_KB", "ici_KB", "ici/full", "ici/rapid")
	for _, n := range p.ProtoNetworkSizes {
		bodySize, err := p.protoBodySize()
		if err != nil {
			return nil, err
		}
		fullB, err := p.floodPerNode(n, bodySize)
		if err != nil {
			return nil, err
		}
		rapidB, err := p.committeePerNode(n, bodySize)
		if err != nil {
			return nil, err
		}
		iciB, err := p.iciPerNode(n)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(n, kb(fullB), kb(rapidB), kb(iciB), ratio(iciB, fullB), ratio(iciB, rapidB))
	}
	return tbl, nil
}

// protoBodySize computes the encoded body size of a protocol-scale block.
func (p Params) protoBodySize() (int, error) {
	gen, err := p.protoGen()
	if err != nil {
		return 0, err
	}
	return 4 + p.ProtoTxPerBlock*gen.TxSize(), nil
}

// floodPerNode measures mean received bytes per node when one block floods
// through the whole network.
func (p Params) floodPerNode(n, bodySize int) (float64, error) {
	rng := blockcrypto.NewRNG(p.Seed)
	net := simnet.New(simnet.NewLinkModel(rng.Fork("lat").Uint64()))
	coords := simnet.RandomCoords(n, 60, rng.Fork("coords"))
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	flooders := make([]*gossip.Flooder, n)
	for i := 0; i < n; i++ {
		others := make([]simnet.NodeID, 0, n-1)
		for _, pr := range peers {
			if pr != peers[i] {
				others = append(others, pr)
			}
		}
		flooders[i] = gossip.NewFlooder(peers[i], others, floodFanout, "flood/block",
			rng.Fork(fmt.Sprintf("flood-%d", i)), nil)
		f := flooders[i]
		if err := net.AddNode(peers[i], simnet.HandlerFunc(func(nw *simnet.Network, m simnet.Message) {
			f.HandleMessage(nw, m)
		}), coords[i]); err != nil {
			return 0, err
		}
	}
	flooders[0].Broadcast(net, gossip.Envelope{ID: blockcrypto.Sum256([]byte("block"))}, bodySize)
	net.RunUntilIdle()
	return float64(net.TotalTraffic().BytesRecv) / float64(n), nil
}

// committeePerNode measures mean received bytes per node (over the whole
// network) when one block is tree-multicast inside its committee.
func (p Params) committeePerNode(n, bodySize int) (float64, error) {
	rng := blockcrypto.NewRNG(p.Seed + 1)
	net := simnet.New(simnet.NewLinkModel(rng.Fork("lat").Uint64()))
	coords := simnet.RandomCoords(n, 60, rng.Fork("coords"))
	committee := make([]simnet.NodeID, p.ProtoCommittee)
	for i := range committee {
		committee[i] = simnet.NodeID(i)
	}
	trees := make([]*gossip.Tree, n)
	for i := 0; i < n; i++ {
		trees[i] = gossip.NewTree(simnet.NodeID(i), committee, 2, "tree/block", nil)
		tr := trees[i]
		if err := net.AddNode(simnet.NodeID(i), simnet.HandlerFunc(func(nw *simnet.Network, m simnet.Message) {
			tr.HandleMessage(nw, m)
		}), coords[i]); err != nil {
			return 0, err
		}
	}
	// RapidChain attaches Merkle proofs to IDA chunks: ~1.33x overhead is
	// typical; tree multicast of body*1.33 models received bytes.
	trees[0].Broadcast(net, gossip.Envelope{ID: blockcrypto.Sum256([]byte("shard block"))}, bodySize*4/3)
	net.RunUntilIdle()
	return float64(net.TotalTraffic().BytesRecv) / float64(n), nil
}

// iciPerNode measures mean received bytes per node per block under the full
// ICIStrategy protocol.
func (p Params) iciPerNode(n int) (float64, error) {
	sys, err := core.NewSystem(p.observe(core.Config{
		Nodes:       n,
		Clusters:    n / p.ProtoClusterSize,
		Replication: p.Replication,
		Seed:        p.Seed,
	}))
	if err != nil {
		return 0, err
	}
	gen, err := p.protoGen()
	if err != nil {
		return 0, err
	}
	sys.Network().ResetTraffic()
	for b := 0; b < p.ProtoBlocks; b++ {
		if _, err := sys.ProduceBlock(gen.NextTxs(p.ProtoTxPerBlock)); err != nil {
			return 0, err
		}
		sys.Network().RunUntilIdle()
	}
	total := sys.Network().TotalTraffic()
	return float64(total.BytesRecv) / float64(n) / float64(p.ProtoBlocks), nil
}

func kb(b float64) float64 { return b / 1024 }
