package experiments

import (
	"fmt"

	"icistrategy/internal/gateway"
	"icistrategy/internal/metrics"
)

// GatewayLoadConfig maps the suite parameters onto one gateway load run.
// cacheBytes <= 0 disables the gateway caches, which is how the cache-off
// baseline of E15 (and of icibench -gatewaybench) is produced.
func (p Params) GatewayLoadConfig(cacheBytes int64) gateway.LoadConfig {
	return gateway.LoadConfig{
		Servers:      p.GatewayServers,
		Replication:  p.GatewayReplication,
		Blocks:       p.GatewayBlocks,
		TxPerBlock:   p.GatewayTxPerBlock,
		PayloadBytes: p.ProtoPayload,
		Clients:      p.GatewayClients,
		Requests:     p.GatewayRequests,
		ZipfS:        p.GatewayZipfS,
		Seed:         p.Seed,
		CacheBytes:   cacheBytes,
		ProofEvery:   p.GatewayProofEvery,
	}
}

// E15GatewayLatency measures the read-path gateway under sustained Zipfian
// load: the same closed-loop workload is driven twice over a real TCP
// storage cluster, once with the gateway caches enabled and once with them
// off, and the table reports QPS, tail latency, hit rate, and upstream
// traffic for both modes. Unlike E1-E14 this experiment measures wall-clock
// throughput, so its numbers vary run to run; the structural claims (cache
// on serves more QPS from fewer upstream RPCs) are what the row pair shows.
func E15GatewayLatency(p Params) (*metrics.Table, error) {
	on, err := gateway.RunLoad(p.GatewayLoadConfig(p.GatewayCacheBytes))
	if err != nil {
		return nil, err
	}
	off, err := gateway.RunLoad(p.GatewayLoadConfig(0))
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("E15: gateway read path under Zipfian load",
		"cache", "requests", "errors", "qps", "p50_ms", "p90_ms", "p99_ms",
		"hit_rate", "upstream_rpcs", "batched_refs", "coalesced")
	for _, row := range []struct {
		mode string
		rep  gateway.LoadReport
	}{{"on", on}, {"off", off}} {
		t.AddRow(row.mode, row.rep.Requests, row.rep.Errors,
			fmt.Sprintf("%.0f", row.rep.QPS),
			fmt.Sprintf("%.3f", row.rep.P50Millis),
			fmt.Sprintf("%.3f", row.rep.P90Millis),
			fmt.Sprintf("%.3f", row.rep.P99Millis),
			fmt.Sprintf("%.3f", row.rep.HitRate),
			row.rep.UpstreamRPCs, row.rep.BatchedRefs, row.rep.Coalesced)
	}
	return t, nil
}
