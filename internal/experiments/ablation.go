package experiments

import (
	"errors"
	"fmt"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/cluster"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
)

// E10ClusteringAblation regenerates the clustering-method ablation: on a
// geographically clustered topology (8 regions), how does the partitioning
// algorithm ("via clustering" is in the paper's title) affect partition
// quality and the latency of collaborative verification?
func E10ClusteringAblation(p Params) (*metrics.Table, error) {
	if len(p.ProtoNetworkSizes) == 0 {
		return nil, errors.New("experiments: ProtoNetworkSizes is empty")
	}
	n := p.ProtoNetworkSizes[len(p.ProtoNetworkSizes)-1]
	m := n / p.ProtoClusterSize
	tbl := metrics.NewTable(
		fmt.Sprintf("E10: clustering method ablation (n=%d, m=%d, 8 latency regions)", n, m),
		"method", "mean_intra_ms", "silhouette", "imbalance", "commit_ms")
	rng := blockcrypto.NewRNG(p.Seed ^ 0xAB1A)
	coords := simnet.ClusteredCoords(n, 8, 200, 2.0, rng.Fork("topo"))
	methods := []cluster.Method{
		cluster.BalancedKMeans, cluster.KMeans, cluster.RandomPartition, cluster.HashPartition,
	}
	for _, method := range methods {
		asg, err := cluster.Partition(method, coords, m, rng.Fork(method.String()))
		if err != nil {
			return nil, err
		}
		q := cluster.Evaluate(asg, coords)
		sys, err := core.NewSystem(p.observe(core.Config{
			Nodes:       n,
			Clusters:    m,
			Replication: p.Replication,
			Method:      method,
			Seed:        p.Seed,
			Coords:      coords,
		}))
		if err != nil {
			return nil, err
		}
		gen, err := p.protoGen()
		if err != nil {
			return nil, err
		}
		var total time.Duration
		blocks := 0
		for b := 0; b < p.ProtoBlocks; b++ {
			d, err := commitTime(sys, gen.NextTxs(p.ProtoTxPerBlock))
			if err != nil {
				return nil, fmt.Errorf("%v: %w", method, err)
			}
			total += d
			blocks++
		}
		meanMs := float64(total.Microseconds()) / 1000 / float64(blocks)
		tbl.AddRow(method.String(), q.MeanIntraDistance, q.Silhouette, q.SizeImbalance, meanMs)
	}
	return tbl, nil
}
