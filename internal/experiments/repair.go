package experiments

import (
	"fmt"

	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
)

// E12RepairCost is an extension experiment: the network cost of restoring
// intra-cluster integrity after a permanent departure, as a function of
// cluster size and replication. The ideal repair moves exactly the bytes
// the departed member held; the overhead column shows how close the
// protocol gets (extra cost is proofs and fetch framing).
func E12RepairCost(p Params) (*metrics.Table, error) {
	tbl := metrics.NewTable(
		fmt.Sprintf("E12 (extension): repair cost after one departure (%d blocks of %d txs)",
			p.ProtoBlocks*2, p.ProtoTxPerBlock),
		"cluster_size", "r", "departed_KB", "repair_KB", "overhead", "lost_chunks")
	for _, c := range p.ProtoClusterSizes {
		if c < 4 {
			continue
		}
		for _, r := range []int{2, 3} {
			if r > c {
				continue
			}
			sys, err := core.NewSystem(p.observe(core.Config{
				Nodes:       c,
				Clusters:    1,
				Replication: r,
				Seed:        p.Seed + uint64(c*10+r),
			}))
			if err != nil {
				return nil, err
			}
			gen, err := p.protoGen()
			if err != nil {
				return nil, err
			}
			for b := 0; b < p.ProtoBlocks*2; b++ {
				if _, err := sys.ProduceBlock(gen.NextTxs(p.ProtoTxPerBlock)); err != nil {
					return nil, err
				}
				sys.Network().RunUntilIdle()
			}
			members, err := sys.ClusterMembers(0)
			if err != nil {
				return nil, err
			}
			victim := members[1]
			vnode, err := sys.Node(victim)
			if err != nil {
				return nil, err
			}
			departedBytes := vnode.Store().Stats().ChunkBytes
			if err := sys.RemoveNode(victim); err != nil {
				return nil, err
			}
			sys.Network().ResetTraffic()
			lost := -1
			if err := sys.RepairCluster(0, func(l int) { lost = l }); err != nil {
				return nil, err
			}
			sys.Network().RunUntilIdle()
			repairBytes := sys.Network().TotalTraffic().BytesRecv
			overhead := 0.0
			if departedBytes > 0 {
				overhead = float64(repairBytes) / float64(departedBytes)
			}
			tbl.AddRow(c, r, kb(float64(departedBytes)), kb(float64(repairBytes)), overhead, lost)
		}
	}
	return tbl, nil
}
