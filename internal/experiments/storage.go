package experiments

import (
	"fmt"

	"icistrategy/internal/baseline"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/strategy"
)

// buildAccountants constructs the three strategy accountants at network
// size n.
func (p Params) buildAccountants(n int) (full *strategy.FullReplication, rapid *baseline.RapidChain, ici *core.Accountant, err error) {
	iciAsg, commAsg, err := p.assignments(n)
	if err != nil {
		return nil, nil, nil, err
	}
	rapid, err = baseline.NewRapidChain(commAsg)
	if err != nil {
		return nil, nil, nil, err
	}
	ici, err = core.NewAccountant(iciAsg, p.Replication)
	if err != nil {
		return nil, nil, nil, err
	}
	return strategy.NewFullReplication(n), rapid, ici, nil
}

// E1StorageVsChainLength regenerates the "per-node storage vs chain length"
// figure: mean per-node storage (MB) of Full replication, RapidChain, and
// ICIStrategy as the chain grows to MaxBlocks 1-MiB blocks.
func E1StorageVsChainLength(p Params) (*metrics.Table, error) {
	full, rapid, ici, err := p.buildAccountants(p.Nodes)
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("E1: per-node storage vs chain length (n=%d, c=%d, committee=%d, r=%d, block=%s)",
			p.Nodes, p.ClusterSize, p.CommitteeSize, p.Replication, metrics.HumanBytes(float64(p.BlockBody))),
		"blocks", "full_MB", "rapidchain_MB", "ici_MB", "ici/rapid")
	checkpoints := 8
	step := p.MaxBlocks / checkpoints
	if step == 0 {
		step = 1
	}
	for b := 1; b <= p.MaxBlocks; b++ {
		full.AddBlock(p.BlockBody)
		rapid.AddBlock(p.BlockBody)
		ici.AddBlock(p.BlockBody)
		if b%step != 0 {
			continue
		}
		fm, err := strategy.MeanNodeBytes(full)
		if err != nil {
			return nil, err
		}
		rm, err := strategy.MeanNodeBytes(rapid)
		if err != nil {
			return nil, err
		}
		im, err := strategy.MeanNodeBytes(ici)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(b, mb(fm), mb(rm), mb(im), ratio(im, rm))
	}
	return tbl, nil
}

// E2StorageVsNetworkSize regenerates the "per-node storage vs network size"
// figure at a fixed chain length: as n grows, RapidChain gains shards
// (k = n / committee) and ICI gains clusters, but ICI's per-node share
// stays r·D/c — constant and 1/4 of RapidChain's at the default sizes.
func E2StorageVsNetworkSize(p Params) (*metrics.Table, error) {
	blocks := p.MaxBlocks / 4
	if blocks == 0 {
		blocks = 1
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("E2: per-node storage vs network size (%d blocks of %s)",
			blocks, metrics.HumanBytes(float64(p.BlockBody))),
		"nodes", "full_MB", "rapidchain_MB", "ici_MB", "ici/rapid")
	for _, n := range p.networkSizes() {
		full, rapid, ici, err := p.buildAccountants(n)
		if err != nil {
			return nil, err
		}
		for b := 0; b < blocks; b++ {
			full.AddBlock(p.BlockBody)
			rapid.AddBlock(p.BlockBody)
			ici.AddBlock(p.BlockBody)
		}
		fm, err := strategy.MeanNodeBytes(full)
		if err != nil {
			return nil, err
		}
		rm, err := strategy.MeanNodeBytes(rapid)
		if err != nil {
			return nil, err
		}
		im, err := strategy.MeanNodeBytes(ici)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(n, mb(fm), mb(rm), mb(im), ratio(im, rm))
	}
	return tbl, nil
}

// networkSizes returns the sweep of n for E2: four doublings ending at
// p.Nodes.
func (p Params) networkSizes() []int {
	sizes := []int{p.Nodes / 8, p.Nodes / 4, p.Nodes / 2, p.Nodes}
	out := sizes[:0]
	for _, n := range sizes {
		if n >= p.CommitteeSize {
			out = append(out, n)
		}
	}
	return out
}

// E3StorageSummary regenerates the headline storage table at the default
// configuration, including the abstract's "25 % of RapidChain" claim and
// the replication sweep.
func E3StorageSummary(p Params) (*metrics.Table, error) {
	tbl := metrics.NewTable(
		fmt.Sprintf("E3: storage summary after %d blocks of %s (n=%d)",
			p.MaxBlocks, metrics.HumanBytes(float64(p.BlockBody)), p.Nodes),
		"strategy", "per-node", "vs full", "vs rapidchain")
	full, rapid, ici1, err := p.buildAccountants(p.Nodes)
	if err != nil {
		return nil, err
	}
	iciAsg, _, err := p.assignments(p.Nodes)
	if err != nil {
		return nil, err
	}
	var icis []*core.Accountant
	icis = append(icis, ici1)
	for _, r := range []int{2, 3} {
		if r > p.ClusterSize {
			continue
		}
		acc, err := core.NewAccountant(iciAsg, r)
		if err != nil {
			return nil, err
		}
		icis = append(icis, acc)
	}
	for b := 0; b < p.MaxBlocks; b++ {
		full.AddBlock(p.BlockBody)
		rapid.AddBlock(p.BlockBody)
		for _, acc := range icis {
			acc.AddBlock(p.BlockBody)
		}
	}
	fm, err := strategy.MeanNodeBytes(full)
	if err != nil {
		return nil, err
	}
	rm, err := strategy.MeanNodeBytes(rapid)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("full replication", metrics.HumanBytes(fm), 1.0, ratio(fm, rm))
	tbl.AddRow("rapidchain", metrics.HumanBytes(rm), ratio(rm, fm), 1.0)
	for _, acc := range icis {
		im, err := strategy.MeanNodeBytes(acc)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("ici (r=%d)", acc.Replication()),
			metrics.HumanBytes(im), ratio(im, fm), ratio(im, rm))
	}
	return tbl, nil
}

// E5BootstrapCost regenerates the "bootstrap cost vs chain length" figure:
// bytes a fresh node downloads to join, and the implied time at 20 Mbit/s.
func E5BootstrapCost(p Params) (*metrics.Table, error) {
	full, rapid, ici, err := p.buildAccountants(p.Nodes)
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("E5: bootstrap download vs chain length (n=%d, 20 Mbit/s)", p.Nodes),
		"blocks", "full_MB", "full_s", "rapidchain_MB", "rapid_s", "ici_MB", "ici_s")
	checkpoints := 8
	step := p.MaxBlocks / checkpoints
	if step == 0 {
		step = 1
	}
	const mbitPerSec = 20e6 / 8
	for b := 1; b <= p.MaxBlocks; b++ {
		full.AddBlock(p.BlockBody)
		rapid.AddBlock(p.BlockBody)
		ici.AddBlock(p.BlockBody)
		if b%step != 0 {
			continue
		}
		fb := meanBootstrap(full)
		rb := meanBootstrap(rapid)
		ib := meanBootstrap(ici)
		tbl.AddRow(b, mb(fb), fb/mbitPerSec, mb(rb), rb/mbitPerSec, mb(ib), ib/mbitPerSec)
	}
	return tbl, nil
}

// E8BootstrapSavings regenerates the bootstrap savings table: the ratio of
// ICI bootstrap bytes to both baselines across chain lengths.
func E8BootstrapSavings(p Params) (*metrics.Table, error) {
	full, rapid, ici, err := p.buildAccountants(p.Nodes)
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("E8: bootstrap savings (n=%d, c=%d, r=%d)", p.Nodes, p.ClusterSize, p.Replication),
		"blocks", "ici/full", "ici/rapidchain")
	checkpoints := 4
	step := p.MaxBlocks / checkpoints
	if step == 0 {
		step = 1
	}
	for b := 1; b <= p.MaxBlocks; b++ {
		full.AddBlock(p.BlockBody)
		rapid.AddBlock(p.BlockBody)
		ici.AddBlock(p.BlockBody)
		if b%step != 0 {
			continue
		}
		tbl.AddRow(b, ratio(meanBootstrap(ici), meanBootstrap(full)),
			ratio(meanBootstrap(ici), meanBootstrap(rapid)))
	}
	return tbl, nil
}

func meanBootstrap(a strategy.Accountant) float64 {
	n := a.NumNodes()
	if n == 0 {
		return 0
	}
	var sum int64
	for i := 0; i < n; i++ {
		b, err := a.BootstrapBytes(i)
		if err != nil {
			continue
		}
		sum += b
	}
	return float64(sum) / float64(n)
}

func mb(bytes float64) float64 { return bytes / (1 << 20) }

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
