package experiments

import "icistrategy/internal/metrics"

// Experiment names one regenerable paper artifact.
type Experiment struct {
	// ID is the experiment identifier used in DESIGN.md and EXPERIMENTS.md
	// (E1..E10).
	ID string
	// Name is a short human-readable description.
	Name string
	// Run executes the experiment and returns its table.
	Run func(Params) (*metrics.Table, error)
}

// All returns every experiment in the suite, in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "per-node storage vs chain length", Run: E1StorageVsChainLength},
		{ID: "E2", Name: "per-node storage vs network size", Run: E2StorageVsNetworkSize},
		{ID: "E3", Name: "storage summary (25% headline)", Run: E3StorageSummary},
		{ID: "E4", Name: "communication overhead per block", Run: E4CommunicationOverhead},
		{ID: "E5", Name: "bootstrap cost vs chain length", Run: E5BootstrapCost},
		{ID: "E6", Name: "collaborative verification latency", Run: E6VerificationLatency},
		{ID: "E7", Name: "availability under node failures", Run: E7Availability},
		{ID: "E8", Name: "bootstrap savings ratios", Run: E8BootstrapSavings},
		{ID: "E9", Name: "throughput vs cluster count", Run: E9Throughput},
		{ID: "E10", Name: "clustering method ablation", Run: E10ClusteringAblation},
		{ID: "E11", Name: "coded archival tradeoff (extension)", Run: E11ArchivalTradeoff},
		{ID: "E12", Name: "repair cost after departure (extension)", Run: E12RepairCost},
		{ID: "E13", Name: "erasure coding throughput (extension)", Run: E13CodingThroughput},
		{ID: "E14", Name: "per-phase trace breakdown (extension)", Run: E14TraceBreakdown},
		{ID: "E15", Name: "gateway read path under Zipfian load (extension)", Run: E15GatewayLatency},
		{ID: "E16", Name: "availability and repair bandwidth under churn (extension)", Run: E16ChurnAvailability},
	}
}

// ByID returns the experiment with the given ID, or false.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
