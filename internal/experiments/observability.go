package experiments

import (
	"errors"
	"fmt"

	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
	"icistrategy/internal/trace"
)

// E14TraceBreakdown runs one fully traced protocol scenario — block
// distribution and verification, a full-block retrieval, a node join with
// bootstrap, an ownership repair, and a coded archival with read-back — and
// reports the per-phase span counts, wire traffic, and latency distilled
// from the trace recorder. It is the observability layer's own regenerable
// artifact: the same breakdown cmd/icibench prints live with -trace.
func E14TraceBreakdown(p Params) (*metrics.Table, error) {
	if len(p.ProtoNetworkSizes) == 0 {
		return nil, errors.New("experiments: ProtoNetworkSizes is empty")
	}
	n := p.ProtoNetworkSizes[0]
	clusters := n / p.ProtoClusterSize
	if clusters < 2 {
		clusters = 2
	}
	ring := trace.NewRing(1 << 18)
	tr := trace.New(ring)
	reg := metrics.NewRegistry()
	sys, err := core.NewSystem(core.Config{
		Nodes:       n,
		Clusters:    clusters,
		Replication: p.Replication,
		Seed:        p.Seed,
		Tracer:      tr,
		Registry:    reg,
	})
	if err != nil {
		return nil, err
	}
	gen, err := p.protoGen()
	if err != nil {
		return nil, err
	}

	blocks := make([]*chain.Block, 0, p.ProtoBlocks)
	for i := 0; i < p.ProtoBlocks; i++ {
		b, err := sys.ProduceBlock(gen.NextTxs(p.ProtoTxPerBlock))
		if err != nil {
			return nil, err
		}
		sys.Network().RunUntilIdle()
		blocks = append(blocks, b)
	}

	members, err := sys.ClusterMembers(0)
	if err != nil {
		return nil, err
	}
	reader, err := sys.Node(members[0])
	if err != nil {
		return nil, err
	}
	var retErr error
	reader.RetrieveBlock(sys.Network(), blocks[0].Hash(), func(_ *chain.Block, err error) { retErr = err })
	sys.Network().RunUntilIdle()
	if retErr != nil {
		return nil, fmt.Errorf("traced retrieve: %w", retErr)
	}

	var joinErr error
	if err := sys.JoinCluster(0, func(_ simnet.NodeID, err error) { joinErr = err }); err != nil {
		return nil, err
	}
	sys.Network().RunUntilIdle()
	if joinErr != nil {
		return nil, fmt.Errorf("traced join: %w", joinErr)
	}
	if err := sys.RepairCluster(0, func(int) {}); err != nil {
		return nil, err
	}
	sys.Network().RunUntilIdle()

	var archErr error
	if err := sys.ArchiveBlock(1, blocks[len(blocks)-1].Hash(), 1, func(err error) { archErr = err }); err != nil {
		return nil, err
	}
	sys.Network().RunUntilIdle()
	if archErr != nil {
		return nil, fmt.Errorf("traced archive: %w", archErr)
	}
	members1, err := sys.ClusterMembers(1)
	if err != nil {
		return nil, err
	}
	codedReader, err := sys.Node(members1[0])
	if err != nil {
		return nil, err
	}
	codedReader.RetrieveArchivedBlock(sys.Network(), blocks[len(blocks)-1].Hash(), func(_ *chain.Block, err error) { retErr = err })
	sys.Network().RunUntilIdle()
	if retErr != nil {
		return nil, fmt.Errorf("traced coded retrieve: %w", retErr)
	}

	tbl := TraceSummaryTable(
		fmt.Sprintf("E14: per-phase trace breakdown (n=%d, %d clusters, %d blocks)", n, clusters, p.ProtoBlocks),
		ring.Events())
	if tbl.NumRows() == 0 {
		return nil, errors.New("experiments: traced run recorded no events")
	}
	return tbl, nil
}

// TraceSummaryTable renders trace events as the per-phase breakdown table
// the E-series (and cmd flags) print: one row per protocol, with span and
// wire counts, byte volumes, and span latency.
func TraceSummaryTable(title string, events []trace.Event) *metrics.Table {
	tbl := metrics.NewTable(title,
		"phase", "spans", "points", "errs", "wire_msgs", "wire_KB", "payload_KB", "mean_ms", "max_ms")
	for _, ps := range trace.Summarize(events) {
		tbl.AddRow(ps.Proto, ps.Spans, ps.Points, ps.Errs, ps.WireMsgs,
			kb(float64(ps.WireBytes)), kb(float64(ps.Bytes)),
			float64(ps.MeanLatency.Microseconds())/1000,
			float64(ps.MaxLatency.Microseconds())/1000)
	}
	return tbl
}
