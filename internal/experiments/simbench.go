package experiments

import (
	"fmt"
	"runtime"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/simnet"
)

// Simulation-engine throughput measurement: the event engine in isolation.
//
// Every protocol experiment is bounded by how fast the discrete-event
// simulator can push messages, so the engine's events/sec is the ceiling
// on the whole evaluation. This bench drives an E4-style workload — a
// 4-ary-tree block flood plus one verification ack per node, the
// dissemination+verify message shape E4 measures — through the overhauled
// engine and through the frozen pre-overhaul reference
// (simnet.BaselineNetwork), on identical topologies and seeds.
// cmd/icibench -simbench serializes the numbers to BENCH_PR5.json so the
// repo carries the engine's perf trajectory across PRs, exactly like the
// BENCH_PR2.json erasure trail.

// SimBenchResult is the measurement for one network size.
type SimBenchResult struct {
	Nodes  int `json:"nodes"`
	Rounds int `json:"rounds"`
	// Events counts executed simulator events across the measured rounds
	// (identical for both engines by construction; the differential test
	// in simnet pins that).
	Events                 int64   `json:"events"`
	WallSeconds            float64 `json:"wall_seconds"`
	EventsPerSec           float64 `json:"events_per_sec"`
	AllocsPerEvent         float64 `json:"allocs_per_event"`
	BaselineWallSeconds    float64 `json:"baseline_wall_seconds"`
	BaselineEventsPerSec   float64 `json:"baseline_events_per_sec"`
	BaselineAllocsPerEvent float64 `json:"baseline_allocs_per_event"`
	// Speedup is overhauled events/sec over baseline events/sec — the
	// number the CI bench-smoke gate enforces a floor on.
	Speedup float64 `json:"speedup"`
}

// Flood/ack sizes of the bench workload: a 64 KiB chunk-scale body and a
// vote-scale ack, the two ends of E4's message-size spectrum.
const (
	simBenchFloodBytes = 64 << 10
	simBenchAckBytes   = 64
)

// simBenchEngine is the surface shared by both engines, closed over in
// buildSimBenchNet / buildSimBenchBaseline so the workload driver is
// literally the same code for both.
type simBenchEngine struct {
	send         func(simnet.Message) error
	runUntilIdle func() int
	delivered    func() int64
}

// simBenchChildren returns node i's children in the complete 4-ary flood
// tree over n nodes.
func simBenchChildren(i, n int) (lo, hi int) {
	lo = 4*i + 1
	hi = 4*i + 4
	if hi >= n {
		hi = n - 1
	}
	return lo, hi
}

// simBenchForward is the per-delivery handler logic: forward the flood to
// the subtree and ack the parent, via the engine-neutral send primitive.
func simBenchForward(send func(simnet.Message) error, i, n int, m simnet.Message) {
	if m.Kind != "bench/flood" {
		return
	}
	lo, hi := simBenchChildren(i, n)
	for c := lo; c <= hi; c++ {
		_ = send(simnet.Message{From: simnet.NodeID(i), To: simnet.NodeID(c), Kind: "bench/flood", Size: simBenchFloodBytes})
	}
	_ = send(simnet.Message{From: simnet.NodeID(i), To: m.From, Kind: "bench/ack", Size: simBenchAckBytes})
}

// buildSimBenchNet assembles the workload on the overhauled engine.
func buildSimBenchNet(n int, seed uint64) (simBenchEngine, error) {
	rng := blockcrypto.NewRNG(seed)
	net := simnet.New(simnet.NewLinkModel(rng.Fork("lat").Uint64()))
	coords := simnet.RandomCoords(n, 60, rng.Fork("coords"))
	for i := 0; i < n; i++ {
		i := i
		h := simnet.HandlerFunc(func(nw *simnet.Network, m simnet.Message) {
			simBenchForward(nw.Send, i, n, m)
		})
		if err := net.AddNode(simnet.NodeID(i), h, coords[i]); err != nil {
			return simBenchEngine{}, err
		}
	}
	return simBenchEngine{send: net.Send, runUntilIdle: net.RunUntilIdle, delivered: net.DeliveredCount}, nil
}

// buildSimBenchBaseline assembles the identical workload on the frozen
// pre-overhaul engine.
func buildSimBenchBaseline(n int, seed uint64) (simBenchEngine, error) {
	rng := blockcrypto.NewRNG(seed)
	net := simnet.NewBaseline(simnet.NewLinkModel(rng.Fork("lat").Uint64()))
	coords := simnet.RandomCoords(n, 60, rng.Fork("coords"))
	for i := 0; i < n; i++ {
		i := i
		h := func(nw *simnet.BaselineNetwork, m simnet.Message) {
			simBenchForward(nw.Send, i, n, m)
		}
		if err := net.AddNode(simnet.NodeID(i), h, coords[i]); err != nil {
			return simBenchEngine{}, err
		}
	}
	return simBenchEngine{send: net.Send, runUntilIdle: net.RunUntilIdle, delivered: net.DeliveredCount}, nil
}

// simBenchRound floods one block from the root and drains the network,
// returning executed events.
func simBenchRound(e simBenchEngine, n int) (int, error) {
	lo, hi := simBenchChildren(0, n)
	for c := lo; c <= hi; c++ {
		err := e.send(simnet.Message{From: 0, To: simnet.NodeID(c), Kind: "bench/flood", Size: simBenchFloodBytes})
		if err != nil {
			return 0, err
		}
	}
	return e.runUntilIdle(), nil
}

// simBenchReps is how many timed repetitions each engine gets; the fastest
// repetition is reported. Wall-clock gates on shared machines must reject
// scheduler and neighbor noise, and the minimum over repetitions is the
// standard robust estimator for that (the engine cannot run faster than it
// is capable of, only slower).
const simBenchReps = 3

// measureSimBench runs simBenchReps timed repetitions of the workload
// (after one untimed warm-up round that also fills the event pool and
// intern table) and returns per-repetition events, best-repetition wall
// seconds, and mallocs per event.
func measureSimBench(e simBenchEngine, n, rounds int) (events int64, wallSec, allocsPerEvent float64, err error) {
	if _, err := simBenchRound(e, n); err != nil {
		return 0, 0, 0, err
	}
	for rep := 0; rep < simBenchReps; rep++ {
		// Collect garbage left over from setup and from the previous
		// repetition so every timed window starts from a quiet heap.
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		repEvents := int64(0)
		// The bench exists to measure real events/sec of the engine on this
		// machine; the wall clock is the measurement instrument, not
		// simulation state, so the determinism invariant is waived exactly
		// as in the E13 coding bench.
		start := time.Now() //icilint:allow determinism(wall-clock throughput measurement is the bench's purpose)
		for r := 0; r < rounds; r++ {
			ran, err := simBenchRound(e, n)
			if err != nil {
				return 0, 0, 0, err
			}
			repEvents += int64(ran)
		}
		elapsed := time.Since(start) //icilint:allow determinism(wall-clock throughput measurement is the bench's purpose)
		runtime.ReadMemStats(&after)
		if repEvents == 0 {
			return 0, 0, 0, fmt.Errorf("experiments: simbench executed no events (n=%d)", n)
		}
		if rep == 0 || elapsed.Seconds() < wallSec {
			events = repEvents
			wallSec = elapsed.Seconds()
			allocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(repEvents)
		}
	}
	return events, wallSec, allocsPerEvent, nil
}

// SimBenchRounds picks a round count that yields enough events for a
// stable wall-clock read at network size n (~2M events at paper scale,
// ~100k in quick mode).
func SimBenchRounds(n int, quick bool) int {
	target := 2_000_000
	if quick {
		target = 100_000
	}
	perRound := 2 * (n - 1)
	if perRound <= 0 {
		return 1
	}
	rounds := target / perRound
	if rounds < 1 {
		rounds = 1
	}
	return rounds
}

// RunSimBench measures the E4-style workload at network size n on both
// engines and returns the paired result. The two runs share topology and
// seeds; the baseline's delivered-message count must match the overhauled
// engine's, which is asserted here so a workload drift can never pass as a
// speedup.
func RunSimBench(n, rounds int, seed uint64) (SimBenchResult, error) {
	if n < 2 {
		return SimBenchResult{}, fmt.Errorf("experiments: simbench needs n >= 2, got %d", n)
	}
	eng, err := buildSimBenchNet(n, seed)
	if err != nil {
		return SimBenchResult{}, err
	}
	events, wallSec, allocs, err := measureSimBench(eng, n, rounds)
	if err != nil {
		return SimBenchResult{}, err
	}
	base, err := buildSimBenchBaseline(n, seed)
	if err != nil {
		return SimBenchResult{}, err
	}
	baseEvents, baseWallSec, baseAllocs, err := measureSimBench(base, n, rounds)
	if err != nil {
		return SimBenchResult{}, err
	}
	if events != baseEvents || eng.delivered() != base.delivered() {
		return SimBenchResult{}, fmt.Errorf(
			"experiments: simbench engines diverged (events %d vs %d, delivered %d vs %d)",
			events, baseEvents, eng.delivered(), base.delivered())
	}
	res := SimBenchResult{
		Nodes:                  n,
		Rounds:                 rounds,
		Events:                 events,
		WallSeconds:            wallSec,
		EventsPerSec:           float64(events) / wallSec,
		AllocsPerEvent:         allocs,
		BaselineWallSeconds:    baseWallSec,
		BaselineEventsPerSec:   float64(baseEvents) / baseWallSec,
		BaselineAllocsPerEvent: baseAllocs,
	}
	if res.BaselineEventsPerSec > 0 {
		res.Speedup = res.EventsPerSec / res.BaselineEventsPerSec
	}
	return res, nil
}

// SimBenchSizes returns the network sizes -simbench sweeps: the paper's
// n=4096 plus the 4x beyond-paper point, scaled down in quick mode.
func SimBenchSizes(quick bool) []int {
	if quick {
		return []int{256, 1024}
	}
	return []int{4096, 16384}
}
