package experiments

import (
	"errors"
	"fmt"
	"time"

	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
)

// ErrNeverCommitted is returned when a protocol measurement drains the
// event queue without the block committing anywhere.
var ErrNeverCommitted = errors.New("experiments: block never committed")

// commitTime produces one block and steps the simulator until every live
// node has committed it, returning the elapsed virtual time. Remaining
// events (idle coverage timers) are drained afterwards so the next
// measurement starts clean.
func commitTime(sys *core.System, txs []*chain.Transaction) (time.Duration, error) {
	start := sys.Network().Now()
	b, err := sys.ProduceBlock(txs)
	if err != nil {
		return 0, err
	}
	hash := b.Hash()
	var committedAt time.Duration
	committed := false
	for sys.Network().Step() {
		if !committed && sys.AllCommitted(hash) {
			committedAt = sys.Network().Now()
			committed = true
		}
	}
	if !committed {
		if sys.AllCommitted(hash) {
			committedAt = sys.Network().Now()
		} else {
			return 0, ErrNeverCommitted
		}
	}
	return committedAt - start, nil
}

// E6VerificationLatency regenerates the "verification latency vs cluster
// size" figure: virtual time from block production to full-cluster commit
// for a single cluster of growing size, against the time a single node
// would need just to download the full block from the producer.
func E6VerificationLatency(p Params) (*metrics.Table, error) {
	tbl := metrics.NewTable(
		fmt.Sprintf("E6: collaborative verification latency (%d txs per block)", p.ProtoTxPerBlock),
		"cluster_size", "ici_commit_ms", "full_download_ms", "chunk_KB")
	bodySize, err := p.protoBodySize()
	if err != nil {
		return nil, err
	}
	for _, c := range p.ProtoClusterSizes {
		sys, err := core.NewSystem(p.observe(core.Config{
			Nodes:       c,
			Clusters:    1,
			Replication: p.Replication,
			Seed:        p.Seed,
		}))
		if err != nil {
			return nil, err
		}
		gen, err := p.protoGen()
		if err != nil {
			return nil, err
		}
		var hist metrics.Histogram
		for b := 0; b < p.ProtoBlocks; b++ {
			d, err := commitTime(sys, gen.NextTxs(p.ProtoTxPerBlock))
			if err != nil {
				return nil, fmt.Errorf("cluster size %d: %w", c, err)
			}
			hist.Observe(float64(d.Microseconds()) / 1000)
		}
		// Baseline: one 20 Mbit/s transfer of the whole body plus the base
		// RTT — what a non-collaborative node pays before verifying alone.
		const bps = 20e6 / 8
		download := float64(bodySize)/bps*1000 + 10 // ms
		tbl.AddRow(c, hist.Mean(), download, kb(float64(bodySize)/float64(c)))
	}
	return tbl, nil
}

// E9Throughput regenerates the "throughput vs number of clusters" figure:
// sequentially committed transactions per virtual second as the fixed-size
// network is divided into more (hence smaller) clusters. Uplink
// serialization is enabled so the producer's fan-out to cluster leaders is
// a real cost — the curve shows the trade-off the paper's clustering knob
// controls.
func E9Throughput(p Params) (*metrics.Table, error) {
	if len(p.ProtoNetworkSizes) == 0 {
		return nil, errors.New("experiments: ProtoNetworkSizes is empty")
	}
	n := p.ProtoNetworkSizes[len(p.ProtoNetworkSizes)-1]
	tbl := metrics.NewTable(
		fmt.Sprintf("E9: sequential commit throughput (n=%d, %d txs per block, 20 Mbit/s uplinks)",
			n, p.ProtoTxPerBlock),
		"clusters", "cluster_size", "mean_commit_ms", "tx_per_sec")
	for _, m := range p.ProtoClusterCount {
		if n/m < 2 {
			continue
		}
		sys, err := core.NewSystem(p.observe(core.Config{
			Nodes:             n,
			Clusters:          m,
			Replication:       p.Replication,
			Seed:              p.Seed,
			UplinkBytesPerSec: 20e6 / 8,
		}))
		if err != nil {
			return nil, err
		}
		gen, err := p.protoGen()
		if err != nil {
			return nil, err
		}
		var total time.Duration
		for b := 0; b < p.ProtoBlocks; b++ {
			d, err := commitTime(sys, gen.NextTxs(p.ProtoTxPerBlock))
			if err != nil {
				return nil, fmt.Errorf("m=%d: %w", m, err)
			}
			total += d
		}
		meanMs := float64(total.Microseconds()) / 1000 / float64(p.ProtoBlocks)
		tps := float64(p.ProtoTxPerBlock) / (meanMs / 1000)
		tbl.AddRow(m, n/m, meanMs, tps)
	}
	return tbl, nil
}
