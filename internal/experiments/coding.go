package experiments

import (
	"fmt"
	"runtime"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/erasure"
	"icistrategy/internal/metrics"
)

// Coding-throughput measurement: the erasure hot path in isolation.
//
// Every coded-storage figure (archival, repair, coded retrieval) sits on
// top of the Reed-Solomon kernels, so their MB/s is the gating cost of the
// low-storage node the related work targets. E13 measures the table-driven
// kernel path against the byte-at-a-time scalar reference at block scale,
// and cmd/icibench -erasurebench serializes the same numbers to
// BENCH_PR2.json so the repo carries a perf trajectory across PRs.

// CodingShape is one (k, m) code configuration to measure.
type CodingShape struct {
	K int `json:"k"`
	M int `json:"m"`
}

// CodingResult is the measurement for one shape at one payload size. MB/s
// is payload bytes (k·shard bytes) per wall second; allocs are mallocs per
// operation observed over the measurement window.
type CodingResult struct {
	CodingShape
	ShardBytes          int     `json:"shard_bytes"`
	PayloadBytes        int     `json:"payload_bytes"`
	EncodeMBps          float64 `json:"encode_mbps"`
	EncodeAllocs        int64   `json:"encode_allocs_per_op"`
	EncodeScalarMBps    float64 `json:"encode_scalar_mbps"`
	EncodeSpeedup       float64 `json:"encode_speedup"`
	ReconstructMBps     float64 `json:"reconstruct_mbps"`
	ReconstructAllocs   int64   `json:"reconstruct_allocs_per_op"`
	ReconstructColdMBps float64 `json:"reconstruct_cold_mbps"`
}

// CodingShapes returns the shapes E13 sweeps: the (16, 4) headline the
// bench trail tracks across PRs, plus the archival shape the cluster
// actually runs (RS(c-p, p) at the E11 sweep's midpoint parity).
func CodingShapes(p Params) []CodingShape {
	shapes := []CodingShape{{K: 16, M: 4}}
	parity := p.ClusterSize / 8
	if parity >= 1 && p.ClusterSize-parity >= 1 && !(p.ClusterSize-parity == 16 && parity == 4) {
		shapes = append(shapes, CodingShape{K: p.ClusterSize - parity, M: parity})
	}
	return shapes
}

// timeOp measures op until at least window has elapsed (always at least one
// timed iteration after one untimed warm-up) and returns seconds per
// operation plus mallocs per operation.
func timeOp(window time.Duration, op func() error) (secPerOp float64, allocsPerOp int64, err error) {
	if err := op(); err != nil {
		return 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	iters := 0
	batch := 1
	// E13 measures real MB/s of the erasure kernels on this machine; the
	// wall clock is the measurement instrument here, not simulation state,
	// so the determinism invariant is deliberately waived for this timer.
	start := time.Now() //icilint:allow determinism(wall-clock throughput measurement is the experiment's purpose)
	elapsed := time.Duration(0)
	for elapsed < window {
		for i := 0; i < batch; i++ {
			if err := op(); err != nil {
				return 0, 0, err
			}
		}
		iters += batch
		elapsed = time.Since(start) //icilint:allow determinism(wall-clock throughput measurement is the experiment's purpose)
		if batch < 1<<16 {
			batch *= 2
		}
	}
	runtime.ReadMemStats(&after)
	return elapsed.Seconds() / float64(iters), int64(after.Mallocs-before.Mallocs) / int64(iters), nil
}

// RunCodingBench measures one shape at the given payload size, spending
// roughly window per measured operation (four operations total).
func RunCodingBench(shape CodingShape, payloadBytes int, seed uint64, window time.Duration) (CodingResult, error) {
	code, err := erasure.Cached(shape.K, shape.M)
	if err != nil {
		return CodingResult{}, err
	}
	shardBytes := (payloadBytes + shape.K - 1) / shape.K
	if shardBytes == 0 {
		shardBytes = 1
	}
	payload := shardBytes * shape.K
	rng := blockcrypto.NewRNG(seed)
	data := make([][]byte, shape.K)
	for i := range data {
		data[i] = make([]byte, shardBytes)
		for j := range data[i] {
			data[i][j] = byte(rng.Intn(256))
		}
	}
	newShards := func() [][]byte {
		shards := make([][]byte, shape.K+shape.M)
		copy(shards, data)
		for i := shape.K; i < len(shards); i++ {
			shards[i] = make([]byte, shardBytes)
		}
		return shards
	}
	mbps := func(secPerOp float64) float64 {
		if secPerOp <= 0 {
			return 0
		}
		return float64(payload) / secPerOp / (1 << 20)
	}

	res := CodingResult{CodingShape: shape, ShardBytes: shardBytes, PayloadBytes: payload}

	shards := newShards()
	sec, allocs, err := timeOp(window, func() error { return code.Encode(shards) })
	if err != nil {
		return CodingResult{}, err
	}
	res.EncodeMBps, res.EncodeAllocs = mbps(sec), allocs

	scalarShards := newShards()
	sec, _, err = timeOp(window, func() error { return code.EncodeScalarReference(scalarShards) })
	if err != nil {
		return CodingResult{}, err
	}
	res.EncodeScalarMBps = mbps(sec)
	if res.EncodeScalarMBps > 0 {
		res.EncodeSpeedup = res.EncodeMBps / res.EncodeScalarMBps
	}

	// Reconstruction with the worst-case loss (m data shards erased),
	// repeating one loss pattern: the decode-matrix-cache path a repairing
	// cluster actually takes.
	encoded := newShards()
	if err := code.Encode(encoded); err != nil {
		return CodingResult{}, err
	}
	work := make([][]byte, len(encoded))
	erase := func() {
		copy(work, encoded)
		for j := 0; j < shape.M && j < shape.K; j++ {
			work[j] = nil
		}
	}
	sec, allocs, err = timeOp(window, func() error {
		erase()
		return code.Reconstruct(work)
	})
	if err != nil {
		return CodingResult{}, err
	}
	res.ReconstructMBps, res.ReconstructAllocs = mbps(sec), allocs

	// Cold reconstruction: a fresh codec per operation, i.e. the
	// pre-registry cost (systematic-matrix derivation plus Gaussian
	// elimination on every call).
	sec, _, err = timeOp(window, func() error {
		freshCode, err := erasure.New(shape.K, shape.M)
		if err != nil {
			return err
		}
		erase()
		return freshCode.Reconstruct(work)
	})
	if err != nil {
		return CodingResult{}, err
	}
	res.ReconstructColdMBps = mbps(sec)
	return res, nil
}

// codingWindow scales the per-operation measurement window with the block
// size so the Quick configuration stays test-fast while paper-scale runs
// get stable numbers.
func codingWindow(p Params) time.Duration {
	if p.BlockBody >= 1<<20 {
		return 250 * time.Millisecond
	}
	return 25 * time.Millisecond
}

// E13CodingThroughput regenerates the coding-throughput table: kernel vs
// scalar encode MB/s, the speedup, and warm/cold reconstruction MB/s at
// the configured block size.
func E13CodingThroughput(p Params) (*metrics.Table, error) {
	tbl := metrics.NewTable(
		fmt.Sprintf("E13 (extension): erasure coding throughput (%s payloads)",
			metrics.HumanBytes(float64(p.BlockBody))),
		"code", "encode_MBps", "scalar_MBps", "speedup", "reconstruct_MBps", "reconstruct_cold_MBps")
	for _, shape := range CodingShapes(p) {
		r, err := RunCodingBench(shape, int(p.BlockBody), p.Seed, codingWindow(p))
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("RS(%d,%d)", shape.K, shape.M),
			r.EncodeMBps, r.EncodeScalarMBps, r.EncodeSpeedup,
			r.ReconstructMBps, r.ReconstructColdMBps)
	}
	return tbl, nil
}
