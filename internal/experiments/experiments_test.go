package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses table cell (r, c) of the rendered CSV as float64.
func cell(t *testing.T, csv string, row, col int) float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if row+1 >= len(lines) {
		t.Fatalf("row %d out of range in:\n%s", row, csv)
	}
	cells := strings.Split(lines[row+1], ",")
	if col >= len(cells) {
		t.Fatalf("col %d out of range in row %q", col, lines[row+1])
	}
	v, err := strconv.ParseFloat(cells[col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q is not numeric", row, col, cells[col])
	}
	return v
}

func TestAllExperimentsRunAtQuickScale(t *testing.T) {
	p := Quick()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(p)
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Name, err)
			}
			if tbl.NumRows() == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			if tbl.String() == "" || tbl.CSV() == "" {
				t.Fatalf("%s renders empty", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E3"); !ok {
		t.Fatal("E3 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestE1ShapesHold(t *testing.T) {
	p := Quick()
	tbl, err := E1StorageVsChainLength(p)
	if err != nil {
		t.Fatal(err)
	}
	csv := tbl.CSV()
	rows := tbl.NumRows()
	// Storage grows with the chain for every strategy, and the ordering
	// full > rapidchain > ici holds at every checkpoint.
	var prevFull float64
	for r := 0; r < rows; r++ {
		full := cell(t, csv, r, 1)
		rapid := cell(t, csv, r, 2)
		ici := cell(t, csv, r, 3)
		if !(full > rapid && rapid > ici) {
			t.Fatalf("row %d: ordering broken: full=%v rapid=%v ici=%v", r, full, rapid, ici)
		}
		if full <= prevFull {
			t.Fatalf("row %d: full storage did not grow", r)
		}
		prevFull = full
	}
}

func TestE3HeadlineRatio(t *testing.T) {
	// The abstract's claim: at the paper configuration (committee = 4x
	// cluster size), ICI r=1 needs ~25 % of RapidChain's storage. Quick()
	// keeps the same 4x ratio, so the number must reproduce.
	p := Quick()
	tbl, err := E3StorageSummary(p)
	if err != nil {
		t.Fatal(err)
	}
	csv := tbl.CSV()
	// Rows: full, rapidchain, ici r=1, ici r=2, ici r=3.
	r1VsRapid := cell(t, csv, 2, 3)
	if r1VsRapid < 0.22 || r1VsRapid > 0.28 {
		t.Fatalf("ici(r=1)/rapidchain = %v, want ~0.25", r1VsRapid)
	}
	// Replication scales the footprint linearly.
	r2VsRapid := cell(t, csv, 3, 3)
	if r2VsRapid < 1.8*r1VsRapid || r2VsRapid > 2.2*r1VsRapid {
		t.Fatalf("r=2 ratio %v not ~2x r=1 ratio %v", r2VsRapid, r1VsRapid)
	}
}

func TestE4ICIBeatsFullReplication(t *testing.T) {
	p := Quick()
	tbl, err := E4CommunicationOverhead(p)
	if err != nil {
		t.Fatal(err)
	}
	csv := tbl.CSV()
	for r := 0; r < tbl.NumRows(); r++ {
		full := cell(t, csv, r, 1)
		ici := cell(t, csv, r, 3)
		if ici >= full {
			t.Fatalf("row %d: ICI bytes/node %v >= full replication %v", r, ici, full)
		}
	}
}

func TestE5BootstrapOrdering(t *testing.T) {
	p := Quick()
	tbl, err := E5BootstrapCost(p)
	if err != nil {
		t.Fatal(err)
	}
	csv := tbl.CSV()
	last := tbl.NumRows() - 1
	full := cell(t, csv, last, 1)
	rapid := cell(t, csv, last, 3)
	ici := cell(t, csv, last, 5)
	if !(ici < rapid && rapid < full) {
		t.Fatalf("bootstrap ordering broken: full=%v rapid=%v ici=%v", full, rapid, ici)
	}
}

func TestE7AvailabilityMonotone(t *testing.T) {
	p := Quick()
	p.AvailTrials = 200
	tbl, err := E7Availability(p)
	if err != nil {
		t.Fatal(err)
	}
	csv := tbl.CSV()
	rows := tbl.NumRows()
	for r := 0; r < rows; r++ {
		r1 := cell(t, csv, r, 1)
		r2 := cell(t, csv, r, 2)
		r3 := cell(t, csv, r, 3)
		rs := cell(t, csv, r, 4)
		// More redundancy never hurts.
		if r2 < r1 || r3 < r2 {
			t.Fatalf("row %d: availability not monotone in r: %v %v %v", r, r1, r2, r3)
		}
		// RS(16,20) dominates r=1 (same storage class, coded redundancy).
		if rs < r1 {
			t.Fatalf("row %d: RS availability %v below r=1 %v", r, rs, r1)
		}
	}
	// At the smallest failure fraction, r=3 should be essentially perfect.
	if r3 := cell(t, csv, 0, 3); r3 < 0.99 {
		t.Fatalf("r=3 availability at 5%% failures = %v", r3)
	}
}

func TestE8SavingsBelowOne(t *testing.T) {
	p := Quick()
	tbl, err := E8BootstrapSavings(p)
	if err != nil {
		t.Fatal(err)
	}
	csv := tbl.CSV()
	for r := 0; r < tbl.NumRows(); r++ {
		vsFull := cell(t, csv, r, 1)
		vsRapid := cell(t, csv, r, 2)
		if vsFull >= 1 || vsRapid >= 1 {
			t.Fatalf("row %d: no bootstrap savings: vs full %v, vs rapid %v", r, vsFull, vsRapid)
		}
	}
}

// BenchmarkSimWorkload drives the -simbench flood+ack workload through the
// overhauled engine — the profile target for event-engine work.
func BenchmarkSimWorkload(b *testing.B) {
	eng, err := buildSimBenchNet(4096, 42)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := simBenchRound(eng, 4096); err != nil {
		b.Fatal(err) // warm-up: fill pool and intern table
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simBenchRound(eng, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
