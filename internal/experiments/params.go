// Package experiments regenerates every table and figure of the paper's
// evaluation (as reconstructed in DESIGN.md): storage scaling, the 25 %
// RapidChain comparison, communication overhead, bootstrap cost,
// verification latency, availability under failures, throughput, and the
// clustering-method ablation. Each experiment returns a metrics.Table whose
// rows are the series the paper plots; cmd/icibench prints and saves them,
// and bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/cluster"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
	"icistrategy/internal/trace"
	"icistrategy/internal/workload"
)

// Params carries the shared configuration of the experiment suite. Zero
// value is not useful; start from Defaults().
type Params struct {
	// Seed drives every random decision in every experiment.
	Seed uint64

	// Storage-model scale (E1-E3, E5, E8) — paper-scale, analytic layer.
	Nodes         int   // network size n
	ClusterSize   int   // ICI cluster size c
	CommitteeSize int   // RapidChain committee size
	Replication   int   // ICI replication factor r
	BlockBody     int64 // block body bytes
	MaxBlocks     int   // chain length for the deepest point

	// Protocol scale (E4, E6, E9, E10) — full message simulation.
	ProtoTxPerBlock   int   // transactions per block in protocol runs
	ProtoPayload      int   // payload bytes per transaction
	ProtoBlocks       int   // blocks per protocol measurement
	ProtoNetworkSizes []int // network sizes for the communication sweep
	ProtoClusterSize  int   // ICI cluster size in protocol runs
	ProtoCommittee    int   // RapidChain committee size in protocol runs
	ProtoClusterSizes []int // cluster sizes for the latency sweep (E6)
	ProtoClusterCount []int // cluster counts for the throughput sweep (E9)

	// Availability (E7).
	AvailTrials int // Monte-Carlo trials per point

	// Gateway load (E15) — real-TCP read path under Zipfian popularity.
	GatewayServers     int     // storage servers behind the gateway
	GatewayReplication int     // chunk replication in the gateway cluster
	GatewayBlocks      int     // chain length served
	GatewayTxPerBlock  int     // transactions per served block
	GatewayClients     int     // closed-loop client concurrency
	GatewayRequests    int     // total requests per run
	GatewayZipfS       float64 // key-popularity skew
	GatewayCacheBytes  int64   // per-cache budget for the cache-on run
	GatewayProofEvery  int     // every Nth request is a light-client proof

	// Churn (E16) — epoch-versioned membership under node churn.
	ChurnClusterSize int   // members in the churned cluster
	ChurnReplication int   // chunk replication under churn
	ChurnBlocks      int   // blocks produced across a churn run
	ChurnRates       []int // churn events per run (sweep)

	// Tracer, when non-nil, is threaded into every protocol-scale system the
	// suite builds, so a whole icibench run can be traced end to end (E14
	// always records into its own private recorder regardless).
	Tracer *trace.Tracer
	// Registry, when non-nil, accumulates the protocol counters of every
	// protocol-scale system across the suite.
	Registry *metrics.Registry
}

// Defaults returns the reconstructed paper configuration: n = 4096 nodes,
// ICI clusters of 64, RapidChain committees of 256 (the RapidChain paper's
// own committee size, rounded to a power of two), 1 MiB blocks.
func Defaults() Params {
	return Params{
		Seed:              42,
		Nodes:             4096,
		ClusterSize:       64,
		CommitteeSize:     256,
		Replication:       1,
		BlockBody:         1 << 20,
		MaxBlocks:         512,
		ProtoTxPerBlock:   512,
		ProtoPayload:      40,
		ProtoBlocks:       5,
		ProtoNetworkSizes: []int{64, 128, 256},
		ProtoClusterSize:  16,
		ProtoCommittee:    32,
		ProtoClusterSizes: []int{4, 8, 16, 32, 64},
		ProtoClusterCount: []int{2, 4, 8, 16},
		AvailTrials:       300,

		GatewayServers:     8,
		GatewayReplication: 2,
		GatewayBlocks:      48,
		GatewayTxPerBlock:  96,
		GatewayClients:     16,
		GatewayRequests:    2400,
		GatewayZipfS:       1.1,
		GatewayCacheBytes:  4 << 20,
		GatewayProofEvery:  8,

		ChurnClusterSize: 12,
		ChurnReplication: 2,
		ChurnBlocks:      24,
		ChurnRates:       []int{1, 2, 4},
	}
}

// Quick returns a configuration small enough for unit tests and -short
// benchmark runs while keeping every structural relationship (cluster size
// divides node count, committee size a multiple of cluster size).
func Quick() Params {
	return Params{
		Seed:              42,
		Nodes:             256,
		ClusterSize:       16,
		CommitteeSize:     64,
		Replication:       1,
		BlockBody:         1 << 16,
		MaxBlocks:         32,
		ProtoTxPerBlock:   64,
		ProtoPayload:      16,
		ProtoBlocks:       2,
		ProtoNetworkSizes: []int{32, 64},
		ProtoClusterSize:  8,
		ProtoCommittee:    16,
		ProtoClusterSizes: []int{4, 8, 16},
		ProtoClusterCount: []int{2, 4},
		AvailTrials:       50,

		GatewayServers:     3,
		GatewayReplication: 2,
		GatewayBlocks:      6,
		GatewayTxPerBlock:  12,
		GatewayClients:     4,
		GatewayRequests:    80,
		GatewayZipfS:       1.1,
		GatewayCacheBytes:  1 << 20,
		GatewayProofEvery:  10,

		ChurnClusterSize: 8,
		ChurnReplication: 2,
		ChurnBlocks:      10,
		ChurnRates:       []int{1, 2},
	}
}

// observe threads the suite-wide tracer and registry (if any) into one
// protocol-scale system configuration.
func (p Params) observe(cfg core.Config) core.Config {
	cfg.Tracer = p.Tracer
	cfg.Registry = p.Registry
	return cfg
}

// protoGen builds the transaction generator every protocol-scale experiment
// shares: 64 accounts, the configured payload size, the suite seed.
func (p Params) protoGen() (*workload.Generator, error) {
	return workload.NewGenerator(workload.Config{Accounts: 64, PayloadBytes: p.ProtoPayload, Seed: p.Seed})
}

// assignments builds the ICI cluster partition and RapidChain committee
// partition for a network of n nodes.
func (p Params) assignments(n int) (ici, committees *cluster.Assignment, err error) {
	rng := blockcrypto.NewRNG(p.Seed)
	coords := simnet.RandomCoords(n, 60, rng.Fork("coords"))
	ici, err = cluster.Partition(cluster.BalancedKMeans, coords, n/p.ClusterSize, rng.Fork("ici"))
	if err != nil {
		return nil, nil, err
	}
	committees, err = cluster.Partition(cluster.BalancedKMeans, coords, n/p.CommitteeSize, rng.Fork("committee"))
	if err != nil {
		return nil, nil, err
	}
	return ici, committees, nil
}
