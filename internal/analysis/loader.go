package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed, type-checked package ready for analysis.
// Test files (*_test.go) are excluded: the analyzers police production
// invariants, and tests legitimately use wall clocks, throwaway metric
// names, and shared buffers.
type Package struct {
	// Path is the import path ("icistrategy/internal/core", or the
	// fixture-relative path under a fixture loader).
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Sources holds the raw bytes of every parsed file, keyed by the file
	// name as it appears in Fset positions. Suggested fixes are byte
	// offsets into these exact bytes.
	Sources map[string][]byte
}

// The stdlib is type-checked from source exactly once per process and
// shared by every loader (module and fixture loaders alike), so a test
// binary running many fixture loads pays the fmt/sync/time cost once.
var (
	stdFsetOnce sync.Once
	stdFset     *token.FileSet
	stdImp      types.Importer
	stdMu       sync.Mutex
)

func stdImporter() (*token.FileSet, types.Importer) {
	stdFsetOnce.Do(func() {
		stdFset = token.NewFileSet()
		stdImp = importer.ForCompiler(stdFset, "source", nil)
	})
	return stdFset, stdImp
}

// Loader parses and type-checks packages, resolving intra-repo (or
// intra-fixture) imports from disk and everything else from the stdlib
// source importer. It works fully offline.
type Loader struct {
	Fset *token.FileSet
	// resolve maps an import path to a directory, or reports false to fall
	// back to the stdlib importer.
	resolve func(importPath string) (string, bool)
	// pathOf maps a directory back to its import path.
	pathOf  func(dir string) (string, error)
	root    string
	byPath  map[string]*Package
	loading map[string]bool
}

// NewModuleLoader returns a loader rooted at the module directory
// (containing go.mod). Imports under the module path resolve to
// subdirectories; all other imports go to the stdlib source importer.
func NewModuleLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modData, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("loader: %w (icilint must run from inside the module)", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(modData), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("loader: no module line in %s/go.mod", root)
	}
	fset, _ := stdImporter()
	l := &Loader{Fset: fset, root: root, byPath: map[string]*Package{}, loading: map[string]bool{}}
	l.resolve = func(importPath string) (string, bool) {
		if importPath == modPath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(importPath, modPath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	l.pathOf = func(dir string) (string, error) {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return "", err
		}
		if rel == "." {
			return modPath, nil
		}
		if strings.HasPrefix(rel, "..") {
			return "", fmt.Errorf("loader: %s is outside module root %s", dir, root)
		}
		return modPath + "/" + filepath.ToSlash(rel), nil
	}
	return l, nil
}

// NewFixtureLoader returns a loader rooted at an analysistest-style
// testdata "src" directory: import path P resolves to srcRoot/P. Used by
// the golden-fixture harness.
func NewFixtureLoader(srcRoot string) (*Loader, error) {
	srcRoot, err := filepath.Abs(srcRoot)
	if err != nil {
		return nil, err
	}
	fset, _ := stdImporter()
	l := &Loader{Fset: fset, root: srcRoot, byPath: map[string]*Package{}, loading: map[string]bool{}}
	l.resolve = func(importPath string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(importPath))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
	l.pathOf = func(dir string) (string, error) {
		rel, err := filepath.Rel(srcRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", fmt.Errorf("loader: %s is outside fixture root %s", dir, srcRoot)
		}
		return filepath.ToSlash(rel), nil
	}
	return l, nil
}

// Import implements types.Importer: repo-internal paths load (and cache)
// from disk, everything else defers to the shared stdlib source importer.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.resolve(importPath); ok {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	_, imp := stdImporter()
	stdMu.Lock()
	defer stdMu.Unlock()
	return imp.Import(importPath)
}

// LoadDir parses and type-checks the package in dir (cached).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	importPath, err := l.pathOf(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.byPath[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("loader: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	// build.ImportDir applies the build-tag and GOOS/GOARCH file filtering
	// of the host context (so e.g. the amd64 asm stubs and the portable
	// fallback never collide) and excludes *_test.go.
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", importPath, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	sources := make(map[string][]byte, len(bp.GoFiles))
	sort.Strings(bp.GoFiles)
	for _, name := range bp.GoFiles {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		f, err := parser.ParseFile(l.Fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		files = append(files, f)
		sources[full] = src
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info, Sources: sources}
	l.byPath[importPath] = pkg
	return pkg, nil
}

// Loaded returns the already-loaded package with the given import path,
// or nil. RunPackages uses it to walk the module-internal dependency
// closure without triggering new loads — the type-checker pulled every
// internal dependency through Import while the requested packages were
// loading, so anything absent here is stdlib.
func (l *Loader) Loaded(importPath string) *Package {
	return l.byPath[importPath]
}

// LoadPath loads the package with the given import path (which must be
// resolvable by this loader, i.e. inside the module or fixture root).
func (l *Loader) LoadPath(importPath string) (*Package, error) {
	dir, ok := l.resolve(importPath)
	if !ok {
		return nil, fmt.Errorf("loader: %q is not inside this loader's root", importPath)
	}
	return l.LoadDir(dir)
}

// Load expands the given package patterns and loads each match. Patterns
// are directory-based, relative to the loader root (or absolute):
// "./..."-style wildcards walk subdirectories, anything else names one
// directory. The walk skips testdata, hidden directories, and directories
// with no buildable non-test Go files; explicitly named directories (even
// under testdata — the CI negative gate depends on this) are loaded
// unconditionally.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	explicit := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, wild := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = l.root
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(l.root, filepath.FromSlash(base))
		}
		if !wild {
			add(base)
			explicit[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("loader: walking %s: %w", pat, err)
		}
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			// Wildcard walks tolerate directories whose every Go file is
			// excluded by build tags; explicitly named directories must load.
			var ng *build.NoGoError
			if errors.As(err, &ng) && !explicit[dir] {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
