package analyzers_test

import (
	"testing"

	"icistrategy/internal/analysis/analysistest"
	"icistrategy/internal/analysis/analyzers"
)

// The watchsrv fixture reproduces the PR-6 pipe-drain bug: goroutines
// launched with no join, so Close returns while they still run, next to
// the WaitGroup and done-channel join shapes that must stay silent.
func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.GoroLeak, "watchsrv")
}
