package analyzers

import (
	"go/ast"
	"go/types"

	"icistrategy/internal/analysis"
)

// SpanBalance keeps the tracing ledger honest: a trace.Span that is
// started but never ended records nothing (End is what emits the event),
// so the Ring recorder's per-phase summaries silently undercount the very
// phase being measured. The analyzer checks, per function, that every
// locally-held span from Tracer.Start is ended on all paths.
//
// The check is lexical, not a full CFG: a span is satisfied by (a) a
// deferred End (directly or inside a deferred closure), or (b) an End call
// textually preceding every return that follows the Start — which is
// exactly how the repo's callback-style protocol code is written (the
// `done`/`finish` closure calling End is declared right after the Start).
// Spans stored into struct fields or composite literals hand their
// lifecycle to another function and are skipped.
var SpanBalance = &analysis.Analyzer{
	Name: "spanbalance",
	Doc: `require every locally-started trace span to be ended on all paths

Historical bug family: an early error return skipped span.End(), so the
phase's spans vanished from trace.Summarize and the per-phase breakdown
undercounted exactly the failing runs it existed to explain. Hold spans
like: sp := tr.Start(...); defer sp.End() — or declare the End-calling
completion closure before any early return.`,
	Run: runSpanBalance,
}

func runSpanBalance(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpans(pass, fd)
		}
	}
	return nil
}

// isTracerStart reports whether call is trace.Tracer.Start (a method named
// Start on a Tracer from a package named/pathed "trace" returning a Span).
func isTracerStart(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Start" || fn.Pkg() == nil || !pkgPathMatches(fn.Pkg().Path(), "trace") {
		return false
	}
	recv := recvNamed(fn)
	return recv != nil && recv.Obj().Name() == "Tracer"
}

// isSpanEnd reports whether call is Span.End from the trace package.
func isSpanEnd(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "End" || fn.Pkg() == nil || !pkgPathMatches(fn.Pkg().Path(), "trace") {
		return false
	}
	recv := recvNamed(fn)
	return recv != nil && recv.Obj().Name() == "Span"
}

// endTarget resolves the object a Span.End call ends (`sp.End()` -> sp),
// or nil when the receiver is not a plain identifier.
func endTarget(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(base)
}

type spanVar struct {
	obj      types.Object
	startPos ast.Node
	deferred bool
	endPos   []ast.Node // non-deferred End sites
}

func checkSpans(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	spans := map[types.Object]*spanVar{}

	// Pass 1: find starts (tracked local spans and discarded starts) and
	// every End, noting whether the End sits under a defer. Ends seen
	// before their span's Start in source order (possible only through
	// closures) buffer in pending and resolve afterwards.
	type pendingEnd struct {
		obj      types.Object
		node     ast.Node
		deferred bool
	}
	var pending []pendingEnd
	var deferDepth int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferDepth++
			walk(n.Call)
			deferDepth--
			return
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isTracerStart(info, call) {
				pass.Reportf(call.Pos(),
					"trace span discarded at start; nothing will ever End it and the phase summary undercounts — assign it and defer End")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isTracerStart(info, call) || i >= len(n.Lhs) {
					continue
				}
				if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						if _, exists := spans[obj]; !exists {
							spans[obj] = &spanVar{obj: obj, startPos: call}
						}
						continue
					}
				}
				// Span stored into a field/composite: lifecycle is owned
				// elsewhere; skip (interprocedural).
			}
		case *ast.CallExpr:
			if isSpanEnd(info, n) {
				if obj := endTarget(info, n); obj != nil {
					if sv, ok := spans[obj]; ok {
						if deferDepth > 0 {
							sv.deferred = true
						} else {
							sv.endPos = append(sv.endPos, n)
						}
					} else {
						pending = append(pending, pendingEnd{obj: obj, node: n, deferred: deferDepth > 0})
					}
				}
			}
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return c == n
			}
			walk(c)
			return false
		})
	}
	walk(fd.Body)
	for _, pe := range pending {
		if sv, ok := spans[pe.obj]; ok {
			if pe.deferred {
				sv.deferred = true
			} else {
				sv.endPos = append(sv.endPos, pe.node)
			}
		}
	}

	if len(spans) == 0 {
		return
	}

	// Pass 2: returns at the FuncDecl's own level (not inside nested
	// function literals, which return from the closure instead).
	var returns []*ast.ReturnStmt
	var collectReturns func(n ast.Node)
	collectReturns = func(n ast.Node) {
		if _, ok := n.(*ast.FuncLit); ok {
			return
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, ret)
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return c == n
			}
			collectReturns(c)
			return false
		})
	}
	collectReturns(fd.Body)

	for _, sv := range spans {
		if sv.deferred {
			continue
		}
		if len(sv.endPos) == 0 {
			pass.Reportf(sv.startPos.Pos(),
				"span %q is started but never ended in this function; its event is never recorded (per-phase summaries undercount) — defer %s.End()",
				sv.obj.Name(), sv.obj.Name())
			continue
		}
		firstEnd := sv.endPos[0].Pos()
		for _, e := range sv.endPos[1:] {
			if e.Pos() < firstEnd {
				firstEnd = e.Pos()
			}
		}
		for _, ret := range returns {
			if ret.Pos() > sv.startPos.Pos() && ret.Pos() < firstEnd {
				pass.Reportf(ret.Pos(),
					"return leaves span %q (started at %s) unended on this path — call %s.End() before returning or defer it",
					sv.obj.Name(), pass.Fset.Position(sv.startPos.Pos()), sv.obj.Name())
			}
		}
	}
}
