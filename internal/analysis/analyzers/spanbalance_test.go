package analyzers_test

import (
	"testing"

	"icistrategy/internal/analysis/analysistest"
	"icistrategy/internal/analysis/analyzers"
)

// The spanuser fixture reproduces the span-undercount family (started-
// never-ended, early return past End, span discarded at birth) next to
// every legal shape the protocol code uses: defer, all-paths End, the
// End-calling completion closure, deferred closures, and field-owned
// spans whose lifecycle is another function's job.
func TestSpanBalance(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.SpanBalance, "spanuser")
}
