package analyzers_test

import (
	"testing"

	"icistrategy/internal/analysis/analysistest"
	"icistrategy/internal/analysis/analyzers"
)

// The eventpool fixture reproduces the PR-5 pooled-event engine bugs: a
// cancelled-timer path returning without freeing the event, and a
// callback fired after the event was recycled, next to the paired and
// deferred fix shapes and the ownership handoffs that must stay silent.
func TestPoolReturn(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.PoolReturn, "eventpool")
}
