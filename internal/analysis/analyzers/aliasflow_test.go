package analyzers_test

import (
	"testing"

	"icistrategy/internal/analysis/analysistest"
	"icistrategy/internal/analysis/analyzers"
)

// The blobdep/blobuser fixture pair exercises the facts layer end to
// end: blobdep's Put retains its argument and Peek returns a borrowed
// view (facts exported), and blobuser forwards its own callers' buffers
// into them (facts imported, chain flagged at the forwarding site).
// blobdep is listed first so its facts exist when blobuser is checked —
// the same dependency order RunPackages derives for the real tree.
func TestAliasFlow(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.AliasFlow, "blobdep", "blobuser")
}
