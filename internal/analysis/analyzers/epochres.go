package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"icistrategy/internal/analysis"
)

// EpochRes encodes the PR-8 stale-placement bug family: after membership
// became epoch-versioned, every placement decision about an existing
// block must flow from the epoch the block was WRITTEN under
// (epochAt/membersAt/placementAt), not from the raw live roster — a
// rendezvous hash over today's members silently disagrees with where an
// earlier epoch actually put the chunks, and retrieval asks the wrong
// nodes.
//
// The check is deliberately scoped to "epoch-aware" functions — ones
// that already touch the historical-epoch API — because those are
// exactly the functions handling blocks that may predate the current
// roster. Inside such a function, passing a raw roster to a placement
// call (core.Owners, RankedMembers, IsOwner) is flagged when the members
// argument is:
//
//   - a roster field selector like n.cluster.members or cl.ids — live
//     state, not a resolved epoch — or
//   - currentEpoch().members / a .members read off a *current* epoch
//     value obtained via currentEpoch, which pins "now" onto a block
//     that may be older.
//
// Plain identifiers (parameters, locals) and .members reads off values
// produced by the height-resolving API stay silent, so the fixed shapes
// (ep := c.epochAt(h); Owners(seed, ep.members, ...)) never trigger.
// Intentional current-epoch placement in an epoch-aware function — e.g.
// a write path that also archives — is annotated:
// //icilint:allow epochres(reason).
var EpochRes = &analysis.Analyzer{
	Name: "epochres",
	Doc: `flag placement computed from the raw live roster in functions handling epoch-versioned blocks

Historical bug (PR 8): retrieval ranked owners over the cluster's live
member list while the block's chunks had been placed under an earlier
membership epoch; after churn the ranking diverged and reads missed every
replica. Resolve the roster at the block's write height (epochAt /
membersAt / placementAt) before calling Owners/RankedMembers/IsOwner.`,
	Run: runEpochRes,
}

// epochMarkers are the historical-epoch API calls that make a function
// "epoch-aware". currentEpoch is deliberately absent: a function that
// only ever works on now-state (the write path) is allowed to place by
// the live roster.
var epochMarkers = map[string]bool{
	"epochAt":              true,
	"placementAt":          true,
	"partsAt":              true,
	"membersAt":            true,
	"ClusterMembersAt":     true,
	"archivedInfo":         true,
	"epochForMap":          true,
	"fetchFromEpochOwners": true,
}

// rosterFields are field names that hold a live member roster.
var rosterFields = map[string]bool{
	"members": true,
	"Members": true,
	"ids":     true,
	"IDs":     true,
}

func runEpochRes(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !callsEpochMarker(pass.TypesInfo, fd.Body) {
				continue
			}
			checkEpochRes(pass, fd)
		}
	}
	return nil
}

// callsEpochMarker reports whether body contains a call to any of the
// historical-epoch API functions.
func callsEpochMarker(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if fn := calleeFunc(info, call); fn != nil && epochMarkers[fn.Name()] {
			found = true
		}
		return !found
	})
	return found
}

func checkEpochRes(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if !isPlacementCall(fn) || len(call.Args) < 2 {
			return true
		}
		if src := rawRosterSource(pass.TypesInfo, call.Args[1]); src != "" {
			pass.Reportf(call.Args[1].Pos(),
				"placement over raw roster %s in an epoch-aware function; chunks of an existing block live under its write epoch — resolve members at the block's height (epochAt/membersAt) or annotate icilint:allow epochres(reason)", src)
		}
		return true
	})
}

// isPlacementCall matches the rendezvous placement entry points. The
// members argument is Args[1] for all three.
func isPlacementCall(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Name() {
	case "Owners", "RankedMembers", "IsOwner":
	default:
		return false
	}
	return pkgPathMatches(fn.Pkg().Path(), "core") || pkgPathMatches(fn.Pkg().Path(), "epochstore")
}

// rawRosterSource classifies the members argument, returning a short
// description of the raw-roster source it flows from, or "" when the
// expression is epoch-resolved (or too indirect to judge).
func rawRosterSource(info *types.Info, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "" // params, locals, and call results stay silent
	}
	if !rosterFields[sel.Sel.Name] {
		return ""
	}
	switch base := ast.Unparen(sel.X).(type) {
	case *ast.CallExpr:
		// currentEpoch().members pins the live epoch onto the block.
		if fn := calleeFunc(info, base); fn != nil && fn.Name() == "currentEpoch" {
			return renderSelector(sel)
		}
		return "" // epochAt(h).members and friends: resolved
	default:
		// A .members/.ids field read off live state (cluster, roster
		// struct) unless the base value is itself an epoch type.
		if t := info.TypeOf(sel.X); t != nil {
			if n := namedOrNil(t); n != nil && strings.Contains(strings.ToLower(n.Obj().Name()), "epoch") {
				return ""
			}
		}
		return renderSelector(sel)
	}
}

// renderSelector prints a compact dotted path for the message.
func renderSelector(sel *ast.SelectorExpr) string {
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return x.Name + "." + sel.Sel.Name
	case *ast.SelectorExpr:
		return renderSelector(x) + "." + sel.Sel.Name
	case *ast.CallExpr:
		if inner, ok := x.Fun.(*ast.SelectorExpr); ok {
			return inner.Sel.Name + "()." + sel.Sel.Name
		}
		if id, ok := x.Fun.(*ast.Ident); ok {
			return id.Name + "()." + sel.Sel.Name
		}
	}
	return sel.Sel.Name
}
