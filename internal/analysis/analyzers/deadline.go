package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"icistrategy/internal/analysis"
	"icistrategy/internal/analysis/cfg"
)

// Deadline encodes the PR-7 roundTrip bug family: a blocking Read/Write
// on a net.Conn that no SetDeadline dominates. The historical bug hung
// every retrieval worker on one dead peer because the client's roundTrip
// wrote the request and read the response with no deadline armed; the
// fix armed conn.SetDeadline(now+timeout) before the exchange. This
// analyzer proves the fix shape with a must-dataflow over the CFG: at
// every direct I/O event on a deadline-capable value, the "deadline
// armed" fact must hold on ALL paths from the function entry.
//
//   - Tracked values: parameters, locals, and one-level field selectors
//     (c.conn) whose type has SetDeadline in its method set — net.Conn,
//     *net.TCPConn, and the repo's own conn wrappers that forward it.
//     Wrappers WITHOUT SetDeadline (io.ReadWriter views, counting
//     wrappers) are invisible by design: I/O through them inherits
//     whatever the underlying conn armed.
//   - Events: v.Read/v.Write method calls, and calls to the message
//     helpers (ReadMessage, WriteMessage, io.ReadFull, io.Copy, CopyN,
//     ReadAll) passing a tracked value.
//   - Arming: v.SetDeadline / SetReadDeadline / SetWriteDeadline.
//     Reassigning v disarms it.
//
// One diagnostic per value per function (at its first unarmed event).
// Deliberately deadline-free I/O — an accept loop's first read that a
// Close teardown unblocks — is annotated:
// //icilint:allow deadline(reason).
var Deadline = &analysis.Analyzer{
	Name: "deadline",
	Doc: `flag conn Read/Write not dominated by a SetDeadline arm (must-dataflow over the CFG)

Historical bug (PR 7): netx client roundTrip performed the request/response
exchange with no deadline armed; one unresponsive peer wedged the
retrieval worker pool forever. Arm conn.SetDeadline(time.Now().Add(
timeout)) on every path before blocking I/O, or annotate the intentional
blocking read.`,
	Run: runDeadline,
}

// deadlinePkgs scopes the analyzer to the transport packages (plus the
// fixture), where unarmed I/O is the historical hazard.
var deadlinePkgs = map[string]bool{
	"netx":    true,
	"gateway": true,
	"wire":    true,
}

// ioHelperNames are helper functions whose blocking I/O happens on the
// tracked argument itself.
var ioHelperNames = map[string]bool{
	"ReadMessage":  true,
	"WriteMessage": true,
	"ReadFull":     true,
	"ReadAll":      true,
	"Copy":         true,
	"CopyN":        true,
}

func runDeadline(pass *analysis.Pass) error {
	if !deadlinePkgs[lastPathElem(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeadline(pass, fd)
		}
	}
	return nil
}

// connKey names one tracked deadline-capable value: a plain object, or a
// one-level field path (base object + field).
type connKey struct {
	obj   types.Object
	field *types.Var
}

// deadlineCapable reports whether t's method set includes SetDeadline.
func deadlineCapable(pkg *types.Package, t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, "SetDeadline")
	_, ok := obj.(*types.Func)
	return ok
}

// connKeyOf resolves e to a tracked value key, or a zero key.
func connKeyOf(pass *analysis.Pass, e ast.Expr) (connKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		if obj == nil || !deadlineCapable(pass.Pkg, obj.Type()) {
			return connKey{}, false
		}
		return connKey{obj: obj}, true
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(e.X).(*ast.Ident)
		if !ok {
			return connKey{}, false
		}
		baseObj := pass.TypesInfo.ObjectOf(base)
		fobj, _ := pass.TypesInfo.ObjectOf(e.Sel).(*types.Var)
		if baseObj == nil || fobj == nil || !fobj.IsField() || !deadlineCapable(pass.Pkg, fobj.Type()) {
			return connKey{}, false
		}
		return connKey{obj: baseObj, field: fobj}, true
	}
	return connKey{}, false
}

// connEvent is one occurrence relevant to the analysis, in source order.
type connEvent struct {
	kind byte // 'a' arm, 'i' io, 'k' kill (reassignment)
	key  connKey
	pos  token.Pos
	name string // rendered value name for the message
}

// collectEvents walks one statement (not descending into func literals)
// and appends its events in lexical order.
func collectEvents(pass *analysis.Pass, n ast.Node, out *[]connEvent) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range c.Lhs {
				if key, ok := connKeyOf(pass, lhs); ok {
					*out = append(*out, connEvent{kind: 'k', key: key, pos: lhs.Pos()})
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
			if ok {
				if key, keyed := connKeyOf(pass, sel.X); keyed {
					switch sel.Sel.Name {
					case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
						*out = append(*out, connEvent{kind: 'a', key: key, pos: c.Pos()})
						return true
					case "Read", "Write":
						*out = append(*out, connEvent{kind: 'i', key: key, pos: c.Pos(), name: renderConn(sel.X) + "." + sel.Sel.Name})
						return true
					}
				}
			}
			if fn := calleeFunc(pass.TypesInfo, c); fn != nil && ioHelperNames[fn.Name()] {
				for _, arg := range c.Args {
					if key, keyed := connKeyOf(pass, arg); keyed {
						*out = append(*out, connEvent{kind: 'i', key: key, pos: c.Pos(), name: fn.Name() + "(" + renderConn(arg) + ")"})
						break
					}
				}
			}
		}
		return true
	})
}

func renderConn(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderConn(e.X) + "." + e.Sel.Name
	}
	return "conn"
}

func checkDeadline(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Events per CFG block, in block order.
	g := cfg.New(fd.Body)
	blockEvents := make([][]connEvent, len(g.Blocks))
	keyIndex := map[connKey]int{}
	var keys []connKey
	hasIO := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			collectEvents(pass, n, &blockEvents[b.Index])
		}
		for _, ev := range blockEvents[b.Index] {
			if _, ok := keyIndex[ev.key]; !ok && len(keys) < 64 {
				keyIndex[ev.key] = len(keys)
				keys = append(keys, ev.key)
			}
			if ev.kind == 'i' {
				hasIO = true
			}
		}
	}
	if !hasIO || len(keys) == 0 {
		return
	}

	transfer := func(b *cfg.Block, in cfg.Bits) cfg.Bits {
		bits := in
		for _, ev := range blockEvents[b.Index] {
			i, ok := keyIndex[ev.key]
			if !ok {
				continue
			}
			switch ev.kind {
			case 'a':
				bits = bits.With(i)
			case 'k':
				bits = bits.Without(i)
			}
		}
		return bits
	}
	in := g.Solve(transfer, cfg.Intersect, 0)

	// Report the first unarmed I/O event per value.
	first := map[connKey]connEvent{}
	for _, b := range g.Blocks {
		bits := in[b.Index]
		for _, ev := range blockEvents[b.Index] {
			i, ok := keyIndex[ev.key]
			if !ok {
				continue
			}
			switch ev.kind {
			case 'a':
				bits = bits.With(i)
			case 'k':
				bits = bits.Without(i)
			case 'i':
				if !bits.Has(i) {
					if prev, seen := first[ev.key]; !seen || ev.pos < prev.pos {
						first[ev.key] = ev
					}
				}
			}
		}
	}
	var evs []connEvent
	for _, ev := range first {
		evs = append(evs, ev)
	}
	// Deterministic order for multiple values in one function.
	for i := 0; i < len(evs); i++ {
		for j := i + 1; j < len(evs); j++ {
			if evs[j].pos < evs[i].pos {
				evs[i], evs[j] = evs[j], evs[i]
			}
		}
	}
	for _, ev := range evs {
		pass.Reportf(ev.pos,
			"%s blocks with no deadline armed on some path from the function entry; a dead peer wedges this call forever — SetDeadline before the I/O or annotate icilint:allow deadline(reason)", ev.name)
	}
}
