package analyzers_test

import (
	"testing"

	"icistrategy/internal/analysis/analysistest"
	"icistrategy/internal/analysis/analyzers"
)

// The chunkstore fixture reproduces the PR-2 storage.Store bug family:
// copy-on-put missing on the store side (plain []byte parameters and
// Chunk-style struct parameters) and copy-on-read missing on the read
// side, next to the fixed shapes that must stay silent.
func TestChunkAlias(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.ChunkAlias, "chunkstore")
}
