package analyzers_test

import (
	"testing"

	"icistrategy/internal/analysis/analysistest"
	"icistrategy/internal/analysis/analyzers"
)

// The epochstore fixture reproduces the PR-8 stale-placement bug: an
// epoch-aware retrieval path ranking owners over the live roster instead
// of the block's write-epoch members, next to the resolved fixed shapes
// and the write path that must stay silent.
func TestEpochRes(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.EpochRes, "epochstore")
}
