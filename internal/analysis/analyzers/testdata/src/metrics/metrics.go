// Package metrics is a stub of the repo's metrics registry for the
// metricname fixtures: the analyzer matches Registry.Counter/Histogram by
// receiver type name and package name, so this stub stands in for
// icistrategy/internal/metrics.
package metrics

// Counter is a stub.
type Counter struct{}

// Inc is a stub.
func (c *Counter) Inc() {}

// Histogram is a stub.
type Histogram struct{}

// Observe is a stub.
func (h *Histogram) Observe(v float64) {}

// Registry is a stub.
type Registry struct{}

// Counter is a stub get-or-create.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Histogram is a stub get-or-create.
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }
