// Package eventpool is the poolreturn golden fixture: it reproduces the
// PR-5 pooled-event engine bugs — an early return that skips the free
// call, and a callback fired after the event was recycled — next to the
// paired fix shapes, the defer shape, and the ownership transfers that
// must stay silent.
package eventpool

import "sync"

// event mirrors the simulator's pooled event struct.
type event struct {
	seq  uint64
	fire func()
}

// eventPool mirrors the engine's free list.
type eventPool struct {
	mu   sync.Mutex
	free []*event
}

func (p *eventPool) Get() *event {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		ev := p.free[n-1]
		p.free = p.free[:n-1]
		return ev
	}
	return &event{}
}

func (p *eventPool) Put(ev *event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, ev)
}

// scheduleBroken is the historical leak verbatim: the cancelled-timer
// path returns without handing the event back.
func (p *eventPool) scheduleBroken(seq uint64, cancelled bool) {
	ev := p.Get()
	ev.seq = seq
	if cancelled {
		return // want `leaks pooled`
	}
	ev.fire()
	p.Put(ev)
}

// schedule is the fix shape: every path releases.
func (p *eventPool) schedule(seq uint64, cancelled bool) {
	ev := p.Get()
	ev.seq = seq
	if cancelled {
		p.Put(ev)
		return
	}
	ev.fire()
	p.Put(ev)
}

// scheduleDefer releases through defer; silent, and later uses are fine.
func (p *eventPool) scheduleDefer(seq uint64) {
	ev := p.Get()
	defer p.Put(ev)
	ev.seq = seq
	ev.fire()
}

// fireAfterFree is the second historical bug: the callback runs after the
// event went back to the pool, racing with its next incarnation.
func (p *eventPool) fireAfterFree(seq uint64) {
	ev := p.Get()
	ev.seq = seq
	p.Put(ev)
	ev.fire() // want `after it was returned`
}

// useAfterFreeOnOnePath releases on one branch and then touches the
// event unconditionally; the may-analysis catches the poisoned path.
func (p *eventPool) useAfterFreeOnOnePath(seq uint64, early bool) uint64 {
	ev := p.Get()
	ev.seq = seq
	if early {
		p.Put(ev)
	} else {
		ev.fire()
		p.Put(ev)
		return 0
	}
	return ev.seq // want `after it was returned`
}

// reacquire re-points the variable at a fresh event; the old release no
// longer poisons it.
func (p *eventPool) reacquire(seq uint64) {
	ev := p.Get()
	p.Put(ev)
	ev = p.Get()
	ev.seq = seq
	p.Put(ev)
}

// handoff returns the pooled event to the caller on one path — an
// ownership transfer, so the missing Put on that path is the caller's
// business, not a leak.
func (p *eventPool) handoff(seq uint64, keep bool) *event {
	ev := p.Get()
	ev.seq = seq
	if keep {
		return ev
	}
	p.Put(ev)
	return nil
}

// enqueue stores the event into a field; ownership transferred, silent.
type engine struct {
	p    eventPool
	head *event
}

func (e *engine) enqueue(seq uint64, drop bool) {
	ev := e.p.Get()
	ev.seq = seq
	if drop {
		e.p.Put(ev)
		return
	}
	e.head = ev
}

// plainGet never releases in this function at all: the self-scoping gate
// keeps it silent (some other layer owns the Put).
func (p *eventPool) plainGet(seq uint64) *event {
	ev := p.Get()
	ev.seq = seq
	return ev
}
