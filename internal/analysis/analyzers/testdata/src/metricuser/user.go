// Package metricuser is the metricname golden fixture: every registered
// name must be a compile-time string in the ici/consensus/simnet/netx
// namespaces so metric snapshots stay stable and greppable.
package metricuser

import (
	"fmt"

	"metrics"
)

const goodName = "consensus.votes"

func register(r *metrics.Registry, shard int) {
	r.Counter("ici.retrieve.rounds").Inc()
	r.Counter(goodName).Inc()
	r.Histogram("simnet.delivery.latency").Observe(1)
	r.Histogram("netx.frame.bytes").Observe(1)

	r.Counter("retrieve_rounds").Inc()                        // want `does not match`
	r.Counter("ICI.Retrieve.Rounds").Inc()                    // want `does not match`
	r.Histogram("ici.").Observe(1)                            // want `does not match`
	r.Counter(fmt.Sprintf("ici.shard%d.rounds", shard)).Inc() // want `literal`
}
