// Package wire is the deadline golden fixture: it reproduces the PR-7
// roundTrip hang — blocking conn I/O with no SetDeadline armed — next to
// the armed fixed shapes, the branch-partial arm the must-analysis
// catches, and the non-deadline-capable wrapper that stays invisible.
package wire

import "time"

// Conn mirrors the deadline-capable slice of net.Conn.
type Conn interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	SetDeadline(t time.Time) error
	Close() error
}

// Msg is the wire unit.
type Msg struct{ Body []byte }

// ReadMessage mirrors netx.ReadMessage: blocking I/O on its conn
// argument. The parameter itself is I/O not dominated by any arm, which
// is the library function's contract — the CALLER arms; annotated.
func ReadMessage(c Conn, m *Msg) error {
	buf := make([]byte, 64)
	//icilint:allow deadline(library primitive: callers arm the deadline)
	_, err := c.Read(buf)
	m.Body = buf
	return err
}

// WriteMessage mirrors netx.WriteMessage.
func WriteMessage(c Conn, m *Msg) error {
	//icilint:allow deadline(library primitive: callers arm the deadline)
	_, err := c.Write(m.Body)
	return err
}

// client holds a conn in a field, the netx.Client shape.
type client struct {
	conn    Conn
	timeout time.Duration
}

// roundTripBroken is the historical bug verbatim: request out, response
// in, no deadline armed — one dead peer wedges the worker forever.
func (c *client) roundTripBroken(req, resp *Msg) error {
	if err := WriteMessage(c.conn, req); err != nil { // want `no deadline armed`
		return err
	}
	return ReadMessage(c.conn, resp)
}

// roundTrip is the PR-7 fix shape: the arm dominates both exchanges.
func (c *client) roundTrip(req, resp *Msg) error {
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	if err := WriteMessage(c.conn, req); err != nil {
		return err
	}
	return ReadMessage(c.conn, resp)
}

// halfArmed arms on only one branch; the must-analysis kills the fact at
// the join, so the read is flagged.
func halfArmed(c Conn, fast bool, m *Msg) error {
	if fast {
		c.SetDeadline(time.Now().Add(time.Second))
	}
	return ReadMessage(c, m) // want `no deadline armed`
}

// bothArmed arms on every path; silent.
func bothArmed(c Conn, fast bool, m *Msg) error {
	if fast {
		c.SetDeadline(time.Now().Add(time.Second))
	} else {
		c.SetDeadline(time.Now().Add(time.Minute))
	}
	return ReadMessage(c, m)
}

// armedBeforeLoop survives the back edge; silent.
func armedBeforeLoop(c Conn, n int, m *Msg) error {
	c.SetDeadline(time.Now().Add(time.Second))
	for i := 0; i < n; i++ {
		if err := ReadMessage(c, m); err != nil {
			return err
		}
	}
	return nil
}

// reassigned loses the arm when the conn is re-pointed.
func reassigned(c Conn, dial func() Conn, m *Msg) error {
	c.SetDeadline(time.Now().Add(time.Second))
	c = dial()
	return ReadMessage(c, m) // want `no deadline armed`
}

// countConn mirrors the netx byte-counting wrapper: no SetDeadline in
// its method set, so I/O through it is invisible — the underlying conn's
// arm governs.
type countConn struct {
	rw interface {
		Read(p []byte) (int, error)
		Write(p []byte) (int, error)
	}
	n int
}

func (w *countConn) Read(p []byte) (int, error) {
	n, err := w.rw.Read(p)
	w.n += n
	return n, err
}

// serveArmed reads through the wrapper after arming the real conn.
func serveArmed(c Conn) ([]byte, error) {
	c.SetDeadline(time.Now().Add(time.Second))
	w := &countConn{rw: c}
	buf := make([]byte, 16)
	_, err := w.Read(buf)
	return buf, err
}
