// Package trace is a stub of the repo's tracer for the spanbalance
// fixtures: the analyzer matches Tracer.Start / Span.End by receiver type
// name and package name, so this stub stands in for
// icistrategy/internal/trace.
package trace

// SpanID identifies a span.
type SpanID uint64

// Tracer mints spans.
type Tracer struct{}

// Start opens a span.
func (t *Tracer) Start(parent SpanID, proto, name string, node int64) Span { return Span{} }

// Span is one in-flight operation.
type Span struct{}

// End completes the span.
func (s *Span) End() {}

// SetErr annotates the outcome.
func (s *Span) SetErr(err error) {}

// Context returns the span id.
func (s *Span) Context() SpanID { return 0 }
