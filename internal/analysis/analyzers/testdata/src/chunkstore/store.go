// Package chunkstore is the chunkalias golden fixture: it reproduces the
// PR-2 storage.Store bug family — copy-on-put missing on the store side,
// copy-on-read missing on the read side — plus the fixed shapes that must
// stay silent.
package chunkstore

// Store mirrors the []byte-parameter half of the bug.
type Store struct {
	chunks map[string][]byte
	buf    []byte
}

// Put is the historical put bug verbatim: the caller's buffer is retained,
// so the caller's next reuse of its scratch buffer corrupts stored state.
func (s *Store) Put(key string, data []byte) {
	s.chunks[key] = data // want `caller-owned`
}

// PutTail still aliases: slicing shares the backing array.
func (s *Store) PutTail(key string, data []byte) {
	s.chunks[key] = data[4:] // want `caller-owned`
}

// PutAlias hides the parameter behind a local; still flagged.
func (s *Store) PutAlias(key string, data []byte) {
	tmp := data
	s.chunks[key] = tmp // want `caller-owned`
}

// PutLit embeds the parameter in a composite literal; still flagged.
func (s *EStore) PutLit(key string, data []byte) {
	s.m[key] = entry{data: data} // want `caller-owned`
}

// PutCopy is the PR-2 fix shape: copy-on-put.
func (s *Store) PutCopy(key string, data []byte) {
	s.chunks[key] = append([]byte(nil), data...)
}

// PutCopyVar copies through an explicit buffer.
func (s *Store) PutCopyVar(key string, data []byte) {
	buf := make([]byte, len(data))
	copy(buf, data)
	s.chunks[key] = buf
}

// PutSanitized re-points the parameter at a fresh allocation first.
func (s *Store) PutSanitized(key string, data []byte) {
	data = append([]byte(nil), data...)
	s.chunks[key] = data
}

type entry struct{ data []byte }

// EStore stores entry values.
type EStore struct{ m map[string]entry }

// Chunk mirrors storage.Chunk: a struct value whose []byte field rides in
// by parameter.
type Chunk struct {
	ID   string
	Data []byte
}

// ChunkStore mirrors the struct-parameter half of the PR-2 bug.
type ChunkStore struct {
	m map[string]Chunk
}

// Put stores the struct without copying its buffer — the exact historical
// shape.
func (s *ChunkStore) Put(c Chunk) {
	s.m[c.ID] = c // want `caller-owned`
}

// PutField leaks just the field.
func (s *ChunkStore) PutField(dst *Store, c Chunk) {
	dst.buf = c.Data // want `caller-owned`
}

// PutCopyOnPut is the shipped fix: sanitize the field, then store.
func (s *ChunkStore) PutCopyOnPut(c Chunk) {
	c.Data = append([]byte(nil), c.Data...)
	s.m[c.ID] = c
}

// --- read side ---------------------------------------------------------------

// Raw leaks the internal buffer: a reader can corrupt stored state.
func (s *Store) Raw() []byte {
	return s.buf // want `copy-on-read`
}

// Tail leaks an interior slice the same way.
func (s *Store) Tail() []byte {
	return s.buf[8:] // want `copy-on-read`
}

// Copy is the fix shape.
func (s *Store) Copy() []byte {
	return append([]byte(nil), s.buf...)
}

// View is a deliberate borrowed view, annotated with its reason.
func (s *Store) View() []byte {
	return s.buf //icilint:allow chunkalias(fixture: documented borrowed view)
}
