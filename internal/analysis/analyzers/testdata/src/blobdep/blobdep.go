// Package blobdep is the dependency half of the aliasflow fixture: a
// cache whose Put retains its argument by documented contract and whose
// Peek returns a borrowed view. The aliasflow analyzer exports
// RetainsFact/ReturnsAliasFact for these while analyzing this package
// and imports them back while analyzing the blobuser package.
package blobdep

// Cache stores blobs. By contract, Put takes ownership of data — callers
// who keep using their buffer must copy first.
type Cache struct {
	m   map[string][]byte
	buf []byte
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{m: map[string][]byte{}}
}

// Put retains data (ownership transfer by contract; see Cache docs).
func (c *Cache) Put(key string, data []byte) {
	// (In the real tree this line carries icilint:allow chunkalias(...);
	// the retention contract is what aliasflow exports as a fact.)
	c.m[key] = data
}

// PutCopy copies on put; no fact exported.
func (c *Cache) PutCopy(key string, data []byte) {
	c.m[key] = append([]byte(nil), data...)
}

// Peek returns a borrowed view of the scratch buffer.
func (c *Cache) Peek() []byte {
	// (Allow-annotated chunkalias borrow in the real tree.)
	return c.buf
}

// Snapshot copies on read; no fact exported.
func (c *Cache) Snapshot() []byte {
	return append([]byte(nil), c.buf...)
}
