// Package blobuser is the consumer half of the aliasflow fixture: it
// feeds its own callers' buffers into blobdep's retaining entry points.
// Neither package looks wrong in isolation — the chain only closes with
// the cross-package facts exported while blobdep was analyzed.
package blobuser

import "blobdep"

// Frontend forwards request payloads into the cache.
type Frontend struct {
	cache *blobdep.Cache
	last  []byte
}

// IngestBroken forwards its caller's buffer straight into Put, which
// retains it: the frontend's caller now shares storage with the cache
// two hops away.
func (f *Frontend) IngestBroken(key string, payload []byte) {
	f.cache.Put(key, payload) // want `retains its argument`
}

// IngestTail forwards an interior slice; same chain.
func (f *Frontend) IngestTail(key string, payload []byte) {
	f.cache.Put(key, payload[8:]) // want `retains its argument`
}

// IngestAliased hides the parameter behind a local first.
func (f *Frontend) IngestAliased(key string, payload []byte) {
	body := payload
	f.cache.Put(key, body) // want `retains its argument`
}

// Ingest is the fix shape: copy before crossing the ownership boundary.
func (f *Frontend) Ingest(key string, payload []byte) {
	f.cache.Put(key, append([]byte(nil), payload...))
}

// IngestSanitized re-points the parameter at a fresh buffer first.
func (f *Frontend) IngestSanitized(key string, payload []byte) {
	payload = append([]byte(nil), payload...)
	f.cache.Put(key, payload)
}

// IngestCopying calls the copying entry point; no fact, no finding.
func (f *Frontend) IngestCopying(key string, payload []byte) {
	f.cache.PutCopy(key, payload)
}

// IngestLocal passes a locally owned buffer; the frontend is the sole
// owner, so retention is fine.
func (f *Frontend) IngestLocal(key string) {
	local := make([]byte, 32)
	f.cache.Put(key, local)
}

// CacheViewBroken parks a borrowed view in long-lived state.
func (f *Frontend) CacheViewBroken() {
	f.last = f.cache.Peek() // want `returns a view`
}

// CacheView copies the borrow before storing it.
func (f *Frontend) CacheView() {
	f.last = append([]byte(nil), f.cache.Peek()...)
}

// CacheSnapshot stores an owned copy; no fact, no finding.
func (f *Frontend) CacheSnapshot() {
	f.last = f.cache.Snapshot()
}
