// Package counter is the atomicmix golden fixture: it reproduces the PR-3
// metrics.Counter bug (atomic writes, plain reads) and the lock-by-value
// copy hazard, alongside the fixed shapes that must stay silent.
package counter

import (
	"sync"
	"sync/atomic"
)

// Counter is the historical bug verbatim: incremented through sync/atomic
// but read with a bare load, which races and can read torn state.
type Counter struct {
	v int64
}

// Inc updates atomically.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.v, 1)
}

// Value reads plainly — the PR-3 race.
func (c *Counter) Value() int64 {
	return c.v // want `atomically`
}

// FixedCounter is the shipped fix: the field type forces the atomic API.
type FixedCounter struct {
	v atomic.Int64
}

// Inc updates atomically.
func (c *FixedCounter) Inc() { c.v.Add(1) }

// Value loads atomically.
func (c *FixedCounter) Value() int64 { return c.v.Load() }

// HalfFixed moved to atomic.Int64 but still writes the value plainly on
// one path — the same family, post-migration.
type HalfFixed struct {
	v atomic.Int64
}

// Inc updates atomically.
func (h *HalfFixed) Inc() { h.v.Add(1) }

// Reset overwrites the atomic value wholesale.
func (h *HalfFixed) Reset() {
	h.v = atomic.Int64{} // want `atomically`
}

// Plain-only fields are fine: no atomic access anywhere.
type Plain struct{ n int64 }

// Inc is single-threaded by contract.
func (p *Plain) Inc() { p.n++ }

// Locked is a mutex-bearing struct.
type Locked struct {
	mu sync.Mutex
	n  int
}

// addLocked copies the lock away from the state it guards.
func addLocked(l Locked) int { // want `by value`
	return l.n
}

// addByPtr is the correct shape.
func addByPtr(l *Locked) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
