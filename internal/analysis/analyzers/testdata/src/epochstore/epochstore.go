// Package epochstore is the epochres golden fixture: it reproduces the
// PR-8 stale-placement bug — ranking owners over the live roster for a
// block whose chunks were placed under an earlier membership epoch —
// next to the epoch-resolved fixed shapes that must stay silent.
package epochstore

type NodeID string

// Owners mirrors core.Owners: members is the second argument.
func Owners(blockSeed uint64, members []NodeID, chunkIdx, r int) []NodeID {
	return members
}

// RankedMembers mirrors core.RankedMembers.
func RankedMembers(blockSeed uint64, members []NodeID, chunkIdx int) []NodeID {
	return members
}

// IsOwner mirrors core.IsOwner.
func IsOwner(blockSeed uint64, members []NodeID, chunkIdx, r int, node NodeID) bool {
	return len(members) > 0 && members[0] == node
}

// membershipEpoch mirrors the core epoch record: the roster frozen at
// the epoch's start height.
type membershipEpoch struct {
	fromHeight uint64
	members    []NodeID
}

// cluster mirrors the live cluster state: a mutable roster plus the
// epoch history.
type cluster struct {
	members []NodeID
	ids     []NodeID
	epochs  []membershipEpoch
}

func (c *cluster) epochAt(height uint64) *membershipEpoch {
	for i := len(c.epochs) - 1; i >= 0; i-- {
		if c.epochs[i].fromHeight <= height {
			return &c.epochs[i]
		}
	}
	return &c.epochs[0]
}

func (c *cluster) membersAt(height uint64) []NodeID {
	return c.epochAt(height).members
}

func (c *cluster) currentEpoch() *membershipEpoch {
	return &c.epochs[len(c.epochs)-1]
}

// Retrieve is the historical bug verbatim: the function resolves the
// block's parts at its write height (epoch-aware) but then ranks owners
// over the LIVE roster, so after churn it asks nodes that never held the
// chunks.
func (c *cluster) Retrieve(seed uint64, height uint64, idx int) []NodeID {
	_ = c.membersAt(height) // epoch-aware: parts lookup in the real code
	return Owners(seed, c.members, idx, 2) // want `raw roster`
}

// RetrieveIDs uses the secondary roster field; same bug.
func (c *cluster) RetrieveIDs(seed uint64, height uint64, idx int) []NodeID {
	ep := c.epochAt(height)
	_ = ep
	return RankedMembers(seed, c.ids, idx) // want `raw roster`
}

// RetrievePinned pins the live epoch onto a historical block: still the
// bug, just dressed as epoch API.
func (c *cluster) RetrievePinned(seed uint64, height uint64, idx int) bool {
	_ = c.epochAt(height)
	return IsOwner(seed, c.currentEpoch().members, idx, 2, "n1") // want `raw roster`
}

// RetrieveFixed is the PR-8 fix shape: members resolved at the block's
// write height flow into placement.
func (c *cluster) RetrieveFixed(seed uint64, height uint64, idx int) []NodeID {
	ep := c.epochAt(height)
	return Owners(seed, ep.members, idx, 2)
}

// RetrieveAt goes through the resolving helper; silent.
func (c *cluster) RetrieveAt(seed uint64, height uint64, idx int) []NodeID {
	return Owners(seed, c.membersAt(height), idx, 2)
}

// Place is the write path: no historical-epoch API in sight, so placing
// by the live roster is fine and the function stays out of scope.
func (c *cluster) Place(seed uint64, idx int) []NodeID {
	return Owners(seed, c.members, idx, 2)
}

// RetrieveAllowed documents an intentional current-roster ranking inside
// an epoch-aware function.
func (c *cluster) RetrieveAllowed(seed uint64, height uint64, idx int) []NodeID {
	_ = c.membersAt(height)
	//icilint:allow epochres(probe deliberately measures live-roster disagreement)
	return Owners(seed, c.members, idx, 2)
}

// helper passes a plain parameter through; parameters are never flagged
// (the caller already chose how to resolve them).
func helper(seed uint64, members []NodeID, height uint64, c *cluster) []NodeID {
	_ = c.membersAt(height)
	return Owners(seed, members, 0, 2)
}
