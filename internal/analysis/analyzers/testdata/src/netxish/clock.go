// Package netxish is the determinism scope fixture: a package outside the
// simulation-reachable set (like the real-TCP netx layer) may read the
// wall clock freely, so nothing here is flagged.
package netxish

import "time"

func stamp() int64 {
	return time.Now().UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
