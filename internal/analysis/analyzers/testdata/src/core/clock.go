// Package core is the determinism golden fixture: it reproduces the
// historical seeded-determinism break (wall-clock reads in
// simulation-reachable code made "identical" seeded runs diff) in a
// package whose name puts it in the simulation-reachable set.
package core

import (
	"math/rand" // want `global randomness`
	"time"
)

func produceTimestamp() int64 {
	return time.Now().UnixNano() // want `wall clock`
}

func jitter() int {
	return rand.Intn(10)
}

func backoff(start time.Time) time.Duration {
	return time.Since(start) // want `wall clock`
}

func nap() {
	time.Sleep(time.Millisecond) // want `wall clock`
}

func waitBoth(a, b chan int) int {
	select { // want `pseudo-randomly`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// A single-channel receive is deterministic under the simulator's event
// scheduler and stays legal.
func waitOne(a chan int) int {
	return <-a
}

// A select with one comm case and a default is a deterministic poll.
func poll(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// Annotated wall-clock use is the documented escape hatch: the allow can
// trail the offending line or sit on the line directly above it.
func fallbackClock() time.Time {
	return time.Now() //icilint:allow determinism(fixture: fallback wall clock for the real-TCP path)
}

func fallbackClockAbove() time.Time {
	//icilint:allow determinism(fixture: fallback wall clock for the real-TCP path)
	return time.Now()
}
