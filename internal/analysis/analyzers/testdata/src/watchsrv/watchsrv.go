// Package watchsrv is the goroleak golden fixture: it reproduces the
// PR-6 pipe-drain bug — Close returning while per-connection goroutines
// still run — next to the WaitGroup and done-channel join shapes that
// must stay silent.
package watchsrv

import "sync"

type conn interface {
	Read(p []byte) (int, error)
	Close() error
}

// server mirrors the netx/gateway accept-loop shape.
type server struct {
	wg   sync.WaitGroup
	done chan struct{}
	out  []byte
}

// serveBroken is the historical bug verbatim: the drain goroutine has no
// join, so Close returns mid-copy and the harness reads a truncated
// stream.
func (s *server) serveBroken(c conn) {
	go s.drainNoJoin(c) // want `without join evidence`
}

func (s *server) drainNoJoin(c conn) {
	buf := make([]byte, 64)
	for {
		n, err := c.Read(buf)
		s.out = append(s.out, buf[:n]...)
		if err != nil {
			return
		}
	}
}

// serve is the PR-6 fix shape: Add before go, Done inside, Wait in Close.
func (s *server) serve(c conn) {
	s.wg.Add(1)
	go s.drain(c)
}

func (s *server) drain(c conn) {
	defer s.wg.Done()
	buf := make([]byte, 64)
	for {
		n, err := c.Read(buf)
		s.out = append(s.out, buf[:n]...)
		if err != nil {
			return
		}
	}
}

// serveLit joins a func literal through the same WaitGroup protocol.
func (s *server) serveLit(c conn) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		buf := make([]byte, 64)
		c.Read(buf)
	}()
}

// Close waits for every drain before returning.
func (s *server) Close() {
	s.wg.Wait()
}

// runJoined uses the done-channel protocol: the body closes a local
// channel the launcher receives from.
func runJoined(c conn) []byte {
	done := make(chan struct{})
	var out []byte
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		n, _ := c.Read(buf)
		out = buf[:n]
	}()
	<-done
	return out
}

// runStored parks the done channel in a struct field for a later Wait;
// still join evidence.
func (s *server) runStored(c conn) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		c.Read(buf)
	}()
	s.done = done
}

// runFieldChan signals a field-held channel directly; teardown receives
// it elsewhere, silent.
func (s *server) runFieldChan(c conn) {
	go func() {
		defer close(s.done)
		buf := make([]byte, 64)
		c.Read(buf)
	}()
}

// fireAndForget launches a literal with neither protocol.
func fireAndForget(c conn) {
	go func() { // want `without join evidence`
		buf := make([]byte, 64)
		c.Read(buf)
	}()
}

// addWithoutDone has the Add but the body never calls Done — the exact
// half-refactored shape that deadlocks Wait or, with a matching Done
// missing, leaks; still flagged.
func (s *server) addWithoutDone(c conn) {
	s.wg.Add(1)
	go func() { // want `without join evidence`
		buf := make([]byte, 64)
		c.Read(buf)
	}()
}

// watcherAllowed documents an intentionally unjoined goroutine.
func watcherAllowed(c conn) {
	//icilint:allow goroleak(reader-fed watcher: the external pipe closing ends it)
	go func() {
		buf := make([]byte, 64)
		c.Read(buf)
	}()
}
