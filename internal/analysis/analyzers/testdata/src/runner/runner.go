// Package runner is the determinism golden fixture for the
// goroutine-completion-order rule: the parallel experiment runner must
// never derive result order from which worker finishes first. Appending
// to a slice captured from the enclosing scope does exactly that; the
// sanctioned pattern writes each result into an indexed slot so result
// order is the input order by construction.
package runner

import "sync"

type result struct {
	key string
	val int
}

// collectByCompletion is the hazard: workers append to a shared slice, so
// the results land in scheduler-decided completion order (and the mutex
// only makes the race disappear, not the ordering nondeterminism).
func collectByCompletion(keys []string) []result {
	var (
		mu      sync.Mutex
		results []result
		wg      sync.WaitGroup
	)
	for _, k := range keys {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			results = append(results, result{key: k}) // want `completion`
			mu.Unlock()
		}()
	}
	wg.Wait()
	return results
}

// collectIndexed is the sanctioned pattern: a pre-sized slice with one
// indexed write per cell. Result order is the input order no matter which
// goroutine finishes first, so the analyzer must stay silent.
func collectIndexed(keys []string) []result {
	results := make([]result, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		i, k := i, k
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = result{key: k}
		}()
	}
	wg.Wait()
	return results
}

// localAppend shows that a goroutine appending to its own local slice is
// fine: nothing outside the goroutine observes the order.
func localAppend(keys []string, sink chan<- int) {
	go func() {
		var local []result
		for _, k := range keys {
			local = append(local, result{key: k})
		}
		sink <- len(local)
	}()
}

// sequentialAppend shows the rule only fires inside go statements: the
// same append in straight-line code is ordinary deterministic iteration.
func sequentialAppend(keys []string) []result {
	var results []result
	for _, k := range keys {
		results = append(results, result{key: k})
	}
	return results
}
