// Package spanuser is the spanbalance golden fixture: the historical
// undercount family — spans started but never ended, or skipped by an
// early return — next to every shape the repo's protocol code actually
// uses (defer, all-paths End, the End-calling completion closure).
package spanuser

import (
	"errors"

	"trace"
)

var errFailed = errors.New("failed")

// leak starts a span and never ends it: the event is never recorded.
func leak(tr *trace.Tracer) {
	sp := tr.Start(0, "retrieve", "op", 1) // want `never ended`
	sp.SetErr(nil)
}

// earlyReturn ends the span on the happy path only.
func earlyReturn(tr *trace.Tracer, fail bool) error {
	sp := tr.Start(0, "retrieve", "op", 1)
	if fail {
		return errFailed // want `unended on this path`
	}
	sp.End()
	return nil
}

// discarded drops the span on the floor at birth.
func discarded(tr *trace.Tracer) {
	tr.Start(0, "retrieve", "op", 1) // want `discarded`
}

// deferred is the canonical fix.
func deferred(tr *trace.Tracer, fail bool) error {
	sp := tr.Start(0, "retrieve", "op", 1)
	defer sp.End()
	if fail {
		return errFailed
	}
	return nil
}

// allPaths ends explicitly on every path.
func allPaths(tr *trace.Tracer, fail bool) error {
	sp := tr.Start(0, "retrieve", "op", 1)
	if fail {
		sp.End()
		return errFailed
	}
	sp.End()
	return nil
}

// finishClosure is the repo's callback style: the completion closure that
// calls End is declared before any early return.
func finishClosure(tr *trace.Tracer, fail bool) error {
	sp := tr.Start(0, "retrieve", "op", 1)
	finish := func(err error) {
		sp.SetErr(err)
		sp.End()
	}
	if fail {
		finish(errFailed)
		return errFailed
	}
	finish(nil)
	return nil
}

// deferredClosure ends inside a deferred function literal.
func deferredClosure(tr *trace.Tracer, fail bool) error {
	sp := tr.Start(0, "retrieve", "op", 1)
	defer func() {
		sp.End()
	}()
	if fail {
		return errFailed
	}
	return nil
}

// holder hands the span's lifecycle to another owner; skipped by design.
type holder struct {
	span trace.Span
}

func fieldOwned(tr *trace.Tracer) *holder {
	return &holder{span: tr.Start(0, "retrieve", "op", 1)}
}
