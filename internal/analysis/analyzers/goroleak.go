package analyzers

import (
	"go/ast"
	"go/types"

	"icistrategy/internal/analysis"
)

// GoroLeak encodes the PR-6 pipe-drain bug family: a server/runner
// launches worker goroutines, and Close/Wait returns while some of them
// are still draining a pipe — the test harness then reads a truncated
// stream, or the process exits with writes in flight. The fix wired every
// launched goroutine to a join: wg.Add(1) before the `go`, defer
// wg.Done() inside, and wg.Wait() in Close (or an equivalent done
// channel).
//
// The analyzer checks every `go` statement in the lifecycle-bearing
// packages for JOIN EVIDENCE, either of:
//
//   - WaitGroup: a wg.Add(...) lexically before the go statement in the
//     launching function, and a Done() on some WaitGroup inside the
//     launched body (a func literal, or a same-package function/method's
//     declaration);
//   - done channel: the launched body closes or sends on a channel that
//     the launching function receives from, stores into a struct field,
//     or that is itself a struct field (someone receives it at teardown).
//
// Fire-and-forget goroutines that are genuinely unjoinable — a watcher
// fed by an external reader — are annotated:
// //icilint:allow goroleak(reason).
var GoroLeak = &analysis.Analyzer{
	Name: "goroleak",
	Doc: `flag goroutines launched without join evidence (WaitGroup or done channel)

Historical bug (PR 6): Server.Close returned while the per-connection
pipe-drain goroutines were still copying; the contest harness read a
truncated result stream and failed nondeterministically under load. Join
every goroutine you launch — wg.Add(1) before go, defer wg.Done() inside,
wg.Wait() in Close — or hand it a done channel someone receives.`,
	Run: runGoroLeak,
}

// goroleakPkgs scopes the analyzer to the packages whose types own
// goroutine lifecycles (plus the fixture).
var goroleakPkgs = map[string]bool{
	"netx":     true,
	"gateway":  true,
	"contest":  true,
	"runner":   true,
	"watchsrv": true,
}

func runGoroLeak(pass *analysis.Pass) error {
	if !goroleakPkgs[lastPathElem(pass.Pkg.Path())] {
		return nil
	}
	// Map same-package functions to their declarations so `go s.loop()`
	// can be followed into loop's body.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoroLeak(pass, fd, decls)
		}
	}
	return nil
}

func checkGoroLeak(pass *analysis.Pass, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := launchedBody(pass, gs, decls)
		if body == nil {
			return true // indirect launch (go fn() via variable): unjudgeable
		}
		if waitGroupJoin(pass, fd, gs, body) || doneChannelJoin(pass, fd, gs, body) {
			return true
		}
		pass.Reportf(gs.Pos(),
			"goroutine launched without join evidence; Close/Wait can return while it still runs — wg.Add(1) before go with defer wg.Done() inside (and wg.Wait() at teardown), or hand it a done channel, or annotate icilint:allow goroleak(reason)")
		return true
	})
}

// launchedBody resolves the body the go statement runs: a func literal's
// own body, or the declaration of a same-package function/method.
func launchedBody(pass *analysis.Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	default:
		fn := calleeFunc(pass.TypesInfo, gs.Call)
		if fn == nil {
			return nil
		}
		if fd, ok := decls[fn]; ok {
			return fd.Body
		}
	}
	return nil
}

// isWaitGroup reports whether e's type (through a pointer) is
// sync.WaitGroup.
func isWaitGroup(pass *analysis.Pass, e ast.Expr) bool {
	n := namedOrNil(pass.TypesInfo.TypeOf(e))
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

// waitGroupJoin checks the WaitGroup protocol: an Add before the go
// statement in the launching function, and a Done inside the launched
// body.
func waitGroupJoin(pass *analysis.Pass, fd *ast.FuncDecl, gs *ast.GoStmt, body *ast.BlockStmt) bool {
	addBefore := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= gs.Pos() {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Add" && isWaitGroup(pass, sel.X) {
				addBefore = true
			}
		}
		return !addBefore
	})
	if !addBefore {
		return false
	}
	doneInside := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Done" && isWaitGroup(pass, sel.X) {
				doneInside = true
			}
		}
		return !doneInside
	})
	return doneInside
}

// doneChannelJoin checks the done-channel protocol: the launched body
// closes or sends on a channel, and the launching function receives from
// that channel, stores it into a struct field, or the channel is itself
// a field (teardown receives it elsewhere).
func doneChannelJoin(pass *analysis.Pass, fd *ast.FuncDecl, gs *ast.GoStmt, body *ast.BlockStmt) bool {
	// Channels the body signals on.
	signaled := map[types.Object]bool{}
	signaledField := false
	ast.Inspect(body, func(n ast.Node) bool {
		var ch ast.Expr
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				ch = n.Args[0]
			}
		case *ast.SendStmt:
			ch = n.Chan
		}
		if ch == nil {
			return true
		}
		switch ch := ast.Unparen(ch).(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.ObjectOf(ch); obj != nil {
				signaled[obj] = true
			}
		case *ast.SelectorExpr:
			// Signaling a struct field: the field outlives the launch, so
			// whoever tears the struct down can receive it.
			if fobj, ok := pass.TypesInfo.ObjectOf(ch.Sel).(*types.Var); ok && fobj.IsField() {
				signaledField = true
			}
		}
		return true
	})
	if signaledField {
		return true
	}
	if len(signaled) == 0 {
		return false
	}
	// The launching function must anchor one of those channels: receive
	// from it, or store it into a field.
	anchored := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if anchored {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if obj := identObj(pass, n.X); obj != nil && signaled[obj] {
					anchored = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if _, ok := ast.Unparen(lhs).(*ast.SelectorExpr); !ok {
					continue
				}
				if obj := identObj(pass, n.Rhs[i]); obj != nil && signaled[obj] {
					anchored = true
				}
			}
		}
		return !anchored
	})
	return anchored
}

// identObj resolves a plain identifier expression to its object.
func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}
