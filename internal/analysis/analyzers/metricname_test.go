package analyzers_test

import (
	"testing"

	"icistrategy/internal/analysis/analysistest"
	"icistrategy/internal/analysis/analyzers"
)

// The metricuser fixture pins the metric-name contract: literal (or
// const) names in the ici/consensus/simnet/netx namespaces; off-namespace
// and runtime-assembled names are findings.
func TestMetricName(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.MetricName, "metricuser")
}
