package analyzers

import (
	"go/ast"
	"go/types"
	"sort"

	"icistrategy/internal/analysis"
)

// AliasFlow is the interprocedural half of the chunkalias family, built
// on the cross-package facts layer. Chunkalias flags a function that
// RETAINS a caller-shared buffer at its definition; what it cannot see
// is the caller one package over that feeds its own caller's buffer into
// such a function — the aliasing chain then spans two hops and neither
// package looks wrong in isolation. That is exactly how the PR-2 bug
// came back in the gateway: gateway code passed its request buffer to a
// core put path that (by documented contract, allow-annotated) retains
// its argument.
//
// Two facts, exported while the defining package is analyzed and
// imported while its dependents are:
//
//   - RetainsFact{Params}: the function stores parameter i's buffer
//     without copying (chunkalias store-side detection, re-run here
//     regardless of allow annotations — an annotated retention is still
//     a retention, the contract its callers must respect);
//   - ReturnsAliasFact: the method returns a view of its receiver's
//     internal buffer.
//
// At each call site the analyzer flags (a) passing a buffer that aliases
// one of the CALLING function's own parameters to a retaining callee —
// the caller's caller loses ownership without any local evidence — with
// a mechanical copy fix, and (b) storing a borrowed ReturnsAlias result
// into longer-lived state. Intentional handoffs are annotated:
// //icilint:allow aliasflow(reason).
var AliasFlow = &analysis.Analyzer{
	Name: "aliasflow",
	Doc: `flag cross-package aliasing chains: caller-shared buffers fed to retaining callees (facts-powered)

Historical bug (PR 2, recurring cross-package): a put path that retains
its []byte argument is safe only while every transitive caller owns the
buffer it passes; a caller that forwards ITS caller's buffer re-opens the
corruption one package away from the original fix. The facts layer
carries "retains its argument" across package boundaries so the forward
site is flagged where it happens.`,
	Run: runAliasFlow,
}

// RetainsFact marks a function that stores one or more of its
// buffer-carrying parameters without copying. Params holds 0-based
// indices into the function's parameter list.
type RetainsFact struct {
	Params []int `json:"params"`
}

// AFact marks RetainsFact as a fact type.
func (*RetainsFact) AFact() {}

// ReturnsAliasFact marks a method that returns a view of its receiver's
// internal buffer.
type ReturnsAliasFact struct{}

// AFact marks ReturnsAliasFact as a fact type.
func (*ReturnsAliasFact) AFact() {}

func runAliasFlow(pass *analysis.Pass) error {
	// Sweep 1: export facts for every function this package declares, so
	// same-package and downstream call sites alike can import them.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exportAliasFacts(pass, fd)
		}
	}
	// Sweep 2: check call sites against the accumulated facts.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAliasFlow(pass, fd)
		}
	}
	return nil
}

// exportAliasFacts re-runs the chunkalias detections on fd and records
// the results as facts about the function object.
func exportAliasFacts(pass *analysis.Pass, fd *ast.FuncDecl) {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	paramIndex := paramIndexOf(pass, fd)
	retained := map[int]bool{}
	storeSide(pass, fd, func(at ast.Expr, src *aliasParam) {
		if i, ok := paramIndex[src.obj]; ok {
			retained[i] = true
		}
	})
	if len(retained) > 0 {
		fact := &RetainsFact{}
		for i := range retained {
			fact.Params = append(fact.Params, i)
		}
		sort.Ints(fact.Params)
		pass.ExportObjectFact(fn, fact)
	}
	returns := false
	readSide(pass, fd, func(res ast.Expr, sel *ast.SelectorExpr) { returns = true })
	if returns {
		pass.ExportObjectFact(fn, &ReturnsAliasFact{})
	}
}

// paramIndexOf maps each parameter object of fd to its 0-based index.
func paramIndexOf(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Var]int {
	out := map[*types.Var]int{}
	if fd.Type.Params == nil {
		return out
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			i++ // unnamed parameter still occupies an index
			continue
		}
		for _, name := range field.Names {
			if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				out[obj] = i
			}
			i++
		}
	}
	return out
}

func checkAliasFlow(pass *analysis.Pass, fd *ast.FuncDecl) {
	params := collectAliasParams(pass, fd)
	aliasOf := map[types.Object]*aliasParam{}
	thisFn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Track local aliases of the caller-shared parameters (same
			// bookkeeping as chunkalias's store side), and catch borrowed
			// ReturnsAlias results stored into fields.
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					rhs := n.Rhs[i]
					if src, _ := findAliasSource(pass.TypesInfo, rhs, params, aliasOf); src != nil {
						if obj := identObjOf(pass, lhs); obj != nil {
							aliasOf[obj] = src
						}
						continue
					}
					if obj := identObjOf(pass, lhs); obj != nil {
						delete(aliasOf, obj)
						// data = append([]byte(nil), data...) sanitizes the
						// parameter for everything downstream.
						if p := paramByObj(params, obj); p != nil && callRooted(rhs) {
							p.sanitized[nil] = true
						}
					}
					if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel {
						if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
							if fn := calleeFunc(pass.TypesInfo, call); fn != nil && fn != thisFn {
								if pass.ImportObjectFact(fn, &ReturnsAliasFact{}) {
									pass.Reportf(rhs.Pos(),
										"storing buffer borrowed from %s.%s, which returns a view of its receiver's internal state; copy before storing or annotate icilint:allow aliasflow(reason)",
										pkgNameOf(fn), fn.Name())
								}
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass.TypesInfo, n)
			if fn == nil || fn == thisFn {
				return true
			}
			var fact RetainsFact
			if !pass.ImportObjectFact(fn, &fact) {
				return true
			}
			for _, pi := range fact.Params {
				if pi >= len(n.Args) {
					continue
				}
				arg := n.Args[pi]
				if src, direct := findAliasSource(pass.TypesInfo, arg, params, aliasOf); src != nil && direct {
					const format = "passing caller-shared buffer of parameter %q to %s.%s, which retains its argument; the aliasing chain now spans two owners — copy first or annotate icilint:allow aliasflow(reason)"
					if fix, ok := copyFix(pass, arg); ok {
						pass.ReportFix(arg.Pos(), fix, format, src.obj.Name(), pkgNameOf(fn), fn.Name())
						continue
					}
					pass.Reportf(arg.Pos(), format, src.obj.Name(), pkgNameOf(fn), fn.Name())
				}
			}
		}
		return true
	})
}

func identObjOf(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

func pkgNameOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name()
}
