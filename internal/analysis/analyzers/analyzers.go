// Package analyzers holds the repo-specific invariant checkers cmd/icilint
// runs. Each analyzer encodes one bug family this repo actually shipped and
// carries golden fixtures (testdata/src) reproducing the historical bug:
//
//   - determinism: wall clocks / global math/rand / multi-channel selects in
//     simulation-reachable packages (the seeded-run byte-identity guarantee)
//   - chunkalias:  storing or returning caller-shared []byte buffers
//     without a copy (the PR-2 storage.Store copy-on-put bug)
//   - atomicmix:   fields accessed both atomically and plainly, and lock-
//     bearing values passed by value (the PR-3 Counter bug)
//   - metricname:  metrics.Registry names must be literals matching the
//     repo's namespace, so Snapshot/CSV output stays stable and greppable
//   - spanbalance: every trace span started must be ended on all paths, so
//     the Ring recorder's per-phase summaries never undercount
//
// The v2 suite adds five dataflow-powered analyzers (built on the
// analysis/cfg control-flow graphs and the cross-package facts layer),
// each encoding a PR 5–8 bug family:
//
//   - poolreturn: pooled event structs released on every path and never
//     touched after release (the PR-5 event-engine free-list bugs)
//   - goroleak:   goroutines joined via WaitGroup or done channel before
//     Close/Wait returns (the PR-6 pipe-drain truncation)
//   - deadline:   conn Read/Write dominated by a SetDeadline arm on all
//     paths (the PR-7 roundTrip hang)
//   - epochres:   placement for existing blocks resolved at the block's
//     write epoch, not the live roster (the PR-8 stale-placement bug)
//   - aliasflow:  cross-package aliasing chains via RetainsFact /
//     ReturnsAliasFact (the PR-2 family recurring across package
//     boundaries)
package analyzers

import (
	"go/ast"
	"go/types"

	"icistrategy/internal/analysis"
)

// All returns the full icilint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		ChunkAlias,
		AtomicMix,
		MetricName,
		SpanBalance,
		PoolReturn,
		GoroLeak,
		Deadline,
		EpochRes,
		AliasFlow,
	}
}

// --- shared type/AST helpers -------------------------------------------------

// calleeFunc resolves the called function or method of call, or nil for
// indirect calls, type conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcFromPkg reports whether fn is the named function/method of the given
// package path (matched on full path or, for fixture stubs, the path's last
// element — fixture packages sit at top-level paths like "trace").
func funcFromPkg(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return pkgPathMatches(fn.Pkg().Path(), pkgPath)
}

// pkgPathMatches compares an import path against a target: exact match, or
// the last path element equals the target (so "icistrategy/internal/trace"
// and the fixture path "trace" both match target "trace").
func pkgPathMatches(path, target string) bool {
	if path == target {
		return true
	}
	return lastPathElem(path) == target
}

func lastPathElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// isByteSlice reports whether t's underlying type is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// namedOrNil unwraps t (through pointers and aliases) to its *types.Named,
// or nil.
func namedOrNil(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n
	}
	return nil
}

// recvNamed returns the named type of a method's receiver (through a
// pointer), or nil for plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOrNil(sig.Recv().Type())
}
