package analyzers

import (
	"go/ast"
	"go/constant"
	"regexp"

	"icistrategy/internal/analysis"
)

// MetricName keeps the metrics namespace closed and greppable: every
// counter/histogram registered on a metrics.Registry must use a
// compile-time-constant name in one of the repo's four namespaces, so the
// Snapshot/JSON/CSV column set is stable across runs and a dashboard or CI
// grep never misses a metric because its name was assembled at runtime.
var MetricName = &analysis.Analyzer{
	Name: "metricname",
	Doc: `require literal, namespaced metrics.Registry names (^(ici|consensus|simnet|netx)\.[a-z_.]+$)

The experiment tables, the -metrics JSON dump, and the CI trace-smoke job
all key on exact metric names ("ici.distribute.proposals"). A dynamically
built or off-namespace name silently adds an un-greppable column and
breaks snapshot diffing. Names must be string literals (or consts) in the
ici/consensus/simnet/netx namespaces, lower-case dotted words.`,
	Run: runMetricName,
}

var metricNameRE = regexp.MustCompile(`^(ici|consensus|simnet|netx)\.[a-z_.]+$`)

func runMetricName(pass *analysis.Pass) error {
	// The metrics package itself defines the Registry methods and its tests
	// exercise throwaway names; everything else is held to the namespace.
	if pkgPathMatches(pass.Pkg.Path(), "metrics") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || (fn.Name() != "Counter" && fn.Name() != "Histogram") {
				return true
			}
			recv := recvNamed(fn)
			if recv == nil || recv.Obj().Name() != "Registry" || fn.Pkg() == nil || !pkgPathMatches(fn.Pkg().Path(), "metrics") {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric name passed to Registry.%s must be a string literal or constant so Snapshot/CSV columns stay stable", fn.Name())
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRE.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"metric name %q does not match %s; pick a namespaced dotted name like \"ici.retrieve.rounds\"", name, metricNameRE)
			}
			return true
		})
	}
	return nil
}
