package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"

	"icistrategy/internal/analysis"
)

// AtomicMix encodes the PR-3 metrics.Counter bug family: a counter field
// incremented through sync/atomic on one path and read (or written) with a
// plain load on another, which raced under -race and silently lost updates
// before that. It also flags lock-bearing values passed by value — copying
// a struct that owns a sync.Mutex (or an atomic.* value) forks the lock
// from the state it guards.
var AtomicMix = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: `flag struct fields accessed both atomically and plainly, and lock-bearing values passed by value

Historical bug (PR 3): metrics.Counter kept a plain int64 bumped with
atomic.AddInt64 but read with a bare load; the racy read shipped, and the
fix moved the field to atomic.Int64 so every access goes through the
atomic API. This analyzer reports any field that has both an atomic access
(sync/atomic call on its address, or an atomic.* method call) and a plain
read/write in the same package, and any receiver/parameter/result passing
a Mutex/WaitGroup/Once/Cond/atomic.* by value.`,
	Run: runAtomicMix,
}

// fieldAccess accumulates how one struct field is touched in the package.
type fieldAccess struct {
	atomicPos []ast.Node // sites of atomic access
	plainPos  []ast.Node // sites of plain access
}

func runAtomicMix(pass *analysis.Pass) error {
	acc := map[*types.Var]*fieldAccess{}
	get := func(f *types.Var) *fieldAccess {
		fa := acc[f]
		if fa == nil {
			fa = &fieldAccess{}
			acc[f] = fa
		}
		return fa
	}

	for _, f := range pass.Files {
		var walk func(n ast.Node, parents []ast.Node) // manual walk keeps the parent path
		visit := func(n ast.Node, parents []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return
			}
			fobj := selection.Obj().(*types.Var)
			switch classifyFieldUse(pass.TypesInfo, sel, parents) {
			case useAtomic:
				get(fobj).atomicPos = append(get(fobj).atomicPos, sel)
			case usePlain:
				get(fobj).plainPos = append(get(fobj).plainPos, sel)
			}
		}
		walk = func(n ast.Node, parents []ast.Node) {
			visit(n, parents)
			parents = append(parents, n)
			ast.Inspect(n, func(c ast.Node) bool {
				if c == nil || c == n {
					return c == n
				}
				walk(c, parents)
				return false
			})
		}
		walk(f, nil)

		// Lock-bearing values passed by value.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkByValueLocks(pass, fd)
		}
	}

	for fobj, fa := range acc {
		if len(fa.atomicPos) == 0 || len(fa.plainPos) == 0 {
			continue
		}
		atomicAt := pass.Fset.Position(fa.atomicPos[0].Pos())
		for _, p := range fa.plainPos {
			pass.Reportf(p.Pos(),
				"field %s is accessed atomically at %s but plainly here; every access must go through the atomic API (racy Counter, PR-3 family)",
				fobj.Name(), atomicAt)
		}
	}
	return nil
}

type fieldUse int

const (
	useNeutral fieldUse = iota
	useAtomic
	usePlain
)

// classifyFieldUse decides whether the selector `x.f` at the end of
// parents is an atomic access, a plain read/write, or neutral (e.g. its
// address escaping to a non-atomic callee, which is tracked by neither
// side).
func classifyFieldUse(info *types.Info, sel *ast.SelectorExpr, parents []ast.Node) fieldUse {
	fobj := info.Selections[sel].Obj().(*types.Var)
	atomicTyped := isAtomicType(fobj.Type())

	// Walk outward: parents[len-1] is the immediate parent.
	parent := func(i int) ast.Node {
		idx := len(parents) - 1 - i
		if idx < 0 {
			return nil
		}
		return parents[idx]
	}
	p0 := parent(0)

	// A selector that is merely the X part of a bigger selector (a.b in
	// a.b.c) is traversal, not access — except an atomic-typed field whose
	// method is being called, which is the atomic API in action.
	if outer, ok := p0.(*ast.SelectorExpr); ok && outer.X == sel {
		if atomicTyped {
			if call, ok2 := parent(1).(*ast.CallExpr); ok2 && call.Fun == outer {
				return useAtomic
			}
		}
		return useNeutral
	}

	if atomicTyped {
		// Any direct assignment or copy of the atomic value is plain.
		switch pn := p0.(type) {
		case *ast.AssignStmt:
			return usePlain // copying or overwriting the atomic value
		case *ast.UnaryExpr:
			if pn.Op.String() == "&" {
				return useNeutral // &c.v passed along; ownership unclear
			}
			return usePlain
		case *ast.CallExpr, *ast.KeyValueExpr, *ast.CompositeLit, *ast.ReturnStmt:
			return usePlain // the value is copied out
		}
		return useNeutral
	}

	// Plain-typed field: atomic when &x.f feeds a sync/atomic call.
	if un, ok := p0.(*ast.UnaryExpr); ok && un.Op.String() == "&" && un.X == sel {
		if call, ok := parent(1).(*ast.CallExpr); ok {
			if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				return useAtomic
			}
		}
		return useNeutral // address escapes; can't tell
	}
	return usePlain
}

// isAtomicType reports whether t is one of sync/atomic's value types.
func isAtomicType(t types.Type) bool {
	n := namedOrNil(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// --- locks by value ----------------------------------------------------------

func checkByValueLocks(pass *analysis.Pass, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if path := lockPath(t, nil); path != nil {
				pass.Reportf(field.Pos(),
					"%s passes %s by value; copying it forks the %s from the state it guards — use a pointer",
					what, t.String(), pathString(path))
			}
		}
	}
	check(fd.Recv, "method receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

// lockPath returns the field path to a copy-hostile sync primitive inside
// t (passed by value), or nil. Pointers stop the search.
func lockPath(t types.Type, seen []types.Type) []string {
	for _, s := range seen {
		if types.Identical(s, t) {
			return nil
		}
	}
	seen = append(seen, t)
	// A pointer to a lock-bearing type is the correct way to pass one.
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return nil
	}
	if n, ok := types.Unalias(t).(*types.Named); ok && n.Obj().Pkg() != nil {
		switch n.Obj().Pkg().Path() {
		case "sync":
			switch n.Obj().Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return []string{n.Obj().Name()}
			}
		case "sync/atomic":
			return []string{n.Obj().Name()}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if sub := lockPath(f.Type(), seen); sub != nil {
				return append([]string{f.Name()}, sub...)
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen)
	}
	return nil
}

func pathString(path []string) string {
	if len(path) == 1 {
		return path[0]
	}
	return fmt.Sprintf("%s (via %v)", path[len(path)-1], path[:len(path)-1])
}
