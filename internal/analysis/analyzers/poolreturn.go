package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"icistrategy/internal/analysis"
	"icistrategy/internal/analysis/cfg"
)

// PoolReturn encodes the PR-5 pooled-event bug family: the simulator's
// event engine recycles event structs through a free list, and the two
// historical failure shapes were (a) an early return that skipped the
// free call, bleeding the pool dry under load, and (b) touching an event
// after handing it back, racing with its next incarnation. Both are
// dataflow properties over the CFG:
//
//   - leak (must-release): every path from an acquire to a return must
//     pass a release — flagged at the offending return statement;
//   - use-after-release (may): a read of the variable after a release on
//     ANY path into it is flagged at the use.
//
// The analyzer self-scopes: only functions containing BOTH an acquire
// (sync.Pool.Get, a Get/alloc call on a *Pool*/*Slab*/free-list-shaped
// type, allocEvent) and a release (Put, free*, freeEvent, Release) are
// checked, so ordinary code never pays annotation cost. Ownership
// transfers opt a variable out of the leak check: returning it, storing
// it into a field/map/channel, or passing it to a non-release call all
// make someone else responsible for the Put. A `defer pool.Put(ev)`
// satisfies the leak check without poisoning later uses.
var PoolReturn = &analysis.Analyzer{
	Name: "poolreturn",
	Doc: `flag pooled objects not released on every path, and uses after release

Historical bug (PR 5): the event engine's scheduling path returned early
on a cancelled timer without freeEvent, draining the free list until every
schedule allocated fresh; and a later refactor fired an event callback
after freeEvent had recycled the struct, corrupting the next event in
line. Pair every pool Get with a Put on all exit paths and never touch a
released object.`,
	Run: runPoolReturn,
}

// acquireNames are callee names that hand out a pooled object.
var acquireNames = map[string]bool{
	"Get":        true,
	"allocEvent": true,
	"Alloc":      true,
}

// releaseNames are callee names that hand one back.
var releaseNames = map[string]bool{
	"Put":       true,
	"freeEvent": true,
	"Free":      true,
	"Release":   true,
}

// pooledReceiver reports whether a method call's receiver looks like a
// pool: sync.Pool, or a named type whose name mentions pool/slab/freelist.
func pooledReceiver(pass *analysis.Pass, recv ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(recv)
	if t == nil {
		return false
	}
	n := namedOrNil(t)
	if n == nil {
		return false
	}
	name := strings.ToLower(n.Obj().Name())
	if n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool" {
		return true
	}
	return strings.Contains(name, "pool") || strings.Contains(name, "slab") || strings.Contains(name, "freelist")
}

// acquireTarget returns the variable an acquire call's result lands in,
// for statements of the shapes `ev := p.Get()` / `ev = p.Get().(*event)`.
func acquireTarget(pass *analysis.Pass, n ast.Node) types.Object {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	rhs := ast.Unparen(as.Rhs[0])
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ast.Unparen(ta.X)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isAcquireCall(pass, call) {
		return nil
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

func isAcquireCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return acquireNames[fun.Sel.Name] && pooledReceiver(pass, fun.X)
	case *ast.Ident:
		return fun.Name == "allocEvent"
	}
	return false
}

// releaseArg returns the released variable if call is a release of a
// plain identifier (p.Put(ev), freeEvent(ev)).
func releaseArg(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	isRelease := false
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		isRelease = releaseNames[fun.Sel.Name] && pooledReceiver(pass, fun.X)
	case *ast.Ident:
		isRelease = fun.Name == "freeEvent"
	}
	if !isRelease || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

func runPoolReturn(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolReturn(pass, fd)
		}
	}
	return nil
}

// poolEvent is one lexical occurrence relevant to one tracked variable.
type poolEvent struct {
	kind byte // 'g' acquire, 'r' release, 'd' deferred release, 'e' escape, 'u' use
	obj  types.Object
	pos  token.Pos
}

func checkPoolReturn(pass *analysis.Pass, fd *ast.FuncDecl) {
	// First sweep: find variables that are both acquired and released
	// somewhere in this function — the self-scoping gate.
	acquired := map[types.Object]bool{}
	released := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if obj := acquireTarget(pass, n); obj != nil {
			acquired[obj] = true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := releaseArg(pass, call); obj != nil {
				released[obj] = true
			}
		}
		return true
	})
	tracked := map[types.Object]int{}
	var objs []types.Object
	for obj := range acquired {
		if released[obj] && len(objs) < 32 {
			tracked[obj] = len(objs)
			objs = append(objs, obj)
		}
	}
	if len(objs) == 0 {
		return
	}

	g := cfg.New(fd.Body)
	blockEvents := make([][]poolEvent, len(g.Blocks))
	escaped := map[types.Object]bool{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			collectPoolEvents(pass, n, tracked, &blockEvents[b.Index])
		}
		for _, ev := range blockEvents[b.Index] {
			if ev.kind == 'e' {
				escaped[ev.obj] = true
			}
		}
	}

	// Two bits per variable: H (holds a live pooled object) and R
	// (released). Both may-analyses: a leak on any path is a leak; a
	// release on any path poisons later uses.
	holdBit := func(i int) int { return 2 * i }
	relBit := func(i int) int { return 2*i + 1 }
	transfer := func(b *cfg.Block, in cfg.Bits) cfg.Bits {
		bits := in
		for _, ev := range blockEvents[b.Index] {
			i := tracked[ev.obj]
			switch ev.kind {
			case 'g':
				bits = bits.With(holdBit(i)).Without(relBit(i))
			case 'r':
				bits = bits.Without(holdBit(i)).With(relBit(i))
			case 'd', 'e':
				bits = bits.Without(holdBit(i))
			}
		}
		return bits
	}
	in := g.Solve(transfer, cfg.Union, 0)

	// Report sweep: replay each block from its solved entry state.
	for _, b := range g.Blocks {
		bits := in[b.Index]
		for _, ev := range blockEvents[b.Index] {
			i := tracked[ev.obj]
			switch ev.kind {
			case 'g':
				bits = bits.With(holdBit(i)).Without(relBit(i))
			case 'r':
				bits = bits.Without(holdBit(i)).With(relBit(i))
			case 'd', 'e':
				bits = bits.Without(holdBit(i))
			case 'u':
				if bits.Has(relBit(i)) {
					pass.Reportf(ev.pos,
						"use of %q after it was returned to the pool; the next Get may already own it — move the release after the last use or annotate icilint:allow poolreturn(reason)", objName(ev.obj))
				}
			}
		}
		if b.Return && !b.Panics {
			for i, obj := range objs {
				if escaped[obj] {
					continue
				}
				if bits.Has(holdBit(i)) {
					pass.Reportf(returnPos(b, fd),
						"return path leaks pooled %q (no release on this path); the free list drains under load — release before returning or annotate icilint:allow poolreturn(reason)", objName(obj))
				}
			}
		}
	}
}

// collectPoolEvents records one statement's acquire/release/escape/use
// events for tracked variables, in lexical order. Func literals are
// opaque (a closure use is an escape, handled below).
func collectPoolEvents(pass *analysis.Pass, n ast.Node, tracked map[types.Object]int, out *[]poolEvent) {
	if obj := acquireTarget(pass, n); obj != nil {
		if _, ok := tracked[obj]; ok {
			*out = append(*out, poolEvent{kind: 'g', obj: obj, pos: n.Pos()})
			return
		}
	}
	if ds, ok := n.(*ast.DeferStmt); ok {
		if obj := releaseArg(pass, ds.Call); obj != nil {
			if _, ok := tracked[obj]; ok {
				*out = append(*out, poolEvent{kind: 'd', obj: obj, pos: ds.Pos()})
				return
			}
		}
	}
	releaseCalls := map[*ast.CallExpr]types.Object{}
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if obj := releaseArg(pass, call); obj != nil {
				if _, tracked := tracked[obj]; tracked {
					releaseCalls[call] = obj
				}
			}
		}
		return true
	})
	var walk func(c ast.Node, inRelease bool)
	walk = func(c ast.Node, inRelease bool) {
		ast.Inspect(c, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				// A closure capturing the variable transfers ownership out
				// of this function's linear flow.
				ast.Inspect(m.Body, func(inner ast.Node) bool {
					if id, ok := inner.(*ast.Ident); ok {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
							if _, ok := tracked[obj]; ok {
								*out = append(*out, poolEvent{kind: 'e', obj: obj, pos: id.Pos()})
							}
						}
					}
					return true
				})
				return false
			case *ast.CallExpr:
				if obj, ok := releaseCalls[m]; ok {
					if !inRelease {
						*out = append(*out, poolEvent{kind: 'r', obj: obj, pos: m.Pos()})
					}
					// The argument of the release itself is not a "use".
					for _, arg := range m.Args {
						walk(arg, true)
					}
					walk(m.Fun, true)
					return false
				}
			case *ast.Ident:
				obj := pass.TypesInfo.ObjectOf(m)
				if obj == nil {
					return true
				}
				if _, ok := tracked[obj]; !ok {
					return true
				}
				if !inRelease {
					*out = append(*out, poolEvent{kind: 'u', obj: obj, pos: m.Pos()})
				}
				if escapesHere(pass, n, m) {
					*out = append(*out, poolEvent{kind: 'e', obj: obj, pos: m.Pos()})
				}
			}
			return true
		})
	}
	walk(n, false)
}

// escapesHere reports whether the identifier use transfers ownership
// out of the function's hands: returned, stored through a selector/index
// /deref, sent on a channel, appended into a longer-lived slice, or
// passed to a call that is not a release (the callee may retain it).
func escapesHere(pass *analysis.Pass, stmt ast.Node, use *ast.Ident) bool {
	escape := false
	ast.Inspect(stmt, func(c ast.Node) bool {
		if escape {
			return false
		}
		switch c := c.(type) {
		case *ast.ReturnStmt:
			for _, r := range c.Results {
				if containsIdent(r, use) {
					escape = true
				}
			}
		case *ast.SendStmt:
			if containsIdent(c.Value, use) {
				escape = true
			}
		case *ast.AssignStmt:
			for i, lhs := range c.Lhs {
				if i < len(c.Rhs) && containsIdent(c.Rhs[i], use) {
					switch ast.Unparen(lhs).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						escape = true
					}
				}
			}
		case *ast.CallExpr:
			if releaseArg(pass, c) != nil || isAcquireCall(pass, c) {
				return true
			}
			for _, arg := range c.Args {
				if containsIdent(arg, use) {
					escape = true
				}
			}
		}
		return !escape
	})
	return escape
}

func containsIdent(e ast.Expr, target *ast.Ident) bool {
	found := false
	ast.Inspect(e, func(c ast.Node) bool {
		if c == ast.Node(target) {
			found = true
		}
		return !found
	})
	return found
}

func objName(obj types.Object) string { return obj.Name() }

// returnPos anchors a leak report on the block's return statement, or
// the function's closing brace for fall-off-the-end returns.
func returnPos(b *cfg.Block, fd *ast.FuncDecl) token.Pos {
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		if r, ok := b.Nodes[i].(*ast.ReturnStmt); ok {
			return r.Pos()
		}
	}
	if len(b.Nodes) > 0 {
		return b.Nodes[len(b.Nodes)-1].Pos()
	}
	return fd.Body.Rbrace
}
