package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"

	"icistrategy/internal/analysis"
)

// Determinism polices the repo's core reproducibility guarantee: a seeded
// simulation run must be byte-identical across executions (the trace tests
// pin "seeded runs produce byte-identical span forests"). Wall clocks,
// process-global randomness, and scheduler-dependent channel selection all
// break that, so in simulation-reachable packages time must come from the
// injected virtual clock (simnet.Network.Now / trace.Tracer.SetClock) and
// randomness from blockcrypto/rng seeded by the run.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: `forbid wall clocks, global math/rand, and multi-channel selects in simulation-reachable packages

The simulator's determinism contract (seeded runs are byte-identical,
including span forests and metric snapshots) dies the moment simulation
code reads time.Now, the global math/rand source, or lets the runtime
scheduler pick between ready channels. Historical bug: wall-clock span
timestamps made "identical" seeded runs diff in CI. Use the injected
virtual clock and blockcrypto/rng; genuinely wall-clock code (throughput
measurement, the disabled-tracer fallback) carries
//icilint:allow determinism(reason).

The parallel experiment runner adds a fourth hazard: deriving result
order from goroutine completion order. A worker that appends to a slice
captured from the enclosing scope records results in whatever order the
scheduler finished them; the sanctioned pattern is an indexed write into
a pre-sized slice (results[i] = ...), which makes result order the input
order by construction. The analyzer flags captured-slice appends inside
go statements in simulation-reachable packages.`,
	Run: runDeterminism,
}

// deterministicPkgs is the simulation-reachable set: every package whose
// code can run under the discrete-event simulator's virtual clock.
// (experiments drives the simulator and feeds the deterministic tables, so
// it is held to the same bar; runner executes experiment cells on real
// goroutines but its results must land in input order regardless of
// completion order, so it is held to the same bar plus the
// completion-order rule; netx is the real-TCP path and is exempt.)
var deterministicPkgs = map[string]bool{
	"core":        true,
	"simnet":      true,
	"consensus":   true,
	"cluster":     true,
	"gossip":      true,
	"trace":       true,
	"experiments": true,
	"runner":      true,
}

// wallClockFuncs are the time-package entry points that read the wall
// clock or the runtime timer heap.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runDeterminism(pass *analysis.Pass) error {
	if !deterministicPkgs[lastPathElem(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in simulation-reachable package %s: global randomness breaks seeded-run byte-identity; use blockcrypto/rng seeded from the run", p, pass.Pkg.Name())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"time.%s in simulation-reachable package %s reads the wall clock; inject the virtual clock (simnet.Network.Now / Tracer.SetClock) or annotate icilint:allow determinism(reason)", fn.Name(), pass.Pkg.Name())
				}
			case *ast.GoStmt:
				if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkCompletionOrderAppends(pass, fl)
				}
			case *ast.SelectStmt:
				comms := 0
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						comms++
					}
				}
				if comms >= 2 {
					pass.Reportf(n.Pos(),
						"select over %d channels in simulation-reachable package %s: the runtime picks a ready case pseudo-randomly, breaking seeded-run determinism", comms, pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}

// checkCompletionOrderAppends walks the body of a function literal started
// by a go statement and reports appends whose destination slice is captured
// from the enclosing scope: such a slice collects results in goroutine
// completion order, which the scheduler decides, not the seed. The
// sanctioned alternative is an indexed write into a pre-sized slice
// (results[i] = ...), which pins result order to input order no matter
// which worker finishes first. Nested function literals are skipped here —
// they are only hazardous if themselves launched with go, and the outer
// Inspect visits every go statement.
func checkCompletionOrderAppends(pass *analysis.Pass, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if _, nested := n.(*ast.FuncLit); nested {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin || id.Name != "append" {
			return true
		}
		dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[dst]
		if obj == nil {
			return true
		}
		// Declared inside the goroutine's function literal (including its
		// parameters) means the slice is goroutine-local and safe; anything
		// else is shared state ordered by completion.
		if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
			return true
		}
		pass.Reportf(call.Pos(),
			"append to captured slice %s inside a goroutine in simulation-reachable package %s orders results by completion, which the scheduler decides; write into an indexed slot (results[i] = ...) so result order is the input order", dst.Name, pass.Pkg.Name())
		return true
	})
}
