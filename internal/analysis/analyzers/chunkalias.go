package analyzers

import (
	"go/ast"
	"go/types"

	"icistrategy/internal/analysis"
)

// ChunkAlias encodes the PR-2 storage.Store bug family: a put path that
// retained the caller's chunk buffer (so a later caller-side mutation
// corrupted the "stored" chunk), and a get path that handed out the
// internal buffer (so a reader could corrupt the store). Both were fixed
// with copy-on-put / copy-on-read; this analyzer keeps them fixed.
//
// Two checks, intraprocedural and lexical:
//
//  1. Store-side: inside a function taking a []byte parameter (or a struct
//     value with []byte fields, like storage.Chunk), assigning that
//     parameter — or a slice of it, or a local alias of it — into a field,
//     map/slice element, or pointer target is flagged unless the buffer was
//     first re-pointed at a fresh allocation (append/copy/clone call).
//  2. Read-side: a pointer-receiver method returning a []byte field of its
//     receiver (or an interior slice of one) without copying is flagged.
//
// Intentional ownership transfer is annotated:
// //icilint:allow chunkalias(reason).
var ChunkAlias = &analysis.Analyzer{
	Name: "chunkalias",
	Doc: `flag retained or leaked []byte buffers shared with callers (copy-on-put / copy-on-read)

Historical bug (PR 2): storage.Store.PutChunk stored the caller's chunk
slice; the proposer reused its scratch buffer for the next block and every
"stored" chunk silently mutated, failing digest verification cluster-wide.
Store caller-supplied buffers only after append([]byte(nil), p...) (or an
equivalent copy), and return internal buffers only as copies.`,
	Run: runChunkAlias,
}

// aliasParam is one parameter whose buffer the caller may retain: either a
// []byte itself, or a struct value carrying []byte fields.
type aliasParam struct {
	obj *types.Var
	// byteFields holds the struct kind's []byte field objects; nil for the
	// plain []byte kind.
	byteFields map[*types.Var]bool
	// sanitized tracks which byte fields (or, for the []byte kind, the
	// parameter itself under the nil key) have been re-pointed at a fresh
	// allocation so far in the lexical walk.
	sanitized map[*types.Var]bool
}

func (p *aliasParam) clean() bool {
	if p.byteFields == nil {
		return p.sanitized[nil]
	}
	for f := range p.byteFields {
		if !p.sanitized[f] {
			return false
		}
	}
	return true
}

func runChunkAlias(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			storeSide(pass, fd, func(at ast.Expr, src *aliasParam) {
				reportStore(pass, at, src)
			})
			readSide(pass, fd, func(res ast.Expr, sel *ast.SelectorExpr) {
				const format = "returning internal buffer %s without copy-on-read; callers can mutate stored state — return append([]byte(nil), %s...) or annotate icilint:allow chunkalias(reason)"
				if fix, ok := copyFix(pass, res); ok {
					pass.ReportFix(res.Pos(), fix, format, exprString(sel), exprString(sel))
					return
				}
				pass.Reportf(res.Pos(), format, exprString(sel), exprString(sel))
			})
		}
	}
	return nil
}

// --- store side --------------------------------------------------------------

// storeSide runs the store-side detection and hands each violation (a
// caller-shared buffer stored without copy) to report. Shared with the
// aliasflow analyzer, which turns the same violations into cross-package
// RetainsFact exports instead of diagnostics.
func storeSide(pass *analysis.Pass, fd *ast.FuncDecl, report func(at ast.Expr, src *aliasParam)) {
	params := collectAliasParams(pass, fd)
	if len(params) == 0 {
		return
	}
	// aliasOf maps local variables to the parameter they alias (tmp := p,
	// tmp := p[4:], tmp := c.Data ...).
	aliasOf := map[types.Object]*aliasParam{}

	find := func(e ast.Expr) (*aliasParam, bool) {
		return findAliasSource(pass.TypesInfo, e, params, aliasOf)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true // multi-value call: RHS is a call, never a raw alias
			}
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[i]
				src, direct := find(rhs)
				switch lhs := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					obj := pass.TypesInfo.ObjectOf(lhs)
					if obj == nil {
						continue
					}
					if src != nil {
						aliasOf[obj] = src // tmp := p (or p re-assigned: stays itself)
					} else {
						delete(aliasOf, obj) // re-pointed at something fresh
						if p := paramByObj(params, obj); p != nil && callRooted(rhs) {
							p.sanitized[nil] = true
						}
					}
				case *ast.SelectorExpr:
					// p.Data = append([]byte(nil), p.Data...) sanitizes that
					// field of a struct-kind parameter.
					if base, fobj := selectorOnParam(pass.TypesInfo, lhs, params); base != nil {
						if src == nil && callRooted(rhs) {
							base.sanitized[fobj] = true
						}
						continue
					}
					if src != nil && direct {
						report(rhs, src)
					}
				case *ast.IndexExpr, *ast.StarExpr:
					if src != nil && direct {
						report(rhs, src)
					}
				}
			}
		case *ast.FuncLit:
			// Closures share the outer scope; keep walking so stores inside
			// them are still seen (lexically).
			return true
		}
		return true
	})
}

// collectAliasParams gathers the function's caller-shared buffer
// parameters.
func collectAliasParams(pass *analysis.Pass, fd *ast.FuncDecl) []*aliasParam {
	var out []*aliasParam
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			t := obj.Type()
			if isByteSlice(t) {
				out = append(out, &aliasParam{obj: obj, sanitized: map[*types.Var]bool{}})
				continue
			}
			// Struct value with []byte fields (the storage.Chunk shape).
			// Pointers are excluded: *T is whole-object sharing by intent.
			if st, ok := t.Underlying().(*types.Struct); ok {
				fields := map[*types.Var]bool{}
				for i := 0; i < st.NumFields(); i++ {
					if isByteSlice(st.Field(i).Type()) {
						fields[st.Field(i)] = true
					}
				}
				if len(fields) > 0 {
					out = append(out, &aliasParam{obj: obj, byteFields: fields, sanitized: map[*types.Var]bool{}})
				}
			}
		}
	}
	return out
}

func paramByObj(params []*aliasParam, obj types.Object) *aliasParam {
	for _, p := range params {
		if p.obj == obj {
			return p
		}
	}
	return nil
}

// selectorOnParam resolves sel as `param.field` where param is a
// struct-kind alias parameter and field one of its []byte fields.
func selectorOnParam(info *types.Info, sel *ast.SelectorExpr, params []*aliasParam) (*aliasParam, *types.Var) {
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	p := paramByObj(params, info.ObjectOf(base))
	if p == nil || p.byteFields == nil {
		return nil, nil
	}
	fobj, _ := info.ObjectOf(sel.Sel).(*types.Var)
	if fobj == nil || !p.byteFields[fobj] {
		return nil, nil
	}
	return p, fobj
}

// findAliasSource reports whether e still aliases a caller-shared
// parameter buffer: the parameter itself, a slice of it, one of a struct
// parameter's []byte fields, a composite literal embedding one, or a local
// variable recorded in aliasOf. Crossing a call expression ends the search
// (append/copy/clone make fresh buffers; other callees own their results).
// direct is false only for the nil result.
func findAliasSource(info *types.Info, e ast.Expr, params []*aliasParam, aliasOf map[types.Object]*aliasParam) (src *aliasParam, direct bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if p := paramByObj(params, obj); p != nil && !p.clean() {
			return p, true
		}
		if p, ok := aliasOf[obj]; ok && !p.clean() {
			return p, true
		}
	case *ast.SliceExpr:
		return findAliasSource(info, e.X, params, aliasOf)
	case *ast.SelectorExpr:
		if base, fobj := selectorOnParam(info, e, params); base != nil && !base.sanitized[fobj] {
			return base, true
		}
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return findAliasSource(info, e.X, params, aliasOf)
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if p, ok := findAliasSource(info, v, params, aliasOf); ok {
				return p, true
			}
		}
	}
	return nil, false
}

// callRooted reports whether e's value comes out of a call (append, copy
// helpers, constructors) — the lexical signal that a fresh buffer was
// allocated.
func callRooted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return true
	case *ast.SliceExpr:
		return callRooted(e.X)
	}
	return false
}

func reportStore(pass *analysis.Pass, at ast.Expr, src *aliasParam) {
	const format = "storing caller-owned buffer of parameter %q without copy; the caller can mutate stored state — copy first (append([]byte(nil), p...)) or annotate icilint:allow chunkalias(reason)"
	if fix, ok := copyFix(pass, at); ok {
		pass.ReportFix(at.Pos(), fix, format, src.obj.Name())
		return
	}
	pass.Reportf(at.Pos(), format, src.obj.Name())
}

// copyFix builds the mechanical copy-on-put/copy-on-read remedy for a
// stored or returned []byte expression: wrap it in append([]byte(nil),
// X...). Non-[]byte shapes (whole structs, composite literals) have no
// single-expression fix and report without one.
func copyFix(pass *analysis.Pass, at ast.Expr) (analysis.SuggestedFix, bool) {
	t := pass.TypesInfo.TypeOf(at)
	if t == nil || !isByteSlice(t) {
		return analysis.SuggestedFix{}, false
	}
	txt := pass.NodeText(at)
	if txt == "" {
		return analysis.SuggestedFix{}, false
	}
	edit, ok := pass.ReplaceNode(at, "append([]byte(nil), "+txt+"...)")
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	return analysis.SuggestedFix{Message: "copy the buffer instead of sharing it", Edits: []analysis.TextEdit{edit}}, true
}

// --- read side ---------------------------------------------------------------

// readSide runs the read-side detection and hands each violation (an
// internal []byte field returned without copy) to report. Shared with
// the aliasflow analyzer's ReturnsAliasFact export.
func readSide(pass *analysis.Pass, fd *ast.FuncDecl, report func(res ast.Expr, sel *ast.SelectorExpr)) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	// Pointer receivers only: a value receiver already works on a copy of
	// the struct (though its slices still alias, the stored-state smell is
	// the pointer-receiver store type).
	recvField := fd.Recv.List[0]
	if _, ok := recvField.Type.(*ast.StarExpr); !ok {
		return
	}
	if len(recvField.Names) == 0 {
		return
	}
	recvObj := pass.TypesInfo.Defs[recvField.Names[0]]
	if recvObj == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl != nil {
			return true
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if sel := receiverByteField(pass.TypesInfo, res, recvObj); sel != nil {
				report(res, sel)
			}
		}
		return true
	})
}

// receiverByteField reports the `recv.field` selector if e is a []byte
// field of the receiver, or an interior slice of one.
func receiverByteField(info *types.Info, e ast.Expr, recv types.Object) *ast.SelectorExpr {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return receiverByteField(info, e.X, recv)
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(e.X).(*ast.Ident)
		if !ok || info.ObjectOf(base) != recv {
			return nil
		}
		fobj, _ := info.ObjectOf(e.Sel).(*types.Var)
		if fobj != nil && fobj.IsField() && isByteSlice(fobj.Type()) {
			return e
		}
	}
	return nil
}

// exprString renders a short selector like "s.buf" for messages.
func exprString(sel *ast.SelectorExpr) string {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}
