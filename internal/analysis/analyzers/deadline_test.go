package analyzers_test

import (
	"testing"

	"icistrategy/internal/analysis/analysistest"
	"icistrategy/internal/analysis/analyzers"
)

// The wire fixture reproduces the PR-7 roundTrip hang: blocking conn I/O
// with no SetDeadline dominating it, next to the armed fix shape, the
// one-branch-only arm the must-analysis rejects, and the deadline-less
// wrapper that stays invisible.
func TestDeadline(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Deadline, "wire")
}
