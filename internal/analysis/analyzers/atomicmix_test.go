package analyzers_test

import (
	"testing"

	"icistrategy/internal/analysis/analysistest"
	"icistrategy/internal/analysis/analyzers"
)

// The counter fixture reproduces the PR-3 metrics.Counter race (atomic
// writes, plain reads), the post-migration variant (atomic.Int64 assigned
// wholesale), and the lock-by-value copy hazard.
func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.AtomicMix, "counter")
}
