package analyzers_test

import (
	"testing"

	"icistrategy/internal/analysis/analysistest"
	"icistrategy/internal/analysis/analyzers"
)

// The core fixture reproduces the historical seeded-determinism break
// (wall-clock reads diffing "identical" seeded runs); the runner fixture
// pins the goroutine-completion-order rule (captured-slice appends in
// goroutines are flagged, indexed writes are not); netxish pins that
// packages outside the simulation-reachable set are exempt.
func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Determinism, "core", "runner", "netxish")
}
