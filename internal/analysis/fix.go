package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// The suggested-fix engine: analyzers attach byte-offset edits to their
// diagnostics, and the driver's -fix mode applies every non-overlapping
// edit (with a dry-run unified-diff mode). Offsets index into the exact
// bytes the loader parsed, so a fix computed during analysis applies
// bit-for-bit as long as the file has not changed underneath.

// TextEdit replaces file bytes [Start, End) with NewText. Start==End is a
// pure insertion.
type TextEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// SuggestedFix is one self-contained remedy for a diagnostic. Edits may
// span multiple positions of one file (or several files), and must not
// overlap within the fix.
type SuggestedFix struct {
	// Message says what applying the fix does ("copy the buffer before
	// storing it"), shown in -fix -diff output.
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// ApplyFixes merges the SuggestedFixes of diags (first fix per
// diagnostic) and applies them to the given file contents. Overlapping
// edits are dropped deterministically — the edit starting earliest wins;
// ties go to the shorter edit — so -fix is idempotent and never produces
// garbled output. It returns the new contents of every changed file and
// the number of edits applied and dropped.
func ApplyFixes(diags []Diagnostic, sources map[string][]byte) (changed map[string][]byte, applied, dropped int) {
	perFile := map[string][]TextEdit{}
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		for _, e := range d.SuggestedFixes[0].Edits {
			perFile[e.File] = append(perFile[e.File], e)
		}
	}
	changed = map[string][]byte{}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		src, ok := sources[f]
		if !ok {
			dropped += len(perFile[f])
			continue
		}
		edits := perFile[f]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			return edits[i].End < edits[j].End
		})
		// Keep the first edit of any overlapping run. Identical duplicate
		// edits (two diagnostics proposing the same change) collapse.
		kept := edits[:0]
		lastEnd := -1
		var prev TextEdit
		for i, e := range edits {
			if e.Start < 0 || e.End > len(src) || e.End < e.Start {
				dropped++
				continue
			}
			if i > 0 && e == prev {
				continue // exact duplicate
			}
			if e.Start < lastEnd {
				dropped++
				continue
			}
			kept = append(kept, e)
			lastEnd = e.End
			prev = e
		}
		if len(kept) == 0 {
			continue
		}
		var out []byte
		pos := 0
		for _, e := range kept {
			out = append(out, src[pos:e.Start]...)
			out = append(out, e.NewText...)
			pos = e.End
		}
		out = append(out, src[pos:]...)
		applied += len(kept)
		changed[f] = out
	}
	return changed, applied, dropped
}

// UnifiedDiff renders a minimal unified diff between old and new contents
// of one file — the -fix -diff dry-run output. Line-based LCS; the files
// icilint edits are source files, small enough for the quadratic table.
func UnifiedDiff(name string, oldData, newData []byte) string {
	a := splitLines(string(oldData))
	b := splitLines(string(newData))
	// LCS table.
	n, m := len(a), len(b)
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	type op struct {
		kind byte // ' ', '-', '+'
		line string
	}
	var ops []op
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, op{' ', a[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, op{'-', a[i]})
			i++
		default:
			ops = append(ops, op{'+', b[j]})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, op{'-', a[i]})
	}
	for ; j < m; j++ {
		ops = append(ops, op{'+', b[j]})
	}

	// Group changes into hunks with up to 3 context lines.
	const ctx = 3
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", name, name)
	k := 0
	oldLine, newLine := 1, 1
	for k < len(ops) {
		if ops[k].kind == ' ' {
			oldLine++
			newLine++
			k++
			continue
		}
		// Hunk start: back up for context.
		start := k
		lead := 0
		for start > 0 && lead < ctx && ops[start-1].kind == ' ' {
			start--
			lead++
		}
		// Extend to the hunk end: through changes, allowing <=2*ctx equal
		// lines between changes, plus trailing context.
		end := k
		run := 0
		for e := k; e < len(ops); e++ {
			if ops[e].kind == ' ' {
				run++
				if run > 2*ctx {
					break
				}
			} else {
				run = 0
				end = e + 1
			}
		}
		stop := end
		trail := 0
		for stop < len(ops) && trail < ctx && ops[stop].kind == ' ' {
			stop++
			trail++
		}
		hunkOldStart := oldLine - lead
		hunkNewStart := newLine - lead
		oldCount, newCount := 0, 0
		for e := start; e < stop; e++ {
			switch ops[e].kind {
			case ' ':
				oldCount++
				newCount++
			case '-':
				oldCount++
			case '+':
				newCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", hunkOldStart, oldCount, hunkNewStart, newCount)
		for e := start; e < stop; e++ {
			sb.WriteByte(ops[e].kind)
			sb.WriteString(ops[e].line)
			sb.WriteByte('\n')
		}
		for e := k; e < stop; e++ {
			switch ops[e].kind {
			case ' ':
				oldLine++
				newLine++
			case '-':
				oldLine++
			case '+':
				newLine++
			}
		}
		k = stop
	}
	return sb.String()
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
