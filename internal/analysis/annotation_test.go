package analysis

import (
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

var testKnown = map[string]bool{
	"determinism": true,
	"chunkalias":  true,
	"atomicmix":   true,
	"metricname":  true,
	"spanbalance": true,
}

func parseForAllows(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

func TestParseAllowsTrailing(t *testing.T) {
	src := `package p

func f() int {
	x := g() //icilint:allow chunkalias(ownership transferred by contract)
	return x
}

func g() int { return 0 }
`
	fset, f := parseForAllows(t, src)
	allows, errs := ParseAllows(fset, f, testKnown)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(allows) != 1 {
		t.Fatalf("got %d allows, want 1", len(allows))
	}
	a := allows[0]
	if a.Analyzer != "chunkalias" || a.Reason != "ownership transferred by contract" {
		t.Fatalf("bad allow parsed: %+v", a)
	}
	// Trailing annotation on line 4 covers lines 4-5.
	if a.FromLine != 4 || a.ToLine != 5 {
		t.Fatalf("allow covers %d-%d, want 4-5", a.FromLine, a.ToLine)
	}
	d := Diagnostic{Analyzer: "chunkalias", Pos: token.Position{Line: 4}}
	if !suppressed(d, allows) {
		t.Fatal("diagnostic on the annotated line not suppressed")
	}
	wrong := Diagnostic{Analyzer: "determinism", Pos: token.Position{Line: 4}}
	if suppressed(wrong, allows) {
		t.Fatal("allow for chunkalias must not suppress determinism")
	}
}

func TestParseAllowsStandaloneCoversNextLine(t *testing.T) {
	src := `package p

import "time"

func f() time.Time {
	//icilint:allow determinism(wall clock is the fallback)
	return time.Now()
}
`
	fset, f := parseForAllows(t, src)
	allows, errs := ParseAllows(fset, f, testKnown)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(allows) != 1 {
		t.Fatalf("got %d allows, want 1", len(allows))
	}
	d := Diagnostic{Analyzer: "determinism", Pos: token.Position{Line: 7}}
	if !suppressed(d, allows) {
		t.Fatal("diagnostic on the line after the annotation not suppressed")
	}
	far := Diagnostic{Analyzer: "determinism", Pos: token.Position{Line: 8}}
	if suppressed(far, allows) {
		t.Fatal("allow must not reach two lines past the comment")
	}
}

func TestParseAllowsMultiClause(t *testing.T) {
	src := `package p

//icilint:allow determinism(seeded bench), chunkalias(buffer reused by design)
var x int
`
	fset, f := parseForAllows(t, src)
	allows, errs := ParseAllows(fset, f, testKnown)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(allows) != 2 {
		t.Fatalf("got %d allows, want 2: %+v", len(allows), allows)
	}
	if allows[0].Analyzer != "determinism" || allows[1].Analyzer != "chunkalias" {
		t.Fatalf("bad analyzers: %+v", allows)
	}
}

// A wrong-category allow must be a finding, never a silent no-op: the
// annotation the author thought was protecting a line isn't, and the
// analyzer they typo'd would otherwise report the line anyway with no
// hint why the suppression failed.
func TestParseAllowsUnknownAnalyzerIsError(t *testing.T) {
	src := `package p

//icilint:allow determinsm(typo in the category)
var x int
`
	fset, f := parseForAllows(t, src)
	allows, errs := ParseAllows(fset, f, testKnown)
	if len(allows) != 0 {
		t.Fatalf("typo'd allow must not parse: %+v", allows)
	}
	if len(errs) != 1 {
		t.Fatalf("got %d errors, want 1: %v", len(errs), errs)
	}
	if errs[0].Analyzer != allowErrAnalyzer {
		t.Fatalf("error attributed to %q, want %q", errs[0].Analyzer, allowErrAnalyzer)
	}
	if !strings.Contains(errs[0].Message, `"determinsm"`) {
		t.Fatalf("error should name the unknown analyzer: %s", errs[0].Message)
	}
}

func TestParseAllowsEmptyReasonIsError(t *testing.T) {
	src := `package p

//icilint:allow determinism()
var x int
`
	fset, f := parseForAllows(t, src)
	allows, errs := ParseAllows(fset, f, testKnown)
	if len(allows) != 0 || len(errs) != 1 {
		t.Fatalf("want 0 allows + 1 error, got %d/%d", len(allows), len(errs))
	}
	if !strings.Contains(errs[0].Message, "non-empty reason") {
		t.Fatalf("unexpected message: %s", errs[0].Message)
	}
}

func TestParseAllowsMalformedClauseIsError(t *testing.T) {
	src := `package p

//icilint:allow determinism no-parens
var x int
`
	fset, f := parseForAllows(t, src)
	allows, errs := ParseAllows(fset, f, testKnown)
	if len(allows) != 0 || len(errs) != 1 {
		t.Fatalf("want 0 allows + 1 error, got %d/%d", len(allows), len(errs))
	}
	if !strings.Contains(errs[0].Message, "malformed") {
		t.Fatalf("unexpected message: %s", errs[0].Message)
	}
}

// Annotations must keep covering the same statements after gofmt: gofmt
// realigns and re-indents comments but never moves one off its line, so
// the (line-of-annotation, line-after) span is format-stable. Pin that by
// reformatting deliberately ragged source and re-running the parser.
func TestAllowsSurviveGofmt(t *testing.T) {
	src := "package p\n\nimport \"time\"\n\nfunc f() time.Time {\n      //icilint:allow    determinism(fallback clock)\n\treturn   time.Now()\n}\n\nfunc g() time.Time {\n\treturn time.Now()    //icilint:allow determinism(fallback clock)\n}\n"
	formatted, err := format.Source([]byte(src))
	if err != nil {
		t.Fatalf("format.Source: %v", err)
	}
	for name, text := range map[string]string{"raw": src, "gofmt": string(formatted)} {
		fset, f := parseForAllows(t, text)
		allows, errs := ParseAllows(fset, f, testKnown)
		if len(errs) != 0 {
			t.Fatalf("%s: unexpected errors: %v", name, errs)
		}
		if len(allows) != 2 {
			t.Fatalf("%s: got %d allows, want 2", name, len(allows))
		}
		// Both time.Now calls must be covered, wherever formatting put them.
		covered := 0
		for line := 1; line <= strings.Count(text, "\n")+1; line++ {
			if suppressed(Diagnostic{Analyzer: "determinism", Pos: token.Position{Line: line}}, allows) {
				covered++
			}
		}
		// Standalone form covers 2 lines, trailing form covers 2 lines.
		if covered != 4 {
			t.Fatalf("%s: %d lines covered, want 4", name, covered)
		}
		for _, a := range allows {
			lineText := strings.Split(text, "\n")[a.ToLine-1]
			if !strings.Contains(lineText, "time.Now") && !strings.Contains(lineText, "}") {
				t.Fatalf("%s: allow span %d-%d drifted off the guarded statement", name, a.FromLine, a.ToLine)
			}
		}
	}
}
