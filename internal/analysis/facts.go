package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// The facts layer lets an analyzer record typed knowledge about exported
// objects of one package — "this function retains its []byte argument",
// "this method returns a view of internal state" — and lets the same
// analyzer read that knowledge back while checking a DOWNSTREAM package,
// mirroring golang.org/x/tools/go/analysis facts. RunPackages analyzes
// packages in dependency order with a shared FactStore, so by the time a
// consumer package is checked, every fact about its module-internal
// dependencies is present.
//
// Facts are stored serialized (JSON), not as live pointers: export
// marshals, import unmarshals into the caller's value. That keeps the
// store order-independent of analyzer internals, makes it durable across
// loader reloads (Encode/DecodeFactStore), and forces fact types to stay
// plain data.

// Fact is a datum attached to an object. Implementations must be
// JSON-marshalable structs; the AFact marker keeps arbitrary types out.
type Fact interface {
	AFact()
}

// factKey identifies one fact: the object's package path, the object's
// package-local key, the exporting analyzer, and the fact's type name.
type factKey struct {
	Pkg      string
	Obj      string
	Analyzer string
	Type     string
}

// FactStore holds serialized facts for the whole run.
type FactStore struct {
	m map[factKey][]byte
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey][]byte{}}
}

// objKey names obj inside its package: "Name" for package-level objects,
// "Recv.Name" for methods (pointer receivers and value receivers
// collapse to the same key, as go/types method sets do).
func objKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			recv := namedOfType(sig.Recv().Type())
			if recv == nil {
				return "", false
			}
			return recv.Obj().Name() + "." + fn.Name(), true
		}
	}
	return obj.Name(), true
}

// namedOfType unwraps pointers and aliases down to the *types.Named.
func namedOfType(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// export records fact for obj. Only objects belonging to a package may
// carry facts (no builtins); the fact is serialized immediately.
func (s *FactStore) export(analyzer string, obj types.Object, f Fact) error {
	key, ok := objKey(obj)
	if !ok {
		return fmt.Errorf("facts: object %v cannot carry a fact", obj)
	}
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("facts: marshal %s for %s: %w", factTypeName(f), key, err)
	}
	s.m[factKey{Pkg: obj.Pkg().Path(), Obj: key, Analyzer: analyzer, Type: factTypeName(f)}] = data
	return nil
}

// lookup fills f with the fact of f's type attached to obj by analyzer,
// reporting whether one was found.
func (s *FactStore) lookup(analyzer string, obj types.Object, f Fact) bool {
	key, ok := objKey(obj)
	if !ok {
		return false
	}
	data, ok := s.m[factKey{Pkg: obj.Pkg().Path(), Obj: key, Analyzer: analyzer, Type: factTypeName(f)}]
	if !ok {
		return false
	}
	return json.Unmarshal(data, f) == nil
}

// Len reports the number of stored facts.
func (s *FactStore) Len() int { return len(s.m) }

// serializedFact is the wire form of one store entry.
type serializedFact struct {
	Pkg      string          `json:"pkg"`
	Obj      string          `json:"obj"`
	Analyzer string          `json:"analyzer"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// Encode serializes the store deterministically (sorted by key), so fact
// files diff cleanly and the byte-stable-output guarantee extends to any
// persisted fact set.
func (s *FactStore) Encode() ([]byte, error) {
	entries := make([]serializedFact, 0, len(s.m))
	for k, v := range s.m {
		entries = append(entries, serializedFact{Pkg: k.Pkg, Obj: k.Obj, Analyzer: k.Analyzer, Type: k.Type, Data: v})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Type < b.Type
	})
	return json.MarshalIndent(entries, "", "  ")
}

// DecodeFactStore rebuilds a store from Encode's output — the reload half
// of the serialize-between-loader-passes contract.
func DecodeFactStore(data []byte) (*FactStore, error) {
	var entries []serializedFact
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("facts: decode: %w", err)
	}
	s := NewFactStore()
	for _, e := range entries {
		s.m[factKey{Pkg: e.Pkg, Obj: e.Obj, Analyzer: e.Analyzer, Type: e.Type}] = e.Data
	}
	return s, nil
}

// String renders a compact summary for debugging and tests.
func (s *FactStore) String() string {
	keys := make([]factKey, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Obj < b.Obj
	})
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s.%s: %s[%s]=%s\n", k.Pkg, k.Obj, k.Analyzer, k.Type, s.m[k])
	}
	return sb.String()
}
