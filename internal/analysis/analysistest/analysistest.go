// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against `// want` expectations — the same workflow
// as golang.org/x/tools/go/analysis/analysistest, restated on the repo's
// stdlib-only analysis framework.
//
// Layout: <testdata>/src/<importpath>/*.go. Fixture files annotate expected
// findings with trailing comments:
//
//	s.chunks[key] = data // want `caller-owned`
//	t0 := time.Now()     // want `wall clock` `second finding on same line`
//
// Each backquoted (or double-quoted) string is a regexp that must match the
// message of exactly one diagnostic reported on that line; diagnostics with
// no matching want, and wants with no matching diagnostic, fail the test.
// `//icilint:allow` annotations are honored exactly as in the real driver,
// so fixtures can (and do) pin the suppression behavior too.
//
// Packages run through analysis.RunPackages in the order given, sharing
// one fact store — list fact-exporting dependency fixtures before their
// consumers to exercise cross-package analyzers.
//
// If a fixture file F.go has a sibling F.go.golden.fixed, the harness
// additionally applies the diagnostics' suggested fixes to F.go and
// requires the result to equal the golden file byte-for-byte, pinning
// the -fix output.
package analysistest

import (
	"go/token"
	"os"
	"regexp"
	"strings"
	"testing"

	"icistrategy/internal/analysis"
)

// Run loads each fixture package under dir/src and applies a to it,
// comparing diagnostics with the fixtures' want comments and suggested
// fixes with any .golden.fixed siblings.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader, err := analysis.NewFixtureLoader(dir + "/src")
	if err != nil {
		t.Fatalf("fixture loader: %v", err)
	}
	pkgs := make([]*analysis.Package, 0, len(pkgPaths))
	for _, path := range pkgPaths {
		pkg, err := loader.LoadPath(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	res, err := analysis.RunPackages(loader, pkgs, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	perPkg := map[string][]analysis.Diagnostic{}
	for _, d := range res.Diagnostics {
		perPkg[pkgDirOf(pkgs, d.File)] = append(perPkg[pkgDirOf(pkgs, d.File)], d)
	}
	for _, pkg := range pkgs {
		checkWants(t, pkg, perPkg[pkg.Dir])
	}
	checkGoldenFixed(t, pkgs, res.Diagnostics)
}

// pkgDirOf attributes a diagnostic file to its fixture package directory.
func pkgDirOf(pkgs []*analysis.Package, file string) string {
	for _, p := range pkgs {
		if _, ok := p.Sources[file]; ok {
			return p.Dir
		}
	}
	return ""
}

// checkGoldenFixed applies the run's suggested fixes and compares every
// file that has a .golden.fixed sibling against it.
func checkGoldenFixed(t *testing.T, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	sources := map[string][]byte{}
	for _, p := range pkgs {
		for name, src := range p.Sources {
			sources[name] = src
		}
	}
	changed, _, _ := analysis.ApplyFixes(diags, sources)
	for name := range sources {
		golden, err := os.ReadFile(name + ".golden.fixed")
		if err != nil {
			continue // no golden: fixes for this file (if any) unchecked
		}
		got, ok := changed[name]
		if !ok {
			got = sources[name]
		}
		if string(got) != string(golden) {
			t.Errorf("%s: applying suggested fixes does not match %s.golden.fixed\n--- got ---\n%s\n--- want ---\n%s",
				name, name, got, golden)
		}
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantArg pulls the expectation strings out of a want comment; both Go
// string literal forms are accepted.
var wantArg = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := text[idx+len("want "):]
				ms := wantArg.FindAllStringSubmatch(args, -1)
				if len(ms) == 0 {
					t.Errorf("%s: malformed want comment %q", pos, c.Text)
					continue
				}
				for _, m := range ms {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		if !matchWant(wants, d.Pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

func matchWant(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
