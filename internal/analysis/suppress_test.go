package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func mustParseSuppressions(t *testing.T, text string) *Suppressions {
	t.Helper()
	s, err := ParseSuppressions(strings.NewReader(text), ".icilint-allow", testKnown)
	if err != nil {
		t.Fatalf("ParseSuppressions: %v", err)
	}
	return s
}

func TestSuppressionsMatch(t *testing.T) {
	s := mustParseSuppressions(t, `
# baseline during the netx cleanup
internal/netx/client.go  chunkalias
internal/experiments/*   determinism  # generated sweeps
cmd/icibench/main.go     *
`)
	cases := []struct {
		file, analyzer string
		want           bool
	}{
		{"internal/netx/client.go", "chunkalias", true},
		// Suffix matching: absolute paths hit the same entries.
		{"/root/repo/internal/netx/client.go", "chunkalias", true},
		{"internal/netx/client.go", "determinism", false},
		{"internal/netx/server.go", "chunkalias", false},
		{"internal/experiments/coding.go", "determinism", true},
		{"internal/experiments/coding.go", "atomicmix", false},
		{"cmd/icibench/main.go", "spanbalance", true},
		{"cmd/icibench/main.go", "metricname", true},
		// A bare filename must not match a deeper pattern.
		{"client.go", "chunkalias", false},
	}
	for _, c := range cases {
		if got := s.Match(c.file, c.analyzer); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.file, c.analyzer, got, c.want)
		}
	}
}

// A typo'd analyzer name in the suppression file must be a hard parse
// error: a file-level allowlist is far blunter than an annotation, so a
// silent no-op entry would hide that a whole file went unprotected (or
// worse, that the author believed a category was baselined when it
// wasn't).
func TestSuppressionsUnknownAnalyzerIsError(t *testing.T) {
	_, err := ParseSuppressions(strings.NewReader("internal/netx/client.go chunckalias\n"), "f", testKnown)
	if err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	if !strings.Contains(err.Error(), `"chunckalias"`) || !strings.Contains(err.Error(), "f:1") {
		t.Fatalf("error should carry file:line and the bad name: %v", err)
	}
}

func TestSuppressionsMalformedLineIsError(t *testing.T) {
	_, err := ParseSuppressions(strings.NewReader("just-a-path\n"), "f", testKnown)
	if err == nil || !strings.Contains(err.Error(), "f:1") {
		t.Fatalf("one-field line must error with position, got: %v", err)
	}
	_, err = ParseSuppressions(strings.NewReader("a b c\n"), "f", testKnown)
	if err == nil {
		t.Fatal("three-field line accepted")
	}
}

func TestSuppressionsBadPatternIsError(t *testing.T) {
	_, err := ParseSuppressions(strings.NewReader("internal/[bad chunkalias\n"), "f", testKnown)
	if err == nil {
		t.Fatal("unparsable glob accepted")
	}
}

func TestSuppressionsFilter(t *testing.T) {
	s := mustParseSuppressions(t, "internal/experiments/* determinism\n")
	diags := []Diagnostic{
		{Analyzer: "determinism", Pos: token.Position{Filename: "internal/experiments/coding.go", Line: 10}},
		{Analyzer: "chunkalias", Pos: token.Position{Filename: "internal/experiments/coding.go", Line: 11}},
		{Analyzer: "determinism", Pos: token.Position{Filename: "internal/core/retrieve.go", Line: 12}},
	}
	kept := s.Filter(diags)
	if len(kept) != 2 {
		t.Fatalf("got %d diagnostics after filter, want 2: %+v", len(kept), kept)
	}
	if kept[0].Analyzer != "chunkalias" || kept[1].Pos.Filename != "internal/core/retrieve.go" {
		t.Fatalf("wrong diagnostics survived: %+v", kept)
	}
}

func TestNilSuppressions(t *testing.T) {
	var s *Suppressions
	if s.Match("any.go", "determinism") {
		t.Fatal("nil Suppressions must match nothing")
	}
	diags := []Diagnostic{{Analyzer: "determinism"}}
	if got := s.Filter(diags); len(got) != 1 {
		t.Fatal("nil Suppressions must filter nothing")
	}
}
