package analysis

import (
	"bufio"
	"fmt"
	"io"
	"path"
	"strings"
)

// Suppression-file format (default path: .icilint-allow at the module
// root). One entry per line:
//
//	# comment
//	internal/netx/client.go  chunkalias   # trailing comments allowed
//	internal/experiments/*   determinism
//	cmd/icibench/main.go     *
//
// The first field is a slash-separated file pattern matched against the
// end of the diagnostic's file path (path.Match globs apply per the whole
// pattern); the second is an analyzer name or "*". Unknown analyzer names
// are a hard error — a typo must never silently widen the allowlist.
//
// Annotations (`//icilint:allow`) are the preferred mechanism because they
// sit next to the code and carry a reason; the file exists for cases where
// the source cannot carry the annotation (generated files, vendored
// fixtures) and for temporary baselines during a cleanup.

// Suppressions is a parsed suppression file. Entries count their uses so
// the driver can report entries that no longer match anything — a stale
// baseline line is a suppression waiting to swallow a future regression.
type Suppressions struct {
	name    string
	entries []suppressEntry
}

type suppressEntry struct {
	pattern  string
	analyzer string
	line     int
	matched  int
}

// StaleEntry identifies a suppression-file entry that matched no
// diagnostic during the run.
type StaleEntry struct {
	File     string
	Line     int
	Pattern  string
	Analyzer string
}

// ParseSuppressions reads the file format above. known maps valid analyzer
// names; name is used in error messages.
func ParseSuppressions(r io.Reader, name string, known map[string]bool) (*Suppressions, error) {
	s := &Suppressions{name: name}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<file-pattern> <analyzer>\", got %q", name, lineNo, strings.TrimSpace(line))
		}
		pat, analyzer := fields[0], fields[1]
		if analyzer != "*" && !known[analyzer] {
			return nil, fmt.Errorf("%s:%d: unknown analyzer %q (known: %s)", name, lineNo, analyzer, knownNames(known))
		}
		if _, err := path.Match(pat, "x"); err != nil {
			return nil, fmt.Errorf("%s:%d: bad pattern %q: %v", name, lineNo, pat, err)
		}
		s.entries = append(s.entries, suppressEntry{pattern: pat, analyzer: analyzer, line: lineNo})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return s, nil
}

// Match reports whether a diagnostic in file (any path form) from the
// given analyzer is suppressed, crediting the first matching entry's use
// counter (later entries that would also match earn no credit).
func (s *Suppressions) Match(file, analyzer string) bool {
	if s == nil {
		return false
	}
	file = strings.ReplaceAll(file, "\\", "/")
	for i := range s.entries {
		e := &s.entries[i]
		if e.analyzer != "*" && e.analyzer != analyzer {
			continue
		}
		if suffixPatternMatch(e.pattern, file) {
			e.matched++
			return true
		}
	}
	return false
}

// Stale returns the entries whose use counter is still zero, in file
// order. Meaningful only after Filter/Match has seen the run's full
// diagnostic stream.
func (s *Suppressions) Stale() []StaleEntry {
	if s == nil {
		return nil
	}
	var out []StaleEntry
	for _, e := range s.entries {
		if e.matched == 0 {
			out = append(out, StaleEntry{File: s.name, Line: e.line, Pattern: e.pattern, Analyzer: e.analyzer})
		}
	}
	return out
}

// suffixPatternMatch matches pattern against the trailing path elements of
// file, so entries stay stable regardless of whether diagnostics carry
// absolute or repo-relative paths.
func suffixPatternMatch(pattern, file string) bool {
	pelems := strings.Split(pattern, "/")
	felems := strings.Split(file, "/")
	if len(pelems) > len(felems) {
		return false
	}
	tail := felems[len(felems)-len(pelems):]
	for i, pe := range pelems {
		ok, err := path.Match(pe, tail[i])
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// Filter drops suppressed diagnostics.
func (s *Suppressions) Filter(diags []Diagnostic) []Diagnostic {
	if s == nil || len(s.entries) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if s.Match(d.Pos.Filename, d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
