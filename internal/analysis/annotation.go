package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// The `//icilint:allow` annotation grammar (documented in DESIGN.md):
//
//	//icilint:allow analyzer(reason)
//	//icilint:allow analyzer(reason), analyzer2(reason)
//
// The analyzer name must be one of the registered analyzers — an unknown
// name is itself a finding (wrong-category allows must never silently
// swallow a real diagnostic) — and the reason must be non-empty, so every
// suppression carries its justification in the source.
//
// Placement: an annotation suppresses matching diagnostics on the lines the
// comment group spans and on the line immediately after it. That covers
// both idiomatic placements —
//
//	x.f = buf //icilint:allow chunkalias(ownership transferred by contract)
//
// and
//
//	//icilint:allow determinism(wall clock is the disabled-tracer fallback)
//	start := time.Now()
//
// — and both survive gofmt, which never moves a comment off its line.

// allowErrAnalyzer attributes malformed-annotation findings.
const allowErrAnalyzer = "icilint"

// Allow is one parsed suppression: category, justification, and the line
// span it covers.
type Allow struct {
	Analyzer string
	Reason   string
	FromLine int // first line of the comment group
	ToLine   int // last covered line (line after the comment group)
}

// allowMarker matches the annotation lead-in; gofmt may normalize `//x` to
// `// x`, so optional space is accepted.
var allowMarker = regexp.MustCompile(`^//\s*icilint:allow\s+(.*)$`)

// allowClause matches one `analyzer(reason)` group.
var allowClause = regexp.MustCompile(`^([a-zA-Z0-9_-]+)\(([^)]*)\)\s*(?:,\s*|$)`)

// ParseAllows extracts every icilint:allow annotation from f. known maps
// valid analyzer names; a clause naming an unknown analyzer or carrying an
// empty reason is returned as an error diagnostic instead of an Allow.
func ParseAllows(fset *token.FileSet, f *ast.File, known map[string]bool) ([]Allow, []Diagnostic) {
	var allows []Allow
	var errs []Diagnostic
	reportErr := func(pos token.Pos, format string, args ...any) {
		d := Diagnostic{
			Analyzer: allowErrAnalyzer,
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		}
		d.fill()
		errs = append(errs, d)
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowMarker.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			rest := strings.TrimSpace(m[1])
			if rest == "" {
				reportErr(c.Pos(), "empty icilint:allow annotation; want icilint:allow analyzer(reason)")
				continue
			}
			fromLine := fset.Position(c.Pos()).Line
			toLine := fset.Position(c.End()).Line + 1
			for rest != "" {
				cm := allowClause.FindStringSubmatch(rest)
				if cm == nil {
					reportErr(c.Pos(), "malformed icilint:allow clause %q; want analyzer(reason)", rest)
					break
				}
				name, reason := cm[1], strings.TrimSpace(cm[2])
				switch {
				case !known[name]:
					reportErr(c.Pos(), "icilint:allow names unknown analyzer %q (known: %s)", name, knownNames(known))
				case reason == "":
					reportErr(c.Pos(), "icilint:allow %s() needs a non-empty reason", name)
				default:
					allows = append(allows, Allow{Analyzer: name, Reason: reason, FromLine: fromLine, ToLine: toLine})
				}
				rest = rest[len(cm[0]):]
			}
		}
	}
	return allows, errs
}

func knownNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// suppressed reports whether d falls inside an allow for its analyzer.
func suppressed(d Diagnostic, allows []Allow) bool {
	for _, a := range allows {
		if a.Analyzer == d.Analyzer && d.Pos.Line >= a.FromLine && d.Pos.Line <= a.ToLine {
			return true
		}
	}
	return false
}
