package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// The `//icilint:allow` annotation grammar (documented in DESIGN.md):
//
//	//icilint:allow analyzer(reason)
//	//icilint:allow analyzer(reason), analyzer2(reason)
//
// The analyzer name must be one of the registered analyzers — an unknown
// name is itself a finding (wrong-category allows must never silently
// swallow a real diagnostic) — and the reason must be non-empty, so every
// suppression carries its justification in the source.
//
// Placement: an annotation suppresses matching diagnostics on the lines the
// comment group spans and on the line immediately after it. That covers
// both idiomatic placements —
//
//	x.f = buf //icilint:allow chunkalias(ownership transferred by contract)
//
// and
//
//	//icilint:allow determinism(wall clock is the disabled-tracer fallback)
//	start := time.Now()
//
// — and both survive gofmt, which never moves a comment off its line.

// allowErrAnalyzer attributes malformed-annotation findings.
const allowErrAnalyzer = "icilint"

// Allow is one parsed suppression: category, justification, and the line
// span it covers, plus enough comment geometry to delete the annotation
// mechanically when it goes stale.
type Allow struct {
	Analyzer string
	Reason   string
	File     string
	FromLine int // first line of the comment group
	ToLine   int // last covered line (line after the comment group)
	// CommentStart/CommentEnd are the byte offsets of the whole comment
	// carrying this clause; Clauses is how many clauses share that
	// comment. A stale-allow deletion fix removes the comment only when it
	// holds a single clause — multi-clause comments need a hand edit.
	CommentStart int
	CommentEnd   int
	Clauses      int
}

// allowMarker matches the annotation lead-in; gofmt may normalize `//x` to
// `// x`, so optional space is accepted.
var allowMarker = regexp.MustCompile(`^//\s*icilint:allow\s+(.*)$`)

// allowClause matches one `analyzer(reason)` group.
var allowClause = regexp.MustCompile(`^([a-zA-Z0-9_-]+)\(([^)]*)\)\s*(?:,\s*|$)`)

// ParseAllows extracts every icilint:allow annotation from f. known maps
// valid analyzer names; a clause naming an unknown analyzer or carrying an
// empty reason is returned as an error diagnostic instead of an Allow.
func ParseAllows(fset *token.FileSet, f *ast.File, known map[string]bool) ([]Allow, []Diagnostic) {
	var allows []Allow
	var errs []Diagnostic
	reportErr := func(pos token.Pos, format string, args ...any) {
		d := Diagnostic{
			Analyzer: allowErrAnalyzer,
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		}
		d.fill()
		errs = append(errs, d)
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowMarker.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			rest := strings.TrimSpace(m[1])
			if rest == "" {
				reportErr(c.Pos(), "empty icilint:allow annotation; want icilint:allow analyzer(reason)")
				continue
			}
			start, end := fset.Position(c.Pos()), fset.Position(c.End())
			var commentAllows []Allow
			for rest != "" {
				cm := allowClause.FindStringSubmatch(rest)
				if cm == nil {
					reportErr(c.Pos(), "malformed icilint:allow clause %q; want analyzer(reason)", rest)
					break
				}
				name, reason := cm[1], strings.TrimSpace(cm[2])
				switch {
				case !known[name]:
					reportErr(c.Pos(), "icilint:allow names unknown analyzer %q (known: %s)", name, knownNames(known))
				case reason == "":
					reportErr(c.Pos(), "icilint:allow %s() needs a non-empty reason", name)
				default:
					commentAllows = append(commentAllows, Allow{
						Analyzer:     name,
						Reason:       reason,
						File:         start.Filename,
						FromLine:     start.Line,
						ToLine:       end.Line + 1,
						CommentStart: start.Offset,
						CommentEnd:   end.Offset,
					})
				}
				rest = rest[len(cm[0]):]
			}
			for i := range commentAllows {
				commentAllows[i].Clauses = len(commentAllows)
			}
			allows = append(allows, commentAllows...)
		}
	}
	return allows, errs
}

func knownNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// suppressed reports whether d falls inside an allow for its analyzer.
func suppressed(d Diagnostic, allows []Allow) bool {
	return suppressIndex(d, allows) >= 0
}

// suppressIndex returns the index of the allow covering d, or -1.
// RunPackages uses the index to count matches per annotation, which is
// what makes stale allows detectable. Among several covering allows the
// CLOSEST one (largest FromLine) gets the credit: with trailing
// annotations on adjacent lines, the previous line's allow also spans
// this line, and crediting it would mark this line's own annotation
// stale.
func suppressIndex(d Diagnostic, allows []Allow) int {
	best := -1
	for i, a := range allows {
		if a.Analyzer != d.Analyzer || d.Pos.Line < a.FromLine || d.Pos.Line > a.ToLine {
			continue
		}
		if best < 0 || a.FromLine > allows[best].FromLine {
			best = i
		}
	}
	return best
}

// StaleAllowFix builds the edit that deletes a stale allow annotation
// from its file: the whole comment when it sits alone on a line (eating
// the trailing newline so no blank line is left behind), or the comment
// plus the separating whitespace when it trails code. Multi-clause
// comments are refused — removing one clause mechanically would disturb
// the others, so those get a diagnostic without a fix.
// StaleAllowDiagnostic converts a stale allow annotation into an
// "icilint" diagnostic for -strict-allow runs, attaching the deletion fix
// when removing the comment is mechanical.
func StaleAllowDiagnostic(a Allow, src []byte) Diagnostic {
	d := Diagnostic{
		Analyzer: allowErrAnalyzer,
		Pos:      token.Position{Filename: a.File, Line: a.FromLine, Column: 1},
		Message: fmt.Sprintf("stale icilint:allow %s(%s): no diagnostic matched this annotation; delete it or re-check the reason",
			a.Analyzer, a.Reason),
	}
	if fix, ok := StaleAllowFix(src, a); ok {
		d.SuggestedFixes = []SuggestedFix{{Message: "delete stale allow annotation", Edits: []TextEdit{fix}}}
	}
	d.fill()
	return d
}

func StaleAllowFix(src []byte, a Allow) (TextEdit, bool) {
	if a.Clauses != 1 || a.CommentStart < 0 || a.CommentEnd > len(src) || a.CommentStart >= a.CommentEnd {
		return TextEdit{}, false
	}
	start, end := a.CommentStart, a.CommentEnd
	for start > 0 && (src[start-1] == ' ' || src[start-1] == '\t') {
		start--
	}
	if (start == 0 || src[start-1] == '\n') && end < len(src) && src[end] == '\n' {
		end++ // comment owned the whole line: remove it entirely
	}
	return TextEdit{File: a.File, Start: start, End: end}, true
}
