package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses a function body and returns its CFG.
func build(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// hasCall reports whether the block contains a call to name.
func hasCall(b *Block, name string) bool {
	for _, n := range b.Nodes {
		found := false
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func blockWithCall(t *testing.T, g *CFG, name string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		if hasCall(b, name) {
			return b
		}
	}
	t.Fatalf("no block contains call to %s", name)
	return nil
}

// reaches reports whether to is reachable from from along Succs.
func reaches(from, to *Block) bool {
	seen := map[int]bool{}
	var dfs func(b *Block) bool
	dfs = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func TestIfJoin(t *testing.T) {
	g := build(t, `
		a()
		if cond() {
			b()
		} else {
			c()
		}
		d()`)
	bb, cb, db := blockWithCall(t, g, "b"), blockWithCall(t, g, "c"), blockWithCall(t, g, "d")
	if reaches(bb, cb) || reaches(cb, bb) {
		t.Fatalf("then and else branches must not reach each other")
	}
	if !reaches(bb, db) || !reaches(cb, db) {
		t.Fatalf("both branches must reach the join")
	}
}

func TestIfWithoutElseBypass(t *testing.T) {
	g := build(t, `
		if cond() {
			b()
		}
		d()`)
	cond := blockWithCall(t, g, "cond")
	db := blockWithCall(t, g, "d")
	// The condition must have a direct edge to the join (the not-taken
	// path) in addition to the then-branch path.
	direct := false
	for _, s := range cond.Succs {
		if s == db {
			direct = true
		}
	}
	if !direct {
		t.Fatalf("if without else must have a bypass edge cond->join; succs=%v", indices(cond.Succs))
	}
}

func TestForLoopBackedge(t *testing.T) {
	g := build(t, `
		for i := 0; i < n(); i++ {
			body()
		}
		after()`)
	nb, bb, ab := blockWithCall(t, g, "n"), blockWithCall(t, g, "body"), blockWithCall(t, g, "after")
	if !reaches(bb, nb) {
		t.Fatalf("loop body must reach the condition via the back edge")
	}
	if !reaches(nb, ab) {
		t.Fatalf("condition must reach the loop exit")
	}
	if !reaches(g.Blocks[0], bb) {
		t.Fatalf("entry must reach the body")
	}
}

func TestInfiniteLoopExitOnlyViaBreak(t *testing.T) {
	g := build(t, `
		for {
			if cond() {
				break
			}
			body()
		}
		after()`)
	ab := blockWithCall(t, g, "after")
	cond := blockWithCall(t, g, "cond")
	if !reaches(cond, ab) {
		t.Fatalf("break must reach the loop exit")
	}
	// Without the break the exit is unreachable.
	g2 := build(t, `
		for {
			body()
		}
		after()`)
	ab2 := blockWithCall(t, g2, "after")
	if reaches(g2.Blocks[0], ab2) {
		t.Fatalf("infinite loop without break must not reach code after it")
	}
}

func TestReturnTerminates(t *testing.T) {
	g := build(t, `
		if cond() {
			early()
			return
		}
		late()`)
	eb, lb := blockWithCall(t, g, "early"), blockWithCall(t, g, "late")
	if !eb.Return {
		t.Fatalf("block with return not marked Return")
	}
	if reaches(eb, lb) {
		t.Fatalf("return must not fall through to following code")
	}
}

func TestPanicMarksBlock(t *testing.T) {
	g := build(t, `
		if cond() {
			panic("boom")
		}
		late()`)
	var panicky *Block
	for _, b := range g.Blocks {
		if b.Panics {
			panicky = b
		}
	}
	if panicky == nil {
		t.Fatalf("no block marked Panics")
	}
	if reaches(panicky, blockWithCall(t, g, "late")) {
		t.Fatalf("panic must not fall through")
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	g := build(t, `
		switch tag() {
		case 1:
			one()
			fallthrough
		case 2:
			two()
		default:
			dflt()
		}
		after()`)
	one, two, ab := blockWithCall(t, g, "one"), blockWithCall(t, g, "two"), blockWithCall(t, g, "after")
	if !reaches(one, two) {
		t.Fatalf("fallthrough must connect case 1 to case 2")
	}
	for _, c := range []*Block{one, two, blockWithCall(t, g, "dflt")} {
		if !reaches(c, ab) {
			t.Fatalf("case block %d must reach the switch exit", c.Index)
		}
	}
	// With a default clause, the tag block must NOT bypass all cases.
	tag := blockWithCall(t, g, "tag")
	for _, s := range tag.Succs {
		if s == ab {
			t.Fatalf("switch with default must not have a direct tag->exit edge")
		}
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, `
	outer:
		for a() {
			for bcond() {
				if c() {
					break outer
				}
				inner()
			}
		}
		after()`)
	cb, ab, ib := blockWithCall(t, g, "c"), blockWithCall(t, g, "after"), blockWithCall(t, g, "inner")
	if !reaches(cb, ab) {
		t.Fatalf("labeled break must reach the outer loop's exit")
	}
	// The break path must not pass through the inner loop body again:
	// find the break block (successor of cb that is not ib's block).
	_ = ib
}

func TestSelectCases(t *testing.T) {
	g := build(t, `
		select {
		case <-ch1():
			one()
		case <-ch2():
			two()
		}
		after()`)
	one, two, ab := blockWithCall(t, g, "one"), blockWithCall(t, g, "two"), blockWithCall(t, g, "after")
	if reaches(one, two) || reaches(two, one) {
		t.Fatalf("select cases must be mutually exclusive")
	}
	if !reaches(one, ab) || !reaches(two, ab) {
		t.Fatalf("select cases must reach the join")
	}
}

func TestRevPostorderEntryFirst(t *testing.T) {
	g := build(t, `
		if cond() {
			b()
		}
		for x() {
			y()
		}
		d()`)
	rpo := g.RevPostorder()
	if len(rpo) == 0 || rpo[0] != g.Blocks[0] {
		t.Fatalf("reverse postorder must start at the entry block")
	}
	// Every block must appear at most once.
	seen := map[int]bool{}
	for _, b := range rpo {
		if seen[b.Index] {
			t.Fatalf("block %d appears twice in RPO", b.Index)
		}
		seen[b.Index] = true
	}
}

// TestMustAnalysisDeadlineShape runs the exact lattice problem the
// deadline analyzer solves: fact 0 is "armed"; the arm call generates it;
// the must-meet requires it on every path into the read.
func TestMustAnalysisDeadlineShape(t *testing.T) {
	const armed = 0
	run := func(body string) (inAtRead Bits) {
		g := build(t, body)
		in := g.SolveGenKill(func(b *Block) GenKill {
			var gk GenKill
			if hasCall(b, "arm") {
				gk.Gen = gk.Gen.With(armed)
			}
			return gk
		}, Intersect, 0)
		rb := blockWithCall(t, g, "read")
		return in[rb.Index]
	}

	// Armed on only one branch: must-meet kills the fact at the join.
	in := run(`
		if cond() {
			arm()
		}
		read()`)
	if in.Has(armed) {
		t.Fatalf("armed on one branch only must not survive an Intersect join")
	}

	// Armed on both branches: fact survives.
	in = run(`
		if cond() {
			arm()
		} else {
			arm()
		}
		read()`)
	if !in.Has(armed) {
		t.Fatalf("armed on both branches must survive an Intersect join")
	}

	// Armed before the loop: back edge must not erase it.
	in = run(`
		arm()
		for cond() {
			read()
		}`)
	if !in.Has(armed) {
		t.Fatalf("fact armed before a loop must hold inside it")
	}
}

// TestMayAnalysisReleaseShape runs the poolreturn lattice: fact 0 is
// "released"; Union meet means a release on any path taints later uses.
func TestMayAnalysisReleaseShape(t *testing.T) {
	const released = 0
	g := build(t, `
		if cond() {
			release()
		}
		use()`)
	in := g.SolveGenKill(func(b *Block) GenKill {
		var gk GenKill
		if hasCall(b, "release") {
			gk.Gen = gk.Gen.With(released)
		}
		return gk
	}, Union, 0)
	ub := blockWithCall(t, g, "use")
	if !in[ub.Index].Has(released) {
		t.Fatalf("release on one path must reach the use under a Union meet")
	}
}

func indices(bs []*Block) string {
	var sb strings.Builder
	for i, b := range bs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(string(rune('0' + b.Index)))
	}
	return sb.String()
}
