// Package cfg builds per-function control-flow graphs from go/ast and
// solves forward dataflow problems over them. It is the flow-sensitive
// backbone of the icilint v2 analyzers: the PR 5-8 bug families (unarmed
// wire deadlines, pooled events used after release, stale-roster
// placement) are path properties that the purely syntactic PR 4 walkers
// could not see.
//
// The graph is statement-granular: every Block holds the AST nodes that
// execute in it, in execution order, so an analyzer can refine a block's
// transfer function by scanning Nodes sequentially (an arm followed by a
// read inside one block is armed; the reverse is not). Panic-terminated
// blocks are marked so must-analyses can exclude them from "on all paths"
// obligations.
//
// Like the rest of internal/analysis, this restates the slice of
// golang.org/x/tools (go/cfg, go/ssa's dominance idioms) the repo needs,
// on the stdlib only.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of AST nodes with a single entry point.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Nodes are the statements and sub-expressions that execute in this
	// block, in execution order. An *ast.IfStmt contributes its Init and
	// Cond here; its branches are separate blocks.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block
	// Return marks a block ending in an *ast.ReturnStmt (or falling off
	// the end of the function body).
	Return bool
	// Panics marks a block ending in a call to panic: the function exits
	// abnormally here, so must-release/must-arm obligations do not apply.
	Panics bool
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every block; Blocks[0] is the entry. Unreachable
	// blocks (after return/panic/branch) are retained but have no Preds.
	Blocks []*Block
}

// builder carries the construction state: the current block being filled
// and the branch targets of the enclosing loops/switches.
type builder struct {
	g *CFG
	// cur is the block new nodes append to; nil after a terminator until
	// the next statement starts a fresh (unreachable) block.
	cur *Block
	// breaks/continues map enclosing statements to their exit/backedge
	// targets; labels resolves labeled break/continue/goto.
	breaks    []branchTarget
	continues []branchTarget
	labels    map[string]*labelInfo
	// gotos are forward gotos resolved after the walk.
	gotos []pendingGoto
	// pendingLabel carries the label of an enclosing LabeledStmt to the
	// loop/switch statement it names, so labeled break/continue resolve.
	pendingLabel string
}

type branchTarget struct {
	label string // "" for the innermost unlabeled target
	block *Block
}

type labelInfo struct {
	// block is the labeled statement's entry block (goto target).
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// New builds the CFG of body. Function literals nested inside body are
// treated as opaque values: their statements do not join this graph (an
// analyzer that cares builds a separate CFG per literal).
func New(body *ast.BlockStmt) *CFG {
	b := &builder{g: &CFG{}, labels: map[string]*labelInfo{}}
	entry := b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	if b.cur != nil {
		b.cur.Return = true
	}
	for _, pg := range b.gotos {
		if li, ok := b.labels[pg.label]; ok {
			b.edgeFrom(pg.from, li.block)
		}
	}
	return b.g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// startBlock makes blk current, assuming control flowed here already.
func (b *builder) startBlock(blk *Block) { b.cur = blk }

// edge links the current block to to (no-op when control already ended).
func (b *builder) edge(to *Block) {
	if b.cur != nil {
		b.edgeFrom(b.cur, to)
	}
}

func (b *builder) edgeFrom(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, opening a fresh unreachable
// block if control has terminated (dead code keeps its nodes so analyzers
// can still inspect it).
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		if b.cur == nil {
			b.cur = b.newBlock()
		}
		cond := b.cur
		thenB := b.newBlock()
		b.edgeFrom(cond, thenB)
		var elseB *Block
		if s.Else != nil {
			elseB = b.newBlock()
			b.edgeFrom(cond, elseB)
		}
		join := b.newBlock()
		if s.Else == nil {
			b.edgeFrom(cond, join)
		}
		b.startBlock(thenB)
		b.stmt(s.Body)
		b.edge(join)
		if s.Else != nil {
			b.startBlock(elseB)
			b.stmt(s.Else)
			b.edge(join)
		}
		b.startBlock(join)

	case *ast.ForStmt:
		b.add(s.Init)
		head := b.newBlock() // condition
		b.edge(head)
		b.startBlock(head)
		b.add(s.Cond)
		body := b.newBlock()
		exit := b.newBlock()
		post := b.newBlock() // continue target
		b.edgeFrom(head, body)
		if s.Cond != nil {
			b.edgeFrom(head, exit)
		}
		// An infinite loop (no cond) still gets the exit edge reachable
		// only via break.
		cp := b.pushTargets(labelOf(s, b), exit, post)
		b.startBlock(body)
		b.stmt(s.Body)
		b.popTargets(cp)
		b.edge(post)
		b.startBlock(post)
		b.add(s.Post)
		b.edge(head)
		b.startBlock(exit)

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		b.edge(head)
		b.startBlock(head)
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		body := b.newBlock()
		exit := b.newBlock()
		b.edgeFrom(head, body)
		b.edgeFrom(head, exit)
		cp := b.pushTargets(labelOf(s, b), exit, head)
		b.startBlock(body)
		b.stmt(s.Body)
		b.popTargets(cp)
		b.edge(head)
		b.startBlock(exit)

	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.switchBody(labelOf(s, b), s.Body, func(cc *ast.CaseClause) {
			for _, e := range cc.List {
				b.add(e)
			}
		})

	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.switchBody(labelOf(s, b), s.Body, func(cc *ast.CaseClause) {
			for _, e := range cc.List {
				b.add(e)
			}
		})

	case *ast.SelectStmt:
		// Every comm clause is a possible successor; the scheduler picks.
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		exit := b.newBlock()
		cp := b.pushTargets(labelOf(s, b), exit, nil)
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			caseB := b.newBlock()
			b.edgeFrom(head, caseB)
			b.startBlock(caseB)
			b.add(cc.Comm)
			b.stmtList(cc.Body)
			b.edge(exit)
		}
		b.popTargets(cp)
		// Control only leaves a select through a case; the degenerate
		// empty select blocks forever and never continues.
		if len(s.Body.List) == 0 {
			b.cur = nil
			return
		}
		b.startBlock(exit)

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edge(target)
		b.startBlock(target)
		b.labels[s.Label.Name] = &labelInfo{block: target}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(b.breaks, s.Label); t != nil {
				b.edge(t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findTarget(b.continues, s.Label); t != nil {
				b.edge(t)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil && s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled structurally by switchBody (fallthrough must be the
			// clause's final statement); nothing to do here.
		}

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.cur.Return = true
		}
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			if b.cur != nil {
				b.cur.Panics = true
			}
			b.cur = nil
		}

	case *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		b.add(s)
	}
}

// switchBody builds the clause blocks of a (type) switch. addCaseExprs
// appends the clause's guard expressions to the clause block.
func (b *builder) switchBody(label string, body *ast.BlockStmt, addCaseExprs func(*ast.CaseClause)) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	exit := b.newBlock()
	cp := b.pushTargets(label, exit, nil)
	hasDefault := false
	var clauseBlocks []*Block
	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if len(cc.List) == 0 {
			hasDefault = true
		}
		caseB := b.newBlock()
		b.edgeFrom(head, caseB)
		clauseBlocks = append(clauseBlocks, caseB)
		clauses = append(clauses, cc)
	}
	for i, cc := range clauses {
		b.startBlock(clauseBlocks[i])
		addCaseExprs(cc)
		b.stmtList(cc.Body)
		if fallsThrough(cc) && i+1 < len(clauseBlocks) {
			b.edge(clauseBlocks[i+1])
			b.cur = nil
			continue
		}
		b.edge(exit)
	}
	b.popTargets(cp)
	if !hasDefault {
		// No default: the switch may match nothing and fall through.
		b.edgeFrom(head, exit)
	}
	b.startBlock(exit)
}

// fallsThrough reports whether a case clause ends in fallthrough.
func fallsThrough(cc *ast.CaseClause) bool {
	if len(cc.Body) == 0 {
		return false
	}
	br, ok := cc.Body[len(cc.Body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// pushTargets registers the break (and, for loops, continue) targets of
// one enclosing construct; the returned flag feeds popTargets so a switch
// never pops an enclosing loop's continue target.
func (b *builder) pushTargets(label string, brk, cont *Block) bool {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	if cont != nil {
		b.continues = append(b.continues, branchTarget{label: label, block: cont})
		return true
	}
	return false
}

func (b *builder) popTargets(contPushed bool) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if contPushed {
		b.continues = b.continues[:len(b.continues)-1]
	}
}

// findTarget resolves a break/continue to its target block: the innermost
// enclosing construct, or the one carrying the label.
func (b *builder) findTarget(stack []branchTarget, label *ast.Ident) *Block {
	if len(stack) == 0 {
		return nil
	}
	if label == nil {
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

// labelOf consumes the pending label set by the enclosing LabeledStmt.
func labelOf(_ ast.Stmt, b *builder) string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// isPanic reports whether e is a direct call to the builtin panic.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// RevPostorder returns the blocks reachable from the entry in reverse
// postorder — the canonical iteration order for forward dataflow
// worklists (a block's predecessors come before it except on back edges).
func (g *CFG) RevPostorder() []*Block {
	if len(g.Blocks) == 0 {
		return nil
	}
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Blocks[0])
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
