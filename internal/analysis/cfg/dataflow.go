package cfg

// Forward dataflow over the CFG: a reverse-postorder worklist driving
// per-block transfer functions to a fixpoint, plus the small gen/kill
// bitvector lattice the icilint analyzers share. Up to 64 facts per
// problem — a per-function cap the analyzers never approach (they track
// one armed-deadline bit or one released-bit per pooled variable).

// Bits is a set of dataflow facts, one per bit.
type Bits uint64

// Has reports whether fact i is in the set.
func (b Bits) Has(i int) bool { return b&(1<<uint(i)) != 0 }

// With returns the set plus fact i.
func (b Bits) With(i int) Bits { return b | 1<<uint(i) }

// Without returns the set minus fact i.
func (b Bits) Without(i int) Bits { return b &^ (1 << uint(i)) }

// GenKill is one block's transfer function in the classic form:
// out = (in &^ Kill) | Gen.
type GenKill struct {
	Gen, Kill Bits
}

// Apply runs the transfer function on an input state.
func (gk GenKill) Apply(in Bits) Bits { return (in &^ gk.Kill) | gk.Gen }

// Meet selects how predecessor states combine at a block entry.
type Meet int

const (
	// Union is the may-analysis meet: a fact holds at entry if it held at
	// the exit of ANY predecessor (e.g. "the event may already be
	// released here").
	Union Meet = iota
	// Intersect is the must-analysis meet: a fact holds at entry only if
	// it held at the exit of EVERY predecessor (e.g. "a deadline is armed
	// on all paths reaching this read").
	Intersect
)

// SolveGenKill runs the worklist to a fixpoint and returns the entry
// state of every block (indexed by Block.Index). gk supplies each block's
// transfer function; entryIn seeds the function entry block. For
// Intersect problems, unvisited predecessors start at top (all facts),
// the standard optimistic initialization.
func (g *CFG) SolveGenKill(gk func(*Block) GenKill, meet Meet, entryIn Bits) []Bits {
	return g.Solve(func(b *Block, in Bits) Bits { return gk(b).Apply(in) }, meet, entryIn)
}

// Solve is SolveGenKill with an arbitrary monotone transfer function —
// for analyzers whose block transfer depends on the incoming state (e.g.
// reporting a use only when the fact is absent at that point).
func (g *CFG) Solve(transfer func(*Block, Bits) Bits, meet Meet, entryIn Bits) []Bits {
	n := len(g.Blocks)
	in := make([]Bits, n)
	out := make([]Bits, n)
	visited := make([]bool, n)

	rpo := g.RevPostorder()
	order := make([]int, n) // block index -> worklist priority
	for i := range order {
		order[i] = n // unreachable blocks last
	}
	for i, b := range rpo {
		order[b.Index] = i
	}

	top := ^Bits(0)
	inWork := make([]bool, n)
	var work []*Block
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	for _, b := range rpo {
		push(b)
	}

	for len(work) > 0 {
		// Pop the block with the smallest reverse-postorder rank so the
		// common acyclic case converges in one sweep.
		best := 0
		for i := 1; i < len(work); i++ {
			if order[work[i].Index] < order[work[best].Index] {
				best = i
			}
		}
		b := work[best]
		work[best] = work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.Index] = false

		var newIn Bits
		if b.Index == 0 {
			newIn = entryIn
		} else {
			first := true
			for _, p := range b.Preds {
				po := out[p.Index]
				if meet == Intersect && !visited[p.Index] {
					po = top
				}
				if first {
					newIn = po
					first = false
					continue
				}
				if meet == Union {
					newIn |= po
				} else {
					newIn &= po
				}
			}
			if first { // no predecessors: unreachable
				if meet == Intersect {
					newIn = top
				}
			}
		}
		newOut := transfer(b, newIn)
		if visited[b.Index] && newIn == in[b.Index] && newOut == out[b.Index] {
			continue
		}
		visited[b.Index] = true
		in[b.Index] = newIn
		out[b.Index] = newOut
		for _, s := range b.Succs {
			push(s)
		}
	}
	return in
}
