// Package analysis is the repo's static-analysis framework: a small,
// dependency-free re-statement of the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Diagnostic) plus the package loader, the
// `//icilint:allow` annotation grammar, and the suppression-file format the
// cmd/icilint driver consumes.
//
// The framework exists because the repo's last three PRs each shipped a bug
// family that a repo-specific analyzer catches mechanically: chunk-slice
// aliasing in storage.Store (PR 2), atomic/plain mixed Counter access and
// cross-round retrieve bookkeeping corruption (PR 3), and wall-clock leaks
// that break the "seeded runs produce byte-identical span forests"
// guarantee. The analyzers themselves live in analysis/analyzers; each one
// encodes exactly one of those historical bug families and carries
// analysistest golden fixtures reproducing it.
//
// The x/tools module is deliberately not imported: everything here is built
// on go/ast, go/types, and the stdlib source importer, so the suite builds
// and runs offline with nothing beyond the Go toolchain.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker: a name (the annotation
// category), one-paragraph documentation, and the Run function applied to
// each loaded package.
type Analyzer struct {
	// Name identifies the analyzer in output, in `//icilint:allow Name(...)`
	// annotations, and in suppression-file entries. Lower-case, no spaces.
	Name string
	// Doc is the human-readable description `icilint -list` prints: first
	// line is the summary, the rest is detail.
	Doc string
	// Run inspects one type-checked package and reports findings via
	// pass.Reportf. A returned error aborts the whole lint run (reserved for
	// internal failures, not findings).
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	report    func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

// String renders the go-vet-style one-liner.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// fill populates the flattened JSON position fields from Pos.
func (d *Diagnostic) fill() {
	d.File, d.Line, d.Column = d.Pos.Filename, d.Pos.Line, d.Pos.Column
}

// Run applies the analyzers to pkg, filters findings through the package's
// `//icilint:allow` annotations, and returns the surviving diagnostics
// sorted by position. Malformed or wrong-category annotations surface as
// diagnostics of the pseudo-analyzer "icilint" so a misspelled allow can
// never silently suppress anything.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
		}
	}
	var allows []Allow
	for _, f := range pkg.Files {
		fileAllows, errs := ParseAllows(pkg.Fset, f, known)
		allows = append(allows, fileAllows...)
		diags = append(diags, errs...)
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != allowErrAnalyzer && suppressed(d, allows) {
			continue
		}
		d.fill()
		kept = append(kept, d)
	}
	sortDiagnostics(kept)
	return kept, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
