// Package analysis is the repo's static-analysis framework: a small,
// dependency-free re-statement of the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Diagnostic) plus the package loader, the
// `//icilint:allow` annotation grammar, and the suppression-file format the
// cmd/icilint driver consumes.
//
// The framework exists because the repo's last three PRs each shipped a bug
// family that a repo-specific analyzer catches mechanically: chunk-slice
// aliasing in storage.Store (PR 2), atomic/plain mixed Counter access and
// cross-round retrieve bookkeeping corruption (PR 3), and wall-clock leaks
// that break the "seeded runs produce byte-identical span forests"
// guarantee. The analyzers themselves live in analysis/analyzers; each one
// encodes exactly one of those historical bug families and carries
// analysistest golden fixtures reproducing it.
//
// The x/tools module is deliberately not imported: everything here is built
// on go/ast, go/types, and the stdlib source importer, so the suite builds
// and runs offline with nothing beyond the Go toolchain.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker: a name (the annotation
// category), one-paragraph documentation, and the Run function applied to
// each loaded package.
type Analyzer struct {
	// Name identifies the analyzer in output, in `//icilint:allow Name(...)`
	// annotations, and in suppression-file entries. Lower-case, no spaces.
	Name string
	// Doc is the human-readable description `icilint -list` prints: first
	// line is the summary, the rest is detail.
	Doc string
	// Run inspects one type-checked package and reports findings via
	// pass.Reportf. A returned error aborts the whole lint run (reserved for
	// internal failures, not findings).
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Sources maps each file name (exactly as it appears in Fset
	// positions) to the raw bytes the loader parsed — the substrate for
	// byte-offset SuggestedFix edits and NodeText.
	Sources map[string][]byte
	facts   *FactStore
	report  func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying one suggested fix, which
// `icilint -fix` can apply mechanically.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer:       p.Analyzer.Name,
		Pos:            p.Fset.Position(pos),
		Message:        fmt.Sprintf(format, args...),
		SuggestedFixes: []SuggestedFix{fix},
	})
}

// NodeText returns the exact source text of n, or "" if the file's bytes
// are unavailable (e.g. a Pass constructed without Sources).
func (p *Pass) NodeText(n ast.Node) string {
	start, end := p.Fset.Position(n.Pos()), p.Fset.Position(n.End())
	src, ok := p.Sources[start.Filename]
	if !ok || start.Offset < 0 || end.Offset > len(src) || start.Offset > end.Offset {
		return ""
	}
	return string(src[start.Offset:end.Offset])
}

// ReplaceNode builds a TextEdit swapping n's source text for newText.
// The bool is false when the file's bytes are unavailable.
func (p *Pass) ReplaceNode(n ast.Node, newText string) (TextEdit, bool) {
	start, end := p.Fset.Position(n.Pos()), p.Fset.Position(n.End())
	if _, ok := p.Sources[start.Filename]; !ok {
		return TextEdit{}, false
	}
	return TextEdit{File: start.Filename, Start: start.Offset, End: end.Offset, NewText: newText}, true
}

// ExportObjectFact attaches f to obj under this analyzer's name, for
// import while analyzing downstream packages (RunPackages runs the
// dependency closure in import order, so exporters always run before
// importers). Passing an object that cannot carry facts — nil, a
// builtin, a method on an unnamed receiver — or an unmarshalable fact is
// an analyzer bug and panics.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.facts == nil {
		return // single-package Run: facts have no consumers
	}
	if err := p.facts.export(p.Analyzer.Name, obj, f); err != nil {
		panic(fmt.Sprintf("analyzer %s: %v", p.Analyzer.Name, err))
	}
}

// ImportObjectFact fills f with the fact of f's dynamic type that this
// analyzer exported for obj, reporting whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.lookup(p.Analyzer.Name, obj, f)
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer       string         `json:"analyzer"`
	Pos            token.Position `json:"-"`
	File           string         `json:"file"`
	Line           int            `json:"line"`
	Column         int            `json:"column"`
	Message        string         `json:"message"`
	SuggestedFixes []SuggestedFix `json:"suggested_fixes,omitempty"`
}

// String renders the go-vet-style one-liner.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// fill populates the flattened JSON position fields from Pos.
func (d *Diagnostic) fill() {
	d.File, d.Line, d.Column = d.Pos.Filename, d.Pos.Line, d.Pos.Column
}

// NewDiagnostic builds a fully-filled diagnostic. The icilint driver uses
// it for findings that originate outside any analyzer pass, such as stale
// suppression-file entries under -strict-allow.
func NewDiagnostic(analyzer string, pos token.Position, message string) Diagnostic {
	d := Diagnostic{Analyzer: analyzer, Pos: pos, Message: message}
	d.fill()
	return d
}

// AllowRecord pairs one parsed `//icilint:allow` annotation with the
// number of diagnostics it suppressed during the run. Matched == 0 means
// the annotation is stale: the condition it excuses no longer fires.
type AllowRecord struct {
	Allow
	Matched int
}

// Result is the outcome of RunPackages.
type Result struct {
	// Diagnostics are the surviving findings for the requested packages,
	// globally sorted by file/line/column/analyzer/message.
	Diagnostics []Diagnostic
	// Allows records every annotation seen in the requested packages with
	// its suppression count, for stale-allow reporting.
	Allows []AllowRecord
	// Facts is the fact store the run populated (the one passed in, or a
	// fresh store when nil was given).
	Facts *FactStore
}

// RunPackages applies the analyzers to pkgs and every module-internal
// dependency the loader type-checked on their behalf, in import
// dependency order, sharing facts across the whole run — so an analyzer
// can export a fact about core.Store while analyzing internal/core and
// import it back while analyzing internal/gateway. Diagnostics and allow
// records are collected only for the requested packages; dependencies
// run facts-only. A nil facts store starts empty; passing a decoded
// store replays facts from a previous loader pass.
func RunPackages(l *Loader, pkgs []*Package, analyzers []*Analyzer, facts *FactStore) (*Result, error) {
	if facts == nil {
		facts = NewFactStore()
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	requested := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		requested[p.Path] = true
	}

	// Dependency closure over packages this loader loaded (module-internal
	// imports; the stdlib never carries facts), in deps-first postorder.
	var order []*Package
	inClosure := map[string]bool{}
	var visit func(p *Package)
	visit = func(p *Package) {
		if inClosure[p.Path] {
			return
		}
		inClosure[p.Path] = true
		imps := p.Types.Imports()
		paths := make([]string, 0, len(imps))
		for _, imp := range imps {
			paths = append(paths, imp.Path())
		}
		sort.Strings(paths)
		for _, path := range paths {
			if dep := l.Loaded(path); dep != nil {
				visit(dep)
			}
		}
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}

	res := &Result{Facts: facts}
	for _, pkg := range order {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Sources:   pkg.Sources,
				facts:     facts,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
			}
		}
		if !requested[pkg.Path] {
			continue // dependency analyzed for facts only
		}
		var allows []Allow
		for _, f := range pkg.Files {
			fileAllows, errs := ParseAllows(pkg.Fset, f, known)
			allows = append(allows, fileAllows...)
			diags = append(diags, errs...)
		}
		matched := make([]int, len(allows))
		for _, d := range diags {
			if d.Analyzer != allowErrAnalyzer {
				if i := suppressIndex(d, allows); i >= 0 {
					matched[i]++
					continue
				}
			}
			d.fill()
			res.Diagnostics = append(res.Diagnostics, d)
		}
		for i, a := range allows {
			res.Allows = append(res.Allows, AllowRecord{Allow: a, Matched: matched[i]})
		}
	}
	SortDiagnostics(res.Diagnostics)
	sort.Slice(res.Allows, func(i, j int) bool {
		a, b := res.Allows[i], res.Allows[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.FromLine != b.FromLine {
			return a.FromLine < b.FromLine
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// Run applies the analyzers to one package in isolation, filters findings
// through the package's `//icilint:allow` annotations, and returns the
// surviving diagnostics sorted by position. Malformed or wrong-category
// annotations surface as diagnostics of the pseudo-analyzer "icilint" so
// a misspelled allow can never silently suppress anything. Cross-package
// facts are inert here — use RunPackages for the fact-aware run.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Sources:   pkg.Sources,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
		}
	}
	var allows []Allow
	for _, f := range pkg.Files {
		fileAllows, errs := ParseAllows(pkg.Fset, f, known)
		allows = append(allows, fileAllows...)
		diags = append(diags, errs...)
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != allowErrAnalyzer && suppressed(d, allows) {
			continue
		}
		d.fill()
		kept = append(kept, d)
	}
	SortDiagnostics(kept)
	return kept, nil
}

// SortDiagnostics orders findings by file, line, column, analyzer, and
// message — the byte-stable order every icilint output mode emits.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
