package analysis_test

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"icistrategy/internal/analysis"
)

// writeModule materializes a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// A type error in a dependency pulled in through the import graph must
// surface as a positioned error from Load, not a panic and not a bare
// "import failed": the file and line of the broken code is what the user
// needs to act on.
func TestLoaderTypeErrorMidModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"dep/dep.go": "package dep\n\nfunc Broken() int {\n\treturn undefinedName\n}\n",
		"use/use.go": "package use\n\nimport \"tmpmod/dep\"\n\nfunc Use() int { return dep.Broken() }\n",
	})
	loader, err := analysis.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.Load("./use")
	if err == nil {
		t.Fatal("loading a package with a broken dependency must fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "dep.go:4:") {
		t.Errorf("error does not carry the broken file:line: %v", err)
	}
	if !strings.Contains(msg, "type-checking") {
		t.Errorf("error does not say what failed: %v", err)
	}
}

// A syntax error must likewise come back as a positioned loader error.
func TestLoaderParseErrorIsPositioned(t *testing.T) {
	root := writeModule(t, map[string]string{
		"bad/bad.go": "package bad\n\nfunc Unclosed() {\n",
	})
	loader, err := analysis.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = loader.Load("./bad"); err == nil {
		t.Fatal("loading a package with a syntax error must fail")
	} else if !strings.Contains(err.Error(), "bad.go:") {
		t.Errorf("error does not carry the broken file: %v", err)
	}
}

// loaderMarkFact is the fact used by the round-trip test below.
type loaderMarkFact struct {
	Tag string `json:"tag"`
}

func (*loaderMarkFact) AFact() {}

// Facts exported during one loader pass must survive Encode →
// DecodeFactStore → a FRESH loader in a separate process-equivalent run:
// the serialized keys are (package path, object key) strings, so a
// reloaded types.Object for the same function must find its fact again.
func TestLoaderFactsRoundTripThroughReload(t *testing.T) {
	files := map[string]string{
		"dep/dep.go": "package dep\n\nfunc Target() {}\n",
		"use/use.go": "package use\n\nimport \"tmpmod/dep\"\n\nfunc Use() { dep.Target() }\n",
	}
	root := writeModule(t, files)

	exporter := &analysis.Analyzer{
		Name: "marktest",
		Doc:  "export a fact for every function named Target",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Name.Name != "Target" {
						continue
					}
					if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
						pass.ExportObjectFact(fn, &loaderMarkFact{Tag: "hit"})
					}
				}
			}
			return nil
		},
	}
	// The checker deliberately exports nothing: any fact it sees in the
	// second run can only have come through the decoded store.
	checker := &analysis.Analyzer{
		Name: "marktest",
		Doc:  "report calls to functions carrying a loaderMarkFact",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
					if !ok {
						return true
					}
					var fact loaderMarkFact
					if pass.ImportObjectFact(fn, &fact) {
						pass.Reportf(call.Pos(), "call to marked function (tag %s)", fact.Tag)
					}
					return true
				})
			}
			return nil
		},
	}

	loader1, err := analysis.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	depPkgs, err := loader1.Load("./dep")
	if err != nil {
		t.Fatal(err)
	}
	store := analysis.NewFactStore()
	if _, err := analysis.RunPackages(loader1, depPkgs, []*analysis.Analyzer{exporter}, store); err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("exporter produced no facts")
	}
	enc, err := store.Encode()
	if err != nil {
		t.Fatal(err)
	}

	decoded, err := analysis.DecodeFactStore(enc)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Len() != store.Len() {
		t.Fatalf("decoded %d facts, exported %d", decoded.Len(), store.Len())
	}
	loader2, err := analysis.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	usePkgs, err := loader2.Load("./use")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.RunPackages(loader2, usePkgs, []*analysis.Analyzer{checker}, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 1 || !strings.Contains(res.Diagnostics[0].Message, "tag hit") {
		t.Fatalf("fact did not survive the reload: diagnostics = %+v", res.Diagnostics)
	}
}
