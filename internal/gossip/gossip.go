// Package gossip provides the broadcast primitives the strategies use on
// top of the simulated network:
//
//   - Flooder: push gossip with duplicate suppression and configurable
//     fanout — the Bitcoin-style dissemination the full-replication
//     baseline pays for (every node receives a block several times).
//   - Tree: deterministic balanced b-ary multicast over an ordered member
//     list — each member receives the payload exactly once. The RapidChain
//     baseline uses it to model IDA-gossip's near-1x dissemination inside a
//     committee, and ICIStrategy's leaders use it for header announcements.
//
// Both primitives are per-node engines: the owning node's message
// dispatcher forwards envelopes of the engine's kind to HandleMessage.
package gossip

import (
	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/simnet"
)

// Envelope wraps a gossiped payload with its dedup identity.
type Envelope struct {
	ID      blockcrypto.Hash
	Payload any
}

// Deliver is invoked exactly once per engine per unique gossip ID, on the
// first arrival.
type Deliver func(net *simnet.Network, from simnet.NodeID, env Envelope, size int)

// Flooder implements push gossip: on first receipt of an ID, deliver it and
// relay to Fanout random peers (excluding the sender). Duplicates are
// counted but not re-relayed, which is exactly the redundancy the
// communication experiment measures.
type Flooder struct {
	Self    simnet.NodeID
	Peers   []simnet.NodeID // candidate relay targets, excluding Self
	Fanout  int
	Kind    string // message kind on the wire, e.g. "flood/block"
	OnFirst Deliver

	rng        *blockcrypto.RNG
	seen       map[blockcrypto.Hash]bool
	duplicates int64
}

// NewFlooder builds a flooding engine for one node.
func NewFlooder(self simnet.NodeID, peers []simnet.NodeID, fanout int, kind string, rng *blockcrypto.RNG, onFirst Deliver) *Flooder {
	return &Flooder{
		Self:    self,
		Peers:   peers,
		Fanout:  fanout,
		Kind:    kind,
		OnFirst: onFirst,
		rng:     rng,
		seen:    make(map[blockcrypto.Hash]bool),
	}
}

// Broadcast originates a new gossip: delivers locally and relays.
func (f *Flooder) Broadcast(net *simnet.Network, env Envelope, size int) {
	if f.seen[env.ID] {
		return
	}
	f.seen[env.ID] = true
	f.relay(net, env, size, f.Self)
}

// HandleMessage processes an incoming flood message; the node dispatcher
// routes messages of f.Kind here.
func (f *Flooder) HandleMessage(net *simnet.Network, msg simnet.Message) {
	env, ok := msg.Payload.(Envelope)
	if !ok {
		return
	}
	if f.seen[env.ID] {
		f.duplicates++
		return
	}
	f.seen[env.ID] = true
	if f.OnFirst != nil {
		f.OnFirst(net, msg.From, env, msg.Size)
	}
	f.relay(net, env, msg.Size, msg.From)
}

// Duplicates returns how many redundant copies this node received.
func (f *Flooder) Duplicates() int64 { return f.duplicates }

func (f *Flooder) relay(net *simnet.Network, env Envelope, size int, exclude simnet.NodeID) {
	if f.Fanout <= 0 || len(f.Peers) == 0 {
		return
	}
	targets := pickDistinct(f.Peers, f.Fanout, exclude, f.rng)
	for _, t := range targets {
		// Best effort: a down peer drops the copy, which is what real
		// gossip tolerates by design.
		_ = net.Send(simnet.Message{From: f.Self, To: t, Kind: f.Kind, Size: size, Payload: env})
	}
}

// pickDistinct samples up to k distinct peers, skipping exclude.
func pickDistinct(peers []simnet.NodeID, k int, exclude simnet.NodeID, rng *blockcrypto.RNG) []simnet.NodeID {
	if k >= len(peers) {
		out := make([]simnet.NodeID, 0, len(peers))
		for _, p := range peers {
			if p != exclude {
				out = append(out, p)
			}
		}
		return out
	}
	out := make([]simnet.NodeID, 0, k)
	seen := make(map[simnet.NodeID]bool, k+1)
	seen[exclude] = true
	for attempts := 0; len(out) < k && attempts < 8*k+16; attempts++ {
		p := peers[rng.Intn(len(peers))]
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// Tree is a deterministic balanced b-ary multicast over an ordered member
// list. Every member receives the payload exactly once; the position of a
// node in the list determines its children. The root is the list position
// of the originator.
type Tree struct {
	Members []simnet.NodeID // full ordered membership, including Self
	Self    simnet.NodeID
	Arity   int
	Kind    string
	OnFirst Deliver

	seen       map[blockcrypto.Hash]bool
	duplicates int64
}

// NewTree builds a tree-multicast engine for one node.
func NewTree(self simnet.NodeID, members []simnet.NodeID, arity int, kind string, onFirst Deliver) *Tree {
	if arity < 2 {
		arity = 2
	}
	return &Tree{
		Members: members,
		Self:    self,
		Arity:   arity,
		Kind:    kind,
		OnFirst: onFirst,
		seen:    make(map[blockcrypto.Hash]bool),
	}
}

// treeEnvelope carries the rotation so every node computes the same tree.
type treeEnvelope struct {
	Env  Envelope
	Root int // index of the originator in Members
}

// indexOf returns the position of id in members, or -1.
func indexOf(members []simnet.NodeID, id simnet.NodeID) int {
	for i, m := range members {
		if m == id {
			return i
		}
	}
	return -1
}

// Broadcast originates a multicast from Self to all other members.
func (t *Tree) Broadcast(net *simnet.Network, env Envelope, size int) {
	root := indexOf(t.Members, t.Self)
	if root < 0 {
		return
	}
	t.seen[env.ID] = true
	t.forward(net, treeEnvelope{Env: env, Root: root}, size, 0)
}

// HandleMessage processes an incoming tree multicast message.
func (t *Tree) HandleMessage(net *simnet.Network, msg simnet.Message) {
	te, ok := msg.Payload.(treeEnvelope)
	if !ok {
		return
	}
	if t.seen[te.Env.ID] {
		// A clean tree delivers exactly once; duplicates mean the network
		// re-delivered (fault injection) or the membership views diverged.
		t.duplicates++
		return
	}
	t.seen[te.Env.ID] = true
	if t.OnFirst != nil {
		t.OnFirst(net, msg.From, te.Env, msg.Size)
	}
	self := indexOf(t.Members, t.Self)
	if self < 0 {
		return
	}
	// Virtual position relative to the root rotation.
	n := len(t.Members)
	pos := (self - te.Root + n) % n
	t.forward(net, te, msg.Size, pos)
}

// Duplicates returns how many redundant copies this node received. It is 0
// in a fault-free run (the tree's exactly-once property) and counts network
// re-deliveries under fault injection.
func (t *Tree) Duplicates() int64 { return t.duplicates }

// forward sends to the children of virtual position pos.
func (t *Tree) forward(net *simnet.Network, te treeEnvelope, size int, pos int) {
	n := len(t.Members)
	for c := 1; c <= t.Arity; c++ {
		child := pos*t.Arity + c
		if child >= n {
			break
		}
		target := t.Members[(child+te.Root)%n]
		_ = net.Send(simnet.Message{From: t.Self, To: target, Kind: t.Kind, Size: size, Payload: te})
	}
}
