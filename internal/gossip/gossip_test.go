package gossip

import (
	"testing"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/simnet"
)

// floodNet wires n nodes, each running a Flooder, and returns per-node
// delivery counts.
func floodNet(t *testing.T, n, fanout int) (*simnet.Network, []*Flooder, []int) {
	t.Helper()
	net := simnet.New(simnet.ConstantLatency(time.Millisecond))
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	flooders := make([]*Flooder, n)
	delivered := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		peers := make([]simnet.NodeID, 0, n-1)
		for _, id := range ids {
			if id != ids[i] {
				peers = append(peers, id)
			}
		}
		flooders[i] = NewFlooder(ids[i], peers, fanout, "flood/test",
			blockcrypto.NewRNG(uint64(100+i)),
			func(_ *simnet.Network, _ simnet.NodeID, _ Envelope, _ int) {
				delivered[i]++
			})
		f := flooders[i]
		if err := net.AddNode(ids[i], simnet.HandlerFunc(func(nw *simnet.Network, m simnet.Message) {
			f.HandleMessage(nw, m)
		}), simnet.Coord{X: float64(i), Y: 0}); err != nil {
			t.Fatal(err)
		}
	}
	return net, flooders, delivered
}

func TestFloodReachesEveryone(t *testing.T) {
	// Push gossip needs fanout ≳ ln(n) for full coverage; 8 over 50 nodes
	// is comfortably above, and the seeded RNG keeps the run deterministic.
	net, flooders, delivered := floodNet(t, 50, 8)
	env := Envelope{ID: blockcrypto.Sum256([]byte("block-1")), Payload: "b"}
	flooders[0].Broadcast(net, env, 1000)
	net.RunUntilIdle()
	for i := 1; i < len(delivered); i++ {
		if delivered[i] != 1 {
			t.Fatalf("node %d delivered %d times, want exactly 1", i, delivered[i])
		}
	}
	if delivered[0] != 0 {
		t.Fatal("originator delivered its own gossip via OnFirst")
	}
}

func TestFloodDuplicateSuppression(t *testing.T) {
	net, flooders, _ := floodNet(t, 30, 6)
	env := Envelope{ID: blockcrypto.Sum256([]byte("dup")), Payload: nil}
	flooders[0].Broadcast(net, env, 100)
	net.RunUntilIdle()
	var dups int64
	for _, f := range flooders {
		dups += f.Duplicates()
	}
	if dups == 0 {
		t.Fatal("fanout 6 in a 30-node flood should produce duplicates")
	}
	// Total receives = deliveries + duplicates = total sends.
	total := net.TotalTraffic()
	if total.MsgsRecv != total.MsgsSent {
		t.Fatalf("recv %d != sent %d with no failures", total.MsgsRecv, total.MsgsSent)
	}
}

func TestFloodRebroadcastIgnored(t *testing.T) {
	net, flooders, delivered := floodNet(t, 10, 3)
	env := Envelope{ID: blockcrypto.Sum256([]byte("again")), Payload: nil}
	flooders[0].Broadcast(net, env, 10)
	flooders[0].Broadcast(net, env, 10) // same ID again: no-op
	net.RunUntilIdle()
	for i := 1; i < 10; i++ {
		if delivered[i] != 1 {
			t.Fatalf("node %d delivered %d times", i, delivered[i])
		}
	}
}

func TestFloodSurvivesFailures(t *testing.T) {
	net, flooders, delivered := floodNet(t, 60, 6)
	// Fail 5 nodes; gossip must still reach the vast majority.
	for i := 1; i <= 5; i++ {
		if err := net.SetDown(simnet.NodeID(i), true); err != nil {
			t.Fatal(err)
		}
	}
	env := Envelope{ID: blockcrypto.Sum256([]byte("resilient")), Payload: nil}
	flooders[0].Broadcast(net, env, 50)
	net.RunUntilIdle()
	reached := 0
	for i := 6; i < 60; i++ {
		if delivered[i] == 1 {
			reached++
		}
	}
	if reached < 50 {
		t.Fatalf("only %d of 54 live nodes reached", reached)
	}
}

func TestPickDistinct(t *testing.T) {
	rng := blockcrypto.NewRNG(4)
	peers := []simnet.NodeID{1, 2, 3, 4, 5}
	got := pickDistinct(peers, 3, 2, rng)
	if len(got) != 3 {
		t.Fatalf("picked %d, want 3", len(got))
	}
	seen := map[simnet.NodeID]bool{}
	for _, p := range got {
		if p == 2 {
			t.Fatal("excluded peer picked")
		}
		if seen[p] {
			t.Fatal("duplicate pick")
		}
		seen[p] = true
	}
	// k >= len(peers) returns everyone except the excluded.
	all := pickDistinct(peers, 10, 3, rng)
	if len(all) != 4 {
		t.Fatalf("pickDistinct(all) returned %d", len(all))
	}
}

// treeNet wires n nodes each running a Tree engine.
func treeNet(t *testing.T, n, arity int) (*simnet.Network, []*Tree, []int) {
	t.Helper()
	net := simnet.New(simnet.ConstantLatency(time.Millisecond))
	members := make([]simnet.NodeID, n)
	for i := range members {
		members[i] = simnet.NodeID(i)
	}
	trees := make([]*Tree, n)
	delivered := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		trees[i] = NewTree(members[i], members, arity, "tree/test",
			func(_ *simnet.Network, _ simnet.NodeID, _ Envelope, _ int) {
				delivered[i]++
			})
		tr := trees[i]
		if err := net.AddNode(members[i], simnet.HandlerFunc(func(nw *simnet.Network, m simnet.Message) {
			tr.HandleMessage(nw, m)
		}), simnet.Coord{}); err != nil {
			t.Fatal(err)
		}
	}
	return net, trees, delivered
}

func TestTreeDeliversExactlyOnce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 31, 64, 100} {
		net, trees, delivered := treeNet(t, n, 2)
		env := Envelope{ID: blockcrypto.Sum256([]byte{byte(n)}), Payload: "x"}
		trees[0].Broadcast(net, env, 500)
		net.RunUntilIdle()
		for i := 1; i < n; i++ {
			if delivered[i] != 1 {
				t.Fatalf("n=%d: node %d delivered %d times", n, i, delivered[i])
			}
		}
		// Exactly n-1 messages: each non-root receives once, no redundancy.
		total := net.TotalTraffic()
		if total.MsgsSent != int64(n-1) {
			t.Fatalf("n=%d: %d messages sent, want %d", n, total.MsgsSent, n-1)
		}
	}
}

func TestTreeNonZeroRoot(t *testing.T) {
	net, trees, delivered := treeNet(t, 20, 3)
	env := Envelope{ID: blockcrypto.Sum256([]byte("rooted")), Payload: nil}
	trees[13].Broadcast(net, env, 100)
	net.RunUntilIdle()
	for i := 0; i < 20; i++ {
		want := 1
		if i == 13 {
			want = 0
		}
		if delivered[i] != want {
			t.Fatalf("node %d delivered %d times, want %d", i, delivered[i], want)
		}
	}
}

func TestTreeLatencyLogarithmic(t *testing.T) {
	// With unit latency, depth of a binary tree over 64 nodes is 6 hops;
	// over 8 nodes it is 3. Completion time must reflect depth, not size.
	run := func(n int) time.Duration {
		net, trees, _ := treeNet(t, n, 2)
		env := Envelope{ID: blockcrypto.Sum256([]byte{byte(n), 2}), Payload: nil}
		trees[0].Broadcast(net, env, 10)
		net.RunUntilIdle()
		return net.Now()
	}
	t64, t8 := run(64), run(8)
	if t64 > 3*t8 {
		t.Fatalf("64-node tree took %v vs 8-node %v: not logarithmic", t64, t8)
	}
}

func TestTreeBroadcastFromNonMember(t *testing.T) {
	net := simnet.New(simnet.ConstantLatency(0))
	members := []simnet.NodeID{1, 2, 3}
	tr := NewTree(99, members, 2, "tree/x", nil)
	// Non-member broadcast is a silent no-op, not a panic.
	tr.Broadcast(net, Envelope{ID: blockcrypto.Sum256([]byte("nm"))}, 10)
	if net.Pending() != 0 {
		t.Fatal("non-member broadcast scheduled messages")
	}
}

func TestTreeCountsDuplicatesUnderFaults(t *testing.T) {
	net, trees, delivered := treeNet(t, 16, 2)
	// Duplicate every message; the tree must still deliver exactly once per
	// member and account for every redundant copy it suppressed.
	net.EnableFaults(7, simnet.FaultConfig{DupRate: 1})
	env := Envelope{ID: blockcrypto.Sum256([]byte("dup-storm")), Payload: "x"}
	trees[0].Broadcast(net, env, 200)
	net.RunUntilIdle()
	var dups int64
	for i, tr := range trees {
		if i != 0 && delivered[i] != 1 {
			t.Fatalf("node %d delivered %d times under duplication", i, delivered[i])
		}
		dups += tr.Duplicates()
	}
	if dups == 0 {
		t.Fatal("duplication faults produced no counted duplicates")
	}
}
