// Package baseline implements the comparison strategies ICIStrategy is
// evaluated against.
//
// The full-replication (Bitcoin-style) baseline lives in internal/strategy
// next to the Accountant interface; this package adds the RapidChain-style
// model: the network is partitioned into committees (shards); each block
// belongs to exactly one shard and is fully replicated on every member of
// that shard's committee. A committee member therefore stores its shard's
// complete history — roughly 1/k of the network's data, replicated
// committee-size times across the network. ICIStrategy's headline claim is
// that it needs 25 % of this per-node footprint at the paper's parameters.
package baseline

import (
	"errors"
	"fmt"

	"icistrategy/internal/chain"
	"icistrategy/internal/cluster"
	"icistrategy/internal/strategy"
)

// Baseline errors.
var (
	ErrNilAssignment = errors.New("baseline: nil committee assignment")
)

// RapidChain is the sharded-storage accountant. Node i belongs to the
// committee the assignment gives it; block h belongs to shard h mod k
// (RapidChain routes transactions to committees by ID prefix — uniform
// round-robin over heights is the equivalent steady state).
type RapidChain struct {
	assignment *cluster.Assignment
	blocks     int
	// shardBody[s] is the total body bytes of shard s's blocks.
	shardBody []int64
	// shardHeaders[s] is the header bytes of shard s's blocks.
	shardHeaders []int64
}

var _ strategy.Accountant = (*RapidChain)(nil)

// NewRapidChain builds the model over a committee assignment (use
// cluster.Partition with the committee count as k).
func NewRapidChain(asg *cluster.Assignment) (*RapidChain, error) {
	if asg == nil {
		return nil, ErrNilAssignment
	}
	if err := asg.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	k := asg.NumClusters()
	return &RapidChain{
		assignment:   asg,
		shardBody:    make([]int64, k),
		shardHeaders: make([]int64, k),
	}, nil
}

// Name implements strategy.Accountant.
func (r *RapidChain) Name() string { return "rapidchain" }

// NumCommittees returns the shard count k.
func (r *RapidChain) NumCommittees() int { return r.assignment.NumClusters() }

// AddBlock implements strategy.Accountant: the next block lands on shard
// (height mod k) and is fully replicated inside that committee.
func (r *RapidChain) AddBlock(bodySize int64) {
	shard := r.blocks % r.NumCommittees()
	r.shardBody[shard] += bodySize
	r.shardHeaders[shard] += int64(chain.HeaderSize)
	r.blocks++
}

// NumBlocks implements strategy.Accountant.
func (r *RapidChain) NumBlocks() int { return r.blocks }

// NumNodes implements strategy.Accountant.
func (r *RapidChain) NumNodes() int { return len(r.assignment.ClusterOf) }

// NodeBytes implements strategy.Accountant: a member stores its own
// shard's headers and full bodies.
func (r *RapidChain) NodeBytes(node int) (int64, error) {
	if node < 0 || node >= r.NumNodes() {
		return 0, strategy.ErrNodeOutOfRange
	}
	shard := r.assignment.ClusterOf[node]
	return r.shardHeaders[shard] + r.shardBody[shard], nil
}

// BootstrapBytes implements strategy.Accountant: a node joining a
// RapidChain committee downloads that committee's whole shard.
func (r *RapidChain) BootstrapBytes(node int) (int64, error) {
	return r.NodeBytes(node)
}
