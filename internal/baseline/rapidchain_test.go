package baseline

import (
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/cluster"
	"icistrategy/internal/simnet"
	"icistrategy/internal/strategy"
)

func committees(t testing.TB, n, k int) *cluster.Assignment {
	t.Helper()
	coords := simnet.RandomCoords(n, 60, blockcrypto.NewRNG(3))
	asg, err := cluster.Partition(cluster.BalancedKMeans, coords, k, blockcrypto.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	return asg
}

func TestNewRapidChainValidation(t *testing.T) {
	if _, err := NewRapidChain(nil); err == nil {
		t.Fatal("nil assignment accepted")
	}
}

func TestRapidChainShardStorage(t *testing.T) {
	asg := committees(t, 64, 4)
	rc, err := NewRapidChain(asg)
	if err != nil {
		t.Fatal(err)
	}
	if rc.NumCommittees() != 4 || rc.NumNodes() != 64 {
		t.Fatalf("shape: %d committees, %d nodes", rc.NumCommittees(), rc.NumNodes())
	}
	// 8 equal blocks: every shard receives exactly 2.
	const body = 10_000
	for b := 0; b < 8; b++ {
		rc.AddBlock(body)
	}
	if rc.NumBlocks() != 8 {
		t.Fatalf("NumBlocks() = %d", rc.NumBlocks())
	}
	want := int64(2*body + 2*chain.HeaderSize)
	for i := 0; i < 64; i++ {
		got, err := rc.NodeBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("node %d stores %d, want %d", i, got, want)
		}
		bs, _ := rc.BootstrapBytes(i)
		if bs != got {
			t.Fatalf("bootstrap %d != storage %d", bs, got)
		}
	}
}

func TestRapidChainVsFullReplication(t *testing.T) {
	// RapidChain per-node storage must be ~1/k of full replication.
	const n, k, blocks, body = 64, 4, 40, 25_000
	asg := committees(t, n, k)
	rc, err := NewRapidChain(asg)
	if err != nil {
		t.Fatal(err)
	}
	full := strategy.NewFullReplication(n)
	for b := 0; b < blocks; b++ {
		rc.AddBlock(body)
		full.AddBlock(body)
	}
	rcMean, err := strategy.MeanNodeBytes(rc)
	if err != nil {
		t.Fatal(err)
	}
	fullMean, err := strategy.MeanNodeBytes(full)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rcMean / fullMean
	if ratio < 0.2 || ratio > 0.3 { // ~1/4
		t.Fatalf("rapidchain/full ratio = %.3f, want ~0.25", ratio)
	}
}

func TestRapidChainNodeBytesRange(t *testing.T) {
	rc, _ := NewRapidChain(committees(t, 8, 2))
	if _, err := rc.NodeBytes(-1); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := rc.NodeBytes(8); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestRapidChainName(t *testing.T) {
	rc, _ := NewRapidChain(committees(t, 8, 2))
	if rc.Name() != "rapidchain" {
		t.Fatalf("Name() = %q", rc.Name())
	}
}
