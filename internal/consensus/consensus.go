// Package consensus implements the intra-cluster agreement machinery
// ICIStrategy's collaborative verification relies on: rotating leader
// selection, signed block votes, and quorum aggregation with Byzantine
// fault bounds (a cluster of size n tolerates f = ⌊(n−1)/3⌋ faulty members
// and commits on n−f approvals, the 2f+1 of the n=3f+1 case).
package consensus

import (
	"errors"
	"fmt"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/simnet"
)

// Consensus errors.
var (
	ErrEmptyMembership = errors.New("consensus: empty membership")
	ErrNotMember       = errors.New("consensus: voter is not a member")
	ErrEquivocation    = errors.New("consensus: voter already voted differently")
	ErrWrongSubject    = errors.New("consensus: vote is for a different block")
)

// FaultBound returns f, the number of Byzantine members a cluster of size n
// tolerates: ⌊(n−1)/3⌋.
func FaultBound(n int) int {
	if n <= 0 {
		return 0
	}
	return (n - 1) / 3
}

// QuorumSize returns the approvals needed to commit in a cluster of size n:
// n − f. For n = 3f+1 this is the familiar 2f+1; for other n it is the
// smallest quorum whose pairwise intersections always contain an honest
// member (2q − n > f).
func QuorumSize(n int) int {
	if n <= 0 {
		return 1
	}
	return n - FaultBound(n)
}

// Leader returns the member that leads verification of the block at the
// given height: simple round-robin over the ordered membership, the same
// rule every member can evaluate locally.
func Leader(members []simnet.NodeID, height uint64) (simnet.NodeID, error) {
	if len(members) == 0 {
		return 0, ErrEmptyMembership
	}
	return members[int(height%uint64(len(members)))], nil
}

// Vote is one member's signed verdict on one chunk of a block. ChunkIdx is
// -1 for block-level votes (VoteSet); chunk-level votes (ChunkTable) carry
// the index of the chunk the voter actually verified.
type Vote struct {
	Voter     simnet.NodeID
	Block     blockcrypto.Hash
	ChunkIdx  int
	Approve   bool
	Signature []byte
}

// voteSigningBytes is the canonical byte string a vote signature covers.
func voteSigningBytes(voter simnet.NodeID, block blockcrypto.Hash, chunkIdx int, approve bool) []byte {
	buf := make([]byte, 0, 16+blockcrypto.HashSize+1)
	buf = append(buf,
		byte(voter>>56), byte(voter>>48), byte(voter>>40), byte(voter>>32),
		byte(voter>>24), byte(voter>>16), byte(voter>>8), byte(voter))
	buf = append(buf, block[:]...)
	ci := uint64(int64(chunkIdx))
	buf = append(buf,
		byte(ci>>56), byte(ci>>48), byte(ci>>40), byte(ci>>32),
		byte(ci>>24), byte(ci>>16), byte(ci>>8), byte(ci))
	if approve {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// SignVote produces a signed block-level vote (ChunkIdx -1).
func SignVote(voter simnet.NodeID, block blockcrypto.Hash, approve bool, key blockcrypto.KeyPair) Vote {
	return SignChunkVote(voter, block, -1, approve, key)
}

// SignChunkVote produces a signed vote about one chunk.
func SignChunkVote(voter simnet.NodeID, block blockcrypto.Hash, chunkIdx int, approve bool, key blockcrypto.KeyPair) Vote {
	return Vote{
		Voter:     voter,
		Block:     block,
		ChunkIdx:  chunkIdx,
		Approve:   approve,
		Signature: key.Sign(voteSigningBytes(voter, block, chunkIdx, approve)),
	}
}

// VerifyVote checks the vote's signature against the voter's public key.
func VerifyVote(v Vote, pub []byte) error {
	return blockcrypto.Verify(pub, voteSigningBytes(v.Voter, v.Block, v.ChunkIdx, v.Approve), v.Signature)
}

// EncodedVoteSize is the wire size of a vote used for traffic accounting.
const EncodedVoteSize = 16 + blockcrypto.HashSize + 1 + blockcrypto.SignatureSize

// Decision is the state of a vote aggregation.
type Decision int

// Possible aggregation outcomes.
const (
	Pending Decision = iota + 1
	Committed
	Rejected
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Pending:
		return "pending"
	case Committed:
		return "committed"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// VoteSet aggregates votes from one cluster about one block. The leader
// holds one per in-flight block. Not safe for concurrent use.
type VoteSet struct {
	block    blockcrypto.Hash
	members  map[simnet.NodeID]bool
	votes    map[simnet.NodeID]bool // voter -> approve
	quorum   int
	rejectAt int // votes against needed to prove the block can never commit
}

// NewVoteSet starts aggregation for block among the given members.
func NewVoteSet(block blockcrypto.Hash, members []simnet.NodeID) (*VoteSet, error) {
	if len(members) == 0 {
		return nil, ErrEmptyMembership
	}
	ms := make(map[simnet.NodeID]bool, len(members))
	for _, m := range members {
		ms[m] = true
	}
	n := len(members)
	return &VoteSet{
		block:   block,
		members: ms,
		votes:   make(map[simnet.NodeID]bool, n),
		quorum:  QuorumSize(n),
		// Once more than n - quorum members reject, quorum approvals are
		// unreachable.
		rejectAt: n - QuorumSize(n) + 1,
	}, nil
}

// Quorum returns the approval count needed to commit.
func (vs *VoteSet) Quorum() int { return vs.quorum }

// Add records one vote and returns the updated decision. Votes from
// non-members and duplicate consistent votes are tolerated (idempotent);
// equivocation (same voter, different verdict) is an error.
func (vs *VoteSet) Add(v Vote) (Decision, error) {
	if v.Block != vs.block {
		return vs.Decision(), ErrWrongSubject
	}
	if !vs.members[v.Voter] {
		return vs.Decision(), fmt.Errorf("%w: %d", ErrNotMember, v.Voter)
	}
	if prev, ok := vs.votes[v.Voter]; ok {
		if prev != v.Approve {
			return vs.Decision(), fmt.Errorf("%w: %d", ErrEquivocation, v.Voter)
		}
		return vs.Decision(), nil
	}
	vs.votes[v.Voter] = v.Approve
	return vs.Decision(), nil
}

// Approvals returns the current number of approve votes.
func (vs *VoteSet) Approvals() int {
	n := 0
	for _, ok := range vs.votes {
		if ok {
			n++
		}
	}
	return n
}

// Rejections returns the current number of reject votes.
func (vs *VoteSet) Rejections() int {
	return len(vs.votes) - vs.Approvals()
}

// Decision returns the current aggregation state.
func (vs *VoteSet) Decision() Decision {
	if vs.Approvals() >= vs.quorum {
		return Committed
	}
	if vs.Rejections() >= vs.rejectAt {
		return Rejected
	}
	return Pending
}
