package consensus

import (
	"fmt"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
	"icistrategy/internal/trace"
)

// ChunkTable aggregates per-chunk verification votes for one block inside
// one cluster. ICIStrategy's collaborative verification commits a block in
// a cluster when every chunk has been approved by CoverQuorum distinct
// members ("every byte of the block was verified by someone"), and rejects
// it when any chunk has been rejected by RejectQuorum distinct members
// (more rejections than the Byzantine bound can explain — the data itself
// is bad).
type ChunkTable struct {
	block        blockcrypto.Hash
	parts        int
	coverQuorum  int
	rejectQuorum int
	approve      []map[simnet.NodeID]bool
	reject       []map[simnet.NodeID]bool
	// terminal latches the first Committed/Rejected decision: a decided
	// block stays decided no matter what trickles in afterwards.
	terminal Decision
	obs      VoteObserver
}

// VoteObserver carries the observability hooks a leader attaches to its
// vote round: every counted vote, every equivocation, and the terminal
// decision become trace points under Parent and increments on the named
// registry counters. The zero VoteObserver (and nil counters/tracer inside
// a non-zero one) is a valid no-op.
type VoteObserver struct {
	Tracer *trace.Tracer
	Parent trace.SpanID
	Node   int64
	// Votes counts votes accepted into the table; Equivocations counts
	// conflicting votes rejected; Decisions counts terminal decisions
	// (one per decided block).
	Votes         *metrics.Counter
	Equivocations *metrics.Counter
	Decisions     *metrics.Counter
}

// Instrument attaches observability hooks to this vote round.
func (t *ChunkTable) Instrument(obs VoteObserver) { t.obs = obs }

func inc(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

// CoverQuorumFor returns the per-chunk approval quorum used by a cluster of
// size n with replication r: min(r, f+1). With r > f+1 extra approvals add
// no safety, and with small r the cluster accepts the configured custody
// redundancy as its verification redundancy.
func CoverQuorumFor(n, r int) int {
	q := FaultBound(n) + 1
	if r < q {
		q = r
	}
	if q < 1 {
		q = 1
	}
	return q
}

// NewChunkTable starts aggregation for a block split into parts chunks in a
// cluster of size n with replication r.
func NewChunkTable(block blockcrypto.Hash, parts, n, r int) (*ChunkTable, error) {
	if parts < 1 {
		return nil, fmt.Errorf("consensus: parts must be positive, got %d", parts)
	}
	if n < 1 {
		return nil, ErrEmptyMembership
	}
	t := &ChunkTable{
		block:        block,
		parts:        parts,
		coverQuorum:  CoverQuorumFor(n, r),
		rejectQuorum: FaultBound(n) + 1,
		approve:      make([]map[simnet.NodeID]bool, parts),
		reject:       make([]map[simnet.NodeID]bool, parts),
	}
	for i := 0; i < parts; i++ {
		t.approve[i] = make(map[simnet.NodeID]bool)
		t.reject[i] = make(map[simnet.NodeID]bool)
	}
	return t, nil
}

// CoverQuorum returns the per-chunk approval quorum.
func (t *ChunkTable) CoverQuorum() int { return t.coverQuorum }

// RejectQuorum returns the per-chunk rejection threshold.
func (t *ChunkTable) RejectQuorum() int { return t.rejectQuorum }

// Parts returns the chunk count.
func (t *ChunkTable) Parts() int { return t.parts }

// Add records one chunk vote. Conflicting votes by the same member on the
// same chunk are equivocation. The caller is responsible for signature
// verification and for filtering voters that were never assigned the chunk.
func (t *ChunkTable) Add(v Vote) (Decision, error) {
	if v.Block != t.block {
		return t.Decision(), ErrWrongSubject
	}
	if v.ChunkIdx < 0 || v.ChunkIdx >= t.parts {
		return t.Decision(), fmt.Errorf("consensus: chunk index %d out of [0,%d)", v.ChunkIdx, t.parts)
	}
	app, rej := t.approve[v.ChunkIdx], t.reject[v.ChunkIdx]
	if v.Approve {
		if rej[v.Voter] {
			t.observeEquivocation(v)
			return t.Decision(), fmt.Errorf("%w: %d on chunk %d", ErrEquivocation, v.Voter, v.ChunkIdx)
		}
		app[v.Voter] = true
	} else {
		if app[v.Voter] {
			t.observeEquivocation(v)
			return t.Decision(), fmt.Errorf("%w: %d on chunk %d", ErrEquivocation, v.Voter, v.ChunkIdx)
		}
		rej[v.Voter] = true
	}
	inc(t.obs.Votes)
	if t.obs.Tracer.Enabled() {
		errStr := ""
		if !v.Approve {
			errStr = "reject"
		}
		t.obs.Tracer.Point(t.obs.Parent, "consensus", fmt.Sprintf("vote[%d]", v.ChunkIdx), int64(v.Voter), 0, errStr)
	}
	return t.Decision(), nil
}

func (t *ChunkTable) observeEquivocation(v Vote) {
	inc(t.obs.Equivocations)
	t.obs.Tracer.Point(t.obs.Parent, "consensus", fmt.Sprintf("vote[%d]", v.ChunkIdx), int64(v.Voter), 0, "equivocation")
}

// HasVoted reports whether voter already cast a vote (either way) on
// chunkIdx. Leaders use it to drop duplicate deliveries of the same vote
// and to find assignees whose vote never arrived (re-send candidates).
func (t *ChunkTable) HasVoted(voter simnet.NodeID, chunkIdx int) bool {
	if chunkIdx < 0 || chunkIdx >= t.parts {
		return false
	}
	return t.approve[chunkIdx][voter] || t.reject[chunkIdx][voter]
}

// Approvals returns the approval count for one chunk.
func (t *ChunkTable) Approvals(chunkIdx int) int { return len(t.approve[chunkIdx]) }

// Rejections returns the rejection count for one chunk.
func (t *ChunkTable) Rejections(chunkIdx int) int { return len(t.reject[chunkIdx]) }

// Uncovered returns the chunks still short of the approval quorum.
func (t *ChunkTable) Uncovered() []int {
	var out []int
	for i := 0; i < t.parts; i++ {
		if len(t.approve[i]) < t.coverQuorum {
			out = append(out, i)
		}
	}
	return out
}

// Decision returns Committed when every chunk reached the approval quorum,
// Rejected when any chunk reached the rejection threshold, and Pending
// otherwise. Within one Add, rejection wins ties (a proven-bad chunk
// poisons the block); across Adds the first terminal decision is latched —
// votes arriving after a block is decided cannot flip it.
func (t *ChunkTable) Decision() Decision {
	if t.terminal != 0 && t.terminal != Pending {
		return t.terminal
	}
	d := Pending
	for i := 0; i < t.parts; i++ {
		if len(t.reject[i]) >= t.rejectQuorum {
			d = Rejected
			break
		}
	}
	if d == Pending && len(t.Uncovered()) == 0 {
		d = Committed
	}
	if d != Pending {
		t.terminal = d
		inc(t.obs.Decisions)
		errStr := ""
		if d == Rejected {
			errStr = "rejected"
		}
		t.obs.Tracer.Point(t.obs.Parent, "consensus", "decision", t.obs.Node, 0, errStr)
	}
	return d
}

// ApprovalCertificate returns, for each chunk, coverQuorum approving votes
// assembled from the given pool — the commit certificate members verify.
// It returns false if the pool cannot cover every chunk.
func (t *ChunkTable) ApprovalCertificate(pool []Vote) ([]Vote, bool) {
	need := make([]int, t.parts)
	for i := range need {
		need[i] = t.coverQuorum
	}
	seen := make(map[string]bool, len(pool))
	var cert []Vote
	for _, v := range pool {
		if !v.Approve || v.Block != t.block || v.ChunkIdx < 0 || v.ChunkIdx >= t.parts {
			continue
		}
		key := fmt.Sprintf("%d/%d", v.Voter, v.ChunkIdx)
		if seen[key] || need[v.ChunkIdx] == 0 {
			continue
		}
		seen[key] = true
		need[v.ChunkIdx]--
		cert = append(cert, v)
	}
	for _, n := range need {
		if n > 0 {
			return nil, false
		}
	}
	return cert, true
}

// VerifyCertificate checks a commit certificate: every vote approves this
// block, signatures verify under the registry, voters are members, and
// every chunk reaches the approval quorum.
func VerifyCertificate(block blockcrypto.Hash, parts, n, r int, cert []Vote, isMember func(simnet.NodeID) bool, pubKey func(simnet.NodeID) []byte) error {
	t, err := NewChunkTable(block, parts, n, r)
	if err != nil {
		return err
	}
	for _, v := range cert {
		if !v.Approve || v.Block != block {
			continue
		}
		if !isMember(v.Voter) {
			continue
		}
		pub := pubKey(v.Voter)
		if pub == nil || VerifyVote(v, pub) != nil {
			continue
		}
		if _, err := t.Add(v); err != nil {
			return err
		}
	}
	if t.Decision() != Committed {
		return fmt.Errorf("consensus: certificate does not cover all %d chunks with quorum %d", parts, t.coverQuorum)
	}
	return nil
}
