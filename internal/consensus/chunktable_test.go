package consensus

import (
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/simnet"
)

func TestCoverQuorumFor(t *testing.T) {
	cases := []struct{ n, r, want int }{
		{8, 1, 1},  // r below f+1
		{8, 2, 2},  // r below f+1=3
		{8, 5, 3},  // capped at f+1
		{1, 1, 1},  // singleton
		{4, 4, 2},  // f=1, cap 2
		{10, 0, 1}, // floor at 1
	}
	for _, tc := range cases {
		if got := CoverQuorumFor(tc.n, tc.r); got != tc.want {
			t.Fatalf("CoverQuorumFor(%d,%d) = %d, want %d", tc.n, tc.r, got, tc.want)
		}
	}
}

func newTable(t *testing.T, parts, n, r int) (*ChunkTable, blockcrypto.Hash) {
	t.Helper()
	block := blockcrypto.Sum256([]byte("chunked block"))
	tbl, err := NewChunkTable(block, parts, n, r)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, block
}

func TestNewChunkTableValidation(t *testing.T) {
	if _, err := NewChunkTable(blockcrypto.ZeroHash, 0, 4, 1); err == nil {
		t.Fatal("zero parts accepted")
	}
	if _, err := NewChunkTable(blockcrypto.ZeroHash, 4, 0, 1); err == nil {
		t.Fatal("zero members accepted")
	}
}

func TestChunkTableCommitsOnFullCoverage(t *testing.T) {
	tbl, block := newTable(t, 3, 6, 1)
	for idx := 0; idx < 3; idx++ {
		d, err := tbl.Add(Vote{Voter: simnet.NodeID(idx + 1), Block: block, ChunkIdx: idx, Approve: true})
		if err != nil {
			t.Fatal(err)
		}
		if idx < 2 && d != Pending {
			t.Fatalf("decision after %d covered chunks = %v", idx+1, d)
		}
		if idx == 2 && d != Committed {
			t.Fatalf("decision after full coverage = %v", d)
		}
	}
}

func TestChunkTableCoverQuorumTwo(t *testing.T) {
	tbl, block := newTable(t, 2, 8, 2)
	if tbl.CoverQuorum() != 2 {
		t.Fatalf("CoverQuorum() = %d", tbl.CoverQuorum())
	}
	votes := []Vote{
		{Voter: 1, Block: block, ChunkIdx: 0, Approve: true},
		{Voter: 2, Block: block, ChunkIdx: 0, Approve: true},
		{Voter: 3, Block: block, ChunkIdx: 1, Approve: true},
	}
	for _, v := range votes {
		if _, err := tbl.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if d := tbl.Decision(); d != Pending {
		t.Fatalf("decision with chunk 1 half-covered = %v", d)
	}
	if got := tbl.Uncovered(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Uncovered() = %v", got)
	}
	if _, err := tbl.Add(Vote{Voter: 4, Block: block, ChunkIdx: 1, Approve: true}); err != nil {
		t.Fatal(err)
	}
	if d := tbl.Decision(); d != Committed {
		t.Fatalf("decision = %v", d)
	}
}

func TestChunkTableRejectThreshold(t *testing.T) {
	tbl, block := newTable(t, 2, 8, 1) // f=2, rejectQuorum=3
	if tbl.RejectQuorum() != 3 {
		t.Fatalf("RejectQuorum() = %d", tbl.RejectQuorum())
	}
	for i := 0; i < 2; i++ {
		d, err := tbl.Add(Vote{Voter: simnet.NodeID(i + 1), Block: block, ChunkIdx: 0, Approve: false})
		if err != nil {
			t.Fatal(err)
		}
		if d != Pending {
			t.Fatalf("rejected after %d rejects", i+1)
		}
	}
	d, err := tbl.Add(Vote{Voter: 3, Block: block, ChunkIdx: 0, Approve: false})
	if err != nil {
		t.Fatal(err)
	}
	if d != Rejected {
		t.Fatalf("decision after 3 rejects = %v", d)
	}
	if tbl.Rejections(0) != 3 || tbl.Approvals(0) != 0 {
		t.Fatalf("tallies: %d/%d", tbl.Approvals(0), tbl.Rejections(0))
	}
}

func TestChunkTableDecisionsAreFinal(t *testing.T) {
	// Terminal decisions latch: whichever threshold crosses first wins,
	// and later votes cannot flip the outcome.
	t.Run("committed stays committed", func(t *testing.T) {
		tbl, block := newTable(t, 1, 8, 1)
		if d, err := tbl.Add(Vote{Voter: 1, Block: block, ChunkIdx: 0, Approve: true}); err != nil || d != Committed {
			t.Fatalf("d=%v err=%v", d, err)
		}
		for i := 0; i < 3; i++ {
			if d, err := tbl.Add(Vote{Voter: simnet.NodeID(10 + i), Block: block, ChunkIdx: 0, Approve: false}); err != nil || d != Committed {
				t.Fatalf("late reject %d flipped decision to %v (err %v)", i, d, err)
			}
		}
	})
	t.Run("rejected stays rejected", func(t *testing.T) {
		tbl, block := newTable(t, 1, 8, 1)
		for i := 0; i < 3; i++ {
			if _, err := tbl.Add(Vote{Voter: simnet.NodeID(10 + i), Block: block, ChunkIdx: 0, Approve: false}); err != nil {
				t.Fatal(err)
			}
		}
		if d := tbl.Decision(); d != Rejected {
			t.Fatalf("decision = %v, want Rejected", d)
		}
		if d, err := tbl.Add(Vote{Voter: 1, Block: block, ChunkIdx: 0, Approve: true}); err != nil || d != Rejected {
			t.Fatalf("late approval flipped decision to %v (err %v)", d, err)
		}
	})
}

func TestChunkTableEquivocation(t *testing.T) {
	tbl, block := newTable(t, 2, 6, 1)
	if _, err := tbl.Add(Vote{Voter: 1, Block: block, ChunkIdx: 0, Approve: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Add(Vote{Voter: 1, Block: block, ChunkIdx: 0, Approve: false}); err == nil {
		t.Fatal("equivocation accepted")
	}
	// Same voter on a different chunk is fine.
	if _, err := tbl.Add(Vote{Voter: 1, Block: block, ChunkIdx: 1, Approve: true}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkTableWrongSubjectAndRange(t *testing.T) {
	tbl, _ := newTable(t, 2, 6, 1)
	other := blockcrypto.Sum256([]byte("other"))
	if _, err := tbl.Add(Vote{Voter: 1, Block: other, ChunkIdx: 0, Approve: true}); err == nil {
		t.Fatal("wrong-subject vote accepted")
	}
	tblB, block := newTable(t, 2, 6, 1)
	if _, err := tblB.Add(Vote{Voter: 1, Block: block, ChunkIdx: 2, Approve: true}); err == nil {
		t.Fatal("out-of-range chunk accepted")
	}
	if _, err := tblB.Add(Vote{Voter: 1, Block: block, ChunkIdx: -1, Approve: true}); err == nil {
		t.Fatal("negative chunk accepted")
	}
}

func TestApprovalCertificate(t *testing.T) {
	tbl, block := newTable(t, 2, 8, 2) // coverQuorum 2
	pool := []Vote{
		{Voter: 1, Block: block, ChunkIdx: 0, Approve: true},
		{Voter: 2, Block: block, ChunkIdx: 0, Approve: true},
		{Voter: 2, Block: block, ChunkIdx: 0, Approve: true}, // duplicate
		{Voter: 3, Block: block, ChunkIdx: 0, Approve: true}, // surplus
		{Voter: 4, Block: block, ChunkIdx: 1, Approve: true},
		{Voter: 5, Block: block, ChunkIdx: 1, Approve: false}, // reject: skipped
		{Voter: 6, Block: block, ChunkIdx: 1, Approve: true},
	}
	cert, ok := tbl.ApprovalCertificate(pool)
	if !ok {
		t.Fatal("coverable pool reported uncoverable")
	}
	if len(cert) != 4 { // 2 per chunk, trimmed
		t.Fatalf("certificate has %d votes, want 4", len(cert))
	}
	// Remove chunk 1's approvals: uncoverable.
	if _, ok := tbl.ApprovalCertificate(pool[:4]); ok {
		t.Fatal("uncoverable pool produced a certificate")
	}
}

func TestVerifyCertificateEndToEnd(t *testing.T) {
	block := blockcrypto.Sum256([]byte("certified"))
	keys := map[simnet.NodeID]blockcrypto.KeyPair{}
	for i := simnet.NodeID(1); i <= 6; i++ {
		keys[i] = blockcrypto.DeriveKeyPair(50, uint64(i))
	}
	isMember := func(id simnet.NodeID) bool { _, ok := keys[id]; return ok }
	pubKey := func(id simnet.NodeID) []byte {
		if k, ok := keys[id]; ok {
			return k.Public
		}
		return nil
	}
	var cert []Vote
	for idx := 0; idx < 3; idx++ {
		voter := simnet.NodeID(idx + 1)
		cert = append(cert, SignChunkVote(voter, block, idx, true, keys[voter]))
	}
	if err := VerifyCertificate(block, 3, 6, 1, cert, isMember, pubKey); err != nil {
		t.Fatalf("valid certificate rejected: %v", err)
	}
	// Forged signature: certificate no longer covers.
	forged := append([]Vote(nil), cert...)
	forged[1].Signature = append([]byte(nil), forged[1].Signature...)
	forged[1].Signature[0] ^= 1
	if err := VerifyCertificate(block, 3, 6, 1, forged, isMember, pubKey); err == nil {
		t.Fatal("forged certificate accepted")
	}
	// Non-member votes don't count.
	outsider := blockcrypto.DeriveKeyPair(51, 99)
	bad := []Vote{
		SignChunkVote(99, block, 0, true, outsider),
		cert[1], cert[2],
	}
	if err := VerifyCertificate(block, 3, 6, 1, bad, isMember, pubKey); err == nil {
		t.Fatal("outsider certificate accepted")
	}
	// Missing a chunk entirely.
	if err := VerifyCertificate(block, 3, 6, 1, cert[:2], isMember, pubKey); err == nil {
		t.Fatal("incomplete certificate accepted")
	}
}

// TestChunkTableRandomStreamsTerminalStable feeds random (but
// equivocation-free) vote streams and checks that once a terminal decision
// is reached it never changes.
func TestChunkTableRandomStreamsTerminalStable(t *testing.T) {
	rng := blockcrypto.NewRNG(6060)
	for trial := 0; trial < 100; trial++ {
		parts := rng.Intn(6) + 1
		n := rng.Intn(20) + 1
		r := rng.Intn(3) + 1
		block := blockcrypto.Sum256([]byte{byte(trial)})
		tbl, err := NewChunkTable(block, parts, n, r)
		if err != nil {
			t.Fatal(err)
		}
		voted := map[[2]int]bool{} // (voter, chunk) pairs already cast
		terminal := Pending
		for step := 0; step < 200; step++ {
			voter := rng.Intn(n) + 1
			chunk := rng.Intn(parts)
			if voted[[2]int{voter, chunk}] {
				continue
			}
			voted[[2]int{voter, chunk}] = true
			d, err := tbl.Add(Vote{
				Voter:    simnet.NodeID(voter),
				Block:    block,
				ChunkIdx: chunk,
				Approve:  rng.Intn(4) != 0, // 75% approve
			})
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if terminal != Pending && d != terminal {
				t.Fatalf("trial %d: decision changed after terminal: %v -> %v", trial, terminal, d)
			}
			if d != Pending && terminal == Pending {
				terminal = d
			}
		}
	}
}
