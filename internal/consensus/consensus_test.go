package consensus

import (
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/simnet"
)

func TestFaultBoundAndQuorum(t *testing.T) {
	cases := []struct{ n, f, q int }{
		{0, 0, 1}, {1, 0, 1}, {2, 0, 2}, {3, 0, 3},
		{4, 1, 3}, {6, 1, 5}, {7, 2, 5}, {10, 3, 7},
		{64, 21, 43}, {100, 33, 67},
	}
	for _, tc := range cases {
		if got := FaultBound(tc.n); got != tc.f {
			t.Fatalf("FaultBound(%d) = %d, want %d", tc.n, got, tc.f)
		}
		if got := QuorumSize(tc.n); got != tc.q {
			t.Fatalf("QuorumSize(%d) = %d, want %d", tc.n, got, tc.q)
		}
	}
}

func TestQuorumMajorityOfHonest(t *testing.T) {
	// For any n >= 4, a quorum must exceed f (so at least one honest vote)
	// and two quorums must intersect in an honest member:
	// 2*quorum - n > f.
	for n := 4; n <= 300; n++ {
		f, q := FaultBound(n), QuorumSize(n)
		if 2*q-n <= f {
			t.Fatalf("n=%d: quorum intersection not honest (2q-n=%d, f=%d)", n, 2*q-n, f)
		}
	}
}

func TestLeaderRotation(t *testing.T) {
	members := []simnet.NodeID{10, 20, 30}
	seen := map[simnet.NodeID]int{}
	for h := uint64(0); h < 9; h++ {
		l, err := Leader(members, h)
		if err != nil {
			t.Fatal(err)
		}
		seen[l]++
	}
	for _, m := range members {
		if seen[m] != 3 {
			t.Fatalf("leader %d chosen %d times in 9 heights, want 3", m, seen[m])
		}
	}
	if _, err := Leader(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
}

func TestVoteSignatureRoundTrip(t *testing.T) {
	key := blockcrypto.DeriveKeyPair(1, 1)
	block := blockcrypto.Sum256([]byte("b"))
	v := SignVote(7, block, true, key)
	if err := VerifyVote(v, key.Public); err != nil {
		t.Fatalf("valid vote rejected: %v", err)
	}
	// Flipping the verdict invalidates the signature.
	v.Approve = false
	if err := VerifyVote(v, key.Public); err == nil {
		t.Fatal("verdict-flipped vote accepted")
	}
	v.Approve = true
	v.Voter = 8
	if err := VerifyVote(v, key.Public); err == nil {
		t.Fatal("voter-swapped vote accepted")
	}
	v.Voter = 7
	v.Block[0] ^= 1
	if err := VerifyVote(v, key.Public); err == nil {
		t.Fatal("block-swapped vote accepted")
	}
}

func newVoteSet(t *testing.T, n int) (*VoteSet, blockcrypto.Hash, []simnet.NodeID) {
	t.Helper()
	block := blockcrypto.Sum256([]byte("subject"))
	members := make([]simnet.NodeID, n)
	for i := range members {
		members[i] = simnet.NodeID(i + 1)
	}
	vs, err := NewVoteSet(block, members)
	if err != nil {
		t.Fatal(err)
	}
	return vs, block, members
}

func TestVoteSetCommitPath(t *testing.T) {
	vs, block, members := newVoteSet(t, 7) // f=2, quorum=5
	if vs.Quorum() != 5 {
		t.Fatalf("Quorum() = %d", vs.Quorum())
	}
	for i := 0; i < 4; i++ {
		d, err := vs.Add(Vote{Voter: members[i], Block: block, Approve: true})
		if err != nil {
			t.Fatal(err)
		}
		if d != Pending {
			t.Fatalf("decision after %d approvals = %v", i+1, d)
		}
	}
	d, err := vs.Add(Vote{Voter: members[4], Block: block, Approve: true})
	if err != nil {
		t.Fatal(err)
	}
	if d != Committed {
		t.Fatalf("decision after quorum = %v", d)
	}
	if vs.Approvals() != 5 || vs.Rejections() != 0 {
		t.Fatalf("tallies: %d/%d", vs.Approvals(), vs.Rejections())
	}
}

func TestVoteSetRejectPath(t *testing.T) {
	vs, block, members := newVoteSet(t, 7) // rejectAt = 7-5+1 = 3
	for i := 0; i < 2; i++ {
		if d, _ := vs.Add(Vote{Voter: members[i], Block: block, Approve: false}); d != Pending {
			t.Fatalf("rejected too early at %d votes", i+1)
		}
	}
	d, err := vs.Add(Vote{Voter: members[2], Block: block, Approve: false})
	if err != nil {
		t.Fatal(err)
	}
	if d != Rejected {
		t.Fatalf("decision after 3 rejections = %v", d)
	}
}

func TestVoteSetEquivocation(t *testing.T) {
	vs, block, members := newVoteSet(t, 4)
	if _, err := vs.Add(Vote{Voter: members[0], Block: block, Approve: true}); err != nil {
		t.Fatal(err)
	}
	// Same vote again: idempotent.
	if _, err := vs.Add(Vote{Voter: members[0], Block: block, Approve: true}); err != nil {
		t.Fatalf("idempotent re-vote errored: %v", err)
	}
	// Flipped vote: equivocation.
	if _, err := vs.Add(Vote{Voter: members[0], Block: block, Approve: false}); err == nil {
		t.Fatal("equivocation accepted")
	}
	if vs.Approvals() != 1 {
		t.Fatalf("Approvals() = %d after equivocation attempt", vs.Approvals())
	}
}

func TestVoteSetRejectsOutsiders(t *testing.T) {
	vs, block, _ := newVoteSet(t, 4)
	if _, err := vs.Add(Vote{Voter: 999, Block: block, Approve: true}); err == nil {
		t.Fatal("non-member vote accepted")
	}
}

func TestVoteSetRejectsWrongSubject(t *testing.T) {
	vs, _, members := newVoteSet(t, 4)
	other := blockcrypto.Sum256([]byte("other block"))
	if _, err := vs.Add(Vote{Voter: members[0], Block: other, Approve: true}); err == nil {
		t.Fatal("vote for a different block accepted")
	}
}

func TestVoteSetSingleton(t *testing.T) {
	vs, block, members := newVoteSet(t, 1)
	d, err := vs.Add(Vote{Voter: members[0], Block: block, Approve: true})
	if err != nil {
		t.Fatal(err)
	}
	if d != Committed {
		t.Fatalf("singleton cluster did not commit on its own vote: %v", d)
	}
}

func TestNewVoteSetEmpty(t *testing.T) {
	if _, err := NewVoteSet(blockcrypto.ZeroHash, nil); err == nil {
		t.Fatal("empty membership accepted")
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		Pending: "pending", Committed: "committed", Rejected: "rejected", Decision(9): "decision(9)",
	} {
		if got := d.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(d), got, want)
		}
	}
}
