package gateway

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/netx"
	"icistrategy/internal/workload"
)

// fakeUpstream holds fully chunked blocks in memory and counts every
// upstream touch, so tests can assert exactly how much cluster traffic a
// gateway operation cost. Owners assigns chunk idx to peer idx%n with the
// remaining peers as fallbacks.
type fakeUpstream struct {
	parts   int
	headers map[blockcrypto.Hash]chain.Header
	chunks  map[int]map[netx.ChunkRef]netx.ChunkResp // peer -> ref -> chunk
	txs     map[blockcrypto.Hash][]*chain.Transaction

	headerCalls  atomic.Int64
	batchCalls   atomic.Int64
	batchRefs    atomic.Int64
	proofCalls   atomic.Int64
	refreshCalls atomic.Int64

	// gate, when non-nil, blocks every FetchBatch until closed; entered,
	// when non-nil, receives one (buffered) send as each FetchBatch arrives.
	gate    chan struct{}
	entered chan struct{}
	// lost marks (peer, ref) pairs that answer Found=false.
	mu   sync.Mutex
	lost map[int]map[netx.ChunkRef]bool
}

func newFakeUpstream(t *testing.T, peers, blocks, txPerBlock int) (*fakeUpstream, []*chain.Block) {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{Accounts: 40, PayloadBytes: 24, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := workload.NewChainBuilder(gen, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	u := &fakeUpstream{
		parts:   peers,
		headers: make(map[blockcrypto.Hash]chain.Header),
		chunks:  make(map[int]map[netx.ChunkRef]netx.ChunkResp),
		txs:     make(map[blockcrypto.Hash][]*chain.Transaction),
		lost:    make(map[int]map[netx.ChunkRef]bool),
	}
	for p := 0; p < peers; p++ {
		u.chunks[p] = make(map[netx.ChunkRef]netx.ChunkResp)
	}
	out := make([]*chain.Block, blocks)
	for bi := range out {
		b, err := cb.NextBlock(txPerBlock)
		if err != nil {
			t.Fatal(err)
		}
		out[bi] = b
		u.headers[b.Hash()] = b.Header
		u.txs[b.Hash()] = b.Txs
		tree, err := chain.TxMerkleTree(b.Txs)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := core.SplitCounts(len(b.Txs), peers)
		if err != nil {
			t.Fatal(err)
		}
		txStart := 0
		for idx := 0; idx < peers; idx++ {
			group := b.Txs[txStart : txStart+counts[idx]]
			proofs := make([]chain.Proof, len(group))
			for i := range group {
				proofs[i], err = tree.Prove(txStart + i)
				if err != nil {
					t.Fatal(err)
				}
			}
			sub := chain.Block{Txs: group}
			resp := netx.ChunkResp{
				Index: idx, Parts: peers, TxStart: txStart,
				Data: sub.EncodeBody(), Proofs: proofs,
			}
			// Every peer holds every chunk; Owners narrows who is asked.
			for p := 0; p < peers; p++ {
				u.chunks[p][netx.ChunkRef{Block: b.Hash(), Index: idx}] = resp
			}
			txStart += counts[idx]
		}
	}
	return u, out
}

func (u *fakeUpstream) Parts(block blockcrypto.Hash) (int, error) { return u.parts, nil }

func (u *fakeUpstream) Peers() []int {
	peers := make([]int, u.parts)
	for i := range peers {
		peers[i] = i
	}
	return peers
}

func (u *fakeUpstream) Refresh() bool {
	u.refreshCalls.Add(1)
	return false
}

func (u *fakeUpstream) Owners(block blockcrypto.Hash, idx int) ([]int, error) {
	owners := make([]int, u.parts)
	for i := range owners {
		owners[i] = (idx + i) % u.parts
	}
	return owners, nil
}

func (u *fakeUpstream) Header(block blockcrypto.Hash) (chain.Header, error) {
	u.headerCalls.Add(1)
	h, ok := u.headers[block]
	if !ok {
		return chain.Header{}, ErrUnknownBlock
	}
	return h, nil
}

func (u *fakeUpstream) FetchBatch(peer int, refs []netx.ChunkRef) (*netx.ChunkBatchResp, error) {
	if u.entered != nil {
		u.entered <- struct{}{}
	}
	if u.gate != nil {
		<-u.gate
	}
	u.batchCalls.Add(1)
	u.batchRefs.Add(int64(len(refs)))
	resp := &netx.ChunkBatchResp{Found: make([]bool, len(refs)), Chunks: make([]netx.ChunkResp, len(refs))}
	u.mu.Lock()
	defer u.mu.Unlock()
	for i, ref := range refs {
		if u.lost[peer][ref] {
			continue
		}
		if c, ok := u.chunks[peer][ref]; ok {
			resp.Found[i] = true
			resp.Chunks[i] = c
		}
	}
	return resp, nil
}

func (u *fakeUpstream) TxProof(peer int, block, txID blockcrypto.Hash) (*netx.TxProofResp, error) {
	u.proofCalls.Add(1)
	txs, ok := u.txs[block]
	if !ok {
		return &netx.TxProofResp{}, nil
	}
	// This fake peer holds chunk indexes where idx%parts maps to it; for
	// proof simplicity every peer can prove every transaction.
	tree, err := chain.TxMerkleTree(txs)
	if err != nil {
		return nil, err
	}
	for i, tx := range txs {
		if tx.ID() == txID {
			p, err := tree.Prove(i)
			if err != nil {
				return nil, err
			}
			return &netx.TxProofResp{Found: true, Tx: tx, Proof: p}, nil
		}
	}
	return &netx.TxProofResp{}, nil
}

func (u *fakeUpstream) loseChunk(peer int, ref netx.ChunkRef) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.lost[peer] == nil {
		u.lost[peer] = make(map[netx.ChunkRef]bool)
	}
	u.lost[peer][ref] = true
}

func newTestGateway(t *testing.T, u Upstream, reg *metrics.Registry, cacheBytes int64) *Gateway {
	t.Helper()
	g, err := New(Config{
		Upstream:        u,
		BlockCacheBytes: cacheBytes,
		ChunkCacheBytes: cacheBytes,
		Registry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestConcurrentGetsCoalesceToOneFetch is the coalescing acceptance test:
// eight concurrent GetBlock calls for one cold block must cost exactly one
// upstream retrieval (one header resolution, one assembly), with the other
// seven riding the same flight.
func TestConcurrentGetsCoalesceToOneFetch(t *testing.T) {
	u, blocks := newFakeUpstream(t, 4, 1, 16)
	u.gate = make(chan struct{})
	reg := metrics.NewRegistry()
	g := newTestGateway(t, u, reg, 1<<20)
	b := blocks[0]

	const N = 8
	var started, done sync.WaitGroup
	results := make([]*chain.Block, N)
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			started.Done()
			results[i], errs[i] = g.GetBlock(b.Hash())
		}(i)
	}
	started.Wait()
	// Give every goroutine time to miss the cache and join the flight
	// before the upstream is allowed to answer.
	time.Sleep(200 * time.Millisecond)
	close(u.gate)
	done.Wait()

	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("get %d: %v", i, errs[i])
		}
		if results[i].Hash() != b.Hash() {
			t.Fatalf("get %d returned the wrong block", i)
		}
	}
	if v := u.headerCalls.Load(); v != 1 {
		t.Fatalf("upstream header resolutions = %d, want exactly 1", v)
	}
	snap := reg.Snapshot()
	if v := snap["ici.gateway.fetches"]; v != 1 {
		t.Fatalf("ici.gateway.fetches = %v, want exactly 1", v)
	}
	if v := snap["ici.gateway.coalesced"]; v != N-1 {
		t.Fatalf("ici.gateway.coalesced = %v, want %d", v, N-1)
	}
	// One retrieval over 4 single-owner chunk groups: at most one batch RPC
	// per contacted peer.
	if v := u.batchCalls.Load(); v > 4 {
		t.Fatalf("upstream batch RPCs = %d for one retrieval of 4 chunks", v)
	}
}

// TestCacheHitServesWithZeroUpstream: once a block is hot, serving it again
// must touch the upstream zero times.
func TestCacheHitServesWithZeroUpstream(t *testing.T) {
	u, blocks := newFakeUpstream(t, 3, 1, 12)
	reg := metrics.NewRegistry()
	g := newTestGateway(t, u, reg, 1<<20)
	b := blocks[0]

	if _, err := g.GetBlock(b.Hash()); err != nil {
		t.Fatal(err)
	}
	h0, b0 := u.headerCalls.Load(), u.batchCalls.Load()

	got, err := g.GetBlock(b.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != b.Hash() {
		t.Fatal("wrong block from cache")
	}
	if u.headerCalls.Load() != h0 || u.batchCalls.Load() != b0 {
		t.Fatalf("cache hit touched upstream: headers %d->%d batches %d->%d",
			h0, u.headerCalls.Load(), b0, u.batchCalls.Load())
	}
	snap := reg.Snapshot()
	if v := snap["ici.gateway.block_cache.hits"]; v < 1 {
		t.Fatalf("block cache hits = %v, want >= 1", v)
	}
}

// TestFetchFallsBackToSecondaryOwner: a primary owner missing its chunk
// must not fail the read while another owner still holds it.
func TestFetchFallsBackToSecondaryOwner(t *testing.T) {
	u, blocks := newFakeUpstream(t, 4, 1, 16)
	b := blocks[0]
	// Chunk 2's primary owner (peer 2 under idx%n placement) lost it.
	u.loseChunk(2, netx.ChunkRef{Block: b.Hash(), Index: 2})
	g := newTestGateway(t, u, nil, 1<<20)
	got, err := g.GetBlock(b.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != b.Hash() {
		t.Fatal("wrong block after fallback")
	}
}

// TestFetchFailsWhenChunkLostEverywhere: when no owner holds a chunk the
// gateway reports an incomplete read instead of fabricating a block.
func TestFetchFailsWhenChunkLostEverywhere(t *testing.T) {
	u, blocks := newFakeUpstream(t, 3, 1, 9)
	b := blocks[0]
	ref := netx.ChunkRef{Block: b.Hash(), Index: 1}
	for p := 0; p < 3; p++ {
		u.loseChunk(p, ref)
	}
	g := newTestGateway(t, u, nil, 1<<20)
	if _, err := g.GetBlock(b.Hash()); err == nil {
		t.Fatal("incomplete block served")
	}
}

// TestChunkCacheServesPartialReassembly: with the block cache disabled but
// chunks hot, a re-read only refetches nothing and reassembles from the
// chunk cache.
func TestChunkCacheServesPartialReassembly(t *testing.T) {
	u, blocks := newFakeUpstream(t, 3, 1, 12)
	b := blocks[0]
	g, err := New(Config{Upstream: u, BlockCacheBytes: 0, ChunkCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.GetBlock(b.Hash()); err != nil {
		t.Fatal(err)
	}
	before := u.batchCalls.Load()
	if _, err := g.GetBlock(b.Hash()); err != nil {
		t.Fatal(err)
	}
	if u.batchCalls.Load() != before {
		t.Fatal("hot chunks were refetched")
	}
}

func TestGetTxProofThroughGateway(t *testing.T) {
	u, blocks := newFakeUpstream(t, 3, 2, 12)
	reg := metrics.NewRegistry()
	g := newTestGateway(t, u, reg, 1<<20)
	b := blocks[1]
	tx := b.Txs[3]

	p, err := g.GetTxProof(b.Hash(), tx.ID())
	if err != nil {
		t.Fatal(err)
	}
	if p.Tx.ID() != tx.ID() || p.Header.Hash() != b.Hash() {
		t.Fatal("wrong proof returned")
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("proof does not verify: %v", err)
	}

	// Unknown tx: definitive not-found.
	if _, err := g.GetTxProof(b.Hash(), blockcrypto.Sum256([]byte("ghost"))); err == nil {
		t.Fatal("proof produced for a transaction that does not exist")
	}

	// With the block cached, proofs are derived locally with no new
	// upstream proof queries.
	if _, err := g.GetBlock(b.Hash()); err != nil {
		t.Fatal(err)
	}
	before := u.proofCalls.Load()
	p2, err := g.GetTxProof(b.Hash(), tx.ID())
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Verify(); err != nil {
		t.Fatal(err)
	}
	if u.proofCalls.Load() != before {
		t.Fatal("cached block did not serve the proof locally")
	}
	if v := reg.Snapshot()["ici.gateway.txproofs_local"]; v < 1 {
		t.Fatalf("ici.gateway.txproofs_local = %v, want >= 1", v)
	}
}

func TestGetBlockUnknownHash(t *testing.T) {
	u, _ := newFakeUpstream(t, 3, 1, 6)
	g := newTestGateway(t, u, nil, 1<<20)
	if _, err := g.GetBlock(blockcrypto.Sum256([]byte("nope"))); err == nil {
		t.Fatal("unknown block served")
	}
}
