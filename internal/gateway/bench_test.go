package gateway

import "testing"

// TestRunLoadSmoke exercises the full load harness at a tiny scale: the
// run must complete without errors, record every request, and show the
// cache absorbing the Zipf-skewed re-reads.
func TestRunLoadSmoke(t *testing.T) {
	rep, err := RunLoad(LoadConfig{
		Servers: 3, Replication: 2,
		Blocks: 6, TxPerBlock: 10, PayloadBytes: 16,
		Clients: 4, Requests: 80,
		ZipfS: 1.1, Seed: 5,
		CacheBytes: 1 << 20,
		ProofEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors", rep.Errors)
	}
	if rep.Requests != 80 {
		t.Fatalf("requests = %d, want 80", rep.Requests)
	}
	if rep.QPS <= 0 || rep.P50Millis < 0 || rep.P99Millis < rep.P50Millis {
		t.Fatalf("nonsensical report: %+v", rep)
	}
	if rep.CacheHits == 0 {
		t.Fatal("Zipf re-reads produced zero cache hits")
	}

	// Cache off: the identical workload must touch upstream for every
	// block read.
	off, err := RunLoad(LoadConfig{
		Servers: 3, Replication: 2,
		Blocks: 6, TxPerBlock: 10, PayloadBytes: 16,
		Clients: 4, Requests: 80,
		ZipfS: 1.1, Seed: 5,
		CacheBytes: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if off.Errors != 0 {
		t.Fatalf("cache-off run: %d errors", off.Errors)
	}
	if off.CacheHits != 0 {
		t.Fatalf("cache-off run recorded %d hits", off.CacheHits)
	}
	if off.UpstreamRPCs <= rep.UpstreamRPCs {
		t.Fatalf("cache off (%d RPCs) should cost more upstream traffic than cache on (%d)",
			off.UpstreamRPCs, rep.UpstreamRPCs)
	}
}
