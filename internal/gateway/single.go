package gateway

import "sync"

// flightGroup coalesces concurrent calls for the same key into one
// execution: the first caller runs fn, everyone else blocks until it
// finishes and shares the result. The standard-library pattern, kept
// in-repo because the gateway depends only on the standard library.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Do runs fn once per key among concurrent callers; shared reports whether
// this caller joined an execution started by another.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		f.wg.Wait()
		return f.val, f.err, true
	}
	f := &flight{}
	f.wg.Add(1)
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.wg.Done()
	return f.val, f.err, false
}
