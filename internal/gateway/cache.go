package gateway

import (
	"container/list"
	"sync"

	"icistrategy/internal/metrics"
)

// admissionDiv sets the size-based admission threshold: an entry larger
// than capacity/admissionDiv is rejected outright. One oversized block must
// not flush a whole working set of hot chunks to make room for itself.
const admissionDiv = 4

// cacheCounters is the observable surface of one LRU instance; the gateway
// resolves them under ici.gateway.block_cache.* / ici.gateway.chunk_cache.*.
type cacheCounters struct {
	hits      *metrics.Counter
	misses    *metrics.Counter
	evictions *metrics.Counter
	rejected  *metrics.Counter // admissions refused by the size filter
}

// lruCache is a byte-bounded LRU with size-based admission control, safe
// for concurrent use. Values are cached as-is; callers must not mutate
// what they Get.
type lruCache struct {
	mu       sync.Mutex
	capacity int64
	maxEntry int64
	size     int64
	order    *list.List // front = most recent
	entries  map[string]*list.Element
	ctr      cacheCounters
}

type cacheEntry struct {
	key  string
	val  any
	size int64
}

// newLRUCache builds a cache bounded to capacity bytes; capacity <= 0
// yields a disabled cache (every Get misses, every Put is rejected), so an
// uncached gateway runs the identical code path.
func newLRUCache(capacity int64, ctr cacheCounters) *lruCache {
	return &lruCache{
		capacity: capacity,
		maxEntry: capacity / admissionDiv,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		ctr:      ctr,
	}
}

// Get returns the cached value and promotes it to most-recently-used.
func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.ctr.misses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.ctr.hits.Inc()
	return el.Value.(*cacheEntry).val, true
}

// Put admits a value of the given size, evicting from the cold end until
// it fits. Oversized entries (see admissionDiv) are rejected, as is any
// entry when the cache is disabled.
func (c *lruCache) Put(key string, val any, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if size <= 0 || size > c.maxEntry {
		c.ctr.rejected.Inc()
		return
	}
	if el, ok := c.entries[key]; ok {
		// Refresh in place; adjust accounting for a changed size.
		ent := el.Value.(*cacheEntry)
		c.size += size - ent.size
		ent.val, ent.size = val, size
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val, size: size})
		c.size += size
	}
	for c.size > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, ent.key)
		c.size -= ent.size
		c.ctr.evictions.Inc()
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the cached payload bytes.
func (c *lruCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
