package gateway

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/netx"
)

// The gateway's client-facing protocol rides the same length-prefixed gob
// framing as the storage protocol (netx.WriteMessage/ReadMessage), with its
// own tiny request/response unions: full verified blocks and light-client
// transaction proofs.

// WireRequest is the union of gateway client requests; exactly one field
// is set.
type WireRequest struct {
	GetBlock   *WireBlockReq
	GetTxProof *WireProofReq
}

// WireBlockReq asks for a full block by hash.
type WireBlockReq struct {
	Block blockcrypto.Hash
}

// WireProofReq asks for a transaction-inclusion proof.
type WireProofReq struct {
	Block blockcrypto.Hash
	TxID  blockcrypto.Hash
}

// WireResponse is the union of gateway responses; Err is set on failure.
type WireResponse struct {
	Err   string
	Block []byte // chain.Block.Encode() payload
	Proof *WireProofResp
}

// WireProofResp carries a verified inclusion proof.
type WireProofResp struct {
	Tx     *chain.Transaction
	Header chain.Header
	Proof  chain.Proof
}

// Server exposes a Gateway on a TCP listener.
type Server struct {
	g  *Gateway
	ln net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer starts serving g on addr ("host:0" picks a free port).
func NewServer(addr string, g *Gateway) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: listen %s: %w", addr, err)
	}
	s := &Server{g: g, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and tears down open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	// Closing the listener and every conn unblocks the accept loop and all
	// connection handlers; wait for them so no handler touches the Gateway
	// after Close returns.
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		var req WireRequest
		// Waiting for the client's next request may legitimately block for
		// the connection's whole idle lifetime; Close unwedges it by
		// closing the conn, so no deadline is armed here.
		if err := netx.ReadMessage(conn, &req); err != nil { //icilint:allow deadline(idle wait for next request; Close unblocks it by closing the conn)
			return
		}
		resp := s.handle(&req)
		if err := netx.WriteMessage(conn, resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *WireRequest) *WireResponse {
	switch {
	case req.GetBlock != nil:
		b, err := s.g.GetBlock(req.GetBlock.Block)
		if err != nil {
			return &WireResponse{Err: err.Error()}
		}
		return &WireResponse{Block: b.Encode()}
	case req.GetTxProof != nil:
		p, err := s.g.GetTxProof(req.GetTxProof.Block, req.GetTxProof.TxID)
		if err != nil {
			return &WireResponse{Err: err.Error()}
		}
		return &WireResponse{Proof: &WireProofResp{Tx: p.Tx, Header: p.Header, Proof: p.Proof}}
	default:
		return &WireResponse{Err: "gateway: malformed request"}
	}
}

// Client is a connection to a gateway server, safe for sequential use.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
}

// ErrRemote wraps error strings reported by the gateway server.
var ErrRemote = errors.New("gateway: remote error")

// DialClient connects to a gateway server.
func DialClient(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("gateway: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, timeout: netx.DefaultRPCTimeout}, nil
}

// SetTimeout overrides the per-call I/O deadline; d <= 0 restores the
// default.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		d = netx.DefaultRPCTimeout
	}
	c.timeout = d
}

// Close tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *Client) roundTrip(req *WireRequest) (*WireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, netx.ErrClosed
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	if err := netx.WriteMessage(c.conn, req); err != nil {
		return nil, err
	}
	var resp WireResponse
	if err := netx.ReadMessage(c.conn, &resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp.Err)
	}
	return &resp, nil
}

// GetBlock fetches a full block through the gateway.
func (c *Client) GetBlock(h blockcrypto.Hash) (*chain.Block, error) {
	resp, err := c.roundTrip(&WireRequest{GetBlock: &WireBlockReq{Block: h}})
	if err != nil {
		return nil, err
	}
	b, err := chain.DecodeBlock(resp.Block)
	if err != nil {
		return nil, fmt.Errorf("gateway: decode block: %w", err)
	}
	return b, nil
}

// GetTxProof fetches a transaction-inclusion proof through the gateway and
// re-verifies it client-side before returning.
func (c *Client) GetTxProof(block, txID blockcrypto.Hash) (core.TxProof, error) {
	resp, err := c.roundTrip(&WireRequest{GetTxProof: &WireProofReq{Block: block, TxID: txID}})
	if err != nil {
		return core.TxProof{}, err
	}
	if resp.Proof == nil {
		return core.TxProof{}, fmt.Errorf("%w: empty proof response", ErrRemote)
	}
	p := core.TxProof{Tx: resp.Proof.Tx, Header: resp.Proof.Header, Proof: resp.Proof.Proof}
	if err := p.Verify(); err != nil {
		return core.TxProof{}, fmt.Errorf("gateway: proof verification: %w", err)
	}
	if p.Header.Hash() != block || p.Tx.ID() != txID {
		return core.TxProof{}, fmt.Errorf("%w: proof for the wrong block or transaction", ErrRemote)
	}
	return p, nil
}
