package gateway

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icistrategy/internal/metrics"
	"icistrategy/internal/netx"
)

func testCounters(reg *metrics.Registry, prefix string) cacheCounters {
	// Test-only: dynamic names never reach a production registry snapshot.
	return cacheCounters{
		hits:      reg.Counter(prefix + ".hits"),
		misses:    reg.Counter(prefix + ".misses"),
		evictions: reg.Counter(prefix + ".evictions"),
		rejected:  reg.Counter(prefix + ".rejected"),
	}
}

func TestLRUEvictsColdEntriesByBytes(t *testing.T) {
	reg := metrics.NewRegistry()
	c := newLRUCache(100, testCounters(reg, "ici.test_cache"))
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 20) // 200 bytes into a 100-byte cache
	}
	if c.Bytes() > 100 {
		t.Fatalf("cache over capacity: %d bytes", c.Bytes())
	}
	if c.Len() != 5 {
		t.Fatalf("len = %d, want 5", c.Len())
	}
	// The cold half is gone, the hot half present.
	if _, ok := c.Get("k0"); ok {
		t.Fatal("coldest entry survived")
	}
	if _, ok := c.Get("k9"); !ok {
		t.Fatal("hottest entry evicted")
	}
	if v := reg.Snapshot()["ici.test_cache.evictions"]; v != 5 {
		t.Fatalf("evictions = %v, want 5", v)
	}
}

func TestLRUGetPromotes(t *testing.T) {
	c := newLRUCache(80, testCounters(nil, ""))
	c.Put("a", 1, 20)
	c.Put("b", 2, 20)
	c.Put("c", 3, 20)
	c.Put("d", 4, 20)
	// Touch a so b becomes coldest, then overflow by one entry.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("e", 5, 20)
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU order ignored recency: b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestLRUAdmissionRejectsOversized(t *testing.T) {
	reg := metrics.NewRegistry()
	c := newLRUCache(100, testCounters(reg, "ici.test_cache"))
	c.Put("hot", 1, 10)
	// Larger than capacity/admissionDiv (25): rejected, nothing evicted.
	c.Put("whale", 2, 40)
	if _, ok := c.Get("whale"); ok {
		t.Fatal("oversized entry admitted")
	}
	if _, ok := c.Get("hot"); !ok {
		t.Fatal("admission rejection evicted the working set")
	}
	if v := reg.Snapshot()["ici.test_cache.rejected"]; v != 1 {
		t.Fatalf("rejected = %v, want 1", v)
	}
}

func TestLRUDisabledCache(t *testing.T) {
	c := newLRUCache(0, testCounters(nil, ""))
	c.Put("a", 1, 10)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache cached")
	}
}

func TestLRUUpdateAdjustsAccounting(t *testing.T) {
	c := newLRUCache(100, testCounters(nil, ""))
	c.Put("a", 1, 10)
	c.Put("a", 2, 25)
	if got := c.Bytes(); got != 25 {
		t.Fatalf("bytes = %d, want 25 after in-place update", got)
	}
	v, ok := c.Get("a")
	if !ok || v.(int) != 2 {
		t.Fatalf("updated value lost: %v %v", v, ok)
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	var runs atomic.Int64
	gate := make(chan struct{})
	const N = 16
	var wg sync.WaitGroup
	shares := make([]bool, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (any, error) {
				runs.Add(1)
				<-gate
				return 42, nil
			})
			shares[i] = shared
			if err != nil || v.(int) != 42 {
				t.Errorf("call %d: v=%v err=%v", i, v, err)
			}
		}(i)
	}
	// Let every caller reach Do before the flight resolves.
	for i := 0; runs.Load() == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	close(gate)
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
	nonShared := 0
	for _, s := range shares {
		if !s {
			nonShared++
		}
	}
	if nonShared != 1 {
		t.Fatalf("%d callers executed the flight, want exactly 1", nonShared)
	}

	// After completion the key is free again: a new call re-executes.
	_, _, shared := g.Do("k", func() (any, error) { runs.Add(1); return 1, nil })
	if shared || runs.Load() != 2 {
		t.Fatal("flight key leaked past completion")
	}
}

func TestBatcherSharesRoundTrips(t *testing.T) {
	u, blocks := newFakeUpstream(t, 2, 1, 8)
	u.entered = make(chan struct{}, 8)
	u.gate = make(chan struct{})
	var reg *metrics.Registry // nil: throwaway counters
	b := newBatcher(u, reg.Counter("x"), reg.Counter("y"))
	hash := blocks[0].Hash()

	// First want starts a drain whose RPC blocks on the gate.
	var wg sync.WaitGroup
	results := make([]*netx.ChunkResp, 3)
	fetch := func(i int) {
		defer wg.Done()
		c, err := b.Fetch(0, netx.ChunkRef{Block: hash, Index: i % 2})
		if err != nil {
			t.Errorf("fetch %d: %v", i, err)
		}
		results[i] = c
	}
	wg.Add(1)
	go fetch(0)
	<-u.entered // RPC 1 is in flight, holding the drain

	// Two more wants for the same peer accumulate behind the in-flight RPC
	// and must ride the next frame together.
	wg.Add(2)
	go fetch(1)
	go fetch(2)
	time.Sleep(100 * time.Millisecond)
	close(u.gate)
	wg.Wait()

	if calls := u.batchCalls.Load(); calls != 2 {
		t.Fatalf("3 wants cost %d RPCs, want 2 (1 solo + 1 shared)", calls)
	}
	if refs := u.batchRefs.Load(); refs != 3 {
		t.Fatalf("wire refs = %d, want 3", refs)
	}
	for i, c := range results {
		if c == nil {
			t.Fatalf("fetch %d returned no chunk", i)
		}
		if c.Index != i%2 {
			t.Fatalf("fetch %d got chunk %d", i, c.Index)
		}
	}
}
