// Package gateway is the client-serving read front end of an ICIStrategy
// storage cluster: a stateless-by-contract cache layer that turns the
// cluster's chunked, collaborative storage into a low-latency block and
// light-client API. Three mechanisms carry the load so the cluster itself
// stays cheap to read from:
//
//   - byte-bounded LRU caches for hot chunks and reassembled blocks, with
//     size-based admission control so one huge block cannot flush the
//     working set;
//   - singleflight coalescing, so N concurrent requests for the same cold
//     block cost exactly one upstream retrieval;
//   - cross-request batching of chunk fetches to the same peer, so
//     concurrent misses share wire round trips instead of paying one each.
//
// All observable behavior lands in a metrics.Registry under ici.gateway.*.
package gateway

import (
	"fmt"
	"sort"
	"sync"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/netx"
)

// Config parameterizes a Gateway.
type Config struct {
	// Upstream is the storage cluster to read through (required).
	Upstream Upstream
	// BlockCacheBytes bounds the reassembled-block cache; <= 0 disables it.
	BlockCacheBytes int64
	// ChunkCacheBytes bounds the hot-chunk cache; <= 0 disables it.
	ChunkCacheBytes int64
	// Registry receives ici.gateway.* metrics; nil discards them.
	Registry *metrics.Registry
}

// Gateway serves verified block and transaction-proof reads over an
// ICIStrategy storage cluster. Safe for concurrent use. Cached blocks are
// shared between callers: treat every *chain.Block it returns as read-only.
type Gateway struct {
	up      Upstream
	blocks  *lruCache
	chunks  *lruCache
	flights flightGroup
	batch   *batcher

	coalesced   *metrics.Counter // ici.gateway.coalesced
	fetches     *metrics.Counter // ici.gateway.fetches
	proofs      *metrics.Counter // ici.gateway.txproofs
	proofsLocal *metrics.Counter // ici.gateway.txproofs_local
	refreshes   *metrics.Counter // ici.gateway.map_refreshes

	mu       sync.Mutex
	rotation int // spreads proof queries across peers
}

// New builds a gateway over the given upstream.
func New(cfg Config) (*Gateway, error) {
	if cfg.Upstream == nil {
		return nil, fmt.Errorf("gateway: nil upstream")
	}
	reg := cfg.Registry
	g := &Gateway{
		up: cfg.Upstream,
		blocks: newLRUCache(cfg.BlockCacheBytes, cacheCounters{
			hits:      reg.Counter("ici.gateway.block_cache.hits"),
			misses:    reg.Counter("ici.gateway.block_cache.misses"),
			evictions: reg.Counter("ici.gateway.block_cache.evictions"),
			rejected:  reg.Counter("ici.gateway.block_cache.rejected"),
		}),
		chunks: newLRUCache(cfg.ChunkCacheBytes, cacheCounters{
			hits:      reg.Counter("ici.gateway.chunk_cache.hits"),
			misses:    reg.Counter("ici.gateway.chunk_cache.misses"),
			evictions: reg.Counter("ici.gateway.chunk_cache.evictions"),
			rejected:  reg.Counter("ici.gateway.chunk_cache.rejected"),
		}),
		coalesced:   reg.Counter("ici.gateway.coalesced"),
		fetches:     reg.Counter("ici.gateway.fetches"),
		proofs:      reg.Counter("ici.gateway.txproofs"),
		proofsLocal: reg.Counter("ici.gateway.txproofs_local"),
		refreshes:   reg.Counter("ici.gateway.map_refreshes"),
	}
	g.batch = newBatcher(cfg.Upstream,
		reg.Counter("ici.gateway.batch.rpcs"),
		reg.Counter("ici.gateway.batch.refs"))
	return g, nil
}

func blockKey(h blockcrypto.Hash) string { return "b:" + string(h[:]) }
func chunkKey(h blockcrypto.Hash, idx int) string {
	return fmt.Sprintf("c:%s:%d", h[:], idx)
}

// GetBlock returns the full verified block with the given hash, from cache
// when hot, otherwise by gathering its chunks from the cluster. Concurrent
// calls for the same cold block coalesce into one upstream retrieval.
func (g *Gateway) GetBlock(h blockcrypto.Hash) (*chain.Block, error) {
	key := blockKey(h)
	if v, ok := g.blocks.Get(key); ok {
		return v.(*chain.Block), nil
	}
	v, err, shared := g.flights.Do(key, func() (any, error) {
		// Re-check under the flight: a racing caller may have populated the
		// cache between our miss and winning the flight.
		if v, ok := g.blocks.Get(key); ok {
			return v, nil
		}
		b, err := g.fetchBlock(h)
		if err != nil && g.up.Refresh() {
			// The miss may be stale membership: a block written (or moved)
			// under an epoch this gateway had not learned yet resolves to the
			// wrong parts count or owners. With a fresh cluster map adopted,
			// one retry reads it where it actually lives.
			g.refreshes.Inc()
			b, err = g.fetchBlock(h)
		}
		if err != nil {
			return nil, err
		}
		g.blocks.Put(key, b, int64(b.BodySize()))
		return b, nil
	})
	if shared {
		g.coalesced.Inc()
	}
	if err != nil {
		return nil, err
	}
	return v.(*chain.Block), nil
}

// fetchBlock gathers every chunk of h — cached chunks locally, the rest
// batched per owning peer — then reassembles and verifies against the
// header's Merkle root.
func (g *Gateway) fetchBlock(h blockcrypto.Hash) (*chain.Block, error) {
	hdr, err := g.up.Header(h)
	if err != nil {
		return nil, err
	}
	g.fetches.Inc()
	parts, err := g.up.Parts(h)
	if err != nil {
		return nil, err
	}
	got := make([]*netx.ChunkResp, parts)
	var missing []int
	for idx := 0; idx < parts; idx++ {
		if v, ok := g.chunks.Get(chunkKey(h, idx)); ok {
			got[idx] = v.(*netx.ChunkResp)
			continue
		}
		missing = append(missing, idx)
	}

	if len(missing) > 0 {
		var wg sync.WaitGroup
		fetched := make([]*netx.ChunkResp, len(missing))
		for i, idx := range missing {
			wg.Add(1)
			go func(i, idx int) {
				defer wg.Done()
				fetched[i] = g.fetchChunk(h, idx)
			}(i, idx)
		}
		wg.Wait()
		for i, idx := range missing {
			if fetched[i] == nil {
				continue
			}
			got[idx] = fetched[i]
			g.chunks.Put(chunkKey(h, idx), fetched[i], chunkSize(fetched[i]))
		}
	}

	have := 0
	for _, c := range got {
		if c != nil {
			have++
		}
	}
	if have < parts {
		return nil, fmt.Errorf("%w: have %d of %d for %s", ErrIncomplete, have, parts, h.Short())
	}

	// Reassemble in transaction order and verify the whole block shape
	// (including the Merkle root) against the trusted header.
	order := make([]int, parts)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return got[order[a]].TxStart < got[order[b]].TxStart })
	var txs []*chain.Transaction
	for _, idx := range order {
		part, derr := chain.DecodeBody(got[idx].Data)
		if derr != nil {
			return nil, fmt.Errorf("gateway: chunk %d: %w", idx, derr)
		}
		txs = append(txs, part...)
	}
	b := &chain.Block{Header: hdr, Txs: txs}
	if err := b.VerifyShape(); err != nil {
		return nil, fmt.Errorf("gateway: reassembly: %w", err)
	}
	return b, nil
}

// fetchChunk tries each owner of (h, idx) in placement order through the
// batcher, so concurrent misses against the same peer share round trips.
// nil means no owner produced the chunk.
func (g *Gateway) fetchChunk(h blockcrypto.Hash, idx int) *netx.ChunkResp {
	owners, err := g.up.Owners(h, idx)
	if err != nil {
		return nil
	}
	ref := netx.ChunkRef{Block: h, Index: idx}
	for _, peer := range owners {
		chunk, err := g.batch.Fetch(peer, ref)
		if err == nil && chunk != nil {
			return chunk
		}
	}
	return nil
}

// chunkSize accounts a cached chunk: payload plus proof bytes.
func chunkSize(c *netx.ChunkResp) int64 {
	n := int64(len(c.Data))
	for _, p := range c.Proofs {
		n += int64(p.EncodedSize())
	}
	return n
}

// GetTxProof answers a light-client inclusion query: the transaction, the
// header committing to it, and the Merkle proof connecting them. A cached
// block answers locally; otherwise the cluster's members are queried in
// rotation, coalescing concurrent queries for the same transaction.
func (g *Gateway) GetTxProof(block, txID blockcrypto.Hash) (core.TxProof, error) {
	g.proofs.Inc()
	if v, ok := g.blocks.Get(blockKey(block)); ok {
		if p, ok := g.localProof(v.(*chain.Block), txID); ok {
			g.proofsLocal.Inc()
			return p, nil
		}
		return core.TxProof{}, core.ErrTxNotFound
	}
	key := "p:" + string(block[:]) + string(txID[:])
	v, err, shared := g.flights.Do(key, func() (any, error) {
		p, err := g.fetchProof(block, txID)
		if err != nil && g.up.Refresh() {
			g.refreshes.Inc()
			p, err = g.fetchProof(block, txID)
		}
		return p, err
	})
	if shared {
		g.coalesced.Inc()
	}
	if err != nil {
		return core.TxProof{}, err
	}
	return v.(core.TxProof), nil
}

// localProof derives an inclusion proof from a fully cached block.
func (g *Gateway) localProof(b *chain.Block, txID blockcrypto.Hash) (core.TxProof, bool) {
	at := -1
	for i, tx := range b.Txs {
		if tx.ID() == txID {
			at = i
			break
		}
	}
	if at < 0 {
		return core.TxProof{}, false
	}
	tree, err := chain.TxMerkleTree(b.Txs)
	if err != nil {
		return core.TxProof{}, false
	}
	proof, err := tree.Prove(at)
	if err != nil {
		return core.TxProof{}, false
	}
	return core.TxProof{Tx: b.Txs[at], Header: b.Header, Proof: proof}, true
}

// fetchProof queries peers in rotation until one produces a proof that
// verifies against the block's header.
func (g *Gateway) fetchProof(block, txID blockcrypto.Hash) (core.TxProof, error) {
	hdr, err := g.up.Header(block)
	if err != nil {
		return core.TxProof{}, err
	}
	peers := g.up.Peers()
	if len(peers) == 0 {
		return core.TxProof{}, core.ErrTxNotFound
	}
	g.mu.Lock()
	start := g.rotation
	g.rotation++
	g.mu.Unlock()
	for i := 0; i < len(peers); i++ {
		peer := peers[(start+i)%len(peers)]
		resp, err := g.up.TxProof(peer, block, txID)
		if err != nil || !resp.Found || resp.Tx == nil || resp.Tx.ID() != txID {
			continue
		}
		p := core.TxProof{Tx: resp.Tx, Header: hdr, Proof: resp.Proof}
		if p.Verify() == nil {
			return p, nil
		}
	}
	return core.TxProof{}, core.ErrTxNotFound
}
