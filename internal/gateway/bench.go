package gateway

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"icistrategy/internal/chain"
	"icistrategy/internal/metrics"
	"icistrategy/internal/netx"
	"icistrategy/internal/workload"
)

// LoadConfig parameterizes a sustained-QPS gateway load run: an in-process
// storage cluster of real TCP servers, a chain distributed across it, and
// closed-loop clients issuing block reads with Zipfian key popularity.
type LoadConfig struct {
	// Servers is the storage-cluster size; Replication the chunk copies.
	Servers     int
	Replication int
	// Blocks and TxPerBlock shape the chain under test.
	Blocks     int
	TxPerBlock int
	// PayloadBytes pads each transaction (see workload.Config).
	PayloadBytes int
	// Clients is the closed-loop concurrency; Requests the total issued.
	Clients  int
	Requests int
	// ZipfS skews block popularity (0 = uniform).
	ZipfS float64
	// Seed drives the workload and the key-popularity sampling.
	Seed uint64
	// CacheBytes bounds each gateway cache; <= 0 runs with caching off.
	CacheBytes int64
	// ProofEvery issues a light-client proof query instead of a block read
	// every Nth request (0 disables proof traffic).
	ProofEvery int
}

// LoadReport is the measured outcome of one load run.
type LoadReport struct {
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	Seconds      float64 `json:"seconds"`
	QPS          float64 `json:"qps"`
	P50Millis    float64 `json:"p50_ms"`
	P90Millis    float64 `json:"p90_ms"`
	P99Millis    float64 `json:"p99_ms"`
	MaxMillis    float64 `json:"max_ms"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	HitRate      float64 `json:"hit_rate"`
	UpstreamRPCs int64   `json:"upstream_rpcs"`
	BatchedRefs  int64   `json:"batched_refs"`
	Coalesced    int64   `json:"coalesced"`
}

// RunLoad stands up a real TCP storage cluster, distributes a seeded
// chain, and drives the gateway with concurrent closed-loop clients whose
// block choices follow a Zipf law. It returns latency percentiles, QPS,
// and the gateway's cache/batching accounting for the run.
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	if cfg.Servers < 1 || cfg.Blocks < 1 || cfg.Clients < 1 || cfg.Requests < 1 {
		return LoadReport{}, fmt.Errorf("gateway: bad load config %+v", cfg)
	}
	servers := make([]*netx.Server, cfg.Servers)
	addrs := make([]string, cfg.Servers)
	for i := range servers {
		s, err := netx.NewServer("127.0.0.1:0")
		if err != nil {
			return LoadReport{}, err
		}
		defer s.Close()
		servers[i] = s
		addrs[i] = s.Addr()
	}

	gen, err := workload.NewGenerator(workload.Config{
		Accounts: 64, PayloadBytes: cfg.PayloadBytes, Seed: cfg.Seed,
	})
	if err != nil {
		return LoadReport{}, err
	}
	cb, err := workload.NewChainBuilder(gen, 10_000)
	if err != nil {
		return LoadReport{}, err
	}
	cl, err := netx.NewCluster(addrs, cfg.Replication)
	if err != nil {
		return LoadReport{}, err
	}
	defer cl.Close()
	blocks := make([]*chain.Block, cfg.Blocks)
	for i := range blocks {
		b, err := cb.NextBlock(cfg.TxPerBlock)
		if err != nil {
			return LoadReport{}, err
		}
		if err := cl.DistributeBlock(b); err != nil {
			return LoadReport{}, err
		}
		blocks[i] = b
	}

	up, err := NewClusterUpstream(addrs, cfg.Replication)
	if err != nil {
		return LoadReport{}, err
	}
	defer up.Close()
	reg := metrics.NewRegistry()
	g, err := New(Config{
		Upstream:        up,
		BlockCacheBytes: cfg.CacheBytes,
		ChunkCacheBytes: cfg.CacheBytes,
		Registry:        reg,
	})
	if err != nil {
		return LoadReport{}, err
	}

	// Each client owns an independent picker fork so the popularity law is
	// identical regardless of concurrency.
	perClient := cfg.Requests / cfg.Clients
	latencies := make([][]time.Duration, cfg.Clients)
	clientErrs := make([]int, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			picker, perr := workload.NewZipfPicker(cfg.Blocks, cfg.ZipfS, cfg.Seed+uint64(ci)*7919)
			if perr != nil {
				clientErrs[ci] = perClient
				return
			}
			lats := make([]time.Duration, 0, perClient)
			for r := 0; r < perClient; r++ {
				b := blocks[picker.Pick()]
				t0 := time.Now()
				var err error
				if cfg.ProofEvery > 0 && r%cfg.ProofEvery == cfg.ProofEvery-1 {
					tx := b.Txs[r%len(b.Txs)]
					_, err = g.GetTxProof(b.Hash(), tx.ID())
				} else {
					var got *chain.Block
					got, err = g.GetBlock(b.Hash())
					if err == nil && got.Hash() != b.Hash() {
						err = fmt.Errorf("gateway: wrong block served")
					}
				}
				if err != nil {
					clientErrs[ci]++
					continue
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[ci] = lats
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errs := 0
	for ci := range latencies {
		all = append(all, latencies[ci]...)
		errs += clientErrs[ci]
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	snap := reg.Snapshot()
	hits := int64(snap["ici.gateway.block_cache.hits"] + snap["ici.gateway.chunk_cache.hits"])
	misses := int64(snap["ici.gateway.block_cache.misses"] + snap["ici.gateway.chunk_cache.misses"])
	rep := LoadReport{
		Requests:     len(all),
		Errors:       errs,
		Seconds:      elapsed.Seconds(),
		QPS:          float64(len(all)) / elapsed.Seconds(),
		P50Millis:    percentileMillis(all, 0.50),
		P90Millis:    percentileMillis(all, 0.90),
		P99Millis:    percentileMillis(all, 0.99),
		MaxMillis:    percentileMillis(all, 1.0),
		CacheHits:    hits,
		CacheMisses:  misses,
		UpstreamRPCs: int64(snap["ici.gateway.batch.rpcs"]),
		BatchedRefs:  int64(snap["ici.gateway.batch.refs"]),
		Coalesced:    int64(snap["ici.gateway.coalesced"]),
	}
	if hits+misses > 0 {
		rep.HitRate = float64(hits) / float64(hits+misses)
	}
	return rep, nil
}

// percentileMillis reads the p-quantile from sorted latencies.
func percentileMillis(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}
