package gateway

import (
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/metrics"
	"icistrategy/internal/netx"
	"icistrategy/internal/workload"
)

// TestGatewayServesAcrossMembershipChange is the regression test for the
// frozen-membership upstream: a gateway built over the original roster kept
// resolving placement against its construction-time snapshot, so blocks
// written after a member retired were unreadable (wrong parts count, owners
// pointing at the departed server). With epoch-versioned cluster maps the
// gateway refreshes on the miss and serves both pre- and post-churn blocks
// — even with the retired server fully offline.
func TestGatewayServesAcrossMembershipChange(t *testing.T) {
	const n, r = 4, 2
	servers := make([]*netx.Server, n)
	addrs := make([]string, n)
	for i := range servers {
		s, err := netx.NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		servers[i] = s
		addrs[i] = s.Addr()
	}
	gen, err := workload.NewGenerator(workload.Config{Accounts: 40, PayloadBytes: 24, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := workload.NewChainBuilder(gen, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	full, err := netx.NewCluster(addrs, r)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	var pre []*workloadBlock
	for i := 0; i < 3; i++ {
		b, err := cb.NextBlock(16)
		if err != nil {
			t.Fatal(err)
		}
		if err := full.DistributeBlock(b); err != nil {
			t.Fatal(err)
		}
		pre = append(pre, &workloadBlock{b.Hash(), len(b.Txs)})
	}

	up, err := NewClusterUpstream(addrs, r)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	reg := metrics.NewRegistry()
	g, err := New(Config{Upstream: up, BlockCacheBytes: 1 << 20, ChunkCacheBytes: 1 << 20, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the gateway under the full membership so its view predates churn.
	if _, err := g.GetBlock(pre[0].hash); err != nil {
		t.Fatal(err)
	}

	// Graceful departure of the last member: displaced chunks move to their
	// new owners, the shrunk epoch is published, and the server goes away.
	moved, err := full.RetireMember(addrs[n-1])
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("retirement moved no chunks; placement cannot have covered the leaver")
	}
	_ = servers[n-1].Close()

	// Post-churn blocks are written by the shrunk cluster: fewer parts,
	// placement over the remaining members only.
	shrunk, err := netx.NewCluster(addrs[:n-1], r)
	if err != nil {
		t.Fatal(err)
	}
	defer shrunk.Close()
	var post []*workloadBlock
	for i := 0; i < 2; i++ {
		b, err := cb.NextBlock(16)
		if err != nil {
			t.Fatal(err)
		}
		if err := shrunk.DistributeBlock(b); err != nil {
			t.Fatal(err)
		}
		post = append(post, &workloadBlock{b.Hash(), len(b.Txs)})
	}

	// The gateway's map is still epoch 0: the first post-churn read misses,
	// refreshes the cluster map, and succeeds on retry.
	for _, want := range post {
		got, err := g.GetBlock(want.hash)
		if err != nil {
			t.Fatalf("post-churn block: %v", err)
		}
		if got.Hash() != want.hash || len(got.Txs) != want.txs {
			t.Fatal("post-churn block mismatch")
		}
	}
	if reg.Snapshot()["ici.gateway.map_refreshes"] == 0 {
		t.Fatal("stale-map recovery did not refresh the cluster map")
	}

	// Pre-churn history stays readable with the retired member offline:
	// write-epoch owners answer where they survived, migrated replicas
	// answer for the leaver's share.
	for _, want := range pre {
		got, err := g.GetBlock(want.hash)
		if err != nil {
			t.Fatalf("pre-churn block: %v", err)
		}
		if got.Hash() != want.hash || len(got.Txs) != want.txs {
			t.Fatal("pre-churn block mismatch")
		}
	}

	// A fresh gateway that only ever knew the shrunk roster also reads the
	// pre-churn history (its map lists every epoch, so write-epoch parts
	// resolve correctly even though the roster grew from 3 members).
	up2, err := NewClusterUpstream(addrs[:n-1], r)
	if err != nil {
		t.Fatal(err)
	}
	defer up2.Close()
	if !up2.Refresh() {
		t.Fatal("fresh upstream did not adopt the published cluster map")
	}
	g2, err := New(Config{Upstream: up2, BlockCacheBytes: 1 << 20, ChunkCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range append(append([]*workloadBlock(nil), pre...), post...) {
		got, err := g2.GetBlock(want.hash)
		if err != nil {
			t.Fatalf("fresh gateway: %v", err)
		}
		if len(got.Txs) != want.txs {
			t.Fatal("fresh gateway block mismatch")
		}
	}

	// Proof reads rotate over live peers only — the offline member must not
	// make light-client queries flaky.
	for i := 0; i < 2*n; i++ {
		if _, err := g2.GetTxProof(post[0].hash, fakeTxID(t, g2, post[0].hash, i)); err != nil {
			t.Fatalf("proof rotation %d: %v", i, err)
		}
	}
}

// workloadBlock records the identity and size of a distributed block so the
// test can drop the block itself (gateway reads must reproduce it).
type workloadBlock struct {
	hash blockcrypto.Hash
	txs  int
}

// fakeTxID picks the i-th transaction ID of a block via the gateway itself.
func fakeTxID(t *testing.T, g *Gateway, block blockcrypto.Hash, i int) blockcrypto.Hash {
	t.Helper()
	b, err := g.GetBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	return b.Txs[i%len(b.Txs)].ID()
}

// TestUpstreamRefreshNoMapIsFalse pins the no-op path: with no published
// map anywhere, Refresh reports false and placement stays on epoch 0.
func TestUpstreamRefreshNoMapIsFalse(t *testing.T) {
	addrs, blocks := startCluster(t, 3, 2, 1, 10)
	up, err := NewClusterUpstream(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	if up.Refresh() {
		t.Fatal("Refresh adopted a map nobody published")
	}
	parts, err := up.Parts(blocks[0].Hash())
	if err != nil {
		t.Fatal(err)
	}
	if parts != 3 {
		t.Fatalf("parts = %d, want 3", parts)
	}
	if got := up.Peers(); len(got) != 3 {
		t.Fatalf("peers = %v, want 3 members", got)
	}
}
