package gateway

import (
	"errors"
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/netx"
	"icistrategy/internal/workload"
)

// startCluster launches n real TCP storage servers, distributes blocks
// across them with replication r, and returns the addresses and blocks.
func startCluster(t *testing.T, n, r, blockCount, txPerBlock int) ([]string, []*chain.Block) {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		s, err := netx.NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		addrs[i] = s.Addr()
	}
	gen, err := workload.NewGenerator(workload.Config{Accounts: 40, PayloadBytes: 24, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := workload.NewChainBuilder(gen, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := netx.NewCluster(addrs, r)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	blocks := make([]*chain.Block, blockCount)
	for i := range blocks {
		b, err := cb.NextBlock(txPerBlock)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.DistributeBlock(b); err != nil {
			t.Fatal(err)
		}
		blocks[i] = b
	}
	return addrs, blocks
}

// TestGatewayEndToEndOverTCP drives the full stack: real storage servers,
// ClusterUpstream, a Gateway, its TCP listener, and a wire client.
func TestGatewayEndToEndOverTCP(t *testing.T) {
	addrs, blocks := startCluster(t, 5, 2, 3, 20)
	up, err := NewClusterUpstream(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	reg := metrics.NewRegistry()
	g, err := New(Config{Upstream: up, BlockCacheBytes: 1 << 20, ChunkCacheBytes: 1 << 20, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", g)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, b := range blocks {
		got, err := c.GetBlock(b.Hash())
		if err != nil {
			t.Fatal(err)
		}
		if got.Hash() != b.Hash() || len(got.Txs) != len(b.Txs) {
			t.Fatal("block mismatch through gateway wire")
		}
	}
	// Proof for a transaction of the middle block; the client re-verifies.
	b := blocks[1]
	tx := b.Txs[len(b.Txs)/2]
	p, err := c.GetTxProof(b.Hash(), tx.ID())
	if err != nil {
		t.Fatal(err)
	}
	if p.Tx.ID() != tx.ID() {
		t.Fatal("wrong transaction proved")
	}

	// Unknown block surfaces as a remote error, not a hang or crash.
	if _, err := c.GetBlock(blockcrypto.Sum256([]byte("missing"))); !errors.Is(err, ErrRemote) {
		t.Fatalf("unknown block: got %v, want ErrRemote", err)
	}
	// Unknown transaction in a known block.
	if _, err := c.GetTxProof(b.Hash(), blockcrypto.Sum256([]byte("ghost"))); !errors.Is(err, ErrRemote) {
		t.Fatalf("unknown tx: got %v, want ErrRemote", err)
	}

	// Re-reading a block is a cache hit: no new upstream batch RPCs.
	snap1 := reg.Snapshot()
	if _, err := c.GetBlock(blocks[0].Hash()); err != nil {
		t.Fatal(err)
	}
	snap2 := reg.Snapshot()
	if snap2["ici.gateway.batch.rpcs"] != snap1["ici.gateway.batch.rpcs"] {
		t.Fatal("cached block re-read issued upstream RPCs")
	}
	if snap2["ici.gateway.block_cache.hits"] <= snap1["ici.gateway.block_cache.hits"] {
		t.Fatal("cache hit not recorded")
	}
}

// TestClusterUpstreamHeaderSync covers the incremental header index: a
// fresh upstream resolves any distributed block's header, and a later
// block distributed after the first sync is still found.
func TestClusterUpstreamHeaderSync(t *testing.T) {
	addrs, blocks := startCluster(t, 3, 1, 2, 10)
	up, err := NewClusterUpstream(addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()

	h, err := up.Header(blocks[1].Hash())
	if err != nil {
		t.Fatal(err)
	}
	if h.Hash() != blocks[1].Hash() {
		t.Fatal("wrong header")
	}

	// Unknown hash: clean error.
	if _, err := up.Header(blockcrypto.Sum256([]byte("nope"))); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("got %v, want ErrUnknownBlock", err)
	}

	// Rendezvous placement agrees with the writer's: every owner the
	// upstream names actually serves the chunk.
	b := blocks[0]
	parts, err := up.Parts(b.Hash())
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < parts; idx++ {
		owners, err := up.Owners(b.Hash(), idx)
		if err != nil {
			t.Fatal(err)
		}
		if len(owners) != 1 {
			t.Fatalf("r=1 placement returned %d owners", len(owners))
		}
		resp, err := up.FetchBatch(owners[0], []netx.ChunkRef{{Block: b.Hash(), Index: idx}})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Found[0] {
			t.Fatalf("owner %d does not hold chunk %d", owners[0], idx)
		}
	}
}

// TestGatewayProofMatchesCoreVerify ties the wire proof back to the core
// light-client contract.
func TestGatewayProofMatchesCoreVerify(t *testing.T) {
	addrs, blocks := startCluster(t, 4, 2, 1, 15)
	up, err := NewClusterUpstream(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	g, err := New(Config{Upstream: up, BlockCacheBytes: 1 << 20, ChunkCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	b := blocks[0]
	for _, tx := range b.Txs {
		p, err := g.GetTxProof(b.Hash(), tx.ID())
		if err != nil {
			t.Fatalf("tx %s: %v", tx.ID().Short(), err)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("tx %s: %v", tx.ID().Short(), err)
		}
	}
	if _, err := g.GetTxProof(b.Hash(), blockcrypto.Sum256([]byte("ghost"))); !errors.Is(err, core.ErrTxNotFound) {
		t.Fatalf("got %v, want core.ErrTxNotFound", err)
	}
}
