package gateway

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/netx"
	"icistrategy/internal/simnet"
)

// Gateway errors.
var (
	ErrUnknownBlock = errors.New("gateway: unknown block")
	ErrIncomplete   = errors.New("gateway: could not gather every chunk")
)

// Upstream is the storage-cluster view the gateway reads through. The
// production implementation is ClusterUpstream (below) over the netx TCP
// protocol; tests substitute fakes to count and fault upstream traffic.
//
// Peer numbers are stable for the lifetime of the Upstream — membership
// refreshes may add peers but never renumber existing ones, so cached
// placement and per-peer batching stay coherent across churn.
type Upstream interface {
	// Parts returns how many chunks the block was split into at write time
	// (the netx distribution convention: one chunk per member of the
	// membership epoch the block was written under).
	Parts(block blockcrypto.Hash) (int, error)
	// Owners returns the peers that may hold chunk idx of the block: its
	// write-epoch owners in rendezvous preference order, then any owners
	// the chunk migrated to under the newest epoch.
	Owners(block blockcrypto.Hash, idx int) ([]int, error)
	// Peers returns the current (newest-epoch) members, for operations that
	// address the live cluster rather than one block's placement.
	Peers() []int
	// Refresh re-fetches the cluster map from the live members and reports
	// whether a newer membership was adopted — the recovery path when a
	// read misses because the local map went stale.
	Refresh() bool
	// Header resolves a block hash to its header.
	Header(block blockcrypto.Hash) (chain.Header, error)
	// FetchBatch fetches chunks from one peer in a single round trip; the
	// response answers position-for-position with Found flags.
	FetchBatch(peer int, refs []netx.ChunkRef) (*netx.ChunkBatchResp, error)
	// TxProof asks one peer for a transaction plus its stored Merkle proof.
	TxProof(peer int, block, txID blockcrypto.Hash) (*netx.TxProofResp, error)
}

// ClusterUpstream reads from a netx storage cluster: one cached connection
// per member, the same rendezvous placement the writers used, and a local
// header index kept fresh by incremental header syncs.
//
// Membership is epoch-versioned: the upstream starts from the constructor
// roster as epoch 0 and adopts any newer cluster map published to the
// servers (see netx.SetClusterMap). Blocks resolve their placement against
// the epoch they were written under, so reads of pre-churn history keep
// working after members join or retire. The peer roster is append-only —
// a member keeps its peer number across refreshes and rejoins.
type ClusterUpstream struct {
	replication int

	mu      sync.Mutex
	roster  []string        // peer number -> address; append-only
	idOf    []simnet.NodeID // peer number -> placement identity
	peerOf  map[string]int  // address -> peer number
	epochs  []netx.EpochInfo
	clients map[int]*netx.Client
	timeout time.Duration

	hmu        sync.Mutex
	headers    map[blockcrypto.Hash]chain.Header
	nextHeight uint64
}

// NewClusterUpstream wires an upstream over the cluster's server addresses;
// replication must match the value blocks were distributed with. The given
// addresses become membership epoch 0 (identity i at addrs[i] — the
// netx.NewCluster convention); later epochs arrive via Refresh.
func NewClusterUpstream(addrs []string, replication int) (*ClusterUpstream, error) {
	if len(addrs) == 0 {
		return nil, netx.ErrNoServers
	}
	if replication < 1 || replication > len(addrs) {
		return nil, fmt.Errorf("gateway: replication %d with %d servers", replication, len(addrs))
	}
	members := make([]netx.MemberInfo, len(addrs))
	for i, addr := range addrs {
		members[i] = netx.MemberInfo{ID: uint64(i), Addr: addr}
	}
	u := &ClusterUpstream{
		replication: replication,
		peerOf:      make(map[string]int),
		clients:     make(map[int]*netx.Client),
		timeout:     netx.DefaultRPCTimeout,
		headers:     make(map[blockcrypto.Hash]chain.Header),
	}
	u.adoptLocked([]netx.EpochInfo{{Epoch: 0, FromHeight: 0, Members: members}})
	return u, nil
}

// adoptLocked installs a cluster map, growing the append-only roster with
// any member not yet numbered. Callers hold u.mu (or are the constructor).
func (u *ClusterUpstream) adoptLocked(epochs []netx.EpochInfo) {
	for _, e := range epochs {
		for _, m := range e.Members {
			if p, ok := u.peerOf[m.Addr]; ok {
				u.idOf[p] = simnet.NodeID(m.ID)
				continue
			}
			u.peerOf[m.Addr] = len(u.roster)
			u.roster = append(u.roster, m.Addr)
			u.idOf = append(u.idOf, simnet.NodeID(m.ID))
		}
	}
	u.epochs = append([]netx.EpochInfo(nil), epochs...)
}

// epochForLocked resolves the membership epoch governing a write height:
// the last epoch whose FromHeight does not exceed it (so back-to-back
// epochs at one height resolve to the later — same arithmetic as core).
func (u *ClusterUpstream) epochForLocked(height uint64) netx.EpochInfo {
	for i := len(u.epochs) - 1; i > 0; i-- {
		if u.epochs[i].FromHeight <= height {
			return u.epochs[i]
		}
	}
	return u.epochs[0]
}

// SetTimeout sets the per-round-trip deadline for upstream calls.
func (u *ClusterUpstream) SetTimeout(d time.Duration) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.timeout = d
	for _, c := range u.clients {
		c.SetTimeout(d)
	}
}

// Close drops every cached connection.
func (u *ClusterUpstream) Close() {
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, c := range u.clients {
		_ = c.Close()
	}
	u.clients = make(map[int]*netx.Client)
}

// Parts implements Upstream: the chunk count of the membership epoch the
// block was written under.
func (u *ClusterUpstream) Parts(block blockcrypto.Hash) (int, error) {
	hdr, err := u.Header(block)
	if err != nil {
		return 0, err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.epochForLocked(hdr.Height).Members), nil
}

// ownersOf maps a member set's rendezvous owners for one chunk to peer
// numbers, clamping replication to the set size.
func (u *ClusterUpstream) ownersOf(seed uint64, members []netx.MemberInfo, idx int) ([]int, error) {
	ids := make([]simnet.NodeID, len(members))
	for i, m := range members {
		ids[i] = simnet.NodeID(m.ID)
	}
	r := u.replication
	if r > len(ids) {
		r = len(ids)
	}
	owners, err := core.Owners(seed, ids, idx, r)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, len(owners))
	for _, o := range owners {
		for i, m := range members {
			if simnet.NodeID(m.ID) == o {
				out = append(out, u.peerOf[members[i].Addr])
				break
			}
		}
	}
	return out, nil
}

// Owners implements Upstream: the block's write-epoch owners first (where
// the chunk was placed), then any distinct owners under the newest epoch
// (where graceful departures migrate it to).
func (u *ClusterUpstream) Owners(block blockcrypto.Hash, idx int) ([]int, error) {
	hdr, err := u.Header(block)
	if err != nil {
		return nil, err
	}
	seed := block.Uint64()
	u.mu.Lock()
	wrote := u.epochForLocked(hdr.Height)
	newest := u.epochs[len(u.epochs)-1]
	writeOwners, werr := u.ownersOf(seed, wrote.Members, idx)
	if werr != nil {
		u.mu.Unlock()
		return nil, werr
	}
	out := writeOwners
	if newest.Epoch != wrote.Epoch {
		newOwners, nerr := u.ownersOf(seed, newest.Members, idx)
		if nerr != nil {
			u.mu.Unlock()
			return nil, nerr
		}
		seen := make(map[int]bool, len(out))
		for _, p := range out {
			seen[p] = true
		}
		for _, p := range newOwners {
			if !seen[p] {
				out = append(out, p)
			}
		}
	}
	u.mu.Unlock()
	return out, nil
}

// Peers implements Upstream: the newest epoch's members by peer number.
func (u *ClusterUpstream) Peers() []int {
	u.mu.Lock()
	defer u.mu.Unlock()
	newest := u.epochs[len(u.epochs)-1]
	out := make([]int, 0, len(newest.Members))
	for _, m := range newest.Members {
		out = append(out, u.peerOf[m.Addr])
	}
	return out
}

// Refresh implements Upstream: poll every known peer for its cluster map
// and adopt the newest one found. Returns true when membership advanced —
// the caller's cue to retry a read that missed under the stale map.
func (u *ClusterUpstream) Refresh() bool {
	u.mu.Lock()
	known := len(u.roster)
	have := u.epochs[len(u.epochs)-1].Epoch
	u.mu.Unlock()

	var best []netx.EpochInfo
	for peer := 0; peer < known; peer++ {
		c, err := u.client(peer)
		if err != nil {
			continue
		}
		epochs, err := c.GetClusterMap()
		if err != nil {
			u.dropClient(peer)
			continue
		}
		if len(epochs) > 0 && epochs[len(epochs)-1].Epoch > have && len(epochs) > len(best) {
			best = epochs
		}
	}
	if best == nil {
		return false
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if best[len(best)-1].Epoch <= u.epochs[len(u.epochs)-1].Epoch {
		return false // raced with another refresher
	}
	u.adoptLocked(best)
	return true
}

// client returns a cached or fresh connection to peer.
func (u *ClusterUpstream) client(peer int) (*netx.Client, error) {
	u.mu.Lock()
	if peer < 0 || peer >= len(u.roster) {
		u.mu.Unlock()
		return nil, fmt.Errorf("gateway: peer %d of %d", peer, len(u.roster))
	}
	if c, ok := u.clients[peer]; ok {
		u.mu.Unlock()
		return c, nil
	}
	addr := u.roster[peer]
	timeout := u.timeout
	u.mu.Unlock()
	c, err := netx.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.SetTimeout(timeout)
	u.mu.Lock()
	defer u.mu.Unlock()
	if existing, ok := u.clients[peer]; ok {
		_ = c.Close()
		return existing, nil
	}
	u.clients[peer] = c
	return c, nil
}

// dropClient evicts a connection after a transport failure (the deadline
// may have left a frame half-read; the connection is poisoned).
func (u *ClusterUpstream) dropClient(peer int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if c, ok := u.clients[peer]; ok {
		_ = c.Close()
		delete(u.clients, peer)
	}
}

// FetchBatch implements Upstream.
func (u *ClusterUpstream) FetchBatch(peer int, refs []netx.ChunkRef) (*netx.ChunkBatchResp, error) {
	c, err := u.client(peer)
	if err != nil {
		return nil, err
	}
	resp, err := c.GetChunkBatch(refs)
	if err != nil {
		u.dropClient(peer)
		return nil, err
	}
	return resp, nil
}

// TxProof implements Upstream.
func (u *ClusterUpstream) TxProof(peer int, block, txID blockcrypto.Hash) (*netx.TxProofResp, error) {
	c, err := u.client(peer)
	if err != nil {
		return nil, err
	}
	resp, err := c.GetTxProof(block, txID)
	if err != nil {
		u.dropClient(peer)
		return nil, err
	}
	return resp, nil
}

// Header implements Upstream: a local index miss triggers one incremental
// header sync (every header at or above the highest height seen) from the
// first reachable live member before giving up.
func (u *ClusterUpstream) Header(block blockcrypto.Hash) (chain.Header, error) {
	u.hmu.Lock()
	if h, ok := u.headers[block]; ok {
		u.hmu.Unlock()
		return h, nil
	}
	from := u.nextHeight
	u.hmu.Unlock()

	var lastErr error = ErrUnknownBlock
	for _, peer := range u.Peers() {
		c, err := u.client(peer)
		if err != nil {
			lastErr = err
			continue
		}
		hdrs, err := c.GetHeaders(from)
		if err != nil {
			u.dropClient(peer)
			lastErr = err
			continue
		}
		u.hmu.Lock()
		for _, h := range hdrs {
			u.headers[h.Hash()] = h
			if h.Height+1 > u.nextHeight {
				u.nextHeight = h.Height + 1
			}
		}
		h, ok := u.headers[block]
		u.hmu.Unlock()
		if ok {
			return h, nil
		}
		return chain.Header{}, fmt.Errorf("%w: %s", ErrUnknownBlock, block.Short())
	}
	return chain.Header{}, fmt.Errorf("gateway: header sync: %w", lastErr)
}
