package gateway

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/netx"
	"icistrategy/internal/simnet"
)

// Gateway errors.
var (
	ErrUnknownBlock = errors.New("gateway: unknown block")
	ErrIncomplete   = errors.New("gateway: could not gather every chunk")
)

// Upstream is the storage-cluster view the gateway reads through. The
// production implementation is ClusterUpstream (below) over the netx TCP
// protocol; tests substitute fakes to count and fault upstream traffic.
type Upstream interface {
	// Parts returns how many chunks each block is split into (the netx
	// distribution convention: one chunk per cluster member).
	Parts() int
	// Owners returns the peer indexes storing chunk idx of the block, in
	// rendezvous preference order.
	Owners(block blockcrypto.Hash, idx int) ([]int, error)
	// Header resolves a block hash to its header.
	Header(block blockcrypto.Hash) (chain.Header, error)
	// FetchBatch fetches chunks from one peer in a single round trip; the
	// response answers position-for-position with Found flags.
	FetchBatch(peer int, refs []netx.ChunkRef) (*netx.ChunkBatchResp, error)
	// TxProof asks one peer for a transaction plus its stored Merkle proof.
	TxProof(peer int, block, txID blockcrypto.Hash) (*netx.TxProofResp, error)
}

// ClusterUpstream reads from a netx storage cluster: one cached connection
// per member, the same rendezvous placement the writers used, and a local
// header index kept fresh by incremental header syncs.
type ClusterUpstream struct {
	addrs       []string
	ids         []simnet.NodeID
	replication int

	mu      sync.Mutex
	clients map[int]*netx.Client
	timeout time.Duration

	hmu        sync.Mutex
	headers    map[blockcrypto.Hash]chain.Header
	nextHeight uint64
}

// NewClusterUpstream wires an upstream over the cluster's server addresses;
// replication must match the value blocks were distributed with.
func NewClusterUpstream(addrs []string, replication int) (*ClusterUpstream, error) {
	if len(addrs) == 0 {
		return nil, netx.ErrNoServers
	}
	if replication < 1 || replication > len(addrs) {
		return nil, fmt.Errorf("gateway: replication %d with %d servers", replication, len(addrs))
	}
	ids := make([]simnet.NodeID, len(addrs))
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	return &ClusterUpstream{
		addrs:       addrs,
		ids:         ids,
		replication: replication,
		clients:     make(map[int]*netx.Client),
		timeout:     netx.DefaultRPCTimeout,
		headers:     make(map[blockcrypto.Hash]chain.Header),
	}, nil
}

// SetTimeout sets the per-round-trip deadline for upstream calls.
func (u *ClusterUpstream) SetTimeout(d time.Duration) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.timeout = d
	for _, c := range u.clients {
		c.SetTimeout(d)
	}
}

// Close drops every cached connection.
func (u *ClusterUpstream) Close() {
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, c := range u.clients {
		_ = c.Close()
	}
	u.clients = make(map[int]*netx.Client)
}

// Parts implements Upstream.
func (u *ClusterUpstream) Parts() int { return len(u.addrs) }

// Owners implements Upstream with the cluster's rendezvous placement.
func (u *ClusterUpstream) Owners(block blockcrypto.Hash, idx int) ([]int, error) {
	owners, err := core.Owners(block.Uint64(), u.ids, idx, u.replication)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(owners))
	for i, o := range owners {
		out[i] = int(o)
	}
	return out, nil
}

// client returns a cached or fresh connection to peer.
func (u *ClusterUpstream) client(peer int) (*netx.Client, error) {
	if peer < 0 || peer >= len(u.addrs) {
		return nil, fmt.Errorf("gateway: peer %d of %d", peer, len(u.addrs))
	}
	u.mu.Lock()
	if c, ok := u.clients[peer]; ok {
		u.mu.Unlock()
		return c, nil
	}
	timeout := u.timeout
	u.mu.Unlock()
	c, err := netx.Dial(u.addrs[peer])
	if err != nil {
		return nil, err
	}
	c.SetTimeout(timeout)
	u.mu.Lock()
	defer u.mu.Unlock()
	if existing, ok := u.clients[peer]; ok {
		_ = c.Close()
		return existing, nil
	}
	u.clients[peer] = c
	return c, nil
}

// dropClient evicts a connection after a transport failure (the deadline
// may have left a frame half-read; the connection is poisoned).
func (u *ClusterUpstream) dropClient(peer int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if c, ok := u.clients[peer]; ok {
		_ = c.Close()
		delete(u.clients, peer)
	}
}

// FetchBatch implements Upstream.
func (u *ClusterUpstream) FetchBatch(peer int, refs []netx.ChunkRef) (*netx.ChunkBatchResp, error) {
	c, err := u.client(peer)
	if err != nil {
		return nil, err
	}
	resp, err := c.GetChunkBatch(refs)
	if err != nil {
		u.dropClient(peer)
		return nil, err
	}
	return resp, nil
}

// TxProof implements Upstream.
func (u *ClusterUpstream) TxProof(peer int, block, txID blockcrypto.Hash) (*netx.TxProofResp, error) {
	c, err := u.client(peer)
	if err != nil {
		return nil, err
	}
	resp, err := c.GetTxProof(block, txID)
	if err != nil {
		u.dropClient(peer)
		return nil, err
	}
	return resp, nil
}

// Header implements Upstream: a local index miss triggers one incremental
// header sync (every header at or above the highest height seen) from the
// first reachable peer before giving up.
func (u *ClusterUpstream) Header(block blockcrypto.Hash) (chain.Header, error) {
	u.hmu.Lock()
	if h, ok := u.headers[block]; ok {
		u.hmu.Unlock()
		return h, nil
	}
	from := u.nextHeight
	u.hmu.Unlock()

	var lastErr error = ErrUnknownBlock
	for peer := range u.addrs {
		c, err := u.client(peer)
		if err != nil {
			lastErr = err
			continue
		}
		hdrs, err := c.GetHeaders(from)
		if err != nil {
			u.dropClient(peer)
			lastErr = err
			continue
		}
		u.hmu.Lock()
		for _, h := range hdrs {
			u.headers[h.Hash()] = h
			if h.Height+1 > u.nextHeight {
				u.nextHeight = h.Height + 1
			}
		}
		h, ok := u.headers[block]
		u.hmu.Unlock()
		if ok {
			return h, nil
		}
		return chain.Header{}, fmt.Errorf("%w: %s", ErrUnknownBlock, block.Short())
	}
	return chain.Header{}, fmt.Errorf("gateway: header sync: %w", lastErr)
}
