package gateway

import (
	"sync"

	"icistrategy/internal/metrics"
	"icistrategy/internal/netx"
)

// chunkResult is one answer delivered to a batch subscriber.
type chunkResult struct {
	chunk *netx.ChunkResp // nil when the peer does not hold the chunk
	err   error           // transport failure talking to the peer
}

// batcher coalesces chunk wants for the same peer into shared round trips:
// while one GetChunkBatch RPC is in flight to a peer, every want that
// arrives for that peer accumulates and rides the next RPC together —
// cross-request batching with no timers, so an idle gateway adds zero
// latency and a busy one amortizes round trips across requests.
type batcher struct {
	up    Upstream
	rpcs  *metrics.Counter // ici.gateway.batch.rpcs
	refs  *metrics.Counter // ici.gateway.batch.refs
	mu    sync.Mutex
	peers map[int]*peerQueue
}

type peerQueue struct {
	mu       sync.Mutex
	pending  map[netx.ChunkRef][]chan chunkResult
	inflight bool
}

func newBatcher(up Upstream, rpcs, refs *metrics.Counter) *batcher {
	return &batcher{up: up, rpcs: rpcs, refs: refs, peers: make(map[int]*peerQueue)}
}

func (b *batcher) queue(peer int) *peerQueue {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.peers[peer]
	if !ok {
		q = &peerQueue{pending: make(map[netx.ChunkRef][]chan chunkResult)}
		b.peers[peer] = q
	}
	return q
}

// Fetch asks peer for ref, sharing wire round trips with every concurrent
// Fetch to the same peer. Identical refs wanted by several callers are
// deduplicated onto one wire slot and fanned back out.
func (b *batcher) Fetch(peer int, ref netx.ChunkRef) (*netx.ChunkResp, error) {
	ch := make(chan chunkResult, 1)
	q := b.queue(peer)
	q.mu.Lock()
	q.pending[ref] = append(q.pending[ref], ch)
	drain := !q.inflight
	if drain {
		q.inflight = true
	}
	q.mu.Unlock()
	if drain {
		//icilint:allow goroleak(single drainer per peer; every Fetch blocks on its result channel until the drainer replies, and the drainer exits once pending empties)
		go b.drain(peer, q)
	}
	res := <-ch
	return res.chunk, res.err
}

// drain issues batched RPCs for peer until no wants remain. Wants that
// arrive while an RPC is in flight are picked up by the next loop
// iteration; the inflight flag guarantees exactly one drainer per peer.
func (b *batcher) drain(peer int, q *peerQueue) {
	for {
		q.mu.Lock()
		if len(q.pending) == 0 {
			q.inflight = false
			q.mu.Unlock()
			return
		}
		batch := q.pending
		q.pending = make(map[netx.ChunkRef][]chan chunkResult)
		q.mu.Unlock()

		refs := make([]netx.ChunkRef, 0, len(batch))
		for ref := range batch {
			refs = append(refs, ref)
		}
		b.rpcs.Inc()
		b.refs.Add(int64(len(refs)))
		resp, err := b.up.FetchBatch(peer, refs)
		for i, ref := range refs {
			var res chunkResult
			switch {
			case err != nil:
				res = chunkResult{err: err}
			case resp.Found[i]:
				chunk := resp.Chunks[i]
				res = chunkResult{chunk: &chunk}
			}
			for _, ch := range batch[ref] {
				ch <- res
			}
		}
	}
}
