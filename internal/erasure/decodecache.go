package erasure

// LRU cache of inverted decode matrices.
//
// Reconstructing with data shards missing requires inverting the k×k
// submatrix of the encode matrix formed by the first k present rows — an
// O(k³) Gaussian elimination. Loss patterns repeat heavily in practice (a
// crashed cluster member erases the same shard indices for every block it
// held), so Code keeps a small LRU keyed by the present-row set and skips
// elimination on a hit. Entries are immutable once inserted; the cache is
// mutex-guarded so a registry-shared Code is safe under concurrent
// Reconstruct calls.

import (
	"container/list"
	"sync"
)

// decodeCacheCap bounds the per-Code cache. Shard indices fit a byte, so a
// key is k bytes and an entry k² bytes: even at k=255 the cache stays far
// below a megabyte.
const decodeCacheCap = 32

type decodeCacheEntry struct {
	key string
	inv *matrix
}

type decodeCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element // key -> element holding *decodeCacheEntry
	order   list.List                // front = most recently used
}

// decodeKey packs the present-row indices (each < 256) into a map key.
func decodeKey(rows []int) string {
	b := make([]byte, len(rows))
	for i, r := range rows {
		b[i] = byte(r)
	}
	return string(b)
}

// get returns the cached inverse for the row set, or nil.
func (c *decodeCache) get(key string) *matrix {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*decodeCacheEntry).inv
}

// put inserts an inverse, evicting the least recently used entry at
// capacity. Racing inserts of the same key keep the first entry (both are
// identical inverses of the same submatrix).
func (c *decodeCache) put(key string, inv *matrix) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]*list.Element, decodeCacheCap)
	}
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&decodeCacheEntry{key: key, inv: inv})
	if c.order.Len() > decodeCacheCap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*decodeCacheEntry).key)
	}
}

// len reports the number of cached inverses (test hook).
func (c *decodeCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
