package erasure

// Bounded worker pool for shard-parallel encoding and reconstruction.
//
// Output rows are split into (row, column-range) tasks with disjoint write
// sets, so workers never contend and the result is byte-identical to the
// sequential order regardless of scheduling. Parallelism only kicks in
// above parallelMinShardBytes: Quick-config tests and small matrix work run
// strictly sequentially (deterministic, no goroutine overhead), while
// 1 MiB-class blocks fan out across the pool.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	// parallelMinShardBytes is the per-shard size below which encode and
	// reconstruct stay sequential.
	parallelMinShardBytes = 64 << 10
	// parallelChunkBytes is the column-range granularity of one pool task:
	// small enough to balance load across rows, large enough that the
	// per-task overhead is noise.
	parallelChunkBytes = 64 << 10
)

// maxWorkers bounds the pool. Workers are spawned per call and exit when
// the task list drains; the bound keeps a process full of concurrent codecs
// from oversubscribing the scheduler.
var maxWorkers = runtime.GOMAXPROCS(0)

// rowTask names one unit of pool work: output row r, columns [lo, hi).
type rowTask struct {
	row    int
	lo, hi int
}

// runRowTasks executes fn for every task, fanning out across the bounded
// pool when it is worth it. fn must write only to the task's row/range.
func runRowTasks(tasks []rowTask, fn func(rowTask)) {
	workers := min(len(tasks), maxWorkers)
	if workers <= 1 {
		for _, t := range tasks {
			fn(t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				fn(tasks[i])
			}
		}()
	}
	wg.Wait()
}

// rowTasks builds the task list for rows output rows of size bytes each:
// one task per row when sequential or small, column-split tasks when the
// shards are large enough to parallelize.
func rowTasks(rows, size int) []rowTask {
	if size < parallelMinShardBytes || maxWorkers <= 1 {
		tasks := make([]rowTask, rows)
		for r := range tasks {
			tasks[r] = rowTask{row: r, lo: 0, hi: size}
		}
		return tasks
	}
	var tasks []rowTask
	for r := 0; r < rows; r++ {
		for lo := 0; lo < size; lo += parallelChunkBytes {
			hi := min(lo+parallelChunkBytes, size)
			tasks = append(tasks, rowTask{row: r, lo: lo, hi: hi})
		}
	}
	return tasks
}
