package erasure

// Codec registry: one shared *Code per (k, m).
//
// Building a Code derives the systematic Vandermonde matrix — an O(k³)
// inversion plus an O(n·k²) multiply. Callers throughout the repo (coded
// retrieval, archival, experiments, benchmarks) keep asking for the same
// handful of shapes, and every retrieval response used to pay the
// derivation again. Cached hands out a process-wide singleton instead; a
// Code is safe for concurrent use, so sharing is free.

import "sync"

// codecKey identifies a code shape.
type codecKey struct{ data, parity int }

var codecs sync.Map // codecKey -> *Code

// Cached returns the shared Code for (dataShards, parityShards), building
// it on first request. Invalid shapes return the same errors as New.
func Cached(dataShards, parityShards int) (*Code, error) {
	key := codecKey{dataShards, parityShards}
	if v, ok := codecs.Load(key); ok {
		return v.(*Code), nil
	}
	c, err := New(dataShards, parityShards)
	if err != nil {
		return nil, err
	}
	v, _ := codecs.LoadOrStore(key, c)
	return v.(*Code), nil
}
