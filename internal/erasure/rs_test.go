package erasure

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"icistrategy/internal/blockcrypto"
)

func TestGFFieldAxioms(t *testing.T) {
	// Spot-check multiplicative structure on every element.
	for a := 1; a < 256; a++ {
		x := byte(a)
		if got := gfMul(x, gfInv(x)); got != 1 {
			t.Fatalf("x * x^-1 = %d for x=%d", got, a)
		}
		if gfMul(x, 1) != x {
			t.Fatalf("x*1 != x for x=%d", a)
		}
		if gfMul(x, 0) != 0 {
			t.Fatalf("x*0 != 0 for x=%d", a)
		}
	}
}

func TestGFMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		return gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFDistributive(t *testing.T) {
	f := func(a, b, c byte) bool {
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFDiv(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return gfMul(gfDiv(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFPow(t *testing.T) {
	for _, base := range []byte{1, 2, 3, 0x53} {
		acc := byte(1)
		for p := 0; p < 10; p++ {
			if got := gfPow(base, p); got != acc {
				t.Fatalf("gfPow(%d,%d) = %d, want %d", base, p, got, acc)
			}
			acc = gfMul(acc, base)
		}
	}
	if gfPow(0, 0) != 1 || gfPow(0, 5) != 0 {
		t.Fatal("gfPow zero-base conventions broken")
	}
}

func TestMatrixInvertIdentity(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		id := identityMatrix(n)
		inv, ok := id.invert()
		if !ok {
			t.Fatalf("identity(%d) reported singular", n)
		}
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				want := byte(0)
				if r == c {
					want = 1
				}
				if inv.at(r, c) != want {
					t.Fatalf("inv(identity) not identity at (%d,%d)", r, c)
				}
			}
		}
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	m := newMatrix(2, 2) // all zeros
	if _, ok := m.invert(); ok {
		t.Fatal("zero matrix inverted")
	}
	m.set(0, 0, 1)
	m.set(0, 1, 1)
	m.set(1, 0, 1)
	m.set(1, 1, 1) // rank 1
	if _, ok := m.invert(); ok {
		t.Fatal("rank-1 matrix inverted")
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	rng := blockcrypto.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(8) + 1
		m := newMatrix(n, n)
		for i := range m.data {
			m.data[i] = byte(rng.Intn(256))
		}
		inv, ok := m.invert()
		if !ok {
			continue // random singular matrix; skip
		}
		prod := m.mul(inv)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				want := byte(0)
				if r == c {
					want = 1
				}
				if prod.at(r, c) != want {
					t.Fatalf("m * m^-1 != I at (%d,%d)", r, c)
				}
			}
		}
	}
}

func TestNewCodeValidation(t *testing.T) {
	cases := []struct{ k, m int }{{0, 2}, {-1, 0}, {1, -1}, {200, 100}}
	for _, tc := range cases {
		if _, err := New(tc.k, tc.m); err == nil {
			t.Fatalf("New(%d,%d) accepted", tc.k, tc.m)
		}
	}
	if _, err := New(1, 0); err != nil {
		t.Fatalf("New(1,0): %v", err)
	}
}

func TestEncodeSystematic(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("systematic codes leave the data shards untouched!")
	shards, err := c.Split(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Join(shards)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Join = %q, want %q", got, payload)
	}
}

func TestReconstructAllLossPatterns(t *testing.T) {
	const k, m = 4, 3
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := blockcrypto.NewRNG(9)
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
	}
	orig, err := c.Split(payload)
	if err != nil {
		t.Fatal(err)
	}
	total := k + m
	// Every subset of up to m erased shards must reconstruct.
	for mask := 0; mask < 1<<total; mask++ {
		erased := 0
		for b := 0; b < total; b++ {
			if mask&(1<<b) != 0 {
				erased++
			}
		}
		if erased > m {
			continue
		}
		shards := make([][]byte, total)
		for i := range shards {
			if mask&(1<<i) == 0 {
				shards[i] = append([]byte(nil), orig[i]...)
			}
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				t.Fatalf("mask %b: shard %d mismatch", mask, i)
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c, _ := New(4, 2)
	shards, _ := c.Split([]byte("hello world, this is a payload"))
	for i := 0; i < 3; i++ { // erase 3 > m=2
		shards[i] = nil
	}
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("reconstruction with k-1 shards succeeded")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	c, _ := New(5, 3)
	shards, _ := c.Split(bytes.Repeat([]byte("data"), 100))
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("clean shards: ok=%v err=%v", ok, err)
	}
	shards[6][7] ^= 0x40
	ok, err = c.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("corrupted parity shard passed Verify")
	}
	shards[6][7] ^= 0x40
	shards[1][0] ^= 0x01
	ok, _ = c.Verify(shards)
	if ok {
		t.Fatal("corrupted data shard passed Verify")
	}
}

func TestSplitJoinSizes(t *testing.T) {
	c, _ := New(7, 3)
	for _, n := range []int{0, 1, 6, 7, 8, 63, 64, 65, 1000, 4096} {
		payload := bytes.Repeat([]byte{0xEE}, n)
		shards, err := c.Split(payload)
		if err != nil {
			t.Fatalf("Split(%d bytes): %v", n, err)
		}
		if len(shards) != 10 {
			t.Fatalf("Split returned %d shards", len(shards))
		}
		got, err := c.Join(shards)
		if err != nil {
			t.Fatalf("Join(%d bytes): %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip failed for %d bytes", n)
		}
	}
}

func TestSplitReconstructJoinProperty(t *testing.T) {
	f := func(payload []byte, kRaw, mRaw, lossSeed uint8) bool {
		k := int(kRaw%8) + 1
		m := int(mRaw % 5)
		c, err := New(k, m)
		if err != nil {
			return false
		}
		shards, err := c.Split(payload)
		if err != nil {
			return false
		}
		// Erase up to m random shards.
		rng := blockcrypto.NewRNG(uint64(lossSeed))
		for e := 0; e < m; e++ {
			shards[rng.Intn(k+m)] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		got, err := c.Join(shards)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeErrors(t *testing.T) {
	c, _ := New(3, 2)
	if err := c.Encode(make([][]byte, 4)); err == nil {
		t.Fatal("wrong shard count accepted")
	}
	shards := [][]byte{{1, 2}, {3}, {4, 5}, nil, nil}
	if err := c.Encode(shards); err == nil {
		t.Fatal("mismatched data shard sizes accepted")
	}
	empty := [][]byte{{}, {}, {}, nil, nil}
	if err := c.Encode(empty); err == nil {
		t.Fatal("empty data shards accepted")
	}
}

func TestJoinErrors(t *testing.T) {
	c, _ := New(3, 1)
	if _, err := c.Join([][]byte{{1}}); err == nil {
		t.Fatal("too few shards accepted")
	}
	// Declared length longer than actual content must error, not panic.
	bad := [][]byte{{0xFF, 0xFF, 0xFF}, {0xFF, 0xFF, 0xFF}, {0xFF, 0xFF, 0xFF}}
	if _, err := c.Join(bad); err == nil {
		t.Fatal("oversized declared length accepted")
	}
}

func TestZeroParityCode(t *testing.T) {
	c, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("no parity at all")
	shards, err := c.Split(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Join(shards)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("k-of-k round trip failed")
	}
	// Losing any shard is fatal with m=0.
	shards[2] = nil
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("reconstruction without redundancy succeeded")
	}
}

func TestCodeAccessors(t *testing.T) {
	c, _ := New(16, 4)
	if c.DataShards() != 16 || c.ParityShards() != 4 || c.TotalShards() != 20 {
		t.Fatalf("accessors: %d %d %d", c.DataShards(), c.ParityShards(), c.TotalShards())
	}
}

func BenchmarkEncode16x4_64KB(b *testing.B) {
	c, _ := New(16, 4)
	payload := make([]byte, 64*1024)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Split(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct16x4(b *testing.B) {
	c, _ := New(16, 4)
	payload := make([]byte, 64*1024)
	orig, _ := c.Split(payload)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, len(orig))
		for j := range orig {
			if j >= 2 && j <= 5 {
				continue // erase 4 shards
			}
			shards[j] = orig[j]
		}
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleCode() {
	c, _ := New(4, 2)
	shards, _ := c.Split([]byte("any 4 of these 6 shards recover me"))
	shards[0], shards[5] = nil, nil // lose two shards
	_ = c.Reconstruct(shards)
	payload, _ := c.Join(shards)
	fmt.Println(string(payload))
	// Output: any 4 of these 6 shards recover me
}
