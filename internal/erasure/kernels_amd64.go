//go:build amd64

package erasure

// AVX2 dispatch for the slice kernels. The assembly in kernels_amd64.s
// implements the classic PSHUFB nibble scheme: multiplication by a fixed
// coefficient is looked up 32 bytes at a time through two 16-entry tables
// (one for each nibble of the input byte) broadcast into vector registers.
// Detection follows the Intel manual: AVX2 requires the OS to have enabled
// YMM state (OSXSAVE + XGETBV) on top of the CPUID feature bit.

const (
	// simdWidth is the vector kernel's block size in bytes; callers round
	// the bulk length down to a multiple of it.
	simdWidth = 32
	// simdMinBytes is the slice length below which the vector call is not
	// worth its setup (table broadcasts, VZEROUPPER).
	simdMinBytes = 64
)

// simdEnabled reports whether the AVX2 kernels are usable on this machine.
// It is a variable, not a constant, so tests can pin the portable path and
// differentially compare the two.
var simdEnabled = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// cpuid executes CPUID with the given leaf/subleaf (implemented in
// kernels_amd64.s).
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (implemented in
// kernels_amd64.s).
func xgetbv() (eax, edx uint32)

//go:noescape
func mulVecAVX2(low, high *[16]byte, in, out *byte, n int)

//go:noescape
func mulAddVecAVX2(low, high *[16]byte, in, out *byte, n int)

//go:noescape
func xorVecAVX2(in, out *byte, n int)

// mulVec computes out = c·in for len(in) a positive multiple of simdWidth.
func mulVec(t *mulTable, in, out []byte) {
	mulVecAVX2(&t.low, &t.high, &in[0], &out[0], len(in))
}

// mulAddVec computes out ^= c·in for len(in) a positive multiple of
// simdWidth.
func mulAddVec(t *mulTable, in, out []byte) {
	mulAddVecAVX2(&t.low, &t.high, &in[0], &out[0], len(in))
}

// xorVec computes out ^= in for len(in) a positive multiple of simdWidth.
func xorVec(in, out []byte) {
	xorVecAVX2(&in[0], &out[0], len(in))
}
