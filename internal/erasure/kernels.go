package erasure

// Table-driven slice kernels: the hot path of encoding and reconstruction.
//
// The scalar path in gf256.go multiplies one byte at a time through the
// log/exp tables (two dependent lookups plus a zero branch per byte). The
// kernels below instead use one 256-byte product table per coefficient —
// product[v] = c·v over GF(2^8) — so the inner loop is a single dependent
// lookup with no branches and no bounds checks, and eight product bytes are
// packed into one 64-bit XOR against the output. Coefficient 1 degenerates
// to a pure word-wise XOR and coefficient 0 to a no-op.
//
// On amd64 with AVX2 the bulk of each slice is instead processed 32 bytes
// per instruction with the classic PSHUFB nibble scheme (see
// kernels_amd64.s); each table carries the two 16-entry nibble tables that
// scheme needs. The Go loops below remain both the portable fallback and
// the tail handler for lengths not divisible by the vector width.
//
// Tables are built lazily, one coefficient at a time, on first use by any
// Code (GF multiplication does not depend on the code, so the cache is
// shared process-wide). A slot is published with an atomic pointer: a
// racing duplicate build produces an identical table, so last-write-wins is
// harmless and the fast path stays lock-free.

import (
	"encoding/binary"
	"sync/atomic"
)

// mulTable holds every precomputed form of multiplication by one
// coefficient c: the full byte-product table, plus the low/high nibble
// tables the SIMD kernel shuffles through (c·x and c·(x<<4) for x < 16;
// their XOR reassembles c·v for any byte v).
type mulTable struct {
	product [256]byte
	low     [16]byte
	high    [16]byte
}

// mulTables caches the per-coefficient tables. Slot c holds the table set
// for coefficient c, or nil until first use. ~72 KiB fully populated; a
// (k=16, m=4) code touches at most k·m slots.
var mulTables [256]atomic.Pointer[mulTable]

// mulTableFor returns the table set for coefficient c, building and
// publishing it on first use.
func mulTableFor(c byte) *mulTable {
	if t := mulTables[c].Load(); t != nil {
		return t
	}
	t := new(mulTable)
	for v := 1; v < 256; v++ {
		t.product[v] = gfMul(c, byte(v))
	}
	for x := 0; x < 16; x++ {
		t.low[x] = t.product[x]
		t.high[x] = t.product[x<<4]
	}
	mulTables[c].Store(t)
	return t
}

// mulSlice computes out[i] = c·in[i] slice-wise. len(out) must be >=
// len(in); only the first len(in) bytes of out are written.
func mulSlice(c byte, in, out []byte) {
	switch c {
	case 0:
		clear(out[:len(in)])
		return
	case 1:
		copy(out, in)
		return
	}
	t := mulTableFor(c)
	n := 0
	if simdEnabled && len(in) >= simdMinBytes {
		n = len(in) &^ (simdWidth - 1)
		mulVec(t, in[:n], out[:n])
	}
	in, out = in[n:], out[n:len(in)]
	for i, v := range in {
		out[i] = t.product[v]
	}
}

// mulAddSlice computes out[i] ^= c·in[i] slice-wise, packing eight product
// bytes per 64-bit XOR on the portable path. len(out) must be >= len(in).
func mulAddSlice(c byte, in, out []byte) {
	switch c {
	case 0:
		return
	case 1:
		xorSlice(in, out)
		return
	}
	t := mulTableFor(c)
	n := 0
	if simdEnabled && len(in) >= simdMinBytes {
		n = len(in) &^ (simdWidth - 1)
		mulAddVec(t, in[:n], out[:n])
	}
	mulAddTail(t, in[n:], out[n:len(in)])
}

// mulAddTail is the portable word-packed loop behind mulAddSlice: eight
// table lookups assembled into one 64-bit XOR, with a byte loop for the
// final partial word.
func mulAddTail(t *mulTable, in, out []byte) {
	out = out[:len(in)]
	for len(in) >= 8 {
		v := uint64(t.product[in[0]]) | uint64(t.product[in[1]])<<8 |
			uint64(t.product[in[2]])<<16 | uint64(t.product[in[3]])<<24 |
			uint64(t.product[in[4]])<<32 | uint64(t.product[in[5]])<<40 |
			uint64(t.product[in[6]])<<48 | uint64(t.product[in[7]])<<56
		binary.LittleEndian.PutUint64(out, binary.LittleEndian.Uint64(out)^v)
		in, out = in[8:], out[8:]
	}
	for i, v := range in {
		out[i] ^= t.product[v]
	}
}

// xorSlice computes out[i] ^= in[i], eight bytes (or a vector register) per
// iteration. This is the coefficient-1 fast path: in GF(2^8) multiplication
// by 1 is the identity, so the row contribution is a plain XOR.
func xorSlice(in, out []byte) {
	n := 0
	if simdEnabled && len(in) >= simdMinBytes {
		n = len(in) &^ (simdWidth - 1)
		xorVec(in[:n], out[:n])
	}
	in, out = in[n:], out[n:len(in)]
	for len(in) >= 8 {
		binary.LittleEndian.PutUint64(out,
			binary.LittleEndian.Uint64(out)^binary.LittleEndian.Uint64(in))
		in, out = in[8:], out[8:]
	}
	for i, v := range in {
		out[i] ^= v
	}
}

// codeRow computes one output shard as the coefficient-weighted sum of the
// input shards: out = Σ_j coeffs[j]·inputs[j]. The first non-zero
// coefficient overwrites out (saving the clear-then-XOR pass of the scalar
// path); an all-zero row clears it.
func codeRow(coeffs []byte, inputs [][]byte, out []byte) {
	codeRowRange(coeffs, inputs, out, 0, len(out))
}

// codeRowRange is codeRow restricted to the byte range [lo, hi) of every
// shard — the unit of work the parallel pool hands to one worker.
func codeRowRange(coeffs []byte, inputs [][]byte, out []byte, lo, hi int) {
	first := true
	for j, in := range inputs {
		c := coeffs[j]
		if c == 0 {
			continue
		}
		if first {
			mulSlice(c, in[lo:hi], out[lo:hi])
			first = false
			continue
		}
		mulAddSlice(c, in[lo:hi], out[lo:hi])
	}
	if first {
		clear(out[lo:hi])
	}
}
