package erasure

import (
	"bytes"
	"testing"
)

// FuzzRSReconstruct drives the Reed-Solomon codec with fuzzed payloads and
// parameters: split, drop up to the parity budget of shards, reconstruct,
// verify, join — the recovered payload must match the original exactly. A
// second phase feeds the reconstructor deliberately jagged garbage shards,
// which must error, never panic.
func FuzzRSReconstruct(f *testing.F) {
	f.Add([]byte("hello erasure coding"), uint8(4), uint8(2), uint16(0b101))
	f.Add([]byte{}, uint8(1), uint8(1), uint16(1))
	f.Add(bytes.Repeat([]byte{0xAB}, 300), uint8(10), uint8(6), uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, payload []byte, kRaw, mRaw uint8, dropMask uint16) {
		k := int(kRaw)%10 + 1 // 1..10
		m := int(mRaw)%6 + 1  // 1..6
		code, err := New(k, m)
		if err != nil {
			t.Fatalf("New(%d, %d): %v", k, m, err)
		}
		shards, err := code.Split(payload)
		if err != nil {
			t.Fatalf("Split: %v", err)
		}
		if len(shards) != k+m {
			t.Fatalf("Split returned %d shards, want %d", len(shards), k+m)
		}
		// Differential check: the table-driven kernel parity produced by
		// Split must be byte-identical to the scalar reference path.
		ref := make([][]byte, len(shards))
		copy(ref, shards[:k])
		if err := code.EncodeScalarReference(ref); err != nil {
			t.Fatalf("EncodeScalarReference: %v", err)
		}
		for i := k; i < len(shards); i++ {
			if !bytes.Equal(shards[i], ref[i]) {
				t.Fatalf("kernel parity shard %d diverges from scalar path", i)
			}
		}
		// Drop up to m shards, chosen by the fuzzed mask.
		dropped := 0
		for i := 0; i < len(shards) && dropped < m; i++ {
			if dropMask&(1<<uint(i%16)) != 0 {
				shards[i] = nil
				dropped++
			}
		}
		if err := code.Reconstruct(shards); err != nil {
			t.Fatalf("Reconstruct after %d ≤ %d losses: %v", dropped, m, err)
		}
		if ok, err := code.Verify(shards); err != nil || !ok {
			t.Fatalf("Verify after reconstruct: ok=%v err=%v", ok, err)
		}
		got, err := code.Join(shards)
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload drifted through the code: %d bytes in, %d out", len(payload), len(got))
		}

		// Adversarial phase: jagged shards sliced from the fuzz payload.
		// Any outcome but a panic is acceptable.
		bad := make([][]byte, k+m)
		for i := range bad {
			if len(payload) == 0 {
				continue
			}
			end := (i*7 + int(dropMask)) % (len(payload) + 1)
			bad[i] = payload[:end]
		}
		_ = code.Reconstruct(bad)
		_, _ = code.Verify(bad)
		_, _ = code.Join(bad)
	})
}
