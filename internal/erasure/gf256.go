// Package erasure implements systematic Reed-Solomon erasure coding over
// GF(2^8), built from scratch on the standard library.
//
// ICIStrategy's coded-storage extension encodes a block body into n shares
// such that any k reconstruct it; the repair path uses it when plain
// replicas are gone. The code is a classic Vandermonde-derived systematic
// construction: the first k shares are the data itself, the remaining n-k
// are parity.
package erasure

// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11d as the
// reduction constant with the implicit x^8). Tables are built once at
// package init; gfExp is doubled in length to skip a mod in gfMul.
var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		// multiply x by the generator 0x02 modulo the field polynomial
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= 0x1d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b. b must be non-zero.
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a (a must be non-zero).
func gfInv(a byte) byte {
	return gfExp[255-int(gfLog[a])]
}

// gfPow raises base to the given power.
func gfPow(base byte, power int) byte {
	if power == 0 {
		return 1
	}
	if base == 0 {
		return 0
	}
	p := (int(gfLog[base]) * power) % 255
	if p < 0 {
		p += 255
	}
	return gfExp[p]
}

// mulSlice computes out[i] ^= c * in[i] for all i, the inner loop of both
// encoding and decoding.
func mulSliceXor(c byte, in, out []byte) {
	if c == 0 {
		return
	}
	logC := int(gfLog[c])
	for i, v := range in {
		if v != 0 {
			out[i] ^= gfExp[logC+int(gfLog[v])]
		}
	}
}

// matrix is a dense GF(256) matrix, row-major.
type matrix struct {
	rows, cols int
	data       []byte
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m *matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m *matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }

// row returns a mutable view of row r; Gaussian elimination swaps and
// scales rows in place through it, so the aliasing is the point.
func (m *matrix) row(r int) []byte { return m.data[r*m.cols : (r+1)*m.cols] } //icilint:allow chunkalias(mutable row view for in-place elimination)

// identity returns the n x n identity matrix.
func identityMatrix(n int) *matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// vandermonde builds the rows x cols matrix with entry (r,c) = r^c.
// Any cols distinct rows of it are linearly independent.
func vandermonde(rows, cols int) *matrix {
	m := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gfPow(byte(r), c))
		}
	}
	return m
}

// mul returns m * other.
func (m *matrix) mul(other *matrix) *matrix {
	out := newMatrix(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			a := m.at(r, k)
			if a == 0 {
				continue
			}
			mulSliceXor(a, other.row(k), out.row(r))
		}
	}
	return out
}

// invert returns the inverse via Gauss-Jordan elimination, or false if m is
// singular. m must be square.
func (m *matrix) invert() (*matrix, bool) {
	n := m.rows
	work := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		copy(work.row(r)[:n], m.row(r))
		work.set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		// find pivot
		pivot := -1
		for r := col; r < n; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		if pivot != col {
			pr, cr := work.row(pivot), work.row(col)
			for i := range pr {
				pr[i], cr[i] = cr[i], pr[i]
			}
		}
		// scale pivot row to 1
		inv := gfInv(work.at(col, col))
		rowC := work.row(col)
		for i := range rowC {
			rowC[i] = gfMul(rowC[i], inv)
		}
		// eliminate the column everywhere else
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := work.at(r, col)
			if factor == 0 {
				continue
			}
			mulSliceXor(factor, rowC, work.row(r))
		}
	}
	out := newMatrix(n, n)
	for r := 0; r < n; r++ {
		copy(out.row(r), work.row(r)[n:])
	}
	return out, true
}

// subMatrix returns the matrix formed by the given rows.
func (m *matrix) subMatrixRows(rows []int) *matrix {
	out := newMatrix(len(rows), m.cols)
	for i, r := range rows {
		copy(out.row(i), m.row(r))
	}
	return out
}
