package erasure

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"icistrategy/internal/blockcrypto"
)

// mulSliceXorRef is the pre-kernel reference: byte-at-a-time log/exp
// multiply-accumulate straight off gfMul. Every kernel is pinned to it.
func mulSliceXorRef(c byte, in, out []byte) {
	for i, v := range in {
		out[i] ^= gfMul(c, v)
	}
}

// diffSizes is the size matrix every differential test sweeps: empty, one
// byte, every length around the 8-byte word tail, the 32-byte vector
// boundary and the 64-byte SIMD cut-over, plus large odd sizes.
var diffSizes = []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 95, 127, 128, 255, 1000, 4096, 65537}

func randBytes(rng *blockcrypto.RNG, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// TestMulAddSliceMatchesScalar pins mulAddSlice (vector + word-packed tail)
// to the scalar reference for every coefficient class and tail length.
func TestMulAddSliceMatchesScalar(t *testing.T) {
	rng := blockcrypto.NewRNG(0x5EED)
	coeffs := []byte{0, 1, 2, 3, 0x1d, 0x80, 0xff}
	for i := 0; i < 16; i++ {
		coeffs = append(coeffs, byte(rng.Intn(256)))
	}
	for _, size := range diffSizes {
		in := randBytes(rng, size)
		base := randBytes(rng, size)
		for _, c := range coeffs {
			want := append([]byte(nil), base...)
			mulSliceXorRef(c, in, want)
			got := append([]byte(nil), base...)
			mulAddSlice(c, in, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("mulAddSlice(c=%#x, size=%d) diverged from scalar", c, size)
			}
			// Overwrite variant: out = c·in.
			wantMul := make([]byte, size)
			mulSliceXorRef(c, in, wantMul)
			gotMul := randBytes(rng, size) // pre-filled garbage must be overwritten
			mulSlice(c, in, gotMul)
			if !bytes.Equal(gotMul, wantMul) {
				t.Fatalf("mulSlice(c=%#x, size=%d) diverged from scalar", c, size)
			}
		}
	}
}

// TestKernelPortablePathMatchesScalar forces the portable (non-SIMD) path
// and re-pins it, so the word-packed Go loop is covered even on machines
// where the vector kernel would otherwise take every bulk slice.
func TestKernelPortablePathMatchesScalar(t *testing.T) {
	defer func(old bool) { simdEnabled = old }(simdEnabled)
	simdEnabled = false
	rng := blockcrypto.NewRNG(0xB0)
	for _, size := range diffSizes {
		in := randBytes(rng, size)
		for _, c := range []byte{0, 1, 2, 0x53, 0xff} {
			want := make([]byte, size)
			mulSliceXorRef(c, in, want)
			got := make([]byte, size)
			mulAddSlice(c, in, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("portable mulAddSlice(c=%#x, size=%d) diverged", c, size)
			}
		}
	}
}

// TestEncodeMatchesScalarReference runs the differential test the bench
// trail relies on: for random (k, m, size) the kernel Encode must produce
// byte-identical parity to EncodeScalarReference.
func TestEncodeMatchesScalarReference(t *testing.T) {
	rng := blockcrypto.NewRNG(0xD1FF)
	for trial := 0; trial < 60; trial++ {
		k := rng.Intn(20) + 1
		m := rng.Intn(8)
		size := diffSizes[rng.Intn(len(diffSizes))]
		if size == 0 {
			size = 1 // zero-size data shards are rejected by both paths
		}
		c, err := New(k, m)
		if err != nil {
			t.Fatal(err)
		}
		data := make([][]byte, k)
		for i := range data {
			data[i] = randBytes(rng, size)
		}
		fast := make([][]byte, k+m)
		ref := make([][]byte, k+m)
		copy(fast, data)
		copy(ref, data)
		if err := c.Encode(fast); err != nil {
			t.Fatalf("Encode(k=%d m=%d size=%d): %v", k, m, size, err)
		}
		if err := c.EncodeScalarReference(ref); err != nil {
			t.Fatalf("EncodeScalarReference: %v", err)
		}
		for i := range fast {
			if !bytes.Equal(fast[i], ref[i]) {
				t.Fatalf("k=%d m=%d size=%d: shard %d differs between kernel and scalar path", k, m, size, i)
			}
		}
	}
}

// TestReconstructMatchesEncodeAcrossSizes erases every shard in turn across
// the tail-boundary sizes and checks bit-exact recovery, exercising the
// decode cache across repeated loss patterns.
func TestReconstructMatchesEncodeAcrossSizes(t *testing.T) {
	const k, m = 5, 3
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := blockcrypto.NewRNG(0xCAFE)
	for _, size := range diffSizes {
		if size == 0 {
			continue
		}
		shards := make([][]byte, k+m)
		for i := 0; i < k; i++ {
			shards[i] = randBytes(rng, size)
		}
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		orig := make([][]byte, len(shards))
		for i := range shards {
			orig[i] = append([]byte(nil), shards[i]...)
		}
		for lost := 0; lost < k+m; lost++ {
			work := make([][]byte, len(orig))
			for i := range orig {
				if i != lost {
					work[i] = append([]byte(nil), orig[i]...)
				}
			}
			if err := c.Reconstruct(work); err != nil {
				t.Fatalf("size=%d lost=%d: %v", size, lost, err)
			}
			if !bytes.Equal(work[lost], orig[lost]) {
				t.Fatalf("size=%d lost=%d: recovered shard differs", size, lost)
			}
		}
	}
}

// TestDecodeMatrixCache checks that repeated loss patterns hit the cache
// (one entry per pattern), that distinct patterns add entries, and that the
// cache stays bounded.
func TestDecodeMatrixCache(t *testing.T) {
	const k, m = 4, 2
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xA5}, 512)
	orig, err := c.Split(payload)
	if err != nil {
		t.Fatal(err)
	}
	lose := func(idxs ...int) [][]byte {
		w := make([][]byte, len(orig))
		for i := range orig {
			w[i] = append([]byte(nil), orig[i]...)
		}
		for _, i := range idxs {
			w[i] = nil
		}
		return w
	}
	for i := 0; i < 5; i++ {
		if err := c.Reconstruct(lose(0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.decode.len(); got != 1 {
		t.Fatalf("after one repeated pattern: %d cache entries, want 1", got)
	}
	if err := c.Reconstruct(lose(1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := c.decode.len(); got != 2 {
		t.Fatalf("after second pattern: %d cache entries, want 2", got)
	}
	// Parity-only losses never invert a matrix and must not pollute it.
	if err := c.Reconstruct(lose(k)); err != nil {
		t.Fatal(err)
	}
	if got := c.decode.len(); got != 2 {
		t.Fatalf("parity-only loss grew the cache to %d", got)
	}
}

// TestDecodeCacheEviction fills the LRU past capacity and checks the bound
// plus continued correctness on evicted patterns.
func TestDecodeCacheEviction(t *testing.T) {
	cache := &decodeCache{}
	for i := 0; i < decodeCacheCap*3; i++ {
		cache.put(fmt.Sprintf("key-%d", i), identityMatrix(2))
	}
	if got := cache.len(); got != decodeCacheCap {
		t.Fatalf("cache holds %d entries, cap is %d", got, decodeCacheCap)
	}
	if cache.get("key-0") != nil {
		t.Fatal("oldest entry survived eviction")
	}
	if cache.get(fmt.Sprintf("key-%d", decodeCacheCap*3-1)) == nil {
		t.Fatal("newest entry missing")
	}
}

// TestReconstructReportsWrongLengthShards pins the bugfix: a non-empty
// shard whose length disagrees with the others must be reported, never
// silently resized or clobbered.
func TestReconstructReportsWrongLengthShards(t *testing.T) {
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := c.Split(bytes.Repeat([]byte{7}, 300))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong-length parity shard alongside complete data.
	work := make([][]byte, len(orig))
	copy(work, orig)
	bad := []byte{1, 2, 3}
	work[4] = bad
	if err := c.Reconstruct(work); err == nil {
		t.Fatal("wrong-length parity shard accepted")
	}
	if len(work[4]) != 3 || &work[4][0] != &bad[0] {
		t.Fatal("caller's parity slice was clobbered while reporting the error")
	}
	// Wrong-length data shard.
	work = make([][]byte, len(orig))
	copy(work, orig)
	work[1] = []byte{9}
	if err := c.Reconstruct(work); err == nil {
		t.Fatal("wrong-length data shard accepted")
	}
	// Zero-length shard with capacity is treated as missing and its backing
	// array reused.
	work = make([][]byte, len(orig))
	copy(work, orig)
	buf := make([]byte, 0, len(orig[0]))
	work[0] = buf
	if err := c.Reconstruct(work); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(work[0], orig[0]) {
		t.Fatal("reconstruction into reused buffer is wrong")
	}
	if &work[0][0] != &buf[:1][0] {
		t.Fatal("capacity-bearing empty shard was not reused")
	}
}

// TestCachedRegistry checks that the codec registry hands out one shared
// instance per shape and propagates validation errors.
func TestCachedRegistry(t *testing.T) {
	a, err := Cached(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Cached returned distinct codecs for the same shape")
	}
	other, err := Cached(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Fatal("Cached shared a codec across different shapes")
	}
	if _, err := Cached(0, 1); err == nil {
		t.Fatal("Cached accepted an invalid shape")
	}
}

// TestParallelEncodeSharedCode drives one registry-shared Code from many
// goroutines with shards big enough to engage the worker pool, under the
// race detector in CI. Results must be byte-identical to a sequential
// encode.
func TestParallelEncodeSharedCode(t *testing.T) {
	const k, m = 8, 3
	c, err := Cached(k, m)
	if err != nil {
		t.Fatal(err)
	}
	size := parallelMinShardBytes + 13 // over the threshold, odd tail
	rng := blockcrypto.NewRNG(0xBEEF)
	data := make([][]byte, k)
	for i := range data {
		data[i] = randBytes(rng, size)
	}
	want := make([][]byte, k+m)
	copy(want, data)
	if err := c.EncodeScalarReference(want); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shards := make([][]byte, k+m)
			copy(shards, data)
			if err := c.Encode(shards); err != nil {
				errs <- err
				return
			}
			for i := range shards {
				if !bytes.Equal(shards[i], want[i]) {
					errs <- fmt.Errorf("shard %d diverged under concurrency", i)
					return
				}
			}
			// Concurrent reconstructions share the decode cache.
			lossy := make([][]byte, k+m)
			copy(lossy, shards)
			lossy[0], lossy[k] = nil, nil
			if err := c.Reconstruct(lossy); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(lossy[0], data[0]) {
				errs <- fmt.Errorf("concurrent reconstruct diverged")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
