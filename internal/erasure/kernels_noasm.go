//go:build !amd64

package erasure

// Portable stand-ins for the amd64 vector kernels. simdEnabled is false at
// compile time on these platforms, so the vector entry points are never
// reached; the bodies exist only to satisfy the references in kernels.go.

const (
	simdWidth    = 32
	simdMinBytes = 64
)

var simdEnabled = false

func mulVec(t *mulTable, in, out []byte)    { panic("erasure: no vector kernel") }
func mulAddVec(t *mulTable, in, out []byte) { panic("erasure: no vector kernel") }
func xorVec(in, out []byte)                 { panic("erasure: no vector kernel") }
