//go:build amd64

#include "textflag.h"

// GF(2^8) constant-coefficient multiply-accumulate over byte slices, 32
// bytes per iteration, via the PSHUFB nibble scheme:
//
//	c·v = low[v & 0x0f] ^ high[v >> 4]
//
// where low[x] = c·x and high[x] = c·(x<<4) (multiplication distributes
// over the nibble split because GF(2^8) addition is XOR). Both 16-entry
// tables are broadcast once per call; the loop is then two shuffles, three
// XORs, and the loads/stores.
//
// All entry points require n > 0 and n % 32 == 0 (the Go wrappers round
// down and handle tails).

DATA nibbleMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x10(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x18(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA, $32

// func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func mulAddVecAVX2(low, high *[16]byte, in, out *byte, n int)
// out[i] ^= c·in[i]
TEXT ·mulAddVecAVX2(SB), NOSPLIT, $0-40
	MOVQ low+0(FP), AX
	MOVQ high+8(FP), BX
	MOVQ in+16(FP), SI
	MOVQ out+24(FP), DI
	MOVQ n+32(FP), CX
	VBROADCASTI128 (AX), Y0        // low-nibble product table
	VBROADCASTI128 (BX), Y1        // high-nibble product table
	VMOVDQU nibbleMask<>(SB), Y2   // 0x0f bytes

muladd_loop:
	VMOVDQU (SI), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3             // low nibbles
	VPAND   Y2, Y4, Y4             // high nibbles
	VPSHUFB Y3, Y0, Y5             // low products
	VPSHUFB Y4, Y1, Y6             // high products
	VPXOR   Y5, Y6, Y5             // c·in
	VPXOR   (DI), Y5, Y5           // accumulate into out
	VMOVDQU Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     muladd_loop
	VZEROUPPER
	RET

// func mulVecAVX2(low, high *[16]byte, in, out *byte, n int)
// out[i] = c·in[i]
TEXT ·mulVecAVX2(SB), NOSPLIT, $0-40
	MOVQ low+0(FP), AX
	MOVQ high+8(FP), BX
	MOVQ in+16(FP), SI
	MOVQ out+24(FP), DI
	MOVQ n+32(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 (BX), Y1
	VMOVDQU nibbleMask<>(SB), Y2

mul_loop:
	VMOVDQU (SI), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPXOR   Y5, Y6, Y5
	VMOVDQU Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mul_loop
	VZEROUPPER
	RET

// func xorVecAVX2(in, out *byte, n int)
// out[i] ^= in[i] — the coefficient-1 fast path.
TEXT ·xorVecAVX2(SB), NOSPLIT, $0-24
	MOVQ in+0(FP), SI
	MOVQ out+8(FP), DI
	MOVQ n+16(FP), CX

xor_loop:
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     xor_loop
	VZEROUPPER
	RET
