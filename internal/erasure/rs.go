package erasure

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Reed-Solomon errors.
var (
	ErrBadShardCounts    = errors.New("erasure: need 1 <= data shards and 0 <= parity, total <= 256")
	ErrShardCount        = errors.New("erasure: wrong number of shards")
	ErrShardSizeMismatch = errors.New("erasure: shards have different sizes")
	ErrTooFewShards      = errors.New("erasure: not enough shards to reconstruct")
	ErrShardNoData       = errors.New("erasure: shard has no data")
	ErrPayloadTooShort   = errors.New("erasure: joined payload shorter than declared length")
)

// Code is a systematic Reed-Solomon code with k data shards and m parity
// shards. The encoding matrix is the Vandermonde matrix made systematic by
// multiplying with the inverse of its top k x k block, so row i < k emits
// data shard i unchanged.
type Code struct {
	dataShards   int
	parityShards int
	// encode holds the full (k+m) x k systematic matrix.
	encode *matrix
}

// New creates a code with the given shard counts. k must be >= 1, m >= 0,
// and k+m <= 256 (the field size).
func New(dataShards, parityShards int) (*Code, error) {
	if dataShards < 1 || parityShards < 0 || dataShards+parityShards > 256 {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrBadShardCounts, dataShards, parityShards)
	}
	total := dataShards + parityShards
	vm := vandermonde(total, dataShards)
	topRows := make([]int, dataShards)
	for i := range topRows {
		topRows[i] = i
	}
	top := vm.subMatrixRows(topRows)
	topInv, ok := top.invert()
	if !ok {
		// Vandermonde top blocks are always invertible; this is unreachable
		// but kept as a guard against table corruption.
		return nil, errors.New("erasure: vandermonde top block singular")
	}
	return &Code{
		dataShards:   dataShards,
		parityShards: parityShards,
		encode:       vm.mul(topInv),
	}, nil
}

// DataShards returns k.
func (c *Code) DataShards() int { return c.dataShards }

// ParityShards returns m.
func (c *Code) ParityShards() int { return c.parityShards }

// TotalShards returns k+m.
func (c *Code) TotalShards() int { return c.dataShards + c.parityShards }

// Encode computes the parity shards for the given data shards. shards must
// have length k+m; the first k entries must be equal-length data, and the
// remaining m entries are overwritten (allocated if nil).
func (c *Code) Encode(shards [][]byte) error {
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("%w: got %d want %d", ErrShardCount, len(shards), c.TotalShards())
	}
	size, err := checkDataShards(shards[:c.dataShards])
	if err != nil {
		return err
	}
	for i := c.dataShards; i < len(shards); i++ {
		if len(shards[i]) != size {
			shards[i] = make([]byte, size)
		} else {
			clear(shards[i])
		}
		row := c.encode.row(i)
		for j := 0; j < c.dataShards; j++ {
			mulSliceXor(row[j], shards[j], shards[i])
		}
	}
	return nil
}

func checkDataShards(data [][]byte) (int, error) {
	if len(data) == 0 || data[0] == nil {
		return 0, ErrShardNoData
	}
	size := len(data[0])
	if size == 0 {
		return 0, ErrShardNoData
	}
	for _, s := range data {
		if len(s) != size {
			return 0, ErrShardSizeMismatch
		}
	}
	return size, nil
}

// Reconstruct fills in the missing (nil) shards in place. It needs at least
// k present shards of equal size; on success every slot is populated and
// the data shards equal the originals.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("%w: got %d want %d", ErrShardCount, len(shards), c.TotalShards())
	}
	present := make([]int, 0, len(shards))
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSizeMismatch
		}
		present = append(present, i)
	}
	if len(present) < c.dataShards {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), c.dataShards)
	}
	if size <= 0 {
		return ErrShardNoData
	}
	// Fast path: all data shards present — just re-encode parity.
	allData := true
	for i := 0; i < c.dataShards; i++ {
		if shards[i] == nil {
			allData = false
			break
		}
	}
	if !allData {
		// Solve for the data shards using k present rows.
		rows := present[:c.dataShards]
		sub := c.encode.subMatrixRows(rows)
		inv, ok := sub.invert()
		if !ok {
			return errors.New("erasure: decode matrix singular")
		}
		dataOut := make([][]byte, c.dataShards)
		for r := 0; r < c.dataShards; r++ {
			dataOut[r] = make([]byte, size)
			row := inv.row(r)
			for j, src := range rows {
				mulSliceXor(row[j], shards[src], dataOut[r])
			}
		}
		for i := 0; i < c.dataShards; i++ {
			if shards[i] == nil {
				shards[i] = dataOut[i]
			}
		}
	}
	// Recompute any missing parity from the (now complete) data shards.
	for i := c.dataShards; i < len(shards); i++ {
		if shards[i] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.encode.row(i)
		for j := 0; j < c.dataShards; j++ {
			mulSliceXor(row[j], shards[j], out)
		}
		shards[i] = out
	}
	return nil
}

// Verify recomputes parity from the data shards and reports whether every
// shard is consistent.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.TotalShards() {
		return false, fmt.Errorf("%w: got %d want %d", ErrShardCount, len(shards), c.TotalShards())
	}
	size, err := checkDataShards(shards[:c.dataShards])
	if err != nil {
		return false, err
	}
	buf := make([]byte, size)
	for i := c.dataShards; i < len(shards); i++ {
		if len(shards[i]) != size {
			return false, ErrShardSizeMismatch
		}
		clear(buf)
		row := c.encode.row(i)
		for j := 0; j < c.dataShards; j++ {
			mulSliceXor(row[j], shards[j], buf)
		}
		for b := range buf {
			if buf[b] != shards[i][b] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Split partitions payload into k equal-size data shards (zero-padded), with
// an 8-byte length prefix so Join can recover the exact payload. The
// returned slice has k+m entries with parity already encoded.
func (c *Code) Split(payload []byte) ([][]byte, error) {
	framed := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint64(framed, uint64(len(payload)))
	copy(framed[8:], payload)
	shardSize := (len(framed) + c.dataShards - 1) / c.dataShards
	if shardSize == 0 {
		shardSize = 1
	}
	shards := make([][]byte, c.TotalShards())
	for i := 0; i < c.dataShards; i++ {
		shards[i] = make([]byte, shardSize)
		start := i * shardSize
		if start < len(framed) {
			copy(shards[i], framed[start:])
		}
	}
	if err := c.Encode(shards); err != nil {
		return nil, err
	}
	return shards, nil
}

// Join reassembles the payload from the data shards (the first k entries of
// shards; parity entries are ignored). All data shards must be present —
// call Reconstruct first if any are missing.
func (c *Code) Join(shards [][]byte) ([]byte, error) {
	if len(shards) < c.dataShards {
		return nil, fmt.Errorf("%w: got %d want >= %d", ErrShardCount, len(shards), c.dataShards)
	}
	size, err := checkDataShards(shards[:c.dataShards])
	if err != nil {
		return nil, err
	}
	framed := make([]byte, 0, size*c.dataShards)
	for i := 0; i < c.dataShards; i++ {
		framed = append(framed, shards[i]...)
	}
	if len(framed) < 8 {
		return nil, ErrPayloadTooShort
	}
	n := binary.BigEndian.Uint64(framed)
	if n > uint64(len(framed)-8) {
		return nil, ErrPayloadTooShort
	}
	return framed[8 : 8+n], nil
}
