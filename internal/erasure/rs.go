package erasure

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Reed-Solomon errors.
var (
	ErrBadShardCounts    = errors.New("erasure: need 1 <= data shards and 0 <= parity, total <= 256")
	ErrShardCount        = errors.New("erasure: wrong number of shards")
	ErrShardSizeMismatch = errors.New("erasure: shards have different sizes")
	ErrTooFewShards      = errors.New("erasure: not enough shards to reconstruct")
	ErrShardNoData       = errors.New("erasure: shard has no data")
	ErrPayloadTooShort   = errors.New("erasure: joined payload shorter than declared length")
)

// Code is a systematic Reed-Solomon code with k data shards and m parity
// shards. The encoding matrix is the Vandermonde matrix made systematic by
// multiplying with the inverse of its top k x k block, so row i < k emits
// data shard i unchanged.
//
// A Code is safe for concurrent use by multiple goroutines (the encode
// matrix is immutable and the decode-matrix cache is internally locked), so
// one instance per (k, m) — see Cached — serves a whole process.
type Code struct {
	dataShards   int
	parityShards int
	// encode holds the full (k+m) x k systematic matrix.
	encode *matrix
	// decode caches inverted decode submatrices per present-row set.
	decode decodeCache
}

// New creates a code with the given shard counts. k must be >= 1, m >= 0,
// and k+m <= 256 (the field size). Callers that do not need a private
// instance should prefer Cached, which shares one Code per shape.
func New(dataShards, parityShards int) (*Code, error) {
	if dataShards < 1 || parityShards < 0 || dataShards+parityShards > 256 {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrBadShardCounts, dataShards, parityShards)
	}
	total := dataShards + parityShards
	vm := vandermonde(total, dataShards)
	topRows := make([]int, dataShards)
	for i := range topRows {
		topRows[i] = i
	}
	top := vm.subMatrixRows(topRows)
	topInv, ok := top.invert()
	if !ok {
		// Vandermonde top blocks are always invertible; this is unreachable
		// but kept as a guard against table corruption.
		return nil, errors.New("erasure: vandermonde top block singular")
	}
	return &Code{
		dataShards:   dataShards,
		parityShards: parityShards,
		encode:       vm.mul(topInv),
	}, nil
}

// DataShards returns k.
func (c *Code) DataShards() int { return c.dataShards }

// ParityShards returns m.
func (c *Code) ParityShards() int { return c.parityShards }

// TotalShards returns k+m.
func (c *Code) TotalShards() int { return c.dataShards + c.parityShards }

// Encode computes the parity shards for the given data shards. shards must
// have length k+m; the first k entries must be equal-length data, and the
// remaining m entries are overwritten (reusing their backing array when it
// is large enough, allocating otherwise).
func (c *Code) Encode(shards [][]byte) error {
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("%w: got %d want %d", ErrShardCount, len(shards), c.TotalShards())
	}
	size, err := checkDataShards(shards[:c.dataShards])
	if err != nil {
		return err
	}
	data := shards[:c.dataShards]
	for i := c.dataShards; i < len(shards); i++ {
		shards[i] = shardBuffer(shards[i], size)
	}
	tasks := rowTasks(c.parityShards, size)
	runRowTasks(tasks, func(t rowTask) {
		out := shards[c.dataShards+t.row]
		codeRowRange(c.encode.row(c.dataShards+t.row), data, out, t.lo, t.hi)
	})
	return nil
}

// EncodeScalarReference recomputes parity with the pre-kernel
// byte-at-a-time GF(2^8) path (log/exp lookups per byte, no tables, no
// parallelism). It exists as the reference for differential tests and as
// the benchmark baseline the kernel speedups are measured against; outputs
// are byte-identical to Encode.
func (c *Code) EncodeScalarReference(shards [][]byte) error {
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("%w: got %d want %d", ErrShardCount, len(shards), c.TotalShards())
	}
	size, err := checkDataShards(shards[:c.dataShards])
	if err != nil {
		return err
	}
	for i := c.dataShards; i < len(shards); i++ {
		if len(shards[i]) != size {
			shards[i] = make([]byte, size)
		} else {
			clear(shards[i])
		}
		row := c.encode.row(i)
		for j := 0; j < c.dataShards; j++ {
			mulSliceXor(row[j], shards[j], shards[i])
		}
	}
	return nil
}

// shardBuffer returns buf resized to size bytes, reusing its backing array
// when possible. Contents are unspecified (callers overwrite every byte).
func shardBuffer(buf []byte, size int) []byte {
	if cap(buf) >= size {
		return buf[:size]
	}
	return make([]byte, size)
}

func checkDataShards(data [][]byte) (int, error) {
	if len(data) == 0 || data[0] == nil {
		return 0, ErrShardNoData
	}
	size := len(data[0])
	if size == 0 {
		return 0, ErrShardNoData
	}
	for _, s := range data {
		if len(s) != size {
			return 0, ErrShardSizeMismatch
		}
	}
	return size, nil
}

// Reconstruct fills in the missing shards in place. A shard is missing when
// its length is zero (nil or empty; a zero-length slice with spare capacity
// is reused as the output buffer). It needs at least k present shards of
// equal size; a present shard of any other length is reported as
// ErrShardSizeMismatch — never silently resized or clobbered. On success
// every slot is populated and the data shards equal the originals.
//
// The inverted decode matrix for each distinct loss pattern is cached, so
// repeated Reconstruct calls with the same present-row set (the common case:
// one failed node erases the same shard index for every block it held) skip
// Gaussian elimination entirely.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("%w: got %d want %d", ErrShardCount, len(shards), c.TotalShards())
	}
	present := make([]int, 0, len(shards))
	size := -1
	for i, s := range shards {
		if len(s) == 0 {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSizeMismatch
		}
		present = append(present, i)
	}
	if len(present) < c.dataShards {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), c.dataShards)
	}
	// Solve for any missing data shards using the first k present rows.
	var missingData []int
	for i := 0; i < c.dataShards; i++ {
		if len(shards[i]) == 0 {
			missingData = append(missingData, i)
		}
	}
	if len(missingData) > 0 {
		rows := present[:c.dataShards]
		inv, err := c.decodeMatrix(rows)
		if err != nil {
			return err
		}
		inputs := make([][]byte, c.dataShards)
		for j, src := range rows {
			inputs[j] = shards[src]
		}
		outs := make([][]byte, len(missingData))
		for oi, i := range missingData {
			outs[oi] = shardBuffer(shards[i], size)
		}
		runRowTasks(rowTasks(len(missingData), size), func(t rowTask) {
			codeRowRange(inv.row(missingData[t.row]), inputs, outs[t.row], t.lo, t.hi)
		})
		for oi, i := range missingData {
			shards[i] = outs[oi]
		}
	}
	// Recompute any missing parity from the (now complete) data shards.
	var missingParity []int
	for i := c.dataShards; i < len(shards); i++ {
		if len(shards[i]) == 0 {
			missingParity = append(missingParity, i)
		}
	}
	if len(missingParity) > 0 {
		data := shards[:c.dataShards]
		outs := make([][]byte, len(missingParity))
		for oi, i := range missingParity {
			outs[oi] = shardBuffer(shards[i], size)
		}
		runRowTasks(rowTasks(len(missingParity), size), func(t rowTask) {
			codeRowRange(c.encode.row(missingParity[t.row]), data, outs[t.row], t.lo, t.hi)
		})
		for oi, i := range missingParity {
			shards[i] = outs[oi]
		}
	}
	return nil
}

// decodeMatrix returns the inverse of the encode submatrix for the given
// present rows, from the cache when the loss pattern has been seen before.
func (c *Code) decodeMatrix(rows []int) (*matrix, error) {
	key := decodeKey(rows)
	if inv := c.decode.get(key); inv != nil {
		return inv, nil
	}
	sub := c.encode.subMatrixRows(rows)
	inv, ok := sub.invert()
	if !ok {
		return nil, errors.New("erasure: decode matrix singular")
	}
	c.decode.put(key, inv)
	return inv, nil
}

// Verify recomputes parity from the data shards and reports whether every
// shard is consistent.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.TotalShards() {
		return false, fmt.Errorf("%w: got %d want %d", ErrShardCount, len(shards), c.TotalShards())
	}
	size, err := checkDataShards(shards[:c.dataShards])
	if err != nil {
		return false, err
	}
	buf := make([]byte, size)
	for i := c.dataShards; i < len(shards); i++ {
		if len(shards[i]) != size {
			return false, ErrShardSizeMismatch
		}
		codeRow(c.encode.row(i), shards[:c.dataShards], buf)
		if !bytes.Equal(buf, shards[i]) {
			return false, nil
		}
	}
	return true, nil
}

// Split partitions payload into k equal-size data shards (zero-padded), with
// an 8-byte length prefix so Join can recover the exact payload. The
// returned slice has k+m entries with parity already encoded. All shards
// share one backing allocation (each capped to its own range).
func (c *Code) Split(payload []byte) ([][]byte, error) {
	framedLen := 8 + len(payload)
	shardSize := (framedLen + c.dataShards - 1) / c.dataShards
	if shardSize == 0 {
		shardSize = 1
	}
	total := c.TotalShards()
	backing := make([]byte, total*shardSize)
	binary.BigEndian.PutUint64(backing, uint64(len(payload)))
	copy(backing[8:], payload)
	shards := make([][]byte, total)
	for i := range shards {
		shards[i] = backing[i*shardSize : (i+1)*shardSize : (i+1)*shardSize]
	}
	if err := c.Encode(shards); err != nil {
		return nil, err
	}
	return shards, nil
}

// Join reassembles the payload from the data shards (the first k entries of
// shards; parity entries are ignored). All data shards must be present —
// call Reconstruct first if any are missing.
func (c *Code) Join(shards [][]byte) ([]byte, error) {
	if len(shards) < c.dataShards {
		return nil, fmt.Errorf("%w: got %d want >= %d", ErrShardCount, len(shards), c.dataShards)
	}
	size, err := checkDataShards(shards[:c.dataShards])
	if err != nil {
		return nil, err
	}
	framed := make([]byte, 0, size*c.dataShards)
	for i := 0; i < c.dataShards; i++ {
		framed = append(framed, shards[i]...)
	}
	if len(framed) < 8 {
		return nil, ErrPayloadTooShort
	}
	n := binary.BigEndian.Uint64(framed)
	if n > uint64(len(framed)-8) {
		return nil, ErrPayloadTooShort
	}
	return framed[8 : 8+n], nil
}
