package simnet

import (
	"testing"
	"time"

	"icistrategy/internal/blockcrypto"
)

func TestFaultDropRate(t *testing.T) {
	net, got := collectNet(t, 2, ConstantLatency(time.Millisecond))
	net.EnableFaults(7, FaultConfig{DropRate: 0.5})
	const sends = 1000
	for i := 0; i < sends; i++ {
		if err := net.Send(Message{From: 0, To: 1, Kind: "ping", Size: 10}); err != nil {
			t.Fatal(err)
		}
	}
	net.RunUntilIdle()
	stats := net.FaultStats()
	if stats.Dropped == 0 {
		t.Fatal("no messages dropped at 50% drop rate")
	}
	if int(stats.Dropped)+len(*got) != sends {
		t.Fatalf("dropped %d + delivered %d != sent %d", stats.Dropped, len(*got), sends)
	}
	// Roughly half should survive (binomial with p=0.5, n=1000).
	if len(*got) < 400 || len(*got) > 600 {
		t.Fatalf("delivered %d of %d at 50%% drop", len(*got), sends)
	}
	// Sender accounting is untouched by loss: the uplink was paid.
	tr, _ := net.Traffic(0)
	if tr.MsgsSent != sends {
		t.Fatalf("MsgsSent = %d, want %d", tr.MsgsSent, sends)
	}
}

func TestFaultDuplication(t *testing.T) {
	net, got := collectNet(t, 2, ConstantLatency(time.Millisecond))
	net.EnableFaults(3, FaultConfig{DupRate: 1})
	if err := net.Send(Message{From: 0, To: 1, Kind: "ping", Size: 10}); err != nil {
		t.Fatal(err)
	}
	net.RunUntilIdle()
	if len(*got) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(*got))
	}
	if net.FaultStats().Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", net.FaultStats().Duplicated)
	}
	// The receiver pays for both copies; the sender only for one.
	recv, _ := net.Traffic(1)
	if recv.MsgsRecv != 2 || recv.BytesRecv != 20 {
		t.Fatalf("receiver traffic = %+v", recv)
	}
	sent, _ := net.Traffic(0)
	if sent.MsgsSent != 1 {
		t.Fatalf("sender MsgsSent = %d, want 1", sent.MsgsSent)
	}
}

func TestFaultReorderingOvertakes(t *testing.T) {
	net, got := collectNet(t, 2, ConstantLatency(time.Millisecond))
	net.EnableFaults(11, FaultConfig{ReorderRate: 1, ReorderDelay: 80 * time.Millisecond})
	const sends = 40
	for i := 0; i < sends; i++ {
		if err := net.Send(Message{From: 0, To: 1, Kind: "seq", Size: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	net.RunUntilIdle()
	if len(*got) != sends {
		t.Fatalf("delivered %d, want %d", len(*got), sends)
	}
	inverted := 0
	for i := 1; i < len(*got); i++ {
		if (*got)[i].Size < (*got)[i-1].Size {
			inverted++
		}
	}
	if inverted == 0 {
		t.Fatal("no reordering observed with ReorderRate=1")
	}
}

func TestFaultCorruption(t *testing.T) {
	net, got := collectNet(t, 2, ConstantLatency(0))
	net.EnableFaults(5, FaultConfig{
		CorruptRate: 1,
		Corrupt: func(msg Message, _ *blockcrypto.RNG) (any, bool) {
			if msg.Kind != "data" {
				return nil, false
			}
			return "corrupted", true
		},
	})
	_ = net.Send(Message{From: 0, To: 1, Kind: "data", Size: 10, Payload: "clean"})
	_ = net.Send(Message{From: 0, To: 1, Kind: "ctrl", Size: 10, Payload: "clean"})
	net.RunUntilIdle()
	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2", len(*got))
	}
	for _, m := range *got {
		want := "corrupted"
		if m.Kind == "ctrl" {
			want = "clean" // CorruptFunc declined this kind
		}
		if m.Payload != want {
			t.Fatalf("kind %s payload = %v, want %s", m.Kind, m.Payload, want)
		}
	}
	if net.FaultStats().Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", net.FaultStats().Corrupted)
	}
}

func TestPerLinkFaultsOverrideGlobal(t *testing.T) {
	net, got := collectNet(t, 3, ConstantLatency(0))
	net.EnableFaults(9, FaultConfig{}) // no global injection
	if err := net.SetLinkFaults(0, 1, FaultConfig{DropRate: 1}); err != nil {
		t.Fatal(err)
	}
	_ = net.Send(Message{From: 0, To: 1, Kind: "a", Size: 1})
	_ = net.Send(Message{From: 0, To: 2, Kind: "b", Size: 1})
	_ = net.Send(Message{From: 1, To: 0, Kind: "c", Size: 1}) // reverse direction unaffected
	net.RunUntilIdle()
	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2 (only 0->1 black-holed)", len(*got))
	}
	for _, m := range *got {
		if m.Kind == "a" {
			t.Fatal("message on the black-holed link was delivered")
		}
	}
}

func TestSetLinkFaultsRequiresEnable(t *testing.T) {
	net, _ := collectNet(t, 2, ConstantLatency(0))
	if err := net.SetLinkFaults(0, 1, FaultConfig{DropRate: 1}); err == nil {
		t.Fatal("SetLinkFaults accepted before EnableFaults")
	}
}

func TestScheduleCrashAndRestart(t *testing.T) {
	net, got := collectNet(t, 2, ConstantLatency(time.Millisecond))
	if err := net.ScheduleCrash(1, 10*time.Millisecond, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := net.ScheduleCrash(9, 0, 0); err == nil {
		t.Fatal("crash schedule for unknown node accepted")
	}
	send := func(after time.Duration, size int) {
		net.After(after, func() {
			_ = net.Send(Message{From: 0, To: 1, Kind: "ping", Size: size})
		})
	}
	send(5*time.Millisecond, 1)  // before the crash: delivered
	send(15*time.Millisecond, 2) // while down: dropped
	send(40*time.Millisecond, 3) // after restart: delivered
	net.RunUntilIdle()
	if len(*got) != 2 {
		t.Fatalf("delivered %d, want 2", len(*got))
	}
	if (*got)[0].Size != 1 || (*got)[1].Size != 3 {
		t.Fatalf("unexpected deliveries %v", *got)
	}
	if net.DroppedCount() != 1 {
		t.Fatalf("DroppedCount = %d, want 1", net.DroppedCount())
	}
}

func TestScheduleCrashPermanent(t *testing.T) {
	net, _ := collectNet(t, 2, ConstantLatency(0))
	if err := net.ScheduleCrash(1, time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	net.RunUntilIdle()
	if !net.IsDown(1) {
		t.Fatal("node restarted despite downFor=0")
	}
}

// TestChaosTraceDeterminism is the simulator-level half of the determinism
// guarantee: the same seed, fault config and send schedule produce a
// byte-identical event trace even with every fault class enabled.
func TestChaosTraceDeterminism(t *testing.T) {
	run := func() (string, TrafficStats, FaultStats) {
		net := New(ConstantLatency(time.Millisecond))
		for i := 0; i < 4; i++ {
			id := NodeID(i)
			if err := net.AddNode(id, HandlerFunc(func(n *Network, m Message) {
				// Each delivery fans out one more hop while size lasts,
				// so faults reshape downstream traffic too.
				if m.Size > 1 {
					_ = n.Send(Message{From: m.To, To: (m.To + 1) % 4, Kind: m.Kind, Size: m.Size - 1})
				}
			}), Coord{X: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		net.EnableTrace()
		net.EnableFaults(42, FaultConfig{
			DropRate: 0.1, DupRate: 0.1, ReorderRate: 0.3,
			ReorderDelay: 10 * time.Millisecond,
		})
		_ = net.ScheduleCrash(2, 5*time.Millisecond, 5*time.Millisecond)
		for i := 0; i < 50; i++ {
			_ = net.Send(Message{From: 0, To: NodeID(1 + i%3), Kind: "chain", Size: 8})
		}
		net.RunUntilIdle()
		return net.TraceString(), net.TotalTraffic(), net.FaultStats()
	}
	tr1, tt1, fs1 := run()
	tr2, tt2, fs2 := run()
	if tr1 != tr2 {
		t.Fatal("identical seeds produced different traces")
	}
	if tt1 != tt2 {
		t.Fatalf("traffic diverged: %+v vs %+v", tt1, tt2)
	}
	if fs1 != fs2 {
		t.Fatalf("fault stats diverged: %+v vs %+v", fs1, fs2)
	}
	if tr1 == "" {
		t.Fatal("empty trace")
	}
}
