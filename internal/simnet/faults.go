package simnet

import (
	"fmt"
	"strings"
	"time"

	"icistrategy/internal/blockcrypto"
)

// This file is the chaos layer of the simulator: probabilistic message
// loss, duplication, reordering and payload corruption, plus scheduled
// crash/restart scripts. Every random decision flows from one seeded RNG
// consumed in Send order, so a chaos run with a given seed and fault
// configuration is exactly as replayable as a clean run.

// CorruptFunc rewrites a message payload in a kind-aware way. It returns
// the replacement payload and true, or (nil, false) when the message kind
// is not corruptible. Implementations must return a deep-enough copy that
// no state shared with the sender is mutated, and must preserve the wire
// size (corruption flips bits, it does not truncate).
type CorruptFunc func(msg Message, rng *blockcrypto.RNG) (any, bool)

// FaultConfig is one set of fault-injection knobs. Rates are probabilities
// in [0, 1] evaluated independently per message; the zero value injects
// nothing.
type FaultConfig struct {
	// DropRate is the probability a message is silently lost in transit.
	// The sender still pays its uplink bytes (the loss happens on the wire,
	// not in the sender's stack).
	DropRate float64
	// DupRate is the probability a message is delivered twice. The second
	// copy arrives after an extra delay in [0, ReorderDelay).
	DupRate float64
	// ReorderRate is the probability a message is held back by an extra
	// delay in [0, ReorderDelay), letting later sends overtake it.
	ReorderRate float64
	// ReorderDelay bounds the extra delay of reordered and duplicated
	// copies; 0 defaults to 50 ms.
	ReorderDelay time.Duration
	// CorruptRate is the probability Corrupt is invoked on a message.
	CorruptRate float64
	// Corrupt performs payload corruption; nil disables corruption
	// regardless of CorruptRate.
	Corrupt CorruptFunc
}

// enabled reports whether this config can inject anything.
func (c FaultConfig) enabled() bool {
	return c.DropRate > 0 || c.DupRate > 0 || c.ReorderRate > 0 ||
		(c.CorruptRate > 0 && c.Corrupt != nil)
}

// reorderDelay returns the configured extra-delay bound with its default.
func (c FaultConfig) reorderDelay() time.Duration {
	if c.ReorderDelay > 0 {
		return c.ReorderDelay
	}
	return 50 * time.Millisecond
}

// FaultStats counts injected faults since EnableFaults (or the last
// ResetTraffic, which also clears them).
type FaultStats struct {
	Dropped    int64 // messages lost to DropRate
	Duplicated int64 // extra copies scheduled by DupRate
	Reordered  int64 // messages given extra delay by ReorderRate
	Corrupted  int64 // payloads rewritten by Corrupt
	Crashes    int64 // ScheduleCrash crash events fired
	Restarts   int64 // ScheduleCrash restart events fired
}

// faultState is the network's chaos machinery.
type faultState struct {
	rng    *blockcrypto.RNG
	global FaultConfig
	links  map[[2]NodeID]FaultConfig
	stats  FaultStats
}

// EnableFaults installs (or replaces) the global fault configuration and
// seeds the chaos RNG. Per-link overrides installed with SetLinkFaults are
// cleared. Pass a zero FaultConfig to keep faults armed (e.g. for per-link
// use) without global injection.
func (n *Network) EnableFaults(seed uint64, cfg FaultConfig) {
	n.faults = &faultState{
		rng:    blockcrypto.NewRNG(seed),
		global: cfg,
	}
}

// DisableFaults removes all fault injection (global and per-link) and the
// chaos RNG. Scheduled crashes already in the event queue still fire.
func (n *Network) DisableFaults() { n.faults = nil }

// SetLinkFaults overrides the fault configuration for the directed link
// from -> to. EnableFaults must have been called first.
func (n *Network) SetLinkFaults(from, to NodeID, cfg FaultConfig) error {
	if n.faults == nil {
		return fmt.Errorf("simnet: SetLinkFaults before EnableFaults")
	}
	if n.faults.links == nil {
		n.faults.links = make(map[[2]NodeID]FaultConfig)
	}
	n.faults.links[[2]NodeID{from, to}] = cfg
	return nil
}

// FaultStats returns a snapshot of the injected-fault counters (zero value
// when faults were never enabled).
func (n *Network) FaultStats() FaultStats {
	if n.faults == nil {
		return FaultStats{}
	}
	return n.faults.stats
}

// configFor resolves the fault config for one directed link.
func (f *faultState) configFor(from, to NodeID) FaultConfig {
	if f.links != nil {
		if cfg, ok := f.links[[2]NodeID{from, to}]; ok {
			return cfg
		}
	}
	return f.global
}

// ScheduleCrash scripts a crash: after `after` of virtual time the node
// goes down (in-flight messages to it are lost), and after a further
// downFor it comes back up with its in-memory state intact — a process
// restart, not a disk wipe. downFor <= 0 leaves the node down permanently.
// The script is part of the event queue, so it replays deterministically.
func (n *Network) ScheduleCrash(id NodeID, after, downFor time.Duration) error {
	if n.node(id) == nil {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	n.After(after, func() {
		_ = n.SetDown(id, true)
		if n.faults != nil {
			n.faults.stats.Crashes++
		}
		n.traceOp("crash", id)
		if downFor > 0 {
			n.After(downFor, func() {
				_ = n.SetDown(id, false)
				if n.faults != nil {
					n.faults.stats.Restarts++
				}
				n.traceOp("restart", id)
			})
		}
	})
	return nil
}

// --- event trace -------------------------------------------------------------

// TraceEvent is one recorded simulation event. Op is one of "send", "recv",
// "drop" (receiver down/partitioned at delivery), "lose" (fault-injected
// loss), "dup" (fault-injected duplicate scheduled), "corrupt", "crash",
// "restart".
type TraceEvent struct {
	At       time.Duration
	Op       string
	From, To NodeID
	Kind     string
	Size     int
}

// String renders the event as one canonical line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%d %s %d->%d %s %d", e.At.Nanoseconds(), e.Op, e.From, e.To, e.Kind, e.Size)
}

// EnableTrace starts recording an event trace. Tracing is off by default
// because long experiments would accumulate unbounded memory.
func (n *Network) EnableTrace() { n.tracing = true }

// Trace returns the recorded events (nil unless EnableTrace was called).
func (n *Network) Trace() []TraceEvent { return n.trace }

// TraceString renders the whole trace, one event per line — two runs are
// identical iff their TraceStrings are byte-identical.
func (n *Network) TraceString() string {
	lines := make([]string, len(n.trace))
	for i, e := range n.trace {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}

// traceMsg records a message-shaped event when tracing is enabled.
func (n *Network) traceMsg(op string, msg Message) {
	if !n.tracing {
		return
	}
	n.trace = append(n.trace, TraceEvent{
		At: n.now, Op: op, From: msg.From, To: msg.To, Kind: msg.Kind, Size: msg.Size,
	})
}

// traceOp records a node-lifecycle event when tracing is enabled.
func (n *Network) traceOp(op string, id NodeID) {
	if !n.tracing {
		return
	}
	n.trace = append(n.trace, TraceEvent{At: n.now, Op: op, From: id, To: id})
}

// applyFaults runs the chaos knobs for msg. It returns the (possibly
// corrupted) message, the extra delivery delay, whether to schedule a
// duplicate copy (with its own extra delay), and whether the message was
// dropped outright.
func (n *Network) applyFaults(msg Message) (out Message, extra time.Duration, dup bool, dupExtra time.Duration, dropped bool) {
	out = msg
	f := n.faults
	if f == nil {
		return out, 0, false, 0, false
	}
	cfg := f.configFor(msg.From, msg.To)
	if !cfg.enabled() {
		return out, 0, false, 0, false
	}
	if cfg.DropRate > 0 && f.rng.Float64() < cfg.DropRate {
		f.stats.Dropped++
		n.traceMsg("lose", msg)
		return out, 0, false, 0, true
	}
	if cfg.CorruptRate > 0 && cfg.Corrupt != nil && f.rng.Float64() < cfg.CorruptRate {
		if p, ok := cfg.Corrupt(msg, f.rng); ok {
			out.Payload = p
			f.stats.Corrupted++
			n.traceMsg("corrupt", out)
		}
	}
	if cfg.ReorderRate > 0 && f.rng.Float64() < cfg.ReorderRate {
		extra = time.Duration(f.rng.Float64() * float64(cfg.reorderDelay()))
		f.stats.Reordered++
	}
	if cfg.DupRate > 0 && f.rng.Float64() < cfg.DupRate {
		dup = true
		dupExtra = time.Duration(f.rng.Float64() * float64(cfg.reorderDelay()))
		f.stats.Duplicated++
		n.traceMsg("dup", out)
	}
	return out, extra, dup, dupExtra, dropped
}
