// Package simnet is a deterministic discrete-event network simulator.
//
// Nodes are registered with message handlers and 2-D coordinates in latency
// space; Send schedules a delivery event after a latency computed from the
// link model, and Run drains the event queue in virtual-time order. All
// randomness flows from a seeded RNG, so identical seeds produce identical
// traces. The simulator also keeps complete traffic accounting (bytes and
// message counts per node and per message kind), which is what the
// communication-overhead experiments measure.
package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"icistrategy/internal/trace"
)

// NodeID identifies a simulated node.
type NodeID uint64

// Simulation errors.
var (
	ErrUnknownNode   = errors.New("simnet: unknown node")
	ErrDuplicateNode = errors.New("simnet: node already registered")
	ErrNodeDown      = errors.New("simnet: node is down")
)

// Message is one network message. Size is the wire size in bytes used for
// bandwidth/latency accounting; Payload carries the in-memory content
// (never serialized — this is a simulator, not a codec).
type Message struct {
	From    NodeID
	To      NodeID
	Kind    string
	Size    int
	Payload any
	// Span is the trace-span context this message belongs to: the wire
	// event it produces, and any spans the receiver opens while handling
	// it, hang under this span. Zero means untraced.
	Span trace.SpanID
}

// Handler consumes messages delivered to a node.
type Handler interface {
	HandleMessage(net *Network, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(net *Network, msg Message)

// HandleMessage calls f.
func (f HandlerFunc) HandleMessage(net *Network, msg Message) { f(net, msg) }

var _ Handler = HandlerFunc(nil)

// TrafficStats is the per-node traffic accounting snapshot.
type TrafficStats struct {
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64
}

// KindStats aggregates traffic by message kind across the whole network.
type KindStats struct {
	Messages int64
	Bytes    int64
}

type nodeState struct {
	id        NodeID
	handler   Handler
	coord     Coord
	down      bool
	traffic   TrafficStats
	busyUntil time.Duration // uplink serialization horizon
}

type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for equal timestamps
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Network is the simulator. Create one with New; the zero value is not
// usable. Network is not safe for concurrent use: the simulation is
// single-threaded by design so that runs are reproducible.
type Network struct {
	now       time.Duration
	seq       uint64
	events    eventHeap
	nodes     map[NodeID]*nodeState
	latency   LatencyModel
	kindStats map[string]*KindStats
	delivered int64
	dropped   int64
	// uplinkBps, when positive, serializes each sender's outgoing
	// messages at this many bytes per second: a node with one access link
	// cannot transmit two large messages at once. The per-link latency
	// model is applied on top.
	uplinkBps float64
	// partition, when non-nil, maps nodes to partition groups; messages
	// between different groups are dropped at delivery time.
	partition map[NodeID]int
	// faults, when non-nil, injects message loss, duplication, reordering
	// and corruption (see faults.go).
	faults *faultState
	// tracing/trace record the event trace when EnableTrace was called.
	tracing bool
	trace   []TraceEvent
	// tracer, when non-nil, records one structured wire event per message
	// delivery (and per drop), parented under the message's Span context.
	tracer *trace.Tracer
}

// SetTracer attaches a structured tracer; every message delivery then emits
// a "net" wire event under the message's span context. The tracer's clock
// is pointed at the network's virtual clock, so recorded timestamps are
// deterministic for a fixed seed.
func (n *Network) SetTracer(tr *trace.Tracer) {
	n.tracer = tr
	tr.SetClock(n.Now)
}

// Tracer returns the attached structured tracer (nil when tracing is off —
// a valid disabled tracer).
func (n *Network) Tracer() *trace.Tracer { return n.tracer }

// Partition splits the network: each slice of ids becomes one group, and
// messages crossing group boundaries are silently dropped (counted as
// dropped). Nodes in no group can talk to everyone. Call Heal to remove
// the partition.
func (n *Network) Partition(groups ...[]NodeID) {
	n.partition = make(map[NodeID]int)
	for g, ids := range groups {
		for _, id := range ids {
			n.partition[id] = g + 1
		}
	}
}

// Heal removes any partition.
func (n *Network) Heal() { n.partition = nil }

// reachable reports whether a message from a to b crosses a partition.
func (n *Network) reachable(a, b NodeID) bool {
	if n.partition == nil {
		return true
	}
	ga, gb := n.partition[a], n.partition[b]
	if ga == 0 || gb == 0 {
		return true
	}
	return ga == gb
}

// SetUplinkBandwidth enables sender-side uplink serialization at the given
// bytes per second (0 disables it). Enable it for experiments where a
// single node fanning out large payloads is the bottleneck — e.g. a block
// producer unicasting a block to many cluster leaders.
func (n *Network) SetUplinkBandwidth(bytesPerSec float64) {
	n.uplinkBps = bytesPerSec
}

// New creates an empty network using the given latency model.
func New(model LatencyModel) *Network {
	return &Network{
		nodes:     make(map[NodeID]*nodeState),
		latency:   model,
		kindStats: make(map[string]*KindStats),
	}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// AddNode registers a node with its handler and latency-space coordinate.
func (n *Network) AddNode(id NodeID, handler Handler, coord Coord) error {
	if _, ok := n.nodes[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateNode, id)
	}
	n.nodes[id] = &nodeState{id: id, handler: handler, coord: coord}
	return nil
}

// SetHandler replaces a node's handler (used when a node restarts with new
// state).
func (n *Network) SetHandler(id NodeID, handler Handler) error {
	st, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	st.handler = handler
	return nil
}

// Coordinate returns the node's latency-space coordinate.
func (n *Network) Coordinate(id NodeID) (Coord, error) {
	st, ok := n.nodes[id]
	if !ok {
		return Coord{}, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return st.coord, nil
}

// NumNodes returns the number of registered nodes (up or down).
func (n *Network) NumNodes() int { return len(n.nodes) }

// SetDown marks a node as failed (true) or recovered (false). Messages to a
// down node are dropped; a down node cannot send.
func (n *Network) SetDown(id NodeID, down bool) error {
	st, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	st.down = down
	return nil
}

// IsDown reports whether the node is currently failed.
func (n *Network) IsDown(id NodeID) bool {
	st, ok := n.nodes[id]
	return ok && st.down
}

// Send schedules delivery of msg after the link latency. Sending accounts
// the bytes immediately (the sender pays the uplink even if the receiver is
// down when the message lands).
func (n *Network) Send(msg Message) error {
	src, ok := n.nodes[msg.From]
	if !ok {
		return fmt.Errorf("send from %w: %d", ErrUnknownNode, msg.From)
	}
	if src.down {
		return fmt.Errorf("send: %w: %d", ErrNodeDown, msg.From)
	}
	dst, ok := n.nodes[msg.To]
	if !ok {
		return fmt.Errorf("send to %w: %d", ErrUnknownNode, msg.To)
	}
	src.traffic.BytesSent += int64(msg.Size)
	src.traffic.MsgsSent++
	ks := n.kindStats[msg.Kind]
	if ks == nil {
		ks = &KindStats{}
		n.kindStats[msg.Kind] = ks
	}
	ks.Messages++
	ks.Bytes += int64(msg.Size)

	n.traceMsg("send", msg)

	delay := n.latency.Latency(src.coord, dst.coord, msg.Size)
	if delay < 0 {
		delay = 0
	}
	depart := n.now
	if n.uplinkBps > 0 {
		if src.busyUntil > depart {
			depart = src.busyUntil
		}
		txTime := time.Duration(float64(msg.Size) / n.uplinkBps * float64(time.Second))
		depart += txTime
		src.busyUntil = depart
	}
	// Chaos layer: the sender has paid its uplink by now; whatever the
	// fault model does happens on the wire.
	msg, extra, dup, dupExtra, dropped := n.applyFaults(msg)
	if dropped {
		n.spanEvent(msg, n.now, "lost")
		return nil
	}
	sentAt := n.now
	n.schedule(depart+delay+extra, func() { n.deliver(msg, sentAt) })
	if dup {
		n.schedule(depart+delay+dupExtra, func() { n.deliver(msg, sentAt) })
	}
	return nil
}

// deliver lands one message on its receiver (the second half of Send,
// shared with fault-injected duplicate copies). sentAt is the virtual time
// the sender handed the message to the network, kept for the wire-event
// span so transit time is visible in traces.
func (n *Network) deliver(msg Message, sentAt time.Duration) {
	st := n.nodes[msg.To]
	if st == nil || st.down || st.handler == nil || !n.reachable(msg.From, msg.To) {
		n.dropped++
		n.traceMsg("drop", msg)
		n.spanEvent(msg, sentAt, "dropped")
		return
	}
	st.traffic.BytesRecv += int64(msg.Size)
	st.traffic.MsgsRecv++
	n.delivered++
	n.traceMsg("recv", msg)
	n.spanEvent(msg, sentAt, "")
	st.handler.HandleMessage(n, msg)
}

// spanEvent records one "net" wire event for a message under its span
// context, spanning send→deliver in virtual time.
func (n *Network) spanEvent(msg Message, sentAt time.Duration, errStr string) {
	if !n.tracer.Enabled() {
		return
	}
	n.tracer.Emit(trace.Event{
		Parent: msg.Span,
		Name:   msg.Kind,
		Proto:  "net",
		Node:   int64(msg.To),
		Start:  sentAt,
		End:    n.now,
		Bytes:  int64(msg.Size),
		Err:    errStr,
		Point:  true,
	})
}

// After schedules fn to run after d of virtual time.
func (n *Network) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	n.schedule(n.now+d, fn)
}

func (n *Network) schedule(at time.Duration, fn func()) {
	n.seq++
	heap.Push(&n.events, &event{at: at, seq: n.seq, fn: fn})
}

// Step executes the next pending event, returning false when the queue is
// empty.
func (n *Network) Step() bool {
	if n.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&n.events).(*event)
	if e.at > n.now {
		n.now = e.at
	}
	e.fn()
	return true
}

// Run drains events until the queue is empty or virtual time would exceed
// until (0 means no limit). It returns the number of events executed.
func (n *Network) Run(until time.Duration) int {
	executed := 0
	for n.events.Len() > 0 {
		next := n.events[0]
		if until > 0 && next.at > until {
			break
		}
		n.Step()
		executed++
	}
	return executed
}

// RunUntilIdle drains the entire event queue.
func (n *Network) RunUntilIdle() int { return n.Run(0) }

// Pending returns the number of queued events.
func (n *Network) Pending() int { return n.events.Len() }

// Traffic returns the traffic snapshot for one node.
func (n *Network) Traffic(id NodeID) (TrafficStats, error) {
	st, ok := n.nodes[id]
	if !ok {
		return TrafficStats{}, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return st.traffic, nil
}

// TotalTraffic sums traffic across all nodes.
func (n *Network) TotalTraffic() TrafficStats {
	var t TrafficStats
	for _, st := range n.nodes {
		t.BytesSent += st.traffic.BytesSent
		t.BytesRecv += st.traffic.BytesRecv
		t.MsgsSent += st.traffic.MsgsSent
		t.MsgsRecv += st.traffic.MsgsRecv
	}
	return t
}

// KindTraffic returns a copy of the per-kind aggregate for kind.
func (n *Network) KindTraffic(kind string) KindStats {
	if ks := n.kindStats[kind]; ks != nil {
		return *ks
	}
	return KindStats{}
}

// Kinds returns all message kinds observed so far.
func (n *Network) Kinds() []string {
	out := make([]string, 0, len(n.kindStats))
	for k := range n.kindStats {
		out = append(out, k)
	}
	return out
}

// DeliveredCount and DroppedCount expose delivery accounting for tests and
// experiment sanity checks.
func (n *Network) DeliveredCount() int64 { return n.delivered }

// DroppedCount returns the number of messages dropped because the receiver
// was down at delivery time.
func (n *Network) DroppedCount() int64 { return n.dropped }

// ResetTraffic zeroes all traffic accounting (per-node and per-kind) while
// leaving topology and time untouched. Experiments use it to measure a
// single phase.
func (n *Network) ResetTraffic() {
	for _, st := range n.nodes {
		st.traffic = TrafficStats{}
	}
	n.kindStats = make(map[string]*KindStats)
	n.delivered = 0
	n.dropped = 0
	if n.faults != nil {
		n.faults.stats = FaultStats{}
	}
}
