// Package simnet is a deterministic discrete-event network simulator.
//
// Nodes are registered with message handlers and 2-D coordinates in latency
// space; Send schedules a delivery event after a latency computed from the
// link model, and Run drains the event queue in virtual-time order. All
// randomness flows from a seeded RNG, so identical seeds produce identical
// traces. The simulator also keeps complete traffic accounting (bytes and
// message counts per node and per message kind), which is what the
// communication-overhead experiments measure.
//
// The event engine is built for throughput (see DESIGN.md "Event engine"):
// events are typed structs recycled through a slab free list instead of
// per-message closures, the ready queue is a two-level sorted-window queue
// (a sorted near window drained by cursor plus an unsorted far buffer,
// refilled one time slice at a time), node state lives in a dense slice
// indexed by NodeID (with a map fallback for sparse IDs), and message kinds
// are interned to small ints so per-kind accounting never hashes a string
// on the hot path. A send→deliver cycle performs zero allocations at
// steady state.
package simnet

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"time"

	"icistrategy/internal/trace"
)

// NodeID identifies a simulated node.
type NodeID uint64

// Simulation errors.
var (
	ErrUnknownNode   = errors.New("simnet: unknown node")
	ErrDuplicateNode = errors.New("simnet: node already registered")
	ErrNodeDown      = errors.New("simnet: node is down")
)

// Message is one network message. Size is the wire size in bytes used for
// bandwidth/latency accounting; Payload carries the in-memory content
// (never serialized — this is a simulator, not a codec).
type Message struct {
	From    NodeID
	To      NodeID
	Kind    string
	Size    int
	Payload any
	// Span is the trace-span context this message belongs to: the wire
	// event it produces, and any spans the receiver opens while handling
	// it, hang under this span. Zero means untraced.
	Span trace.SpanID
}

// Handler consumes messages delivered to a node.
type Handler interface {
	HandleMessage(net *Network, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(net *Network, msg Message)

// HandleMessage calls f.
func (f HandlerFunc) HandleMessage(net *Network, msg Message) { f(net, msg) }

var _ Handler = HandlerFunc(nil)

// TrafficStats is the per-node traffic accounting snapshot.
type TrafficStats struct {
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64
}

// KindStats aggregates traffic by message kind across the whole network.
type KindStats struct {
	Messages int64
	Bytes    int64
}

type nodeState struct {
	id        NodeID
	handler   Handler
	coord     Coord
	present   bool // dense-table slot is occupied
	down      bool
	traffic   TrafficStats
	busyUntil time.Duration // uplink serialization horizon
}

// opCode selects what a popped event does. Deliveries — the hot path — are
// fully described by the event struct itself; only user callbacks (After,
// crash scripts) carry a closure.
type opCode uint8

const (
	opFunc    opCode = iota // run fn
	opDeliver               // deliver msg (scheduled by Send)
)

// event is one scheduled simulator action. Events live in the network's
// flat pool slab and are addressed by index, never by pointer: Step
// releases every executed event back onto the free list and the schedulers
// reuse the slots, so the steady-state hot path allocates nothing and the
// slab only ever grows to the peak queue depth.
type event struct {
	op     opCode
	sentAt time.Duration // opDeliver: virtual send time, for wire spans
	msg    Message       // opDeliver
	fn     func()        // opFunc
	next   uint32        // free-list link (index into the pool slab)
}

// noEvent is the nil of pool indices (free-list terminator).
const noEvent = ^uint32(0)

// heapEntry is one heap slot: the (at, seq) sort key held inline next to
// the event's pool index. The entry is exactly 16 bytes, so the 4-ary
// min-child scan reads its four children from a single cache line and
// never chases a pointer — sift traffic at large queue depths is the
// engine's dominant cost, and it is pure sequential memory here. seq is
// deliberately uint32: the scheduler renumbers the queue in the (cold)
// event horizon where it would wrap, see nextSeq.
type heapEntry struct {
	at  time.Duration
	seq uint32 // FIFO tie-break for equal timestamps
	idx uint32 // event's index in the pool slab
}

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// sortEntries sorts es ascending by (at, seq) — an introsort (median-of-3
// quicksort, insertion sort below 16, heapsort under a depth limit) written
// out for heapEntry because the generic slices.SortFunc routes every
// comparison through a function pointer, which at refill frequency is the
// queue's dominant cost. The (at, seq) key is unique per queued entry, so
// the order is total and any comparison sort yields the same permutation.
func sortEntries(es []heapEntry) {
	for i := 1; i < len(es); i++ {
		if entryLess(es[i], es[i-1]) {
			sortEntriesDepth(es, 2*bits.Len(uint(len(es))))
			return
		}
	}
	// Already sorted — the common case for bursts of constant-latency
	// same-kind traffic, whose refill slices arrive in (at, seq) order.
}

func sortEntriesDepth(es []heapEntry, depth int) {
	for len(es) > 16 {
		if depth == 0 {
			heapSortEntries(es)
			return
		}
		depth--
		p := partitionEntries(es)
		if p < len(es)-p {
			sortEntriesDepth(es[:p], depth)
			es = es[p:]
		} else {
			sortEntriesDepth(es[p:], depth)
			es = es[:p]
		}
	}
	for i := 1; i < len(es); i++ {
		en := es[i]
		j := i - 1
		for j >= 0 && entryLess(en, es[j]) {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = en
	}
}

// partitionEntries Hoare-partitions es around a median-of-three pivot and
// returns the split point p: es[:p] all precede es[p:].
func partitionEntries(es []heapEntry) int {
	m := len(es) / 2
	hi := len(es) - 1
	if entryLess(es[m], es[0]) {
		es[0], es[m] = es[m], es[0]
	}
	if entryLess(es[hi], es[0]) {
		es[0], es[hi] = es[hi], es[0]
	}
	if entryLess(es[hi], es[m]) {
		es[m], es[hi] = es[hi], es[m]
	}
	pivot := es[m]
	i, j := 0, hi
	for {
		for entryLess(es[i], pivot) {
			i++
		}
		for entryLess(pivot, es[j]) {
			j--
		}
		if i >= j {
			return j + 1
		}
		es[i], es[j] = es[j], es[i]
		i++
		j--
	}
}

// heapSortEntries is the depth-limit fallback: in-place binary max-heap
// sort, O(n log n) worst case.
func heapSortEntries(es []heapEntry) {
	n := len(es)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownEntries(es, i, n)
	}
	for i := n - 1; i > 0; i-- {
		es[0], es[i] = es[i], es[0]
		siftDownEntries(es, 0, i)
	}
}

func siftDownEntries(es []heapEntry, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && entryLess(es[c], es[c+1]) {
			c++
		}
		if !entryLess(es[i], es[c]) {
			return
		}
		es[i], es[c] = es[c], es[i]
		i = c
	}
}

// nearChunkTarget is how many entries a queue refill aims to promote into
// the near window: large enough to amortize the refill's scan over the far
// buffer, small enough that the window (16 B/entry) stays L1-resident.
const nearChunkTarget = 512

// eventQueue is the pending-event set, split by a moving time horizon:
// entries with at < horizon live in a sorted window consumed front to back
// (near), everything later sits in an unsorted buffer (far). Scheduling
// into the future — the overwhelmingly common case, since every delivery
// lands at now+latency — is then a plain append, and popping the minimum
// is a cursor increment instead of a heap sift over the whole pending set.
// When the window drains, refill advances the horizon and sorts the next
// time slice of far; entries scheduled inside the current window (zero-
// delay callbacks, unusually short links) are spliced into the sorted tail
// on arrival. The split never reorders anything: every window entry
// precedes every far entry by the horizon invariant, and the window itself
// is ordered by the full (at, seq) key, so pops return the global minimum
// exactly as one big heap would.
type eventQueue struct {
	near    []heapEntry // sorted by (at, seq); next pop at nearPos
	nearPos int
	far     []heapEntry   // unsorted; every entry has at >= horizon
	horizon time.Duration // near holds exactly the entries with at < horizon
	farMin  time.Duration // valid while far is non-empty
	farMax  time.Duration
}

func (q *eventQueue) len() int { return len(q.near) - q.nearPos + len(q.far) }

func (q *eventQueue) push(en heapEntry) {
	if en.at < q.horizon {
		q.insertNear(en)
		return
	}
	if len(q.far) == 0 {
		q.farMin, q.farMax = en.at, en.at
	} else if en.at < q.farMin {
		q.farMin = en.at
	} else if en.at > q.farMax {
		q.farMax = en.at
	}
	q.far = append(q.far, en)
}

// insertNear splices an entry into the sorted window. Rare: only events
// scheduled closer than the current horizon land here. The splice point is
// always in the unconsumed tail — a new entry's timestamp is at least the
// current virtual time, and everything before nearPos has already been
// popped at or before that time.
func (q *eventQueue) insertNear(en heapEntry) {
	live := q.near[q.nearPos:]
	i := sort.Search(len(live), func(k int) bool { return entryLess(en, live[k]) })
	q.near = append(q.near, heapEntry{})
	live = q.near[q.nearPos:]
	copy(live[i+1:], live[i:])
	live[i] = en
}

// minAt returns the earliest pending timestamp. Only valid when len() > 0.
func (q *eventQueue) minAt() time.Duration {
	if q.nearPos < len(q.near) {
		return q.near[q.nearPos].at
	}
	return q.farMin
}

func (q *eventQueue) pop() heapEntry {
	for q.nearPos == len(q.near) {
		q.refill()
	}
	en := q.near[q.nearPos]
	q.nearPos++
	return en
}

// refill advances the horizon past the next slice of far, promotes that
// slice into the window, and sorts it. The slice width is
// span/ceil(len/target), which aims at nearChunkTarget entries for an even
// timestamp spread and degrades gracefully for clustered ones; entries at
// farMin always satisfy at < farMin+width, so each refill promotes at
// least one entry.
func (q *eventQueue) refill() {
	if len(q.far) == 0 {
		return
	}
	width := q.farMax - q.farMin
	if steps := time.Duration((len(q.far)-1)/nearChunkTarget + 1); width >= steps {
		width /= steps
	} else {
		width = 1
	}
	limit := q.farMin + width
	q.near = q.near[:0]
	q.nearPos = 0
	kept := q.far[:0]
	var min, max time.Duration
	for _, en := range q.far {
		if en.at < limit {
			q.near = append(q.near, en)
			continue
		}
		if len(kept) == 0 {
			min, max = en.at, en.at
		} else if en.at < min {
			min = en.at
		} else if en.at > max {
			max = en.at
		}
		kept = append(kept, en)
	}
	q.far = kept
	q.farMin, q.farMax = min, max
	q.horizon = limit
	sortEntries(q.near)
}

// drainSorted returns every pending entry ordered by (at, seq) and resets
// the queue to hold them all in the sorted window. Cold path: only the
// seq-renumber uses it.
func (q *eventQueue) drainSorted() []heapEntry {
	es := append(q.near[q.nearPos:], q.far...)
	sortEntries(es)
	q.near = es
	q.nearPos = 0
	q.far = nil
	if n := len(es); n > 0 {
		q.horizon = es[n-1].at + 1
	}
	return es
}

// Network is the simulator. Create one with New; the zero value is not
// usable. Network is not safe for concurrent use: the simulation is
// single-threaded by design so that runs are reproducible.
type Network struct {
	now    time.Duration
	seq    uint32 // last issued tie-break; renumbered before it can wrap
	events eventQueue
	pool   []event // slab backing every queued event, addressed by index
	free   uint32  // head of the recycled-slot list (noEvent when empty)

	// dense holds node state indexed directly by NodeID for the sequential
	// IDs every real topology uses; sparse is the fallback for outliers.
	// Look nodes up through node(), never directly.
	dense    []nodeState
	sparse   map[NodeID]*nodeState
	numNodes int

	latency LatencyModel

	// Message kinds are interned to small ints: kindIDs maps a kind to its
	// index in kindNames/kindAgg, and lastKind memoizes the previous Send's
	// kind so runs of same-kind traffic (broadcasts, vote rounds) skip the
	// map entirely — comparing against the same string constant is a
	// pointer-equality hit, not a hash.
	kindIDs    map[string]int
	kindNames  []string
	kindAgg    []KindStats
	lastKind   string
	lastKindID int

	delivered int64
	dropped   int64
	// uplinkBps, when positive, serializes each sender's outgoing
	// messages at this many bytes per second: a node with one access link
	// cannot transmit two large messages at once. The per-link latency
	// model is applied on top.
	uplinkBps float64
	// partition, when non-nil, maps nodes to partition groups; messages
	// between different groups are dropped at delivery time.
	partition map[NodeID]int
	// faults, when non-nil, injects message loss, duplication, reordering
	// and corruption (see faults.go).
	faults *faultState
	// tracing/trace record the event trace when EnableTrace was called.
	tracing bool
	trace   []TraceEvent
	// tracer, when non-nil, records one structured wire event per message
	// delivery (and per drop), parented under the message's Span context.
	tracer *trace.Tracer
}

// SetTracer attaches a structured tracer; every message delivery then emits
// a "net" wire event under the message's span context. The tracer's clock
// is pointed at the network's virtual clock, so recorded timestamps are
// deterministic for a fixed seed.
func (n *Network) SetTracer(tr *trace.Tracer) {
	n.tracer = tr
	tr.SetClock(n.Now)
}

// Tracer returns the attached structured tracer (nil when tracing is off —
// a valid disabled tracer).
func (n *Network) Tracer() *trace.Tracer { return n.tracer }

// Partition splits the network: each slice of ids becomes one group, and
// messages crossing group boundaries are silently dropped (counted as
// dropped). Nodes in no group can talk to everyone. Call Heal to remove
// the partition.
func (n *Network) Partition(groups ...[]NodeID) {
	n.partition = make(map[NodeID]int)
	for g, ids := range groups {
		for _, id := range ids {
			n.partition[id] = g + 1
		}
	}
}

// Heal removes any partition.
func (n *Network) Heal() { n.partition = nil }

// reachable reports whether a message from a to b crosses a partition.
func (n *Network) reachable(a, b NodeID) bool {
	if n.partition == nil {
		return true
	}
	ga, gb := n.partition[a], n.partition[b]
	if ga == 0 || gb == 0 {
		return true
	}
	return ga == gb
}

// SetUplinkBandwidth enables sender-side uplink serialization at the given
// bytes per second (0 disables it). Enable it for experiments where a
// single node fanning out large payloads is the bottleneck — e.g. a block
// producer unicasting a block to many cluster leaders.
func (n *Network) SetUplinkBandwidth(bytesPerSec float64) {
	n.uplinkBps = bytesPerSec
}

// New creates an empty network using the given latency model.
func New(model LatencyModel) *Network {
	return &Network{
		latency: model,
		kindIDs: make(map[string]int),
		free:    noEvent,
	}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// denseSlack bounds how far past the current dense frontier an ID may land
// while still growing the dense table; anything farther goes to the sparse
// map so one pathological ID cannot balloon the slice.
const denseSlack = 1024

// node resolves a NodeID to its state, or nil when unregistered. The dense
// slice is the hot path; the sparse map only exists when some caller
// registered a far-outlying ID.
func (n *Network) node(id NodeID) *nodeState {
	if uint64(id) < uint64(len(n.dense)) {
		if st := &n.dense[id]; st.present {
			return st
		}
		return nil
	}
	if n.sparse != nil {
		return n.sparse[id]
	}
	return nil
}

// AddNode registers a node with its handler and latency-space coordinate.
func (n *Network) AddNode(id NodeID, handler Handler, coord Coord) error {
	if n.node(id) != nil {
		return fmt.Errorf("%w: %d", ErrDuplicateNode, id)
	}
	st := nodeState{id: id, handler: handler, coord: coord, present: true}
	switch {
	case uint64(id) < uint64(len(n.dense)):
		n.dense[id] = st
	case uint64(id) <= uint64(len(n.dense)+denseSlack):
		for uint64(len(n.dense)) < uint64(id) {
			n.dense = append(n.dense, nodeState{})
		}
		n.dense = append(n.dense, st)
	default:
		if n.sparse == nil {
			n.sparse = make(map[NodeID]*nodeState)
		}
		heap := st
		n.sparse[id] = &heap
	}
	n.numNodes++
	return nil
}

// forEachNode visits every registered node: the dense table in ID order,
// then any sparse outliers in ascending ID order, so iteration-driven
// output is deterministic.
func (n *Network) forEachNode(fn func(*nodeState)) {
	for i := range n.dense {
		if n.dense[i].present {
			fn(&n.dense[i])
		}
	}
	if len(n.sparse) > 0 {
		ids := make([]NodeID, 0, len(n.sparse))
		for id := range n.sparse {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			fn(n.sparse[id])
		}
	}
}

// SetHandler replaces a node's handler (used when a node restarts with new
// state).
func (n *Network) SetHandler(id NodeID, handler Handler) error {
	st := n.node(id)
	if st == nil {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	st.handler = handler
	return nil
}

// Coordinate returns the node's latency-space coordinate.
func (n *Network) Coordinate(id NodeID) (Coord, error) {
	st := n.node(id)
	if st == nil {
		return Coord{}, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return st.coord, nil
}

// NumNodes returns the number of registered nodes (up or down).
func (n *Network) NumNodes() int { return n.numNodes }

// SetDown marks a node as failed (true) or recovered (false). Messages to a
// down node are dropped; a down node cannot send.
func (n *Network) SetDown(id NodeID, down bool) error {
	st := n.node(id)
	if st == nil {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	st.down = down
	return nil
}

// IsDown reports whether the node is currently failed.
func (n *Network) IsDown(id NodeID) bool {
	st := n.node(id)
	return st != nil && st.down
}

// kindID interns kind, returning its index into kindAgg/kindNames.
func (n *Network) kindID(kind string) int {
	if kind == n.lastKind && len(n.kindNames) > 0 {
		return n.lastKindID
	}
	id, ok := n.kindIDs[kind]
	if !ok {
		id = len(n.kindNames)
		n.kindIDs[kind] = id
		n.kindNames = append(n.kindNames, kind)
		n.kindAgg = append(n.kindAgg, KindStats{})
	}
	n.lastKind, n.lastKindID = kind, id
	return id
}

// Send schedules delivery of msg after the link latency. Sending accounts
// the bytes immediately (the sender pays the uplink even if the receiver is
// down when the message lands).
func (n *Network) Send(msg Message) error {
	src := n.node(msg.From)
	if src == nil {
		return fmt.Errorf("send from %w: %d", ErrUnknownNode, msg.From)
	}
	if src.down {
		return fmt.Errorf("send: %w: %d", ErrNodeDown, msg.From)
	}
	dst := n.node(msg.To)
	if dst == nil {
		return fmt.Errorf("send to %w: %d", ErrUnknownNode, msg.To)
	}
	src.traffic.BytesSent += int64(msg.Size)
	src.traffic.MsgsSent++
	ks := &n.kindAgg[n.kindID(msg.Kind)]
	ks.Messages++
	ks.Bytes += int64(msg.Size)

	n.traceMsg("send", msg)

	delay := n.latency.Latency(src.coord, dst.coord, msg.Size)
	if delay < 0 {
		delay = 0
	}
	depart := n.now
	if n.uplinkBps > 0 {
		if src.busyUntil > depart {
			depart = src.busyUntil
		}
		txTime := time.Duration(float64(msg.Size) / n.uplinkBps * float64(time.Second))
		depart += txTime
		src.busyUntil = depart
	}
	// Chaos layer: the sender has paid its uplink by now; whatever the
	// fault model does happens on the wire. Guarded here so the fault-free
	// hot path never pays applyFaults' Message copies.
	var extra, dupExtra time.Duration
	var dup bool
	if n.faults != nil {
		var dropped bool
		msg, extra, dup, dupExtra, dropped = n.applyFaults(msg)
		if dropped {
			n.spanEvent(msg, n.now, "lost")
			return nil
		}
	}
	sentAt := n.now
	n.scheduleDeliver(depart+delay+extra, msg, sentAt)
	if dup {
		n.scheduleDeliver(depart+delay+dupExtra, msg, sentAt)
	}
	return nil
}

// deliver lands one message on its receiver (the second half of Send,
// shared with fault-injected duplicate copies). sentAt is the virtual time
// the sender handed the message to the network, kept for the wire-event
// span so transit time is visible in traces.
func (n *Network) deliver(msg Message, sentAt time.Duration) {
	st := n.node(msg.To)
	if st == nil || st.down || st.handler == nil || !n.reachable(msg.From, msg.To) {
		n.dropped++
		n.traceMsg("drop", msg)
		n.spanEvent(msg, sentAt, "dropped")
		return
	}
	st.traffic.BytesRecv += int64(msg.Size)
	st.traffic.MsgsRecv++
	n.delivered++
	n.traceMsg("recv", msg)
	n.spanEvent(msg, sentAt, "")
	st.handler.HandleMessage(n, msg)
}

// spanEvent records one "net" wire event for a message under its span
// context, spanning send→deliver in virtual time.
func (n *Network) spanEvent(msg Message, sentAt time.Duration, errStr string) {
	if !n.tracer.Enabled() {
		return
	}
	n.tracer.Emit(trace.Event{
		Parent: msg.Span,
		Name:   msg.Kind,
		Proto:  "net",
		Node:   int64(msg.To),
		Start:  sentAt,
		End:    n.now,
		Bytes:  int64(msg.Size),
		Err:    errStr,
		Point:  true,
	})
}

// After schedules fn to run after d of virtual time.
func (n *Network) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	n.schedule(n.now+d, fn)
}

// allocEvent pops a recycled pool slot or grows the slab by one, returning
// the slot's index.
func (n *Network) allocEvent() uint32 {
	if i := n.free; i != noEvent {
		n.free = n.pool[i].next
		return i
	}
	n.pool = append(n.pool, event{})
	return uint32(len(n.pool) - 1)
}

// releaseEvent zeroes the slot (dropping any payload/closure reference so
// the pool never pins handler state) and pushes it onto the free list.
func (n *Network) releaseEvent(i uint32) {
	n.pool[i] = event{next: n.free}
	n.free = i
}

// nextSeq issues the next FIFO tie-break. seq is uint32 to keep heap
// entries at 16 bytes; in the event horizon where it would wrap, the queue
// is renumbered — relative (at, seq) order is preserved exactly, so the
// schedule (and therefore every trace) is unchanged, and the cost is one
// sort of the pending queue every ~4.3 billion events.
func (n *Network) nextSeq() uint32 {
	if n.seq == ^uint32(0) {
		es := n.events.drainSorted()
		for i := range es {
			es[i].seq = uint32(i)
		}
		n.seq = uint32(len(es))
	}
	n.seq++
	return n.seq
}

func (n *Network) schedule(at time.Duration, fn func()) {
	i := n.allocEvent()
	e := &n.pool[i]
	e.op, e.fn = opFunc, fn
	n.events.push(heapEntry{at: at, seq: n.nextSeq(), idx: i})
}

func (n *Network) scheduleDeliver(at time.Duration, msg Message, sentAt time.Duration) {
	i := n.allocEvent()
	e := &n.pool[i]
	e.op, e.msg, e.sentAt = opDeliver, msg, sentAt
	n.events.push(heapEntry{at: at, seq: n.nextSeq(), idx: i})
}

// Step executes the next pending event, returning false when the queue is
// empty.
func (n *Network) Step() bool {
	if n.events.len() == 0 {
		return false
	}
	en := n.events.pop()
	e := &n.pool[en.idx]
	if en.at > n.now {
		n.now = en.at
	}
	// Copy what the action needs and recycle the slot before running it,
	// so the work it schedules reuses the slot immediately.
	switch e.op {
	case opDeliver:
		msg, sentAt := e.msg, e.sentAt
		n.releaseEvent(en.idx)
		n.deliver(msg, sentAt)
	default:
		fn := e.fn
		n.releaseEvent(en.idx)
		fn()
	}
	return true
}

// Run drains events until the queue is empty or virtual time would exceed
// until (0 means no limit). It returns the number of events executed.
func (n *Network) Run(until time.Duration) int {
	executed := 0
	for n.events.len() > 0 {
		if until > 0 && n.events.minAt() > until {
			break
		}
		n.Step()
		executed++
	}
	return executed
}

// RunUntilIdle drains the entire event queue.
func (n *Network) RunUntilIdle() int { return n.Run(0) }

// Pending returns the number of queued events.
func (n *Network) Pending() int { return n.events.len() }

// Traffic returns the traffic snapshot for one node.
func (n *Network) Traffic(id NodeID) (TrafficStats, error) {
	st := n.node(id)
	if st == nil {
		return TrafficStats{}, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return st.traffic, nil
}

// TotalTraffic sums traffic across all nodes.
func (n *Network) TotalTraffic() TrafficStats {
	var t TrafficStats
	n.forEachNode(func(st *nodeState) {
		t.BytesSent += st.traffic.BytesSent
		t.BytesRecv += st.traffic.BytesRecv
		t.MsgsSent += st.traffic.MsgsSent
		t.MsgsRecv += st.traffic.MsgsRecv
	})
	return t
}

// KindTraffic returns a copy of the per-kind aggregate for kind.
func (n *Network) KindTraffic(kind string) KindStats {
	if id, ok := n.kindIDs[kind]; ok {
		return n.kindAgg[id]
	}
	return KindStats{}
}

// Kinds returns all message kinds with traffic observed since the last
// ResetTraffic, sorted so that iteration-driven reports render identically
// across runs.
func (n *Network) Kinds() []string {
	out := make([]string, 0, len(n.kindNames))
	for id, k := range n.kindNames {
		if n.kindAgg[id].Messages != 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// DeliveredCount and DroppedCount expose delivery accounting for tests and
// experiment sanity checks.
func (n *Network) DeliveredCount() int64 { return n.delivered }

// DroppedCount returns the number of messages dropped because the receiver
// was down at delivery time.
func (n *Network) DroppedCount() int64 { return n.dropped }

// ResetTraffic zeroes all traffic accounting (per-node and per-kind) while
// leaving topology and time untouched. Experiments use it to measure a
// single phase. Interned kind IDs survive (they are engine state, not
// traffic), but zeroed kinds drop out of Kinds until seen again.
func (n *Network) ResetTraffic() {
	n.forEachNode(func(st *nodeState) {
		st.traffic = TrafficStats{}
	})
	for i := range n.kindAgg {
		n.kindAgg[i] = KindStats{}
	}
	n.delivered = 0
	n.dropped = 0
	if n.faults != nil {
		n.faults.stats = FaultStats{}
	}
}
