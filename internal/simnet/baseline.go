package simnet

import (
	"container/heap"
	"fmt"
	"time"
)

// This file freezes the pre-overhaul event engine — closure-per-event
// scheduling through container/heap, map-keyed node state, string-keyed
// per-kind accounting — as BaselineNetwork. It is not used by any protocol
// path; it exists so the simulation benchmark (cmd/icibench -simbench, CI
// bench-smoke) can measure the overhauled engine against the design it
// replaced inside one binary, the same way erasure keeps
// EncodeScalarReference next to the vectorized kernels, and so the
// differential tests can pin that both engines execute identical schedules.

// BaselineHandler consumes messages delivered to a baseline node.
type BaselineHandler func(net *BaselineNetwork, msg Message)

type baselineNode struct {
	id        NodeID
	handler   BaselineHandler
	coord     Coord
	down      bool // never set; kept for the faithful liveness checks
	traffic   TrafficStats
	busyUntil time.Duration
}

type baselineEvent struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type baselineHeap []*baselineEvent

func (h baselineHeap) Len() int { return len(h) }
func (h baselineHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h baselineHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *baselineHeap) Push(x any)   { *h = append(*h, x.(*baselineEvent)) }
func (h *baselineHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// BaselineNetwork is the reference engine. It implements the subset of the
// Network surface the benchmark workload and differential tests drive:
// AddNode, Send, After, Step/Run/RunUntilIdle, Now, Traffic accounting.
// Fault injection, partitions, and tracing cannot be *configured* — but
// their disabled-path checks are reproduced faithfully, because the
// pre-overhaul engine paid them on every single send and delivery (the
// chaos probe even copied the Message in and out unconditionally). Eliding
// them would flatter the baseline and understate the measured speedup.
type BaselineNetwork struct {
	now       time.Duration
	seq       uint64
	events    baselineHeap
	nodes     map[NodeID]*baselineNode
	latency   LatencyModel
	kindStats map[string]*KindStats
	delivered int64
	dropped   int64
	uplinkBps float64
	partition map[NodeID]int // never set; kept for the faithful reachable() probe
	tracing   bool           // never set; kept for the faithful traceMsg() probe
	trace     []TraceEvent
	faultsOn  bool // never set; stands in for the pre-overhaul faults pointer
	tracerOn  bool // never set; stands in for the pre-overhaul tracer pointer
}

// baselineApplyFaults reproduces the disabled fault probe of the
// pre-overhaul Send path: the Message is copied in and back out even when
// no fault plan exists, exactly as the original applyFaults did. noinline
// because the original was far too large to inline — letting the compiler
// collapse this stand-in would elide the copies the old engine really paid.
//
//go:noinline
func (n *BaselineNetwork) baselineApplyFaults(msg Message) (out Message, extra time.Duration, dup bool, dupExtra time.Duration, dropped bool) {
	out = msg
	if !n.faultsOn {
		return out, 0, false, 0, false
	}
	return out, 0, false, 0, false
}

// baselineSpanEvent reproduces the disabled structured-trace probe (the
// original spanEvent took the Message by value and was never inlined).
//
//go:noinline
func (n *BaselineNetwork) baselineSpanEvent(msg Message, sentAt time.Duration, errStr string) {
	if !n.tracerOn {
		return
	}
	_ = msg
	_ = sentAt
	_ = errStr
}

// baselineTraceMsg reproduces the disabled event-trace probe.
func (n *BaselineNetwork) baselineTraceMsg(op string, msg Message) {
	if !n.tracing {
		return
	}
	n.trace = append(n.trace, TraceEvent{At: n.now, Op: op, From: msg.From, To: msg.To, Kind: msg.Kind, Size: msg.Size})
}

// baselineReachable reproduces the partition probe (no partition is ever
// configured, so it always reports true — after the nil-map check the old
// engine made).
func (n *BaselineNetwork) baselineReachable(a, b NodeID) bool {
	if n.partition == nil {
		return true
	}
	ga, gb := n.partition[a], n.partition[b]
	if ga == 0 || gb == 0 {
		return true
	}
	return ga == gb
}

// NewBaseline creates an empty baseline network using the given latency
// model.
func NewBaseline(model LatencyModel) *BaselineNetwork {
	return &BaselineNetwork{
		nodes:     make(map[NodeID]*baselineNode),
		latency:   model,
		kindStats: make(map[string]*KindStats),
	}
}

// Now returns the current virtual time.
func (n *BaselineNetwork) Now() time.Duration { return n.now }

// AddNode registers a node with its handler and latency-space coordinate.
func (n *BaselineNetwork) AddNode(id NodeID, handler BaselineHandler, coord Coord) error {
	if _, ok := n.nodes[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateNode, id)
	}
	n.nodes[id] = &baselineNode{id: id, handler: handler, coord: coord}
	return nil
}

// SetUplinkBandwidth mirrors Network.SetUplinkBandwidth.
func (n *BaselineNetwork) SetUplinkBandwidth(bytesPerSec float64) { n.uplinkBps = bytesPerSec }

// Send schedules delivery of msg after the link latency, exactly as the
// pre-overhaul engine did: one closure capture plus one heap-node
// allocation per message, with every disabled-path probe (liveness, event
// trace, chaos layer, structured spans) in its original position.
func (n *BaselineNetwork) Send(msg Message) error {
	src, ok := n.nodes[msg.From]
	if !ok {
		return fmt.Errorf("send from %w: %d", ErrUnknownNode, msg.From)
	}
	if src.down {
		return fmt.Errorf("send: %w: %d", ErrNodeDown, msg.From)
	}
	dst, ok := n.nodes[msg.To]
	if !ok {
		return fmt.Errorf("send to %w: %d", ErrUnknownNode, msg.To)
	}
	src.traffic.BytesSent += int64(msg.Size)
	src.traffic.MsgsSent++
	ks := n.kindStats[msg.Kind]
	if ks == nil {
		ks = &KindStats{}
		n.kindStats[msg.Kind] = ks
	}
	ks.Messages++
	ks.Bytes += int64(msg.Size)

	n.baselineTraceMsg("send", msg)

	delay := n.latency.Latency(src.coord, dst.coord, msg.Size)
	if delay < 0 {
		delay = 0
	}
	depart := n.now
	if n.uplinkBps > 0 {
		if src.busyUntil > depart {
			depart = src.busyUntil
		}
		depart += time.Duration(float64(msg.Size) / n.uplinkBps * float64(time.Second))
		src.busyUntil = depart
	}
	msg, extra, dup, dupExtra, dropped := n.baselineApplyFaults(msg)
	if dropped {
		n.baselineSpanEvent(msg, n.now, "lost")
		return nil
	}
	sentAt := n.now
	n.schedule(depart+delay+extra, func() { n.deliver(msg, sentAt) })
	if dup {
		n.schedule(depart+delay+dupExtra, func() { n.deliver(msg, sentAt) })
	}
	return nil
}

func (n *BaselineNetwork) deliver(msg Message, sentAt time.Duration) {
	st := n.nodes[msg.To]
	if st == nil || st.down || st.handler == nil || !n.baselineReachable(msg.From, msg.To) {
		n.dropped++
		n.baselineTraceMsg("drop", msg)
		n.baselineSpanEvent(msg, sentAt, "dropped")
		return
	}
	st.traffic.BytesRecv += int64(msg.Size)
	st.traffic.MsgsRecv++
	n.delivered++
	n.baselineTraceMsg("recv", msg)
	n.baselineSpanEvent(msg, sentAt, "")
	st.handler(n, msg)
}

// After schedules fn to run after d of virtual time.
func (n *BaselineNetwork) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	n.schedule(n.now+d, fn)
}

func (n *BaselineNetwork) schedule(at time.Duration, fn func()) {
	n.seq++
	heap.Push(&n.events, &baselineEvent{at: at, seq: n.seq, fn: fn})
}

// Step executes the next pending event, returning false when the queue is
// empty.
func (n *BaselineNetwork) Step() bool {
	if n.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&n.events).(*baselineEvent)
	if e.at > n.now {
		n.now = e.at
	}
	e.fn()
	return true
}

// RunUntilIdle drains the entire event queue and returns the number of
// events executed.
func (n *BaselineNetwork) RunUntilIdle() int {
	executed := 0
	for n.Step() {
		executed++
	}
	return executed
}

// DeliveredCount returns the number of delivered messages.
func (n *BaselineNetwork) DeliveredCount() int64 { return n.delivered }

// TotalTraffic sums traffic across all nodes.
func (n *BaselineNetwork) TotalTraffic() TrafficStats {
	var t TrafficStats
	for _, st := range n.nodes {
		t.BytesSent += st.traffic.BytesSent
		t.BytesRecv += st.traffic.BytesRecv
		t.MsgsSent += st.traffic.MsgsSent
		t.MsgsRecv += st.traffic.MsgsRecv
	}
	return t
}

// KindTraffic returns a copy of the per-kind aggregate for kind.
func (n *BaselineNetwork) KindTraffic(kind string) KindStats {
	if ks := n.kindStats[kind]; ks != nil {
		return *ks
	}
	return KindStats{}
}
