package simnet

import (
	"math"
	"time"

	"icistrategy/internal/blockcrypto"
)

// Coord is a point in 2-D latency space. Distances are interpreted directly
// as one-way propagation delay in milliseconds, the standard network
// coordinate abstraction (Vivaldi-style).
type Coord struct {
	X, Y float64
}

// Distance returns the Euclidean distance to other, in milliseconds.
func (c Coord) Distance(other Coord) float64 {
	dx := c.X - other.X
	dy := c.Y - other.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// LatencyModel computes the one-way delivery delay of a message of the
// given size between two coordinates.
type LatencyModel interface {
	Latency(from, to Coord, size int) time.Duration
}

// LinkModel is the default latency model:
//
//	delay = Base + distance(from,to) + size/Bandwidth + jitter
//
// where jitter is uniform in [0, Jitter). Bandwidth is in bytes per second.
// A zero-valued LinkModel delivers everything instantly, which is handy in
// unit tests.
type LinkModel struct {
	Base      time.Duration
	Bandwidth float64 // bytes per second; 0 disables the transfer term
	Jitter    time.Duration
	rng       *blockcrypto.RNG
}

var _ LatencyModel = (*LinkModel)(nil)

// NewLinkModel builds the default model used by the experiments: 5 ms base,
// 20 Mbit/s links, 2 ms jitter, seeded rng.
func NewLinkModel(seed uint64) *LinkModel {
	return &LinkModel{
		Base:      5 * time.Millisecond,
		Bandwidth: 20e6 / 8, // 20 Mbit/s in bytes/s
		Jitter:    2 * time.Millisecond,
		rng:       blockcrypto.NewRNG(seed),
	}
}

// Latency implements LatencyModel.
func (m *LinkModel) Latency(from, to Coord, size int) time.Duration {
	d := m.Base
	d += time.Duration(from.Distance(to) * float64(time.Millisecond))
	if m.Bandwidth > 0 {
		d += time.Duration(float64(size) / m.Bandwidth * float64(time.Second))
	}
	if m.Jitter > 0 && m.rng != nil {
		d += time.Duration(m.rng.Float64() * float64(m.Jitter))
	}
	return d
}

// ConstantLatency delivers every message after a fixed delay regardless of
// distance or size.
type ConstantLatency time.Duration

var _ LatencyModel = ConstantLatency(0)

// Latency implements LatencyModel.
func (c ConstantLatency) Latency(_, _ Coord, _ int) time.Duration {
	return time.Duration(c)
}

// RandomCoords places n nodes uniformly in a square of side sideMillis
// milliseconds, deterministically from rng. The experiments use a 60 ms
// square, giving inter-node RTTs in the 0-170 ms range — roughly a global
// deployment.
func RandomCoords(n int, sideMillis float64, rng *blockcrypto.RNG) []Coord {
	out := make([]Coord, n)
	for i := range out {
		out[i] = Coord{X: rng.Float64() * sideMillis, Y: rng.Float64() * sideMillis}
	}
	return out
}

// ClusteredCoords places n nodes around k regional centers with the given
// spread, modelling geographically clustered deployments (nodes in data
// centers). Centers are themselves placed uniformly in the square.
func ClusteredCoords(n, k int, sideMillis, spread float64, rng *blockcrypto.RNG) []Coord {
	if k <= 0 {
		k = 1
	}
	centers := RandomCoords(k, sideMillis, rng)
	out := make([]Coord, n)
	for i := range out {
		c := centers[i%k]
		out[i] = Coord{
			X: c.X + rng.NormFloat64()*spread,
			Y: c.Y + rng.NormFloat64()*spread,
		}
	}
	return out
}
